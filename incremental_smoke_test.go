package elmore_test

import (
	"math"
	"os"
	"testing"
	"time"

	"elmore"
	"elmore/internal/topo"
)

// TestIncrementalSpeedupSmoke is the bench-incremental lane's assertion
// (ISSUE 8 acceptance): on a 100k-node chain, a single-node SetC
// followed by re-bounding the perturbed sink must run >= 10x faster
// through the incremental engine than through a full AnalyzeBounds
// recompute. It is a timing test, so it only runs when
// ELMORE_BENCH_SMOKE=1 (the `make bench-incremental` lane and CI set
// it); plain `go test ./...` skips it to stay load-insensitive.
func TestIncrementalSpeedupSmoke(t *testing.T) {
	if os.Getenv("ELMORE_BENCH_SMOKE") != "1" {
		t.Skip("set ELMORE_BENCH_SMOKE=1 to run the incremental speedup assertion")
	}
	const n = 100000
	const reps = 5
	tree := topo.Chain(n, 1, 1e-15)
	leaf := n - 1
	c0 := tree.C(leaf)

	// Full path: mutate the tree, recompute every bound from scratch.
	// One measurement is enough — on a pure chain the full pipeline is
	// O(n·depth) in the PRH T_R walks (~a minute at n=100k), and the
	// assertion is a 10x floor, not a tight ratio. The resulting
	// Analysis doubles as the incremental side's starting state, so the
	// lane pays the quadratic full pipeline exactly once.
	if err := tree.SetC(leaf, 2*c0); err != nil {
		t.Fatal(err)
	}
	fullStart := time.Now()
	an, err := elmore.Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	fullPer := time.Since(fullStart)
	fullTD := an.Bounds[leaf].Elmore

	// Incremental path: perturb the engine, re-bound the perturbed
	// sink. The loop ends back on the engine's bind-time value, so the
	// final re-bound must reproduce the measured full analysis bit for
	// bit.
	inc, err := elmore.NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	incStart := time.Now()
	for i := 0; i < reps; i++ {
		v := c0 * float64(3+i)
		if i == reps-1 {
			v = 2 * c0
		}
		if err := inc.SetC(leaf, v); err != nil {
			t.Fatal(err)
		}
		if err := an.Reanalyze(inc, []int{leaf}); err != nil {
			t.Fatal(err)
		}
	}
	incPer := time.Since(incStart) / reps

	// Same final perturbation on both paths -> bit-identical delay.
	if math.Float64bits(an.Bounds[leaf].Elmore) != math.Float64bits(fullTD) {
		t.Fatalf("incremental T_D %v != full recompute %v", an.Bounds[leaf].Elmore, fullTD)
	}

	speedup := float64(fullPer) / float64(incPer)
	t.Logf("full %v/op, incremental %v/op, speedup %.1fx", fullPer, incPer, speedup)
	if speedup < 10 {
		t.Fatalf("incremental path is only %.1fx faster than full recompute (full %v, incremental %v); want >= 10x",
			speedup, fullPer, incPer)
	}
}
