package elmore_test

import (
	"fmt"

	"elmore"
)

// ExampleParseNetlistString shows the SPICE-deck entry point.
func ExampleParseNetlistString() {
	deck, err := elmore.ParseNetlistString(`
* a tiny net
Vin in 0 1
R1 in a 100
C1 a  0 1p
R2 a  b 200
C2 b  0 2p
.end
`)
	if err != nil {
		panic(err)
	}
	td := elmore.ElmoreDelays(deck.Tree)
	b := deck.Tree.MustIndex("b")
	fmt.Printf("T_D(b) = %s\n", elmore.FormatSeconds(td[b]))
	// Output: T_D(b) = 700ps
}

// ExampleExactSystem_Delay measures a ramp-input delay against the
// Elmore bound.
func ExampleExactSystem_Delay() {
	b := elmore.NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12)
	b.MustAttach(n1, "n2", 200, 2e-12)
	tree, _ := b.Build()

	sys, _ := elmore.NewExactSystem(tree)
	n2 := tree.MustIndex("n2")
	d, _ := sys.Delay(n2, elmore.Ramp(1e-9), 0)
	td := elmore.ElmoreDelays(tree)[n2]
	fmt.Printf("delay below bound: %v\n", d < td)
	// Output: delay below bound: true
}

// ExampleCornerIntervals certifies delays under process variation.
func ExampleCornerIntervals() {
	b := elmore.NewBuilder()
	b.MustRoot("n1", 1000, 1e-12)
	tree, _ := b.Build()

	iv, _ := elmore.CornerIntervals(tree, elmore.CornerOptions{RRel: 0.1, CRel: 0.1})
	// Single RC: upper = 1.1*1.1*RC = 1.21 ns.
	fmt.Printf("upper = %s\n", elmore.FormatSeconds(iv[0].Upper))
	// Output: upper = 1.21ns
}

// ExampleReduceToPi reduces a tree to the 3-moment O'Brien-Savarino
// load model.
func ExampleReduceToPi() {
	b := elmore.NewBuilder()
	n1 := b.MustRoot("n1", 50, 1e-12)
	b.MustAttach(n1, "n2", 300, 2e-12)
	tree, _ := b.Build()

	pi, _ := elmore.ReduceToPi(tree)
	fmt.Printf("total C preserved: %v\n", pi.TotalC() == tree.TotalC())
	// Output: total C preserved: true
}
