GO ?= go

# Benchmarks folded into BENCH_8.json by `make bench-json`.
BENCH_PATTERN ?= ElmoreDelays|AnalyzeBounds|MomentsOrder6|IncrementalSet|SimTransient|SimPlanReuse|TableI$$

.PHONY: check build test vet race health-strict chaos fuzz-smoke bench bench-json bench-smoke bench-incremental scaling-smoke obs-smoke serve-smoke fmt

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full suite with a strict numerical-health monitor installed:
# any NaN/Inf, Lemma 2, or bound-ordering violation fails the run.
health-strict:
	ELMORE_STRICT_NUMERICS=1 $(GO) test ./...

# Fault-injection chaos suite under the race detector: thousands of
# batch jobs with seeded faults in the simulator, moment engine, and
# dispatcher, plus the journal resume and cancellation-leak tests.
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestJournal|TestRunSpecsJournalResume|TestRunFuncStopsEmittingAfterCancel' \
		./internal/batch
	$(GO) test -race -count=1 ./internal/faultinject ./internal/resilience ./internal/cliutil

# Short exploratory fuzz runs for the two line-oriented parsers. Go
# allows one -fuzz pattern per package invocation, hence two commands.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadSpecs -fuzztime=$(FUZZTIME) ./internal/batch
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/netlist

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the scaling benchmarks and merge them into BENCH_8.json as the
# "after" side (pipe a saved baseline through
# `go run ./cmd/benchjson -label before -o BENCH_8.json` first).
# Compare ledgers across PRs with
# `go run ./cmd/benchjson -diff BENCH_7.json BENCH_8.json`.
bench-json:
	( $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -timeout 90m . \
	  && $(GO) test -run '^$$' -bench 'Batch10kNets' -benchmem -timeout 30m ./internal/batch ) \
		| $(GO) run ./cmd/benchjson -label after -merge -o BENCH_8.json

# Incremental-engine speedup floor (ISSUE 8 acceptance): on a 100k-node
# chain, a single SetC plus re-bounding the perturbed sink must beat a
# full analysis by >= 10x. Takes ~1-2 min: the full side of the
# comparison is O(n^2) on a pure chain (per-node PRH T_R walks) and is
# measured once.
bench-incremental:
	ELMORE_BENCH_SMOKE=1 $(GO) test -run TestIncrementalSpeedupSmoke -v -count=1 -timeout 600s .

# One iteration of every benchmark: exercises the bench code paths in
# CI without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./...

# Scaling-diagnosis smoke: a small scalestat sweep under the race
# detector, validated by -check (report must parse, efficiency and
# attribution fields must be finite, >= 95% of per-worker wall time
# accounted), plus a profiled batch run that exercises the contention
# observability path end to end (mutex/block/heap pprof capture and
# runtime_sample records in the trace). On boxes with >= 4 CPUs the
# check also enforces the scaling floors the sharded-cache fix bought:
# parallel efficiency >= 0.5, speedup >= 0.5 x workers per step, and a
# lock-wait share under 10% of attributed worker time; below 4 CPUs
# scalestat skips the floors (noted on stderr) so laptops and
# single-core runners stay green.
scaling-smoke:
	mkdir -p artifacts
	$(GO) run -race ./cmd/scalestat -nets 200 -nodes 16 -share 20 -workers 1,2 \
		-check -efficiency-min 0.5 -speedup-min 0.5 -lockwait-max 0.10 -min-cpus 4 \
		-o artifacts/scaling-report.json -bench-out artifacts/scaling-bench.json
	$(GO) run -race ./cmd/boundstat -trees 60 -max-nodes 24 \
		-profile-dir artifacts/profiles -mutex-profile 5 -block-profile 10000 \
		-runtime-sample 100ms -trace artifacts/scaling-trace.ndjson \
		> artifacts/scaling-boundstat.txt
	$(GO) run ./cmd/tracestat -by-goroutine artifacts/scaling-trace.ndjson

# Observability smoke (PR 9): a seeded-fault chaos batch with the full
# lineage pipeline armed — per-job trace_ids, the always-on flight
# recorder, SLO objectives — then assert the run is reconstructable:
# every job maps to a unique trace, the flight dump exists and links
# back to the run, every degraded job's attempt lineage appears in
# tracestat -by-trace, and the summary's SLO rows account for every
# job. Finally the disabled-path budgets: with no tracer/recorder/SLOs
# installed the per-job observability cost must stay at zero
# allocations (AllocsPerRun-asserted in the named tests).
obs-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/rcgen -topology random -n 24 -seed 7 -o artifacts/obs-net.sp
	seq 1 40 | awk '{printf "{\"id\":\"j%d\",\"net\":\"artifacts/obs-net.sp\",\"dt\":\"1p\"}\n", $$1}' \
		> artifacts/obs-jobs.ndjson
	rm -f artifacts/obs-flight.ndjson
	ELMORE_FAULTS='sim.step:error:p=0.05' ELMORE_FAULT_SEED=9 \
	$(GO) run ./cmd/boundstat -jobs artifacts/obs-jobs.ndjson \
		-workers 4 -retries 2 -slo p99=1s,p50=1ms -summary -progress 0 \
		-trace artifacts/obs-trace.ndjson \
		-flight-dump artifacts/obs-flight.ndjson \
		> artifacts/obs-results.ndjson 2> artifacts/obs-summary.ndjson
	test -s artifacts/obs-flight.ndjson
	$(GO) run ./cmd/tracestat -by-trace \
		artifacts/obs-trace.ndjson artifacts/obs-flight.ndjson \
		| tee artifacts/obs-bytrace.txt
	python3 scripts/obs_lineage_check.py artifacts/obs-jobs.ndjson \
		artifacts/obs-results.ndjson artifacts/obs-flight.ndjson \
		artifacts/obs-bytrace.txt artifacts/obs-summary.ndjson
	$(GO) test -run 'TestWorkerLoopAllocBudget|TestFlightDisabledPathFree|TestMintTraceAllocFree|TestSketchBoundedMemory|TestReporterBoundedLatencyMemory' \
		-count=1 -v ./internal/batch ./internal/telemetry | grep -E '^(=== RUN|--- (PASS|FAIL)|ok|FAIL)'

# Serve-mode smoke (ISSUE 10 acceptance): elmored under 2x-capacity
# load with seeded serve.decode faults must shed with Retry-After while
# admitted requests meet the SLO, and a SIGTERM mid-batch must exit 0,
# dump the flight ring, and resume the journaled batch exactly-once
# after a restart. Driven end to end by loadgen; artifacts (trace,
# flight dump, metrics snapshot, reports, logs) land in artifacts/.
serve-smoke:
	bash scripts/serve_smoke.sh

fmt:
	gofmt -l .
