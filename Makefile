GO ?= go

# Benchmarks folded into BENCH_3.json by `make bench-json`.
BENCH_PATTERN ?= ElmoreDelays|AnalyzeBounds|MomentsOrder6|SimTransient|SimPlanReuse|TableI$$

.PHONY: check build test vet race health-strict chaos fuzz-smoke bench bench-json bench-smoke fmt

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full suite with a strict numerical-health monitor installed:
# any NaN/Inf, Lemma 2, or bound-ordering violation fails the run.
health-strict:
	ELMORE_STRICT_NUMERICS=1 $(GO) test ./...

# Fault-injection chaos suite under the race detector: thousands of
# batch jobs with seeded faults in the simulator, moment engine, and
# dispatcher, plus the journal resume and cancellation-leak tests.
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestJournal|TestRunSpecsJournalResume|TestRunFuncStopsEmittingAfterCancel' \
		./internal/batch
	$(GO) test -race -count=1 ./internal/faultinject ./internal/resilience ./internal/cliutil

# Short exploratory fuzz runs for the two line-oriented parsers. Go
# allows one -fuzz pattern per package invocation, hence two commands.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadSpecs -fuzztime=$(FUZZTIME) ./internal/batch
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/netlist

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the scaling benchmarks and merge them into BENCH_3.json as the
# "after" side (pipe a saved baseline through
# `go run ./cmd/benchjson -label before -o BENCH_3.json` first).
bench-json:
	( $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -timeout 90m . \
	  && $(GO) test -run '^$$' -bench 'Batch10kNets' -benchmem -timeout 30m ./internal/batch ) \
		| $(GO) run ./cmd/benchjson -label after -merge -o BENCH_3.json

# One iteration of every benchmark: exercises the bench code paths in
# CI without measuring anything.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./...

fmt:
	gofmt -l .
