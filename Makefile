GO ?= go

.PHONY: check build test vet race bench fmt

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l .
