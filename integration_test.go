// Integration tests exercising complete workflows across the public
// API: deck -> analysis -> three independent delay measurements that
// must agree, on several circuit families.
package elmore_test

import (
	"math"
	"testing"

	"elmore"
	"elmore/internal/topo"
)

func approxI(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

// Full pipeline: build -> serialize -> re-parse -> analyze -> verify the
// bound chain with both ground-truth engines on several families.
func TestEndToEndConsistency(t *testing.T) {
	families := map[string]*elmore.Tree{
		"fig1":     topo.Fig1Tree(),
		"line25":   topo.Line25Tree(),
		"star":     topo.Star(3, 4, 150, 20e-15),
		"balanced": topo.Balanced(3, 3, 100, 25e-15),
		"random":   topo.Random(99, topo.RandomOptions{N: 18}),
	}
	for name, tree := range families {
		t.Run(name, func(t *testing.T) {
			// Round-trip through the netlist format.
			deck := elmore.FormatNetlist(tree, name)
			parsed, err := elmore.ParseNetlistString(deck)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			tree := parsed.Tree

			rpt, err := elmore.Analyze(tree)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := elmore.NewExactSystem(tree)
			if err != nil {
				t.Fatal(err)
			}
			// Size the horizon from the analysis and the step from the
			// horizon; crossings near the driving point can be far below
			// the step, so comparisons carry a dt-sized absolute slack.
			maxTD := 0.0
			for _, b := range rpt.Bounds {
				if b.Elmore > maxTD {
					maxTD = b.Elmore
				}
			}
			horizon := 10 * maxTD
			dt := horizon / 65536
			res, err := elmore.Simulate(tree, elmore.SimOptions{TEnd: horizon, DT: dt})
			if err != nil {
				t.Fatal(err)
			}
			adaptiveRes, err := elmore.SimulateAdaptive(tree, elmore.SimOptions{TEnd: horizon}, 1e-6)
			if err != nil {
				t.Fatal(err)
			}

			for i := 0; i < tree.N(); i++ {
				exactD, err := sys.Delay50Step(i)
				if err != nil {
					t.Fatal(err)
				}
				w, err := res.Waveform(i)
				if err != nil {
					t.Fatal(err)
				}
				simD, ok := w.Cross(0.5)
				if !ok {
					t.Fatalf("node %d: sim never crossed 50%%", i)
				}
				wa, err := adaptiveRes.Waveform(i)
				if err != nil {
					t.Fatal(err)
				}
				adaD, ok := wa.Cross(0.5)
				if !ok {
					t.Fatalf("node %d: adaptive sim never crossed 50%%", i)
				}
				// Three independent measurements agree (up to the
				// fixed grid's resolution for sub-step crossings).
				if !approxI(exactD, simD, 5e-3) && math.Abs(exactD-simD) > 2*dt {
					t.Errorf("node %s: exact %v vs sim %v", tree.Name(i), exactD, simD)
				}
				if !approxI(exactD, adaD, 5e-3) && math.Abs(exactD-adaD) > 2*dt {
					t.Errorf("node %s: exact %v vs adaptive %v", tree.Name(i), exactD, adaD)
				}
				// And the paper's bound chain brackets all of them.
				b := rpt.Bounds[i]
				for _, d := range []float64{exactD, simD, adaD} {
					if d > b.Elmore*(1+1e-2) {
						t.Errorf("node %s: delay %v above Elmore %v", tree.Name(i), d, b.Elmore)
					}
					if d < b.Lower*(1-1e-2)-1e-15 {
						t.Errorf("node %s: delay %v below lower %v", tree.Name(i), d, b.Lower)
					}
				}
			}
		})
	}
}

// AWE, pi-model and moment views of the same circuit stay mutually
// consistent through the public API.
func TestReducedModelsConsistency(t *testing.T) {
	tree := topo.Fig1Tree()
	ms, err := elmore.Moments(tree, 6)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := elmore.NewExactSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		ap, err := elmore.FitAWE(ms, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		exactD, err := sys.Delay50Step(i)
		if err != nil {
			t.Fatal(err)
		}
		aweD, err := ap.Delay50()
		if err != nil {
			t.Fatal(err)
		}
		if !approxI(aweD, exactD, 5e-2) {
			t.Errorf("%s: AWE %v vs exact %v", name, aweD, exactD)
		}
	}
	pi, err := elmore.ReduceToPi(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !approxI(pi.TotalC(), tree.TotalC(), 1e-12) {
		t.Errorf("pi total C %v vs tree %v", pi.TotalC(), tree.TotalC())
	}
}

// Simplify + analysis through the facade preserves bounds at surviving
// nodes.
func TestSimplifyThroughFacade(t *testing.T) {
	deck := "Vin in 0 1\nR1 in j1 10\nR2 j1 j2 15\nR3 j2 a 20\nC1 a 0 1p\nR4 j1 b 30\nC2 b 0 2p\n"
	parsed, err := elmore.ParseNetlistString(deck)
	if err != nil {
		t.Fatal(err)
	}
	orig := parsed.Tree
	simp, err := orig.Simplify()
	if err != nil {
		t.Fatal(err)
	}
	if simp.N() >= orig.N() {
		t.Fatalf("nothing simplified: %d -> %d", orig.N(), simp.N())
	}
	tdO := elmore.ElmoreDelays(orig)
	tdS := elmore.ElmoreDelays(simp)
	for _, name := range []string{"a", "b"} {
		io := orig.MustIndex(name)
		is := simp.MustIndex(name)
		if !approxI(tdO[io], tdS[is], 1e-12) {
			t.Errorf("%s: T_D changed by simplification", name)
		}
	}
}
