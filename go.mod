module elmore

go 1.22
