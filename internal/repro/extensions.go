package repro

import (
	"fmt"
	"math"

	"elmore/internal/core"
	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

// The experiments below go beyond the paper's published artifacts,
// exercising results the text states without plotting.

// FigPRH samples the exact step response at a Fig. 1 node together
// with the Penfield-Rubinstein-Horowitz waveform bounds t_min(v) and
// t_max(v) — the bracket the paper's Table I takes its columns (6)-(7)
// from, drawn as full curves.
func FigPRH(nodeName string) ([]Series, error) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	an, err := core.Analyze(tree)
	if err != nil {
		return nil, err
	}
	i, ok := tree.Index(nodeName)
	if !ok {
		return nil, fmt.Errorf("repro: no node %q in the Fig. 1 circuit", nodeName)
	}
	td := an.Bounds[i].Elmore
	trr := an.PRH().TR(i)

	const n = 120
	exactS := Series{Name: "exact t(v)@" + nodeName}
	minS := Series{Name: "PRH t_min(v)"}
	maxS := Series{Name: "PRH t_max(v)"}
	for k := 1; k <= n; k++ {
		v := 0.99 * float64(k) / float64(n)
		t, err := sys.CrossStep(i, v)
		if err != nil {
			return nil, err
		}
		exactS.X = append(exactS.X, t)
		exactS.Y = append(exactS.Y, v)
		minS.X = append(minS.X, core.PRHTmin(an.TP, td, trr, v))
		minS.Y = append(minS.Y, v)
		maxS.X = append(maxS.X, core.PRHTmax(an.TP, td, trr, v))
		maxS.Y = append(maxS.Y, v)
	}
	return []Series{minS, exactS, maxS}, nil
}

// CheckPRHFigure verifies the bracket: t_min(v) <= exact <= t_max(v)
// pointwise over the sampled levels.
func CheckPRHFigure(series []Series) []string {
	if len(series) != 3 {
		return []string{"expected 3 series"}
	}
	var bad []string
	minS, exactS, maxS := series[0], series[1], series[2]
	for k := range exactS.X {
		if exactS.X[k] < minS.X[k]*(1-1e-9) {
			bad = append(bad, fmt.Sprintf("v=%.3f: exact %g below t_min %g", exactS.Y[k], exactS.X[k], minS.X[k]))
		}
		if exactS.X[k] > maxS.X[k]*(1+1e-9) {
			bad = append(bad, fmt.Sprintf("v=%.3f: exact %g above t_max %g", exactS.Y[k], exactS.X[k], maxS.X[k]))
		}
	}
	return bad
}

// InputShapeRow is one input family in the input-shape study.
type InputShapeRow struct {
	Input string
	// Upper is the generalized Corollary-2 bound (T_D for symmetric
	// derivatives, shifted for skewed ones).
	Upper float64
	Delay float64 // exact 50% delay
	// MarginPct is (Upper - Delay)/Delay * 100.
	MarginPct float64
}

// InputShapeStudy measures, at a Fig. 1 node, the exact delay and its
// generalized bound for equal-variance input edges of different shapes
// (saturated ramp, raised cosine, exponential). It demonstrates
// Corollary 2's breadth: the bound holds for every unimodal-derivative
// edge, with the shift T_D + mean(v') - t50(v) exact for skewed inputs.
func InputShapeStudy(nodeName string, sigmaIn float64) ([]InputShapeRow, error) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	ms, err := moments.Compute(tree, 1)
	if err != nil {
		return nil, err
	}
	i, ok := tree.Index(nodeName)
	if !ok {
		return nil, fmt.Errorf("repro: no node %q in the Fig. 1 circuit", nodeName)
	}
	td := ms.Elmore(i)

	// Equal derivative-sigma edges: match each family's parameter so
	// sqrt(DerivMu2) == sigmaIn.
	inputs := []signal.Signal{
		signal.SaturatedRamp{Tr: sigmaIn * math.Sqrt(12)},
		signal.RaisedCosine{Tr: sigmaIn / math.Sqrt(0.25-2/(math.Pi*math.Pi))},
		signal.Exponential{Tau: sigmaIn},
	}
	var rows []InputShapeRow
	for _, sig := range inputs {
		d, err := sys.Delay(i, sig, 0)
		if err != nil {
			return nil, err
		}
		upper := td + sig.DerivMean() - sig.Cross(0.5)
		rows = append(rows, InputShapeRow{
			Input:     sig.String(),
			Upper:     upper,
			Delay:     d,
			MarginPct: (upper - d) / d * 100,
		})
	}
	return rows, nil
}

// CheckInputShapes verifies the bound for every row and that the
// equal-sigma inputs all landed within their bounds.
func CheckInputShapes(rows []InputShapeRow) []string {
	var bad []string
	for _, r := range rows {
		if r.Delay > r.Upper*(1+1e-9) {
			bad = append(bad, fmt.Sprintf("%s: delay %g exceeds bound %g", r.Input, r.Delay, r.Upper))
		}
	}
	return bad
}
