package repro

import (
	"fmt"
	"strings"

	"elmore/internal/rctree"
)

// ns formats a time in nanoseconds with 4 significant digits, matching
// the paper's table style.
func ns(t float64) string {
	return fmt.Sprintf("%.4g ns", t*1e9)
}

// Render returns Table I as fixed-width text, in the paper's column
// order.
func (r *TableIResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: delay bounds for the calibrated Fig. 1 circuit\n")
	fmt.Fprintf(&sb, "%-5s %12s %12s %12s %14s %12s %12s\n",
		"Node", "Actual", "Elmore T_D", "T_D-sigma", "T_D*ln2", "PRH t_max", "PRH t_min")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-5s %12s %12s %12s %14s %12s %12s\n",
			row.Node, ns(row.Actual), ns(row.Elmore), ns(row.Lower),
			ns(row.SinglePole), ns(row.PRHTmax), ns(row.PRHTmin))
	}
	return sb.String()
}

// CSV returns Table I as comma-separated values (times in seconds).
func (r *TableIResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("node,actual,elmore,lower,single_pole,prh_tmax,prh_tmin\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			row.Node, row.Actual, row.Elmore, row.Lower, row.SinglePole, row.PRHTmax, row.PRHTmin)
	}
	return sb.String()
}

// Render returns Table II as fixed-width text.
func (r *TableIIResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: ramp-input delays and relative error on the 25-node line\n")
	fmt.Fprintf(&sb, "%-5s %12s", "Node", "Elmore")
	for _, tr := range r.RiseTimes {
		fmt.Fprintf(&sb, " | %10s %8s", "d@"+rctree.FormatSeconds(tr), "%err")
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-5s %12s", row.Node, ns(row.Elmore))
		for _, e := range row.Entries {
			fmt.Fprintf(&sb, " | %10s %7.3g%%", ns(e.Delay), e.RelErrPct)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV returns Table II as comma-separated values.
func (r *TableIIResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("node,elmore,rise_time,delay,rel_err_pct\n")
	for _, row := range r.Rows {
		for _, e := range row.Entries {
			fmt.Fprintf(&sb, "%s,%.6g,%.6g,%.6g,%.6g\n",
				row.Node, row.Elmore, e.RiseTime, e.Delay, e.RelErrPct)
		}
	}
	return sb.String()
}

// SeriesCSV renders a list of curves sharing no grid as long-format
// CSV: series,x,y.
func SeriesCSV(series []Series) string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range series {
		for k := range s.X {
			fmt.Fprintf(&sb, "%s,%.9g,%.9g\n", s.Name, s.X[k], s.Y[k])
		}
	}
	return sb.String()
}

// Render returns the Fig. 12 curves as fixed-width text.
func (r *Fig12Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 12: 50%% delay vs input rise time (-> T_D from below)\n")
	fmt.Fprintf(&sb, "%14s", "rise time")
	for _, n := range r.Nodes {
		fmt.Fprintf(&sb, " %14s", n)
	}
	sb.WriteByte('\n')
	for k, tr := range r.RiseTimes {
		fmt.Fprintf(&sb, "%14s", rctree.FormatSeconds(tr))
		for _, n := range r.Nodes {
			fmt.Fprintf(&sb, " %14s", ns(r.Delays[n][k]))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%14s", "T_D asymptote")
	for _, n := range r.Nodes {
		fmt.Fprintf(&sb, " %14s", ns(r.Elmore[n]))
	}
	sb.WriteByte('\n')
	return sb.String()
}

// CSV renders the Fig. 12 curves as comma-separated values.
func (r *Fig12Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("rise_time")
	for _, n := range r.Nodes {
		fmt.Fprintf(&sb, ",%s", n)
	}
	sb.WriteByte('\n')
	for k, tr := range r.RiseTimes {
		fmt.Fprintf(&sb, "%.6g", tr)
		for _, n := range r.Nodes {
			fmt.Fprintf(&sb, ",%.6g", r.Delays[n][k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Render returns the Fig. 14 error surface as fixed-width text.
func (r *Fig14Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 14: relative Elmore error (%%) vs node position\n")
	fmt.Fprintf(&sb, "%6s", "node")
	for _, tr := range r.RiseTimes {
		fmt.Fprintf(&sb, " %12s", "tr="+rctree.FormatSeconds(tr))
	}
	sb.WriteByte('\n')
	for idx, pos := range r.Positions {
		fmt.Fprintf(&sb, "%6d", pos)
		for _, tr := range r.RiseTimes {
			fmt.Fprintf(&sb, " %12.4g", r.ErrPct[tr][idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the Fig. 14 error surface as comma-separated values.
func (r *Fig14Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("position")
	for _, tr := range r.RiseTimes {
		fmt.Fprintf(&sb, ",tr_%g", tr)
	}
	sb.WriteByte('\n')
	for idx, pos := range r.Positions {
		fmt.Fprintf(&sb, "%d", pos)
		for _, tr := range r.RiseTimes {
			fmt.Fprintf(&sb, ",%.6g", r.ErrPct[tr][idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
