// Package repro regenerates every table and figure of the paper's
// evaluation on the calibrated circuits from package topo:
//
//	Table I  — delay bounds at C1, C5, C7 of the Fig. 1 tree
//	Table II — ramp-input delays and relative errors at A, B, C of the
//	           25-node line for rise times 1, 5, 10 ns
//	Fig. 3/5 — step + impulse responses at C5 / C1
//	Fig. 4   — symmetric-density illustration (mean = median = mode)
//	Fig. 12  — 50% delay vs input rise time, asymptotic to T_D
//	Fig. 13  — impulse responses at A, B, C (skew decreasing downstream)
//	Fig. 14  — relative error vs node position for several rise times
//
// Each generator returns plain data plus text/CSV renderers, so the
// same code backs the CLI (cmd/repro), the benchmarks (bench_test.go)
// and EXPERIMENTS.md.
package repro

import (
	"fmt"
	"math"

	"elmore/internal/core"
	"elmore/internal/exact"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

// TableIRow is one row of Table I: all delay bounds at one node (units:
// seconds).
type TableIRow struct {
	Node       string
	Actual     float64 // exact 50% step delay (col 2)
	Elmore     float64 // T_D (col 3)
	Lower      float64 // max(T_D - sigma, 0) (col 4)
	SinglePole float64 // ln2 * T_D (col 5)
	PRHTmax    float64 // Penfield-Rubinstein upper bound (col 6)
	PRHTmin    float64 // Penfield-Rubinstein lower bound (col 7)
}

// TableIResult is the reproduced Table I.
type TableIResult struct {
	Rows []TableIRow
}

// PaperTableI holds the published Table I values (seconds) for
// comparison in EXPERIMENTS.md. Column order matches TableIRow.
var PaperTableI = map[string]TableIRow{
	"C1": {Node: "C1", Actual: 0.196e-9, Elmore: 0.55e-9, Lower: 0, SinglePole: 0.383e-9, PRHTmax: 0.55e-9, PRHTmin: 0},
	"C5": {Node: "C5", Actual: 0.919e-9, Elmore: 1.2e-9, Lower: 0.2e-9, SinglePole: 0.83e-9, PRHTmax: 1.32e-9, PRHTmin: 0.51e-9},
	"C7": {Node: "C7", Actual: 0.45e-9, Elmore: 0.75e-9, Lower: 0, SinglePole: 0.524e-9, PRHTmax: 1.02e-9, PRHTmin: 0.054e-9},
}

// TableINodes lists the observed nodes in paper order.
var TableINodes = []string{"C1", "C5", "C7"}

// TableI reproduces Table I on the calibrated Fig. 1 circuit.
func TableI() (*TableIResult, error) {
	tree := topo.Fig1Tree()
	an, err := core.Analyze(tree)
	if err != nil {
		return nil, err
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{}
	for _, name := range TableINodes {
		i := tree.MustIndex(name)
		actual, err := sys.Delay50Step(i)
		if err != nil {
			return nil, fmt.Errorf("repro: table I node %s: %w", name, err)
		}
		b := an.Bounds[i]
		res.Rows = append(res.Rows, TableIRow{
			Node:       name,
			Actual:     actual,
			Elmore:     b.Elmore,
			Lower:      b.Lower,
			SinglePole: b.SinglePole,
			PRHTmax:    b.PRHTmax,
			PRHTmin:    b.PRHTmin,
		})
	}
	return res, nil
}

// Check verifies the structural claims the paper makes about Table I:
// bound ordering at every node, t_max = T_D at the driving point,
// t_max > T_D at the loads. It returns a list of violations (empty
// means the reproduction has the paper's shape).
func (r *TableIResult) Check() []string {
	var bad []string
	const tol = 1 + 1e-9
	for _, row := range r.Rows {
		if row.Actual > row.Elmore*tol {
			bad = append(bad, fmt.Sprintf("%s: actual %g exceeds Elmore bound %g", row.Node, row.Actual, row.Elmore))
		}
		if row.Lower > row.Actual*tol {
			bad = append(bad, fmt.Sprintf("%s: lower bound %g exceeds actual %g", row.Node, row.Lower, row.Actual))
		}
		if row.PRHTmin > row.Actual*tol || row.Actual > row.PRHTmax*tol {
			bad = append(bad, fmt.Sprintf("%s: actual %g outside PRH [%g, %g]", row.Node, row.Actual, row.PRHTmin, row.PRHTmax))
		}
	}
	first := r.Rows[0]
	if math.Abs(first.PRHTmax-first.Elmore) > 1e-12*first.Elmore {
		bad = append(bad, fmt.Sprintf("driving point: t_max %g != T_D %g", first.PRHTmax, first.Elmore))
	}
	for _, row := range r.Rows[1:] {
		if row.PRHTmax <= row.Elmore {
			bad = append(bad, fmt.Sprintf("%s: t_max %g should exceed T_D %g", row.Node, row.PRHTmax, row.Elmore))
		}
	}
	return bad
}

// TableIIEntry is one (rise time, delay) measurement.
type TableIIEntry struct {
	RiseTime  float64
	Delay     float64 // measured 50% delay (output 50% - input 50%)
	RelErrPct float64 // |delay - T_D| / delay * 100
}

// TableIIRow is one node of Table II.
type TableIIRow struct {
	Node    string
	Elmore  float64
	Entries []TableIIEntry
}

// TableIIResult is the reproduced Table II.
type TableIIResult struct {
	RiseTimes []float64
	Rows      []TableIIRow
}

// PaperTableII holds the published Table II values: per node, the
// Elmore delay and (delay, %error) for rise times 1, 5, 10 ns.
var PaperTableII = map[string]struct {
	Elmore  float64
	Delays  [3]float64
	ErrPcts [3]float64
}{
	"A": {Elmore: 0.02e-9, Delays: [3]float64{0.01e-9, 18.0e-12, 19.0e-12}, ErrPcts: [3]float64{104, 11.9, 1.54}},
	"B": {Elmore: 1.13e-9, Delays: [3]float64{0.72e-9, 1.06e-9, 1.116e-9}, ErrPcts: [3]float64{54.7, 6.5, 0.86}},
	"C": {Elmore: 1.56e-9, Delays: [3]float64{1.2e-9, 1.48e-9, 1.547e-9}, ErrPcts: [3]float64{29.6, 4.8, 0.64}},
}

// TableIIRiseTimes are the paper's rise times.
var TableIIRiseTimes = []float64{1e-9, 5e-9, 10e-9}

// TableII reproduces Table II on the calibrated 25-node line. Passing
// no rise times uses the paper's 1, 5, 10 ns.
func TableII(riseTimes ...float64) (*TableIIResult, error) {
	if len(riseTimes) == 0 {
		riseTimes = TableIIRiseTimes
	}
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{RiseTimes: riseTimes}
	nodes := []struct{ label, name string }{
		{"A", topo.Line25NodeA},
		{"B", topo.Line25NodeB},
		{"C", topo.Line25NodeC},
	}
	for _, nd := range nodes {
		i := tree.MustIndex(nd.name)
		row := TableIIRow{Node: nd.label, Elmore: sys.Mean(i)}
		for _, tr := range riseTimes {
			d, err := sys.Delay(i, signal.SaturatedRamp{Tr: tr}, 0)
			if err != nil {
				return nil, fmt.Errorf("repro: table II node %s tr=%g: %w", nd.label, tr, err)
			}
			row.Entries = append(row.Entries, TableIIEntry{
				RiseTime:  tr,
				Delay:     d,
				RelErrPct: math.Abs(d-row.Elmore) / d * 100,
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Check verifies Table II's structural claims: every measured delay is
// below T_D; the relative error decreases with rise time at every node
// and decreases downstream (A > B > C) at every rise time.
func (r *TableIIResult) Check() []string {
	var bad []string
	for _, row := range r.Rows {
		for k, e := range row.Entries {
			if e.Delay > row.Elmore*(1+1e-9) {
				bad = append(bad, fmt.Sprintf("%s tr=%g: delay %g exceeds T_D %g", row.Node, e.RiseTime, e.Delay, row.Elmore))
			}
			if k > 0 && e.RelErrPct > row.Entries[k-1].RelErrPct {
				bad = append(bad, fmt.Sprintf("%s: error not decreasing with rise time", row.Node))
			}
		}
	}
	for k := range r.RiseTimes {
		for rowIdx := 1; rowIdx < len(r.Rows); rowIdx++ {
			if r.Rows[rowIdx].Entries[k].RelErrPct > r.Rows[rowIdx-1].Entries[k].RelErrPct {
				bad = append(bad, fmt.Sprintf("tr=%g: error not decreasing downstream (%s vs %s)",
					r.RiseTimes[k], r.Rows[rowIdx].Node, r.Rows[rowIdx-1].Node))
			}
		}
	}
	return bad
}
