package repro

import (
	"math"
	"strings"
	"testing"
)

func TestTableIShape(t *testing.T) {
	res, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if bad := res.Check(); len(bad) != 0 {
		t.Fatalf("structural violations: %v", bad)
	}
	// Calibrated Elmore column matches the paper exactly.
	for _, row := range res.Rows {
		paper := PaperTableI[row.Node]
		if math.Abs(row.Elmore-paper.Elmore) > 1e-12 {
			t.Errorf("%s: Elmore %v, paper %v", row.Node, row.Elmore, paper.Elmore)
		}
		// The actual delay lands in the same regime as the paper's
		// (within a factor ~2: the paper's exact R/C values are not
		// published).
		if row.Actual < paper.Actual/2 || row.Actual > paper.Actual*2 {
			t.Errorf("%s: actual %v far from paper's %v", row.Node, row.Actual, paper.Actual)
		}
	}
	txt := res.Render()
	for _, want := range []string{"Table I", "C1", "C5", "C7", "PRH t_max"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "node,actual,elmore") || strings.Count(csv, "\n") != 4 {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestTableIIShape(t *testing.T) {
	res, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Rows[0].Entries) != 3 {
		t.Fatalf("shape wrong")
	}
	if bad := res.Check(); len(bad) != 0 {
		t.Fatalf("structural violations: %v", bad)
	}
	// Calibration: Elmore at A and C match the paper exactly; B is
	// within 5% (the paper's exact tree is unpublished).
	a, c := res.Rows[0], res.Rows[2]
	if math.Abs(a.Elmore-0.02e-9) > 1e-13 || math.Abs(c.Elmore-1.56e-9) > 1e-12 {
		t.Errorf("calibration off: A=%v C=%v", a.Elmore, c.Elmore)
	}
	b := res.Rows[1]
	if math.Abs(b.Elmore-1.13e-9) > 0.05*1.13e-9 {
		t.Errorf("B Elmore %v too far from paper's 1.13ns", b.Elmore)
	}
	// Error magnitudes in the paper's regime (same order at each cell).
	for _, row := range res.Rows {
		paper := PaperTableII[row.Node]
		for k, e := range row.Entries {
			p := paper.ErrPcts[k]
			if e.RelErrPct < p/4 || e.RelErrPct > p*4 {
				t.Errorf("%s tr=%g: err %.3g%% vs paper %.3g%% (off >4x)",
					row.Node, e.RiseTime, e.RelErrPct, p)
			}
		}
	}
	if !strings.Contains(res.Render(), "Table II") {
		t.Errorf("Render malformed")
	}
	if !strings.HasPrefix(res.CSV(), "node,elmore,rise_time") {
		t.Errorf("CSV malformed")
	}
}

func TestFig3And5(t *testing.T) {
	for _, f := range []func() ([]Series, error){Fig3, Fig5} {
		series, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 2 {
			t.Fatalf("series = %d", len(series))
		}
		step := series[0]
		if step.Y[0] != 0 || step.Y[len(step.Y)-1] < 0.9 {
			t.Errorf("step series shape wrong: %v .. %v", step.Y[0], step.Y[len(step.Y)-1])
		}
		imp := series[1]
		max := 0.0
		for _, y := range imp.Y {
			if y < -1e-9 {
				t.Errorf("impulse went negative")
			}
			if y > max {
				max = y
			}
		}
		if max <= 0 {
			t.Errorf("impulse series empty")
		}
	}
	csv := SeriesCSV(Fig4())
	if !strings.HasPrefix(csv, "series,x,y") {
		t.Errorf("SeriesCSV malformed")
	}
}

func TestFig4Symmetric(t *testing.T) {
	s := Fig4()[0]
	n := len(s.Y)
	for k := 0; k < n/2; k++ {
		if math.Abs(s.Y[k]-s.Y[n-1-k]) > 1e-12 {
			t.Fatalf("Fig4 density not symmetric at %d", k)
		}
	}
}

func TestFig12(t *testing.T) {
	res, err := Fig12(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad := res.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
	if !strings.Contains(res.Render(), "T_D asymptote") {
		t.Errorf("Render malformed")
	}
	if !strings.HasPrefix(res.CSV(), "rise_time,C1,C5,C7") {
		t.Errorf("CSV malformed:\n%s", res.CSV()[:40])
	}
}

func TestFig13SkewDecreases(t *testing.T) {
	series, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	skews, err := Fig13Skews()
	if err != nil {
		t.Fatal(err)
	}
	if !(skews["A"] > skews["B"] && skews["B"] > skews["C"]) {
		t.Errorf("skew should decrease downstream: %v", skews)
	}
	if skews["C"] < 0 {
		t.Errorf("skew must stay nonnegative: %v", skews)
	}
}

func TestFig14(t *testing.T) {
	res, err := Fig14(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 25 {
		t.Fatalf("positions = %d", len(res.Positions))
	}
	if bad := res.Check(); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
	if !strings.Contains(res.Render(), "Fig. 14") {
		t.Errorf("Render malformed")
	}
	if !strings.HasPrefix(res.CSV(), "position,tr_") {
		t.Errorf("CSV malformed")
	}
}

func TestLogspace(t *testing.T) {
	xs := logspace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("logspace = %v", xs)
		}
	}
}
