package repro

import (
	"math"
	"testing"
)

func TestFigPRHBracket(t *testing.T) {
	for _, node := range []string{"C1", "C5", "C7"} {
		series, err := FigPRH(node)
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if bad := CheckPRHFigure(series); len(bad) != 0 {
			t.Fatalf("%s: bracket violations: %v", node, bad)
		}
		// The bracket is tight at the driving point for low levels
		// (the paper's t_max = T_D effect) and widens at high v.
		minS, maxS := series[0], series[2]
		last := len(minS.X) - 1
		if !(maxS.X[last] > minS.X[last]) {
			t.Errorf("%s: bracket should have width at v->1", node)
		}
	}
	if _, err := FigPRH("nope"); err == nil {
		t.Errorf("unknown node should error")
	}
}

func TestInputShapeStudy(t *testing.T) {
	rows, err := InputShapeStudy("C5", 0.3e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if bad := CheckInputShapes(rows); len(bad) != 0 {
		t.Fatalf("bound violations: %v", bad)
	}
	// Symmetric-derivative inputs share the T_D bound; the skewed
	// exponential gets a strictly larger one.
	if math.Abs(rows[0].Upper-rows[1].Upper) > 1e-12*rows[0].Upper {
		t.Errorf("ramp and raised-cosine bounds should coincide at T_D: %v vs %v",
			rows[0].Upper, rows[1].Upper)
	}
	if rows[2].Upper <= rows[0].Upper {
		t.Errorf("exponential bound %v should exceed T_D %v (skewed input shift)",
			rows[2].Upper, rows[0].Upper)
	}
	// All margins positive and finite.
	for _, r := range rows {
		if r.MarginPct < 0 || math.IsInf(r.MarginPct, 0) || math.IsNaN(r.MarginPct) {
			t.Errorf("%s: margin %v", r.Input, r.MarginPct)
		}
	}
	if _, err := InputShapeStudy("nope", 1e-9); err == nil {
		t.Errorf("unknown node should error")
	}
}
