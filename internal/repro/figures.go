package repro

import (
	"fmt"
	"math"

	"elmore/internal/exact"
	"elmore/internal/signal"
	"elmore/internal/topo"
	"elmore/internal/waveform"
)

// Series is one named (x, y) curve of a reproduced figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

func seriesFromWaveform(name string, w *waveform.Waveform) Series {
	return Series{Name: name, X: w.T, Y: w.V}
}

// FigSamples is the per-curve sample count used by the figure
// generators.
const FigSamples = 400

// responseFigure samples the step response and the impulse response
// (scaled by `scale`, as the paper does to share one axis) at one node.
func responseFigure(treeName, nodeName string, scale float64) ([]Series, error) {
	var tree = topo.Fig1Tree()
	if treeName == "line25" {
		tree = topo.Line25Tree()
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	i := tree.MustIndex(nodeName)
	horizon := sys.Horizon(0) / 2
	step, err := sys.StepWaveform(i, horizon, FigSamples)
	if err != nil {
		return nil, err
	}
	imp, err := sys.ImpulseWaveform(i, horizon, FigSamples)
	if err != nil {
		return nil, err
	}
	for k := range imp.V {
		imp.V[k] *= scale
	}
	return []Series{
		seriesFromWaveform(fmt.Sprintf("step@%s", nodeName), step),
		seriesFromWaveform(fmt.Sprintf("impulse@%s (x%g)", nodeName, scale), imp),
	}, nil
}

// Fig3 reproduces Fig. 3: the unit step response and the (scaled)
// impulse response at C5 of the Fig. 1 tree — moderately skewed.
func Fig3() ([]Series, error) { return responseFigure("fig1", "C5", 1e-9) }

// Fig5 reproduces Fig. 5: the same pair at C1, the driving point —
// heavily skewed, which is why ln2*T_D is pessimistic there.
func Fig5() ([]Series, error) { return responseFigure("fig1", "C1", 1e-9/4) }

// Fig4 reproduces the paper's Fig. 4 illustration: a symmetric unimodal
// density (a truncated Gaussian) for which mean = median = mode, the
// situation in which Elmore's mean-for-median substitution is exact.
func Fig4() []Series {
	const (
		mu    = 5.0
		sigma = 1.0
		n     = FigSamples
	)
	x := make([]float64, n+1)
	y := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		x[k] = mu - 4*sigma + 8*sigma*float64(k)/float64(n)
		d := (x[k] - mu) / sigma
		y[k] = math.Exp(-d*d/2) / (sigma * math.Sqrt(2*math.Pi))
	}
	return []Series{{Name: "symmetric h(t)", X: x, Y: y}}
}

// Fig12Result carries the delay-vs-rise-time curves (paper Fig. 12) for
// each observed node of the Fig. 1 tree, plus the Elmore asymptote.
type Fig12Result struct {
	RiseTimes []float64
	Nodes     []string
	Delays    map[string][]float64 // node -> delay per rise time
	Elmore    map[string]float64   // node -> T_D asymptote
}

// DefaultFig12RiseTimes spans three decades around the circuit's time
// constants.
var DefaultFig12RiseTimes = logspace(0.05e-9, 20e-9, 25)

// Fig12 reproduces Fig. 12: the 50% delay under saturated-ramp inputs
// as a function of rise time, at C1, C5 and C7, approaching T_D from
// below.
func Fig12(riseTimes []float64) (*Fig12Result, error) {
	if len(riseTimes) == 0 {
		riseTimes = DefaultFig12RiseTimes
	}
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		RiseTimes: riseTimes,
		Nodes:     []string{"C1", "C5", "C7"},
		Delays:    make(map[string][]float64),
		Elmore:    make(map[string]float64),
	}
	for _, name := range res.Nodes {
		i := tree.MustIndex(name)
		res.Elmore[name] = sys.Mean(i)
		ds := make([]float64, len(riseTimes))
		for k, tr := range riseTimes {
			d, err := sys.Delay(i, signal.SaturatedRamp{Tr: tr}, 0)
			if err != nil {
				return nil, fmt.Errorf("repro: fig12 %s tr=%g: %w", name, tr, err)
			}
			ds[k] = d
		}
		res.Delays[name] = ds
	}
	return res, nil
}

// Check verifies Fig. 12's claims: each curve is nondecreasing, stays
// below its T_D asymptote, and closes to within 2% of T_D at the
// largest rise time.
func (r *Fig12Result) Check() []string {
	var bad []string
	for _, name := range r.Nodes {
		ds := r.Delays[name]
		td := r.Elmore[name]
		for k, d := range ds {
			if d > td*(1+1e-9) {
				bad = append(bad, fmt.Sprintf("%s tr=%g: delay %g above T_D %g", name, r.RiseTimes[k], d, td))
			}
			if k > 0 && d < ds[k-1]*(1-1e-9) {
				bad = append(bad, fmt.Sprintf("%s: delay curve not monotone at tr=%g", name, r.RiseTimes[k]))
			}
		}
		if last := ds[len(ds)-1]; last < 0.9*td {
			bad = append(bad, fmt.Sprintf("%s: delay %g has not approached T_D %g at tr=%g", name, last, td, r.RiseTimes[len(ds)-1]))
		}
	}
	return bad
}

// Fig13 reproduces Fig. 13: the impulse responses at nodes A (driving
// point), B (middle) and C (leaf) of the 25-node line. The responses
// become visibly more symmetric downstream.
func Fig13() ([]Series, error) {
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	horizon := sys.Horizon(0) / 2
	var out []Series
	for _, nd := range []struct{ label, name string }{
		{"A", topo.Line25NodeA}, {"B", topo.Line25NodeB}, {"C", topo.Line25NodeC},
	} {
		w, err := sys.ImpulseWaveform(tree.MustIndex(nd.name), horizon, FigSamples)
		if err != nil {
			return nil, err
		}
		out = append(out, seriesFromWaveform("h@"+nd.label, w))
	}
	return out, nil
}

// Fig13Skews returns the exact skewness at A, B, C — the quantity whose
// decrease the figure illustrates.
func Fig13Skews() (map[string]float64, error) {
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, nd := range []struct{ label, name string }{
		{"A", topo.Line25NodeA}, {"B", topo.Line25NodeB}, {"C", topo.Line25NodeC},
	} {
		i := tree.MustIndex(nd.name)
		mu2 := sys.Mu2(i)
		out[nd.label] = sys.Mu3(i) / math.Pow(mu2, 1.5)
	}
	return out, nil
}

// Fig14Result carries relative Elmore error vs node position curves
// (paper Fig. 14) for several input rise times on the 25-node line.
type Fig14Result struct {
	RiseTimes []float64
	Positions []int                 // node position along the line, 1-based
	ErrPct    map[float64][]float64 // rise time -> |T_D - delay|/delay * 100 per node
}

// Fig14 reproduces Fig. 14. Empty riseTimes uses the paper's 1, 5,
// 10 ns.
func Fig14(riseTimes []float64) (*Fig14Result, error) {
	if len(riseTimes) == 0 {
		riseTimes = TableIIRiseTimes
	}
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{RiseTimes: riseTimes, ErrPct: make(map[float64][]float64)}
	for i := 0; i < tree.N(); i++ {
		res.Positions = append(res.Positions, i+1)
	}
	for _, tr := range riseTimes {
		errs := make([]float64, tree.N())
		for i := 0; i < tree.N(); i++ {
			d, err := sys.Delay(i, signal.SaturatedRamp{Tr: tr}, 0)
			if err != nil {
				return nil, fmt.Errorf("repro: fig14 node %d tr=%g: %w", i, tr, err)
			}
			errs[i] = math.Abs(sys.Mean(i)-d) / d * 100
		}
		res.ErrPct[tr] = errs
	}
	return res, nil
}

// Check verifies Fig. 14's claims: at every node the error decreases
// with rise time, and along the line each curve decreases from the
// driving point to the leaf (allowing tiny numerical wiggle).
func (r *Fig14Result) Check() []string {
	var bad []string
	for k := 1; k < len(r.RiseTimes); k++ {
		slow := r.ErrPct[r.RiseTimes[k]]
		fast := r.ErrPct[r.RiseTimes[k-1]]
		for i := range slow {
			if slow[i] > fast[i]*(1+1e-9) {
				bad = append(bad, fmt.Sprintf("node %d: error grew with rise time", i+1))
			}
		}
	}
	for _, tr := range r.RiseTimes {
		errs := r.ErrPct[tr]
		for i := 1; i < len(errs); i++ {
			if errs[i] > errs[i-1]*(1+1e-6) {
				bad = append(bad, fmt.Sprintf("tr=%g: error grew from node %d to %d", tr, i, i+1))
			}
		}
	}
	return bad
}

// logspace returns n log-spaced points between lo and hi inclusive.
func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		f := float64(k) / float64(n-1)
		out[k] = math.Exp(math.Log(lo) + f*(math.Log(hi)-math.Log(lo)))
	}
	return out
}
