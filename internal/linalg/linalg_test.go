package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Fatalf("Set/Add/At broken: %v", m.Data)
	}
	cp := m.Clone()
	cp.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Errorf("Clone aliases original")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 7 {
		t.Errorf("T wrong: %v", tr)
	}
}

func TestFromRowsAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
	x := a.MulVec([]float64{1, 1})
	if x[0] != 3 || x[1] != 7 {
		t.Errorf("MulVec = %v", x)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	s := a.AddMatrix(b)
	d := a.SubMatrix(b)
	if s.At(1, 1) != 5 || d.At(1, 1) != 3 {
		t.Errorf("Add/Sub wrong")
	}
	a.Scale(2)
	if a.At(0, 1) != 4 {
		t.Errorf("Scale wrong")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
	if !approx(Norm2(a), math.Sqrt(14), eps) {
		t.Errorf("Norm2 = %v", Norm2(a))
	}
	if NormInf([]float64{-5, 2}) != 5 {
		t.Errorf("NormInf wrong")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[2] != 7 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	x, err := SolveLU(a, []float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if !approx(x[i], want[i], eps) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Det(), -14, eps) {
		t.Errorf("Det = %v, want -14", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Errorf("singular matrix should fail to factor")
	}
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Errorf("non-square matrix should fail to factor")
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps the matrix comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !approx(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	id := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approx(id.At(i, j), want, eps) {
				t.Errorf("A*inv(A)[%d,%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.5)
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		a := randomSPD(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		ch, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := ch.Solve(b)
		for i := range x {
			if !approx(x[i], xTrue[i], 1e-7) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
		// L L^T == A
		l := ch.L()
		llt := l.Mul(l.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !approx(llt.At(i, j), a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: LL^T mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Errorf("indefinite matrix should fail Cholesky")
	}
}

func TestTridiag(t *testing.T) {
	// 4x4 system: -1 on off-diagonals, 2 on diagonal (discrete Laplacian).
	n := 4
	sub := []float64{0, -1, -1, -1}
	diag := []float64{2, 2, 2, 2}
	sup := []float64{-1, -1, -1, 0}
	xTrue := []float64{1, 2, 3, 4}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = diag[i] * xTrue[i]
		if i > 0 {
			b[i] += sub[i] * xTrue[i-1]
		}
		if i < n-1 {
			b[i] += sup[i] * xTrue[i+1]
		}
	}
	x, err := Tridiag(sub, diag, sup, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approx(x[i], xTrue[i], eps) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestTridiagErrors(t *testing.T) {
	if _, err := Tridiag([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Errorf("zero pivot should fail")
	}
	if _, err := Tridiag([]float64{0}, []float64{1, 2}, []float64{0}, []float64{1}); err == nil {
		t.Errorf("length mismatch should fail")
	}
}

func TestEigSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 1, eps) || !approx(vals[1], 3, eps) {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Check A v = λ v for each column.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := a.MulVec(v)
		for i := range av {
			if !approx(av[i], vals[j]*v[i], eps) {
				t.Errorf("col %d: Av != λv", j)
			}
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		a := randomSPD(rng, n)
		vals, vecs, err := EigSym(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Ascending order, all positive for SPD.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
			}
		}
		if vals[0] <= 0 {
			t.Fatalf("trial %d: SPD matrix has nonpositive eigenvalue %v", trial, vals[0])
		}
		// Reconstruct: V diag V^T == A.
		lam := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, vals[i])
		}
		rec := vecs.Mul(lam).Mul(vecs.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !approx(rec.At(i, j), a.At(i, j), 1e-8) {
					t.Fatalf("trial %d: reconstruction mismatch at (%d,%d): %v vs %v",
						trial, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
		// Orthonormal columns.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !approx(vtv.At(i, j), want, 1e-9) {
					t.Fatalf("trial %d: V not orthonormal", trial)
				}
			}
		}
	}
}

func TestEigSymRejects(t *testing.T) {
	if _, _, err := EigSym(NewMatrix(2, 3)); err == nil {
		t.Errorf("non-square should fail")
	}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigSym(a); err == nil {
		t.Errorf("asymmetric should fail")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Identity(3).IsSymmetric(1e-12) {
		t.Errorf("identity should be symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.IsSymmetric(1e-12) {
		t.Errorf("asymmetric matrix reported symmetric")
	}
	if !NewMatrix(2, 2).IsSymmetric(1e-12) {
		t.Errorf("zero matrix should be symmetric")
	}
}

// Property: solving A x = A x0 recovers x0 for random well-conditioned
// diagonally dominant systems.
func TestLUQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, float64(n)+1)
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64()*2 - 1
		}
		b := a.MulVec(x0)
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !approx(x[i], x0[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
