// Package linalg provides the small dense linear-algebra kernel used by
// the exact response engine and the transient simulator: matrices, LU and
// Cholesky factorizations, a Jacobi eigensolver for symmetric matrices,
// and a Thomas solver for tridiagonal systems.
//
// Everything is float64 and stdlib-only. Sizes in this repository are
// modest (RC trees up to a few thousand nodes for the exact engine), so
// clarity is preferred over blocking or vectorization tricks.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix size %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v — the natural operation for MNA
// stamping.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.Rows, m.Cols)
	copy(cp.Data, m.Data)
	return cp
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m * x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMatrix returns m + b as a new matrix.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddMatrix dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// SubMatrix returns m - b as a new matrix.
func (m *Matrix) SubMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: SubMatrix dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric to tolerance tol
// relative to the largest absolute element.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	maxAbs := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return true
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	maxAbs := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "% .6g", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}
