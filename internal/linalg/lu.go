package linalg

import (
	"fmt"
	"math"
)

// LU is an LU factorization with partial (row) pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // packed L (unit diagonal, below) and U (on/above)
	piv  []int   // row permutation
	sign int     // permutation parity, for Det
}

// FactorLU computes the pivoted LU factorization of a square matrix a.
// It returns an error if a is singular to working precision.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot: largest |value| in column k at or below row k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("linalg: singular matrix (zero pivot at column %d)", k)
		}
		if p != k {
			swapRows(lu, p, k)
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves A*x = b and returns x as a new slice.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU.Solve length mismatch %d != %d", len(b), n))
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU is a convenience wrapper: factor a and solve a*x = b.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of a, or an error if a is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
