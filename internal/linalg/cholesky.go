package linalg

import (
	"fmt"
	"math"
)

// Cholesky is the lower-triangular factor of a symmetric positive
// definite matrix: A = L * L^T.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read. It
// returns an error if a is not positive definite to working precision.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite (pivot %d = %g)", j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A*x = b using the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: Cholesky.Solve length mismatch %d != %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// L y = b
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += c.l.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / c.l.At(i, i)
	}
	// L^T x = y
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += c.l.At(j, i) * x[j]
		}
		x[i] = (x[i] - s) / c.l.At(i, i)
	}
	return x
}

// L returns the lower-triangular factor (owned by the factorization).
func (c *Cholesky) L() *Matrix { return c.l }

// Tridiag solves a tridiagonal system with the Thomas algorithm:
//
//	sub[i]*x[i-1] + diag[i]*x[i] + sup[i]*x[i+1] = b[i]
//
// sub[0] and sup[n-1] are ignored. It returns an error on a zero pivot
// (the algorithm is stable for the diagonally dominant systems produced
// by RC-line discretizations).
func Tridiag(sub, diag, sup, b []float64) ([]float64, error) {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(b) != n {
		return nil, fmt.Errorf("linalg: Tridiag length mismatch")
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if diag[0] == 0 {
		return nil, fmt.Errorf("linalg: Tridiag zero pivot at row 0")
	}
	cp[0] = sup[0] / diag[0]
	dp[0] = b[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("linalg: Tridiag zero pivot at row %d", i)
		}
		cp[i] = sup[i] / den
		dp[i] = (b[i] - sub[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
