package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSym computes the eigen-decomposition A = V * diag(values) * V^T of a
// symmetric matrix using the cyclic Jacobi method. Eigenvalues are
// returned in ascending order; the i-th column of V is the unit
// eigenvector for values[i].
//
// Jacobi is O(n^3) per sweep and converges quadratically; for the
// RC-tree state matrices used in this repository (symmetric, modest n)
// it is simple and extremely accurate, which is exactly what the exact
// response engine needs.
func EigSym(a *Matrix) ([]float64, *Matrix, error) {
	vals, vecs, _, err := EigSymSweeps(a)
	return vals, vecs, err
}

// EigSymSweeps is EigSym, additionally reporting the number of Jacobi
// sweeps it ran — the eigensolve iteration count that the exact engine
// exports as telemetry.
func EigSymSweeps(a *Matrix) ([]float64, *Matrix, int, error) {
	if a.Rows != a.Cols {
		return nil, nil, 0, fmt.Errorf("linalg: EigSym of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10) {
		return nil, nil, 0, fmt.Errorf("linalg: EigSym requires a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	sweeps := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.MaxAbs()) {
			break
		}
		sweeps++
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p,q,θ): W = J^T W J, V = V J.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
		if sweep == maxSweeps-1 {
			return nil, nil, sweeps, fmt.Errorf("linalg: Jacobi did not converge in %d sweeps", maxSweeps)
		}
	}

	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, sweeps, nil
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
