package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecordSnapshotRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(1, 8)
	tc := MintTrace()
	tc.Attempt = 3
	fr.Record(FlightEvent{Kind: FlightRetry, When: 100, Trace: tc, Index: 7, DurNS: 42, Code: 2, Label: "j7"})
	fr.Record(FlightEvent{Kind: FlightFault, When: 200, Index: -1, Label: "sim.step"})
	events, torn := fr.Snapshot()
	if torn != 0 || len(events) != 2 {
		t.Fatalf("Snapshot = %d events, %d torn; want 2, 0", len(events), torn)
	}
	got := events[0]
	if got.Kind != FlightRetry || got.When != 100 || got.Trace != tc ||
		got.Index != 7 || got.DurNS != 42 || got.Code != 2 || got.Label != "j7" {
		t.Errorf("event 0 = %+v", got)
	}
	if events[1].Index != -1 || events[1].Label != "sim.step" {
		t.Errorf("negative index or label lost: %+v", events[1])
	}
}

func TestFlightRingWraparound(t *testing.T) {
	fr := NewFlightRecorder(1, 8)
	for i := 1; i <= 20; i++ {
		fr.RecordShard(0, FlightEvent{Kind: FlightJobDone, When: int64(i), Index: int64(i)})
	}
	events, torn := fr.Snapshot()
	if torn != 0 {
		t.Fatalf("%d torn records on a quiescent ring", torn)
	}
	if len(events) != 8 {
		t.Fatalf("ring of 8 holds %d events after 20 appends", len(events))
	}
	// Oldest were overwritten: the survivors are exactly 13..20, in order.
	for i, ev := range events {
		if want := int64(13 + i); ev.When != want {
			t.Errorf("event %d: When = %d, want %d (oldest-first after wrap)", i, ev.When, want)
		}
	}
}

func TestFlightLabelTruncated(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	long := strings.Repeat("x", 100)
	fr.Record(FlightEvent{Kind: FlightSpan, When: 1, Label: long})
	events, _ := fr.Snapshot()
	if len(events) != 1 || events[0].Label != long[:32] {
		t.Fatalf("label = %q, want 32-byte truncation", events[0].Label)
	}
}

func TestFlightTornRecordSkippedAndCounted(t *testing.T) {
	fr := NewFlightRecorder(1, 4)
	fr.Record(FlightEvent{Kind: FlightSpan, When: 1, Label: "ok"})
	fr.Record(FlightEvent{Kind: FlightSpan, When: 2, Label: "torn"})
	// Simulate an append caught mid-write: begin has moved past commit,
	// exactly what a dump racing an overwrite observes.
	sh := &fr.shards[0]
	for i := range sh.slot {
		if ev, _, ok := sh.slot[i].load(); ok && ev.Label == "torn" {
			sh.slot[i].begin.Store(sh.slot[i].begin.Load() + 100)
		}
	}
	events, torn := fr.Snapshot()
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
	if len(events) != 1 || events[0].Label != "ok" {
		t.Errorf("events = %+v, want only the intact record", events)
	}

	var buf bytes.Buffer
	if err := fr.DumpTo(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var hdr struct {
		Record string `json:"record"`
		Events int    `json:"events"`
		Torn   int    `json:"torn"`
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Record != "flight_dump" || hdr.Events != 1 || hdr.Torn != 1 {
		t.Errorf("dump header = %+v", hdr)
	}
}

// TestFlightConcurrentAppendAndDump is the -race proof for the seqlock
// scheme: workers hammer their shards while a dumper snapshots
// continuously. Nothing here synchronizes appends with dumps; the
// begin/commit markers alone must keep it race-free and every surfaced
// record internally consistent (When == Index by construction).
func TestFlightConcurrentAppendAndDump(t *testing.T) {
	fr := NewFlightRecorder(4, 16)
	const workers, per = 4, 5000
	stop := make(chan struct{})
	dumperDone := make(chan struct{})
	go func() {
		defer close(dumperDone)
		for {
			events, _ := fr.Snapshot()
			for _, ev := range events {
				if ev.When != ev.Index {
					t.Errorf("inconsistent record surfaced: When=%d Index=%d", ev.When, ev.Index)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				n := int64(w*per + i)
				fr.RecordShard(w, FlightEvent{Kind: FlightJobDone, When: n, Index: n, Label: "job"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-dumperDone
}

func TestFlightAppendAllocFree(t *testing.T) {
	fr := NewFlightRecorder(2, 16)
	tc := MintTrace()
	ev := FlightEvent{Kind: FlightJobDone, When: 1, Trace: tc, Index: 3, Label: "j3"}
	if allocs := testing.AllocsPerRun(1000, func() {
		fr.RecordShard(0, ev)
	}); allocs != 0 {
		t.Errorf("RecordShard allocates %.1f times per append, want 0", allocs)
	}
}

// TestFlightDisabledPathFree is the obs-smoke budget assertion: with no
// recorder installed, the package-level hooks the batch hot path calls
// are one atomic load + nil check — zero allocations.
func TestFlightDisabledPathFree(t *testing.T) {
	if prev := SetFlightRecorder(nil); prev != nil {
		defer SetFlightRecorder(prev)
	}
	if FlightEnabled() {
		t.Fatal("recorder unexpectedly installed")
	}
	ev := FlightEvent{Kind: FlightJobDone, When: 1, Index: 3}
	if allocs := testing.AllocsPerRun(1000, func() {
		FlightRecordShard(0, ev)
		FlightRecord(ev)
		if FlightEnabled() {
			t.Fatal("enabled")
		}
	}); allocs != 0 {
		t.Errorf("disabled flight path allocates %.1f times, want 0", allocs)
	}
	if FlightDump("nope") {
		t.Error("FlightDump on nil recorder reported success")
	}
}

func TestFlightTriggerDumpThrottleAndFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ndjson")
	fr := NewFlightRecorder(1, 8)
	fr.SetDumpPath(path)
	now := time.Unix(1000, 0)
	fr.now = func() time.Time { return now }
	fr.Record(FlightEvent{Kind: FlightPanic, When: 5, Label: "boom"})

	if !fr.TriggerDump("panic") {
		t.Fatal("first dump throttled")
	}
	if fr.TriggerDump("panic") {
		t.Error("second dump inside MinGap not throttled")
	}
	if !fr.ForceDump("again") {
		t.Error("ForceDump inside MinGap throttled; exit dumps must land")
	}
	now = now.Add(2 * time.Second)
	if !fr.TriggerDump("again") {
		t.Error("dump after MinGap throttled")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var headers, records int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var probe struct {
			Record string `json:"record"`
			Kind   string `json:"kind"`
			Label  string `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("dump line %q: %v", sc.Text(), err)
		}
		switch probe.Record {
		case "flight_dump":
			headers++
		case "flight":
			records++
			if probe.Kind != "panic" || probe.Label != "boom" {
				t.Errorf("record = %+v", probe)
			}
		default:
			t.Errorf("unexpected record kind %q", probe.Record)
		}
	}
	if headers != 3 || records != 3 {
		t.Errorf("dump file has %d headers, %d records; want 3 appended blocks of 1", headers, records)
	}
}

func TestFlightKindStrings(t *testing.T) {
	for k := FlightSpan; k <= FlightSlowJob; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind_") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := FlightKind(200).String(); s != "kind_200" {
		t.Errorf("unknown kind = %q", s)
	}
}

func BenchmarkFlightRecordShard(b *testing.B) {
	fr := NewFlightRecorder(1, 512)
	ev := FlightEvent{Kind: FlightJobDone, When: 1, Index: 3, Label: "j3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.RecordShard(0, ev)
	}
}

// BenchmarkFlightDisabled measures the per-job cost the batch loop pays
// when no recorder is installed — the "≤ a few ns, 0 allocs" budget.
func BenchmarkFlightDisabled(b *testing.B) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	ev := FlightEvent{Kind: FlightJobDone}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if FlightEnabled() {
			FlightRecordShard(0, ev)
		}
	}
}

func ExampleFlightRecorder_DumpTo() {
	fr := NewFlightRecorder(1, 4)
	fr.now = func() time.Time { return time.Unix(0, 42) }
	fr.Record(FlightEvent{Kind: FlightFault, When: 7, Index: -1, Label: "sim.step"})
	var buf bytes.Buffer
	_ = fr.DumpTo(&buf, "example")
	fmt.Print(buf.String())
	// Output:
	// {"record":"flight_dump","reason":"example","t_ns":42,"events":1,"torn":0}
	// {"record":"flight","kind":"fault","t_ns":7,"index":-1,"label":"sim.step"}
}
