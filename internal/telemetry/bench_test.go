package telemetry

import (
	"context"
	"testing"
)

// BenchmarkDisabledCounter measures the cost instrumented hot loops pay
// when no registry is installed: a default-registry load plus nil
// checks. Must report 0 allocs/op.
func BenchmarkDisabledCounter(b *testing.B) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		C("bench.count").Add(1)
		G("bench.gauge").Set(1)
		H("bench.hist").Observe(1)
	}
}

// BenchmarkDisabledSpan measures Start/Attr/End on a context without a
// tracer. Must report 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench.span")
		sp.AttrInt("i", int64(i))
		sp.End()
	}
}

// BenchmarkEnabledCounter is the reference cost with a live registry.
func BenchmarkEnabledCounter(b *testing.B) {
	prev := SetDefault(NewRegistry())
	defer SetDefault(prev)
	c := C("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
