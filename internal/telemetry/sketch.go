package telemetry

// DurationSketch: a bounded-memory streaming quantile sketch over
// durations, replacing the Reporter's exact per-job latency slice
// (which was O(jobs) memory — untenable on 1M-net runs). Buckets are
// log-spaced with ratio sketchGamma, so any quantile is answered with
// bounded relative error (~(gamma-1)/2 ≈ 1%) from a fixed ~1400-entry
// count array (~11 KB) regardless of sample count — the DDSketch
// construction specialized to non-negative durations.

import (
	"math"
	"time"
)

// sketchGamma is the bucket growth ratio. Bucket i (i >= 1) covers
// (gamma^(i-1), gamma^i] nanoseconds; bucket 0 covers [0, 1ns].
const sketchGamma = 1.02

// sketchBuckets covers [1ns, ~1e12ns ≈ 17min] — ceil(log_gamma(1e12))
// + the zero bucket + one overflow bucket.
var sketchBuckets = int(math.Ceil(math.Log(1e12)/math.Log(sketchGamma))) + 2

var invLogGamma = 1 / math.Log(sketchGamma)

// DurationSketch accumulates duration samples into log-spaced buckets.
// Not safe for concurrent use: the Reporter observes results on the
// single emission goroutine, which is the intended usage. The zero
// value is not usable; create with NewDurationSketch.
type DurationSketch struct {
	counts []uint32
	n      int64
	sumNS  float64
	minNS  int64
	maxNS  int64
}

// NewDurationSketch returns an empty sketch with fixed memory.
func NewDurationSketch() *DurationSketch {
	return &DurationSketch{counts: make([]uint32, sketchBuckets), minNS: math.MaxInt64}
}

func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := int(math.Log(float64(ns))*invLogGamma) + 1
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	return i
}

// Observe records one sample. Negative durations clamp to zero.
func (s *DurationSketch) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s.counts[bucketIndex(ns)]++
	s.n++
	s.sumNS += float64(ns)
	if ns < s.minNS {
		s.minNS = ns
	}
	if ns > s.maxNS {
		s.maxNS = ns
	}
}

// Count returns the number of observed samples.
func (s *DurationSketch) Count() int64 { return s.n }

// Sum returns the sum of all observed durations.
func (s *DurationSketch) Sum() time.Duration { return time.Duration(s.sumNS) }

// Max returns the largest observed sample exactly (0 when empty).
func (s *DurationSketch) Max() time.Duration { return time.Duration(s.maxNS) }

// Min returns the smallest observed sample exactly (0 when empty).
func (s *DurationSketch) Min() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.minNS)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over
// the buckets, reporting a bucket's geometric midpoint — so the
// relative error is bounded by (gamma-1)/2. The estimate is clamped to
// the exactly-tracked [Min, Max], which also makes q=0 and q=1 exact.
// Returns 0 on an empty sketch.
func (s *DurationSketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	idx := len(s.counts) - 1
	for i, c := range s.counts {
		cum += int64(c)
		if cum >= rank {
			idx = i
			break
		}
	}
	var est float64
	if idx == 0 {
		est = 1 // midpoint of [0, 1ns], rounds up
	} else {
		// geometric midpoint of (gamma^(idx-1), gamma^idx]
		est = math.Pow(sketchGamma, float64(idx)-0.5)
	}
	ns := int64(est)
	if ns < s.minNS {
		ns = s.minNS
	}
	if ns > s.maxNS {
		ns = s.maxNS
	}
	return time.Duration(ns)
}

// MemoryBytes returns the fixed footprint of the count array —
// asserted by tests to show summary memory no longer grows with job
// count.
func (s *DurationSketch) MemoryBytes() int {
	return len(s.counts) * 4
}
