package telemetry

// Real HELP text for the metrics the engines emit, replacing the
// generated "Counter X from the elmore metrics registry" boilerplate
// in the Prometheus exposition. Kept here (rather than scattered at
// emission sites) because emission sites are hot paths that only ever
// touch metrics via the name-keyed accessors; the HELP table is cold
// configuration installed once per process by cliutil.Session.

// standardHelp maps registry metric names to operator-facing HELP
// text. Names absent from the table fall back to the generated
// boilerplate, so the table can trail new instrumentation without
// breaking exposition.
var standardHelp = map[string]string{
	"core.analyses":                     "Delay-bound analyses completed (one per net evaluation).",
	"core.nodes_analyzed":               "RC-tree nodes swept by delay-bound analyses.",
	"core.reanalyses":                   "Targeted incremental re-bounding passes (Analysis.Reanalyze).",
	"core.nodes_reanalyzed":             "Nodes re-bounded by incremental reanalysis.",
	"core.sim_verifications":            "Bound intervals cross-checked against transient simulation.",
	"moments.computes":                  "Full moment-set computations (cache misses end up here).",
	"moments.traversals":                "Tree traversals performed by the moment engine.",
	"moments.node_visits":               "Node visits across all moment traversals.",
	"incremental.binds":                 "Incremental engines bound to a compiled tree.",
	"incremental.sets":                  "SetR/SetC delta updates applied to incremental engines.",
	"incremental.reverts":               "Incremental delta batches rolled back.",
	"incremental.commits":               "Incremental delta batches committed.",
	"incremental.flushes":               "Lazy dirty-span flushes run by incremental engines.",
	"incremental.full_fallbacks":        "Incremental updates that crossed over to a full recompute.",
	"incremental.nodes_touched":         "Nodes recomputed by incremental flushes.",
	"sim.runs":                          "Fixed-step transient simulations run.",
	"sim.plan_runs":                     "Reusable-plan transient simulations run.",
	"sim.plans":                         "Transient simulation plans compiled (stamp+factor).",
	"sim.adaptive_runs":                 "Adaptive-step transient simulations run.",
	"sim.adaptive_rejections":           "Adaptive steps rejected by the local error control.",
	"sim.steps":                         "Transient integration steps taken across all simulators.",
	"sim.lu_factorizations":             "LU factorizations performed by the simulators.",
	"sim.horizon_seconds":               "Time horizon of the most recent transient simulation.",
	"exact.systems":                     "Exact (eigensolve) systems solved.",
	"exact.poles":                       "Poles extracted by the exact solver.",
	"exact.eigensolve_sweeps":           "Jacobi sweeps performed by the exact eigensolver.",
	"exact.regularizations":             "Exact solves that required grounding regularization.",
	"exact.regularized_nodes":           "Nodes grounded by exact-solver regularization.",
	"awe.fits":                          "AWE reduced-order fits attempted.",
	"awe.unstable_fits":                 "AWE fits rejected as unstable.",
	"awe.fallbacks":                     "AWE evaluations that fell back to the dominant pole.",
	"sta.paths":                         "Timing paths evaluated by the STA engine.",
	"sta.stages":                        "Gate/interconnect stages evaluated by the STA engine.",
	"batch.jobs":                        "Batch jobs completed (success or failure).",
	"batch.job_errors":                  "Batch jobs that finished with an error.",
	"batch.jobs_cancelled":              "Batch jobs abandoned due to run cancellation.",
	"batch.queue_depth":                 "Jobs currently queued or executing in the batch engine.",
	"batch.reorder_occupancy":           "Results parked in the in-order emission buffer.",
	"batch.reorder_stalls":              "Times the emitter stalled waiting for an out-of-order result.",
	"batch.cache_hits":                  "Moment-cache hits in the batch engine.",
	"batch.cache_misses":                "Moment-cache misses in the batch engine.",
	"batch.plan_cache_hits":             "Compiled-plan cache hits in the batch engine.",
	"batch.plan_cache_misses":           "Compiled-plan cache misses in the batch engine.",
	"batch.resumed_jobs":                "Jobs skipped on resume because the journal marked them done.",
	"batch.journal_syncs":               "fsync batches issued by the resume journal.",
	"batch.workers":                     "Worker goroutines configured for the current batch run.",
	"batch.parallel_efficiency":         "Attributed busy time / (workers x wall time) for the last run.",
	"batch.reorder_peak":                "Peak occupancy of the in-order emission buffer.",
	"resilience.retries":                "Job attempts re-run after a transient failure.",
	"resilience.degraded":               "Jobs degraded to the guaranteed Elmore-bound interval.",
	"resilience.breaker_opens":          "Circuit-breaker transitions to open.",
	"resilience.breaker_probes":         "Half-open probe attempts allowed through a breaker.",
	"resilience.breaker_rejects":        "Calls rejected by an open circuit breaker.",
	"resilience.stuck_jobs":             "Jobs flagged by the watchdog as exceeding their deadline.",
	"resilience.stuck_cancels":          "Stuck jobs the watchdog escalated to cancellation.",
	"resilience.admitted":               "Requests admitted by the serve-mode limiter.",
	"resilience.shed_rate":              "Requests shed because the tenant exceeded its token-bucket rate (HTTP 429).",
	"resilience.shed_capacity":          "Requests shed at the process-wide in-flight cap (HTTP 503).",
	"resilience.shed_breaker":           "Requests shed by an open per-tenant circuit breaker (HTTP 503).",
	"resilience.tenant_evictions":       "Longest-idle tenant buckets evicted from the bounded limiter table.",
	"serve.requests":                    "HTTP requests accepted by elmored (all endpoints).",
	"serve.requests_shed":               "HTTP requests shed by admission control (429/503 + Retry-After).",
	"serve.requests_failed":             "HTTP requests that finished with a server-side error.",
	"serve.batches":                     "Batch /v1/analyze requests completed.",
	"serve.jobs":                        "Jobs evaluated across all /v1/analyze requests.",
	"serve.inflight":                    "Requests currently inside the serve drain gate.",
	"serve.hot_tree_hits":               "Net loads served from the hot-tree LRU without re-parsing.",
	"serve.hot_tree_misses":             "Net loads that parsed and compiled a tree before caching it.",
	"serve.hot_tree_evictions":          "Trees evicted from the bounded hot-tree LRU.",
	"serve.deadline_truncations":        "Requests whose per-job timeout was tightened to the client deadline.",
	"serve.drains":                      "Graceful drains begun (SIGTERM / shutdown).",
	"faultinject.fired":                 "Injected faults fired across all points.",
	"health.events":                     "Numerical health events observed (all severities).",
	"health.violations":                 "Numerical invariant violations (Lemma 2, bound ordering, NaN).",
	"flight.dumps":                      "Flight-recorder dumps written (SIGQUIT, panic, breaker, slow job).",
	"runtime.goroutines":                "Goroutines at the last runtime sample.",
	"runtime.gomaxprocs":                "GOMAXPROCS at the last runtime sample.",
	"runtime.heap_bytes":                "Live heap bytes at the last runtime sample.",
	"runtime.mem_total_bytes":           "Total bytes obtained from the OS at the last runtime sample.",
	"runtime.gc_cycles":                 "Completed GC cycles at the last runtime sample.",
	"runtime.gc_pause_total_seconds":    "Cumulative GC stop-the-world pause seconds.",
	"runtime.gc_pause_p99_seconds":      "p99 GC pause from the runtime's pause distribution.",
	"runtime.sched_latency_p50_seconds": "p50 goroutine scheduling latency.",
	"runtime.sched_latency_p99_seconds": "p99 goroutine scheduling latency.",
	"runtime.mutex_wait_seconds":        "Cumulative mutex wait seconds from runtime/metrics.",
	"runtime.gc_cpu_seconds":            "Cumulative GC CPU seconds from runtime/metrics.",
}

// InstallStandardHelp registers the standard HELP table on r (no-op on
// nil). Metrics created later still pick up their text: HELP is keyed
// by name at exposition time, not bound at creation.
func InstallStandardHelp(r *Registry) {
	if r == nil {
		return
	}
	for name, text := range standardHelp {
		r.SetHelp(name, text)
	}
}
