package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSketchEmpty(t *testing.T) {
	s := NewDurationSketch()
	if s.Count() != 0 || s.Sum() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("empty sketch not all-zero: n=%d sum=%v min=%v max=%v p50=%v",
			s.Count(), s.Sum(), s.Min(), s.Max(), s.Quantile(0.5))
	}
}

func TestSketchExactStats(t *testing.T) {
	s := NewDurationSketch()
	samples := []time.Duration{5 * time.Millisecond, time.Microsecond, 3 * time.Second, 42}
	var sum time.Duration
	for _, d := range samples {
		s.Observe(d)
		sum += d
	}
	if s.Count() != int64(len(samples)) {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Sum() != sum {
		t.Errorf("Sum = %v, want %v", s.Sum(), sum)
	}
	if s.Min() != 42 {
		t.Errorf("Min = %v, want 42ns (exact)", s.Min())
	}
	if s.Max() != 3*time.Second {
		t.Errorf("Max = %v, want 3s (exact)", s.Max())
	}
	// Negative samples clamp to zero rather than corrupting buckets.
	s.Observe(-time.Second)
	if s.Min() != 0 {
		t.Errorf("Min after negative = %v, want 0", s.Min())
	}
}

// TestSketchQuantileAccuracy checks the DDSketch guarantee: every
// quantile estimate is within (gamma-1)/2 + rounding ≈ 1% relative
// error of the exact nearest-rank value, across three distributions.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distros := map[string]func() time.Duration{
		"uniform":   func() time.Duration { return time.Duration(rng.Int63n(int64(time.Second))) },
		"lognormal": func() time.Duration { return time.Duration(math.Exp(rng.NormFloat64()*2+12)) * time.Nanosecond },
		"bimodal": func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(90+rng.Int63n(20)) * time.Millisecond
			}
			return time.Duration(1+rng.Int63n(2)) * time.Millisecond
		},
	}
	for name, gen := range distros {
		s := NewDurationSketch()
		exact := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			d := gen()
			s.Observe(d)
			exact = append(exact, d.Nanoseconds())
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			rank := int(math.Ceil(q*float64(len(exact)))) - 1
			want := exact[rank]
			got := s.Quantile(q).Nanoseconds()
			relErr := math.Abs(float64(got-want)) / float64(want)
			if relErr > 0.02 {
				t.Errorf("%s p%g: sketch %d vs exact %d (rel err %.4f > 2%%)",
					name, q*100, got, want, relErr)
			}
		}
	}
}

// TestSketchBoundedMemory is the O(jobs)-fix assertion at the sketch
// level: the footprint after a million observations equals the
// footprint when empty.
func TestSketchBoundedMemory(t *testing.T) {
	s := NewDurationSketch()
	before := s.MemoryBytes()
	for i := 0; i < 1_000_000; i++ {
		s.Observe(time.Duration(i) * time.Microsecond)
	}
	if after := s.MemoryBytes(); after != before {
		t.Errorf("memory grew %d -> %d bytes over 1M samples", before, after)
	}
	if before > 16*1024 {
		t.Errorf("sketch footprint %d bytes, want under 16KB", before)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Observe(time.Millisecond)
	}); allocs != 0 {
		t.Errorf("Observe allocates %.1f times, want 0", allocs)
	}
}

func TestSketchQuantileMonotone(t *testing.T) {
	s := NewDurationSketch()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		s.Observe(time.Duration(rng.Int63n(int64(time.Minute))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := s.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: p%.0f=%v < p%.0f=%v", q*100, cur, (q-0.01)*100, prev)
		}
		prev = cur
	}
	if s.Quantile(1) != s.Max() {
		t.Errorf("p100 = %v, want exact max %v", s.Quantile(1), s.Max())
	}
	if s.Quantile(0) != s.Min() {
		t.Errorf("p0 = %v, want exact min %v", s.Quantile(0), s.Min())
	}
}
