package telemetry

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name  string
	le    string // bucket label, "" for plain samples
	value float64
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)$`)
)

// parseProm is a strict parser for the subset of the text exposition
// format the registry emits. It validates, per metric family: a single
// HELP then TYPE comment before any sample; samples named after the
// family (with the _bucket/_sum/_count suffixes for histograms);
// cumulative, monotone buckets ending in le="+Inf"; and _count equal to
// the +Inf bucket. Returning the samples makes the test a true
// round-trip: values written must be read back identically.
func parseProm(t *testing.T, text string) map[string][]promSample {
	t.Helper()
	families := make(map[string][]promSample)
	typ := make(map[string]string)
	var cur string // family currently being parsed
	sawHelp := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			sawHelp[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := f[2], f[3]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: invalid type %q", ln+1, kind)
			}
			if !sawHelp[name] {
				t.Fatalf("line %d: TYPE before HELP for %q", ln+1, name)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typ[name] = kind
			cur = name
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparsable sample: %q", ln+1, line)
		}
		name, le, vals := m[1], m[2], m[3]
		var v float64
		switch vals {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			var err error
			v, err = strconv.ParseFloat(vals, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, vals, err)
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typ[strings.TrimSuffix(name, suf)] == "histogram" {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if family != cur {
			t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, cur)
		}
		if typ[family] == "" {
			t.Fatalf("line %d: sample %q with no preceding TYPE", ln+1, name)
		}
		if le != "" && (typ[family] != "histogram" || !strings.HasSuffix(name, "_bucket")) {
			t.Fatalf("line %d: le label on non-bucket sample %q", ln+1, name)
		}
		families[family] = append(families[family], promSample{name, le, v})
	}
	// Histogram structural invariants.
	for name, kind := range typ {
		if kind != "histogram" {
			continue
		}
		var buckets []promSample
		var count, sum *promSample
		for i, s := range families[name] {
			switch {
			case strings.HasSuffix(s.name, "_bucket"):
				buckets = append(buckets, s)
			case strings.HasSuffix(s.name, "_count"):
				count = &families[name][i]
			case strings.HasSuffix(s.name, "_sum"):
				sum = &families[name][i]
			}
		}
		if len(buckets) == 0 || count == nil || sum == nil {
			t.Fatalf("histogram %s incomplete: %+v", name, families[name])
		}
		if buckets[len(buckets)-1].le != "+Inf" {
			t.Fatalf("histogram %s last bucket is %q, want +Inf", name, buckets[len(buckets)-1].le)
		}
		prevBound := math.Inf(-1)
		prevCum := float64(0)
		for _, b := range buckets {
			bound := math.Inf(1)
			if b.le != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(b.le, 64)
				if err != nil {
					t.Fatalf("histogram %s: bad le %q", name, b.le)
				}
			}
			if bound <= prevBound {
				t.Fatalf("histogram %s: le bounds not increasing (%v after %v)", name, bound, prevBound)
			}
			if b.value < prevCum {
				t.Fatalf("histogram %s: buckets not cumulative (%v after %v)", name, b.value, prevCum)
			}
			prevBound, prevCum = bound, b.value
		}
		if count.value != prevCum {
			t.Fatalf("histogram %s: _count %v != +Inf bucket %v", name, count.value, prevCum)
		}
	}
	return families
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.analyses").Add(42)
	reg.Gauge("batch.queue_depth").Set(17)
	reg.Gauge("sim.horizon_seconds").Set(2.5e-9)
	h := reg.Histogram("sim.run_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams := parseProm(t, sb.String())

	get := func(name string) []promSample {
		s, ok := fams[name]
		if !ok {
			t.Fatalf("family %q missing from:\n%s", name, sb.String())
		}
		return s
	}
	if s := get("core_analyses"); len(s) != 1 || s[0].value != 42 {
		t.Errorf("counter: %+v", s)
	}
	if s := get("batch_queue_depth"); len(s) != 1 || s[0].value != 17 {
		t.Errorf("gauge: %+v", s)
	}
	if s := get("sim_horizon_seconds"); len(s) != 1 || s[0].value != 2.5e-9 {
		t.Errorf("gauge: %+v", s)
	}
	wantBuckets := map[string]float64{"0.001": 1, "0.01": 1, "0.1": 3, "+Inf": 4}
	var sum float64
	for _, s := range get("sim_run_seconds") {
		switch {
		case s.le != "":
			if s.value != wantBuckets[s.le] {
				t.Errorf("bucket le=%s = %v, want %v", s.le, s.value, wantBuckets[s.le])
			}
		case strings.HasSuffix(s.name, "_sum"):
			sum = s.value
		}
	}
	if math.Abs(sum-5.1005) > 1e-12 {
		t.Errorf("histogram sum = %v, want 5.1005", sum)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, sb.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"batch.queue_depth":           "batch_queue_depth",
		"health.moments.mu2_negative": "health_moments_mu2_negative",
		"9lives":                      "_lives",
		"a-b c":                       "a_b_c",
		"ok_name":                     "ok_name",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromHandlerServesDefaultRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h.count").Add(3)
	prev := SetDefault(reg)
	defer SetDefault(prev)

	rec := httptest.NewRecorder()
	PromHandler{}.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "h_count 3") {
		t.Errorf("body missing counter:\n%s", body)
	}
	parseProm(t, body)

	// With metrics disabled the handler serves an empty body, not an
	// error.
	SetDefault(nil)
	rec = httptest.NewRecorder()
	PromHandler{}.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.Len() != 0 {
		t.Errorf("disabled registry served %q", rec.Body.String())
	}
}

func TestGaugeAddAtomicity(t *testing.T) {
	const workers = 8
	const per = 1000
	g := &Gauge{}
	g.Set(workers * per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if v := g.Add(-1); v < 0 {
					t.Errorf("gauge went negative: %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("final gauge = %v, want 0", v)
	}
}

func TestGaugeAddNil(t *testing.T) {
	var g *Gauge
	if v := g.Add(5); v != 0 {
		t.Fatalf("nil gauge Add = %v", v)
	}
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reg.Counter("demo.count").Add(7)
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	fmt.Print(strings.Split(sb.String(), "\n")[2] + "\n")
	// Output: demo_count 7
}
