package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry, so any scraper pointed at the cliutil debug server's
// /metrics endpoint ingests the engines' counters, gauges and
// histograms directly.
//
// Naming: the registry's dotted names ("batch.queue_depth") become
// underscore-separated Prometheus names ("batch_queue_depth"); any
// character outside [a-zA-Z0-9_:] maps to '_'. Histograms follow the
// standard triple — cumulative <name>_bucket{le="..."} series
// (including the mandatory le="+Inf"), <name>_sum and <name>_count.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name into a valid Prometheus
// metric name.
func PromName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promHelp renders the HELP line for a metric: the caller-registered
// text when one exists (see Registry.SetHelp), otherwise generated
// boilerplate naming the metric's kind and registry name. Backslashes
// and newlines are escaped per the exposition format. Callers hold at
// least the registry read lock.
func (r *Registry) promHelp(promName, name, kind string) string {
	text := r.help[name]
	if text == "" {
		text = fmt.Sprintf("%s %s from the elmore metrics registry.", kind, name)
	}
	text = strings.ReplaceAll(text, `\`, `\\`)
	text = strings.ReplaceAll(text, "\n", `\n`)
	return fmt.Sprintf("# HELP %s %s\n", promName, text)
}

// promFloat renders a sample value. Prometheus accepts Go's 'g'
// formatting, with the special spellings +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the text exposition format,
// sorted by metric name. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		name string // sanitized
		text string // full rendered block
	}
	var fams []family

	r.mu.RLock()
	for name, c := range r.counters {
		p := PromName(name)
		fams = append(fams, family{p, fmt.Sprintf(
			"%s# TYPE %s counter\n%s %d\n",
			r.promHelp(p, name, "Counter"), p, p, c.Value())})
	}
	for name, g := range r.gauges {
		p := PromName(name)
		fams = append(fams, family{p, fmt.Sprintf(
			"%s# TYPE %s gauge\n%s %s\n",
			r.promHelp(p, name, "Gauge"), p, p, promFloat(g.Value()))})
	}
	for name, h := range r.hists {
		p := PromName(name)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s# TYPE %s histogram\n", r.promHelp(p, name, "Histogram"), p)
		// Buckets are stored per-interval; the exposition format wants
		// cumulative counts. Load each bucket exactly once so the
		// cumulative series is internally consistent even while
		// observations land concurrently.
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", p, promFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(&sb, "%s_sum %s\n", p, promFloat(h.Sum()))
		fmt.Fprintf(&sb, "%s_count %d\n", p, cum)
		fams = append(fams, family{p, sb.String()})
	}
	r.mu.RUnlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := io.WriteString(w, f.text); err != nil {
			return err
		}
	}
	return nil
}

// PromHandler serves the *current* default registry in the Prometheus
// text format, so it can be registered once on a mux and keep working
// as registries are swapped in and out (it serves an empty body while
// metrics are disabled).
type PromHandler struct{}

// ServeHTTP implements http.Handler.
func (PromHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	_ = Default().WritePrometheus(w)
}
