package telemetry

// Request-scoped lineage: a compact 128-bit trace context minted once
// per batch job and carried — by value, so the disabled path allocates
// nothing — through contexts, span records, journal records and result
// NDJSON. The attempt counter rides along so retries and degraded
// fallbacks of the same job are attributable to one trace.

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// TraceContext identifies one logical request (one batch job) across
// attempts, retries, degradation and — via the NDJSON spec field —
// process boundaries. The zero value means "no trace".
type TraceContext struct {
	Hi, Lo  uint64
	Attempt int32
}

// Valid reports whether the context carries a real trace ID.
func (tc TraceContext) Valid() bool { return tc.Hi != 0 || tc.Lo != 0 }

const hexDigits = "0123456789abcdef"

// AppendTraceID appends the 32-hex-character trace ID to dst and
// returns the extended slice, so NDJSON emitters can format into a
// reused buffer without an intermediate string.
func (tc TraceContext) AppendTraceID(dst []byte) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(tc.Hi>>uint(shift))&0xf])
	}
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(tc.Lo>>uint(shift))&0xf])
	}
	return dst
}

// TraceID returns the canonical 32-hex-character form ("" when
// invalid), the spelling every NDJSON record and tool uses.
func (tc TraceContext) TraceID() string {
	if !tc.Valid() {
		return ""
	}
	var buf [32]byte
	return string(tc.AppendTraceID(buf[:0]))
}

// ParseTraceID parses the canonical 32-hex form back into a
// TraceContext (attempt 0). The second return is false on malformed
// input, including the all-zero ID.
func ParseTraceID(s string) (TraceContext, bool) {
	if len(s) != 32 {
		return TraceContext{}, false
	}
	var words [2]uint64
	for w := 0; w < 2; w++ {
		for i := 0; i < 16; i++ {
			c := s[w*16+i]
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return TraceContext{}, false
			}
			words[w] = words[w]<<4 | d
		}
	}
	tc := TraceContext{Hi: words[0], Lo: words[1]}
	return tc, tc.Valid()
}

// traceMix is the splitmix64 finalizer: a cheap, well-distributed
// 64-bit mixing function (same constants the resilience jitter and
// fault injector use).
func traceMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// traceBase seeds the per-process half of every minted ID so traces
// from concurrent processes (the sharded scale-out story) don't
// collide even though minting is just a counter.
var traceBase = traceMix(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)

var traceSeq atomic.Uint64

// MintTrace returns a fresh trace context (attempt 0). Minting is one
// atomic increment plus integer mixing — no allocation, no locks — so
// the batch worker loop can mint unconditionally without busting its
// per-job allocation budget.
func MintTrace() TraceContext {
	n := traceSeq.Add(1)
	hi := traceMix(traceBase ^ n)
	lo := traceMix(hi + n)
	if hi == 0 && lo == 0 {
		lo = 1 // keep Valid() true; astronomically unlikely
	}
	return TraceContext{Hi: hi, Lo: lo}
}

type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. Spans started from
// the returned context (and flight-recorder events fed from it) are
// stamped with the trace ID and attempt. Attaching costs two small
// allocations, so callers on zero-overhead paths gate it on
// observability actually being enabled.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx; ok is
// false when none is attached.
func TraceContextFrom(ctx context.Context) (tc TraceContext, ok bool) {
	tc, ok = ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// WithTraceAttempt returns ctx re-stamped with the given attempt
// number (unchanged when ctx carries no trace), so each retry of a job
// emits spans attributable to that specific attempt.
func WithTraceAttempt(ctx context.Context, attempt int) context.Context {
	tc, ok := TraceContextFrom(ctx)
	if !ok || tc.Attempt == int32(attempt) {
		return ctx
	}
	tc.Attempt = int32(attempt)
	return context.WithValue(ctx, traceCtxKey{}, tc)
}
