package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is a concurrency-safe sink backing store; the Tracer
// serializes emissions, but the test reads the buffer afterwards so
// the lock documents the handoff.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Emit(rec []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, err := b.buf.Write(rec); err != nil {
		return err
	}
	return b.buf.WriteByte('\n')
}

func (b *lockedBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestConcurrentSpanEmissionAndEmitRaw is the worker-pool emission
// model under -race: many goroutines End() spans (each carrying its
// own trace context) while others interleave EmitRaw records through
// the same tracer. Every output line must be intact JSON — no torn or
// interleaved writes — and every span must carry the right trace id.
func TestConcurrentSpanEmissionAndEmitRaw(t *testing.T) {
	sink := &lockedBuffer{}
	tr := NewTracer(sink)
	base := WithTracer(context.Background(), tr)

	const workers, spansPer, raws = 8, 200, 100
	var wg sync.WaitGroup
	traces := make([]TraceContext, workers)
	for w := 0; w < workers; w++ {
		traces[w] = MintTrace()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithTraceContext(base, traces[w])
			for i := 0; i < spansPer; i++ {
				sctx, sp := Start(ctx, fmt.Sprintf("worker%d", w))
				sp.AttrInt("i", int64(i))
				_, child := Start(sctx, "child")
				child.End()
				sp.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < raws; i++ {
			tr.EmitRaw([]byte(fmt.Sprintf(`{"record":"runtime_sample","i":%d}`, i)))
		}
	}()
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	wantTrace := make(map[string]string, workers) // span name -> trace id
	for w := 0; w < workers; w++ {
		wantTrace[fmt.Sprintf("worker%d", w)] = traces[w].TraceID()
	}
	sc := bufio.NewScanner(bytes.NewReader(sink.bytes()))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var spans, rawLines int
	for sc.Scan() {
		var rec struct {
			Record  string `json:"record"`
			Name    string `json:"name"`
			Span    uint64 `json:"span"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("torn or invalid line %q: %v", sc.Text(), err)
		}
		if rec.Record != "" {
			rawLines++
			continue
		}
		spans++
		if want, ok := wantTrace[rec.Name]; ok && rec.TraceID != want {
			t.Fatalf("span %s carries trace %q, want %q", rec.Name, rec.TraceID, want)
		}
	}
	if spans != workers*spansPer*2 {
		t.Errorf("emitted %d spans, want %d", spans, workers*spansPer*2)
	}
	if rawLines != raws {
		t.Errorf("emitted %d raw records, want %d", rawLines, raws)
	}
}

// failAfterSink errors on every emission after the first; the sticky
// error must surface the FIRST failure even under concurrent EmitRaw.
type failAfterSink struct {
	mu sync.Mutex
	n  int
}

func (s *failAfterSink) Emit([]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if s.n > 1 {
		return fmt.Errorf("emit %d failed", s.n)
	}
	return nil
}

func TestEmitRawStickyErrorConcurrent(t *testing.T) {
	sink := &failAfterSink{}
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.EmitRaw([]byte(`{}`))
			}
		}()
	}
	wg.Wait()
	err := tr.Err()
	if err == nil {
		t.Fatal("no sticky error after failing emissions")
	}
	if err.Error() != "emit 2 failed" {
		t.Errorf("sticky error = %v, want the first failure (emit 2)", err)
	}
	// Nil tracer: EmitRaw and Err stay no-ops.
	var nilTr *Tracer
	nilTr.EmitRaw([]byte(`{}`))
	if nilTr.Err() != nil {
		t.Error("nil tracer reported an error")
	}
}

// TestSpanTraceStampGoldenUnchanged: spans without a trace context emit
// byte-identical records to pre-lineage traces (omitempty contract) —
// and spans with one append trace_id/attempt only.
func TestSpanTraceStampGoldenUnchanged(t *testing.T) {
	sink := &lockedBuffer{}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := NewTracerClock(sink, clk.now)
	tr.gid = func() uint64 { return 0 } // suppress g for a stable golden line
	ctx := WithTracer(context.Background(), tr)

	_, sp := Start(ctx, "plain")
	sp.End()

	tc := TraceContext{Hi: 0xab, Lo: 0xcd, Attempt: 2}
	_, sp2 := Start(WithTraceContext(ctx, tc), "traced")
	sp2.End()

	lines := bytes.Split(bytes.TrimSpace(sink.bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if got, want := string(lines[0]), `{"span":1,"parent":0,"name":"plain","start_ns":1000000,"dur_ns":1000000}`; got != want {
		t.Errorf("untraced span changed shape:\n got %s\nwant %s", got, want)
	}
	if got, want := string(lines[1]),
		`{"span":2,"parent":0,"name":"traced","start_ns":3000000,"dur_ns":1000000,"trace_id":"00000000000000ab00000000000000cd","attempt":2}`; got != want {
		t.Errorf("traced span record:\n got %s\nwant %s", got, want)
	}
}
