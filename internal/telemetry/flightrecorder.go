package telemetry

// Always-on flight recorder: a lock-free ring of recent
// span/event records, sharded per worker, that costs nothing to leave
// enabled (zero-allocation append, fixed memory) and dumps its
// contents to NDJSON when something goes wrong — SIGQUIT, a panic
// isolated by the batch engine, a breaker opening, a slow-job
// threshold breach, or an injected fault. It is the postmortem
// counterpart to -trace: always recording, bounded, and only ever
// written out on demand.
//
// Concurrency model: every slot field is an atomic word and each
// record is framed by seqlock-style begin/commit markers. A writer
// claims a slot with one atomic increment on its shard, stores the
// begin marker, the data words, then the commit marker. A dumper reads
// begin, data, commit; a mismatch means the record was torn by a
// concurrent overwrite and it is skipped (and counted) rather than
// misreported. This keeps append lock-free and dump race-free without
// any mutual exclusion between them.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightKind classifies a flight-recorder event.
type FlightKind uint8

// Flight event kinds. The zero value marks an empty slot and is never
// recorded.
const (
	FlightSpan        FlightKind = iota + 1 // a completed span (name in Label)
	FlightJobDone                           // a batch job finished (ok or failed)
	FlightRetry                             // a retry was scheduled (attempt in Code)
	FlightDegraded                          // job fell back to the Elmore-bound interval
	FlightPanic                             // a panic was isolated
	FlightFault                             // an injected fault fired (point in Label)
	FlightBreakerOpen                       // a circuit breaker opened
	FlightStuck                             // the watchdog flagged a stuck job
	FlightSlowJob                           // a job breached the slow threshold
)

var flightKindNames = [...]string{
	FlightSpan:        "span",
	FlightJobDone:     "job_done",
	FlightRetry:       "retry",
	FlightDegraded:    "degraded",
	FlightPanic:       "panic",
	FlightFault:       "fault",
	FlightBreakerOpen: "breaker_open",
	FlightStuck:       "stuck",
	FlightSlowJob:     "slow_job",
}

// String returns the NDJSON spelling of the kind.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) && flightKindNames[k] != "" {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind_%d", uint8(k))
}

// flightLabelWords is the label capacity in 8-byte words; labels are
// truncated to 32 bytes so a slot stays fixed-size.
const flightLabelWords = 4

// FlightEvent is one logical record. Label is truncated to 32 bytes on
// append; Code carries a small kind-specific payload (retry attempt,
// error class, signal number).
type FlightEvent struct {
	Kind  FlightKind
	When  int64 // unix nanoseconds; stamped on append when zero
	Trace TraceContext
	Index int64 // batch job index, or -1
	DurNS int64
	Code  int64
	Label string
}

// flightSlot is one fixed-size record. All fields are atomics so a
// concurrent dump never constitutes a data race with appends; the
// begin/commit markers detect tearing instead.
type flightSlot struct {
	begin  atomic.Uint64 // claim marker: shard sequence at write start
	commit atomic.Uint64 // same sequence once the record is complete
	when   atomic.Int64
	meta   atomic.Uint64 // kind | labelLen<<8 | index-sign<<16 | attempt<<32
	index  atomic.Uint64
	dur    atomic.Int64
	code   atomic.Int64
	hi, lo atomic.Uint64
	label  [flightLabelWords]atomic.Uint64
}

// flightShard is one worker's ring. The sequence counter is padded
// onto its own cache line so workers never false-share.
type flightShard struct {
	seq  atomic.Uint64
	_    [7]uint64
	mask uint64
	slot []flightSlot
}

func (s *flightShard) append(ev *FlightEvent) {
	seq := s.seq.Add(1)
	sl := &s.slot[seq&s.mask]
	sl.begin.Store(seq)
	sl.when.Store(ev.When)
	n := len(ev.Label)
	if n > flightLabelWords*8 {
		n = flightLabelWords * 8
	}
	var signBit uint64
	idx := ev.Index
	if idx < 0 {
		signBit = 1
		idx = -idx
	}
	sl.meta.Store(uint64(ev.Kind) | uint64(n)<<8 | signBit<<16 |
		uint64(uint32(ev.Trace.Attempt))<<32)
	sl.index.Store(uint64(idx))
	sl.dur.Store(ev.DurNS)
	sl.code.Store(ev.Code)
	sl.hi.Store(ev.Trace.Hi)
	sl.lo.Store(ev.Trace.Lo)
	for w := 0; w < flightLabelWords; w++ {
		var word uint64
		for b := 0; b < 8; b++ {
			if i := w*8 + b; i < n {
				word |= uint64(ev.Label[i]) << uint(8*b)
			}
		}
		sl.label[w].Store(word)
	}
	sl.commit.Store(seq)
}

// load snapshots the slot; ok is false when the slot is empty or was
// torn by a concurrent append.
func (sl *flightSlot) load() (ev FlightEvent, seq uint64, ok bool) {
	seq = sl.begin.Load()
	if seq == 0 {
		return ev, 0, false
	}
	ev.When = sl.when.Load()
	meta := sl.meta.Load()
	ev.Kind = FlightKind(meta & 0xff)
	n := int(meta >> 8 & 0xff)
	ev.Trace.Attempt = int32(uint32(meta >> 32))
	ev.Index = int64(sl.index.Load())
	if meta>>16&1 == 1 {
		ev.Index = -ev.Index
	}
	ev.DurNS = sl.dur.Load()
	ev.Code = sl.code.Load()
	ev.Trace.Hi = sl.hi.Load()
	ev.Trace.Lo = sl.lo.Load()
	var buf [flightLabelWords * 8]byte
	for w := 0; w < flightLabelWords; w++ {
		word := sl.label[w].Load()
		for b := 0; b < 8; b++ {
			buf[w*8+b] = byte(word >> uint(8*b))
		}
	}
	if n > len(buf) {
		n = len(buf)
	}
	ev.Label = string(buf[:n])
	if sl.commit.Load() != seq {
		return ev, 0, false // torn by a concurrent overwrite
	}
	return ev, seq, true
}

// FlightRecorder holds the sharded rings plus dump state. Create with
// NewFlightRecorder; a nil recorder is valid and records nothing.
type FlightRecorder struct {
	shards []flightShard
	smask  uint64
	rr     atomic.Uint64 // shard rotor for hint-less appends

	dumpMu   sync.Mutex
	dumpPath string       // "" dumps to Stderr
	Stderr   io.Writer    // fallback dump target; defaults to os.Stderr
	lastDump atomic.Int64 // unix ns of last dump, for throttling
	MinGap   time.Duration
	now      func() time.Time // test hook
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewFlightRecorder returns a recorder with shards rings (rounded up
// to a power of two, min 1) of slotsPerShard slots each (rounded up to
// a power of two, default 512). Memory is fixed at construction:
// roughly shards * slots * 96 bytes.
func NewFlightRecorder(shards, slotsPerShard int) *FlightRecorder {
	if shards < 1 {
		shards = 1
	}
	if slotsPerShard <= 0 {
		slotsPerShard = 512
	}
	shards = ceilPow2(shards)
	slotsPerShard = ceilPow2(slotsPerShard)
	fr := &FlightRecorder{
		shards: make([]flightShard, shards),
		smask:  uint64(shards - 1),
		MinGap: time.Second,
		now:    time.Now,
	}
	for i := range fr.shards {
		fr.shards[i].slot = make([]flightSlot, slotsPerShard)
		fr.shards[i].mask = uint64(slotsPerShard - 1)
	}
	return fr
}

// SetDumpPath directs TriggerDump output to an NDJSON file (opened in
// append mode per dump, so successive dumps stack in one file).
func (fr *FlightRecorder) SetDumpPath(path string) {
	if fr == nil {
		return
	}
	fr.dumpMu.Lock()
	fr.dumpPath = path
	fr.dumpMu.Unlock()
}

// Record appends ev to the shard chosen by a round-robin rotor.
// Zero-allocation, lock-free, safe from any goroutine; no-op on nil.
func (fr *FlightRecorder) Record(ev FlightEvent) {
	if fr == nil {
		return
	}
	fr.record(fr.rr.Add(1), ev)
}

// RecordShard appends ev to the shard for the given worker index, so
// each batch worker writes its own ring and appends never contend.
func (fr *FlightRecorder) RecordShard(worker int, ev FlightEvent) {
	if fr == nil {
		return
	}
	fr.record(uint64(worker), ev)
}

func (fr *FlightRecorder) record(shard uint64, ev FlightEvent) {
	if ev.When == 0 {
		ev.When = fr.now().UnixNano()
	}
	fr.shards[shard&fr.smask].append(&ev)
}

// flightDumpHeader and flightRecord are the dump NDJSON schema. Like
// span records, extend by appending fields only.
type flightDumpHeader struct {
	Record string `json:"record"` // "flight_dump"
	Reason string `json:"reason"`
	TimeNS int64  `json:"t_ns"`
	Events int    `json:"events"`
	Torn   int    `json:"torn"`
}

type flightRecord struct {
	Record  string `json:"record"` // "flight"
	Kind    string `json:"kind"`
	TimeNS  int64  `json:"t_ns"`
	TraceID string `json:"trace_id,omitempty"`
	Attempt int32  `json:"attempt,omitempty"`
	Index   int64  `json:"index"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Code    int64  `json:"code,omitempty"`
	Label   string `json:"label,omitempty"`
}

// Snapshot reads every committed record, oldest first. Torn records
// (overwritten mid-read) are skipped and counted. Safe to call while
// appends continue.
func (fr *FlightRecorder) Snapshot() (events []FlightEvent, torn int) {
	if fr == nil {
		return nil, 0
	}
	type seqEvent struct {
		ev  FlightEvent
		seq uint64
		sh  int
	}
	var all []seqEvent
	for si := range fr.shards {
		sh := &fr.shards[si]
		for i := range sh.slot {
			ev, seq, ok := sh.slot[i].load()
			if !ok {
				if sh.slot[i].begin.Load() != 0 {
					torn++
				}
				continue
			}
			all = append(all, seqEvent{ev, seq, si})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.When != all[j].ev.When {
			return all[i].ev.When < all[j].ev.When
		}
		if all[i].sh != all[j].sh {
			return all[i].sh < all[j].sh
		}
		return all[i].seq < all[j].seq
	})
	events = make([]FlightEvent, len(all))
	for i, se := range all {
		events[i] = se.ev
	}
	return events, torn
}

// DumpTo writes a dump block — one flight_dump header line followed by
// one flight line per record — to w. Unthrottled; TriggerDump is the
// throttled entry point.
func (fr *FlightRecorder) DumpTo(w io.Writer, reason string) error {
	if fr == nil {
		return nil
	}
	events, torn := fr.Snapshot()
	enc := json.NewEncoder(w)
	if err := enc.Encode(flightDumpHeader{
		Record: "flight_dump", Reason: reason,
		TimeNS: fr.now().UnixNano(), Events: len(events), Torn: torn,
	}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := flightRecord{
			Record: "flight", Kind: ev.Kind.String(), TimeNS: ev.When,
			Index: ev.Index, DurNS: ev.DurNS, Code: ev.Code, Label: ev.Label,
		}
		if ev.Trace.Valid() {
			rec.TraceID = ev.Trace.TraceID()
			rec.Attempt = ev.Trace.Attempt
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// TriggerDump writes one dump block to the configured path (append
// mode) or Stderr, throttled to one dump per MinGap so a panic storm
// or breaker flapping can't flood the disk. Returns false when
// throttled or on write error; safe from any goroutine and on nil.
func (fr *FlightRecorder) TriggerDump(reason string) bool {
	return fr.dump(reason, false)
}

// ForceDump is TriggerDump without the MinGap throttle, for last-gasp
// dumps on the process-exit path (SIGTERM, fatal errors): a fault dump
// moments earlier must not suppress the final state of the ring.
func (fr *FlightRecorder) ForceDump(reason string) bool {
	return fr.dump(reason, true)
}

func (fr *FlightRecorder) dump(reason string, force bool) bool {
	if fr == nil {
		return false
	}
	now := fr.now().UnixNano()
	last := fr.lastDump.Load()
	if !force {
		if last != 0 && now-last < int64(fr.MinGap) {
			return false
		}
		if !fr.lastDump.CompareAndSwap(last, now) {
			return false // another dump racing; it wins
		}
	} else {
		fr.lastDump.Store(now)
	}
	fr.dumpMu.Lock()
	defer fr.dumpMu.Unlock()
	C("flight.dumps").Inc()
	if fr.dumpPath == "" {
		w := fr.Stderr
		if w == nil {
			w = os.Stderr
		}
		return fr.DumpTo(w, reason) == nil
	}
	f, err := os.OpenFile(fr.dumpPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return false
	}
	defer f.Close()
	return fr.DumpTo(f, reason) == nil
}

// defaultFlight is the process-wide recorder. The disabled path — no
// recorder installed — is one atomic load and a nil check.
var defaultFlight atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs fr as the process default (nil disables)
// and returns the previous recorder.
func SetFlightRecorder(fr *FlightRecorder) (prev *FlightRecorder) {
	return defaultFlight.Swap(fr)
}

// Flight returns the process-default recorder, or nil when disabled.
// All FlightRecorder methods are nil-safe, so call sites never guard.
func Flight() *FlightRecorder { return defaultFlight.Load() }

// FlightEnabled reports whether a recorder is installed; hot paths use
// it to skip event construction entirely when disabled.
func FlightEnabled() bool { return defaultFlight.Load() != nil }

// FlightRecord appends ev to the default recorder (rotor-sharded).
func FlightRecord(ev FlightEvent) { defaultFlight.Load().Record(ev) }

// FlightRecordShard appends ev to the default recorder on the given
// worker's shard.
func FlightRecordShard(worker int, ev FlightEvent) {
	defaultFlight.Load().RecordShard(worker, ev)
}

// FlightDump triggers a throttled dump of the default recorder.
func FlightDump(reason string) bool { return defaultFlight.Load().TriggerDump(reason) }

// FlightForceDump dumps the default recorder unthrottled — the
// process-exit variant of FlightDump.
func FlightForceDump(reason string) bool { return defaultFlight.Load().ForceDump(reason) }
