package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock ticks 1ms per reading, making trace timestamps exact.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// TestGoldenTrace pins the JSON-lines trace format: field names, field
// order, relative timestamps and monotonic span IDs. Downstream tooling
// parses this; if this test breaks, the format changed incompatibly.
func TestGoldenTrace(t *testing.T) {
	var sb strings.Builder
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := NewTracerClock(WriterSink{W: &sb}, clk.now) // epoch: first tick
	tr.gid = func() uint64 { return 7 }               // pin the goroutine id
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "run") // start: +1ms
	ctx2, parse := Start(ctx, "parse")
	parse.AttrInt("nodes", 25).AttrString("file", "deck.sp")
	_ = ctx2
	parse.End()
	_, analyze := Start(ctx, "analyze")
	analyze.AttrFloat("tp_seconds", 0.5)
	analyze.End()
	root.End()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	// The fake clock ticks 1ms per reading: epoch at tick 1, each
	// Start/End consumes one tick, so every timestamp below is exact.
	want := strings.Join([]string{
		`{"span":2,"parent":1,"name":"parse","start_ns":2000000,"dur_ns":1000000,"attrs":{"file":"deck.sp","nodes":25},"g":7}`,
		`{"span":3,"parent":1,"name":"analyze","start_ns":4000000,"dur_ns":1000000,"attrs":{"tp_seconds":0.5},"g":7}`,
		`{"span":1,"parent":0,"name":"run","start_ns":1000000,"dur_ns":5000000,"g":7}`,
		``,
	}, "\n")
	if sb.String() != want {
		t.Errorf("golden trace mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestTraceParsesAndNests(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(WriterSink{W: &sb})
	ctx := WithTracer(context.Background(), tr)

	ctx, outer := Start(ctx, "outer")
	ictx, inner := Start(ctx, "inner")
	_, inner2 := Start(ictx, "inner.child")
	inner2.End()
	inner.End()
	outer.End()

	type rec struct {
		Span   uint64 `json:"span"`
		Parent uint64 `json:"parent"`
		Name   string `json:"name"`
		DurNS  int64  `json:"dur_ns"`
	}
	started := map[uint64]string{}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 span lines, got %d:\n%s", len(lines), sb.String())
	}
	for _, ln := range lines {
		var r rec
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("unparseable trace line %q: %v", ln, err)
		}
		if r.Span == 0 {
			t.Errorf("span id 0 in %q", ln)
		}
		if r.Parent >= r.Span {
			t.Errorf("parent %d not before span %d (IDs must be monotonic in start order)", r.Parent, r.Span)
		}
		if r.DurNS < 0 {
			t.Errorf("negative duration in %q", ln)
		}
		started[r.Span] = r.Name
	}
	for id, name := range map[uint64]string{1: "outer", 2: "inner", 3: "inner.child"} {
		if started[id] != name {
			t.Errorf("span %d = %q, want %q", id, started[id], name)
		}
	}
}

func TestStartWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "nothing")
	if sp != nil {
		t.Fatal("Start without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a tracer must return the context unchanged")
	}
}

type failSink struct{}

func (failSink) Emit([]byte) error { return errFail }

var errFail = &json.UnsupportedValueError{Str: "boom"}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(failSink{})
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "x")
	sp.End()
	if tr.Err() == nil {
		t.Fatal("sink failure must surface via Err")
	}
}
