// Package telemetry is the repository's observability substrate: a
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// and span-based phase tracing emitted as JSON lines. Everything is
// stdlib-only and designed so that the *disabled* path — no registry
// installed, no tracer in the context — costs a nil check and zero
// allocations, making it safe to leave instrumentation in the hot
// engines permanently.
//
// Metrics are reached through a process-wide default registry:
//
//	reg := telemetry.NewRegistry()
//	prev := telemetry.SetDefault(reg)
//	defer telemetry.SetDefault(prev)
//	...
//	telemetry.C("sim.steps").Add(int64(steps)) // no-op while no registry
//
// Tracing flows through a context:
//
//	ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(w))
//	ctx, sp := telemetry.Start(ctx, "exact.eigensolve")
//	sp.AttrInt("nodes", n)
//	sp.End()
//
// Every method on Counter, Gauge, Histogram, Span and Registry is safe
// to call on a nil receiver, so instrumentation sites never need to
// guard against telemetry being switched off.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the gauge and returns the new value.
// Because the gauge's own atomic is the accumulator, concurrent Adds
// can interleave in any order without the value ever passing through a
// state no single operation produced — the property the batch
// queue-depth gauge relies on (a Set-after-load pattern can publish
// stale values out of order). No-op returning 0 on a nil gauge.
func (g *Gauge) Add(delta float64) float64 {
	if g == nil {
		return 0
	}
	for {
		old := g.bits.Load()
		next := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. A histogram with
// upper bounds [b0, b1, ...] has len(bounds)+1 buckets: (-inf, b0],
// (b0, b1], ..., (b_last, +inf). Observation is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

// DefBuckets are the default histogram bounds, in seconds: they cover
// phase durations from a microsecond to ten seconds.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

var nopStop = func() {}

// Time returns a stop function that records the elapsed time (in
// seconds) when called. On a nil histogram it returns a shared no-op
// without reading the clock, so disabled timing costs nothing.
func (h *Histogram) Time() func() {
	if h == nil {
		return nopStop
	}
	t0 := time.Now()
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry holds named metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is a valid "disabled" registry:
// every lookup returns nil and every nil metric is a no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SetHelp registers descriptive HELP text for the named metric,
// emitted verbatim (escaped) by WritePrometheus in place of the
// generated boilerplate. Safe on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Help returns the registered HELP text for name ("" when none).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (DefBuckets when bounds is empty).
// Later calls ignore bounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WriteText writes a sorted, line-oriented snapshot of every metric:
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count=<n> sum=<s> le<bound>=<n> ... inf=<n>
//
// Safe on a nil registry (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", name, g.Value()))
	}
	for name, h := range r.hists {
		var sb strings.Builder
		fmt.Fprintf(&sb, "histogram %s count=%d sum=%g", name, h.Count(), h.Sum())
		for i, b := range h.bounds {
			fmt.Fprintf(&sb, " le%g=%d", b, h.counts[i].Load())
		}
		fmt.Fprintf(&sb, " inf=%d", h.counts[len(h.bounds)].Load())
		lines = append(lines, sb.String())
	}
	r.mu.RUnlock()
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}

// defaultRegistry is the process-wide registry consulted by C, G and H.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs r as the process-wide default registry (nil
// disables metrics) and returns the previous default, so callers can
// restore it.
func SetDefault(r *Registry) (prev *Registry) {
	return defaultRegistry.Swap(r)
}

// Default returns the current default registry, or nil when metrics
// are disabled.
func Default() *Registry { return defaultRegistry.Load() }

// C returns the named counter from the default registry (nil when
// metrics are disabled — all Counter methods accept nil).
func C(name string) *Counter { return Default().Counter(name) }

// G returns the named gauge from the default registry (nil when
// metrics are disabled).
func G(name string) *Gauge { return Default().Gauge(name) }

// H returns the named histogram with default buckets from the default
// registry (nil when metrics are disabled).
func H(name string) *Histogram { return Default().Histogram(name, nil) }
