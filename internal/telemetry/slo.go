package telemetry

// Declarative latency objectives ("-slo p99=50ms,p50=2ms") with
// good/bad-event accounting and burn-rate gauges — the assertion
// substrate serve mode and cmd/loadgen will drive. An event is good
// for an objective when the job succeeded and finished within the
// objective's target; errors count against every objective. The burn
// rate is the classic SRE ratio:
//
//	burn = observed_bad_fraction / error_budget
//
// where error_budget = 1 - quantile (a p99 objective tolerates 1% bad
// events). burn <= 1 means the objective holds; burn = 3 means the
// budget is being consumed three times too fast.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLO is one latency objective: Quantile of events must finish within
// Target.
type SLO struct {
	Name     string        // canonical spelling, e.g. "p99" or "p99.9"
	Quantile float64       // e.g. 0.99
	Target   time.Duration // e.g. 50ms
}

// ParseSLOs parses a comma-separated objective list of the form
// "p99=50ms,p50=2ms". Quantile spellings are pNN or pNN.N with
// 0 < NN < 100. Duplicate quantiles are an error; the result is
// sorted by quantile ascending.
func ParseSLOs(spec string) ([]SLO, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var slos []SLO
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, target, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo %q: want pNN=duration (e.g. p99=50ms)", part)
		}
		name = strings.TrimSpace(name)
		if len(name) < 2 || (name[0] != 'p' && name[0] != 'P') {
			return nil, fmt.Errorf("slo %q: quantile must start with 'p'", part)
		}
		pct, err := strconv.ParseFloat(name[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("slo %q: quantile must be in (0, 100)", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(target))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("slo %q: bad target duration %q", part, target)
		}
		canon := "p" + strings.TrimRight(strings.TrimRight(
			strconv.FormatFloat(pct, 'f', 3, 64), "0"), ".")
		if seen[canon] {
			return nil, fmt.Errorf("slo %q: duplicate quantile %s", spec, canon)
		}
		seen[canon] = true
		slos = append(slos, SLO{Name: canon, Quantile: pct / 100, Target: d})
	}
	sort.Slice(slos, func(i, j int) bool { return slos[i].Quantile < slos[j].Quantile })
	return slos, nil
}

// SLOTracker counts good/bad events per objective. Like the sketch it
// feeds alongside, it is single-goroutine (the Reporter's emission
// goroutine); Publish pushes the counts into the process metrics
// registry, which is what makes them scrapable concurrently.
type SLOTracker struct {
	SLOs []SLO
	// Prefix names the metric family Publish writes, e.g. "serve" for
	// "serve.slo.p99.burn_rate"; empty means "batch" (the historical
	// family, kept so existing dashboards survive).
	Prefix string
	good   []int64
	bad    []int64
}

// NewSLOTracker returns a tracker for the given objectives (nil when
// slos is empty — a nil tracker is a valid no-op).
func NewSLOTracker(slos []SLO) *SLOTracker {
	if len(slos) == 0 {
		return nil
	}
	return &SLOTracker{
		SLOs: slos,
		good: make([]int64, len(slos)),
		bad:  make([]int64, len(slos)),
	}
}

// Observe scores one event against every objective. Failed events are
// bad for all objectives regardless of latency.
func (t *SLOTracker) Observe(d time.Duration, failed bool) {
	if t == nil {
		return
	}
	for i, s := range t.SLOs {
		if failed || d > s.Target {
			t.bad[i]++
		} else {
			t.good[i]++
		}
	}
}

// Good returns the good-event count for objective i.
func (t *SLOTracker) Good(i int) int64 {
	if t == nil {
		return 0
	}
	return t.good[i]
}

// Bad returns the bad-event count for objective i.
func (t *SLOTracker) Bad(i int) int64 {
	if t == nil {
		return 0
	}
	return t.bad[i]
}

// BurnRate returns observed_bad_fraction / (1 - quantile) for
// objective i; 0 when no events have been observed.
func (t *SLOTracker) BurnRate(i int) float64 {
	if t == nil {
		return 0
	}
	total := t.good[i] + t.bad[i]
	if total == 0 {
		return 0
	}
	badFrac := float64(t.bad[i]) / float64(total)
	return badFrac / (1 - t.SLOs[i].Quantile)
}

// sloMetricName builds "batch.slo.p99.burn_rate"-style names under the
// tracker's Prefix. Dots in the quantile spelling (p99.9) survive here
// and are sanitized by PromName on exposition.
func (t *SLOTracker) sloMetricName(name, field string) string {
	prefix := t.Prefix
	if prefix == "" {
		prefix = "batch"
	}
	return prefix + ".slo." + name + "." + field
}

// Publish pushes per-objective good/bad counts and burn-rate gauges
// into the default metrics registry (no-op when metrics are disabled),
// registering HELP text so the Prometheus exposition is
// self-describing.
func (t *SLOTracker) Publish() {
	if t == nil {
		return
	}
	r := Default()
	if r == nil {
		return
	}
	for i, s := range t.SLOs {
		good, bad, burn := t.sloMetricName(s.Name, "good"), t.sloMetricName(s.Name, "bad"), t.sloMetricName(s.Name, "burn_rate")
		r.SetHelp(good, fmt.Sprintf("Jobs that met the %s<=%v latency objective.", s.Name, s.Target))
		r.SetHelp(bad, fmt.Sprintf("Jobs that missed the %s<=%v latency objective (errors count as missed).", s.Name, s.Target))
		r.SetHelp(burn, fmt.Sprintf("Error-budget burn rate for %s<=%v: bad fraction / %.4g (1 = budget exactly consumed).", s.Name, s.Target, 1-s.Quantile))
		r.Gauge(good).Set(float64(t.good[i]))
		r.Gauge(bad).Set(float64(t.bad[i]))
		r.Gauge(burn).Set(t.BurnRate(i))
	}
}
