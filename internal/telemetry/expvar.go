package telemetry

import (
	"encoding/json"
	"expvar"
)

// ExpvarVar is an expvar.Var that renders the *current* default
// registry as a JSON object on every read, so it can be published once
// at process start and keep working as registries are swapped in and
// out (it renders {} while metrics are disabled).
//
// Counters and gauges appear as plain numbers; histograms as objects
// with count, sum and per-bucket cumulative-free counts keyed by upper
// bound ("inf" for the overflow bucket).
type ExpvarVar struct{}

var _ expvar.Var = ExpvarVar{}

// String implements expvar.Var.
func (ExpvarVar) String() string { return Default().JSON() }

// JSON renders the registry as a JSON object ("{}" on nil).
func (r *Registry) JSON() string {
	if r == nil {
		return "{}"
	}
	r.mu.RLock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		buckets := make(map[string]int64, len(h.bounds)+1)
		for i, b := range h.bounds {
			buckets[formatBound(b)] = h.counts[i].Load()
		}
		buckets["inf"] = h.counts[len(h.bounds)].Load()
		out[name] = map[string]any{
			"count":   h.Count(),
			"sum":     h.Sum(),
			"buckets": buckets,
		}
	}
	r.mu.RUnlock()
	b, err := json.Marshal(out)
	if err != nil {
		return "{}"
	}
	return string(b)
}

func formatBound(b float64) string {
	s, err := json.Marshal(b)
	if err != nil {
		return "nan"
	}
	return string(s)
}
