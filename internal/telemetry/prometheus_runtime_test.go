package telemetry

import (
	"strings"
	"testing"
)

// runtimeGaugeNames is the registry name-space the runtime sampler
// maintains, with the exact Prometheus spelling each name must keep:
// dashboards and scrape configs key on these, so a rename is a breaking
// change that must show up as a test diff.
var runtimeGaugeNames = map[string]string{
	"runtime.goroutines":                "runtime_goroutines",
	"runtime.gomaxprocs":                "runtime_gomaxprocs",
	"runtime.heap_bytes":                "runtime_heap_bytes",
	"runtime.mem_total_bytes":           "runtime_mem_total_bytes",
	"runtime.gc_cycles":                 "runtime_gc_cycles",
	"runtime.gc_pause_total_seconds":    "runtime_gc_pause_total_seconds",
	"runtime.gc_pause_p99_seconds":      "runtime_gc_pause_p99_seconds",
	"runtime.sched_latency_p50_seconds": "runtime_sched_latency_p50_seconds",
	"runtime.sched_latency_p99_seconds": "runtime_sched_latency_p99_seconds",
	"runtime.mutex_wait_seconds":        "runtime_mutex_wait_seconds",
	"runtime.gc_cpu_seconds":            "runtime_gc_cpu_seconds",
}

func TestRuntimeGaugePromNamesStable(t *testing.T) {
	for dotted, want := range runtimeGaugeNames {
		if got := PromName(dotted); got != want {
			t.Errorf("PromName(%q) = %q, want %q", dotted, got, want)
		}
	}
}

// TestRuntimeSnapshotPromRoundTrip publishes a real runtime snapshot
// and feeds the exposition through the strict parser: every sampler
// gauge must come out as a well-formed family with the pinned name,
// and a second publish must overwrite, not accumulate.
func TestRuntimeSnapshotPromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	rs := ReadRuntime()
	rs.Publish(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams := parseProm(t, sb.String())
	for dotted, prom := range runtimeGaugeNames {
		s, ok := fams[prom]
		if !ok {
			t.Errorf("gauge %s (%s) missing from exposition", dotted, prom)
			continue
		}
		if len(s) != 1 {
			t.Errorf("gauge %s: %d samples, want 1", prom, len(s))
		}
	}
	if v := fams["runtime_goroutines"][0].value; v < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", v)
	}

	// Second publish with a doctored snapshot: gauges are Set, so the
	// exposition must show the new value, not a sum.
	rs.Goroutines = 1234
	rs.Publish(reg)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams = parseProm(t, sb.String())
	if v := fams["runtime_goroutines"][0].value; v != 1234 {
		t.Errorf("after republish runtime_goroutines = %v, want 1234 (Set, not Add)", v)
	}
}
