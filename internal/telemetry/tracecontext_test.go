package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestMintTraceUniqueAndValid(t *testing.T) {
	const goroutines, perG = 8, 2000
	var mu sync.Mutex
	seen := make(map[TraceContext]bool, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]TraceContext, 0, perG)
			for i := 0; i < perG; i++ {
				tc := MintTrace()
				if !tc.Valid() {
					t.Error("minted an invalid trace")
					return
				}
				local = append(local, tc)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, tc := range local {
				if seen[tc] {
					t.Errorf("duplicate trace %s", tc.TraceID())
				}
				seen[tc] = true
			}
		}()
	}
	wg.Wait()
}

func TestMintTraceAllocFree(t *testing.T) {
	if allocs := testing.AllocsPerRun(1000, func() {
		tc := MintTrace()
		if !tc.Valid() {
			t.Fatal("invalid mint")
		}
	}); allocs != 0 {
		t.Errorf("MintTrace allocates %.1f times per call, want 0", allocs)
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		tc := MintTrace()
		id := tc.TraceID()
		if len(id) != 32 {
			t.Fatalf("TraceID %q: len %d, want 32", id, len(id))
		}
		back, ok := ParseTraceID(id)
		if !ok || back.Hi != tc.Hi || back.Lo != tc.Lo {
			t.Fatalf("round trip %q -> %+v ok=%v, want %+v", id, back, ok, tc)
		}
	}
	// Uppercase hex parses to the same context.
	tc := TraceContext{Hi: 0xDEADBEEF, Lo: 0xCAFE}
	up, ok := ParseTraceID("00000000DEADBEEF000000000000CAFE")
	if !ok || up != tc {
		t.Errorf("uppercase parse = %+v ok=%v", up, ok)
	}
}

func TestParseTraceIDRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"abc",
		"0123456789abcdef0123456789abcde",   // 31 chars
		"0123456789abcdef0123456789abcdef0", // 33 chars
		"g123456789abcdef0123456789abcdef",  // non-hex
		"00000000000000000000000000000000",  // all-zero = invalid
	}
	for _, s := range bad {
		if tc, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) = %+v, want reject", s, tc)
		}
	}
}

func TestTraceContextPropagation(t *testing.T) {
	if tc, ok := TraceContextFrom(context.Background()); ok {
		t.Fatalf("bare context carries a trace: %+v", tc)
	}
	tc := MintTrace()
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceContextFrom = %+v ok=%v, want %+v", got, ok, tc)
	}

	// Re-stamping the attempt yields a new context with the same ID.
	a2, ok := TraceContextFrom(WithTraceAttempt(ctx, 2))
	if !ok || a2.Attempt != 2 || a2.Hi != tc.Hi || a2.Lo != tc.Lo {
		t.Errorf("WithTraceAttempt(2) = %+v ok=%v", a2, ok)
	}
	// Same attempt: no new context allocated, same value comes back.
	if same := WithTraceAttempt(ctx, 0); same != ctx {
		t.Error("WithTraceAttempt with the current attempt should return ctx unchanged")
	}
	// No trace attached: untouched.
	if same := WithTraceAttempt(context.Background(), 3); same != context.Background() {
		t.Error("WithTraceAttempt without a trace should return ctx unchanged")
	}
}

func TestAppendTraceID(t *testing.T) {
	tc := TraceContext{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	got := string(tc.AppendTraceID(nil))
	want := "0123456789abcdeffedcba9876543210"
	if got != want {
		t.Errorf("AppendTraceID = %q, want %q", got, want)
	}
	// Appends to existing content rather than overwriting it.
	if got := string(tc.AppendTraceID([]byte("x:"))); got != "x:"+want {
		t.Errorf("AppendTraceID with prefix = %q", got)
	}
}
