package telemetry

import (
	"encoding/json"
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime sampling: a curated slice of the Go runtime/metrics surface
// (GC pauses, scheduler latency, goroutine count, heap, mutex wait)
// published through the ordinary metrics registry — and therefore the
// Prometheus exposition — plus optional NDJSON "runtime_sample" records
// interleaved into a span trace. This is the process-level half of the
// contention story: per-worker accounting (internal/batch) says where a
// worker's time went, the runtime sampler says what the runtime was
// doing to it (GC stealing cycles, scheduler queueing, lock convoys).
//
// All gauges are absolute snapshots; consumers that want per-run deltas
// (cmd/scalestat) call ReadRuntime around the run and subtract.

// RuntimeSnapshot is one reading of the curated runtime metrics. Every
// field is a plain value so snapshots can be subtracted field-by-field.
type RuntimeSnapshot struct {
	Goroutines      int64   // /sched/goroutines
	GOMAXPROCS      int64   // runtime.GOMAXPROCS(0)
	HeapBytes       int64   // /memory/classes/heap/objects
	TotalBytes      int64   // /memory/classes/total
	GCCycles        int64   // /gc/cycles/total
	GCPauseTotalSec float64 // approx: sum over the /gc/pauses histogram
	GCPauseP99Sec   float64 // p99 of /gc/pauses since process start
	SchedLatP50Sec  float64 // p50 of /sched/latencies since process start
	SchedLatP99Sec  float64 // p99 of /sched/latencies since process start
	MutexWaitSec    float64 // /sync/mutex/wait/total (all contended locks)
	GCCPUSec        float64 // /cpu/classes/gc/total
}

// runtimeSampleNames is the fixed request list handed to metrics.Read.
// Unsupported names (older runtimes) come back KindBad and read as zero.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/sync/mutex/wait/total:seconds",
	"/cpu/classes/gc/total:cpu-seconds",
}

// samplePool recycles the metrics.Sample request slice so periodic
// sampling does not allocate one per tick.
var samplePool = sync.Pool{New: func() any {
	s := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		s[i].Name = name
	}
	return &s
}}

// ReadRuntime takes one snapshot of the curated runtime metrics.
func ReadRuntime() RuntimeSnapshot {
	sp := samplePool.Get().(*[]metrics.Sample)
	defer samplePool.Put(sp)
	s := *sp
	metrics.Read(s)
	var out RuntimeSnapshot
	out.GOMAXPROCS = int64(runtime.GOMAXPROCS(0))
	for i := range s {
		switch s[i].Name {
		case "/sched/goroutines:goroutines":
			out.Goroutines = sampleInt(&s[i])
		case "/memory/classes/heap/objects:bytes":
			out.HeapBytes = sampleInt(&s[i])
		case "/memory/classes/total:bytes":
			out.TotalBytes = sampleInt(&s[i])
		case "/gc/cycles/total:gc-cycles":
			out.GCCycles = sampleInt(&s[i])
		case "/gc/pauses:seconds":
			if h := sampleHist(&s[i]); h != nil {
				out.GCPauseTotalSec = histApproxSum(h)
				out.GCPauseP99Sec = histQuantile(h, 0.99)
			}
		case "/sched/latencies:seconds":
			if h := sampleHist(&s[i]); h != nil {
				out.SchedLatP50Sec = histQuantile(h, 0.50)
				out.SchedLatP99Sec = histQuantile(h, 0.99)
			}
		case "/sync/mutex/wait/total:seconds":
			out.MutexWaitSec = sampleFloat(&s[i])
		case "/cpu/classes/gc/total:cpu-seconds":
			out.GCCPUSec = sampleFloat(&s[i])
		}
	}
	return out
}

func sampleInt(s *metrics.Sample) int64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s.Value.Uint64())
}

func sampleFloat(s *metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindFloat64:
		return s.Value.Float64()
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	}
	return 0
}

func sampleHist(s *metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// histQuantile returns the q-quantile of a runtime histogram as the
// upper edge of the bucket where the cumulative count crosses q. ±Inf
// edges fall back to the nearest finite neighbor.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(q * float64(total)))
	if thresh < 1 {
		thresh = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 0) {
				edge = h.Buckets[i]
			}
			if math.IsInf(edge, 0) {
				return 0
			}
			return edge
		}
	}
	return 0
}

// histApproxSum approximates the sum of all observations using bucket
// midpoints (the runtime does not expose an exact sum). Good enough for
// "how much wall time did GC pauses cost this run".
func histApproxSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, 0) {
			lo = hi
		}
		if math.IsInf(hi, 0) {
			hi = lo
		}
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			continue
		}
		sum += float64(c) * (lo + hi) / 2
	}
	return sum
}

// Publish writes the snapshot into reg as runtime.* gauges. Safe on a
// nil registry (no-op).
func (rs RuntimeSnapshot) Publish(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("runtime.goroutines").Set(float64(rs.Goroutines))
	reg.Gauge("runtime.gomaxprocs").Set(float64(rs.GOMAXPROCS))
	reg.Gauge("runtime.heap_bytes").Set(float64(rs.HeapBytes))
	reg.Gauge("runtime.mem_total_bytes").Set(float64(rs.TotalBytes))
	reg.Gauge("runtime.gc_cycles").Set(float64(rs.GCCycles))
	reg.Gauge("runtime.gc_pause_total_seconds").Set(rs.GCPauseTotalSec)
	reg.Gauge("runtime.gc_pause_p99_seconds").Set(rs.GCPauseP99Sec)
	reg.Gauge("runtime.sched_latency_p50_seconds").Set(rs.SchedLatP50Sec)
	reg.Gauge("runtime.sched_latency_p99_seconds").Set(rs.SchedLatP99Sec)
	reg.Gauge("runtime.mutex_wait_seconds").Set(rs.MutexWaitSec)
	reg.Gauge("runtime.gc_cpu_seconds").Set(rs.GCCPUSec)
}

// runtimeRecord is the NDJSON schema of one runtime_sample line,
// interleaved into a span trace (tracestat ignores non-span records).
type runtimeRecord struct {
	Record         string  `json:"record"` // "runtime_sample"
	MS             float64 `json:"ms"`     // since sampler start
	Goroutines     int64   `json:"goroutines"`
	HeapBytes      int64   `json:"heap_bytes"`
	GCCycles       int64   `json:"gc_cycles"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	SchedLatP99US  float64 `json:"sched_latency_p99_us"`
	MutexWaitMS    float64 `json:"mutex_wait_ms"`
	GCCPUMS        float64 `json:"gc_cpu_ms"`
}

// RuntimeSampler periodically snapshots the runtime into the default
// metrics registry and, when a sink is attached, emits one NDJSON
// runtime_sample record per tick. Create with StartRuntimeSampler.
type RuntimeSampler struct {
	interval time.Duration
	sink     Sink
	start    time.Time
	stop     chan struct{}
	done     chan struct{}
}

// StartRuntimeSampler begins sampling every interval (minimum 10ms,
// default 1s when interval <= 0). sink may be nil — gauges in the
// default registry are still updated. The first sample is taken
// immediately; call Stop for a final sample and a clean shutdown.
func StartRuntimeSampler(interval time.Duration, sink Sink) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &RuntimeSampler{
		interval: interval,
		sink:     sink,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample takes one snapshot: registry gauges always, NDJSON when a sink
// is attached.
func (s *RuntimeSampler) sample() {
	rs := ReadRuntime()
	rs.Publish(Default())
	if s.sink == nil {
		return
	}
	rec := runtimeRecord{
		Record:         "runtime_sample",
		MS:             time.Since(s.start).Seconds() * 1e3,
		Goroutines:     rs.Goroutines,
		HeapBytes:      rs.HeapBytes,
		GCCycles:       rs.GCCycles,
		GCPauseTotalMS: rs.GCPauseTotalSec * 1e3,
		SchedLatP99US:  rs.SchedLatP99Sec * 1e6,
		MutexWaitMS:    rs.MutexWaitSec * 1e3,
		GCCPUMS:        rs.GCCPUSec * 1e3,
	}
	if line, err := json.Marshal(rec); err == nil {
		_ = s.sink.Emit(line)
	}
}

// Stop takes a final sample and shuts the sampler down. Safe to call
// once; nil-safe.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.sample()
}
