package telemetry

import (
	"encoding/json"
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"testing"
	"time"
)

func TestReadRuntimeSane(t *testing.T) {
	// Force at least one GC so pause/cycle metrics are non-trivial.
	runtime.GC()
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", rs.Goroutines)
	}
	if rs.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d, want >= 1", rs.GOMAXPROCS)
	}
	if rs.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %d, want > 0", rs.HeapBytes)
	}
	if rs.TotalBytes < rs.HeapBytes {
		t.Errorf("TotalBytes %d < HeapBytes %d", rs.TotalBytes, rs.HeapBytes)
	}
	if rs.GCCycles < 1 {
		t.Errorf("GCCycles = %d, want >= 1 after runtime.GC", rs.GCCycles)
	}
	for name, v := range map[string]float64{
		"GCPauseTotalSec": rs.GCPauseTotalSec,
		"GCPauseP99Sec":   rs.GCPauseP99Sec,
		"SchedLatP50Sec":  rs.SchedLatP50Sec,
		"SchedLatP99Sec":  rs.SchedLatP99Sec,
		"MutexWaitSec":    rs.MutexWaitSec,
		"GCCPUSec":        rs.GCCPUSec,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v, want finite and >= 0", name, v)
		}
	}
}

func TestRuntimeSnapshotPublish(t *testing.T) {
	reg := NewRegistry()
	rs := RuntimeSnapshot{
		Goroutines:      12,
		GOMAXPROCS:      8,
		HeapBytes:       1 << 20,
		GCPauseTotalSec: 0.25,
	}
	rs.Publish(reg)
	if got := reg.Gauge("runtime.goroutines").Value(); got != 12 {
		t.Errorf("runtime.goroutines = %v, want 12", got)
	}
	if got := reg.Gauge("runtime.gomaxprocs").Value(); got != 8 {
		t.Errorf("runtime.gomaxprocs = %v, want 8", got)
	}
	if got := reg.Gauge("runtime.heap_bytes").Value(); got != 1<<20 {
		t.Errorf("runtime.heap_bytes = %v, want %v", got, 1<<20)
	}
	if got := reg.Gauge("runtime.gc_pause_total_seconds").Value(); got != 0.25 {
		t.Errorf("runtime.gc_pause_total_seconds = %v, want 0.25", got)
	}
	// Publish on a nil registry must not panic.
	rs.Publish(nil)
}

// memSampleSink buffers emitted records, synchronized because the
// sampler goroutine emits concurrently with test reads.
type memSampleSink struct {
	mu    sync.Mutex
	lines [][]byte
}

func (s *memSampleSink) Emit(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.lines = append(s.lines, cp)
	return nil
}

func (s *memSampleSink) snapshot() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.lines...)
}

func TestRuntimeSamplerEmitsAndStops(t *testing.T) {
	reg := NewRegistry()
	prev := SetDefault(reg)
	defer SetDefault(prev)

	sink := &memSampleSink{}
	s := StartRuntimeSampler(10*time.Millisecond, sink)
	time.Sleep(35 * time.Millisecond)
	s.Stop()

	lines := sink.snapshot()
	if len(lines) < 2 { // immediate sample + final Stop sample at minimum
		t.Fatalf("got %d runtime_sample records, want >= 2", len(lines))
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("unparseable runtime_sample line %q: %v", ln, err)
		}
		if rec["record"] != "runtime_sample" {
			t.Fatalf("record field = %v, want runtime_sample", rec["record"])
		}
		if g, ok := rec["goroutines"].(float64); !ok || g < 1 {
			t.Errorf("goroutines = %v, want >= 1", rec["goroutines"])
		}
	}
	if got := reg.Gauge("runtime.goroutines").Value(); got < 1 {
		t.Errorf("runtime.goroutines gauge = %v, want >= 1", got)
	}

	// Stop on a nil sampler must not panic.
	var nilS *RuntimeSampler
	nilS.Stop()
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{math.Inf(-1), 1, 2, 3, math.Inf(1)},
	}
	if got := histQuantile(h, 0.50); got != 3 {
		t.Errorf("p50 = %v, want 3 (upper edge of the 80%% bucket)", got)
	}
	if got := histQuantile(h, 0.05); got != 2 {
		t.Errorf("p5 = %v, want 2", got)
	}
	// The top bucket's upper edge is +Inf: fall back to its lower edge.
	if got := histQuantile(h, 0.999); got != 3 {
		t.Errorf("p99.9 = %v, want 3 (finite fallback)", got)
	}
	empty := &metrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := histApproxSum(h); math.Abs(got-10*1.5-80*2.5-10*3) > 1e-9 {
		t.Errorf("approx sum = %v, want %v", got, 10*1.5+80*2.5+10*3)
	}
}
