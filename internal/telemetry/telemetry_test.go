package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("a.count") != c {
		t.Error("counter lookup is not stable")
	}

	g := r.Gauge("a.gauge")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("a.hist", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 103.5 {
		t.Errorf("hist sum = %g, want 103.5", h.Sum())
	}
	// Buckets: (-inf,1] gets 0.5 and 1; (1,10] gets 2; (10,inf) gets 100.
	want := []int64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
	if r.JSON() != "{}" {
		t.Errorf("nil JSON = %q, want {}", r.JSON())
	}

	var sp *Span
	sp.AttrInt("k", 1).AttrFloat("f", 2).AttrString("s", "v")
	sp.End() // must not panic

	var tr *Tracer
	if tr.Err() != nil {
		t.Error("nil tracer Err must be nil")
	}
}

func TestDefaultRegistrySwap(t *testing.T) {
	r := NewRegistry()
	prev := SetDefault(r)
	defer SetDefault(prev)
	C("swap.count").Inc()
	G("swap.gauge").Set(2)
	H("swap.hist").Observe(0.1)
	if r.Counter("swap.count").Value() != 1 {
		t.Error("C did not reach the installed default registry")
	}
	if got := SetDefault(nil); got != r {
		t.Errorf("SetDefault returned %p, want %p", got, r)
	}
	C("swap.count").Inc() // disabled: must be a no-op
	if r.Counter("swap.count").Value() != 1 {
		t.Error("disabled C leaked into the old registry")
	}
}

// TestConcurrentWriters exercises the registry and a tracer from many
// goroutines at once; run with -race (the CI check target does).
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	prev := SetDefault(r)
	defer SetDefault(prev)
	var sb lockedBuilder
	ctx := WithTracer(context.Background(), NewTracer(WriterSink{W: &sb}))

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				C("conc.count").Inc()
				G("conc.gauge").Set(float64(i))
				H("conc.hist").Observe(float64(i) * 1e-5)
				_, sp := Start(ctx, "conc.span")
				sp.AttrInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc.count").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("conc.hist", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != workers*iters {
		t.Errorf("trace lines = %d, want %d", lines, workers*iters)
	}
}

// lockedBuilder is a goroutine-safe strings.Builder for test sinks.
type lockedBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestWriteTextSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Gauge("a.gauge").Set(0.5)
	r.Histogram("c.hist", []float64{1}).Observe(2)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter b.count 3\ngauge a.gauge 0.5\nhistogram c.hist count=1 sum=2 le1=0 inf=1\n"
	if sb.String() != want {
		t.Errorf("snapshot:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestExpvarJSON(t *testing.T) {
	r := NewRegistry()
	prev := SetDefault(r)
	defer SetDefault(prev)
	r.Counter("ev.count").Add(7)
	s := ExpvarVar{}.String()
	if !strings.Contains(s, `"ev.count":7`) {
		t.Errorf("expvar JSON missing counter: %s", s)
	}
}
