package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs(" p99=50ms , p50=2ms ")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d objectives", len(slos))
	}
	// Sorted ascending by quantile.
	if slos[0].Name != "p50" || slos[0].Quantile != 0.50 || slos[0].Target != 2*time.Millisecond {
		t.Errorf("slos[0] = %+v", slos[0])
	}
	if slos[1].Name != "p99" || slos[1].Quantile != 0.99 || slos[1].Target != 50*time.Millisecond {
		t.Errorf("slos[1] = %+v", slos[1])
	}
	// Fractional quantiles keep their spelling.
	slos, err = ParseSLOs("p99.9=1s")
	if err != nil || slos[0].Name != "p99.9" || math.Abs(slos[0].Quantile-0.999) > 1e-12 {
		t.Errorf("p99.9 = %+v err=%v", slos, err)
	}
	// Empty spec means no objectives, no error.
	if slos, err := ParseSLOs(""); err != nil || slos != nil {
		t.Errorf("empty spec = %v, %v", slos, err)
	}
}

func TestParseSLOsRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"p99",            // no target
		"99=50ms",        // no p prefix
		"p0=50ms",        // quantile 0
		"p100=50ms",      // quantile 100
		"pabc=50ms",      // non-numeric
		"p99=banana",     // bad duration
		"p99=-5ms",       // negative target
		"p99=0s",         // zero target
		"p99=1s,p99=2s",  // duplicate
		"p99=1s,p99.0=2", // duplicate after canonicalization (and bad dur)
		"p99=1s,P99=2s",  // duplicate across case
		"p=1s",           // p with no digits
		"p-5=1s",         // negative quantile
		"p99==50ms",      // doubled separator yields "=50ms" duration
		"=50ms",          // empty quantile
		"p99=0ns",        // zero target in another unit
	} {
		if slos, err := ParseSLOs(spec); err == nil {
			t.Errorf("ParseSLOs(%q) = %+v, want error", spec, slos)
		}
	}
}

// TestSLOTrackerPrefix: serve mode publishes the same objectives under
// its own metric family, so one process can track batch- and
// serve-level SLOs without colliding.
func TestSLOTrackerPrefix(t *testing.T) {
	reg := NewRegistry()
	prev := SetDefault(reg)
	defer SetDefault(prev)

	slos, err := ParseSLOs("p99=50ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSLOTracker(slos)
	tr.Prefix = "serve"
	tr.Observe(time.Millisecond, false)
	tr.Publish()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serve_slo_p99_good 1") {
		t.Errorf("prefixed gauge missing:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "batch_slo_p99_good") {
		t.Errorf("prefixed tracker leaked into the batch family:\n%s", sb.String())
	}
}

func TestSLOTrackerCountsAndBurnRate(t *testing.T) {
	slos, err := ParseSLOs("p90=10ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSLOTracker(slos)
	// 100 events: 80 fast successes, 15 slow successes, 5 errors (fast).
	for i := 0; i < 80; i++ {
		tr.Observe(time.Millisecond, false)
	}
	for i := 0; i < 15; i++ {
		tr.Observe(50*time.Millisecond, false)
	}
	for i := 0; i < 5; i++ {
		tr.Observe(time.Millisecond, true) // errors are bad regardless of latency
	}
	if tr.Good(0) != 80 || tr.Bad(0) != 20 {
		t.Errorf("good/bad = %d/%d, want 80/20", tr.Good(0), tr.Bad(0))
	}
	// bad fraction 0.20 against a 0.10 budget: burning 2x.
	if burn := tr.BurnRate(0); math.Abs(burn-2.0) > 1e-9 {
		t.Errorf("burn rate = %v, want 2.0", burn)
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	if tr := NewSLOTracker(nil); tr != nil {
		t.Fatal("empty objectives should yield a nil tracker")
	}
	var tr *SLOTracker
	tr.Observe(time.Second, false)
	tr.Publish()
	if tr.Good(0) != 0 || tr.Bad(0) != 0 || tr.BurnRate(0) != 0 {
		t.Error("nil tracker not all-zero")
	}
}

func TestSLOTrackerEmptyBurnRateZero(t *testing.T) {
	slos, _ := ParseSLOs("p99=1ms")
	tr := NewSLOTracker(slos)
	if burn := tr.BurnRate(0); burn != 0 {
		t.Errorf("burn rate with no events = %v, want 0", burn)
	}
}

// TestSLOGaugesPrometheusRoundTrip is the acceptance check: published
// burn-rate gauges survive the strict exposition parser with their
// registered (non-boilerplate) HELP text.
func TestSLOGaugesPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	prev := SetDefault(reg)
	defer SetDefault(prev)

	slos, err := ParseSLOs("p99=50ms,p50=5ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSLOTracker(slos)
	tr.Observe(time.Millisecond, false)
	tr.Observe(100*time.Millisecond, false) // misses both targets
	tr.Publish()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams := parseProm(t, text)

	for _, m := range []struct {
		name string
		want float64
	}{
		{"batch_slo_p99_good", 1},
		{"batch_slo_p99_bad", 1},
		{"batch_slo_p99_burn_rate", 0.5 / 0.01},
		{"batch_slo_p50_good", 1},
		{"batch_slo_p50_bad", 1},
		{"batch_slo_p50_burn_rate", 0.5 / 0.50},
	} {
		samples := fams[m.name]
		if len(samples) != 1 {
			t.Errorf("%s: %d samples in exposition", m.name, len(samples))
			continue
		}
		if math.Abs(samples[0].value-m.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", m.name, samples[0].value, m.want)
		}
	}
	// Real HELP text, not the registry boilerplate.
	if !strings.Contains(text, "# HELP batch_slo_p99_burn_rate Error-budget burn rate") {
		t.Errorf("burn-rate HELP not registered:\n%s", text)
	}
	if strings.Contains(text, "batch_slo_p99_burn_rate from the elmore metrics registry") {
		t.Errorf("burn-rate gauge fell back to boilerplate HELP:\n%s", text)
	}
}

// TestRegisteredHelpEscaped: HELP text with backslashes and newlines
// must be escaped per the exposition format so the parser stays happy.
func TestRegisteredHelpEscaped(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("weird.metric", "line one\nline \\ two")
	reg.Counter("weird.metric").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parseProm(t, sb.String())
	if !strings.Contains(sb.String(), `line one\nline \\ two`) {
		t.Errorf("HELP not escaped:\n%s", sb.String())
	}
}

func TestInstallStandardHelp(t *testing.T) {
	reg := NewRegistry()
	InstallStandardHelp(reg)
	for _, name := range []string{"batch.jobs", "flight.dumps", "resilience.retries"} {
		if reg.Help(name) == "" {
			t.Errorf("no standard HELP for %s", name)
		}
	}
	reg.Counter("flight.dumps").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parseProm(t, sb.String())
	if !strings.Contains(sb.String(), "# HELP flight_dumps ") ||
		strings.Contains(sb.String(), "flight.dumps from the elmore metrics registry") {
		t.Errorf("standard HELP not applied:\n%s", sb.String())
	}
}
