package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives one encoded span record per line. Implementations must
// be safe for concurrent use or be wrapped by a Tracer (which
// serializes writes). The record does not include the trailing newline.
type Sink interface {
	Emit(record []byte) error
}

// WriterSink adapts an io.Writer into a Sink, appending one newline per
// record. The caller owns flushing/closing of the underlying writer.
type WriterSink struct {
	W io.Writer
}

// Emit writes the record and a trailing newline.
func (s WriterSink) Emit(record []byte) error {
	if _, err := s.W.Write(record); err != nil {
		return err
	}
	_, err := s.W.Write([]byte{'\n'})
	return err
}

// Tracer assigns span IDs and emits completed spans to a sink as JSON
// lines. All span timestamps are nanoseconds relative to the tracer's
// epoch (its creation time), which keeps traces self-contained and
// diffable. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	seq   atomic.Uint64
	now   func() time.Time
	gid   func() uint64 // goroutine id source; test hook
	epoch time.Time
	err   error // first emit error, sticky
}

// NewTracer returns a tracer emitting to sink with the real clock.
func NewTracer(sink Sink) *Tracer { return NewTracerClock(sink, time.Now) }

// NewTracerClock is NewTracer with an explicit clock — the test hook
// that makes golden traces deterministic.
func NewTracerClock(sink Sink, now func() time.Time) *Tracer {
	return &Tracer{sink: sink, now: now, gid: goID, epoch: now()}
}

// goID returns the current goroutine's id, parsed from the
// runtime.Stack header ("goroutine N [running]: ..."). There is no
// cheaper public API; the cost (~1µs) is paid only on traced Starts,
// which already pay a JSON marshal per span. The id is what lets
// tracestat separate spans from concurrent batch workers.
func goID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), parse digits until the space.
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// EmitRaw serializes one pre-encoded NDJSON record into the tracer's
// sink under the same lock spans use, so non-span records (e.g. the
// runtime sampler's runtime_sample lines) can interleave with spans
// without tearing the stream. No-op on a nil tracer.
func (t *Tracer) EmitRaw(record []byte) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.sink.Emit(record); err != nil && t.err == nil {
		t.err = err
	}
}

// Err returns the first error any span emission hit, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying the tracer; Start on that
// context (and its descendants) records spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// Span is one timed phase. Create with Start, annotate with the Attr
// methods, and finish with End — the span is emitted on End. A nil
// *Span (returned when no tracer is installed) is a valid no-op.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	g      uint64 // goroutine that started the span
	name   string
	start  time.Time
	attrs  []attr
	trace  TraceContext // request lineage, zero when none attached
}

type attr struct {
	key string
	val any
}

// spanRecord is the stable JSON-lines schema. Field names and order are
// a compatibility contract covered by a golden test; extend by
// appending fields, never by renaming.
type spanRecord struct {
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	G       uint64         `json:"g,omitempty"`        // starting goroutine id
	TraceID string         `json:"trace_id,omitempty"` // request lineage (PR 9)
	Attempt int32          `json:"attempt,omitempty"`
}

// Start begins a span named name. If ctx carries a tracer, the span
// nests under the context's current span and the returned context
// carries the new span; otherwise both returns are the inputs (ctx
// unchanged, span nil) at zero allocation. Span IDs are assigned in
// Start order, so a child's ID is always greater than its parent's.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{tr: tr, id: tr.seq.Add(1), g: tr.gid(), name: name, start: tr.now()}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		sp.parent = parent.id
	}
	// The lineage lookup sits after the tr == nil early return above,
	// so the disabled path never pays for it.
	sp.trace, _ = TraceContextFrom(ctx)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// AttrInt attaches an integer attribute. The typed Attr variants exist
// so disabled call sites never box their argument into an interface;
// all are no-ops on a nil span and return the span for chaining.
func (s *Span) AttrInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr{key, v})
	return s
}

// AttrFloat attaches a float64 attribute (no-op on nil).
func (s *Span) AttrFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr{key, v})
	return s
}

// AttrString attaches a string attribute (no-op on nil).
func (s *Span) AttrString(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attr{key, v})
	return s
}

// End emits the span as one JSON line. No-op on a nil span. End must be
// called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	end := t.now()
	rec := spanRecord{
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.Sub(t.epoch).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
		G:       s.g,
	}
	if s.trace.Valid() {
		rec.TraceID = s.trace.TraceID()
		rec.Attempt = s.trace.Attempt
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.key] = a.val
		}
	}
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if err := t.sink.Emit(line); err != nil && t.err == nil {
		t.err = err
	}
}
