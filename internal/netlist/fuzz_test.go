package netlist

import "testing"

// FuzzParse asserts the deck parser never panics and that any deck it
// accepts yields a structurally valid RC tree. Run the seeds as part of
// the normal test suite; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"Vin in 0 1\nR1 in a 100\nC1 a 0 1p\n",
		basicDeck,
		"* only a comment",
		"V1 a 0 1\nR1 a b 1\nR2 b c 1\nR3 c a 1\nC1 b 0 1p\n", // loop
		"V1 a 0 1\nR1 a b -1\n",
		"+ dangling continuation",
		"V1 a 0 1\nR1 a b 1e309\nC1 b 0 1p\n", // overflow value
		"V1 a 0 1\nR1 a b 1k\nC1 b 0 1p\n.title x\n.end\n",
		"V1 a 0 1\nC1 a 0 1p\nR1 a b 1\nC2 b 0 1p\nL1 a b 1n\n",
		"V1 0 0 1\n",
		"R1\n",
		"V1 a 0 1\nR1 a a 1\n",
		"V1 a 0 1\nr1 A b 1\nc1 B 0 1p\n", // case-sensitive node names
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		d, err := ParseString(deck)
		if err != nil {
			return // rejected decks just need a graceful error
		}
		if d.Tree == nil {
			t.Fatalf("accepted deck with nil tree")
		}
		if err := d.Tree.Validate(); err != nil {
			t.Fatalf("accepted deck produced invalid tree: %v", err)
		}
		// Accepted decks must round-trip.
		if _, err := ParseString(Format(d.Tree, "fuzz")); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
