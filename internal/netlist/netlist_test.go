package netlist

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

const basicDeck = `* a small RC net
.title basic
Vin in 0 1
R1 in  n1 100
C1 n1  0  1p
R2 n1  n2 200
C2 n2  0  2p
R3 n1  n3 400 ; side branch
C3 n3  0  4p
.end
`

func TestParseBasic(t *testing.T) {
	d, err := ParseString(basicDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "basic" {
		t.Errorf("title = %q", d.Title)
	}
	if d.InputNode != "in" {
		t.Errorf("input node = %q", d.InputNode)
	}
	tree := d.Tree
	if tree.N() != 3 {
		t.Fatalf("N = %d, want 3", tree.N())
	}
	n1 := tree.MustIndex("n1")
	if tree.R(n1) != 100 || tree.C(n1) != 1e-12 {
		t.Errorf("n1: R=%v C=%v", tree.R(n1), tree.C(n1))
	}
	n2 := tree.MustIndex("n2")
	if tree.Parent(n2) != n1 || tree.R(n2) != 200 {
		t.Errorf("n2 wrong")
	}
	if len(d.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", d.Warnings)
	}
}

func TestParseContinuationAndCase(t *testing.T) {
	deck := `VIN IN 0 1
r1 IN a
+ 1k
c1 a GND 1p
`
	d, err := ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Tree.MustIndex("a")
	if d.Tree.R(a) != 1000 {
		t.Errorf("R = %v, want 1k", d.Tree.R(a))
	}
}

func TestParseSourceOrientation(t *testing.T) {
	d, err := ParseString("V1 0 drv 1\nR1 drv x 10\nC1 x 0 1p\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.InputNode != "drv" {
		t.Errorf("input = %q", d.InputNode)
	}
}

func TestParallelCapsSum(t *testing.T) {
	d, err := ParseString("Vin in 0 1\nR1 in a 10\nC1 a 0 1p\nC2 0 a 2p\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Tree.C(d.Tree.MustIndex("a")); !approx(got, 3e-12, 1e-12) {
		t.Errorf("summed cap = %v, want 3p", got)
	}
}

func TestCapOnDrivenNodeWarns(t *testing.T) {
	d, err := ParseString("Vin in 0 1\nCload in 0 5p\nR1 in a 10\nC1 a 0 1p\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Warnings) != 1 || !strings.Contains(d.Warnings[0], "shorted") {
		t.Errorf("warnings = %v", d.Warnings)
	}
	if d.Tree.N() != 1 {
		t.Errorf("N = %d", d.Tree.N())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, deck, wantSub string
	}{
		{"no source", "R1 a b 1\nC1 b 0 1p\n", "no voltage source"},
		{"two sources", "V1 a 0 1\nV2 b 0 1\nR1 a b 1\nC1 b 0 1p\n", "second voltage source"},
		{"floating source", "V1 a b 1\nR1 a b 1\n", "must connect one node to ground"},
		{"resistor to ground", "V1 a 0 1\nR1 a 0 1\nC1 a 0 1p\n", "connects to ground"},
		{"self resistor", "V1 a 0 1\nR1 a a 1\n", "self-connected"},
		{"coupling cap", "V1 a 0 1\nR1 a b 1\nC1 a b 1p\n", "two non-ground nodes"},
		{"grounded cap", "V1 a 0 1\nR1 a b 1\nC1 0 gnd 1p\n", "both terminals grounded"},
		{"loop", "V1 a 0 1\nR1 a b 1\nR2 b c 1\nR3 c a 1\nC1 b 0 1p\n", "loop"},
		{"disconnected resistor", "V1 a 0 1\nR1 a b 1\nC1 b 0 1p\nR9 x y 1\n", "not connected"},
		{"orphan cap", "V1 a 0 1\nR1 a b 1\nC1 b 0 1p\nC9 z 0 1p\n", "not connected"},
		{"no input resistor", "V1 a 0 1\nC1 b 0 1p\n", "no resistor connects"},
		{"bad value", "V1 a 0 1\nR1 a b xyz\n", "not a number"},
		{"short R card", "V1 a 0 1\nR1 a b\n", "needs"},
		{"short C card", "V1 a 0 1\nR1 a b 1\nC1 b\n", "needs"},
		{"short V card", "V1 a\n", "needs"},
		{"unknown element", "V1 a 0 1\nR1 a b 1\nC1 b 0 1p\nL1 a b 1n\n", "unsupported element"},
		{"dangling continuation", "+ 1k\n", "continuation"},
		{"negative R", "V1 a 0 1\nR1 a b -5\nC1 b 0 1p\n", "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.deck)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestDotCardsIgnored(t *testing.T) {
	deck := "V1 a 0 1\nR1 a b 1\nC1 b 0 1p\n.tran 1n 10n\n.print v(b)\n.end\nthis garbage is after .end but still scanned\n"
	// Garbage after .end is still parsed in this simple reader; make it
	// a comment instead to keep the deck valid.
	deck = strings.Replace(deck, "this garbage is after .end but still scanned\n", "* trailing comment\n", 1)
	if _, err := ParseString(deck); err != nil {
		t.Fatalf("dot cards should be ignored: %v", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		orig := topo.RandomSmall(seed, 30)
		deck := Format(orig, "round trip")
		d, err := ParseString(deck)
		if err != nil {
			return false
		}
		got := d.Tree
		if got.N() != orig.N() {
			return false
		}
		origTD := moments.ElmoreDelays(orig)
		gotTD := moments.ElmoreDelays(got)
		for i := 0; i < orig.N(); i++ {
			name := orig.Name(i)
			j, ok := got.Index(name)
			if !ok {
				return false
			}
			if !approx(got.R(j), orig.R(i), 1e-9) || !approx(got.C(j), orig.C(i), 1e-9) {
				return false
			}
			if !approx(gotTD[j], origTD[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteFig1GoldenShape(t *testing.T) {
	deck := Format(topo.Fig1Tree(), "fig 1")
	if !strings.HasPrefix(deck, "* fig 1\nVin in 0 1\n") {
		t.Errorf("header wrong:\n%s", deck)
	}
	if !strings.Contains(deck, ".end") {
		t.Errorf("missing .end")
	}
	// 7 resistors and 7 capacitors.
	if got := strings.Count(deck, "\nR"); got != 7 {
		t.Errorf("resistor cards = %d, want 7", got)
	}
	if got := strings.Count(deck, "\nC"); got != 7 {
		t.Errorf("capacitor cards = %d, want 7", got)
	}
}

func TestWriteAvoidsNameCollision(t *testing.T) {
	d, err := ParseString("Vsrc src 0 1\nR1 src in 10\nC1 in 0 1p\n")
	if err != nil {
		t.Fatal(err)
	}
	deck := Format(d.Tree, "")
	if !strings.Contains(deck, "Vin in_ 0 1") {
		t.Errorf("collision not avoided:\n%s", deck)
	}
	if _, err := ParseString(deck); err != nil {
		t.Errorf("re-parse failed: %v", err)
	}
}

func TestZeroCapNodesOmittedFromDeck(t *testing.T) {
	d, err := ParseString("Vin in 0 1\nR1 in j 10\nR2 j a 10\nC1 a 0 1p\n")
	if err != nil {
		t.Fatal(err)
	}
	deck := Format(d.Tree, "")
	if strings.Contains(deck, "C2") {
		t.Errorf("zero cap should not be emitted:\n%s", deck)
	}
	d2, err := ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Tree.C(d2.Tree.MustIndex("j")) != 0 {
		t.Errorf("junction cap should stay 0")
	}
}
