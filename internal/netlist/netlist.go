// Package netlist reads and writes RC trees as SPICE-style decks, the
// lingua franca of interconnect extraction tools:
//
//   - my interconnect net
//     Vin in 0 1
//     R1 in  n1 100
//     C1 n1  0  1p
//     R2 n1  n2 81.25
//     C2 n2  0  1p
//     .end
//
// Supported cards: R (resistor), C (capacitor to ground), V (the input
// source, identifying the driven node), comments (* or ;), .title,
// .end, and + continuation lines. Engineering suffixes (f p n u m k
// meg g t) are accepted on values. Node "0" (aliases gnd, vss) is
// ground.
//
// The resistor graph must form a tree rooted at the source node —
// exactly the RC-tree class the analyses in this repository are proven
// for — and the parser diagnoses violations (resistors to ground,
// floating caps, loops, disconnected elements) with line numbers.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"elmore/internal/rctree"
)

// Deck is a parsed netlist.
type Deck struct {
	Title     string
	InputNode string // the node driven by the V source
	Tree      *rctree.Tree
	// Warnings lists accepted-but-suspicious constructs (e.g. a
	// capacitor on the driven node, which an ideal source shorts out).
	Warnings []string
}

type resistor struct {
	name, a, b string
	value      float64
	line       int
}

type capacitor struct {
	name, node string
	value      float64
	line       int
}

// Parse reads a deck.
func Parse(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var physical []string // logical lines after joining continuations
	var lineNos []int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if trimmed := strings.TrimSpace(line); strings.HasPrefix(trimmed, "+") {
			if len(physical) == 0 {
				return nil, fmt.Errorf("netlist: line %d: continuation with no previous card", lineNo)
			}
			physical[len(physical)-1] += " " + strings.TrimSpace(trimmed[1:])
			continue
		}
		physical = append(physical, line)
		lineNos = append(lineNos, lineNo)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}

	d := &Deck{}
	var res []resistor
	var caps []capacitor
	sourceNode := ""
	sourceLine := 0

	for idx, raw := range physical {
		ln := lineNos[idx]
		line := stripComment(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		card := strings.ToLower(fields[0])
		switch {
		case strings.HasPrefix(card, "."):
			switch {
			case card == ".end":
				// done; ignore the rest
			case card == ".title":
				d.Title = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), fields[0]))
			default:
				// Unknown dot-cards (.tran, .print, ...) are ignored: a
				// timing tool consumes topology, not simulation control.
			}
		case card[0] == 'r':
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: resistor needs 'Rname n1 n2 value'", ln)
			}
			v, err := rctree.ParseValue(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", ln, err)
			}
			res = append(res, resistor{fields[0], canonNode(fields[1]), canonNode(fields[2]), v, ln})
		case card[0] == 'c':
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: capacitor needs 'Cname n1 n2 value'", ln)
			}
			v, err := rctree.ParseValue(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", ln, err)
			}
			a, b := canonNode(fields[1]), canonNode(fields[2])
			switch {
			case a == ground && b == ground:
				return nil, fmt.Errorf("netlist: line %d: capacitor %s has both terminals grounded", ln, fields[0])
			case b == ground:
				caps = append(caps, capacitor{fields[0], a, v, ln})
			case a == ground:
				caps = append(caps, capacitor{fields[0], b, v, ln})
			default:
				return nil, fmt.Errorf("netlist: line %d: capacitor %s couples two non-ground nodes (%s, %s): not an RC tree", ln, fields[0], a, b)
			}
		case card[0] == 'v':
			if len(fields) < 3 {
				return nil, fmt.Errorf("netlist: line %d: source needs 'Vname n+ n-'", ln)
			}
			a, b := canonNode(fields[1]), canonNode(fields[2])
			node := ""
			switch {
			case a != ground && b == ground:
				node = a
			case a == ground && b != ground:
				node = b
			default:
				return nil, fmt.Errorf("netlist: line %d: source %s must connect one node to ground", ln, fields[0])
			}
			if sourceNode != "" && sourceNode != node {
				return nil, fmt.Errorf("netlist: line %d: second voltage source (first at line %d); RC trees have a single input", ln, sourceLine)
			}
			sourceNode = node
			sourceLine = ln
		default:
			return nil, fmt.Errorf("netlist: line %d: unsupported element %q (only R, C, V cards)", ln, fields[0])
		}
	}

	if sourceNode == "" {
		return nil, fmt.Errorf("netlist: no voltage source found; add 'Vin <node> 0 1' to mark the input")
	}
	d.InputNode = sourceNode

	tree, warnings, err := buildTree(sourceNode, res, caps)
	if err != nil {
		return nil, err
	}
	d.Tree = tree
	d.Warnings = warnings
	return d, nil
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

const ground = "0"

func canonNode(s string) string {
	switch strings.ToLower(s) {
	case "0", "gnd", "vss", "ground":
		return ground
	default:
		return s
	}
}

func stripComment(line string) string {
	t := strings.TrimSpace(line)
	if strings.HasPrefix(t, "*") {
		return ""
	}
	if i := strings.IndexAny(line, ";"); i >= 0 {
		return line[:i]
	}
	if i := strings.Index(line, "$ "); i >= 0 {
		return line[:i]
	}
	return line
}

// buildTree roots the resistor graph at the source node and constructs
// the rctree, validating the RC-tree topology class on the way.
func buildTree(source string, res []resistor, caps []capacitor) (*rctree.Tree, []string, error) {
	adj := make(map[string][]resistor)
	for _, r := range res {
		if r.a == ground || r.b == ground {
			return nil, nil, fmt.Errorf("netlist: line %d: resistor %s connects to ground: not an RC tree", r.line, r.name)
		}
		if r.a == r.b {
			return nil, nil, fmt.Errorf("netlist: line %d: resistor %s is self-connected", r.line, r.name)
		}
		adj[r.a] = append(adj[r.a], r)
		adj[r.b] = append(adj[r.b], r)
	}
	capAt := make(map[string]float64)
	capLine := make(map[string]int)
	for _, c := range caps {
		capAt[c.node] += c.value // parallel caps sum
		capLine[c.node] = c.line
	}

	var warnings []string
	if cv, ok := capAt[source]; ok {
		warnings = append(warnings,
			fmt.Sprintf("line %d: %s capacitance on driven node %q is shorted by the ideal source and ignored",
				capLine[source], rctree.FormatFarads(cv), source))
		delete(capAt, source)
	}

	b := rctree.NewBuilder()
	visitedEdges := make(map[string]bool) // resistor name -> used
	type queued struct {
		node   string
		parent int // rctree index or Source
		via    resistor
	}
	var queue []queued
	for _, r := range adj[source] {
		far := r.a
		if far == source {
			far = r.b
		}
		queue = append(queue, queued{far, rctree.Source, r})
		visitedEdges[r.name] = true
	}
	if len(queue) == 0 {
		return nil, nil, fmt.Errorf("netlist: no resistor connects to the input node %q", source)
	}
	seen := map[string]bool{source: true}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if seen[q.node] {
			return nil, nil, fmt.Errorf("netlist: line %d: resistor %s closes a loop at node %q: not a tree", q.via.line, q.via.name, q.node)
		}
		seen[q.node] = true
		var id int
		var err error
		if q.parent == rctree.Source {
			id, err = b.Root(q.node, q.via.value, capAt[q.node])
		} else {
			id, err = b.Attach(q.parent, q.node, q.via.value, capAt[q.node])
		}
		if err != nil {
			return nil, nil, fmt.Errorf("netlist: line %d: %w", q.via.line, err)
		}
		delete(capAt, q.node)
		for _, r := range adj[q.node] {
			if visitedEdges[r.name] {
				continue
			}
			visitedEdges[r.name] = true
			far := r.a
			if far == q.node {
				far = r.b
			}
			queue = append(queue, queued{far, id, r})
		}
	}
	for _, r := range res {
		if !visitedEdges[r.name] {
			return nil, nil, fmt.Errorf("netlist: line %d: resistor %s (%s-%s) is not connected to the input", r.line, r.name, r.a, r.b)
		}
	}
	if len(capAt) > 0 {
		var orphans []string
		for node := range capAt {
			orphans = append(orphans, node)
		}
		sort.Strings(orphans)
		return nil, nil, fmt.Errorf("netlist: line %d: capacitor node %q is not connected to the input through resistors", capLine[orphans[0]], orphans[0])
	}
	tree, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return tree, warnings, nil
}

// Write renders a tree as a SPICE deck with input node "in" and the
// given title. Node names are preserved. The result round-trips
// through Parse.
func Write(w io.Writer, t *rctree.Tree, title string) error {
	if title != "" {
		if _, err := fmt.Fprintf(w, "* %s\n", title); err != nil {
			return err
		}
	}
	// Pick an input node name that cannot collide with a tree node.
	src := "in"
	for {
		if _, taken := t.Index(src); !taken {
			break
		}
		src += "_"
	}
	if _, err := fmt.Fprintf(w, "Vin %s 0 1\n", src); err != nil {
		return err
	}
	rIdx, cIdx := 0, 0
	for _, i := range t.PreOrder() {
		parent := src
		if p := t.Parent(i); p != rctree.Source {
			parent = t.Name(p)
		}
		rIdx++
		if _, err := fmt.Fprintf(w, "R%d %s %s %.12g\n", rIdx, parent, t.Name(i), t.R(i)); err != nil {
			return err
		}
		if c := t.C(i); c > 0 {
			cIdx++
			if _, err := fmt.Fprintf(w, "C%d %s 0 %.12g\n", cIdx, t.Name(i), c); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, ".end")
	return err
}

// Format renders a tree as a deck string (see Write).
func Format(t *rctree.Tree, title string) string {
	var sb strings.Builder
	if err := Write(&sb, t, title); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		panic(err)
	}
	return sb.String()
}
