package gate

import "testing"

// FuzzParseLibrary asserts the liberty-lite parser never panics and
// that accepted libraries contain only valid cells that round-trip.
func FuzzParseLibrary(f *testing.F) {
	seeds := []string{
		"",
		demoLib,
		"cell a {\n",
		"cell a {\n delay {\n slews: 1p\n loads: 1f\n row: 1p\n }\n}\n",
		"row: 1 2 3\n",
		"# comment only\n",
		"cell x {\n delay {\n slews: zz\n",
		"}\n}\n}\n",
		"cell a {\n delay {\n slews: 1p 2p\n loads: 1f\n row: 1p\n row: 2p\n }\n output_slew {\n slews: 1p 2p\n loads: 1f\n row: 1p\n row: 2p\n }\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := ParseLibraryString(src)
		if err != nil {
			return
		}
		for name, c := range lib.Cells {
			if err := c.Validate(); err != nil {
				t.Fatalf("accepted invalid cell %q: %v", name, err)
			}
		}
		if _, err := ParseLibraryString(FormatLibrary(lib)); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
