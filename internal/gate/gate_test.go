package gate

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/pimodel"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func smallTable() *Table {
	return &Table{
		Slews: []float64{10e-12, 100e-12},
		Loads: []float64{1e-15, 10e-15, 100e-15},
		Values: [][]float64{
			{5e-12, 20e-12, 150e-12},
			{8e-12, 25e-12, 160e-12},
		},
	}
}

func TestTableValidate(t *testing.T) {
	if err := smallTable().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Table{
		{},
		{Slews: []float64{1}, Loads: []float64{1}, Values: [][]float64{}},
		{Slews: []float64{1}, Loads: []float64{1, 2}, Values: [][]float64{{1}}},
		{Slews: []float64{2, 1}, Loads: []float64{1}, Values: [][]float64{{1}, {1}}},
		{Slews: []float64{1}, Loads: []float64{1}, Values: [][]float64{{math.NaN()}}},
		{Slews: []float64{1}, Loads: []float64{1}, Values: [][]float64{{-1}}},
	}
	for i, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLookupCornersAndInterior(t *testing.T) {
	tb := smallTable()
	// Exact grid points.
	if got := tb.Lookup(10e-12, 1e-15); got != 5e-12 {
		t.Errorf("corner = %v", got)
	}
	if got := tb.Lookup(100e-12, 100e-15); got != 160e-12 {
		t.Errorf("corner = %v", got)
	}
	// Clamping outside the grid.
	if got := tb.Lookup(1e-12, 0.1e-15); got != 5e-12 {
		t.Errorf("clamp low = %v", got)
	}
	if got := tb.Lookup(1, 1); got != 160e-12 {
		t.Errorf("clamp high = %v", got)
	}
	// Midpoint bilinear.
	got := tb.Lookup(55e-12, 5.5e-15)
	want := (5e-12 + 20e-12 + 8e-12 + 25e-12) / 4
	if !approx(got, want, 1e-12) {
		t.Errorf("midpoint = %v, want %v", got, want)
	}
}

func TestShieldingFraction(t *testing.T) {
	// Slow ramp: no shielding.
	if k := shieldingFraction(100, 1e-15, 1); !approx(k, 1, 1e-9) {
		t.Errorf("slow ramp k = %v, want ~1", k)
	}
	// Instant edge: fully shielded.
	if k := shieldingFraction(100, 1e-15, 0); k != 0 {
		t.Errorf("step k = %v, want 0", k)
	}
	// Degenerate pi (no far cap): 1.
	if k := shieldingFraction(0, 0, 1e-12); k != 1 {
		t.Errorf("bare cap k = %v, want 1", k)
	}
	// Monotone in T.
	prev := -1.0
	for _, T := range []float64{1e-12, 1e-11, 1e-10, 1e-9} {
		k := shieldingFraction(1000, 100e-15, T)
		if k < prev {
			t.Errorf("shielding not monotone at T=%v", T)
		}
		if k < 0 || k > 1 {
			t.Errorf("k out of range: %v", k)
		}
		prev = k
	}
}

func TestLinearCell(t *testing.T) {
	slews := []float64{1e-12, 50e-12, 200e-12}
	loads := []float64{1e-15, 50e-15, 200e-15}
	cell, err := LinearCell("inv", 500, 3e-12, 0.1, 5e-12, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	// On-grid agreement with the analytic form.
	want := 3e-12 + math.Ln2*500*50e-15 + 0.1*50e-12
	if got := cell.Delay.Lookup(50e-12, 50e-15); !approx(got, want, 1e-9) {
		t.Errorf("delay = %v, want %v", got, want)
	}
	if _, err := LinearCell("bad", 0, 0, 0, 0, slews, loads); err == nil {
		t.Errorf("rdrv=0 should fail")
	}
}

func TestDriveLoadBareCap(t *testing.T) {
	slews := []float64{1e-12, 100e-12}
	loads := []float64{1e-15, 200e-15}
	cell, err := LinearCell("inv", 400, 2e-12, 0.05, 4e-12, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	// A bare capacitor: Ceff == C, single iteration.
	load := pimodel.Model{C1: 80e-15}
	d, err := cell.DriveLoad(20e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.Ceff, 80e-15, 1e-12) {
		t.Errorf("Ceff = %v, want 80f", d.Ceff)
	}
	if d.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", d.Iterations)
	}
	if !approx(d.Delay, cell.Delay.Lookup(20e-12, 80e-15), 1e-12) {
		t.Errorf("delay mismatch")
	}
}

func TestDriveLoadShieldsFarCap(t *testing.T) {
	slews := []float64{1e-12, 500e-12}
	loads := []float64{1e-15, 500e-15}
	cell, err := LinearCell("drv", 300, 2e-12, 0.05, 3e-12, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	// A strongly shielded far cap: big R2, fast driver.
	load := pimodel.Model{C1: 20e-15, R2: 50e3, C2: 100e-15}
	d, err := cell.DriveLoad(10e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ceff >= load.TotalC() {
		t.Errorf("Ceff %v should be below total %v (shielding)", d.Ceff, load.TotalC())
	}
	if d.Ceff < load.C1 {
		t.Errorf("Ceff %v cannot drop below the near cap %v", d.Ceff, load.C1)
	}
	// Weakly shielded: tiny R2 -> Ceff ~ total.
	easy := pimodel.Model{C1: 20e-15, R2: 1, C2: 100e-15}
	d2, err := cell.DriveLoad(10e-12, easy)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d2.Ceff, easy.TotalC(), 1e-3) {
		t.Errorf("unshielded Ceff = %v, want ~%v", d2.Ceff, easy.TotalC())
	}
}

func TestDriveLoadErrors(t *testing.T) {
	cell := &Cell{Name: "x"}
	if _, err := cell.DriveLoad(1e-12, pimodel.Model{C1: 1e-15}); err == nil {
		t.Errorf("invalid cell should fail")
	}
	ok, err := LinearCell("inv", 100, 1e-12, 0, 1e-12, []float64{1e-12, 1e-10}, []float64{1e-15, 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.DriveLoad(math.NaN(), pimodel.Model{C1: 1e-15}); err == nil {
		t.Errorf("NaN slew should fail")
	}
}

// Properties: Ceff always lies in [C1, C1+C2]; delay and slew are
// monotone in the load for the linear cell; iteration converges.
func TestCeffProperty(t *testing.T) {
	slews := []float64{1e-12, 1e-9}
	loads := []float64{1e-16, 1e-12}
	cell, err := LinearCell("inv", 250, 1e-12, 0.02, 2e-12, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	f := func(c1Raw, c2Raw, r2Raw uint16, slewRaw uint8) bool {
		load := pimodel.Model{
			C1: 1e-16 + float64(c1Raw)*1e-18,
			R2: 1 + float64(r2Raw)*10,
			C2: 1e-16 + float64(c2Raw)*1e-18,
		}
		slew := 1e-12 + float64(slewRaw)*1e-12
		d, err := cell.DriveLoad(slew, load)
		if err != nil {
			return false
		}
		return d.Ceff >= load.C1-1e-24 && d.Ceff <= load.TotalC()+1e-24 && d.Iterations <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
