package gate

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"elmore/internal/rctree"
)

// Library is a set of characterized cells indexed by name.
type Library struct {
	Cells map[string]*Cell
}

// Get returns a cell by name.
func (l *Library) Get(name string) (*Cell, error) {
	c, ok := l.Cells[name]
	if !ok {
		names := make([]string, 0, len(l.Cells))
		for n := range l.Cells {
			names = append(names, n)
		}
		return nil, fmt.Errorf("gate: no cell %q in library (have: %s)", name, strings.Join(names, ", "))
	}
	return c, nil
}

// ParseLibrary reads the "liberty-lite" cell format: a minimal,
// line-oriented subset of the information a Liberty file carries —
// enough to drive the mini STA. Example:
//
//	# comment
//	cell inv_x1 {
//	  delay {
//	    slews: 1p 20p 80p
//	    loads: 1f 20f 80f
//	    row: 5p 8p 15p
//	    row: 6p 9p 16p
//	    row: 8p 12p 20p
//	  }
//	  output_slew {
//	    slews: 1p 20p 80p
//	    loads: 1f 20f 80f
//	    row: 4p 10p 22p
//	    row: 5p 11p 23p
//	    row: 6p 13p 26p
//	  }
//	}
//
// Each table has one row per slews entry with one value per loads
// entry. SPICE-style engineering suffixes are accepted everywhere.
func ParseLibrary(r io.Reader) (*Library, error) {
	lib := &Library{Cells: make(map[string]*Cell)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var (
		cur      *Cell
		curTable *Table
		lineNo   int
	)
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("gate: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	parseVals := func(fields []string) ([]float64, error) {
		out := make([]float64, 0, len(fields))
		for _, f := range fields {
			v, err := rctree.ParseValue(f)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "cell":
			if cur != nil {
				return nil, fail("cell %q not closed before new cell", cur.Name)
			}
			if len(fields) < 2 {
				return nil, fail("cell needs a name")
			}
			name := fields[1]
			if _, dup := lib.Cells[name]; dup {
				return nil, fail("duplicate cell %q", name)
			}
			cur = &Cell{Name: name}
		case fields[0] == "delay" || fields[0] == "output_slew":
			if cur == nil {
				return nil, fail("%s outside a cell block", fields[0])
			}
			if curTable != nil {
				return nil, fail("nested table")
			}
			curTable = &Table{}
			if fields[0] == "delay" {
				if cur.Delay != nil {
					return nil, fail("duplicate delay table")
				}
				cur.Delay = curTable
			} else {
				if cur.OutputSlew != nil {
					return nil, fail("duplicate output_slew table")
				}
				cur.OutputSlew = curTable
			}
		case strings.HasPrefix(line, "slews:"):
			if curTable == nil {
				return nil, fail("slews outside a table")
			}
			vals, err := parseVals(strings.Fields(strings.TrimPrefix(line, "slews:")))
			if err != nil {
				return nil, fail("slews: %v", err)
			}
			curTable.Slews = vals
		case strings.HasPrefix(line, "loads:"):
			if curTable == nil {
				return nil, fail("loads outside a table")
			}
			vals, err := parseVals(strings.Fields(strings.TrimPrefix(line, "loads:")))
			if err != nil {
				return nil, fail("loads: %v", err)
			}
			curTable.Loads = vals
		case strings.HasPrefix(line, "row:"):
			if curTable == nil {
				return nil, fail("row outside a table")
			}
			vals, err := parseVals(strings.Fields(strings.TrimPrefix(line, "row:")))
			if err != nil {
				return nil, fail("row: %v", err)
			}
			curTable.Values = append(curTable.Values, vals)
		case line == "}":
			switch {
			case curTable != nil:
				curTable = nil
			case cur != nil:
				if err := cur.Validate(); err != nil {
					return nil, fail("%v", err)
				}
				lib.Cells[cur.Name] = cur
				cur = nil
			default:
				return nil, fail("unmatched }")
			}
		case line == "{":
			// Opening braces on their own line are tolerated.
		default:
			return nil, fail("unrecognized directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gate: read: %w", err)
	}
	if cur != nil || curTable != nil {
		return nil, fmt.Errorf("gate: unexpected end of library (unclosed block)")
	}
	if len(lib.Cells) == 0 {
		return nil, fmt.Errorf("gate: library contains no cells")
	}
	return lib, nil
}

// ParseLibraryString parses a liberty-lite library from a string.
func ParseLibraryString(s string) (*Library, error) {
	return ParseLibrary(strings.NewReader(s))
}

// FormatLibrary renders a library back into liberty-lite text (cells
// sorted by name), round-trippable through ParseLibrary.
func FormatLibrary(lib *Library) string {
	var names []string
	for n := range lib.Cells {
		names = append(names, n)
	}
	// Insertion sort keeps the function dependency-free.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var sb strings.Builder
	writeTable := func(kind string, t *Table) {
		fmt.Fprintf(&sb, "  %s {\n", kind)
		sb.WriteString("    slews:")
		for _, v := range t.Slews {
			fmt.Fprintf(&sb, " %.17g", v)
		}
		sb.WriteString("\n    loads:")
		for _, v := range t.Loads {
			fmt.Fprintf(&sb, " %.17g", v)
		}
		sb.WriteString("\n")
		for _, row := range t.Values {
			sb.WriteString("    row:")
			for _, v := range row {
				fmt.Fprintf(&sb, " %.17g", v)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("  }\n")
	}
	for _, n := range names {
		c := lib.Cells[n]
		fmt.Fprintf(&sb, "cell %s {\n", n)
		writeTable("delay", c.Delay)
		writeTable("output_slew", c.OutputSlew)
		sb.WriteString("}\n")
	}
	return sb.String()
}
