// Package gate models switching logic cells the way timing analyzers
// do (and the way the paper's Section IV assumes): a cell is
// characterized empirically by lookup tables — delay and output
// transition time as functions of input transition time and load
// capacitance — and presents its RC load through an effective
// capacitance obtained by pi-reduction plus resistive-shielding
// iteration.
//
// This is the substrate that turns the paper's "the signal coming out
// of the digital gate ... is generally modeled by a saturated ramp"
// into numbers: the gate produces the ramp, the net analyses bound its
// propagation.
package gate

import (
	"fmt"
	"math"
	"sort"

	"elmore/internal/pimodel"
)

// Table is an NLDM-style 2-D characterization surface: rows are input
// transition times, columns are load capacitances, values are seconds
// (cell delay or output transition). Lookup is bilinear inside the
// grid and clamped at the edges, as in conventional timers.
type Table struct {
	Slews  []float64   // ascending input transition times (s)
	Loads  []float64   // ascending load capacitances (F)
	Values [][]float64 // Values[si][li]
}

// Validate checks grid shape and monotone axes.
func (t *Table) Validate() error {
	if len(t.Slews) == 0 || len(t.Loads) == 0 {
		return fmt.Errorf("gate: table needs nonempty axes")
	}
	if len(t.Values) != len(t.Slews) {
		return fmt.Errorf("gate: table has %d rows, want %d", len(t.Values), len(t.Slews))
	}
	for i, row := range t.Values {
		if len(row) != len(t.Loads) {
			return fmt.Errorf("gate: row %d has %d entries, want %d", i, len(row), len(t.Loads))
		}
	}
	if !sort.Float64sAreSorted(t.Slews) || !sort.Float64sAreSorted(t.Loads) {
		return fmt.Errorf("gate: table axes must be ascending")
	}
	for _, row := range t.Values {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("gate: table value %v invalid", v)
			}
		}
	}
	return nil
}

// segment finds the bracketing indices and interpolation fraction for x
// on an ascending axis, clamped to the grid.
func segment(axis []float64, x float64) (int, int, float64) {
	if x <= axis[0] {
		return 0, 0, 0
	}
	n := len(axis)
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	hi := sort.SearchFloat64s(axis, x)
	lo := hi - 1
	f := (x - axis[lo]) / (axis[hi] - axis[lo])
	return lo, hi, f
}

// Lookup bilinearly interpolates the surface at (inputSlew, load).
func (t *Table) Lookup(inputSlew, load float64) float64 {
	sl, sh, sf := segment(t.Slews, inputSlew)
	ll, lh, lf := segment(t.Loads, load)
	v00 := t.Values[sl][ll]
	v01 := t.Values[sl][lh]
	v10 := t.Values[sh][ll]
	v11 := t.Values[sh][lh]
	return v00*(1-sf)*(1-lf) + v01*(1-sf)*lf + v10*sf*(1-lf) + v11*sf*lf
}

// Cell is a characterized gate: a delay surface and an output-slew
// surface sharing axes.
type Cell struct {
	Name       string
	Delay      *Table // 50%-in to 50%-out delay
	OutputSlew *Table // output transition time (0-100% ramp time)
}

// Validate checks both tables.
func (c *Cell) Validate() error {
	if c.Delay == nil || c.OutputSlew == nil {
		return fmt.Errorf("gate: cell %q needs both delay and output-slew tables", c.Name)
	}
	if err := c.Delay.Validate(); err != nil {
		return fmt.Errorf("gate: cell %q delay: %w", c.Name, err)
	}
	if err := c.OutputSlew.Validate(); err != nil {
		return fmt.Errorf("gate: cell %q output slew: %w", c.Name, err)
	}
	return nil
}

// Drive is the result of a gate switching into a load: the cell delay
// and the output ramp it launches into the net, plus the effective
// capacitance the iteration converged to.
type Drive struct {
	Delay      float64 // input-50% to output-50% (s)
	OutputSlew float64 // 0-100% ramp duration launched into the net (s)
	Ceff       float64 // effective capacitance seen by the cell (F)
	Iterations int
}

// shieldingFraction returns the fraction of C2's charge delivered
// within an output ramp of duration T through the pi resistance R2:
// for a unit ramp of duration T driving R2-C2, the far-cap voltage at
// the end of the ramp is 1 - (tau/T)(1 - e^{-T/tau}), tau = R2 C2.
// Slower ramps (T >> tau) see the whole C2 (fraction -> 1); fast edges
// are shielded by R2 (fraction -> T/(2 tau) -> 0).
func shieldingFraction(r2, c2, T float64) float64 {
	if c2 <= 0 {
		return 1
	}
	tau := r2 * c2
	if tau <= 0 {
		return 1
	}
	if T <= 0 {
		return 0
	}
	x := T / tau
	return 1 - (1-math.Exp(-x))/x
}

// DriveLoad runs the effective-capacitance iteration: the cell sees
// Ceff = C1 + k*C2 where the shielding factor k follows from the
// current output-slew estimate, which in turn follows from Ceff.
// Converges in a handful of iterations for physical tables.
func (c *Cell) DriveLoad(inputSlew float64, load pimodel.Model) (Drive, error) {
	if err := c.Validate(); err != nil {
		return Drive{}, err
	}
	if inputSlew < 0 || math.IsNaN(inputSlew) {
		return Drive{}, fmt.Errorf("gate: invalid input slew %v", inputSlew)
	}
	ceff := load.TotalC()
	var out Drive
	for iter := 1; iter <= 50; iter++ {
		slew := c.OutputSlew.Lookup(inputSlew, ceff)
		k := shieldingFraction(load.R2, load.C2, slew)
		next := load.C1 + k*load.C2
		out = Drive{
			Delay:      c.Delay.Lookup(inputSlew, next),
			OutputSlew: c.OutputSlew.Lookup(inputSlew, next),
			Ceff:       next,
			Iterations: iter,
		}
		if math.Abs(next-ceff) <= 1e-6*load.TotalC()+1e-24 {
			return out, nil
		}
		ceff = next
	}
	return out, fmt.Errorf("gate: cell %q effective-capacitance iteration did not converge", c.Name)
}

// LinearCell synthesizes a first-order characterized cell from a
// Thevenin model: output resistance rdrv and intrinsic delay d0. Its
// tables follow the analytic single-pole forms
//
//	delay(slew, C)  = d0 + ln2 * rdrv * C + slewSensitivity * slew
//	outSlew(slew,C) = ln9 * rdrv * C + slewFloor
//
// gridded over the given axes. Useful for tests and for building
// consistent multi-stage examples without a real library.
func LinearCell(name string, rdrv, d0, slewSensitivity, slewFloor float64, slews, loads []float64) (*Cell, error) {
	if rdrv <= 0 {
		return nil, fmt.Errorf("gate: rdrv must be positive")
	}
	mk := func(f func(s, c float64) float64) *Table {
		vals := make([][]float64, len(slews))
		for si, s := range slews {
			vals[si] = make([]float64, len(loads))
			for li, cl := range loads {
				vals[si][li] = f(s, cl)
			}
		}
		return &Table{Slews: slews, Loads: loads, Values: vals}
	}
	cell := &Cell{
		Name: name,
		Delay: mk(func(s, cl float64) float64 {
			return d0 + math.Ln2*rdrv*cl + slewSensitivity*s
		}),
		OutputSlew: mk(func(s, cl float64) float64 {
			return math.Log(9)*rdrv*cl + slewFloor
		}),
	}
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	return cell, nil
}
