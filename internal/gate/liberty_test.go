package gate

import (
	"math"
	"strings"
	"testing"
)

const demoLib = `# tiny demo library
cell inv_x1 {
  delay {
    slews: 1p 20p 80p
    loads: 1f 20f 80f
    row: 5p 8p 15p
    row: 6p 9p 16p
    row: 8p 12p 20p
  }
  output_slew {
    slews: 1p 20p 80p
    loads: 1f 20f 80f
    row: 4p 10p 22p
    row: 5p 11p 23p
    row: 6p 13p 26p
  }
}
cell buf_x2 {
  delay {
    slews: 1p 80p
    loads: 1f 80f
    row: 9p 18p
    row: 11p 21p
  }
  output_slew {
    slews: 1p 80p
    loads: 1f 80f
    row: 7p 14p
    row: 9p 17p
  }
}
`

func TestParseLibrary(t *testing.T) {
	lib, err := ParseLibraryString(demoLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 2 {
		t.Fatalf("cells = %d", len(lib.Cells))
	}
	inv, err := lib.Get("inv_x1")
	if err != nil {
		t.Fatal(err)
	}
	// "On-grid" up to the 1-ulp difference between the parser's
	// 20*1e-12 and the literal 20e-12.
	if got := inv.Delay.Lookup(20e-12, 20e-15); math.Abs(got-9e-12) > 1e-20 {
		t.Errorf("on-grid delay = %v, want 9p", got)
	}
	if got := inv.OutputSlew.Lookup(1e-12, 80e-15); math.Abs(got-22e-12) > 1e-20 {
		t.Errorf("on-grid slew = %v, want 22p", got)
	}
	if _, err := lib.Get("nand9"); err == nil {
		t.Errorf("missing cell should error")
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"no cells", "# nothing\n"},
		{"unclosed cell", "cell a {\n"},
		{"cell without tables", "cell a {\n}\n"},
		{"ragged row", "cell a {\n delay {\n slews: 1p\n loads: 1f 2f\n row: 1p\n }\n output_slew {\n slews: 1p\n loads: 1f\n row: 1p\n }\n}\n"},
		{"row outside table", "row: 1p\n"},
		{"slews outside table", "slews: 1p\n"},
		{"bad value", "cell a {\n delay {\n slews: xyz\n"},
		{"duplicate cell", demoLib + "cell inv_x1 {\n}\n"},
		{"duplicate table", "cell a {\n delay {\n }\n delay {\n"},
		{"unmatched brace", "}\n"},
		{"cell inside cell", "cell a {\ncell b {\n"},
		{"nameless cell", "cell {\n"},
		{"garbage", "frobnicate 7\n"},
		{"descending slews", "cell a {\n delay {\n slews: 2p 1p\n loads: 1f\n row: 1p\n row: 1p\n }\n output_slew {\n slews: 1p\n loads: 1f\n row: 1p\n }\n}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseLibraryString(tc.src); err == nil {
				t.Errorf("expected error")
			}
		})
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib, err := ParseLibraryString(demoLib)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatLibrary(lib)
	lib2, err := ParseLibraryString(text)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if len(lib2.Cells) != len(lib.Cells) {
		t.Fatalf("cell count changed")
	}
	for name, c := range lib.Cells {
		c2, err := lib2.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for si, s := range c.Delay.Slews {
			for li, l := range c.Delay.Loads {
				if c.Delay.Values[si][li] != c2.Delay.Values[si][li] {
					t.Errorf("%s delay[%v][%v] changed", name, s, l)
				}
			}
		}
	}
	// Deterministic cell ordering in the output.
	if !strings.Contains(text, "cell buf_x2") || strings.Index(text, "buf_x2") > strings.Index(text, "inv_x1") {
		t.Errorf("cells should be sorted:\n%s", text)
	}
}
