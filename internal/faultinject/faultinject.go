// Package faultinject is a deterministic, seed-driven fault injector
// for chaos testing the batch/sim/core stack. The paper's central
// result — the Elmore delay T_D = m1 is a guaranteed upper bound on the
// 50% delay (Theorem 1) — means a correct answer survives any sim
// failure, and this package manufactures those failures on demand so
// the resilience layer's retry, circuit-breaker, and graceful-
// degradation paths can be proven under load rather than trusted.
//
// The design mirrors package health: a process-wide default injector
// reached through an atomic pointer, where nil means "disabled" and
// the disabled path costs one atomic load and zero allocations — safe
// to leave at named injection points inside hot loops permanently.
//
//	inj := faultinject.New(1, faultinject.Rule{
//	    Point: "sim.step", Kind: faultinject.KindError, Prob: 0.01,
//	})
//	prev := faultinject.SetDefault(inj)
//	defer faultinject.SetDefault(prev)
//
// Injection points are dotted "<package>.<site>" names. The points
// currently wired into the engines:
//
//	sim.factor       NewPlan, before compile/stamp/factor
//	sim.step         every integration step of Runner.RunInto
//	sim.state        NaN poisoning of the state vector (KindNaN rules)
//	moments.compute  moments.Compute, before the traversals
//	moments.m1       NaN poisoning of the computed m_1 (KindNaN rules)
//	batch.dispatch   batch.Engine, at the top of every job attempt
//	batch.write      batch.WriteResult, before encoding
//	batch.journal    batch.Journal.Record, before appending
//	serve.accept     cmd/elmored, before a request enters the drain gate
//	serve.decode     cmd/elmored, before the request body is decoded
//	serve.admit      cmd/elmored, before the limiter's admission decision
//
// Decisions are deterministic: each rule keeps its own visit counter,
// and probability rules hash (seed, point, visit number) with
// splitmix64, so a given seed fires on exactly the same visit numbers
// every run, regardless of goroutine interleaving.
//
// Setting the environment variable ELMORE_FAULTS to a rule spec (see
// ParseSpec) installs an injector at package init, seeded by
// ELMORE_FAULT_SEED (default 1) — the hook the chaos CI lane and the
// README walkthrough use to inject faults into unmodified binaries.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"elmore/internal/telemetry"
)

// Kind selects what a firing rule does to the caller.
type Kind int

const (
	// KindError makes Fire return an *Error (classified as transient
	// by the resilience package).
	KindError Kind = iota
	// KindPanic makes Fire panic with a *Panic value.
	KindPanic
	// KindDelay makes Fire sleep for the rule's Delay before returning
	// nil — the fuel for per-attempt timeouts and watchdogs.
	KindDelay
	// KindNaN makes Poison return NaN instead of the caller's value.
	// Fire ignores NaN rules; Poison ignores all other kinds.
	KindNaN
)

// String returns the spec token for the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindNaN:
		return "nan"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule schedules one fault at one injection point. A rule fires on a
// visit when the visit number matches its deterministic schedule:
// every Nth visit (Every), with probability Prob per visit (hashed
// from the injector seed and the visit number), or both. A rule with
// neither Every nor Prob set never fires. After skips the first
// visits; Limit caps the total number of fires (0 = unlimited).
type Rule struct {
	Point string        // injection point name (e.g. "sim.step")
	Kind  Kind          // what to do when the rule fires
	Prob  float64       // per-visit firing probability in [0, 1]
	Every int           // fire on every Nth visit (deterministic)
	After int           // skip the first After visits
	Limit int           // max total fires; 0 means unlimited
	Delay time.Duration // sleep duration for KindDelay rules
}

// rule is a compiled Rule with its runtime counters.
type rule struct {
	Rule
	visits atomic.Int64
	fires  atomic.Int64
}

// Injector evaluates rules at injection points. Immutable after New;
// safe for concurrent use.
type Injector struct {
	seed  uint64
	rules map[string][]*rule
}

// New compiles rules into an injector. Rules for the same point are
// evaluated in order; the first firing rule wins the visit.
func New(seed int64, rules ...Rule) *Injector {
	inj := &Injector{seed: uint64(seed), rules: make(map[string][]*rule, len(rules))}
	for _, r := range rules {
		inj.rules[r.Point] = append(inj.rules[r.Point], &rule{Rule: r})
	}
	return inj
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint folds a point name into the seed once per decision.
func hashPoint(seed uint64, point string) uint64 {
	h := seed
	for i := 0; i < len(point); i++ {
		h = splitmix64(h ^ uint64(point[i]))
	}
	return h
}

// decide reports whether the rule fires on this visit (1-based).
func (r *rule) decide(seed uint64, visit int64) bool {
	if visit <= int64(r.After) {
		return false
	}
	if r.Limit > 0 && r.fires.Load() >= int64(r.Limit) {
		return false
	}
	hit := false
	if r.Every > 0 && (visit-int64(r.After))%int64(r.Every) == 0 {
		hit = true
	}
	if !hit && r.Prob > 0 {
		u := float64(splitmix64(hashPoint(seed, r.Point)^uint64(visit))>>11) / (1 << 53)
		hit = u < r.Prob
	}
	if !hit {
		return false
	}
	if r.Limit > 0 && r.fires.Add(1) > int64(r.Limit) {
		return false
	}
	if r.Limit == 0 {
		r.fires.Add(1)
	}
	return true
}

// Error is the typed error a KindError rule injects. The resilience
// package classifies it as transient, so retry loops re-run the
// attempt.
type Error struct {
	Point string // injection point that fired
	Visit int64  // 1-based visit number at that point's rule
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (visit %d)", e.Point, e.Visit)
}

// Transient marks injected errors as retry-worthy for the resilience
// classifier.
func (e *Error) Transient() bool { return true }

// Panic is the value a KindPanic rule panics with, so recover sites
// and chaos assertions can tell injected panics from real ones.
type Panic struct {
	Point string
	Visit int64
}

// String renders the panic value for recovered-panic error messages.
func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (visit %d)", p.Point, p.Visit)
}

// fire evaluates the point's error/panic/delay rules for one visit.
func (inj *Injector) fire(point string) error {
	rules := inj.rules[point]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		if r.Kind == KindNaN {
			continue
		}
		visit := r.visits.Add(1)
		if !r.decide(inj.seed, visit) {
			continue
		}
		fired(point)
		switch r.Kind {
		case KindPanic:
			panic(&Panic{Point: point, Visit: visit})
		case KindDelay:
			time.Sleep(r.Delay)
			return nil
		default:
			return &Error{Point: point, Visit: visit}
		}
	}
	return nil
}

// poison evaluates the point's NaN rules for one visit.
func (inj *Injector) poison(point string, v float64) float64 {
	for _, r := range inj.rules[point] {
		if r.Kind != KindNaN {
			continue
		}
		if r.decide(inj.seed, r.visits.Add(1)) {
			fired(point)
			return math.NaN()
		}
	}
	return v
}

// fired counts one injection in the telemetry registry: the aggregate
// "faultinject.fired" plus a per-point counter. Each injection is also
// logged to the flight recorder — and, since an injected fault is by
// definition an anomaly worth a postmortem, triggers a (throttled)
// dump: the obs-smoke lane relies on a seeded chaos run always leaving
// a dump behind.
func fired(point string) {
	telemetry.C("faultinject.fired").Inc()
	telemetry.C("faultinject.fired." + point).Inc()
	if telemetry.FlightEnabled() {
		telemetry.FlightRecord(telemetry.FlightEvent{
			Kind:  telemetry.FlightFault,
			Index: -1,
			Label: point,
		})
		telemetry.FlightDump("fault")
	}
}

// defaultInjector is the process-wide injector consulted by Fire and
// Poison. nil means injection is disabled.
var defaultInjector atomic.Pointer[Injector]

// SetDefault installs inj as the process-wide injector (nil disables
// injection) and returns the previous one so callers can restore it.
func SetDefault(inj *Injector) (prev *Injector) {
	return defaultInjector.Swap(inj)
}

// Default returns the current injector, or nil when disabled.
func Default() *Injector { return defaultInjector.Load() }

// Enabled reports whether an injector is installed. Hot paths use it
// to gate multi-point sequences behind one atomic load.
func Enabled() bool { return Default() != nil }

// Fire consults the default injector at the named point: it returns an
// injected *Error, sleeps an injected delay, or panics with a *Panic,
// according to the installed schedule. With no injector installed it
// returns nil after a single atomic load.
func Fire(point string) error {
	inj := Default()
	if inj == nil {
		return nil
	}
	return inj.fire(point)
}

// Poison passes v through, or replaces it with NaN when a KindNaN rule
// fires at the named point. With no injector installed it returns v
// after a single atomic load.
func Poison(point string, v float64) float64 {
	inj := Default()
	if inj == nil {
		return v
	}
	return inj.poison(point, v)
}

// ParseSpec parses a comma-separated rule list into Rules. Each rule is
//
//	point:kind[:opt=val[;opt=val...]]
//
// with kind one of error, panic, delay, nan, and options p (per-visit
// probability), every, after, limit, and delay (a Go duration, for
// delay rules). Examples:
//
//	sim.step:error:p=0.01
//	moments.compute:panic:every=100;limit=3
//	batch.dispatch:delay:p=0.05;delay=50ms
//	sim.state:nan:every=500
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.SplitN(tok, ":", 3)
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("faultinject: rule %q: want point:kind[:opts]", tok)
		}
		r := Rule{Point: parts[0]}
		switch parts[1] {
		case "error":
			r.Kind = KindError
		case "panic":
			r.Kind = KindPanic
		case "delay":
			r.Kind = KindDelay
		case "nan":
			r.Kind = KindNaN
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown kind %q", tok, parts[1])
		}
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], ";") {
				opt = strings.TrimSpace(opt)
				if opt == "" {
					continue
				}
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: rule %q: option %q: want key=value", tok, opt)
				}
				var err error
				switch k {
				case "p":
					r.Prob, err = strconv.ParseFloat(v, 64)
					if err == nil && (r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob)) {
						err = fmt.Errorf("probability out of [0,1]")
					}
				case "every":
					r.Every, err = strconv.Atoi(v)
					if err == nil && r.Every < 0 {
						err = fmt.Errorf("must be >= 0")
					}
				case "after":
					r.After, err = strconv.Atoi(v)
					if err == nil && r.After < 0 {
						err = fmt.Errorf("must be >= 0")
					}
				case "limit":
					r.Limit, err = strconv.Atoi(v)
					if err == nil && r.Limit < 0 {
						err = fmt.Errorf("must be >= 0")
					}
				case "delay":
					r.Delay, err = time.ParseDuration(v)
					if err == nil && r.Delay < 0 {
						err = fmt.Errorf("must be >= 0")
					}
				default:
					err = fmt.Errorf("unknown option")
				}
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: option %q: %v", tok, opt, err)
				}
			}
		}
		if r.Prob == 0 && r.Every == 0 {
			return nil, fmt.Errorf("faultinject: rule %q: needs p= or every= to ever fire", tok)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func init() {
	spec := os.Getenv("ELMORE_FAULTS")
	if spec == "" {
		return
	}
	seed := int64(1)
	if s := os.Getenv("ELMORE_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	rules, err := ParseSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ELMORE_FAULTS:", err)
		os.Exit(2)
	}
	SetDefault(New(seed, rules...))
}
