package faultinject

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elmore/internal/telemetry"
)

func install(t *testing.T, inj *Injector) {
	t.Helper()
	prev := SetDefault(inj)
	t.Cleanup(func() { SetDefault(prev) })
}

func TestDisabledPathIsInert(t *testing.T) {
	install(t, nil)
	if Enabled() {
		t.Fatal("Enabled with no injector")
	}
	if err := Fire("sim.step"); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	if v := Poison("sim.state", 1.5); v != 1.5 {
		t.Fatalf("disabled Poison altered value: %v", v)
	}
}

func TestEveryNthFiresDeterministically(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindError, Every: 3}))
	var fires []int
	for i := 1; i <= 12; i++ {
		if err := Fire("p"); err != nil {
			fires = append(fires, i)
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "p" {
				t.Fatalf("wrong error type/point: %v", err)
			}
		}
	}
	want := []int{3, 6, 9, 12}
	if len(fires) != len(want) {
		t.Fatalf("fired on visits %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired on visits %v, want %v", fires, want)
		}
	}
}

func TestAfterAndLimit(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindError, Every: 1, After: 5, Limit: 2}))
	n := 0
	for i := 0; i < 20; i++ {
		if Fire("p") != nil {
			n++
			if i < 5 {
				t.Fatalf("fired during the After window at visit %d", i+1)
			}
		}
	}
	if n != 2 {
		t.Fatalf("fired %d times, want Limit=2", n)
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		inj := New(seed, Rule{Point: "p", Kind: KindError, Prob: 0.25})
		var fires []int
		for i := 1; i <= 400; i++ {
			if inj.fire("p") != nil {
				fires = append(fires, i)
			}
		}
		return fires
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed fired on different visits: %v vs %v", a, b)
		}
	}
	// Roughly the configured rate (0.25 +- a wide margin).
	if len(a) < 50 || len(a) > 150 {
		t.Errorf("p=0.25 over 400 visits fired %d times", len(a))
	}
	if c := run(8); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical schedules")
		}
	}
}

func TestPanicKind(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindPanic, Every: 1, Limit: 1}))
	defer func() {
		p := recover()
		pv, ok := p.(*Panic)
		if !ok || pv.Point != "p" {
			t.Fatalf("recovered %v, want *Panic at p", p)
		}
	}()
	Fire("p")
	t.Fatal("panic rule did not panic")
}

func TestDelayKind(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindDelay, Every: 1, Delay: 10 * time.Millisecond}))
	start := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay rule slept %v, want >= 10ms", d)
	}
}

func TestPoisonNaN(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindNaN, Every: 2}))
	if v := Poison("p", 3.0); !(v == 3.0) {
		t.Fatalf("visit 1 should pass through, got %v", v)
	}
	if v := Poison("p", 3.0); !math.IsNaN(v) {
		t.Fatalf("visit 2 should poison, got %v", v)
	}
	// NaN rules never affect Fire, and error rules never affect Poison.
	if err := Fire("p"); err != nil {
		t.Fatalf("Fire consumed a NaN rule: %v", err)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	prevReg := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prevReg)
	install(t, New(1, Rule{Point: "p", Kind: KindError, Every: 1, Limit: 3}))
	for i := 0; i < 10; i++ {
		Fire("p")
	}
	if got := reg.Counter("faultinject.fired").Value(); got != 3 {
		t.Errorf("faultinject.fired = %d, want 3", got)
	}
	if got := reg.Counter("faultinject.fired.p").Value(); got != 3 {
		t.Errorf("faultinject.fired.p = %d, want 3", got)
	}
}

func TestConcurrentFireIsRaceFreeAndBounded(t *testing.T) {
	install(t, New(1, Rule{Point: "p", Kind: KindError, Prob: 0.5, Limit: 100}))
	var wg sync.WaitGroup
	var fires atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if Fire("p") != nil {
					fires.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fires.Load(); got > 100 {
		t.Errorf("Limit=100 exceeded: %d fires", got)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("sim.step:error:p=0.01,moments.compute:panic:every=100;limit=3, batch.dispatch:delay:p=0.05;delay=50ms ,sim.state:nan:every=500")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if r := rules[0]; r.Point != "sim.step" || r.Kind != KindError || r.Prob != 0.01 {
		t.Errorf("rule 0: %+v", r)
	}
	if r := rules[1]; r.Kind != KindPanic || r.Every != 100 || r.Limit != 3 {
		t.Errorf("rule 1: %+v", r)
	}
	if r := rules[2]; r.Kind != KindDelay || r.Delay != 50*time.Millisecond {
		t.Errorf("rule 2: %+v", r)
	}
	if r := rules[3]; r.Kind != KindNaN || r.Every != 500 {
		t.Errorf("rule 3: %+v", r)
	}
	for _, bad := range []string{
		"nokind",
		"p:weird:p=0.1",
		"p:error:p=2",
		"p:error:p=x",
		"p:error:every=-1",
		"p:error:bogus=1",
		"p:error:p",
		"p:error", // never fires
		"p:delay:delay=50ms",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
	if rules, err := ParseSpec(""); err != nil || len(rules) != 0 {
		t.Errorf("empty spec: %v %v", rules, err)
	}
}
