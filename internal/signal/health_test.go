package signal

import (
	"math"
	"strings"
	"testing"

	"elmore/internal/health"
	"elmore/internal/telemetry"
)

// The PR 2 NaN sentinel on PWL.Cross made unreachable levels return
// NaN instead of a misleading finite time; this locks in the follow-up
// contract: the NaN path is countable through the health monitor.
func TestCrossUnreachableEmitsHealthNote(t *testing.T) {
	var sb strings.Builder
	prevM := health.SetDefault(health.New(&sb, false))
	defer health.SetDefault(prevM)
	reg := telemetry.NewRegistry()
	prevR := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prevR)

	// A truncated PWL (built as a raw literal, bypassing Validate) that
	// never reaches 0.9.
	p := &PWL{Points: []Point{{0, 0}, {1, 0.5}}}
	if x := p.Cross(0.9); !math.IsNaN(x) {
		t.Fatalf("Cross(0.9) = %v, want NaN", x)
	}
	if got := reg.Counter("health.signal.cross_unreachable").Value(); got != 1 {
		t.Errorf("health.signal.cross_unreachable = %d, want 1", got)
	}
	if got := reg.Counter("health.events").Value(); got != 1 {
		t.Errorf("health.events = %d, want 1", got)
	}
	if !strings.Contains(sb.String(), `"check":"signal.cross_unreachable"`) {
		t.Errorf("missing NDJSON event, got %q", sb.String())
	}

	// A reachable level must not count.
	if x := p.Cross(0.25); math.IsNaN(x) {
		t.Fatalf("Cross(0.25) = NaN, want finite")
	}
	if got := reg.Counter("health.events").Value(); got != 1 {
		t.Errorf("reachable Cross recorded an event (events=%d)", got)
	}
}

// Without a monitor the NaN path must stay silent and cheap.
func TestCrossUnreachableDisabledMonitor(t *testing.T) {
	prev := health.SetDefault(nil)
	defer health.SetDefault(prev)
	p := &PWL{Points: []Point{{0, 0}, {1, 0.5}}}
	if x := p.Cross(0.9); !math.IsNaN(x) {
		t.Fatalf("Cross(0.9) = %v, want NaN", x)
	}
}
