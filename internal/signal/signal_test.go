package signal

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func TestStep(t *testing.T) {
	s := Step{}
	if s.Eval(-1) != 0 || s.Eval(0) != 1 || s.Eval(5) != 1 {
		t.Errorf("step evaluation wrong")
	}
	if s.RiseTime() != 0 || s.Cross(0.5) != 0 {
		t.Errorf("step timing wrong")
	}
	if s.DerivMean() != 0 || s.DerivMu2() != 0 || s.DerivMu3() != 0 {
		t.Errorf("step derivative moments should vanish")
	}
	if !s.SymmetricDerivative() || !s.UnimodalDerivative() {
		t.Errorf("step derivative properties wrong")
	}
	if err := Validate(s); err != nil {
		t.Errorf("Validate(step) = %v", err)
	}
}

func TestSaturatedRamp(t *testing.T) {
	r := SaturatedRamp{Tr: 2e-9}
	if r.Eval(-1) != 0 || r.Eval(1e-9) != 0.5 || r.Eval(3e-9) != 1 {
		t.Errorf("ramp evaluation wrong")
	}
	if !approx(r.Cross(0.25), 0.5e-9, 1e-12) {
		t.Errorf("Cross(0.25) = %v", r.Cross(0.25))
	}
	if !approx(r.DerivMean(), 1e-9, 1e-12) {
		t.Errorf("DerivMean = %v", r.DerivMean())
	}
	if !approx(r.DerivMu2(), 4e-18/12, 1e-12) {
		t.Errorf("DerivMu2 = %v, want %v", r.DerivMu2(), 4e-18/12)
	}
	if r.DerivMu3() != 0 || !r.SymmetricDerivative() || !r.UnimodalDerivative() {
		t.Errorf("ramp derivative properties wrong")
	}
	if err := Validate(r); err != nil {
		t.Errorf("Validate = %v", err)
	}
	// Tr == 0 is the legal step-degenerate ramp; only negative rise
	// times are invalid (see TestSaturatedRampZeroRiseIsStep).
	if err := Validate(SaturatedRamp{Tr: -1e-9}); err == nil {
		t.Errorf("negative rise time should be invalid")
	}
}

func TestRaisedCosine(t *testing.T) {
	r := RaisedCosine{Tr: 1e-9}
	if r.Eval(-1) != 0 || r.Eval(2e-9) != 1 {
		t.Errorf("edges wrong")
	}
	if !approx(r.Eval(0.5e-9), 0.5, 1e-12) {
		t.Errorf("midpoint = %v", r.Eval(0.5e-9))
	}
	if !approx(r.Cross(0.5), 0.5e-9, 1e-12) {
		t.Errorf("Cross(0.5) = %v", r.Cross(0.5))
	}
	// Eval and Cross must be inverses.
	for _, level := range []float64{0.1, 0.3, 0.7, 0.9} {
		if !approx(r.Eval(r.Cross(level)), level, 1e-9) {
			t.Errorf("Eval(Cross(%v)) = %v", level, r.Eval(r.Cross(level)))
		}
	}
	wantMu2 := 1e-18 * (0.25 - 2/(math.Pi*math.Pi))
	if !approx(r.DerivMu2(), wantMu2, 1e-12) {
		t.Errorf("DerivMu2 = %v, want %v", r.DerivMu2(), wantMu2)
	}
	if !r.SymmetricDerivative() || !r.UnimodalDerivative() {
		t.Errorf("raised cosine derivative properties wrong")
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Tau: 1e-9}
	if !approx(e.Eval(1e-9), 1-math.Exp(-1), 1e-12) {
		t.Errorf("Eval(tau) = %v", e.Eval(1e-9))
	}
	if !approx(e.Cross(0.5), 1e-9*math.Log(2), 1e-12) {
		t.Errorf("Cross(0.5) = %v", e.Cross(0.5))
	}
	if !approx(e.RiseTime(), 1e-9*math.Log(9), 1e-12) {
		t.Errorf("RiseTime = %v", e.RiseTime())
	}
	if !approx(e.DerivMean(), 1e-9, 1e-12) || !approx(e.DerivMu2(), 1e-18, 1e-12) ||
		!approx(e.DerivMu3(), 2e-27, 1e-12) {
		t.Errorf("exponential derivative moments wrong")
	}
	if e.SymmetricDerivative() {
		t.Errorf("exponential derivative is skewed, not symmetric")
	}
	if !e.UnimodalDerivative() {
		t.Errorf("exponential derivative is unimodal")
	}
}

func TestPWLBasics(t *testing.T) {
	p, err := NewPWL([]Point{{0, 0}, {1, 0.5}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Eval(-1) != 0 || p.Eval(4) != 1 {
		t.Errorf("PWL edges wrong")
	}
	if !approx(p.Eval(0.5), 0.25, 1e-12) || !approx(p.Eval(2), 0.75, 1e-12) {
		t.Errorf("PWL interior evaluation wrong: %v %v", p.Eval(0.5), p.Eval(2))
	}
	if !approx(p.Cross(0.25), 0.5, 1e-12) || !approx(p.Cross(0.75), 2, 1e-12) {
		t.Errorf("PWL Cross wrong")
	}
	if p.RiseTime() != 3 {
		t.Errorf("RiseTime = %v", p.RiseTime())
	}
}

func TestPWLValidation(t *testing.T) {
	bad := [][]Point{
		{{0, 0}},                       // too few
		{{0, 0.1}, {1, 1}},             // doesn't start at 0
		{{0, 0}, {1, 0.9}},             // doesn't end at 1
		{{0, 0}, {0, 1}},               // non-increasing time
		{{0, 0}, {2, 0.8}, {3, 0.5}},   // decreasing value
		{{0, 0}, {math.NaN(), 1}},      // NaN
		{{0, 0}, {math.Inf(1), 1}},     // Inf
		{{0, 0}, {1, 0.5}, {0.5, 1.0}}, // time goes backward
	}
	for i, pts := range bad {
		if _, err := NewPWL(pts); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPWLDerivMomentsMatchRamp(t *testing.T) {
	// A 2-point PWL is exactly a saturated ramp.
	tr := 3e-9
	p, err := NewPWL([]Point{{0, 0}, {tr, 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := SaturatedRamp{Tr: tr}
	if !approx(p.DerivMean(), r.DerivMean(), 1e-12) {
		t.Errorf("mean: pwl %v vs ramp %v", p.DerivMean(), r.DerivMean())
	}
	if !approx(p.DerivMu2(), r.DerivMu2(), 1e-10) {
		t.Errorf("mu2: pwl %v vs ramp %v", p.DerivMu2(), r.DerivMu2())
	}
	if math.Abs(p.DerivMu3()) > 1e-12*math.Pow(p.DerivMu2(), 1.5) {
		t.Errorf("mu3 should be ~0, got %v", p.DerivMu3())
	}
	if !p.SymmetricDerivative() || !p.UnimodalDerivative() {
		t.Errorf("ramp-as-PWL properties wrong")
	}
}

func TestPWLUnimodality(t *testing.T) {
	// Triangle derivative: slopes increase then decrease -> unimodal.
	tri, err := NewPWL([]Point{{0, 0}, {1, 0.2}, {2, 0.8}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !tri.UnimodalDerivative() {
		t.Errorf("triangular derivative should be unimodal")
	}
	// Bimodal derivative: fast, slow, fast.
	bim, err := NewPWL([]Point{{0, 0}, {1, 0.45}, {2, 0.55}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if bim.UnimodalDerivative() {
		t.Errorf("two-burst derivative should not be unimodal")
	}
}

func TestToPWLExactCases(t *testing.T) {
	r := SaturatedRamp{Tr: 1e-9}
	p, err := ToPWL(r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) != 2 {
		t.Errorf("ramp should convert to a 2-point PWL, got %d points", len(p.Points))
	}
	orig, err2 := NewPWL([]Point{{0, 0}, {1, 1}})
	if err2 != nil {
		t.Fatal(err2)
	}
	same, err := ToPWL(orig, 5)
	if err != nil || same != orig {
		t.Errorf("PWL should convert to itself")
	}
	if _, err := ToPWL(Step{}, 10); err == nil {
		t.Errorf("step should not convert to PWL")
	}
	if _, err := ToPWL(RaisedCosine{Tr: 1e-9}, 1); err == nil {
		t.Errorf("n < 2 should be rejected")
	}
}

func TestToPWLApproximatesRaisedCosine(t *testing.T) {
	rc := RaisedCosine{Tr: 2e-9}
	p, err := ToPWL(rc, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("sampled PWL invalid: %v", err)
	}
	// Pointwise agreement.
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		tt := frac * rc.Tr
		if d := math.Abs(p.Eval(tt) - rc.Eval(tt)); d > 2e-3 {
			t.Errorf("PWL approx off by %v at t=%v", d, tt)
		}
	}
	// Derivative moments agree.
	if !approx(p.DerivMean(), rc.DerivMean(), 1e-3) {
		t.Errorf("mean %v vs %v", p.DerivMean(), rc.DerivMean())
	}
	if !approx(p.DerivMu2(), rc.DerivMu2(), 5e-3) {
		t.Errorf("mu2 %v vs %v", p.DerivMu2(), rc.DerivMu2())
	}
	if !p.UnimodalDerivative() {
		t.Errorf("sampled raised cosine should stay unimodal")
	}
}

func TestToPWLApproximatesExponential(t *testing.T) {
	e := Exponential{Tau: 1e-9}
	p, err := ToPWL(e, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.5, 1, 2, 3} {
		tt := frac * e.Tau
		if d := math.Abs(p.Eval(tt) - e.Eval(tt)); d > 3e-3 {
			t.Errorf("PWL approx off by %v at t=%v", d, tt)
		}
	}
	if !approx(p.DerivMean(), e.DerivMean(), 2e-2) {
		t.Errorf("mean %v vs %v", p.DerivMean(), e.DerivMean())
	}
}

// Property: all canonical signals are monotone nondecreasing and their
// Cross/Eval pairs are consistent.
func TestSignalMonotonicityProperty(t *testing.T) {
	f := func(trRaw uint16, kind uint8) bool {
		tr := 1e-10 + float64(trRaw)*1e-12
		var s Signal
		switch kind % 3 {
		case 0:
			s = SaturatedRamp{Tr: tr}
		case 1:
			s = RaisedCosine{Tr: tr}
		default:
			s = Exponential{Tau: tr}
		}
		prev := -1.0
		for k := 0; k <= 100; k++ {
			v := s.Eval(float64(k) / 100 * 4 * tr)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		for _, level := range []float64{0.1, 0.5, 0.9} {
			if !approx(s.Eval(s.Cross(level)), level, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	for _, s := range []Signal{Step{}, SaturatedRamp{1e-9}, RaisedCosine{1e-9}, Exponential{1e-9}} {
		if s.String() == "" {
			t.Errorf("empty String for %T", s)
		}
	}
	p, _ := NewPWL([]Point{{0, 0}, {1, 1}})
	if p.String() == "" {
		t.Errorf("empty String for PWL")
	}
}

func TestSaturatedRampZeroRiseIsStep(t *testing.T) {
	r := SaturatedRamp{Tr: 0}
	s := Step{}
	for _, tt := range []float64{-1e-9, -1e-300, 0, 1e-300, 1e-9, 1} {
		got, want := r.Eval(tt), s.Eval(tt)
		if got != want || math.IsNaN(got) {
			t.Errorf("Eval(%v) = %v, want step value %v", tt, got, want)
		}
	}
	for _, level := range []float64{0.1, 0.5, 0.9} {
		if got := r.Cross(level); got != 0 || math.IsNaN(got) {
			t.Errorf("Cross(%v) = %v, want 0", level, got)
		}
	}
	if r.DerivMean() != 0 || r.DerivMu2() != 0 || r.DerivMu3() != 0 {
		t.Errorf("derivative moments not zero: %v %v %v", r.DerivMean(), r.DerivMu2(), r.DerivMu3())
	}
	if !r.SymmetricDerivative() || !r.UnimodalDerivative() {
		t.Errorf("degenerate ramp should keep step's derivative properties")
	}
	if err := Validate(r); err != nil {
		t.Errorf("Validate(zero-rise ramp) = %v, want nil", err)
	}
}

func TestValidateRejectsNegativeRamp(t *testing.T) {
	for _, tr := range []float64{-1e-9, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := Validate(SaturatedRamp{Tr: tr}); err == nil {
			t.Errorf("Validate(ramp tr=%v) accepted an invalid rise time", tr)
		}
	}
}

func TestToPWLZeroRiseRampErrors(t *testing.T) {
	if _, err := ToPWL(SaturatedRamp{Tr: 0}, 8); err == nil {
		t.Errorf("ToPWL of a zero-rise ramp should error like a step")
	}
}

func TestPWLCrossNeverReached(t *testing.T) {
	// A truncated, non-saturating PWL built as a raw literal: tops out
	// at V = 0.6, so levels above that are never crossed.
	p := &PWL{Points: []Point{{0, 0}, {1, 0.3}, {2, 0.6}}}
	for _, level := range []float64{0.7, 0.9, 1, math.NaN()} {
		if got := p.Cross(level); !math.IsNaN(got) {
			t.Errorf("Cross(%v) = %v, want NaN for a never-reached level", level, got)
		}
	}
	// Exactly at the final endpoint: crossed at the endpoint's time.
	if got := p.Cross(0.6); got != 2 {
		t.Errorf("Cross(0.6) = %v, want 2 (final breakpoint)", got)
	}
	// Levels below the top interpolate as before.
	if !approx(p.Cross(0.3), 1, 1e-12) || !approx(p.Cross(0.45), 1.5, 1e-12) {
		t.Errorf("Cross below the top changed: %v %v", p.Cross(0.3), p.Cross(0.45))
	}
	// A valid saturating PWL still crosses every level in (0, 1].
	q, err := NewPWL([]Point{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Cross(1); got != 1 {
		t.Errorf("Cross(1) = %v, want 1 (exactly at the endpoint)", got)
	}
	if got := q.Cross(0.5); !approx(got, 0.5, 1e-12) {
		t.Errorf("Cross(0.5) = %v", got)
	}
}
