package signal

import (
	"fmt"
	"math"

	"elmore/internal/health"
)

// Point is a (time, value) breakpoint of a piecewise-linear signal.
type Point struct {
	T, V float64
}

// PWL is a monotone piecewise-linear transition from 0 to 1. The first
// breakpoint must have V = 0 and the last V = 1; times must strictly
// increase and values must not decrease. Any monotone input edge can be
// approximated by a PWL, and the exact response engine handles PWL
// inputs in closed form (a superposition of shifted ramps).
type PWL struct {
	Points []Point
}

// NewPWL validates the breakpoints and returns the signal.
func NewPWL(points []Point) (*PWL, error) {
	p := &PWL{Points: append([]Point(nil), points...)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the PWL invariants.
func (p *PWL) Validate() error {
	pts := p.Points
	if len(pts) < 2 {
		return fmt.Errorf("signal: PWL needs at least 2 points, got %d", len(pts))
	}
	if pts[0].V != 0 {
		return fmt.Errorf("signal: PWL must start at V=0, got %v", pts[0].V)
	}
	if pts[len(pts)-1].V != 1 {
		return fmt.Errorf("signal: PWL must end at V=1, got %v", pts[len(pts)-1].V)
	}
	for i := 1; i < len(pts); i++ {
		if !(pts[i].T > pts[i-1].T) {
			return fmt.Errorf("signal: PWL times must strictly increase (points %d, %d)", i-1, i)
		}
		if pts[i].V < pts[i-1].V {
			return fmt.Errorf("signal: PWL values must not decrease (points %d, %d)", i-1, i)
		}
	}
	for i, pt := range pts {
		if math.IsNaN(pt.T) || math.IsInf(pt.T, 0) || math.IsNaN(pt.V) || math.IsInf(pt.V, 0) {
			return fmt.Errorf("signal: PWL point %d is not finite", i)
		}
	}
	return nil
}

// Eval implements Signal.
func (p *PWL) Eval(t float64) float64 {
	pts := p.Points
	if t <= pts[0].T {
		return pts[0].V
	}
	if t >= pts[len(pts)-1].T {
		return pts[len(pts)-1].V
	}
	// Binary search for the segment containing t.
	lo, hi := 0, len(pts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pts[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := pts[lo], pts[hi]
	return a.V + (b.V-a.V)*(t-a.T)/(b.T-a.T)
}

// RiseTime implements Signal: the span from the first to the last
// breakpoint.
func (p *PWL) RiseTime() float64 {
	return p.Points[len(p.Points)-1].T - p.Points[0].T
}

// Cross implements Signal. A level the waveform never reaches — which
// can only happen on a truncated or non-saturating PWL whose last value
// stays below the level (such a PWL fails Validate but can be built as
// a raw struct literal) — returns NaN rather than a misleading finite
// time. A level hit exactly at the final breakpoint returns that
// breakpoint's time. The NaN path also reports a health note
// (signal.cross_unreachable) so silently degenerate inputs become
// countable downstream.
func (p *PWL) Cross(level float64) float64 {
	pts := p.Points
	if math.IsNaN(level) || level > pts[len(pts)-1].V {
		health.Note(health.Event{
			Check:  "signal.cross_unreachable",
			Detail: "PWL never reaches the requested level",
			Values: map[string]health.F{
				"level": health.F(level),
				"v_end": health.F(pts[len(pts)-1].V),
			},
		})
		return math.NaN()
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V >= level {
			a, b := pts[i-1], pts[i]
			if b.V == a.V {
				return a.T
			}
			return a.T + (b.T-a.T)*(level-a.V)/(b.V-a.V)
		}
	}
	return pts[len(pts)-1].T
}

// slopes returns the density of v'(t): per-segment slope values.
func (p *PWL) slopes() []float64 {
	pts := p.Points
	out := make([]float64, len(pts)-1)
	for i := range out {
		out[i] = (pts[i+1].V - pts[i].V) / (pts[i+1].T - pts[i].T)
	}
	return out
}

// rawMoment returns integral t^q v'(t) dt, exactly, from the piecewise
// constant derivative density.
func (p *PWL) rawMoment(q int) float64 {
	pts := p.Points
	var sum float64
	for i := 0; i+1 < len(pts); i++ {
		slope := (pts[i+1].V - pts[i].V) / (pts[i+1].T - pts[i].T)
		if slope == 0 {
			continue
		}
		qq := float64(q + 1)
		sum += slope * (math.Pow(pts[i+1].T, qq) - math.Pow(pts[i].T, qq)) / qq
	}
	return sum
}

// DerivMean implements Signal.
func (p *PWL) DerivMean() float64 { return p.rawMoment(1) }

// DerivMu2 implements Signal.
func (p *PWL) DerivMu2() float64 {
	m := p.DerivMean()
	return p.rawMoment(2) - m*m
}

// DerivMu3 implements Signal.
func (p *PWL) DerivMu3() float64 {
	m := p.DerivMean()
	return p.rawMoment(3) - 3*m*p.rawMoment(2) + 2*m*m*m
}

// SymmetricDerivative implements Signal with a numerical test:
// |mu3| must vanish relative to mu2^(3/2).
func (p *PWL) SymmetricDerivative() bool {
	mu2 := p.DerivMu2()
	if mu2 <= 0 {
		return true
	}
	return math.Abs(p.DerivMu3()) <= 1e-9*math.Pow(mu2, 1.5)
}

// UnimodalDerivative implements Signal: the slope sequence must rise to
// a single peak and then fall (non-strictly).
func (p *PWL) UnimodalDerivative() bool {
	s := p.slopes()
	i := 0
	for i+1 < len(s) && s[i+1] >= s[i]-1e-15*math.Abs(s[i]) {
		i++
	}
	for i+1 < len(s) {
		if s[i+1] > s[i]+1e-12*math.Abs(s[i]) {
			return false
		}
		i++
	}
	return true
}

func (p *PWL) String() string {
	return fmt.Sprintf("pwl(%d points, tr=%g)", len(p.Points), p.RiseTime())
}

// ToPWL converts any monotone Signal into a PWL approximation with n
// segments, suitable for the exact response engine. Signals that are
// already piecewise linear convert exactly (regardless of n); a Step
// cannot be represented and returns an error — drive the engine with
// its native step response instead.
func ToPWL(s Signal, n int) (*PWL, error) {
	switch v := s.(type) {
	case *PWL:
		return v, nil
	case Step:
		return nil, fmt.Errorf("signal: a step has no PWL representation; use the step response directly")
	case SaturatedRamp:
		if v.Tr <= 0 {
			return nil, fmt.Errorf("signal: a ramp with rise time %g is a step and has no PWL representation; use the step response directly", v.Tr)
		}
		return NewPWL([]Point{{0, 0}, {v.Tr, 1}})
	}
	if n < 2 {
		return nil, fmt.Errorf("signal: ToPWL needs n >= 2 segments, got %d", n)
	}
	// Generic path: sample between the 0+ and late-crossing times.
	// Inverse (level-space) sampling keeps resolution where the signal
	// moves.
	const lastLevel = 0.9995
	tEnd := s.Cross(lastLevel)
	if !(tEnd > 0) {
		return nil, fmt.Errorf("signal: %v has no positive crossing times", s)
	}
	pts := make([]Point, 0, n+2)
	pts = append(pts, Point{0, 0})
	for k := 1; k <= n; k++ {
		level := lastLevel * float64(k) / float64(n)
		t := s.Cross(level)
		if t <= pts[len(pts)-1].T {
			continue
		}
		pts = append(pts, Point{t, level})
	}
	// Close the transition: finish the remaining 1-lastLevel with the
	// final segment's slope extended to V=1.
	last := pts[len(pts)-1]
	prev := pts[len(pts)-2]
	slope := (last.V - prev.V) / (last.T - prev.T)
	pts = append(pts, Point{last.T + (1-last.V)/slope, 1})
	return NewPWL(pts)
}
