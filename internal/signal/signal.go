// Package signal provides the input excitations studied by the paper:
// the ideal step, the saturated ramp (the canonical gate-output model),
// a smooth raised-cosine ramp, the RC-exponential edge, and general
// monotone piecewise-linear transitions.
//
// Edge-case contracts: a SaturatedRamp with Tr == 0 degenerates to the
// ideal Step (never NaN); negative or non-finite rise times are
// rejected by Validate; PWL.Cross returns NaN — not a misleading
// time — for levels the waveform never reaches.
//
// Each signal is a normalized 0 -> 1 voltage transition starting at
// t = 0. Beyond evaluation, every signal reports the distribution
// statistics of its time derivative — the quantities that drive
// Corollaries 2 and 3 of the paper: a unimodal derivative makes the
// Elmore delay an upper bound for that input, and the variance of the
// derivative controls how fast the actual delay approaches the bound.
package signal

import (
	"fmt"
	"math"
)

// Signal is a normalized monotone input transition v(t): v(t<=0) = 0 and
// v(t) -> 1. The derivative v'(t), viewed as a probability density,
// carries the input's moment contributions.
type Signal interface {
	// Eval returns v(t).
	Eval(t float64) float64
	// RiseTime returns the nominal transition duration (0 for a step;
	// the 0-100% ramp time for ramps; a characteristic time otherwise).
	RiseTime() float64
	// Cross returns the time at which v crosses the given level in
	// (0, 1). For the step this is 0.
	Cross(level float64) float64
	// DerivMean, DerivMu2, DerivMu3 return the mean and the second and
	// third central moments of v'(t) treated as a density.
	DerivMean() float64
	DerivMu2() float64
	DerivMu3() float64
	// SymmetricDerivative reports whether v'(t) is symmetric about its
	// mean (mu3 = 0), the hypothesis of Corollary 3.
	SymmetricDerivative() bool
	// UnimodalDerivative reports whether v'(t) is unimodal, the
	// hypothesis of Corollary 2.
	UnimodalDerivative() bool
	// String names the signal for reports.
	String() string
}

// Step is the ideal unit step at t = 0.
type Step struct{}

// Eval implements Signal.
func (Step) Eval(t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1
}

// RiseTime implements Signal; a step has zero rise time.
func (Step) RiseTime() float64 { return 0 }

// Cross implements Signal; every level is crossed at t = 0.
func (Step) Cross(level float64) float64 { return 0 }

// DerivMean implements Signal; the derivative is a delta at 0.
func (Step) DerivMean() float64 { return 0 }

// DerivMu2 implements Signal.
func (Step) DerivMu2() float64 { return 0 }

// DerivMu3 implements Signal.
func (Step) DerivMu3() float64 { return 0 }

// SymmetricDerivative implements Signal: a delta is symmetric.
func (Step) SymmetricDerivative() bool { return true }

// UnimodalDerivative implements Signal: a delta is (degenerately)
// unimodal.
func (Step) UnimodalDerivative() bool { return true }

func (Step) String() string { return "step" }

// SaturatedRamp rises linearly from 0 at t=0 to 1 at t=Tr and saturates.
// Its derivative is the uniform density on [0, Tr]: unimodal and
// symmetric, with variance Tr^2/12 — the paper's canonical generalized
// input.
//
// Tr == 0 is a valid degenerate ramp: Eval, Cross and the derivative
// moments coincide exactly with Step's. Negative Tr is invalid and is
// rejected by Validate.
type SaturatedRamp struct {
	Tr float64 // 0-100% rise time, >= 0 (0 degenerates to a step)
}

// Eval implements Signal. With Tr == 0 it is exactly Step.Eval.
func (r SaturatedRamp) Eval(t float64) float64 {
	if r.Tr == 0 {
		if t < 0 {
			return 0
		}
		return 1
	}
	switch {
	case t <= 0:
		return 0
	case t >= r.Tr:
		return 1
	default:
		return t / r.Tr
	}
}

// RiseTime implements Signal.
func (r SaturatedRamp) RiseTime() float64 { return r.Tr }

// Cross implements Signal. With Tr == 0 every level is crossed at
// t = 0, matching Step.Cross.
func (r SaturatedRamp) Cross(level float64) float64 { return level * r.Tr }

// DerivMean implements Signal: uniform density mean Tr/2.
func (r SaturatedRamp) DerivMean() float64 { return r.Tr / 2 }

// DerivMu2 implements Signal: uniform density variance Tr^2/12.
func (r SaturatedRamp) DerivMu2() float64 { return r.Tr * r.Tr / 12 }

// DerivMu3 implements Signal: symmetric, so zero.
func (r SaturatedRamp) DerivMu3() float64 { return 0 }

// SymmetricDerivative implements Signal.
func (r SaturatedRamp) SymmetricDerivative() bool { return true }

// UnimodalDerivative implements Signal.
func (r SaturatedRamp) UnimodalDerivative() bool { return true }

func (r SaturatedRamp) String() string { return fmt.Sprintf("ramp(tr=%g)", r.Tr) }

// RaisedCosine is the smooth transition v(t) = (1 - cos(pi t/Tr))/2 on
// [0, Tr]. Its derivative is a half-sine lobe: unimodal, symmetric,
// variance Tr^2 (1/4 - 2/pi^2).
type RaisedCosine struct {
	Tr float64 // transition duration, > 0
}

// Eval implements Signal.
func (r RaisedCosine) Eval(t float64) float64 {
	switch {
	case t <= 0:
		return 0
	case t >= r.Tr:
		return 1
	default:
		return (1 - math.Cos(math.Pi*t/r.Tr)) / 2
	}
}

// RiseTime implements Signal.
func (r RaisedCosine) RiseTime() float64 { return r.Tr }

// Cross implements Signal.
func (r RaisedCosine) Cross(level float64) float64 {
	return r.Tr / math.Pi * math.Acos(1-2*level)
}

// DerivMean implements Signal.
func (r RaisedCosine) DerivMean() float64 { return r.Tr / 2 }

// DerivMu2 implements Signal.
func (r RaisedCosine) DerivMu2() float64 {
	return r.Tr * r.Tr * (0.25 - 2/(math.Pi*math.Pi))
}

// DerivMu3 implements Signal: symmetric, so zero.
func (r RaisedCosine) DerivMu3() float64 { return 0 }

// SymmetricDerivative implements Signal.
func (r RaisedCosine) SymmetricDerivative() bool { return true }

// UnimodalDerivative implements Signal.
func (r RaisedCosine) UnimodalDerivative() bool { return true }

func (r RaisedCosine) String() string { return fmt.Sprintf("raised-cosine(tr=%g)", r.Tr) }

// Exponential is the RC-style edge v(t) = 1 - exp(-t/Tau). Its
// derivative is the exponential density: unimodal (mode at 0) but
// positively skewed, so it satisfies Corollary 2 but not Corollary 3.
type Exponential struct {
	Tau float64 // time constant, > 0
}

// Eval implements Signal.
func (e Exponential) Eval(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-t/e.Tau)
}

// RiseTime implements Signal: the 10-90% time, tau * ln 9.
func (e Exponential) RiseTime() float64 { return e.Tau * math.Log(9) }

// Cross implements Signal.
func (e Exponential) Cross(level float64) float64 {
	return -e.Tau * math.Log(1-level)
}

// DerivMean implements Signal: exponential density mean tau.
func (e Exponential) DerivMean() float64 { return e.Tau }

// DerivMu2 implements Signal: tau^2.
func (e Exponential) DerivMu2() float64 { return e.Tau * e.Tau }

// DerivMu3 implements Signal: 2 tau^3 (positively skewed).
func (e Exponential) DerivMu3() float64 { return 2 * e.Tau * e.Tau * e.Tau }

// SymmetricDerivative implements Signal.
func (e Exponential) SymmetricDerivative() bool { return false }

// UnimodalDerivative implements Signal.
func (e Exponential) UnimodalDerivative() bool { return true }

func (e Exponential) String() string { return fmt.Sprintf("exp(tau=%g)", e.Tau) }

// Validate reports whether a signal's parameters are usable and returns
// a descriptive error otherwise.
func Validate(s Signal) error {
	switch v := s.(type) {
	case Step:
		return nil
	case SaturatedRamp:
		// Tr == 0 is the legal step-degenerate ramp; only negative or
		// non-finite rise times are invalid.
		if v.Tr < 0 || math.IsNaN(v.Tr) || math.IsInf(v.Tr, 0) {
			return fmt.Errorf("signal: ramp rise time must be nonnegative and finite, got %v", v.Tr)
		}
	case RaisedCosine:
		if !(v.Tr > 0) || math.IsInf(v.Tr, 0) {
			return fmt.Errorf("signal: raised-cosine duration must be positive and finite, got %v", v.Tr)
		}
	case Exponential:
		if !(v.Tau > 0) || math.IsInf(v.Tau, 0) {
			return fmt.Errorf("signal: exponential tau must be positive and finite, got %v", v.Tau)
		}
	case *PWL:
		return v.Validate()
	default:
		// Unknown implementations are assumed self-validating.
	}
	return nil
}
