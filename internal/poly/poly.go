// Package poly implements real-coefficient polynomial arithmetic and
// root finding. It exists to serve the AWE (asymptotic waveform
// evaluation) moment-matching package, which needs the roots of small
// characteristic polynomials (degrees 1-6 in practice).
package poly

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Poly is a real polynomial stored coefficient-major:
// p(x) = Coeffs[0] + Coeffs[1] x + ... + Coeffs[n] x^n.
type Poly struct {
	Coeffs []float64
}

// New returns a polynomial with the given coefficients (constant first),
// trimming trailing zero coefficients.
func New(coeffs ...float64) Poly {
	p := Poly{Coeffs: append([]float64(nil), coeffs...)}
	p.trim()
	return p
}

func (p *Poly) trim() {
	n := len(p.Coeffs)
	for n > 1 && p.Coeffs[n-1] == 0 {
		n--
	}
	p.Coeffs = p.Coeffs[:n]
}

// Degree returns the polynomial degree; the zero polynomial has degree 0.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// IsZero reports whether p is identically zero.
func (p Poly) IsZero() bool {
	return len(p.Coeffs) == 0 || (len(p.Coeffs) == 1 && p.Coeffs[0] == 0)
}

// Eval evaluates p at a real point with Horner's method.
func (p Poly) Eval(x float64) float64 {
	var v float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// EvalC evaluates p at a complex point with Horner's method.
func (p Poly) EvalC(z complex128) complex128 {
	var v complex128
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*z + complex(p.Coeffs[i], 0)
	}
	return v
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if p.Degree() == 0 {
		return New(0)
	}
	d := make([]float64, p.Degree())
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = float64(i) * p.Coeffs[i]
	}
	return New(d...)
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p.Coeffs)
	if len(q.Coeffs) > n {
		n = len(q.Coeffs)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(p.Coeffs) {
			out[i] += p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			out[i] += q.Coeffs[i]
		}
	}
	return New(out...)
}

// Mul returns p * q.
func (p Poly) Mul(q Poly) Poly {
	out := make([]float64, len(p.Coeffs)+len(q.Coeffs)-1)
	for i, a := range p.Coeffs {
		if a == 0 {
			continue
		}
		for j, b := range q.Coeffs {
			out[i+j] += a * b
		}
	}
	return New(out...)
}

// Scale returns s * p.
func (p Poly) Scale(s float64) Poly {
	out := make([]float64, len(p.Coeffs))
	for i, a := range p.Coeffs {
		out[i] = s * a
	}
	return New(out...)
}

// Monic returns p divided by its leading coefficient.
func (p Poly) Monic() (Poly, error) {
	lead := p.Coeffs[len(p.Coeffs)-1]
	if lead == 0 {
		return Poly{}, fmt.Errorf("poly: cannot normalize the zero polynomial")
	}
	return p.Scale(1 / lead), nil
}

// String renders p in human-readable ascending-power form.
func (p Poly) String() string {
	s := ""
	for i, c := range p.Coeffs {
		if c == 0 && len(p.Coeffs) > 1 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch i {
		case 0:
			s += fmt.Sprintf("%g", c)
		case 1:
			s += fmt.Sprintf("%g*x", c)
		default:
			s += fmt.Sprintf("%g*x^%d", c, i)
		}
	}
	if s == "" {
		s = "0"
	}
	return s
}

// Roots returns all complex roots of p. Degrees 1 and 2 use closed
// forms; higher degrees use the Aberth-Ehrlich simultaneous iteration.
// It returns an error for the zero polynomial or non-convergence.
func (p Poly) Roots() ([]complex128, error) {
	if p.IsZero() {
		return nil, fmt.Errorf("poly: zero polynomial has no well-defined roots")
	}
	switch p.Degree() {
	case 0:
		return nil, nil
	case 1:
		return []complex128{complex(-p.Coeffs[0]/p.Coeffs[1], 0)}, nil
	case 2:
		r1, r2 := Quadratic(p.Coeffs[2], p.Coeffs[1], p.Coeffs[0])
		return []complex128{r1, r2}, nil
	default:
		return p.aberth()
	}
}

// Quadratic returns the two roots of a x^2 + b x + c = 0 (a != 0), using
// the numerically stable citardauq form for the smaller root.
func Quadratic(a, b, c float64) (complex128, complex128) {
	disc := b*b - 4*a*c
	if disc >= 0 {
		sq := math.Sqrt(disc)
		var q float64
		if b >= 0 {
			q = -(b + sq) / 2
		} else {
			q = -(b - sq) / 2
		}
		r1 := q / a
		var r2 float64
		if q != 0 {
			r2 = c / q
		} else {
			r2 = 0
		}
		return complex(r1, 0), complex(r2, 0)
	}
	sq := math.Sqrt(-disc)
	return complex(-b/(2*a), sq/(2*a)), complex(-b/(2*a), -sq/(2*a))
}

// aberth runs the Aberth-Ehrlich method: all roots are iterated
// simultaneously with a Newton step corrected for the other current
// root estimates. Converges cubically for simple roots.
func (p Poly) aberth() ([]complex128, error) {
	monic, err := p.Monic()
	if err != nil {
		return nil, err
	}
	n := monic.Degree()
	d := monic.Derivative()

	// Initial guesses on a circle of radius given by the Cauchy bound,
	// slightly rotated off the real axis so complex-conjugate pairs can
	// separate.
	radius := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(monic.Coeffs[i]); a > radius {
			radius = a
		}
	}
	radius = 1 + radius
	roots := make([]complex128, n)
	for k := 0; k < n; k++ {
		angle := 2*math.Pi*float64(k)/float64(n) + 0.35
		roots[k] = complex(radius*math.Cos(angle), radius*math.Sin(angle))
	}

	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		converged := true
		for k := 0; k < n; k++ {
			pv := monic.EvalC(roots[k])
			dv := d.EvalC(roots[k])
			if dv == 0 {
				// Nudge off a critical point.
				roots[k] += complex(1e-8*radius, 1e-8*radius)
				converged = false
				continue
			}
			newton := pv / dv
			var sum complex128
			for j := 0; j < n; j++ {
				if j != k {
					diff := roots[k] - roots[j]
					if diff == 0 {
						diff = complex(1e-12*radius, 0)
					}
					sum += 1 / diff
				}
			}
			denom := 1 - newton*sum
			if denom == 0 {
				denom = complex(1e-12, 0)
			}
			delta := newton / denom
			roots[k] -= delta
			if cmplx.Abs(delta) > 1e-13*(1+cmplx.Abs(roots[k])) {
				converged = false
			}
		}
		if converged {
			return polish(roots), nil
		}
	}
	return nil, fmt.Errorf("poly: Aberth iteration did not converge for degree %d", n)
}

// polish snaps nearly-real roots onto the real axis; RC characteristic
// polynomials have strictly real negative roots and downstream code
// relies on detecting them.
func polish(roots []complex128) []complex128 {
	out := make([]complex128, len(roots))
	for i, r := range roots {
		if math.Abs(imag(r)) <= 1e-8*(1+math.Abs(real(r))) {
			out[i] = complex(real(r), 0)
		} else {
			out[i] = r
		}
	}
	return out
}

// RealRoots returns the real parts of the roots of p if all roots are
// (numerically) real, and an error otherwise. Sorted ascending.
func (p Poly) RealRoots() ([]float64, error) {
	roots, err := p.Roots()
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(roots))
	for _, r := range roots {
		if math.Abs(imag(r)) > 1e-7*(1+math.Abs(real(r))) {
			return nil, fmt.Errorf("poly: complex root %v encountered where real roots expected", r)
		}
		out = append(out, real(r))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// FromRoots builds the monic polynomial with the given real roots.
func FromRoots(roots ...float64) Poly {
	p := New(1)
	for _, r := range roots {
		p = p.Mul(New(-r, 1))
	}
	return p
}
