package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewTrims(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	z := New(0, 0)
	if !z.IsZero() || z.Degree() != 0 {
		t.Fatalf("zero poly mishandled: %v", z)
	}
}

func TestEval(t *testing.T) {
	p := New(1, -3, 2) // 2x^2 - 3x + 1 = (2x-1)(x-1)
	cases := map[float64]float64{0: 1, 1: 0, 0.5: 0, 2: 3}
	for x, want := range cases {
		if got := p.Eval(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
	if got := p.EvalC(complex(1, 1)); cmplx.Abs(got-complex(-2, 1)) > 1e-12 {
		// 2(1+i)^2 - 3(1+i) + 1 = 2(2i) - 3 - 3i + 1 = -2 + i
		t.Errorf("EvalC = %v, want -2+i", got)
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 3, 2, 1) // x^3 + 2x^2 + 3x + 5
	d := p.Derivative()  // 3x^2 + 4x + 3
	want := New(3, 4, 3)
	if len(d.Coeffs) != len(want.Coeffs) {
		t.Fatalf("derivative = %v", d)
	}
	for i := range want.Coeffs {
		if d.Coeffs[i] != want.Coeffs[i] {
			t.Fatalf("derivative = %v, want %v", d, want)
		}
	}
	if c := New(7).Derivative(); !c.IsZero() {
		t.Errorf("derivative of constant = %v", c)
	}
}

func TestAddMulScale(t *testing.T) {
	p := New(1, 1)  // 1 + x
	q := New(-1, 1) // -1 + x
	sum := p.Add(q)
	if sum.Eval(3) != 6 {
		t.Errorf("Add wrong: %v", sum)
	}
	prod := p.Mul(q) // x^2 - 1
	if prod.Eval(3) != 8 || prod.Degree() != 2 {
		t.Errorf("Mul wrong: %v", prod)
	}
	s := p.Scale(2)
	if s.Eval(1) != 4 {
		t.Errorf("Scale wrong: %v", s)
	}
}

func TestQuadratic(t *testing.T) {
	r1, r2 := Quadratic(1, -5, 6) // roots 2, 3
	got := []float64{real(r1), real(r2)}
	sort.Float64s(got)
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("Quadratic roots = %v", got)
	}
	// Complex pair: x^2 + 1.
	c1, c2 := Quadratic(1, 0, 1)
	if imag(c1) == 0 || cmplx.Abs(c1-cmplx.Conj(c2)) > 1e-12 {
		t.Errorf("complex roots = %v, %v", c1, c2)
	}
	// Catastrophic-cancellation case: tiny root must stay accurate.
	s1, s2 := Quadratic(1, -1e8, 1) // roots ~1e8 and ~1e-8
	small := math.Min(real(s1), real(s2))
	if math.Abs(small-1e-8) > 1e-14 {
		t.Errorf("small root = %v, want 1e-8", small)
	}
}

func TestRootsLinear(t *testing.T) {
	roots, err := New(6, -2).Roots() // 6 - 2x = 0 -> x = 3
	if err != nil || len(roots) != 1 || cmplx.Abs(roots[0]-3) > 1e-12 {
		t.Fatalf("roots = %v, err = %v", roots, err)
	}
}

func TestRootsCubicKnown(t *testing.T) {
	p := FromRoots(-1, -2, -3)
	roots, err := p.RealRoots()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-3, -2, -1}
	for i := range want {
		if math.Abs(roots[i]-want[i]) > 1e-8 {
			t.Errorf("roots = %v, want %v", roots, want)
		}
	}
}

func TestRootsComplexQuartic(t *testing.T) {
	// (x^2+1)(x^2+4): roots ±i, ±2i.
	p := New(1, 0, 1).Mul(New(4, 0, 1))
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 4 {
		t.Fatalf("got %d roots", len(roots))
	}
	mags := make([]float64, len(roots))
	for i, r := range roots {
		if math.Abs(real(r)) > 1e-7 {
			t.Errorf("root %v should be purely imaginary", r)
		}
		mags[i] = cmplx.Abs(r)
	}
	sort.Float64s(mags)
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if math.Abs(mags[i]-want[i]) > 1e-7 {
			t.Errorf("magnitudes = %v, want %v", mags, want)
		}
	}
	if _, err := p.RealRoots(); err == nil {
		t.Errorf("RealRoots should reject complex roots")
	}
}

func TestRootsWideSpread(t *testing.T) {
	// RC-like widely separated negative real roots.
	p := FromRoots(-1, -10, -100, -1000)
	roots, err := p.RealRoots()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1000, -100, -10, -1}
	for i := range want {
		if math.Abs(roots[i]-want[i]) > 1e-6*math.Abs(want[i]) {
			t.Errorf("roots = %v, want %v", roots, want)
		}
	}
}

func TestRootsZeroPoly(t *testing.T) {
	if _, err := New(0).Roots(); err == nil {
		t.Errorf("zero polynomial should error")
	}
}

func TestMonic(t *testing.T) {
	p := New(2, 4) // 2 + 4x
	m, err := p.Monic()
	if err != nil {
		t.Fatal(err)
	}
	if m.Coeffs[1] != 1 || m.Coeffs[0] != 0.5 {
		t.Errorf("Monic = %v", m)
	}
}

func TestString(t *testing.T) {
	if s := New(1, 0, 2).String(); s != "1 + 2*x^2" {
		t.Errorf("String = %q", s)
	}
	if s := New(0).String(); s != "0" {
		t.Errorf("zero String = %q", s)
	}
}

// Property: for random sets of distinct negative real roots (the RC
// case), FromRoots followed by RealRoots round-trips.
func TestRootsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		roots := make([]float64, n)
		used := map[int]bool{}
		for i := range roots {
			// Distinct magnitudes spread over two decades.
			k := rng.Intn(40)
			for used[k] {
				k = rng.Intn(40)
			}
			used[k] = true
			roots[i] = -math.Pow(10, float64(k)/20.0) // -1 .. -100
		}
		sort.Float64s(roots)
		p := FromRoots(roots...)
		got, err := p.RealRoots()
		if err != nil {
			return false
		}
		for i := range roots {
			if math.Abs(got[i]-roots[i]) > 1e-5*math.Abs(roots[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
