package pimodel

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func TestSingleRCRoundTrip(t *testing.T) {
	// The admittance of C through R reduces to exactly C1=0, R2=R, C2=C.
	const r, c = 330.0, 2.2e-12
	y := moments.CapAdmittance(c).SeriesR(r)
	m, err := FromAdmittance(y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.R2, r, 1e-9) || !approx(m.C2, c, 1e-9) || m.C1 > 1e-20 {
		t.Errorf("model = %+v, want C1=0 R2=%v C2=%v", m, r, c)
	}
}

func TestPureCapDegenerate(t *testing.T) {
	m, err := FromAdmittance(moments.CapAdmittance(5e-12))
	if err != nil {
		t.Fatal(err)
	}
	if m.C1 != 5e-12 || m.R2 != 0 || m.C2 != 0 {
		t.Errorf("model = %+v, want bare 5pF", m)
	}
	if !approx(m.TotalC(), 5e-12, 1e-12) {
		t.Errorf("TotalC = %v", m.TotalC())
	}
}

func TestFromAdmittanceErrors(t *testing.T) {
	cases := []moments.Admittance{
		{Y1: 0},                             // no capacitance
		{Y1: -1e-12},                        // negative
		{Y1: 1e-12, Y2: 1e-24},              // wrong sign y2
		{Y1: 1e-12, Y2: -1e-24, Y3: -1e-36}, // wrong sign y3
	}
	for i, y := range cases {
		if _, err := FromAdmittance(y); err == nil {
			t.Errorf("case %d: expected error for %+v", i, y)
		}
	}
}

// The synthesized pi model matches the tree's first three admittance
// moments exactly — the defining property (paper eq. 26).
func TestMomentMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 40)
		y := moments.InputAdmittance(tree)
		m, err := ForInput(tree)
		if err != nil {
			return false
		}
		got := m.Admittance()
		return approx(got.Y1, y.Y1, 1e-9) &&
			approx(got.Y2, y.Y2, 1e-9) &&
			approx(got.Y3, y.Y3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Physicality on random trees: all pi elements nonnegative, and total
// capacitance preserved.
func TestRealizabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 40)
		m, err := ForInput(tree)
		if err != nil {
			return false
		}
		if m.C1 < 0 || m.C2 < 0 || m.R2 < 0 {
			return false
		}
		return approx(m.TotalC(), tree.TotalC(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForNode(t *testing.T) {
	tree := topo.Fig1Tree()
	i := tree.MustIndex("C6")
	m, err := ForNode(tree, i)
	if err != nil {
		t.Fatal(err)
	}
	// Downstream of C6: C6 (0.5pF) plus C7 (0.5pF) through 200 ohm.
	want := moments.CapAdmittance(0.5e-12).Parallel(moments.CapAdmittance(0.5e-12).SeriesR(200))
	got := m.Admittance()
	if !approx(got.Y1, want.Y1, 1e-9) || !approx(got.Y2, want.Y2, 1e-9) || !approx(got.Y3, want.Y3, 1e-9) {
		t.Errorf("ForNode moments %+v, want %+v", got, want)
	}
}

// The pi model, analyzed as a circuit, has the same Elmore-relevant
// first moment at its far node family: the Elmore delay of the reduced
// load driven through rdrv equals rdrv * Ctotal + R2*C2 at the far end.
func TestTreeMaterialization(t *testing.T) {
	tree := topo.Fig1Tree()
	m, err := ForInput(tree)
	if err != nil {
		t.Fatal(err)
	}
	const rdrv = 75.0
	pt, err := m.Tree(rdrv)
	if err != nil {
		t.Fatal(err)
	}
	td := moments.ElmoreDelays(pt)
	near := pt.MustIndex("pi1")
	if !approx(td[near], rdrv*m.TotalC(), 1e-9) {
		t.Errorf("near-end Elmore = %v, want %v", td[near], rdrv*m.TotalC())
	}
	far := pt.MustIndex("pi2")
	if !approx(td[far], rdrv*m.TotalC()+m.R2*m.C2, 1e-9) {
		t.Errorf("far-end Elmore = %v, want %v", td[far], rdrv*m.TotalC()+m.R2*m.C2)
	}
	if _, err := m.Tree(0); err == nil {
		t.Errorf("zero driver resistance should error")
	}
}

func TestDegenerateTree(t *testing.T) {
	b := rctree.NewBuilder()
	b.MustRoot("n1", 100, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ForNode(tree, 0) // downstream of the only node: bare cap
	if err != nil {
		t.Fatal(err)
	}
	pt, err := m.Tree(50)
	if err != nil {
		t.Fatal(err)
	}
	if pt.N() != 1 {
		t.Errorf("degenerate pi should materialize as 1 node, got %d", pt.N())
	}
}

func TestString(t *testing.T) {
	m := Model{C1: 1e-12, R2: 100, C2: 2e-12}
	if s := m.String(); s == "" {
		t.Errorf("empty String")
	}
}
