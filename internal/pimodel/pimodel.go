// Package pimodel implements the O'Brien-Savarino reduced-order pi
// model (ICCAD 1989; paper eq. 26): a three-element C1 — R2 — C2
// circuit that exactly matches the first three moments of an RC tree's
// driving-point admittance. The paper's Lemma 2 proof rests on this
// reduction; it is also the standard way to present an RC load to a
// gate model.
package pimodel

import (
	"fmt"
	"math"

	"elmore/internal/moments"
	"elmore/internal/rctree"
)

// Model is the pi load: C1 from the tap node to ground, then R2 to a
// second capacitor C2.
//
//	tap ──┬────R2────┬
//	      C1         C2
//	      ⏚          ⏚
type Model struct {
	C1, R2, C2 float64
}

// FromAdmittance synthesizes the pi model matching the first three
// admittance moments (paper eq. 26):
//
//	R2 = -y3^2 / y2^3,  C2 = y2^2 / y3,  C1 = y1 - C2.
//
// A purely capacitive admittance (y2 = y3 = 0) degenerates to a single
// capacitor C1 = y1. Admittances that are not realizable as an RC load
// (wrong moment signs) return an error.
func FromAdmittance(y moments.Admittance) (Model, error) {
	if y.Y1 <= 0 {
		return Model{}, fmt.Errorf("pimodel: first admittance moment %g must be positive", y.Y1)
	}
	if y.Y2 == 0 && y.Y3 == 0 {
		return Model{C1: y.Y1}, nil
	}
	if y.Y2 >= 0 || y.Y3 <= 0 {
		return Model{}, fmt.Errorf("pimodel: admittance moments (y2=%g, y3=%g) are not RC-realizable", y.Y2, y.Y3)
	}
	c2 := y.Y2 * y.Y2 / y.Y3
	r2 := -y.Y3 * y.Y3 / (y.Y2 * y.Y2 * y.Y2)
	c1 := y.Y1 - c2
	if c2 < 0 || r2 < 0 || math.IsInf(r2, 0) || math.IsNaN(r2) {
		return Model{}, fmt.Errorf("pimodel: synthesis produced non-physical elements (C2=%g, R2=%g)", c2, r2)
	}
	if c1 < -1e-12*y.Y1 {
		return Model{}, fmt.Errorf("pimodel: negative near-end capacitance C1=%g", c1)
	}
	if c1 < 0 {
		c1 = 0
	}
	return Model{C1: c1, R2: r2, C2: c2}, nil
}

// ForInput reduces the whole tree as seen from the voltage source.
func ForInput(t *rctree.Tree) (Model, error) {
	return FromAdmittance(moments.InputAdmittance(t))
}

// ForNode reduces the subtree hanging downstream of node i (including
// C(i) itself), as in the paper's Figs. 8-9.
func ForNode(t *rctree.Tree, i int) (Model, error) {
	ys := moments.DownstreamAdmittances(t)
	return FromAdmittance(ys[i])
}

// Admittance returns the first three admittance moments of the model —
// by construction equal to those used for synthesis.
func (m Model) Admittance() moments.Admittance {
	y := moments.CapAdmittance(m.C1)
	if m.C2 > 0 && m.R2 > 0 {
		y = y.Parallel(moments.CapAdmittance(m.C2).SeriesR(m.R2))
	} else {
		y = y.Parallel(moments.Admittance{Y1: m.C2})
	}
	return y
}

// TotalC returns the total capacitance of the load, C1 + C2 — equal to
// the tree's total downstream capacitance.
func (m Model) TotalC() float64 { return m.C1 + m.C2 }

// Tree materializes the pi model as a 2-node RC tree driven through
// driver resistance rdrv, so it can be fed to any analysis in this
// repository (moments, exact responses, simulation). Node names are
// "pi1" (near end) and "pi2" (far end). Degenerate models (C2 = 0)
// produce a single-node tree.
func (m Model) Tree(rdrv float64) (*rctree.Tree, error) {
	if rdrv <= 0 {
		return nil, fmt.Errorf("pimodel: driver resistance must be positive, got %g", rdrv)
	}
	b := rctree.NewBuilder()
	near, err := b.Root("pi1", rdrv, m.C1)
	if err != nil {
		return nil, err
	}
	if m.C2 > 0 && m.R2 > 0 {
		if _, err := b.Attach(near, "pi2", m.R2, m.C2); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func (m Model) String() string {
	return fmt.Sprintf("pi(C1=%s, R2=%s, C2=%s)",
		rctree.FormatFarads(m.C1), rctree.FormatOhms(m.R2), rctree.FormatFarads(m.C2))
}
