package health

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"elmore/internal/telemetry"
)

// withMonitor installs a fresh monitor + registry for one test and
// restores the previous state afterwards.
func withMonitor(t *testing.T, strict bool) (*Monitor, *strings.Builder, *telemetry.Registry) {
	t.Helper()
	var sb strings.Builder
	m := New(&sb, strict)
	prevM := SetDefault(m)
	reg := telemetry.NewRegistry()
	prevR := telemetry.SetDefault(reg)
	t.Cleanup(func() {
		SetDefault(prevM)
		telemetry.SetDefault(prevR)
	})
	return m, &sb, reg
}

func TestNoteCountsAndEmits(t *testing.T) {
	m, sb, reg := withMonitor(t, false)
	Note(Event{Check: "moments.sigma_degenerate", Tree: "n3-abc", Node: "out",
		Values: map[string]F{"mu2": 0}})
	if m.Events() != 1 || m.Violations() != 0 {
		t.Fatalf("events=%d violations=%d, want 1/0", m.Events(), m.Violations())
	}
	if got := reg.Counter("health.events").Value(); got != 1 {
		t.Errorf("health.events = %d, want 1", got)
	}
	if got := reg.Counter("health.moments.sigma_degenerate").Value(); got != 1 {
		t.Errorf("per-check counter = %d, want 1", got)
	}
	if got := reg.Counter("health.violations").Value(); got != 0 {
		t.Errorf("health.violations = %d, want 0", got)
	}
	var ev Event
	if err := json.Unmarshal([]byte(sb.String()), &ev); err != nil {
		t.Fatalf("event line %q: %v", sb.String(), err)
	}
	if ev.Severity != SeverityNote || ev.Check != "moments.sigma_degenerate" || ev.Node != "out" {
		t.Errorf("bad event: %+v", ev)
	}
}

func TestViolateNonStrictReturnsNil(t *testing.T) {
	m, sb, reg := withMonitor(t, false)
	if err := Violate(Event{Check: "bounds.order", Node: "n1"}); err != nil {
		t.Fatalf("non-strict violation returned error: %v", err)
	}
	if m.Violations() != 1 {
		t.Errorf("violations = %d, want 1", m.Violations())
	}
	if got := reg.Counter("health.violations").Value(); got != 1 {
		t.Errorf("health.violations = %d, want 1", got)
	}
	if !strings.Contains(sb.String(), `"severity":"violation"`) {
		t.Errorf("event not marked violation: %s", sb.String())
	}
}

func TestViolateStrictReturnsViolation(t *testing.T) {
	withMonitor(t, true)
	err := Violate(Event{Check: "sim.nonfinite_state", Tree: "n9-x", Node: "mid",
		Detail: "voltage is NaN", Values: map[string]F{"v": F(math.NaN())}})
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("strict violation must return *Violation, got %v", err)
	}
	msg := v.Error()
	for _, want := range []string{"sim.nonfinite_state", "node=mid", "voltage is NaN", "v=NaN"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestNonFiniteValuesSurviveJSON(t *testing.T) {
	_, sb, _ := withMonitor(t, false)
	Note(Event{Check: "x", Values: map[string]F{
		"nan": F(math.NaN()), "pinf": F(math.Inf(1)), "ninf": F(math.Inf(-1)), "ok": 1.5,
	}})
	line := sb.String()
	var parsed map[string]any
	if err := json.Unmarshal([]byte(line), &parsed); err != nil {
		t.Fatalf("event with NaN/Inf values must still be valid JSON: %v\n%s", err, line)
	}
	for _, want := range []string{`"nan":"NaN"`, `"pinf":"+Inf"`, `"ninf":"-Inf"`, `"ok":1.5`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestCheckFinite(t *testing.T) {
	m, _, _ := withMonitor(t, true)
	if err := CheckFinite("core.nonfinite", "t", "n", "td", 1.0); err != nil {
		t.Fatalf("finite value flagged: %v", err)
	}
	if m.Events() != 0 {
		t.Fatalf("finite value recorded an event")
	}
	if err := CheckFinite("core.nonfinite", "t", "n", "td", math.Inf(1)); err == nil {
		t.Fatal("Inf must violate under strict")
	}
	if m.Violations() != 1 {
		t.Errorf("violations = %d, want 1", m.Violations())
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	var m *Monitor
	m.Note(Event{Check: "x"})
	if err := m.Violate(Event{Check: "x"}); err != nil {
		t.Fatal("nil monitor must not error")
	}
	if m.Strict() || m.Events() != 0 || m.Violations() != 0 || m.Err() != nil {
		t.Fatal("nil monitor must report zero state")
	}
	Note(Event{Check: "x"})
	if err := Violate(Event{Check: "x"}); err != nil {
		t.Fatal("disabled default must not error")
	}
	if Enabled() {
		t.Fatal("Enabled must be false with no monitor")
	}
}

func TestConcurrentEvents(t *testing.T) {
	m, sb, _ := withMonitor(t, false)
	const g, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				Note(Event{Check: "race.note"})
			}
		}()
	}
	wg.Wait()
	if m.Events() != g*per {
		t.Fatalf("events = %d, want %d", m.Events(), g*per)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != g*per {
		t.Fatalf("emitted %d lines, want %d", len(lines), g*per)
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved write produced invalid JSON: %q", ln)
		}
	}
}

func TestWriteErrorIsSticky(t *testing.T) {
	m := New(failWriter{}, false)
	m.Note(Event{Check: "x"})
	if m.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestTreeLabel(t *testing.T) {
	if got := TreeLabel(20, 0x1a2b); got != "n20-0000000000001a2b" {
		t.Errorf("TreeLabel = %q", got)
	}
}

// BenchmarkDisabledCheck measures the cost hot loops pay when no
// monitor is installed: the invariant comparison itself plus nothing.
// Must report 0 allocs/op.
func BenchmarkDisabledCheck(b *testing.B) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	b.ReportAllocs()
	var sink error
	for i := 0; i < b.N; i++ {
		sink = CheckFinite("bench.check", "", "", "v", float64(i))
	}
	_ = sink
}

// BenchmarkEnabledCheckPass is the reference cost with a live monitor
// and a passing check: still allocation-free — events only allocate
// when an invariant actually breaks.
func BenchmarkEnabledCheckPass(b *testing.B) {
	prev := SetDefault(New(nil, false))
	defer SetDefault(prev)
	b.ReportAllocs()
	var sink error
	for i := 0; i < b.N; i++ {
		sink = CheckFinite("bench.check", "", "", "v", float64(i))
	}
	_ = sink
}
