// Package health is the numerical-health monitor: fail-soft invariant
// checks wired into the hot engines, turning silent numerical
// degradation into countable, inspectable events. The paper's results
// are order relations — mu2 >= 0 and gamma >= 0 (Lemma 2),
// lower <= t50 <= T_D (Theorem 1 / Corollary 1) — so the monitor's job
// is to notice when floating-point reality stops satisfying them: a NaN
// capacitance poisoning the moment recurrences, a simulation waveform
// going non-finite, a bound ordering inverting.
//
// The design mirrors package telemetry: a process-wide default monitor
// reached through an atomic pointer, where nil means "disabled" and the
// disabled path costs a pointer load plus the (already necessary)
// float comparison — zero allocations, safe to leave in hot loops.
//
//	m := health.New(os.Stderr, false)
//	prev := health.SetDefault(m)
//	defer health.SetDefault(prev)
//
// Checks come in two severities. A *note* records a degenerate but
// legal input (a zero-variance node, an unreachable PWL level): it is
// counted and emitted but never fails anything. A *violation* records a
// broken invariant: it is counted, emitted, and — when the monitor is
// strict (the -strict-numerics CLI flag) — returned as an error that
// propagates out of the engine that detected it.
//
// Every event increments the telemetry counters "health.events" and
// "health.<check>"; violations additionally increment
// "health.violations". Events are emitted as NDJSON, one object per
// line, with tree/node context:
//
//	{"check":"moments.nonfinite","severity":"violation","tree":"n20-1a2b…","node":"out","detail":"m_1 is NaN","values":{"m1":"NaN"}}
//
// Setting the environment variable ELMORE_STRICT_NUMERICS=1 installs a
// strict monitor writing to stderr at package init — the hook the CI
// health-strict lane uses to run the whole test suite with invariant
// checking hard-enabled.
package health

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"elmore/internal/telemetry"
)

// F is a float64 that survives JSON encoding even when non-finite: NaN
// and ±Inf are rendered as quoted strings ("NaN", "+Inf", "-Inf"),
// which is exactly the case a health event exists to report.
type F float64

// MarshalJSON implements json.Marshaler.
func (f F) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// Severity classifies an event.
type Severity string

const (
	// SeverityNote marks a degenerate-but-legal numerical condition.
	SeverityNote Severity = "note"
	// SeverityViolation marks a broken invariant.
	SeverityViolation Severity = "violation"
)

// Event is one health record. Check names are dotted
// "<package>.<condition>" slugs ("moments.nonfinite", "bounds.order");
// they double as the telemetry counter suffix.
type Event struct {
	Check    string       `json:"check"`
	Severity Severity     `json:"severity"`
	Tree     string       `json:"tree,omitempty"`
	Node     string       `json:"node,omitempty"`
	Detail   string       `json:"detail,omitempty"`
	Values   map[string]F `json:"values,omitempty"`
}

// Violation is the error a strict monitor returns from a violated
// check.
type Violation struct {
	Event
}

// Error implements error.
func (v *Violation) Error() string {
	var sb strings.Builder
	sb.WriteString("health: ")
	sb.WriteString(v.Check)
	if v.Tree != "" {
		fmt.Fprintf(&sb, " tree=%s", v.Tree)
	}
	if v.Node != "" {
		fmt.Fprintf(&sb, " node=%s", v.Node)
	}
	if v.Detail != "" {
		sb.WriteString(": ")
		sb.WriteString(v.Detail)
	}
	if len(v.Values) > 0 {
		keys := make([]string, 0, len(v.Values))
		for k := range v.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString(" (")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%g", k, float64(v.Values[k]))
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Monitor receives health events. A nil *Monitor is a valid disabled
// monitor: every method no-ops. Monitors are safe for concurrent use.
type Monitor struct {
	strict     bool
	events     atomic.Int64
	violations atomic.Int64

	mu  sync.Mutex
	w   io.Writer // NDJSON sink; nil counts without emitting
	err error     // first write error, sticky
}

// New returns a monitor emitting NDJSON events to w (nil counts
// without emitting). strict makes violations return errors.
func New(w io.Writer, strict bool) *Monitor {
	return &Monitor{w: w, strict: strict}
}

// Strict reports whether violations fail hard (false on nil).
func (m *Monitor) Strict() bool { return m != nil && m.strict }

// Events returns the total number of recorded events (notes and
// violations; 0 on nil).
func (m *Monitor) Events() int64 {
	if m == nil {
		return 0
	}
	return m.events.Load()
}

// Violations returns the number of recorded violations (0 on nil).
func (m *Monitor) Violations() int64 {
	if m == nil {
		return 0
	}
	return m.violations.Load()
}

// Err returns the first event-write error, if any.
func (m *Monitor) Err() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// record counts and emits one event.
func (m *Monitor) record(ev Event) {
	m.events.Add(1)
	if ev.Severity == SeverityViolation {
		m.violations.Add(1)
	}
	telemetry.C("health.events").Inc()
	if ev.Severity == SeverityViolation {
		telemetry.C("health.violations").Inc()
	}
	telemetry.C("health." + ev.Check).Inc()
	if m.w == nil {
		return
	}
	line, err := marshalEvent(ev)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		if m.err == nil {
			m.err = err
		}
		return
	}
	if _, err := m.w.Write(line); err != nil && m.err == nil {
		m.err = err
	}
}

// marshalEvent renders one NDJSON line (trailing newline included).
func marshalEvent(ev Event) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Note records a degenerate-but-legal condition on m. No-op on nil.
func (m *Monitor) Note(ev Event) {
	if m == nil {
		return
	}
	ev.Severity = SeverityNote
	m.record(ev)
}

// Violate records an invariant violation on m and returns a *Violation
// error when the monitor is strict (nil otherwise, and on a nil
// monitor).
func (m *Monitor) Violate(ev Event) error {
	if m == nil {
		return nil
	}
	ev.Severity = SeverityViolation
	m.record(ev)
	if m.strict {
		return &Violation{Event: ev}
	}
	return nil
}

// defaultMonitor is the process-wide monitor consulted by the
// package-level check helpers.
var defaultMonitor atomic.Pointer[Monitor]

// SetDefault installs m as the process-wide monitor (nil disables
// checking) and returns the previous one so callers can restore it.
func SetDefault(m *Monitor) (prev *Monitor) {
	return defaultMonitor.Swap(m)
}

// Default returns the current monitor, or nil when health checking is
// disabled.
func Default() *Monitor { return defaultMonitor.Load() }

// Enabled reports whether a monitor is installed. Engines use it to
// gate O(N) scans (waveform sentinels, moment sweeps) that would be
// pure waste with nobody listening.
func Enabled() bool { return Default() != nil }

// Note records a degenerate-but-legal condition on the default monitor.
func Note(ev Event) { Default().Note(ev) }

// Violate records an invariant violation on the default monitor,
// returning a *Violation error when it is strict.
func Violate(ev Event) error { return Default().Violate(ev) }

// TreeLabel renders the tree context carried by events: node count plus
// the rctree fingerprint. Call it once per analysis, and only when
// Enabled(), to keep hot paths allocation-free.
func TreeLabel(n int, fingerprint uint64) string {
	return fmt.Sprintf("n%d-%016x", n, fingerprint)
}

// IsFinite reports whether v is neither NaN nor ±Inf.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CheckFinite validates that the named quantity is finite, reporting a
// violation with tree/node context otherwise. The fast path — a finite
// value — is two branches and no monitor access.
func CheckFinite(check, tree, node, name string, v float64) error {
	if IsFinite(v) {
		return nil
	}
	return Violate(Event{
		Check:  check,
		Tree:   tree,
		Node:   node,
		Detail: name + " is not finite",
		Values: map[string]F{name: F(v)},
	})
}

func init() {
	if v := os.Getenv("ELMORE_STRICT_NUMERICS"); v != "" && v != "0" {
		SetDefault(New(os.Stderr, true))
	}
}
