package exact

import (
	"fmt"
	"math"

	"elmore/internal/signal"
)

// VExp returns the exact response at node i to the exponential edge
// u(t) = 1 - exp(-t/tau), in closed form:
//
//	v_o(t) = u(t) - sum_j c_j (e^{-t/tau} - e^{-λ_j t}) / (τ λ_j - 1),
//
// with the removable singularity at τ λ_j = 1 handled by its limit
// c_j (t/τ) e^{-t/τ}.
func (s *System) VExp(i int, tau, t float64) float64 {
	if t <= 0 {
		return 0
	}
	out := 1 - math.Exp(-t/tau)
	eIn := math.Exp(-t / tau)
	for j, lam := range s.poles {
		den := tau*lam - 1
		c := s.coef[i][j]
		if math.Abs(den) < 1e-9 {
			out -= c * (t / tau) * eIn
			continue
		}
		out -= c * (eIn - math.Exp(-lam*t)) / den
	}
	return out
}

// CrossExp returns the time the exponential-input response at node i
// crosses the level in (0, 1).
func (s *System) CrossExp(i int, tau, level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("exact: crossing level must be in (0,1), got %v", level)
	}
	if tau <= 0 {
		return 0, fmt.Errorf("exact: tau must be positive, got %v", tau)
	}
	f := func(t float64) float64 { return s.VExp(i, tau, t) - level }
	hi := tau + s.SlowestTimeConstant()
	ok := false
	for k := 0; k < maxBracketDoublings; k++ {
		if f(hi) > 0 {
			ok = true
			break
		}
		hi *= 2
	}
	if !ok {
		return 0, fmt.Errorf("exact: exponential response at node %d never reaches %v", i, level)
	}
	return bisect(f, 0, hi), nil
}

// delayExp measures the 50%-style delay for an exponential input at an
// arbitrary level: output crossing minus input crossing.
func (s *System) delayExp(i int, tau, level float64) (float64, error) {
	out, err := s.CrossExp(i, tau, level)
	if err != nil {
		return 0, err
	}
	in := signal.Exponential{Tau: tau}.Cross(level)
	return out - in, nil
}
