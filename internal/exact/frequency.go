package exact

import (
	"fmt"
	"math"
	"math/cmplx"
)

// H evaluates the transfer function at node i at a complex frequency s
// from the pole/residue form:
//
//	H_i(s) = sum_j coef_ij * λ_j / (s + λ_j)
//
// (so that H_i(0) = sum_j coef_ij = 1 and the impulse response is
// sum_j coef_ij λ_j e^{-λ_j t}).
func (s *System) H(i int, sc complex128) complex128 {
	var h complex128
	for j, lam := range s.poles {
		h += complex(s.coef[i][j]*lam, 0) / (sc + complex(lam, 0))
	}
	return h
}

// Magnitude returns |H_i(jω)| — the Bode magnitude at angular
// frequency ω (rad/s).
func (s *System) Magnitude(i int, omega float64) float64 {
	return cmplx.Abs(s.H(i, complex(0, omega)))
}

// Bandwidth3dB returns the -3 dB angular frequency of node i: the ω at
// which |H(jω)| first falls to 1/sqrt(2). RC tree transfer magnitudes
// are monotone decreasing in ω, so bisection applies.
func (s *System) Bandwidth3dB(i int) (float64, error) {
	target := 1 / math.Sqrt2
	f := func(om float64) float64 { return target - s.Magnitude(i, om) }
	hi := s.poles[0] // start at the slowest pole
	ok := false
	for k := 0; k < maxBracketDoublings; k++ {
		if f(hi) > 0 {
			ok = true
			break
		}
		hi *= 2
	}
	if !ok {
		return 0, fmt.Errorf("exact: node %d magnitude never drops below -3 dB", i)
	}
	return bisect(f, 0, hi), nil
}
