package exact

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
	"elmore/internal/topo"
)

func TestHSingleRC(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	s := singleRC(t, r, c)
	// H(s) = 1/(1 + s rc).
	for _, om := range []float64{0, 1 / rc, 10 / rc} {
		got := s.H(0, complex(0, om))
		want := 1 / (1 + complex(0, om*rc))
		if cmplx.Abs(got-want) > 1e-12 {
			t.Errorf("H(j%v) = %v, want %v", om, got, want)
		}
	}
	bw, err := s.Bandwidth3dB(0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(bw, 1/rc, 1e-9) {
		t.Errorf("3dB bandwidth = %v, want %v", bw, 1/rc)
	}
}

// The Taylor coefficients of H about s=0 are the path-traced moments:
// H(s) ≈ 1 + m1 s + m2 s^2 for small real s. A strong cross-check of
// the moment engine against the eigen engine in a different domain.
func TestHTaylorMatchesMoments(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 15)
		sys, err := NewSystem(tree)
		if err != nil {
			return false
		}
		ms, err := moments.Compute(tree, 2)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			// Pick s small relative to the fastest pole.
			s0 := 1e-4 * sys.Poles()[0]
			h := real(sys.H(i, complex(s0, 0)))
			taylor := 1 + ms.M(1, i)*s0 + ms.M(2, i)*s0*s0
			if math.Abs(h-taylor) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Magnitude is 1 at DC, monotone nonincreasing in omega, and the
// bandwidth never exceeds the slowest pole by orders of magnitude at
// far-downstream nodes.
func TestMagnitudeShape(t *testing.T) {
	tree := topo.Line25Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex(topo.Line25NodeC)
	if !approx(s.Magnitude(i, 0), 1, 1e-9) {
		t.Errorf("DC magnitude = %v", s.Magnitude(i, 0))
	}
	prev := math.Inf(1)
	for _, om := range []float64{1e6, 1e8, 1e9, 1e10, 1e11} {
		m := s.Magnitude(i, om)
		if m > prev*(1+1e-12) {
			t.Errorf("magnitude increased at omega=%v", om)
		}
		prev = m
	}
	bw, err := s.Bandwidth3dB(i)
	if err != nil {
		t.Fatal(err)
	}
	// Folk relation: bandwidth ~ 1/T_D within a small factor for
	// dominant-pole nodes.
	td := s.Mean(i)
	if bw < 0.1/td || bw > 10/td {
		t.Errorf("bandwidth %v vs 1/T_D %v out of expected range", bw, 1/td)
	}
}
