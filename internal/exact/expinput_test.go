package exact

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/signal"
	"elmore/internal/topo"
)

// Single-RC analytic check: R, C with tau != RC has the textbook
// two-exponential response.
func TestVExpSingleRCAnalytic(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	s := singleRC(t, r, c)
	tau := 2 * rc
	for _, tt := range []float64{0.2 * rc, rc, 3 * rc, 10 * rc} {
		// v(t) = 1 - (tau e^{-t/tau} - rc e^{-t/rc})/(tau - rc)
		want := 1 - (tau*math.Exp(-tt/tau)-rc*math.Exp(-tt/rc))/(tau-rc)
		if got := s.VExp(0, tau, tt); !approx(got, want, 1e-10) {
			t.Errorf("VExp(%v) = %v, want %v", tt, got, want)
		}
	}
	if got := s.VExp(0, tau, -1); got != 0 {
		t.Errorf("VExp before 0 = %v", got)
	}
}

// The removable singularity tau = 1/lambda: compare against the limit
// formula via a nearby tau.
func TestVExpDegenerateTau(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	s := singleRC(t, r, c)
	tt := 1.7 * rc
	exactDeg := s.VExp(0, rc, tt)      // hits the limit branch
	near := s.VExp(0, rc*(1+2e-9), tt) // just outside the guard
	if !approx(exactDeg, near, 1e-6) {
		t.Errorf("degenerate branch %v vs nearby %v", exactDeg, near)
	}
	// Analytic limit: v = 1 - (1 + t/rc) e^{-t/rc}.
	want := 1 - (1+tt/rc)*math.Exp(-tt/rc)
	if !approx(exactDeg, want, 1e-9) {
		t.Errorf("degenerate value %v, want %v", exactDeg, want)
	}
}

// Closed-form exponential responses agree with the PWL approximation
// path on the Fig. 1 circuit.
func TestVExpMatchesPWLApprox(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	tau := 0.8e-9
	p, err := signal.ToPWL(signal.Exponential{Tau: tau}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	for _, tt := range []float64{0.3e-9, 1e-9, 3e-9} {
		cf := s.VExp(i, tau, tt)
		ap := s.VPWL(i, p, tt)
		if !approx(cf, ap, 2e-3) {
			t.Errorf("t=%v: closed form %v vs PWL %v", tt, cf, ap)
		}
	}
}

// Delay dispatch uses the closed form for Exponential inputs and still
// respects Corollary 2's generalized bound (shifted for the asymmetric
// input): delay <= T_D + tau - tau*ln2.
func TestExpDelayBound(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		tree := topo.RandomSmall(seed, 12)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		tau := s.SlowestTimeConstant() * math.Pow(10, float64(tauRaw%5)-2)
		for i := 0; i < tree.N(); i++ {
			d, err := s.Delay(i, signal.Exponential{Tau: tau}, 0)
			if err != nil {
				return false
			}
			bound := s.Mean(i) + tau - tau*math.Ln2
			if d > bound*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossExpErrors(t *testing.T) {
	s := singleRC(t, 1000, 1e-12)
	if _, err := s.CrossExp(0, 1e-9, 0); err == nil {
		t.Errorf("level 0 should error")
	}
	if _, err := s.CrossExp(0, 0, 0.5); err == nil {
		t.Errorf("tau 0 should error")
	}
	x, err := s.CrossExp(0, 1e-9, 0.5)
	if err != nil || x <= 0 {
		t.Errorf("CrossExp = %v, %v", x, err)
	}
}
