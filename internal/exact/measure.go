package exact

import (
	"fmt"

	"elmore/internal/signal"
	"elmore/internal/waveform"
)

// maxBracketDoublings bounds the exponential search for an upper
// bracket; 200 doublings from any sane starting point covers the whole
// float64 range.
const maxBracketDoublings = 200

// CrossStep returns the exact time at which the unit step response at
// node i crosses the given level in (0, 1). RC tree step responses are
// monotone (Penfield-Rubinstein), so the crossing is unique.
func (s *System) CrossStep(i int, level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("exact: crossing level must be in (0,1), got %v", level)
	}
	f := func(t float64) float64 { return s.VStep(i, t) - level }
	hi := s.SlowestTimeConstant()
	ok := false
	for k := 0; k < maxBracketDoublings; k++ {
		if f(hi) > 0 {
			ok = true
			break
		}
		hi *= 2
	}
	if !ok {
		return 0, fmt.Errorf("exact: step response at node %d never reaches level %v", i, level)
	}
	return bisect(f, 0, hi), nil
}

// Delay50Step returns the exact 50% step-response delay at node i — the
// median of the impulse response, the quantity the Elmore delay bounds.
func (s *System) Delay50Step(i int) (float64, error) {
	return s.CrossStep(i, 0.5)
}

// RiseTimeStep returns the lo-to-hi rise time of the step response
// (e.g. 0.1, 0.9 for the conventional 10-90% metric).
func (s *System) RiseTimeStep(i int, lo, hi float64) (float64, error) {
	if !(lo < hi) {
		return 0, fmt.Errorf("exact: rise-time levels must satisfy lo < hi")
	}
	tLo, err := s.CrossStep(i, lo)
	if err != nil {
		return 0, err
	}
	tHi, err := s.CrossStep(i, hi)
	if err != nil {
		return 0, err
	}
	return tHi - tLo, nil
}

// Mode returns the location of the first local maximum of the impulse
// response at node i. Under Lemma 1's unimodality this is the mode;
// for the rare extreme-element-spread trees where h(t) is multimodal
// (see TestLemma1UnimodalityCounterexample) it returns the first peak,
// which is what the mode <= median <= mean comparison uses.
func (s *System) Mode(i int) float64 {
	if s.ImpulseDeriv(i, 0) <= 0 {
		return 0 // h decays from t=0 (driving-point-like node)
	}
	// Find a time where h' < 0 by doubling.
	hi := s.SlowestTimeConstant() / float64(len(s.poles)+1)
	for k := 0; k < maxBracketDoublings; k++ {
		if s.ImpulseDeriv(i, hi) < 0 {
			break
		}
		hi *= 2
	}
	return bisect(func(t float64) float64 { return -s.ImpulseDeriv(i, t) }, 0, hi)
}

// bisect finds the root of the increasing-sign function f (f(lo) <= 0
// <= f(hi)) to near machine precision.
func bisect(f func(float64) float64, lo, hi float64) float64 {
	for k := 0; k < 200; k++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// VPWL returns the exact response at node i to a monotone
// piecewise-linear input at time t: a superposition of shifted
// unit-slope ramp responses weighted by the segment slopes.
func (s *System) VPWL(i int, p *signal.PWL, t float64) float64 {
	pts := p.Points
	var out float64
	for k := 0; k+1 < len(pts); k++ {
		slope := (pts[k+1].V - pts[k].V) / (pts[k+1].T - pts[k].T)
		if slope == 0 {
			continue
		}
		out += slope * (s.StepIntegral(i, t-pts[k].T) - s.StepIntegral(i, t-pts[k+1].T))
	}
	return out
}

// CrossPWL returns the time at which the response to a PWL input
// crosses the given level in (0, 1). Monotone input and nonnegative
// impulse response make the output monotone, so the crossing is unique.
func (s *System) CrossPWL(i int, p *signal.PWL, level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("exact: crossing level must be in (0,1), got %v", level)
	}
	f := func(t float64) float64 { return s.VPWL(i, p, t) - level }
	start := p.Points[0].T
	hi := p.Points[len(p.Points)-1].T + s.SlowestTimeConstant()
	ok := false
	for k := 0; k < maxBracketDoublings; k++ {
		if f(hi) > 0 {
			ok = true
			break
		}
		hi = start + 2*(hi-start)
	}
	if !ok {
		return 0, fmt.Errorf("exact: PWL response at node %d never reaches level %v", i, level)
	}
	return bisect(f, start, hi), nil
}

// Delay measures the 50% delay at node i for the given input signal:
// the time the output crosses 50% minus the time the input crosses 50%.
// Steps and saturated ramps are handled in closed form; other signals
// are converted to a PWL approximation with pwlSegments segments
// (DefaultPWLSegments if <= 0).
func (s *System) Delay(i int, sig signal.Signal, pwlSegments int) (float64, error) {
	return s.DelayAt(i, sig, 0.5, pwlSegments)
}

// DefaultPWLSegments is the PWL resolution used to approximate smooth
// (non-PWL) input signals.
const DefaultPWLSegments = 256

// DelayAt measures the delay at an arbitrary threshold level: output
// crossing time minus input crossing time.
func (s *System) DelayAt(i int, sig signal.Signal, level float64, pwlSegments int) (float64, error) {
	if _, isStep := sig.(signal.Step); isStep {
		t, err := s.CrossStep(i, level)
		return t, err
	}
	if e, isExp := sig.(signal.Exponential); isExp {
		// Exponential edges have a closed-form response; no PWL
		// approximation needed.
		return s.delayExp(i, e.Tau, level)
	}
	if pwlSegments <= 0 {
		pwlSegments = DefaultPWLSegments
	}
	p, err := signal.ToPWL(sig, pwlSegments)
	if err != nil {
		return 0, fmt.Errorf("exact: cannot drive node %d with %v: %w", i, sig, err)
	}
	out, err := s.CrossPWL(i, p, level)
	if err != nil {
		return 0, err
	}
	return out - p.Cross(level), nil
}

// StepWaveform samples the step response at node i on n+1 uniform
// points over [0, t1].
func (s *System) StepWaveform(i int, t1 float64, n int) (*waveform.Waveform, error) {
	return waveform.FromFunc(func(t float64) float64 { return s.VStep(i, t) }, 0, t1, n)
}

// ImpulseWaveform samples the impulse response at node i on n+1 uniform
// points over [0, t1].
func (s *System) ImpulseWaveform(i int, t1 float64, n int) (*waveform.Waveform, error) {
	return waveform.FromFunc(func(t float64) float64 { return s.Impulse(i, t) }, 0, t1, n)
}

// PWLWaveform samples the response to a PWL input at node i on n+1
// uniform points over [0, t1].
func (s *System) PWLWaveform(i int, p *signal.PWL, t1 float64, n int) (*waveform.Waveform, error) {
	return waveform.FromFunc(func(t float64) float64 { return s.VPWL(i, p, t) }, 0, t1, n)
}

// Horizon returns a sampling horizon that comfortably contains the
// interesting part of every response: the max Elmore mean plus several
// slowest time constants, plus the input rise time.
func (s *System) Horizon(extraRise float64) float64 {
	maxMean := 0.0
	for i := 0; i < s.tree.N(); i++ {
		if m := s.Mean(i); m > maxMean {
			maxMean = m
		}
	}
	return maxMean + 8*s.SlowestTimeConstant() + extraRise
}

// AreaBetween returns the exact area between the input signal and the
// response at node i: integral (v_in - v_out) dt over [0, inf). By the
// paper's eq. 48 this equals the Elmore delay for any monotone input
// reaching 1. Computed analytically for PWL inputs.
func (s *System) AreaBetween(i int, p *signal.PWL) float64 {
	// integral (v_in - v_out) = integral (1 - v_out) - integral (1 - v_in).
	// For the exact engine: integral_0^T (t - S_i(t-shift)) terms telescope;
	// easier: area = lim T->inf [ integral v_in - integral v_out ].
	// integral_0^T v_in dt = T - A_in where A_in = integral (1 - v_in).
	// For a PWL ending at tEnd: A_in = tEnd - integral_0^tEnd v_in.
	pts := p.Points
	tEnd := pts[len(pts)-1].T
	var inInt float64 // integral of v_in over [0, tEnd]
	for k := 0; k+1 < len(pts); k++ {
		inInt += 0.5 * (pts[k].V + pts[k+1].V) * (pts[k+1].T - pts[k].T)
	}
	aIn := tEnd - inInt
	// A_out = integral (1 - v_out) dt: evaluate analytically via the
	// asymptote of VPWL. For large T, S_i(T - a) -> (T - a) - K_i with
	// K_i = sum_j coef_ij / λ_j (the Elmore delay), so
	// integral_0^T (1 - v_out) -> A_in + K_i exactly in the limit.
	// We compute it numerically to act as an independent check.
	horizon := tEnd + 40*s.SlowestTimeConstant()
	const steps = 20000
	var outInt float64
	dt := horizon / steps
	prev := 1 - s.VPWL(i, p, 0)
	for k := 1; k <= steps; k++ {
		cur := 1 - s.VPWL(i, p, float64(k)*dt)
		outInt += 0.5 * (prev + cur) * dt
		prev = cur
	}
	return outInt - aIn
}
