// Package exact computes closed-form responses of RC trees by
// eigen-decomposition. An RC tree is a linear system
//
//	C dv/dt = -G v + b u(t)
//
// with diagonal capacitance matrix C and symmetric conductance matrix
// G. The symmetrized state matrix A = C^{-1/2} G C^{-1/2} has real
// positive eigenvalues (the circuit's pole magnitudes), so every node
// response is an explicit sum of decaying exponentials. This gives
// machine-precision step, impulse, ramp and piecewise-linear responses
// and exact threshold crossings — the repository's substitute for the
// paper's circuit-simulator "actual delay" column.
package exact

import (
	"context"
	"fmt"
	"math"

	"elmore/internal/linalg"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// System is the eigen-decomposed RC tree, ready to evaluate responses
// at any node and any time.
type System struct {
	tree  *rctree.Tree
	poles []float64   // eigenvalues of A, ascending (1/seconds)
	coef  [][]float64 // coef[i][j]: step response v_i(t) = 1 - sum_j coef[i][j] exp(-poles[j] t)
}

// NewSystem builds the exact engine for a tree. Every node must carry
// strictly positive capacitance (use Regularize for trees with pure
// resistive junctions). Cost is O(N^3); intended for trees up to a few
// hundred nodes — use package sim for larger circuits.
func NewSystem(t *rctree.Tree) (*System, error) {
	return NewSystemContext(context.Background(), t)
}

// NewSystemContext is NewSystem under a context: when the context
// carries a telemetry tracer, the build and its eigensolve are recorded
// as nested spans, and the eigensolve cost (Jacobi sweeps, pole count)
// is exported through the metrics registry.
func NewSystemContext(ctx context.Context, t *rctree.Tree) (*System, error) {
	n := t.N()
	ctx, sp := telemetry.Start(ctx, "exact.newsystem")
	sp.AttrInt("nodes", int64(n))
	defer sp.End()
	for i := 0; i < n; i++ {
		if t.C(i) <= 0 {
			return nil, fmt.Errorf("exact: node %q has zero capacitance; regularize the tree first", t.Name(i))
		}
	}

	// Build G (node conductance matrix) and the square roots of C.
	g := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cond := 1 / t.R(i)
		p := t.Parent(i)
		g.Add(i, i, cond)
		if p != rctree.Source {
			g.Add(p, p, cond)
			g.Add(i, p, -cond)
			g.Add(p, i, -cond)
		}
	}
	sqrtC := make([]float64, n)
	for i := 0; i < n; i++ {
		sqrtC[i] = math.Sqrt(t.C(i))
	}

	// A = C^{-1/2} G C^{-1/2}: symmetric positive definite.
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, g.At(i, j)/(sqrtC[i]*sqrtC[j]))
		}
	}
	_, esp := telemetry.Start(ctx, "exact.eigensolve")
	vals, vecs, sweeps, err := linalg.EigSymSweeps(a)
	esp.AttrInt("nodes", int64(n))
	esp.AttrInt("sweeps", int64(sweeps))
	esp.End()
	telemetry.C("exact.eigensolve_sweeps").Add(int64(sweeps))
	if err != nil {
		return nil, fmt.Errorf("exact: eigen-decomposition failed: %w", err)
	}
	if vals[0] <= 0 {
		return nil, fmt.Errorf("exact: non-positive pole %g (tree not properly grounded?)", vals[0])
	}
	telemetry.C("exact.systems").Inc()
	telemetry.C("exact.poles").Add(int64(n))

	// Step response: with w = C^{1/2} v, w(t) = (I - Q e^{-Λt} Q^T) w_ss
	// and w_ss = C^{1/2} * 1 (unit DC gain everywhere). Hence
	// v_i(t) = 1 - sum_j (Q_ij / sqrtC_i) * (sum_k Q_kj sqrtC_k) e^{-λ_j t}.
	proj := make([]float64, n) // proj[j] = sum_k Q_kj sqrtC_k
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < n; k++ {
			s += vecs.At(k, j) * sqrtC[k]
		}
		proj[j] = s
	}
	coef := make([][]float64, n)
	for i := 0; i < n; i++ {
		coef[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			coef[i][j] = vecs.At(i, j) / sqrtC[i] * proj[j]
		}
	}
	return &System{tree: t, poles: vals, coef: coef}, nil
}

// Regularize returns a clone of the tree in which every zero
// capacitance is replaced by frac times the smallest positive
// capacitance in the tree (default 1e-6 if frac <= 0). The Elmore delay
// and all moments change only by that perturbation; the exact engine
// becomes applicable.
func Regularize(t *rctree.Tree, frac float64) *rctree.Tree {
	if frac <= 0 {
		frac = 1e-6
	}
	minC := math.Inf(1)
	for i := 0; i < t.N(); i++ {
		if c := t.C(i); c > 0 && c < minC {
			minC = c
		}
	}
	if math.IsInf(minC, 1) {
		minC = 1e-15
	}
	cp := t.Clone()
	replaced := 0
	for i := 0; i < cp.N(); i++ {
		if cp.C(i) == 0 {
			// Values validated at build time; scaling keeps them valid.
			if err := cp.SetC(i, frac*minC); err != nil {
				panic(err)
			}
			replaced++
		}
	}
	telemetry.C("exact.regularized_nodes").Add(int64(replaced))
	if replaced > 0 {
		telemetry.C("exact.regularizations").Inc()
	}
	return cp
}

// Tree returns the tree the system was built for.
func (s *System) Tree() *rctree.Tree { return s.tree }

// Poles returns the pole magnitudes (ascending, in 1/seconds). The
// slowest time constant is 1/Poles()[0]. The slice is owned by the
// system.
func (s *System) Poles() []float64 { return s.poles }

// Residues returns the step-response expansion coefficients at node i:
// v_i(t) = 1 - sum_j r_j exp(-poles_j t). The slice is owned by the
// system.
func (s *System) Residues(i int) []float64 { return s.coef[i] }

// VStep returns the unit step response at node i, time t (t in seconds).
func (s *System) VStep(i int, t float64) float64 {
	if t <= 0 {
		return 0
	}
	var sum float64
	for j, lam := range s.poles {
		sum += s.coef[i][j] * math.Exp(-lam*t)
	}
	return 1 - sum
}

// Impulse returns the unit impulse response h_i(t) = dVStep/dt.
func (s *System) Impulse(i int, t float64) float64 {
	if t < 0 {
		return 0
	}
	var sum float64
	for j, lam := range s.poles {
		sum += s.coef[i][j] * lam * math.Exp(-lam*t)
	}
	return sum
}

// ImpulseDeriv returns h_i'(t), used to locate the mode of the impulse
// response.
func (s *System) ImpulseDeriv(i int, t float64) float64 {
	if t < 0 {
		return 0
	}
	var sum float64
	for j, lam := range s.poles {
		sum -= s.coef[i][j] * lam * lam * math.Exp(-lam*t)
	}
	return sum
}

// StepIntegral returns S_i(t) = integral_0^t VStep(i, τ) dτ in closed
// form — the unit-slope ramp response, and the building block for
// arbitrary piecewise-linear inputs.
func (s *System) StepIntegral(i int, t float64) float64 {
	if t <= 0 {
		return 0
	}
	sum := t
	for j, lam := range s.poles {
		sum -= s.coef[i][j] / lam * (1 - math.Exp(-lam*t))
	}
	return sum
}

// DistMoment returns the exact raw distribution moment
// integral t^q h_i(t) dt = q! sum_j coef_ij / poles_j^q.
func (s *System) DistMoment(q, i int) float64 {
	fact := 1.0
	for k := 2; k <= q; k++ {
		fact *= float64(k)
	}
	var sum float64
	for j, lam := range s.poles {
		sum += s.coef[i][j] / math.Pow(lam, float64(q))
	}
	return fact * sum
}

// Mean returns the exact mean of the impulse response at node i — by
// construction equal to the Elmore delay.
func (s *System) Mean(i int) float64 { return s.DistMoment(1, i) }

// Mu2 returns the exact central second moment of h_i.
func (s *System) Mu2(i int) float64 {
	m1 := s.DistMoment(1, i)
	return s.DistMoment(2, i) - m1*m1
}

// Mu3 returns the exact central third moment of h_i.
func (s *System) Mu3(i int) float64 {
	m1 := s.DistMoment(1, i)
	m2 := s.DistMoment(2, i)
	return s.DistMoment(3, i) - 3*m1*m2 + 2*m1*m1*m1
}

// SlowestTimeConstant returns 1/λ_min — the natural horizon scale for
// sampling and bracketing.
func (s *System) SlowestTimeConstant() float64 { return 1 / s.poles[0] }
