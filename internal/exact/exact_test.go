package exact

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/sim"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func singleRC(t *testing.T, r, c float64) *System {
	t.Helper()
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleRCAnalytic(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	s := singleRC(t, r, c)
	if len(s.Poles()) != 1 || !approx(s.Poles()[0], 1/rc, 1e-10) {
		t.Fatalf("poles = %v, want [%v]", s.Poles(), 1/rc)
	}
	for _, tt := range []float64{0.1 * rc, rc, 3 * rc} {
		want := 1 - math.Exp(-tt/rc)
		if got := s.VStep(0, tt); !approx(got, want, 1e-12) {
			t.Errorf("VStep(%v) = %v, want %v", tt, got, want)
		}
		wantH := math.Exp(-tt/rc) / rc
		if got := s.Impulse(0, tt); !approx(got, wantH, 1e-12) {
			t.Errorf("Impulse(%v) = %v, want %v", tt, got, wantH)
		}
	}
	d, err := s.Delay50Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, rc*math.Ln2, 1e-10) {
		t.Errorf("delay50 = %v, want %v", d, rc*math.Ln2)
	}
	if got := s.Mean(0); !approx(got, rc, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, rc)
	}
	if got := s.Mu2(0); !approx(got, rc*rc, 1e-12) {
		t.Errorf("Mu2 = %v, want %v", got, rc*rc)
	}
	if got := s.Mu3(0); !approx(got, 2*rc*rc*rc, 1e-12) {
		t.Errorf("Mu3 = %v, want %v", got, 2*rc*rc*rc)
	}
	rt, err := s.RiseTimeStep(0, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rt, rc*math.Log(9), 1e-10) {
		t.Errorf("rise time = %v, want %v", rt, rc*math.Log(9))
	}
	if mode := s.Mode(0); mode != 0 {
		t.Errorf("mode of exponential density = %v, want 0", mode)
	}
}

func TestNewSystemRejectsZeroCap(t *testing.T) {
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 100, 0)
	b.MustAttach(n1, "n2", 100, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(tree); err == nil {
		t.Fatalf("zero-cap node should be rejected")
	}
	reg := Regularize(tree, 0)
	if reg.C(0) <= 0 {
		t.Fatalf("Regularize left a zero cap")
	}
	if _, err := NewSystem(reg); err != nil {
		t.Fatalf("regularized tree should build: %v", err)
	}
}

func TestResidueDCSum(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 25)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			var sum float64
			for _, c := range s.Residues(i) {
				sum += c
			}
			if !approx(sum, 1, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPolesPositiveAscending(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 25)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		p := s.Poles()
		for j := range p {
			if p[j] <= 0 {
				return false
			}
			if j > 0 && p[j] < p[j-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The exact engine's impulse-response moments must agree with the O(N)
// path-tracing moment engine — two completely different algorithms.
func TestMomentsCrossCheck(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 25)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		ms, err := moments.Compute(tree, 3)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if !approx(s.Mean(i), ms.Elmore(i), 1e-7) {
				return false
			}
			if !approx(s.Mu2(i), ms.Mu2(i), 1e-6) {
				return false
			}
			if !approx(s.Mu3(i), ms.Mu3(i), 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// THE PAPER'S THEOREM: mode <= median <= mean (Elmore) at every node.
func TestTheoremModeMedianMean(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 25)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			median, err := s.Delay50Step(i)
			if err != nil {
				return false
			}
			mode := s.Mode(i)
			mean := s.Mean(i)
			if mode > median*(1+1e-9) {
				return false
			}
			if median > mean*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Corollary 1: max(mu - sigma, 0) <= median.
func TestCorollary1LowerBound(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 25)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			median, err := s.Delay50Step(i)
			if err != nil {
				return false
			}
			lower := s.Mean(i) - math.Sqrt(s.Mu2(i))
			if lower < 0 {
				lower = 0
			}
			if lower > median*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Lemma 1, robust part: impulse responses are nonnegative and step
// responses are monotone on arbitrary random trees.
func TestLemma1NonNegativeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 20)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		horizon := s.Horizon(0)
		for i := 0; i < tree.N(); i++ {
			h, err := s.ImpulseWaveform(i, horizon, 800)
			if err != nil {
				return false
			}
			if !h.IsNonNegative(1e-9) {
				return false
			}
			v, err := s.StepWaveform(i, horizon, 800)
			if err != nil {
				return false
			}
			if !v.IsMonotoneNonDecreasing(1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Lemma 1, unimodality: holds on uniform-element topologies (the
// regime covered by the Protonotarios-Wing convolution result the
// paper cites). See TestLemma1UnimodalityCounterexample for why this
// is NOT asserted on arbitrary random trees.
func TestLemma1UnimodalUniformTopologies(t *testing.T) {
	trees := []*rctree.Tree{
		topo.Fig1Tree(),
		topo.Line25Tree(),
		topo.Chain(40, 50, 20e-15),
		topo.Star(4, 6, 100, 10e-15),
		topo.Balanced(4, 2, 80, 15e-15),
	}
	for ti, tree := range trees {
		s, err := NewSystem(tree)
		if err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		horizon := s.Horizon(0)
		for i := 0; i < tree.N(); i++ {
			h, err := s.ImpulseWaveform(i, horizon, 1500)
			if err != nil {
				t.Fatal(err)
			}
			if !h.IsUnimodal(1e-9) {
				t.Errorf("tree %d node %s: impulse response not unimodal", ti, tree.Name(i))
			}
		}
	}
}

// A pinned counterexample to Lemma 1 as stated: on this random tree
// (element values spanning several decades), the exact impulse response
// at node 5 is genuinely bimodal — a fast local peak, a dip, then a
// slower hump — confirmed here against the independent MNA transient
// simulator. The gap in the paper's argument is known: the convolution
// of two unimodal positive functions need not be unimodal in general.
// Crucially, the paper's *headline* result survives: the mode, median
// and mean still satisfy mode <= median <= mean at every node (checked
// exhaustively across thousands of random trees elsewhere in this
// suite), so the Elmore bound itself stands.
func TestLemma1UnimodalityCounterexample(t *testing.T) {
	const seed = int64(-5850864005629566749)
	tree := topo.RandomSmall(seed, 20)
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	const node = 5
	// The dip: h(2e-11) > h(6.5e-11) < h(2.5e-10) — bimodal.
	h1 := s.Impulse(node, 2e-11)
	h2 := s.Impulse(node, 6.5e-11)
	h3 := s.Impulse(node, 2.5e-10)
	if !(h1 > h2*1.05 && h3 > h2*1.05) {
		t.Fatalf("expected bimodal dip, got h=%v, %v, %v", h1, h2, h3)
	}
	// Confirm against the simulator (independent formulation).
	res, err := sim.Run(tree, sim.Options{TEnd: 4e-10, DT: 1e-13, Probes: []int{node}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(node)
	if err != nil {
		t.Fatal(err)
	}
	d := w.Derivative()
	for _, tt := range []float64{2e-11, 6.5e-11, 2.5e-10} {
		if !approx(d.At(tt), s.Impulse(node, tt), 1e-3) {
			t.Fatalf("engines disagree at t=%v: sim %v vs exact %v", tt, d.At(tt), s.Impulse(node, tt))
		}
	}
	// The Theorem's ordering still holds at every node of this tree.
	for i := 0; i < tree.N(); i++ {
		med, err := s.Delay50Step(i)
		if err != nil {
			t.Fatal(err)
		}
		if s.Mode(i) > med*(1+1e-9) || med > s.Mean(i)*(1+1e-9) {
			t.Fatalf("node %d: mode/median/mean ordering violated", i)
		}
	}
}

func TestCrossStepErrors(t *testing.T) {
	s := singleRC(t, 1000, 1e-12)
	if _, err := s.CrossStep(0, 0); err == nil {
		t.Errorf("level 0 should error")
	}
	if _, err := s.CrossStep(0, 1); err == nil {
		t.Errorf("level 1 should error")
	}
	if _, err := s.RiseTimeStep(0, 0.9, 0.1); err == nil {
		t.Errorf("inverted levels should error")
	}
}

func TestStepIntegralMatchesQuadrature(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	T := 2e-9
	// Trapezoid integral of VStep vs closed form.
	const n = 200000
	var sum float64
	dt := T / n
	prev := s.VStep(i, 0)
	for k := 1; k <= n; k++ {
		cur := s.VStep(i, float64(k)*dt)
		sum += 0.5 * (prev + cur) * dt
		prev = cur
	}
	if got := s.StepIntegral(i, T); !approx(got, sum, 1e-6) {
		t.Errorf("StepIntegral = %v, quadrature = %v", got, sum)
	}
	if got := s.StepIntegral(i, -1); got != 0 {
		t.Errorf("StepIntegral(-1) = %v, want 0", got)
	}
}

// Symmetric topologies produce repeated eigenvalues — a classic stress
// for Jacobi-based engines. A perfectly balanced tree's responses must
// still match the independent simulator, and identical branches must
// produce identical node responses.
func TestDegenerateSpectrumSymmetricTree(t *testing.T) {
	tree := topo.Balanced(4, 3, 120, 15e-15) // 1+3+9+27 = 40 nodes, heavy symmetry
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Residue DC sums still exact.
	for i := 0; i < tree.N(); i++ {
		var sum float64
		for _, c := range s.Residues(i) {
			sum += c
		}
		if !approx(sum, 1, 1e-8) {
			t.Fatalf("node %d: residue sum %v", i, sum)
		}
	}
	// All leaves are electrically identical: equal delays.
	leaves := tree.Leaves()
	d0, err := s.Delay50Step(leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaves[1:] {
		d, err := s.Delay50Step(l)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(d, d0, 1e-9) {
			t.Fatalf("leaf %s delay %v != %v", tree.Name(l), d, d0)
		}
	}
	// Cross-check one waveform against the simulator.
	res, err := sim.Run(tree, sim.Options{Probes: []int{leaves[0]}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(leaves[0])
	if err != nil {
		t.Fatal(err)
	}
	horizon := s.Horizon(0)
	for _, frac := range []float64{0.05, 0.2, 0.5} {
		tt := frac * horizon
		if !approx(w.At(tt), s.VStep(leaves[0], tt), 1e-3) {
			t.Fatalf("t=%v: sim %v vs exact %v", tt, w.At(tt), s.VStep(leaves[0], tt))
		}
	}
}
