package exact

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func TestVPWLTinyRampMatchesStep(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	p, err := signal.ToPWL(signal.SaturatedRamp{Tr: 1e-15}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2e-9, 0.5e-9, 1e-9, 2e-9} {
		step := s.VStep(i, tt)
		ramp := s.VPWL(i, p, tt)
		if !approx(step, ramp, 1e-5) {
			t.Errorf("t=%v: step %v vs tiny-ramp %v", tt, step, ramp)
		}
	}
}

func TestRampDelayConvergesToElmore(t *testing.T) {
	// Corollary 3: as the rise time grows, the 50% delay approaches the
	// Elmore delay from below, monotonically.
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		td := s.Mean(i)
		prev := -math.MaxFloat64
		for _, tr := range []float64{0.1e-9, 0.3e-9, 1e-9, 3e-9, 10e-9, 30e-9, 100e-9} {
			d, err := s.Delay(i, signal.SaturatedRamp{Tr: tr}, 0)
			if err != nil {
				t.Fatalf("%s tr=%v: %v", name, tr, err)
			}
			if d > td*(1+1e-9) {
				t.Errorf("%s tr=%v: delay %v exceeds Elmore %v", name, tr, d, td)
			}
			if d < prev*(1-1e-9) {
				t.Errorf("%s tr=%v: delay %v not monotone (prev %v)", name, tr, d, prev)
			}
			prev = d
		}
		// At tr = 100ns (much larger than any time constant) the delay
		// must be within 1% of the Elmore value.
		if !approx(prev, td, 1e-2) {
			t.Errorf("%s: delay at huge rise time %v, want ~%v", name, prev, td)
		}
	}
}

// Corollary 2: the Elmore delay bounds the 50% delay for every
// unimodal-derivative input, not just steps — on random trees with
// random rise times.
func TestCorollary2RampBound(t *testing.T) {
	f := func(seed int64, trRaw uint16) bool {
		tree := topo.RandomSmall(seed, 15)
		s, err := NewSystem(tree)
		if err != nil {
			return false
		}
		td := moments.ElmoreDelays(tree)
		// Rise time spanning far below to far above the circuit scale.
		tr := s.SlowestTimeConstant() * math.Pow(10, float64(trRaw%7)-3)
		for i := 0; i < tree.N(); i++ {
			d, err := s.Delay(i, signal.SaturatedRamp{Tr: tr}, 0)
			if err != nil {
				return false
			}
			if d > td[i]*(1+1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRaisedCosineDelayBounded(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	td := s.Mean(i)
	for _, tr := range []float64{0.5e-9, 2e-9, 8e-9} {
		d, err := s.Delay(i, signal.RaisedCosine{Tr: tr}, 512)
		if err != nil {
			t.Fatal(err)
		}
		if d > td*(1+1e-6) || d <= 0 {
			t.Errorf("raised-cosine tr=%v: delay %v vs Elmore %v", tr, d, td)
		}
	}
}

func TestDelayStepEqualsDelay50(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C7")
	d1, err := s.Delay(i, signal.Step{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Delay50Step(i)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("Delay(step) = %v != Delay50Step = %v", d1, d2)
	}
}

// Paper eq. 48: the area between input and output equals the Elmore
// delay, independent of the input rise time.
func TestAreaRuleEq48(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		td := s.Mean(i)
		for _, tr := range []float64{0.2e-9, 1e-9, 5e-9} {
			p, err := signal.ToPWL(signal.SaturatedRamp{Tr: tr}, 2)
			if err != nil {
				t.Fatal(err)
			}
			area := s.AreaBetween(i, p)
			if !approx(area, td, 5e-3) {
				t.Errorf("%s tr=%v: area %v, want T_D %v", name, tr, area, td)
			}
		}
	}
}

func TestCrossPWLErrors(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	p, err := signal.ToPWL(signal.SaturatedRamp{Tr: 1e-9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CrossPWL(0, p, 0); err == nil {
		t.Errorf("level 0 should error")
	}
	if _, err := s.CrossPWL(0, p, 1.5); err == nil {
		t.Errorf("level > 1 should error")
	}
}

func TestDelayRejectsSteplikePWLConversion(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential converts via sampling; should succeed.
	if _, err := s.Delay(0, signal.Exponential{Tau: 1e-9}, 128); err != nil {
		t.Errorf("exponential input should work: %v", err)
	}
}

func TestHorizonCoversSettling(t *testing.T) {
	tree := topo.Line25Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Horizon(0)
	for i := 0; i < tree.N(); i++ {
		if v := s.VStep(i, h); v < 0.999 {
			t.Fatalf("node %d not settled at horizon: v=%v", i, v)
		}
	}
}

// The delay error (T_D - delay)/delay shrinks with distance from the
// driving point along the 25-node line (Section IV-B / Fig. 14).
func TestErrorShrinksDownstream(t *testing.T) {
	tree := topo.Line25Tree()
	s, err := NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	a := tree.MustIndex(topo.Line25NodeA)
	b := tree.MustIndex(topo.Line25NodeB)
	c := tree.MustIndex(topo.Line25NodeC)
	relErr := func(i int) float64 {
		d, err := s.Delay(i, signal.SaturatedRamp{Tr: 1e-9}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(d-s.Mean(i)) / d
	}
	ea, eb, ec := relErr(a), relErr(b), relErr(c)
	if !(ea > eb && eb > ec) {
		t.Errorf("relative error should shrink downstream: A=%v B=%v C=%v", ea, eb, ec)
	}
}
