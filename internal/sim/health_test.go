package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"elmore/internal/health"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func installHealth(t *testing.T, strict bool) (*health.Monitor, *strings.Builder, *telemetry.Registry) {
	t.Helper()
	var sb strings.Builder
	m := health.New(&sb, strict)
	prevM := health.SetDefault(m)
	reg := telemetry.NewRegistry()
	prevR := telemetry.SetDefault(reg)
	t.Cleanup(func() {
		health.SetDefault(prevM)
		telemetry.SetDefault(prevR)
	})
	return m, &sb, reg
}

// checkFinalState is the one sentinel on the integrated waveforms:
// poison anywhere upstream propagates into the final state vector, so
// seeding the state directly exercises exactly what a poisoned run
// would leave behind.
func TestCheckFinalStatePoisoned(t *testing.T) {
	m, sb, reg := installHealth(t, false)
	plan, err := NewPlan(topo.Fig1Tree(), PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Runner()
	r.v[2] = math.NaN()
	r.v[3] = math.Inf(1)
	if err := r.checkFinalState(); err != nil {
		t.Fatalf("non-strict monitor must not fail the run: %v", err)
	}
	if got := reg.Counter("health.sim.nonfinite_state").Value(); got != 1 {
		t.Errorf("health.sim.nonfinite_state = %d, want 1", got)
	}
	if m.Violations() != 1 {
		t.Errorf("violations = %d, want 1 (one event per run, not per node)", m.Violations())
	}
	if !strings.Contains(sb.String(), "2 non-finite node voltages") {
		t.Errorf("event lacks poison count: %s", sb.String())
	}
}

func TestCheckFinalStateStrictFails(t *testing.T) {
	installHealth(t, true)
	plan, err := NewPlan(topo.Fig1Tree(), PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Runner()
	r.v[0] = math.NaN()
	var v *health.Violation
	if err := r.checkFinalState(); !errors.As(err, &v) {
		t.Fatalf("strict monitor must return *health.Violation, got %v", err)
	} else if v.Check != "sim.nonfinite_state" {
		t.Errorf("check = %q", v.Check)
	}
}

func TestRunCleanUnderStrict(t *testing.T) {
	m, _, _ := installHealth(t, true)
	plan, err := NewPlan(topo.Fig1Tree(), PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(nil, RunOptions{}); err != nil {
		t.Fatalf("healthy run failed under strict monitor: %v", err)
	}
	if m.Events() != 0 {
		t.Errorf("healthy run recorded %d events", m.Events())
	}
}

func TestCheckFinalStateDisabledMonitor(t *testing.T) {
	prev := health.SetDefault(nil)
	defer health.SetDefault(prev)
	plan, err := NewPlan(topo.Fig1Tree(), PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Runner()
	r.v[0] = math.NaN()
	if err := r.checkFinalState(); err != nil {
		t.Fatalf("disabled monitor must be inert: %v", err)
	}
}
