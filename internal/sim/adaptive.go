package sim

import (
	"context"
	"fmt"
	"math"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
)

// stepper advances the per-row θ-method by one fixed step; it owns the
// assembled matrices for one step size and can be rebuilt cheaply
// (O(N)) when the step changes — the property that makes adaptive
// stepping on trees inexpensive. All state vectors are in compiled
// index order.
type stepper struct {
	tree     *rctree.Tree
	cpl      *rctree.Compiled
	in       signal.Signal
	parallel bool
	theta    []float64
	omTheta  []float64
	g        []float64
	bvec     []float64
	dt       float64
	f        *treeLU
	// stamping workspaces, reused across refactorizations
	diag, rowChild, rowParent []float64
}

func newStepper(t *rctree.Tree, in signal.Signal, method Method) (*stepper, error) {
	var aMethod float64
	switch method {
	case Trapezoidal:
		aMethod = 0.5
	case BackwardEuler:
		aMethod = 1
	default:
		return nil, fmt.Errorf("sim: unknown method %v", method)
	}
	cpl := rctree.Compile(t)
	n := cpl.N()
	s := &stepper{
		tree:      t,
		cpl:       cpl,
		in:        in,
		parallel:  cpl.ParallelOK(),
		theta:     make([]float64, n),
		omTheta:   make([]float64, n),
		g:         make([]float64, n),
		bvec:      make([]float64, n),
		diag:      make([]float64, n),
		rowChild:  make([]float64, n),
		rowParent: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		if cpl.C[i] == 0 {
			s.theta[i] = 1
		} else {
			s.theta[i] = aMethod
		}
		s.omTheta[i] = 1 - s.theta[i]
		s.g[i] = 1 / cpl.R[i]
		if cpl.Parent[i] == rctree.Source {
			s.bvec[i] = s.g[i]
		}
	}
	return s, nil
}

// refactor assembles and factors the system matrix for step size dt.
func (s *stepper) refactor(dt float64) error {
	n := s.cpl.N()
	cOverDt := s.diag // reuse: stampCompiled overwrites diag anyway
	c := s.cpl.C
	for i := 0; i < n; i++ {
		cOverDt[i] = c[i] / dt
	}
	// cOverDt aliases diag; stampCompiled reads cOverDt[i] before
	// writing diag[i], and only at the same index, so the alias is safe.
	stampCompiled(s.cpl, s.theta, s.g, cOverDt, s.diag, s.rowChild, s.rowParent, s.parallel)
	f, err := factorCompiled(s.cpl, s.diag, s.rowChild, s.rowParent, s.tree.Name, s.parallel)
	if err != nil {
		return err
	}
	// factorCompiled retains rowChild; detach it so the next refactor
	// does not scribble over the factorization still in use.
	s.rowChild = make([]float64, n)
	s.f = f
	s.dt = dt
	return nil
}

// step advances v (compiled order) from tPrev by the factored dt; out
// receives the new state. v and out must be distinct slices.
func (s *stepper) step(v, out []float64, tPrev float64) {
	cpl := s.cpl
	n := cpl.N()
	cs, par, c := cpl.ChildStart, cpl.Parent, cpl.C
	g, bvec, theta, omTheta := s.g, s.bvec, s.theta, s.omTheta
	uPrev := s.in.Eval(tPrev)
	uCur := s.in.Eval(tPrev + s.dt)
	dt := s.dt
	for i := 0; i < n; i++ {
		var cur float64
		if pa := par[i]; pa != rctree.Source {
			cur = g[i] * (v[i] - v[pa])
		} else {
			cur = g[i] * v[i]
		}
		gv := cur
		for ch := cs[i]; ch < cs[i+1]; ch++ {
			gv -= g[ch] * (v[ch] - v[i])
		}
		uTerm := theta[i]*uCur + omTheta[i]*uPrev
		out[i] = c[i]/dt*v[i] - omTheta[i]*gv + bvec[i]*uTerm
	}
	s.f.solve(out, s.parallel)
}

// RunAdaptive integrates with step-doubling local error control: each
// accepted step compares one step of size h against two of h/2 and
// keeps the error per step below tol (in volts, on the unit-swing
// response). The step grows when the error is comfortably small and
// shrinks on rejection, so stiff fronts are resolved without paying
// their cost over the whole horizon. Probing and result layout match
// Run, but sample times are non-uniform.
//
// For stiff circuits (time constants spanning many decades) use
// Method: BackwardEuler — the trapezoidal rule does not damp modes
// with lambda*h >> 1, so at input discontinuities its step-doubling
// error stays O(1) until h shrinks to the fastest time constant, which
// may underflow the step floor.
func RunAdaptive(t *rctree.Tree, opts Options, tol float64) (*Result, error) {
	return RunAdaptiveContext(context.Background(), t, opts, tol)
}

// RunAdaptiveContext is RunAdaptive under a context, recording the run
// as a telemetry span (accepted steps, rejections, refactorizations)
// when a tracer is installed.
func RunAdaptiveContext(ctx context.Context, t *rctree.Tree, opts Options, tol float64) (*Result, error) {
	if tol <= 0 || math.IsNaN(tol) {
		return nil, fmt.Errorf("sim: adaptive tolerance must be positive, got %v", tol)
	}
	n := t.N()
	_, sp := telemetry.Start(ctx, "sim.run_adaptive")
	sp.AttrInt("nodes", int64(n))
	sp.AttrFloat("tol", tol)
	defer sp.End()
	in := opts.Input
	if in == nil {
		in = signal.Step{}
	}
	if err := signal.Validate(in); err != nil {
		return nil, err
	}
	tEnd := opts.TEnd
	if tEnd <= 0 {
		tEnd = defaultHorizon(t, in)
	}
	hInit := opts.DT
	if hInit <= 0 {
		hInit = tEnd / 4096
	}

	st, err := newStepper(t, in, opts.Method)
	if err != nil {
		return nil, err
	}
	fromUser := st.cpl.FromUser

	probes := opts.Probes
	if len(probes) == 0 {
		probes = make([]int, n)
		for i := range probes {
			probes[i] = i
		}
	}
	res := &Result{probes: make(map[int]int, len(probes)), values: make([][]float64, len(probes))}
	src := make([]int32, len(probes)) // row -> compiled index
	for row, node := range probes {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("sim: probe index %d out of range [0,%d)", node, n)
		}
		res.probes[node] = row
		src[row] = fromUser[node]
	}

	// State vectors live in compiled order; probes read through src.
	v := make([]float64, n)
	full := make([]float64, n)
	half := make([]float64, n)
	half2 := make([]float64, n)
	record := func(tm float64) {
		res.Times = append(res.Times, tm)
		for row := range probes {
			res.values[row] = append(res.values[row], v[src[row]])
		}
	}
	record(0)

	const (
		hMinFactor = 1e-15
		maxSteps   = 10_000_000
	)
	h := hInit
	now := 0.0
	steps := 0
	accepted, rejected, refactors := 0, 0, 0
	for now < tEnd {
		if steps++; steps > maxSteps {
			return nil, fmt.Errorf("sim: adaptive run exceeded %d steps (tolerance too tight?)", maxSteps)
		}
		if now+h > tEnd {
			h = tEnd - now
		}
		if h < tEnd*hMinFactor {
			return nil, fmt.Errorf("sim: adaptive step underflow at t=%g", now)
		}
		// One full step.
		if st.dt != h {
			if err := st.refactor(h); err != nil {
				return nil, err
			}
			refactors++
		}
		st.step(v, full, now)
		// Two half steps.
		if err := st.refactor(h / 2); err != nil {
			return nil, err
		}
		refactors++
		st.step(v, half, now)
		st.step(half, half2, now+h/2)

		errEst := 0.0
		for i := 0; i < n; i++ {
			if e := math.Abs(full[i] - half2[i]); e > errEst {
				errEst = e
			}
		}
		if errEst > tol {
			h /= 2
			rejected++
			continue
		}
		// Accept the more accurate half-step result.
		copy(v, half2)
		now += h
		record(now)
		accepted++
		if errEst < tol/8 {
			h *= 2
		}
	}
	sp.AttrInt("steps", int64(accepted))
	sp.AttrInt("rejections", int64(rejected))
	sp.AttrInt("refactorizations", int64(refactors))
	telemetry.C("sim.adaptive_runs").Inc()
	telemetry.C("sim.steps").Add(int64(accepted))
	telemetry.C("sim.adaptive_rejections").Add(int64(rejected))
	telemetry.C("sim.lu_factorizations").Add(int64(refactors))
	telemetry.G("sim.horizon_seconds").Set(tEnd)
	return res, nil
}
