package sim

import (
	"math"
	"testing"

	"elmore/internal/exact"
	"elmore/internal/topo"
)

// The trapezoidal rule is second order: halving dt should cut the
// error by ~4x (we accept >= 3x to allow for interpolation noise).
// Backward Euler is first order: halving dt cuts the error by ~2x.
func TestIntegrationOrderOfAccuracy(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	node := tree.MustIndex("C5")
	horizon := 4e-9
	times := []float64{0.5e-9, 1e-9, 2e-9, 3e-9}

	runErr := func(method Method, dt float64) float64 {
		res, err := Run(tree, Options{TEnd: horizon, DT: dt, Method: method, Probes: []int{node}})
		if err != nil {
			t.Fatal(err)
		}
		w, err := res.Waveform(node)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, tt := range times {
			if e := math.Abs(w.At(tt) - sys.VStep(node, tt)); e > worst {
				worst = e
			}
		}
		return worst
	}

	// Trapezoidal: order 2.
	coarse := runErr(Trapezoidal, 50e-12)
	fine := runErr(Trapezoidal, 25e-12)
	if ratio := coarse / fine; ratio < 3 {
		t.Errorf("trapezoidal refinement ratio %v, want ~4 (order 2)", ratio)
	}
	// Backward Euler: order 1.
	coarseBE := runErr(BackwardEuler, 50e-12)
	fineBE := runErr(BackwardEuler, 25e-12)
	if ratio := coarseBE / fineBE; ratio < 1.7 || ratio > 2.6 {
		t.Errorf("backward-Euler refinement ratio %v, want ~2 (order 1)", ratio)
	}
	// At equal dt, trapezoidal is more accurate than BE on this smooth
	// problem.
	if coarse > coarseBE {
		t.Errorf("trapezoidal (%v) should beat backward Euler (%v) at the same step", coarse, coarseBE)
	}
}

// Simulated 50% delays converge to the exact delay as dt shrinks.
func TestDelayConvergence(t *testing.T) {
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	node := tree.MustIndex(topo.Line25NodeC)
	want, err := sys.Delay50Step(node)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 8e-9
	prevErr := math.Inf(1)
	for _, dt := range []float64{100e-12, 25e-12, 6.25e-12} {
		res, err := Run(tree, Options{TEnd: horizon, DT: dt, Probes: []int{node}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Cross(node, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got - want)
		if e > prevErr*1.01 {
			t.Errorf("dt=%v: delay error %v did not shrink (prev %v)", dt, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 1e-13 {
		t.Errorf("finest-step delay error %v too large", prevErr)
	}
}
