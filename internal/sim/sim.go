// Package sim is a transient circuit simulator for RC trees: an MNA
// (modified nodal analysis) formulation integrated with the trapezoidal
// rule or backward Euler. The linear solve exploits the tree topology —
// eliminating in post-order produces zero fill-in, so every time step
// costs O(N). It scales to hundreds of thousands of nodes and serves as
// a ground truth that is independent of the eigen-decomposition engine
// in package exact (different formulation, different numerics).
//
// Nodes with zero capacitance (pure resistive junctions) contribute
// algebraic rows to the system. The trapezoidal rule is only marginally
// stable on algebraic constraints (it rings forever), so those rows are
// always integrated with the backward-Euler weight — a per-row
// θ-method. Rows with capacitance use the selected method.
//
// All kernels run on the compiled structure-of-arrays plan from
// rctree.Compile. One-shot runs go through Run; repeated runs over the
// same tree and step (characterization sweeps, batch verification)
// should build a Plan once and execute it many times — see Plan,
// Runner, and Runner.RunInto for the zero-allocation path.
package sim

import (
	"context"
	"fmt"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
	"elmore/internal/waveform"
)

// Method selects the integration rule for capacitive rows.
type Method int

const (
	// Trapezoidal is second-order accurate and A-stable; the default.
	Trapezoidal Method = iota
	// BackwardEuler is first-order, L-stable; it damps the trapezoidal
	// rule's ringing on stiff circuits at the cost of accuracy per step.
	BackwardEuler
)

func (m Method) String() string {
	switch m {
	case Trapezoidal:
		return "trapezoidal"
	case BackwardEuler:
		return "backward-euler"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	// Input is the source voltage waveform (default: unit step).
	Input signal.Signal
	// TEnd is the simulation horizon. If <= 0 a horizon is estimated
	// from the largest Elmore delay plus the input rise time.
	TEnd float64
	// DT is the fixed time step. If <= 0, TEnd/4096 is used.
	DT float64
	// Method selects the integrator (default Trapezoidal).
	Method Method
	// Probes lists the node indices to record. Empty records all nodes.
	Probes []int
}

// Result holds the sampled node voltages of a transient run. A Result
// is not safe for concurrent use: Cross and Waveform build and memoize
// per-node waveforms on first access.
type Result struct {
	Times  []float64
	probes map[int]int          // node index -> row in values
	values [][]float64          // values[row][step]
	srcRow []int32              // row -> compiled index sampled by plan runs
	wfs    []*waveform.Waveform // row -> lazily built waveform (Cross cache)
}

// Voltages returns the recorded samples for a probed node (the slice is
// owned by the result).
func (r *Result) Voltages(node int) ([]float64, error) {
	row, ok := r.probes[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %d was not probed", node)
	}
	return r.values[row], nil
}

// waveformRow returns the memoized waveform for a probe row, building
// it on first access. Repeated Cross/Waveform calls on the same node
// reuse the one monotone-time validation and sample copy.
func (r *Result) waveformRow(node int) (*waveform.Waveform, error) {
	row, ok := r.probes[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %d was not probed", node)
	}
	if r.wfs == nil {
		r.wfs = make([]*waveform.Waveform, len(r.values))
	}
	if w := r.wfs[row]; w != nil {
		return w, nil
	}
	w, err := waveform.New(r.Times, r.values[row])
	if err != nil {
		return nil, err
	}
	r.wfs[row] = w
	return w, nil
}

// Waveform returns the recorded response at a probed node. The
// waveform is built once per node and shared between calls (and with
// Cross); treat it as read-only.
func (r *Result) Waveform(node int) (*waveform.Waveform, error) {
	return r.waveformRow(node)
}

// Cross returns the first time a probed node's sampled waveform
// reaches the level in the upward direction, linearly interpolated
// between samples. The node's waveform is built lazily on the first
// call and reused by subsequent calls, so sweeping many levels over
// one node costs one waveform construction.
//
// Error contract:
//   - a node that was not probed returns an error immediately;
//   - a level the waveform never reaches within the simulated horizon
//     returns an error mentioning the node and level — callers should
//     treat it as "extend TEnd or lower the level", not as a fault;
//   - a level at or below the initial sample is "crossed at t = 0":
//     Cross returns the first sample time (0 for Run results) and a
//     nil error;
//   - on a non-monotone waveform the first upward crossing is
//     returned, even if the waveform later falls back below the level;
//     later crossings are not reported.
func (r *Result) Cross(node int, level float64) (float64, error) {
	w, err := r.waveformRow(node)
	if err != nil {
		return 0, err
	}
	x, ok := w.Cross(level)
	if !ok {
		return 0, fmt.Errorf("sim: node %d never crosses %v within the horizon", node, level)
	}
	return x, nil
}

// Run integrates the tree's node equations over [0, TEnd].
func Run(t *rctree.Tree, opts Options) (*Result, error) {
	return RunContext(context.Background(), t, opts)
}

// RunContext is Run under a context: with a telemetry tracer installed
// the run is recorded as a span (node count, step count, dt, method),
// and step/factorization counts and the horizon flow into the metrics
// registry. With telemetry disabled the overhead is a few nil checks.
//
// RunContext builds a one-shot Plan (compile + stamp + factor) and
// executes it. Callers that simulate the same tree with the same step
// repeatedly should hold a Plan instead and amortize that setup.
func RunContext(ctx context.Context, t *rctree.Tree, opts Options) (*Result, error) {
	n := t.N()
	_, sp := telemetry.Start(ctx, "sim.run")
	sp.AttrInt("nodes", int64(n))
	sp.AttrString("method", opts.Method.String())
	defer sp.End()
	in := opts.Input
	if in == nil {
		in = signal.Step{}
	}
	if err := signal.Validate(in); err != nil {
		return nil, err
	}
	tEnd := opts.TEnd
	if tEnd <= 0 {
		tEnd = defaultHorizon(t, in)
	}
	dt := opts.DT
	if dt <= 0 {
		dt = tEnd / 4096
	}
	p, err := NewPlan(t, PlanOptions{DT: dt, Method: opts.Method})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if err := p.Runner().RunInto(in, RunOptions{TEnd: tEnd, Probes: opts.Probes}, res); err != nil {
		return nil, err
	}
	steps := len(res.Times) - 1
	sp.AttrInt("steps", int64(steps))
	sp.AttrFloat("dt_seconds", dt)
	telemetry.C("sim.runs").Inc()
	telemetry.G("sim.horizon_seconds").Set(tEnd)
	telemetry.Default().Histogram("sim.steps_per_run", stepsBuckets).Observe(float64(steps))
	return res, nil
}

// stepsBuckets are the histogram bounds for per-run step counts.
var stepsBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536}

// defaultHorizon estimates a settling horizon: ten times the largest
// Elmore delay (a conservative multiple of the dominant time constant)
// plus the input rise time.
func defaultHorizon(t *rctree.Tree, in signal.Signal) float64 {
	return 10*maxElmore(rctree.Compile(t)) + 2*in.RiseTime()
}
