// Package sim is a transient circuit simulator for RC trees: an MNA
// (modified nodal analysis) formulation integrated with the trapezoidal
// rule or backward Euler. The linear solve exploits the tree topology —
// eliminating in post-order produces zero fill-in, so every time step
// costs O(N). It scales to hundreds of thousands of nodes and serves as
// a ground truth that is independent of the eigen-decomposition engine
// in package exact (different formulation, different numerics).
//
// Nodes with zero capacitance (pure resistive junctions) contribute
// algebraic rows to the system. The trapezoidal rule is only marginally
// stable on algebraic constraints (it rings forever), so those rows are
// always integrated with the backward-Euler weight — a per-row
// θ-method. Rows with capacitance use the selected method.
package sim

import (
	"context"
	"fmt"
	"math"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
	"elmore/internal/waveform"
)

// Method selects the integration rule for capacitive rows.
type Method int

const (
	// Trapezoidal is second-order accurate and A-stable; the default.
	Trapezoidal Method = iota
	// BackwardEuler is first-order, L-stable; it damps the trapezoidal
	// rule's ringing on stiff circuits at the cost of accuracy per step.
	BackwardEuler
)

func (m Method) String() string {
	switch m {
	case Trapezoidal:
		return "trapezoidal"
	case BackwardEuler:
		return "backward-euler"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	// Input is the source voltage waveform (default: unit step).
	Input signal.Signal
	// TEnd is the simulation horizon. If <= 0 a horizon is estimated
	// from the largest Elmore delay plus the input rise time.
	TEnd float64
	// DT is the fixed time step. If <= 0, TEnd/4096 is used.
	DT float64
	// Method selects the integrator (default Trapezoidal).
	Method Method
	// Probes lists the node indices to record. Empty records all nodes.
	Probes []int
}

// Result holds the sampled node voltages of a transient run.
type Result struct {
	Times  []float64
	probes map[int]int // node index -> row in values
	values [][]float64 // values[row][step]
}

// Voltages returns the recorded samples for a probed node (the slice is
// owned by the result).
func (r *Result) Voltages(node int) ([]float64, error) {
	row, ok := r.probes[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %d was not probed", node)
	}
	return r.values[row], nil
}

// Waveform returns the recorded response at a probed node.
func (r *Result) Waveform(node int) (*waveform.Waveform, error) {
	v, err := r.Voltages(node)
	if err != nil {
		return nil, err
	}
	return waveform.New(r.Times, v)
}

// Cross returns the first time a probed node's sampled waveform
// reaches the level in the upward direction, linearly interpolated
// between samples.
//
// Error contract:
//   - a node that was not probed returns an error immediately;
//   - a level the waveform never reaches within the simulated horizon
//     returns an error mentioning the node and level — callers should
//     treat it as "extend TEnd or lower the level", not as a fault;
//   - a level at or below the initial sample is "crossed at t = 0":
//     Cross returns the first sample time (0 for Run results) and a
//     nil error;
//   - on a non-monotone waveform the first upward crossing is
//     returned, even if the waveform later falls back below the level;
//     later crossings are not reported.
func (r *Result) Cross(node int, level float64) (float64, error) {
	v, err := r.Voltages(node)
	if err != nil {
		return 0, err
	}
	w, err := waveform.New(r.Times, v)
	if err != nil {
		return 0, err
	}
	x, ok := w.Cross(level)
	if !ok {
		return 0, fmt.Errorf("sim: node %d never crosses %v within the horizon", node, level)
	}
	return x, nil
}

// treeLU is the zero-fill-in LU factorization of a (possibly
// asymmetric) matrix with the tree's sparsity: a diagonal plus, for
// every node i with parent p, the entries M[i][p] (rowChildCoef) and
// M[p][i] (rowParentCoef). Eliminating children before parents
// (post-order) touches only the parent's diagonal, so there is no
// fill-in and no pivoting — safe for the diagonally dominant M-matrices
// produced by MNA stamping.
type treeLU struct {
	tree *rctree.Tree
	d    []float64 // eliminated pivots
	mult []float64 // per-child multiplier: M[p][i] / d[i]
	cp   []float64 // original M[i][parent] entries
}

func factorTree(t *rctree.Tree, diag, rowChildCoef, rowParentCoef []float64) (*treeLU, error) {
	n := t.N()
	f := &treeLU{
		tree: t,
		d:    append([]float64(nil), diag...),
		mult: make([]float64, n),
		cp:   rowChildCoef,
	}
	for _, i := range t.PostOrder() {
		if f.d[i] <= 0 {
			return nil, fmt.Errorf("sim: non-positive pivot %g at node %q", f.d[i], t.Name(i))
		}
		if p := t.Parent(i); p != rctree.Source {
			f.mult[i] = rowParentCoef[i] / f.d[i]
			f.d[p] -= f.mult[i] * rowChildCoef[i]
		}
	}
	return f, nil
}

// solve solves M x = rhs in place (rhs is overwritten with x).
func (f *treeLU) solve(rhs []float64) {
	t := f.tree
	// Forward elimination in post-order.
	for _, i := range t.PostOrder() {
		if p := t.Parent(i); p != rctree.Source {
			rhs[p] -= f.mult[i] * rhs[i]
		}
	}
	// Back substitution in pre-order: each child row still couples to
	// its parent's (already computed) solution.
	for _, i := range t.PreOrder() {
		x := rhs[i]
		if p := t.Parent(i); p != rctree.Source {
			x -= f.cp[i] * rhs[p]
		}
		rhs[i] = x / f.d[i]
	}
}

// Run integrates the tree's node equations over [0, TEnd].
func Run(t *rctree.Tree, opts Options) (*Result, error) {
	return RunContext(context.Background(), t, opts)
}

// RunContext is Run under a context: with a telemetry tracer installed
// the run is recorded as a span (node count, step count, dt, method),
// and step/factorization counts and the horizon flow into the metrics
// registry. With telemetry disabled the overhead is a few nil checks.
func RunContext(ctx context.Context, t *rctree.Tree, opts Options) (*Result, error) {
	n := t.N()
	_, sp := telemetry.Start(ctx, "sim.run")
	sp.AttrInt("nodes", int64(n))
	sp.AttrString("method", opts.Method.String())
	defer sp.End()
	in := opts.Input
	if in == nil {
		in = signal.Step{}
	}
	if err := signal.Validate(in); err != nil {
		return nil, err
	}
	tEnd := opts.TEnd
	if tEnd <= 0 {
		tEnd = defaultHorizon(t, in)
	}
	dt := opts.DT
	if dt <= 0 {
		dt = tEnd / 4096
	}
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("sim: invalid time step %v", dt)
	}
	// The 1e-9 slack absorbs float division noise (20ns/10ps must be
	// 2000 steps, not 2001).
	steps := int(math.Ceil(tEnd/dt - 1e-9))
	if steps < 1 {
		return nil, fmt.Errorf("sim: horizon %v shorter than step %v", tEnd, dt)
	}
	sp.AttrInt("steps", int64(steps))
	sp.AttrFloat("dt_seconds", dt)

	// Per-row θ-method: row i solves
	//   C_i/dt v' + θ_i (G v')_i = C_i/dt v - (1-θ_i)(G v)_i + b_i u_i
	// with u_i = θ_i u(t') + (1-θ_i) u(t). Capacitive rows use the
	// selected method's weight; zero-capacitance rows always use θ = 1.
	var aMethod float64
	switch opts.Method {
	case Trapezoidal:
		aMethod = 0.5
	case BackwardEuler:
		aMethod = 1
	default:
		return nil, fmt.Errorf("sim: unknown method %v", opts.Method)
	}
	theta := make([]float64, n)
	for i := 0; i < n; i++ {
		if t.C(i) == 0 {
			theta[i] = 1
		} else {
			theta[i] = aMethod
		}
	}

	// Assemble the tree-sparse system matrix.
	g := make([]float64, n) // series conductance of each node's resistor
	diag := make([]float64, n)
	rowChild := make([]float64, n)  // M[i][parent(i)]
	rowParent := make([]float64, n) // M[parent(i)][i]
	bvec := make([]float64, n)      // source coupling
	for i := 0; i < n; i++ {
		g[i] = 1 / t.R(i)
		diag[i] += t.C(i)/dt + theta[i]*g[i]
		if p := t.Parent(i); p != rctree.Source {
			diag[p] += theta[p] * g[i]
			rowChild[i] = -theta[i] * g[i]
			rowParent[i] = -theta[p] * g[i]
		} else {
			bvec[i] = g[i]
		}
	}
	f, err := factorTree(t, diag, rowChild, rowParent)
	if err != nil {
		return nil, err
	}

	probes := opts.Probes
	if len(probes) == 0 {
		probes = make([]int, n)
		for i := range probes {
			probes[i] = i
		}
	}
	res := &Result{
		Times:  make([]float64, steps+1),
		probes: make(map[int]int, len(probes)),
		values: make([][]float64, len(probes)),
	}
	for row, node := range probes {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("sim: probe index %d out of range [0,%d)", node, n)
		}
		res.probes[node] = row
		res.values[row] = make([]float64, steps+1)
	}

	v := make([]float64, n)   // current node voltages (start relaxed at 0)
	gv := make([]float64, n)  // G*v workspace
	rhs := make([]float64, n) // RHS / solution workspace
	record := func(step int) {
		for row, node := range probes {
			res.values[row][step] = v[node]
		}
	}
	record(0)

	for step := 1; step <= steps; step++ {
		tPrev := float64(step-1) * dt
		tCur := float64(step) * dt
		res.Times[step] = tCur

		// gv = G * v (tree-sparse matvec).
		for i := range gv {
			gv[i] = 0
		}
		for i := 0; i < n; i++ {
			if p := t.Parent(i); p != rctree.Source {
				cur := g[i] * (v[i] - v[p])
				gv[i] += cur
				gv[p] -= cur
			} else {
				gv[i] += g[i] * v[i]
			}
		}
		uPrev := in.Eval(tPrev)
		uCur := in.Eval(tCur)
		for i := 0; i < n; i++ {
			uTerm := theta[i]*uCur + (1-theta[i])*uPrev
			rhs[i] = t.C(i)/dt*v[i] - (1-theta[i])*gv[i] + bvec[i]*uTerm
		}
		f.solve(rhs)
		copy(v, rhs)
		record(step)
	}
	for step := 0; step <= steps; step++ {
		res.Times[step] = float64(step) * dt
	}
	telemetry.C("sim.runs").Inc()
	telemetry.C("sim.steps").Add(int64(steps))
	telemetry.C("sim.lu_factorizations").Inc()
	telemetry.G("sim.horizon_seconds").Set(tEnd)
	telemetry.Default().Histogram("sim.steps_per_run", stepsBuckets).Observe(float64(steps))
	return res, nil
}

// stepsBuckets are the histogram bounds for per-run step counts.
var stepsBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536}

// defaultHorizon estimates a settling horizon: ten times the largest
// Elmore delay (a conservative multiple of the dominant time constant)
// plus the input rise time.
func defaultHorizon(t *rctree.Tree, in signal.Signal) float64 {
	maxTD := 0.0
	down := t.DownstreamC()
	td := make([]float64, t.N())
	for _, i := range t.PreOrder() {
		parent := 0.0
		if p := t.Parent(i); p != rctree.Source {
			parent = td[p]
		}
		td[i] = parent + t.R(i)*down[i]
		if td[i] > maxTD {
			maxTD = td[i]
		}
	}
	return 10*maxTD + 2*in.RiseTime()
}
