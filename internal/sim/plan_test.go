package sim

import (
	"strings"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

// A plan run must reproduce sim.Run exactly: Run is now a one-shot
// plan execution, and the compiled kernels are bit-identical to the
// historical user-order sweeps.
func TestPlanMatchesRun(t *testing.T) {
	trees := map[string]*rctree.Tree{
		"fig1":     topo.Fig1Tree(),
		"line25":   topo.Line25Tree(),
		"random1k": topo.Random(9, topo.RandomOptions{N: 1000}),
		"star":     topo.Star(40, 5, 50, 2e-14),
	}
	in := signal.SaturatedRamp{Tr: 0.3e-9}
	for name, tree := range trees {
		t.Run(name, func(t *testing.T) {
			probe := tree.N() - 1
			opts := Options{Input: in, Probes: []int{0, probe}}
			want, err := Run(tree, opts)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewPlan(tree, PlanOptions{DT: want.Times[1] - want.Times[0]})
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Run(in, RunOptions{TEnd: want.Times[len(want.Times)-1], Probes: []int{0, probe}})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Times) != len(want.Times) {
				t.Fatalf("steps: plan %d, run %d", len(got.Times), len(want.Times))
			}
			for _, node := range []int{0, probe} {
				gv, _ := got.Voltages(node)
				wv, _ := want.Voltages(node)
				for s := range wv {
					if gv[s] != wv[s] {
						t.Fatalf("node %d step %d: plan %v != run %v", node, s, gv[s], wv[s])
					}
				}
			}
		})
	}
}

// The forced level-parallel execution must be bit-identical to the
// serial sweep: the stamping and both solver passes are gather-form.
func TestPlanParallelBitIdentical(t *testing.T) {
	for name, tree := range map[string]*rctree.Tree{
		"random2k": topo.Random(11, topo.RandomOptions{N: 2000}),
		"star":     topo.Star(500, 4, 60, 1e-14),
	} {
		t.Run(name, func(t *testing.T) {
			mk := func(parallel bool) *Result {
				plan, err := NewPlan(tree, PlanOptions{DT: 1e-12, Method: BackwardEuler})
				if err != nil {
					t.Fatal(err)
				}
				plan.parallel = parallel
				res, err := plan.Run(nil, RunOptions{TEnd: 200e-12})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, par := mk(false), mk(true)
			for node := 0; node < tree.N(); node++ {
				sv, _ := serial.Voltages(node)
				pv, _ := par.Voltages(node)
				for s := range sv {
					if sv[s] != pv[s] {
						t.Fatalf("node %d step %d: serial %v != parallel %v", node, s, sv[s], pv[s])
					}
				}
			}
		})
	}
}

// One Runner recycling one Result must not allocate in steady state —
// the contract that makes plan-driven characterization sweeps cheap.
func TestRunIntoZeroAllocSteadyState(t *testing.T) {
	tree := topo.Chain(400, 1, 1e-15)
	plan, err := NewPlan(tree, PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.parallel {
		t.Skip("parallel execution allocates goroutines by design")
	}
	r := plan.Runner()
	res := &Result{}
	opts := RunOptions{TEnd: 100e-12, Probes: []int{399}}
	in := signal.Step{}
	// Warm up: first call sizes the buffers (and telemetry counters).
	if err := r.RunInto(in, opts, res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := r.RunInto(in, opts, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunInto steady state allocated %v objects per run, want 0", allocs)
	}
}

// Re-running into a Result must invalidate its cached waveforms, and
// repeated Cross calls must agree with each other and with a fresh
// computation.
func TestCrossCachedAndInvalidated(t *testing.T) {
	tree := topo.Fig1Tree()
	plan, err := NewPlan(tree, PlanOptions{DT: 5e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Runner()
	res := &Result{}
	probe, _ := tree.Index("C5")
	opts := RunOptions{Probes: []int{probe}}
	if err := r.RunInto(signal.Step{}, opts, res); err != nil {
		t.Fatal(err)
	}
	first, err := res.Cross(probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		again, err := res.Cross(probe, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("repeated Cross diverged: %v then %v", first, again)
		}
	}
	w1, err := res.Waveform(probe)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := res.Waveform(probe)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("Waveform rebuilt instead of reusing the cached one")
	}
	// A slower input through the same Result must not see stale
	// waveforms.
	if err := r.RunInto(signal.SaturatedRamp{Tr: 2e-9}, opts, res); err != nil {
		t.Fatal(err)
	}
	slower, err := res.Cross(probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if slower <= first {
		t.Fatalf("stale waveform cache: ramp cross %v not after step cross %v", slower, first)
	}
}

// A plan snapshots element values; errors surface with Run-compatible
// messages.
func TestPlanErrors(t *testing.T) {
	tree := topo.Fig1Tree()
	if _, err := NewPlan(tree, PlanOptions{DT: 0}); err == nil ||
		!strings.Contains(err.Error(), "invalid time step") {
		t.Fatalf("DT=0: %v", err)
	}
	if _, err := NewPlan(tree, PlanOptions{DT: 1e-12, Method: Method(7)}); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("bad method: %v", err)
	}
	plan, err := NewPlan(tree, PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(nil, RunOptions{Probes: []int{99}}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad probe: %v", err)
	}
	if _, err := plan.Run(nil, RunOptions{TEnd: 1e-22}); err == nil ||
		!strings.Contains(err.Error(), "shorter than step") {
		t.Fatalf("short horizon: %v", err)
	}
}

// Result buffers shrink-reuse correctly: a second run with more probes
// and more steps regrows, a third with fewer reuses.
func TestRunIntoResize(t *testing.T) {
	tree := topo.Chain(50, 1, 1e-15)
	plan, err := NewPlan(tree, PlanOptions{DT: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Runner()
	res := &Result{}
	for _, cfg := range []RunOptions{
		{TEnd: 50e-12, Probes: []int{49}},
		{TEnd: 150e-12}, // all nodes, more steps
		{TEnd: 30e-12, Probes: []int{0, 10}},
	} {
		if err := r.RunInto(signal.Step{}, cfg, res); err != nil {
			t.Fatal(err)
		}
		rows := len(cfg.Probes)
		if rows == 0 {
			rows = tree.N()
		}
		if len(res.values) != rows {
			t.Fatalf("rows = %d, want %d", len(res.values), rows)
		}
		wantSteps := int(cfg.TEnd/plan.DT()) + 1
		if len(res.Times) != wantSteps {
			t.Fatalf("samples = %d, want %d", len(res.Times), wantSteps)
		}
		// Fresh oracle for the same options must agree exactly.
		fresh, err := plan.Run(signal.Step{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		probes := cfg.Probes
		if len(probes) == 0 {
			for i := 0; i < tree.N(); i++ {
				probes = append(probes, i)
			}
		}
		for _, node := range probes {
			a, _ := res.Voltages(node)
			b, _ := fresh.Voltages(node)
			for s := range b {
				if a[s] != b[s] {
					t.Fatalf("node %d step %d: reused %v != fresh %v", node, s, a[s], b[s])
				}
			}
		}
	}
}
