package sim

import (
	"math/rand"
	"testing"

	"elmore/internal/linalg"
	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// The tree LDL^T solver must match a dense LU solve on the same matrix.
func TestTreeLDLMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tree := topo.RandomSmall(rng.Int63(), 25)
		n := tree.N()
		diag := make([]float64, n)
		offd := make([]float64, n)
		dense := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			diag[i] = 2 + rng.Float64()*3
		}
		for i := 0; i < n; i++ {
			if p := tree.Parent(i); p != rctree.Source {
				offd[i] = -(0.1 + rng.Float64()*0.4) // keep diagonally dominant
				dense.Set(i, p, offd[i])
				dense.Set(p, i, offd[i])
			}
		}
		for i := 0; i < n; i++ {
			dense.Set(i, i, diag[i])
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want, err := linalg.SolveLU(dense, rhs)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		f, err := factorTree(tree, diag, offd, offd)
		if err != nil {
			t.Fatalf("trial %d: factorTree: %v", trial, err)
		}
		got := append([]float64(nil), rhs...)
		f.solve(got)
		for i := range want {
			if !approx(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
