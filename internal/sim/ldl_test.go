package sim

import (
	"math/rand"
	"testing"

	"elmore/internal/linalg"
	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// The compiled tree solver must match a dense LU solve on the same
// matrix, through the user->compiled permutation and back.
func TestTreeLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tree := topo.RandomSmall(rng.Int63(), 25)
		n := tree.N()
		diag := make([]float64, n)
		offd := make([]float64, n)
		dense := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			diag[i] = 2 + rng.Float64()*3
		}
		for i := 0; i < n; i++ {
			if p := tree.Parent(i); p != rctree.Source {
				offd[i] = -(0.1 + rng.Float64()*0.4) // keep diagonally dominant
				dense.Set(i, p, offd[i])
				dense.Set(p, i, offd[i])
			}
		}
		for i := 0; i < n; i++ {
			dense.Set(i, i, diag[i])
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want, err := linalg.SolveLU(dense, rhs)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		// Permute the user-indexed system into compiled order.
		cp := rctree.Compile(tree)
		diagC := make([]float64, n)
		offdC := make([]float64, n)
		rhsC := make([]float64, n)
		for ci := 0; ci < n; ci++ {
			ui := cp.ToUser[ci]
			diagC[ci] = diag[ui]
			offdC[ci] = offd[ui]
			rhsC[ci] = rhs[ui]
		}
		for _, parallel := range []bool{false, true} {
			f, err := factorCompiled(cp, diagC, offdC, offdC, tree.Name, parallel)
			if err != nil {
				t.Fatalf("trial %d: factorCompiled: %v", trial, err)
			}
			got := append([]float64(nil), rhsC...)
			f.solve(got, parallel)
			for i := range want {
				if !approx(got[cp.FromUser[i]], want[i], 1e-8) {
					t.Fatalf("trial %d (parallel=%v): x[%d] = %v, want %v",
						trial, parallel, i, got[cp.FromUser[i]], want[i])
				}
			}
		}
	}
}

// A non-positive pivot must be reported with the offending node's name,
// under both the serial and the level-parallel factorization.
func TestFactorRejectsBadPivot(t *testing.T) {
	tree := topo.Chain(4, 1, 1e-15)
	cp := rctree.Compile(tree)
	n := cp.N()
	diag := make([]float64, n)
	offd := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = -1 // every pivot negative
	}
	for _, parallel := range []bool{false, true} {
		_, err := factorCompiled(cp, diag, offd, offd, tree.Name, parallel)
		if err == nil {
			t.Fatalf("parallel=%v: factorCompiled accepted a negative diagonal", parallel)
		}
	}
}
