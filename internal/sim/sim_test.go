package sim

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/exact"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func TestSingleRCStep(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, Options{TEnd: 8 * rc, DT: rc / 2000})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5 * rc, rc, 2 * rc, 5 * rc} {
		want := 1 - math.Exp(-tt/rc)
		if got := w.At(tt); !approx(got, want, 1e-5) {
			t.Errorf("v(%v) = %v, want %v", tt, got, want)
		}
	}
	x, err := res.Cross(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x, rc*math.Ln2, 1e-4) {
		t.Errorf("50%% crossing = %v, want %v", x, rc*math.Ln2)
	}
}

// The simulator and the exact engine are independent formulations; they
// must agree on the Fig. 1 circuit to integration accuracy.
func TestAgreesWithExactFig1(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sys.Horizon(0)
	res, err := Run(tree, Options{TEnd: horizon, DT: horizon / 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		w, err := res.Waveform(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.05, 0.2, 0.5, 0.8} {
			tt := frac * horizon
			if got, want := w.At(tt), sys.VStep(i, tt); !approx(got, want, 1e-4) {
				t.Errorf("%s at %v: sim %v vs exact %v", name, tt, got, want)
			}
		}
		simDelay, err := res.Cross(i, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		exDelay, err := sys.Delay50Step(i)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(simDelay, exDelay, 1e-3) {
			t.Errorf("%s 50%% delay: sim %v vs exact %v", name, simDelay, exDelay)
		}
	}
}

func TestAgreesWithExactRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 15)
		sys, err := exact.NewSystem(tree)
		if err != nil {
			return false
		}
		horizon := sys.Horizon(0)
		res, err := Run(tree, Options{TEnd: horizon, DT: horizon / 8192})
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			w, err := res.Waveform(i)
			if err != nil {
				return false
			}
			for _, frac := range []float64{0.1, 0.5, 0.9} {
				tt := frac * horizon
				if !approx(w.At(tt), sys.VStep(i, tt), 5e-3) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRampInputAgreesWithExact(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	ramp := signal.SaturatedRamp{Tr: 1e-9}
	p, err := signal.ToPWL(ramp, 2)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sys.Horizon(ramp.Tr)
	res, err := Run(tree, Options{Input: ramp, TEnd: horizon, DT: horizon / 20000})
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	w, err := res.Waveform(i)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.3, 0.6} {
		tt := frac * horizon
		if got, want := w.At(tt), sys.VPWL(i, p, tt); !approx(got, want, 1e-4) {
			t.Errorf("t=%v: sim %v vs exact %v", tt, got, want)
		}
	}
}

func TestBackwardEulerConvergesToo(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sys.Horizon(0)
	res, err := Run(tree, Options{TEnd: horizon, DT: horizon / 60000, Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	w, err := res.Waveform(i)
	if err != nil {
		t.Fatal(err)
	}
	tt := 0.3 * horizon
	if !approx(w.At(tt), sys.VStep(i, tt), 1e-3) {
		t.Errorf("BE at %v: %v vs %v", tt, w.At(tt), sys.VStep(i, tt))
	}
}

func TestZeroCapJunction(t *testing.T) {
	// A purely resistive junction node (C=0) must simulate fine and
	// settle to 1 like everything else.
	b := rctree.NewBuilder()
	j := b.MustRoot("junction", 100, 0)
	b.MustAttach(j, "load1", 100, 1e-12)
	b.MustAttach(j, "load2", 200, 2e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		v, err := res.Voltages(i)
		if err != nil {
			t.Fatal(err)
		}
		if final := v[len(v)-1]; !approx(final, 1, 1e-3) {
			t.Errorf("node %s final voltage %v, want ~1", tree.Name(i), final)
		}
	}
}

func TestProbeSelection(t *testing.T) {
	tree := topo.Fig1Tree()
	i5 := tree.MustIndex("C5")
	res, err := Run(tree, Options{Probes: []int{i5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Voltages(i5); err != nil {
		t.Errorf("probed node should be available: %v", err)
	}
	if _, err := res.Voltages(tree.MustIndex("C1")); err == nil {
		t.Errorf("unprobed node should error")
	}
	if _, err := Run(tree, Options{Probes: []int{99}}); err == nil {
		t.Errorf("out-of-range probe should error")
	}
}

func TestOptionErrors(t *testing.T) {
	tree := topo.Fig1Tree()
	if _, err := Run(tree, Options{Method: Method(42)}); err == nil {
		t.Errorf("unknown method should error")
	}
	if _, err := Run(tree, Options{Input: signal.SaturatedRamp{Tr: -1}}); err == nil {
		t.Errorf("invalid input signal should error")
	}
	if _, err := Run(tree, Options{TEnd: 1e-9, DT: math.NaN()}); err == nil {
		t.Errorf("NaN dt should error")
	}
}

func TestCrossMissingLevel(t *testing.T) {
	tree := topo.Fig1Tree()
	res, err := Run(tree, Options{TEnd: 1e-12, DT: 1e-13}) // far too short
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Cross(tree.MustIndex("C5"), 0.99); err == nil {
		t.Errorf("level unreachable in horizon should error")
	}
}

// crossResult builds a Result holding one hand-written waveform at node
// 0, for exercising the Cross edge cases the doc comment promises.
func crossResult(times, volts []float64) *Result {
	return &Result{
		Times:  times,
		probes: map[int]int{0: 0},
		values: [][]float64{volts},
	}
}

func TestCrossNeverCrossed(t *testing.T) {
	res := crossResult([]float64{0, 1, 2, 3}, []float64{0, 0.1, 0.2, 0.3})
	if _, err := res.Cross(0, 0.5); err == nil {
		t.Errorf("level above the whole waveform should error")
	}
	if _, err := res.Cross(7, 0.5); err == nil {
		t.Errorf("unprobed node should error")
	}
}

func TestCrossAtTimeZero(t *testing.T) {
	// Initial sample already at/above the level: crossed at the first
	// sample time, nil error.
	res := crossResult([]float64{0, 1, 2}, []float64{0.5, 0.8, 1})
	x, err := res.Cross(0, 0.5)
	if err != nil {
		t.Fatalf("level at initial sample must not error: %v", err)
	}
	if x != 0 {
		t.Errorf("crossing at t=0 expected, got %g", x)
	}
	x, err = res.Cross(0, 0.2)
	if err != nil || x != 0 {
		t.Errorf("level below initial sample: want (0, nil), got (%g, %v)", x, err)
	}
}

func TestCrossNonMonotone(t *testing.T) {
	// Rings above and back below the level; Cross must report the FIRST
	// upward crossing, interpolated within [1, 2].
	res := crossResult(
		[]float64{0, 1, 2, 3, 4, 5},
		[]float64{0, 0.4, 0.8, 0.3, 0.9, 1},
	)
	x, err := res.Cross(0, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5; !approx(x, want, 1e-12) {
		t.Errorf("first upward crossing: want %g, got %g", want, x)
	}
}

func TestMethodString(t *testing.T) {
	if Trapezoidal.String() != "trapezoidal" || BackwardEuler.String() != "backward-euler" {
		t.Errorf("method names wrong")
	}
	if Method(9).String() == "" {
		t.Errorf("unknown method should still render")
	}
}

func TestLargeChainLinearTime(t *testing.T) {
	// 20k-node chain: one run must finish quickly (zero fill-in solve);
	// final values settle to 1.
	tree := topo.Chain(20000, 1, 1e-15)
	res, err := Run(tree, Options{Probes: []int{19999}, DT: 0, TEnd: 0})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltages(19999)
	if err != nil {
		t.Fatal(err)
	}
	if final := v[len(v)-1]; !approx(final, 1, 5e-2) {
		t.Errorf("leaf final voltage %v, want ~1", final)
	}
}

// Step responses stay within [0, 1]. Backward Euler is used because its
// amplification factor lies in (0, 1) — no overshoot — whereas the
// trapezoidal rule may ring transiently on poles stiffer than the step.
func TestStepResponseBounded(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 30)
		res, err := Run(tree, Options{Method: BackwardEuler})
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			v, err := res.Voltages(i)
			if err != nil {
				return false
			}
			for _, x := range v {
				if x < -1e-6 || x > 1+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
