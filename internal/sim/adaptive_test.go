package sim

import (
	"math"
	"testing"

	"elmore/internal/exact"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func TestAdaptiveSingleRC(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptive(tree, Options{TEnd: 8 * rc}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5 * rc, rc, 3 * rc} {
		want := 1 - math.Exp(-tt/rc)
		if got := w.At(tt); !approx(got, want, 1e-4) {
			t.Errorf("v(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestAdaptiveMatchesExactFig1(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sys.Horizon(0)
	res, err := RunAdaptive(tree, Options{TEnd: horizon}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C5")
	w, err := res.Waveform(i)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.3, 0.6} {
		tt := frac * horizon
		if !approx(w.At(tt), sys.VStep(i, tt), 1e-4) {
			t.Errorf("t=%v: adaptive %v vs exact %v", tt, w.At(tt), sys.VStep(i, tt))
		}
	}
}

// The point of adaptivity: a stiff tree (time constants spanning 4+
// decades) needs far fewer accepted steps than a fixed-dt run of the
// same accuracy, because the step grows once the fast modes die.
func TestAdaptiveUsesFewerStepsOnStiffTree(t *testing.T) {
	b := rctree.NewBuilder()
	fast := b.MustRoot("fast", 100, 10e-15)    // tau = 1 ps
	b.MustAttach(fast, "slow", 100000, 10e-12) // tau = 1 us
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * 100000 * 10e-12
	res, err := RunAdaptive(tree, Options{TEnd: horizon, DT: horizon / 1e6, Method: BackwardEuler}, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveSteps := len(res.Times)
	if adaptiveSteps > 20000 {
		t.Errorf("adaptive used %d steps; expected large savings over the 1e6 fixed grid", adaptiveSteps)
	}
	// Final value settled.
	v, err := res.Voltages(1)
	if err != nil {
		t.Fatal(err)
	}
	if final := v[len(v)-1]; !approx(final, 1, 1e-3) {
		t.Errorf("final = %v", final)
	}
}

func TestAdaptiveRampInput(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	ramp := signal.SaturatedRamp{Tr: 1e-9}
	p, err := signal.ToPWL(ramp, 2)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sys.Horizon(ramp.Tr)
	res, err := RunAdaptive(tree, Options{TEnd: horizon, Input: ramp}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C7")
	w, err := res.Waveform(i)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.2, 0.5} {
		tt := frac * horizon
		if !approx(w.At(tt), sys.VPWL(i, p, tt), 1e-3) {
			t.Errorf("t=%v: adaptive %v vs exact %v", tt, w.At(tt), sys.VPWL(i, p, tt))
		}
	}
}

func TestAdaptiveErrors(t *testing.T) {
	tree := topo.Fig1Tree()
	if _, err := RunAdaptive(tree, Options{}, 0); err == nil {
		t.Errorf("zero tolerance should fail")
	}
	if _, err := RunAdaptive(tree, Options{}, math.NaN()); err == nil {
		t.Errorf("NaN tolerance should fail")
	}
	if _, err := RunAdaptive(tree, Options{Method: Method(9)}, 1e-6); err == nil {
		t.Errorf("bad method should fail")
	}
	if _, err := RunAdaptive(tree, Options{Probes: []int{99}}, 1e-6); err == nil {
		t.Errorf("bad probe should fail")
	}
	if _, err := RunAdaptive(tree, Options{Input: signal.SaturatedRamp{Tr: -1}}, 1e-6); err == nil {
		t.Errorf("bad input should fail")
	}
}

// Tighter tolerance gives a more accurate delay estimate.
func TestAdaptiveToleranceControlsAccuracy(t *testing.T) {
	tree := topo.Line25Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	node := tree.MustIndex(topo.Line25NodeC)
	want, err := sys.Delay50Step(node)
	if err != nil {
		t.Fatal(err)
	}
	var prevErr = math.Inf(1)
	for _, tol := range []float64{1e-3, 1e-5, 1e-7} {
		res, err := RunAdaptive(tree, Options{Probes: []int{node}}, tol)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Cross(node, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got - want)
		if e > prevErr*1.5 {
			t.Errorf("tol=%v: delay error %v did not improve (prev %v)", tol, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 1e-12 {
		t.Errorf("tightest-tolerance delay error %v too large", prevErr)
	}
}
