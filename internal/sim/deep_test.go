package sim

import (
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// Simulation plans must handle the degenerate extremes — a
// million-level chain and a hundred-thousand-wide star — and the
// forced level-parallel execution (stamp, factor, both solver passes)
// must reproduce the serial run bit-for-bit.
func TestPlanDegenerateExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-topology stress test")
	}
	for _, tc := range []struct {
		name string
		tree *rctree.Tree
	}{
		{"chain1M", topo.Chain(1_000_000, 1, 1e-15)},
		{"star100k", topo.Star(100_000, 1, 50, 2e-14)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const dt = 1e-12
			probes := []int{0, tc.tree.N() / 2, tc.tree.N() - 1}
			mk := func(parallel bool) *Result {
				// Backward Euler: L-stable, so the coarse-step response
				// stays monotone in [0, 1] (trapezoidal would ring at
				// this dt, legitimately overshooting 1).
				plan, err := NewPlan(tc.tree, PlanOptions{DT: dt, Method: BackwardEuler})
				if err != nil {
					t.Fatal(err)
				}
				plan.parallel = parallel
				res, err := plan.Run(nil, RunOptions{TEnd: 5 * dt, Probes: probes})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, par := mk(false), mk(true)
			for _, node := range probes {
				sv, _ := serial.Voltages(node)
				pv, _ := par.Voltages(node)
				if len(sv) != 6 {
					t.Fatalf("node %d: %d samples, want 6", node, len(sv))
				}
				for s := range sv {
					if sv[s] != pv[s] {
						t.Fatalf("node %d step %d: serial %v != parallel %v", node, s, sv[s], pv[s])
					}
				}
				// The response must actually move at the first node and
				// stay physical (within [0, 1]) everywhere.
				for s, v := range sv {
					if v < 0 || v > 1 {
						t.Fatalf("node %d step %d: unphysical voltage %v", node, s, v)
					}
				}
			}
			first, _ := serial.Voltages(0)
			if first[5] <= 0 {
				t.Fatalf("root-side node never charged: %v", first)
			}
		})
	}
}
