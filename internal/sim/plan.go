package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"elmore/internal/faultinject"
	"elmore/internal/health"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
)

// treeLU is the zero-fill-in LU factorization of a (possibly
// asymmetric) matrix with the tree's sparsity, in compiled index
// space: a diagonal plus, for every node i with parent p, the entries
// M[i][p] (rowChild) and M[p][i] (rowParent). Eliminating children
// before parents touches only the parent's diagonal, so there is no
// fill-in and no pivoting — safe for the diagonally dominant
// M-matrices produced by MNA stamping. All passes are written in
// gather form (a node reads its children or its parent, never writes
// another node's slot), so the level-parallel schedule produces
// bit-identical results to the serial sweep.
type treeLU struct {
	cpl  *rctree.Compiled
	d    []float64 // eliminated pivots
	dinv []float64 // reciprocal pivots (back substitution multiplies)
	mult []float64 // per-child multiplier: M[p][i] / d[i]
	cp   []float64 // original M[i][parent] entries
}

// factorCompiled eliminates in children-before-parents order. diag,
// rowChild and rowParent are compiled-indexed; rowChild is retained by
// the returned factorization (not copied). name resolves a user node
// index to its name for the pivot error message.
func factorCompiled(cpl *rctree.Compiled, diag, rowChild, rowParent []float64, name func(int) string, parallel bool) (*treeLU, error) {
	n := cpl.N()
	f := &treeLU{
		cpl:  cpl,
		d:    make([]float64, n),
		dinv: make([]float64, n),
		mult: make([]float64, n),
		cp:   rowChild,
	}
	var badPivot atomic.Int64
	badPivot.Store(-1)
	cs := cpl.ChildStart
	cpl.EachLevelUp(parallel, func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			d := diag[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d -= f.mult[ch] * rowChild[ch]
			}
			f.d[i] = d
			if d <= 0 {
				badPivot.CompareAndSwap(-1, int64(i))
				continue // the error below aborts; mult stays 0
			}
			f.dinv[i] = 1 / d
			if cpl.Parent[i] != rctree.Source {
				f.mult[i] = rowParent[i] / d
			}
		}
	})
	if i := badPivot.Load(); i >= 0 {
		return nil, fmt.Errorf("sim: non-positive pivot %g at node %q",
			f.d[i], name(int(cpl.ToUser[i])))
	}
	return f, nil
}

// solve solves M x = rhs in place (rhs is overwritten with x), in
// compiled index space. The serial path runs closure-free so a
// steady-state step loop allocates nothing.
func (f *treeLU) solve(rhs []float64, parallel bool) {
	if !parallel {
		f.forward(rhs, rhs, 0, len(rhs))
		f.backward(rhs, 0, len(rhs))
		return
	}
	f.cpl.EachLevelUp(true, func(lo, hi int) { f.forward(rhs, rhs, lo, hi) })
	f.cpl.EachLevelDown(true, func(lo, hi int) { f.backward(rhs, lo, hi) })
}

// forward performs elimination (children before parents) over the
// compiled index range [lo, hi), iterating descending. dst receives the
// eliminated vector; src supplies the raw RHS (dst and src may alias
// for an in-place solve — each slot is read before it is written).
func (f *treeLU) forward(dst, src []float64, lo, hi int) {
	cs := f.cpl.ChildStart
	for i := hi - 1; i >= lo; i-- {
		x := src[i]
		for ch := cs[i]; ch < cs[i+1]; ch++ {
			x -= f.mult[ch] * dst[ch]
		}
		dst[i] = x
	}
}

// backward performs back substitution (parents before children) over
// the compiled index range [lo, hi), iterating ascending: each child
// row still couples to its parent's already-computed solution.
func (f *treeLU) backward(rhs []float64, lo, hi int) {
	par := f.cpl.Parent
	for i := lo; i < hi; i++ {
		x := rhs[i]
		if p := par[i]; p != rctree.Source {
			x -= f.cp[i] * rhs[p]
		}
		rhs[i] = x * f.dinv[i]
	}
}

// stampCompiled assembles the tree-sparse θ-method system matrix for
// one step size into diag/rowChild/rowParent (compiled-indexed).
func stampCompiled(cpl *rctree.Compiled, theta, g, cOverDt, diag, rowChild, rowParent []float64, parallel bool) {
	cs := cpl.ChildStart
	par := cpl.Parent
	cpl.EachLevelDown(parallel, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := cOverDt[i] + theta[i]*g[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += theta[i] * g[ch]
			}
			diag[i] = d
			if par[i] != rctree.Source {
				rowChild[i] = -theta[i] * g[i]
				rowParent[i] = -theta[par[i]] * g[i]
			}
		}
	})
}

// PlanOptions fixes the quantities a Plan bakes into its factorization.
type PlanOptions struct {
	// DT is the fixed time step; it must be positive and finite.
	DT float64
	// Method selects the integrator (default Trapezoidal).
	Method Method
}

// Plan is a reusable transient-simulation plan: the tree compiled to
// the structure-of-arrays layout, the MNA system stamped, and the
// zero-fill-in LU factorization computed, once, for a fixed
// (tree, DT, Method) triple. A Plan is immutable after NewPlan and
// safe to share between goroutines; each goroutine obtains its own
// Runner (mutable workspaces) and executes any number of inputs and
// probe sets with zero steady-state allocations.
//
// Invalidation contract: like a cached Fingerprint, a Plan snapshots
// the tree's element values. SetR/SetC on the tree after NewPlan do
// not propagate into the plan — build a new Plan after mutating.
type Plan struct {
	tree     *rctree.Tree
	cp       *rctree.Compiled
	method   Method
	dt       float64
	parallel bool

	// Per-step stamping runs as an elementwise recurrence instead of a
	// conductance matvec: row i of the previous solve gives
	// (G v)_i = (rhs[i] - (C/dt)_i v_i) / θ_i, so the next RHS is
	// rhs'[i] = scale[i]*v[i] - ratio[i]*rhs[i] + source terms, with
	// ratio = (1-θ)/θ and scale = (C/dt)(1+ratio). Rows with θ = 1
	// (backward Euler, algebraic C = 0 rows) have ratio 0 and the
	// recurrence degenerates to the direct stamp.
	scale    []float64 // (C/dt)(1+ratio), compiled order
	ratio    []float64 // (1-θ)/θ
	bTheta   []float64 // θ·g source coupling (roots only)
	bOmTheta []float64 // (1-θ)·g source coupling (roots only)
	rootEnd  int       // roots occupy compiled indices [0, rootEnd)
	lu       *treeLU

	maxTD float64 // largest Elmore delay, for horizon estimation
}

// NewPlan compiles, stamps, and factors a transient plan for the tree.
func NewPlan(t *rctree.Tree, opts PlanOptions) (*Plan, error) {
	if err := faultinject.Fire("sim.factor"); err != nil {
		return nil, err
	}
	dt := opts.DT
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("sim: invalid time step %v", dt)
	}
	var aMethod float64
	switch opts.Method {
	case Trapezoidal:
		aMethod = 0.5
	case BackwardEuler:
		aMethod = 1
	default:
		return nil, fmt.Errorf("sim: unknown method %v", opts.Method)
	}
	cp := rctree.Compile(t)
	n := cp.N()
	p := &Plan{
		tree:     t,
		cp:       cp,
		method:   opts.Method,
		dt:       dt,
		parallel: cp.ParallelOK(),
		scale:    make([]float64, n),
		ratio:    make([]float64, n),
		bTheta:   make([]float64, n),
		bOmTheta: make([]float64, n),
	}
	// Per-row θ-method: capacitive rows use the selected method's
	// weight; zero-capacitance (algebraic) rows always use θ = 1 — the
	// trapezoidal rule is only marginally stable on algebraic
	// constraints.
	theta := make([]float64, n)
	g := make([]float64, n)
	cOverDt := make([]float64, n)
	for i := 0; i < n; i++ {
		if cp.C[i] == 0 {
			theta[i] = 1
		} else {
			theta[i] = aMethod
		}
		g[i] = 1 / cp.R[i]
		cOverDt[i] = cp.C[i] / dt
		p.ratio[i] = (1 - theta[i]) / theta[i]
		p.scale[i] = cOverDt[i] * (1 + p.ratio[i])
		if cp.Parent[i] == rctree.Source {
			p.bTheta[i] = theta[i] * g[i]
			p.bOmTheta[i] = (1 - theta[i]) * g[i]
			if i >= p.rootEnd {
				p.rootEnd = i + 1
			}
		}
	}
	diag := make([]float64, n)
	rowChild := make([]float64, n)
	rowParent := make([]float64, n)
	stampCompiled(cp, theta, g, cOverDt, diag, rowChild, rowParent, p.parallel)
	lu, err := factorCompiled(cp, diag, rowChild, rowParent, t.Name, p.parallel)
	if err != nil {
		return nil, err
	}
	p.lu = lu
	p.maxTD = maxElmore(cp)
	telemetry.C("sim.plans").Inc()
	telemetry.C("sim.lu_factorizations").Inc()
	return p, nil
}

// maxElmore computes the largest Elmore delay on the compiled arrays
// (serial: NewPlan cost is dominated by stamping and factoring).
func maxElmore(cp *rctree.Compiled) float64 {
	n := cp.N()
	down := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		d := cp.C[i]
		for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
			d += down[ch]
		}
		down[i] = d
	}
	maxTD := 0.0
	td := down // td[i] overwrites down[i] only after it is consumed
	for i := 0; i < n; i++ {
		a := cp.R[i] * down[i]
		if p := cp.Parent[i]; p != rctree.Source {
			a += td[p]
		}
		td[i] = a
		if a > maxTD {
			maxTD = a
		}
	}
	return maxTD
}

// DT returns the fixed step the plan was factored for.
func (p *Plan) DT() float64 { return p.dt }

// Method returns the integration method the plan was stamped with.
func (p *Plan) Method() Method { return p.method }

// Tree returns the tree the plan was compiled from.
func (p *Plan) Tree() *rctree.Tree { return p.tree }

// Horizon estimates a settling horizon for the planned tree under the
// given input: ten times the largest Elmore delay plus the input rise
// time — the same policy Run applies when Options.TEnd is zero.
func (p *Plan) Horizon(in signal.Signal) float64 {
	if in == nil {
		in = signal.Step{}
	}
	return 10*p.maxTD + 2*in.RiseTime()
}

// RunOptions configures one execution of a plan.
type RunOptions struct {
	// TEnd is the simulation horizon. If <= 0, Horizon(input) is used.
	TEnd float64
	// Probes lists the node indices (user indices of the planned tree)
	// to record. Empty records all nodes.
	Probes []int
}

// Run executes the plan once on a fresh Runner. For repeated
// executions (characterization sweeps, batch jobs) hold a Runner and
// call its Run/RunInto to reuse workspaces.
func (p *Plan) Run(in signal.Signal, opts RunOptions) (*Result, error) {
	return p.Runner().Run(in, opts)
}

// Runner carries the mutable per-goroutine state needed to execute a
// Plan: the voltage state vector, the persistent stamped RHS (the
// recurrence state), and the solve workspace. Many Runners may execute
// the same Plan concurrently; a single Runner must not.
type Runner struct {
	plan *Plan
	v    []float64 // current node voltages (compiled order)
	rhs  []float64 // stamped RHS of the step just solved (recurrence state)
	x    []float64 // solve workspace; becomes the next voltages
	// stampFn/fwdFn/bwdFn are premade func values handed to the level
	// scheduler so the parallel path does not allocate a closure per
	// step.
	stampFn, fwdFn, bwdFn func(lo, hi int)
}

// Runner returns a new runner for the plan.
func (p *Plan) Runner() *Runner {
	n := p.cp.N()
	r := &Runner{
		plan: p,
		v:    make([]float64, n),
		rhs:  make([]float64, n),
		x:    make([]float64, n),
	}
	r.stampFn = r.stamp
	r.fwdFn = func(lo, hi int) { p.lu.forward(r.x, r.rhs, lo, hi) }
	r.bwdFn = func(lo, hi int) { p.lu.backward(r.x, lo, hi) }
	return r
}

// stamp advances the RHS recurrence over the compiled index range
// [lo, hi): rhs[i] = scale[i]*v[i] - ratio[i]*rhs[i], elementwise, so
// chunks may run in parallel and still reproduce the serial sweep
// bit-for-bit. The per-step source term is added to the root rows
// afterwards by the caller.
func (r *Runner) stamp(lo, hi int) {
	scale, ratio := r.plan.scale, r.plan.ratio
	v, rhs := r.v, r.rhs
	for i := lo; i < hi; i++ {
		rhs[i] = scale[i]*v[i] - ratio[i]*rhs[i]
	}
}

// Run executes the plan for one input and returns a fresh Result.
func (r *Runner) Run(in signal.Signal, opts RunOptions) (*Result, error) {
	res := &Result{}
	if err := r.RunInto(in, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto executes the plan for one input, writing samples into res.
// res is reset and its buffers (sample rows, probe map, cached
// waveforms) are reused when large enough, so steady-state sweeps that
// recycle one Result allocate nothing. res must not alias a Result
// still in use elsewhere.
func (r *Runner) RunInto(in signal.Signal, opts RunOptions, res *Result) error {
	p := r.plan
	if in == nil {
		in = signal.Step{}
	}
	if err := signal.Validate(in); err != nil {
		return err
	}
	tEnd := opts.TEnd
	if tEnd <= 0 {
		tEnd = p.Horizon(in)
	}
	// The 1e-9 slack absorbs float division noise (20ns/10ps must be
	// 2000 steps, not 2001).
	steps := int(math.Ceil(tEnd/p.dt - 1e-9))
	if steps < 1 {
		return fmt.Errorf("sim: horizon %v shorter than step %v", tEnd, p.dt)
	}

	cp := p.cp
	n := cp.N()
	if err := res.reset(opts.Probes, n, steps, cp.FromUser); err != nil {
		return err
	}

	for i := range r.v {
		r.v[i] = 0 // start relaxed
		r.rhs[i] = 0
	}
	res.record(0, r.v)

	dt := p.dt
	parallel := p.parallel
	inject := faultinject.Enabled()
	for step := 1; step <= steps; step++ {
		if inject {
			if err := faultinject.Fire("sim.step"); err != nil {
				return err
			}
			// Poisoning one state slot is enough: NaN propagates through
			// every later step and checkFinalState (or the caller's
			// waveform consumers) will see it.
			r.v[0] = faultinject.Poison("sim.state", r.v[0])
		}
		uPrev := in.Eval(float64(step-1) * dt)
		uCur := in.Eval(float64(step) * dt)
		if parallel {
			// Stamping is elementwise; the Down runner just chunks each
			// level across the worker pool.
			cp.EachLevelDown(true, r.stampFn)
		} else {
			r.stamp(0, n)
		}
		// Source coupling enters only at the root rows.
		for i := 0; i < p.rootEnd; i++ {
			r.rhs[i] += p.bTheta[i]*uCur + p.bOmTheta[i]*uPrev
		}
		if parallel {
			cp.EachLevelUp(true, r.fwdFn)
			cp.EachLevelDown(true, r.bwdFn)
		} else {
			p.lu.forward(r.x, r.rhs, 0, n)
			p.lu.backward(r.x, 0, n)
		}
		r.v, r.x = r.x, r.v
		res.record(step, r.v)
	}
	for step := 0; step <= steps; step++ {
		res.Times[step] = float64(step) * dt
	}
	telemetry.C("sim.plan_runs").Inc()
	telemetry.C("sim.steps").Add(int64(steps))
	return r.checkFinalState()
}

// checkFinalState is the health sentinel on the integrated waveforms: a
// NaN or Inf anywhere in the element values or the input poisons the
// recurrence and — because NaN propagates forward through every later
// step — is guaranteed to still be present in the final state vector,
// so one O(N) scan of r.v after the loop catches it without touching
// the per-step path. The scan runs only when a health monitor is
// installed; under a strict monitor the violation fails the run.
func (r *Runner) checkFinalState() error {
	if !health.Enabled() {
		return nil
	}
	bad, first := 0, -1
	for i, v := range r.v {
		if !health.IsFinite(v) {
			if bad == 0 {
				first = i
			}
			bad++
		}
	}
	if bad == 0 {
		return nil
	}
	p := r.plan
	t := p.Tree()
	user := int(p.cp.ToUser[first])
	return health.Violate(health.Event{
		Check:  "sim.nonfinite_state",
		Tree:   health.TreeLabel(t.N(), t.Fingerprint()),
		Node:   t.Name(user),
		Detail: fmt.Sprintf("%d non-finite node voltages in the final state", bad),
		Values: map[string]health.F{"v": health.F(r.v[first])},
	})
}

// reset prepares the result for steps+1 samples of the given probes
// (user indices; nil means all n nodes), reusing buffers where
// possible. fromUser maps each probe to the compiled index record()
// reads from.
func (res *Result) reset(probes []int, n, steps int, fromUser []int32) error {
	rows := len(probes)
	if rows == 0 {
		rows = n
	}
	if cap(res.Times) >= steps+1 {
		res.Times = res.Times[:steps+1]
	} else {
		res.Times = make([]float64, steps+1)
	}
	if res.probes == nil {
		res.probes = make(map[int]int, rows)
	} else {
		clear(res.probes)
	}
	if cap(res.values) >= rows {
		res.values = res.values[:rows]
	} else {
		res.values = make([][]float64, rows)
	}
	if cap(res.srcRow) >= rows {
		res.srcRow = res.srcRow[:rows]
	} else {
		res.srcRow = make([]int32, rows)
	}
	// Cached waveforms describe the previous run's samples; drop them.
	if cap(res.wfs) >= rows {
		res.wfs = res.wfs[:rows]
		for i := range res.wfs {
			res.wfs[i] = nil
		}
	} else {
		res.wfs = nil
	}
	for row := 0; row < rows; row++ {
		node := row
		if len(probes) != 0 {
			node = probes[row]
		}
		if node < 0 || node >= n {
			return fmt.Errorf("sim: probe index %d out of range [0,%d)", node, n)
		}
		res.probes[node] = row
		res.srcRow[row] = fromUser[node]
		if cap(res.values[row]) >= steps+1 {
			res.values[row] = res.values[row][:steps+1]
		} else {
			res.values[row] = make([]float64, steps+1)
		}
	}
	return nil
}

// record samples the state vector (compiled order) into every probe
// row at the given step.
func (res *Result) record(step int, v []float64) {
	for row, src := range res.srcRow {
		res.values[row][step] = v[src]
	}
}
