// Package moments computes transfer-function moments of RC trees with
// O(N)-per-order path-tracing traversals, in the style of RICE
// (Ratzlaff & Pillage 1994). These moments are the raw material for the
// Elmore delay, the Gupta-Tutuianu-Pileggi delay bounds, the
// Penfield-Rubinstein-Horowitz waveform bounds, and AWE approximations.
//
// Edge-case contracts: M panics on an out-of-range node index (a
// programming error, not a data error); a zero-variance node (mu2 == 0,
// e.g. a capacitance-free tree) has Sigma == +0, never NaN.
//
// Sign convention (paper eq. 9): the transfer function at node i is
// expanded as H_i(s) = sum_q m_q(i) s^q, so that
//
//	m_q(i) = (-1)^q / q! * integral t^q h_i(t) dt.
//
// Consequently the Elmore delay is T_D(i) = -m_1(i), and the
// distribution moments are M_q = (-1)^q q! m_q.
package moments

import (
	"fmt"
	"math"

	"elmore/internal/faultinject"
	"elmore/internal/health"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// Set holds moments m_0..m_Order for every node of a tree.
type Set struct {
	tree  *rctree.Tree
	order int
	m     [][]float64 // m[q][i]
}

// Compute returns the transfer-function moments m_0..m_order at every
// node of the tree. order must be >= 1. Cost is O(order * N).
//
// The recurrences run on the tree's compiled structure-of-arrays plan
// (rctree.Compile): contiguous value arrays in breadth-first order,
// with no permutation indirection in either traversal direction. On
// large trees with wide levels the per-order passes execute in
// parallel across depth levels; the kernels are written in gather form
// (each node reads only its children or its parent), so the parallel
// schedule is bit-identical to the serial sweep.
func Compute(t *rctree.Tree, order int) (*Set, error) {
	return ComputeWith(t, order, nil)
}

// ComputeWith is Compute drawing its transient sweep buffers from the
// caller's arena instead of allocating them per call — the per-worker
// fast path of the batch engine. Only the scratch comes from the
// arena; the returned Set always owns its backing, so it may outlive
// the arena (and be shared across workers through a cache) safely. A
// nil arena makes this identical to Compute. Results are bit-identical
// either way: the kernels write every scratch slot before reading it.
func ComputeWith(t *rctree.Tree, order int, ar *Arena) (*Set, error) {
	if err := faultinject.Fire("moments.compute"); err != nil {
		return nil, err
	}
	if order < 1 {
		return nil, fmt.Errorf("moments: order must be >= 1, got %d", order)
	}
	n := t.N()
	// One backing array serves every moment row, so a Set costs three
	// allocations regardless of order. Rows are full-capacity
	// sub-slices (the three-index form), so an append on one row can
	// never bleed into its neighbor. The two sweep buffers live in a
	// separate backing: Sets are cached by batch engines, and fusing
	// the scratch into the row backing would pin 2n dead floats for the
	// life of every cached Set.
	back := make([]float64, (order+1)*n)
	s := &Set{tree: t, order: order, m: make([][]float64, order+1)}
	for q := range s.m {
		s.m[q] = back[q*n : (q+1)*n : (q+1)*n]
	}
	for i := 0; i < n; i++ {
		s.m[0][i] = 1 // m_0 = DC gain = 1 at every node of an RC tree
	}
	cp := rctree.Compile(t)
	scratch := ar.scratch(2 * n)
	computeInto(cp, s, scratch[:n], scratch[n:], cp.ParallelOK())
	if faultinject.Enabled() && n > 0 {
		// Poisoning the deepest node's m_1 is enough for chaos runs: it
		// is the Elmore delay every downstream bound reads, and the
		// checkFinite sentinel below sees it when health is on.
		s.m[1][n-1] = faultinject.Poison("moments.m1", s.m[1][n-1])
	}
	telemetry.C("moments.computes").Inc()
	telemetry.C("moments.traversals").Add(2 * int64(order))
	telemetry.C("moments.node_visits").Add(2 * int64(order) * int64(n))
	if err := s.checkFinite(); err != nil {
		return nil, err
	}
	return s, nil
}

// checkFinite is the health sentinel on freshly computed moments: a
// non-finite element value (a NaN capacitance, an Inf resistance)
// poisons the recurrences and propagates through every downstream
// bound, so catch it here, at the source. The O(order*N) scan runs only
// when a health monitor is installed; one violation event summarizes
// the damage (first poisoned node plus the total count), and under a
// strict monitor the violation fails the computation.
func (s *Set) checkFinite() error {
	if !health.Enabled() {
		return nil
	}
	firstQ, firstI, bad := 0, 0, 0
	for q := 1; q <= s.order; q++ {
		for i, v := range s.m[q] {
			if !health.IsFinite(v) {
				if bad == 0 {
					firstQ, firstI = q, i
				}
				bad++
			}
		}
	}
	if bad == 0 {
		return nil
	}
	t := s.tree
	return health.Violate(health.Event{
		Check:  "moments.nonfinite",
		Tree:   health.TreeLabel(t.N(), t.Fingerprint()),
		Node:   t.Name(firstI),
		Detail: fmt.Sprintf("%d non-finite moment entries (first: m_%d)", bad, firstQ),
		Values: map[string]health.F{fmt.Sprintf("m%d", firstQ): health.F(s.m[firstQ][firstI])},
	})
}

// computeCompiled fills s.m[1..order] (user-indexed) from the compiled
// plan, allocating its own sweep buffers. Split out so tests can force
// both the serial and the parallel schedule and compare bit-for-bit.
func computeCompiled(cp *rctree.Compiled, s *Set, parallel bool) {
	n := cp.N()
	computeInto(cp, s, make([]float64, n), make([]float64, n), parallel)
}

// computeInto fills s.m[1..order] (user-indexed) from the compiled
// plan using caller-provided sweep buffers of length cp.N(). Neither
// buffer needs to be zeroed: prev is initialized here and every work
// slot is written before it is read.
//
// Recurrence (from KCL in the Laplace domain):
//
//	m_q(i) = - sum_k R_ki * C_k * m_{q-1}(k)
//
// computed per order with one upward pass (subtree sums of the "moment
// weights" w_k = C_k m_{q-1}(k)) and one downward pass that accumulates
// m_q(i) = m_q(parent) - R(i) * subtreeSum(i) along each path.
//
// The serial and parallel schedules live in separate functions on
// purpose: the parallel closures capture and swap prev/work, which
// would force both slice headers onto the heap for every caller —
// including small nets that never go parallel — if the closures were
// merely unreachable in the same function body.
func computeInto(cp *rctree.Compiled, s *Set, prev, work []float64, parallel bool) {
	for i := range prev {
		prev[i] = 1
	}
	if !parallel {
		computeSerial(cp, s, prev, work)
		return
	}
	computeParallel(cp, s, prev, work)
}

// computeSerial runs the moment sweeps as plain loops with no closures,
// so small nets pay zero allocations beyond the buffers they were
// handed. Two swap buffers: prev holds m_{q-1}; work accumulates the
// downstream sums and is then rewritten in place with m_q (slot i is
// read before it is written, and a parent's slot is final before any
// child reads it), becoming the next prev.
func computeSerial(cp *rctree.Compiled, s *Set, prev, work []float64) {
	n := cp.N()
	r, c, cs, par, toUser := cp.R, cp.C, cp.ChildStart, cp.Parent, cp.ToUser
	for q := 1; q <= s.order; q++ {
		for i := n - 1; i >= 0; i-- {
			d := c[i] * prev[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += work[ch]
			}
			work[i] = d
		}
		for i := 0; i < n; i++ {
			m := -(r[i] * work[i])
			if p := par[i]; p != rctree.Source {
				m += work[p]
			}
			work[i] = m
		}
		mq := s.m[q]
		for i := 0; i < n; i++ {
			mq[toUser[i]] = work[i]
		}
		prev, work = work, prev
	}
}

// computeParallel is the level-scheduled mirror of computeSerial. The
// kernels are gather-form (each node reads only its children or its
// parent), so the schedule is bit-identical to the serial sweep.
func computeParallel(cp *rctree.Compiled, s *Set, prev, work []float64) {
	n := cp.N()
	r, c, cs, par, toUser := cp.R, cp.C, cp.ChildStart, cp.Parent, cp.ToUser
	up := func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			d := c[i] * prev[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += work[ch]
			}
			work[i] = d
		}
	}
	dn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := -(r[i] * work[i])
			if p := par[i]; p != rctree.Source {
				m += work[p]
			}
			work[i] = m
		}
	}
	for q := 1; q <= s.order; q++ {
		cp.EachLevelUp(true, up)
		cp.EachLevelDown(true, dn)
		mq := s.m[q]
		for i := 0; i < n; i++ {
			mq[toUser[i]] = work[i]
		}
		prev, work = work, prev
	}
}

// Tree returns the tree the moments were computed for.
func (s *Set) Tree() *rctree.Tree { return s.tree }

// Order returns the highest computed moment order.
func (s *Set) Order() int { return s.order }

// M returns the coefficient moment m_q at node i. It panics with a
// descriptive message when q exceeds the computed order or i is not a
// valid node index of the underlying tree.
func (s *Set) M(q, i int) float64 {
	if q < 0 || q > s.order {
		panic(fmt.Sprintf("moments: order %d out of range [0,%d]", q, s.order))
	}
	if i < 0 || i >= len(s.m[q]) {
		panic(fmt.Sprintf("moments: node index %d out of range [0,%d)", i, len(s.m[q])))
	}
	return s.m[q][i]
}

// Elmore returns the Elmore delay T_D(i) = -m_1(i) (seconds).
func (s *Set) Elmore(i int) float64 { return -s.m[1][i] }

// DistMoment returns the raw distribution moment
// M_q(i) = integral t^q h_i(t) dt = (-1)^q q! m_q(i).
func (s *Set) DistMoment(q, i int) float64 {
	v := s.M(q, i)
	sign := 1.0
	if q%2 == 1 {
		sign = -1
	}
	return sign * factorial(q) * v
}

// Mu2 returns the second central moment (variance) of the impulse
// response at node i: mu2 = 2 m2 - m1^2. Requires order >= 2.
func (s *Set) Mu2(i int) float64 {
	m1 := s.M(1, i)
	m2 := s.M(2, i)
	return 2*m2 - m1*m1
}

// Mu3 returns the third central moment of the impulse response at node
// i: mu3 = -6 m3 + 6 m1 m2 - 2 m1^3. Requires order >= 3.
func (s *Set) Mu3(i int) float64 {
	m1 := s.M(1, i)
	m2 := s.M(2, i)
	m3 := s.M(3, i)
	return -6*m3 + 6*m1*m2 - 2*m1*m1*m1
}

// Sigma returns the standard deviation sqrt(mu2) of the impulse
// response at node i. Lemma 2 guarantees mu2 >= 0 for RC trees; tiny
// negative values from roundoff are clamped to zero, and the
// zero-variance case (degenerate trees, e.g. no capacitance anywhere
// on the node's branch) returns exactly +0, never -0. The clamp path
// reports a health note (moments.sigma_degenerate) so degenerate
// inputs are countable rather than silent.
func (s *Set) Sigma(i int) float64 {
	mu2 := s.Mu2(i)
	if mu2 <= 0 {
		if health.Enabled() {
			t := s.tree
			health.Note(health.Event{
				Check:  "moments.sigma_degenerate",
				Tree:   health.TreeLabel(t.N(), t.Fingerprint()),
				Node:   t.Name(i),
				Detail: "mu2 <= 0 clamped to sigma = +0",
				Values: map[string]health.F{"mu2": health.F(mu2)},
			})
		}
		return 0
	}
	return math.Sqrt(mu2)
}

// Skewness returns the coefficient of skewness
// gamma = mu3 / mu2^(3/2) (paper Definition 5). Lemma 2 proves
// gamma >= 0 at every node of an RC tree. For a node with zero
// variance the skewness is defined as zero.
func (s *Set) Skewness(i int) float64 {
	mu2 := s.Mu2(i)
	if mu2 <= 0 {
		return 0
	}
	return s.Mu3(i) / math.Pow(mu2, 1.5)
}

func factorial(n int) float64 {
	f := 1.0
	for k := 2; k <= n; k++ {
		f *= float64(k)
	}
	return f
}

// ElmoreDelays computes the Elmore delay at every node with the classic
// two-traversal algorithm (downstream capacitances up, delay
// accumulation down), without allocating a full moment Set. Both
// traversals run on the compiled structure-of-arrays plan, level-
// parallel on large bushy trees.
func ElmoreDelays(t *rctree.Tree) []float64 {
	cp := rctree.Compile(t)
	// td is returned and may be long-lived, so it gets its own backing
	// rather than a slice of a shared buffer that would pin the scratch.
	td := make([]float64, cp.N())
	elmoreInto(cp, td, make([]float64, cp.N()), cp.ParallelOK())
	return td
}

// elmoreCompiled fills td (user-indexed) with Elmore delays, allocating
// its own scratch. Kept as the seam tests use to force serial vs
// parallel schedules.
func elmoreCompiled(cp *rctree.Compiled, td []float64, parallel bool) {
	elmoreInto(cp, td, make([]float64, cp.N()), parallel)
}

// elmoreInto fills td (user-indexed) with Elmore delays using a
// caller-provided compiled-order scratch of length cp.N(). The scratch
// need not be zeroed: every slot is written by the upward pass before
// it is read. The downward pass accumulates into the down buffer in
// place: down[i] is read before slot i is overwritten, and a parent's
// slot is fully rewritten (level barrier) before any child reads it.
// The serial path runs plain loops so small nets pay no closure
// allocations.
func elmoreInto(cp *rctree.Compiled, td, down []float64, parallel bool) {
	n := cp.N()
	r, c, cs, par, toUser := cp.R, cp.C, cp.ChildStart, cp.Parent, cp.ToUser
	acc := down // acc[i] overwrites down[i] only after it is consumed
	if !parallel {
		// Plain loops: the closure forms below escape to the heap, and
		// small nets should not pay those allocations.
		for i := n - 1; i >= 0; i-- {
			d := c[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += down[ch]
			}
			down[i] = d
		}
		for i := 0; i < n; i++ {
			a := r[i] * down[i]
			if p := par[i]; p != rctree.Source {
				a += acc[p]
			}
			acc[i] = a
			td[toUser[i]] = a
		}
		return
	}
	cp.EachLevelUp(true, func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			d := c[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += down[ch]
			}
			down[i] = d
		}
	})
	cp.EachLevelDown(true, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := r[i] * down[i]
			if p := par[i]; p != rctree.Source {
				a += acc[p]
			}
			acc[i] = a
			td[toUser[i]] = a
		}
	})
}

// ElmoreDelayDirect computes T_D(i) = sum_k R_ki C_k by the O(N^2)
// definition. It exists as an independent oracle for tests; use
// ElmoreDelays in production code.
func ElmoreDelayDirect(t *rctree.Tree, i int) float64 {
	var td float64
	for k := 0; k < t.N(); k++ {
		td += t.SharedPathResistance(i, k) * t.C(k)
	}
	return td
}
