package moments

import (
	"errors"
	"strings"
	"testing"

	"elmore/internal/health"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

func installHealth(t *testing.T, strict bool) (*health.Monitor, *strings.Builder, *telemetry.Registry) {
	t.Helper()
	var sb strings.Builder
	m := health.New(&sb, strict)
	prevM := health.SetDefault(m)
	reg := telemetry.NewRegistry()
	prevR := telemetry.SetDefault(reg)
	t.Cleanup(func() {
		health.SetDefault(prevM)
		telemetry.SetDefault(prevR)
	})
	return m, &sb, reg
}

// overflowTree has finite element values the rctree API accepts whose
// products overflow float64 — the realistic way non-finite numbers
// enter the moment recurrences, since SetR/SetC reject NaN and Inf at
// the boundary.
func overflowTree(t *testing.T) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 1e308, 1e308)
	b.MustAttach(n1, "n2", 1e308, 1e308)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestComputeNonFiniteFailSoft(t *testing.T) {
	m, sb, reg := installHealth(t, false)
	s, err := Compute(overflowTree(t), 3)
	if err != nil {
		t.Fatalf("non-strict monitor must not fail the computation: %v", err)
	}
	if s == nil {
		t.Fatal("fail-soft path must still return the set")
	}
	if got := reg.Counter("health.moments.nonfinite").Value(); got != 1 {
		t.Errorf("health.moments.nonfinite = %d, want 1", got)
	}
	if got := reg.Counter("health.violations").Value(); got != 1 {
		t.Errorf("health.violations = %d, want 1", got)
	}
	if m.Violations() != 1 {
		t.Errorf("monitor violations = %d, want 1", m.Violations())
	}
	line := sb.String()
	for _, want := range []string{`"check":"moments.nonfinite"`, `"severity":"violation"`, `"tree":"n2-`, `"node":"`} {
		if !strings.Contains(line, want) {
			t.Errorf("event %q missing %q", line, want)
		}
	}
}

func TestComputeNonFiniteStrictFails(t *testing.T) {
	installHealth(t, true)
	_, err := Compute(overflowTree(t), 3)
	var v *health.Violation
	if !errors.As(err, &v) {
		t.Fatalf("strict monitor must fail Compute with *health.Violation, got %v", err)
	}
	if v.Check != "moments.nonfinite" {
		t.Errorf("check = %q", v.Check)
	}
}

func TestComputeHealthyTreeNoEvents(t *testing.T) {
	m, _, _ := installHealth(t, true)
	tree := twoNodeChain(t, 100, 1e-12, 50, 2e-12)
	if _, err := Compute(tree, 3); err != nil {
		t.Fatalf("healthy tree failed under strict monitor: %v", err)
	}
	if m.Events() != 0 {
		t.Errorf("healthy tree recorded %d events", m.Events())
	}
}

// The +0 Sigma contract from PR 2: a zero-variance node clamps to +0.
// New contract: the clamp is countable as a health note.
func TestSigmaDegenerateEmitsNote(t *testing.T) {
	m, sb, reg := installHealth(t, true) // strict: notes must never fail
	// Zero capacitance everywhere => mu2 == 0 at every node.
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12)
	b.MustAttach(n1, "n2", 50, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if err := tree.SetC(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sigma(0); got != 0 {
		t.Fatalf("Sigma = %v, want +0", got)
	}
	if got := reg.Counter("health.moments.sigma_degenerate").Value(); got != 1 {
		t.Errorf("health.moments.sigma_degenerate = %d, want 1", got)
	}
	if m.Violations() != 0 {
		t.Errorf("a degenerate note must not count as a violation (got %d)", m.Violations())
	}
	if !strings.Contains(sb.String(), `"severity":"note"`) {
		t.Errorf("event not a note: %s", sb.String())
	}
	// Healthy node on a healthy tree: no event.
	healthy := twoNodeChain(t, 100, 1e-12, 50, 2e-12)
	hs, err := Compute(healthy, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Events()
	if hs.Sigma(1) <= 0 {
		t.Fatal("healthy sigma must be positive")
	}
	if m.Events() != before {
		t.Error("healthy Sigma recorded an event")
	}
}
