package moments

import "context"

// Arena is a grow-only scratch allocator for the transient sweep
// buffers of the moment kernels. The compute paths in this package
// allocate short-lived scratch sized to the tree (2n floats per call)
// that dies with the call; a batch worker evaluating thousands of nets
// pays that allocation — and the GC pressure behind it — once per job.
// An Arena amortizes it: the buffer grows to the largest net seen and
// is reused for every later call.
//
// Safety model: only scratch that is dead before the compute returns
// may come from the arena. Retained results (a Set's moment rows, a
// PRHTerms' per-node arrays) always get their own backing, because
// cached Sets are shared across workers while the arena belongs to
// exactly one. The kernels never read a scratch slot before writing it,
// so a dirty reused buffer produces bit-identical results to a fresh
// zeroed one (asserted by TestArenaBitIdentical).
//
// An Arena is NOT safe for concurrent use: each batch worker owns one,
// threaded through the jobs it runs via WithArena. The zero value is
// ready to use, and a nil *Arena degrades to plain allocation
// everywhere it is accepted.
type Arena struct {
	buf []float64
}

// scratch returns an uninitialized []float64 of length n, growing the
// arena if needed. A nil arena allocates a fresh slice — the exact
// behavior of the non-arena paths.
func (a *Arena) scratch(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if cap(a.buf) < n {
		a.buf = make([]float64, n)
	}
	return a.buf[:n]
}

// arenaKey carries a *Arena through a context, so the batch engine can
// hand each worker's arena down through core.Analyze into this package
// without widening every signature in between.
type arenaKey struct{}

// WithArena returns a context carrying the arena; compute paths that
// accept a context (core.AnalyzeContext, batch cache fills) draw their
// scratch from it.
func WithArena(ctx context.Context, a *Arena) context.Context {
	return context.WithValue(ctx, arenaKey{}, a)
}

// ArenaFrom returns the arena carried by ctx, or nil (plain
// allocation) when the caller did not install one.
func ArenaFrom(ctx context.Context) *Arena {
	a, _ := ctx.Value(arenaKey{}).(*Arena)
	return a
}
