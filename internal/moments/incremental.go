package moments

import (
	"fmt"
	"math"
	"sort"

	"elmore/internal/health"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// Incremental is a delta-update engine for the order-3 moment and PRH
// state of one RC tree: it owns mutable copies of the element values
// plus every derived per-node array (downstream capacitance, m1..m3,
// path resistance, T_P) in the compiled layout, and re-cleans only the
// minimal dirty region after SetR/SetC perturbations. It exists so an
// optimizer's perturb → evaluate → revert inner loop stops paying the
// full Compile-rebuild + Compute + ComputePRH + per-node bound rebuild
// an rctree.Tree mutation costs (SetR/SetC invalidate the whole
// compiled plan), and pays only for what actually has to move.
//
// Every value the engine serves is bit-identical to a fresh
// moments.Compute / ComputePRH on a tree carrying the same element
// values: the update kernels are the exact per-node expressions of the
// full sweeps, applied in an order with the same data dependencies, so
// IEEE-754 non-associativity never shows. That is the property the
// crossover fallback leans on — when the dirty region approaches the
// whole tree, the engine simply runs the full serial sweeps in place,
// and nobody can tell the difference.
//
// How local an update can be is dictated by the recurrences, not by
// engineering:
//
//   - Order-1 state localizes. A ΔC at node k moves the downstream
//     capacitance (= the order-1 upward sums) only on k's root path; a
//     ΔR at k moves the path resistance and the Elmore delay only in
//     k's subtree. These are the O(path + subtree) kernels, and they
//     are what a T_D-driven optimizer hits thousands of times a second.
//   - Orders 2 and 3 do not. m2/m3 at ANY node depend on m1 at EVERY
//     node of the same root component (through the subtree sums of
//     C·m1), and any single perturbation moves m1 across the whole
//     component, so an exact order-2+ update is Ω(component) no matter
//     how it is organized. The engine's win there is constant-factor
//     but large: in-place region sweeps with no plan rebuild, no
//     allocation, no scatter to user order, and no per-node bound
//     reconstruction.
//
// Flushing is therefore staged and lazy: Elmore/DownstreamC/
// PathResistance/TR queries clean only the order-1 state; M/Mu2/Sigma/
// TP queries clean orders 2-3 as well. Perturbations batch — any number
// of SetR/SetC between queries cost one region flush.
//
// An Incremental is NOT safe for concurrent use; it is a single
// optimizer's working state, like a moments.Arena. The engine never
// mutates the bound tree: SetR/SetC are what-if edits on the engine's
// own arrays, Revert undoes everything since the last Commit, Commit
// accepts the current values as the new revert baseline, and SyncTree
// writes them back into the tree in one bulk mutation when the
// optimizer is done.
type Incremental struct {
	tree *rctree.Tree
	cp   *rctree.Compiled
	n    int

	// Element values and derived per-node state, all in compiled
	// (breadth-first) order. w1 is both the order-1 upward sum and the
	// downstream capacitance (m0 = 1 makes them the same array); m1..m3
	// are the transfer-function moments; rkk is the source-to-node path
	// resistance.
	r, c   []float64
	w1, m1 []float64
	w2, m2 []float64
	w3, m3 []float64
	rkk    []float64
	tp     float64
	level  []int32 // depth level of each compiled index

	// Dirty bookkeeping. dirtyBits holds four bits per node: C/R dirt
	// pending the order-1 flush (bits 0-1) and pending the order-3
	// flush (bits 2-3). The lists hold each node at most once per
	// stage.
	dirtyBits        []uint8
	dirtyC1, dirtyR1 []int32
	dirtyC3, dirtyR3 []int32
	stage1Clean      bool
	stage3Clean      bool

	// undo is the revert log: every applied edit since the last Commit,
	// oldest first.
	undo []valueEdit

	// movedLo/movedHi accumulate, per level, the hull of nodes whose
	// moments moved since the last DrainMoved, for Reanalyze(nil).
	movedLo, movedHi []int32

	// spanLo/spanHi and ancBuf are flush scratch.
	spanLo, spanHi   []int32
	wspanLo, wspanHi []int32
	ancBuf           []int32

	// CrossoverFraction tunes the region-sweep → full-sweep fallback:
	// a flush whose planned touched-node count exceeds this fraction of
	// the equivalent full-sweep work runs the plain full kernels
	// instead of the span walk. The default was measured, not guessed —
	// see DESIGN.md ("Incremental re-analysis"): region sweeps carry
	// ~10-25% per-node overhead from the level/span bookkeeping, so the
	// crossover sits well below 1.0.
	CrossoverFraction float64

	stats IncrementalStats
}

// DefaultCrossoverFraction is the measured region-vs-full crossover:
// on the benchmark topologies (100-100k node chains, stars and random
// trees) the span-walk sweep costs 1.1-1.3x the plain full loop per
// touched node, so region mode stops paying around 80% coverage.
const DefaultCrossoverFraction = 0.8

type valueEdit struct {
	node     int32 // compiled index
	isR      bool
	old, new float64
}

// IncrementalStats counts the engine's work since construction.
type IncrementalStats struct {
	Sets          int64 // applied SetR/SetC edits (no-op value repeats excluded)
	Flushes       int64 // region or full flush passes run
	NodesTouched  int64 // per-node kernel evaluations across all flushes
	FullFallbacks int64 // flushes that crossed over to the full sweeps
	Reverts       int64
	Commits       int64
}

// NewIncremental binds a delta-update engine to t, snapshotting its
// current element values and computing the full order-3 moment and PRH
// state once with the standard serial kernels. The engine does not
// mutate t afterwards (see SyncTree); conversely, mutating t directly
// while an engine is bound to it leaves the engine describing the
// values it was built from.
func NewIncremental(t *rctree.Tree) (*Incremental, error) {
	if t == nil || t.N() == 0 {
		return nil, fmt.Errorf("moments: NewIncremental needs a non-empty tree")
	}
	cp := rctree.Compile(t)
	n := cp.N()
	back := make([]float64, 9*n)
	inc := &Incremental{
		tree: t,
		cp:   cp,
		n:    n,
		r:    back[0*n : 1*n : 1*n],
		c:    back[1*n : 2*n : 2*n],
		w1:   back[2*n : 3*n : 3*n],
		m1:   back[3*n : 4*n : 4*n],
		w2:   back[4*n : 5*n : 5*n],
		m2:   back[5*n : 6*n : 6*n],
		w3:   back[6*n : 7*n : 7*n],
		m3:   back[7*n : 8*n : 8*n],
		rkk:  back[8*n : 9*n : 9*n],

		level:             make([]int32, n),
		dirtyBits:         make([]uint8, n),
		CrossoverFraction: DefaultCrossoverFraction,
	}
	copy(inc.r, cp.R)
	copy(inc.c, cp.C)
	L := cp.Levels()
	for l := 0; l < L; l++ {
		for i := cp.LevelStart[l]; i < cp.LevelStart[l+1]; i++ {
			inc.level[i] = int32(l)
		}
	}
	spans := make([]int32, 6*L)
	inc.spanLo = spans[0*L : 1*L : 1*L]
	inc.spanHi = spans[1*L : 2*L : 2*L]
	inc.wspanLo = spans[2*L : 3*L : 3*L]
	inc.wspanHi = spans[3*L : 4*L : 4*L]
	inc.movedLo = spans[4*L : 5*L : 5*L]
	inc.movedHi = spans[5*L : 6*L : 6*L]
	inc.clearMoved()
	inc.fullSweeps(true, true)
	inc.stage1Clean, inc.stage3Clean = true, true
	telemetry.C("incremental.binds").Inc()
	return inc, nil
}

// Tree returns the tree the engine is bound to. Its element values
// reflect the engine's state only up to the last SyncTree.
func (inc *Incremental) Tree() *rctree.Tree { return inc.tree }

// Stats returns the engine's work counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// --- Perturbation API ---

// SetR updates the engine's resistance at node i (tree index). The
// value is validated under the same contract as rctree.Tree.SetR. The
// bound tree is not touched.
func (inc *Incremental) SetR(i int, v float64) error {
	if err := inc.checkIndex(i); err != nil {
		return err
	}
	if err := rctree.ValidateR(v); err != nil {
		return fmt.Errorf("moments: incremental node %q: %w", inc.tree.Name(i), err)
	}
	inc.set(inc.cp.FromUser[i], true, v)
	return nil
}

// SetC updates the engine's grounded capacitance at node i (tree
// index), validated like rctree.Tree.SetC.
func (inc *Incremental) SetC(i int, v float64) error {
	if err := inc.checkIndex(i); err != nil {
		return err
	}
	if err := rctree.ValidateC(v); err != nil {
		return fmt.Errorf("moments: incremental node %q: %w", inc.tree.Name(i), err)
	}
	inc.set(inc.cp.FromUser[i], false, v)
	return nil
}

func (inc *Incremental) checkIndex(i int) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("moments: incremental node index %d out of range [0,%d)", i, inc.n)
	}
	return nil
}

func (inc *Incremental) set(ci int32, isR bool, v float64) {
	arr := inc.c
	if isR {
		arr = inc.r
	}
	old := arr[ci]
	if math.Float64bits(old) == math.Float64bits(v) {
		return // value-identical edit: nothing can move
	}
	arr[ci] = v
	inc.undo = append(inc.undo, valueEdit{node: ci, isR: isR, old: old, new: v})
	inc.dirty(ci, isR)
	inc.stats.Sets++
	telemetry.C("incremental.sets").Inc()
}

// dirty records node ci as pending for both flush stages.
func (inc *Incremental) dirty(ci int32, isR bool) {
	var b1, b3 uint8 = 1, 4 // C bits
	if isR {
		b1, b3 = 2, 8
	}
	bits := inc.dirtyBits[ci]
	if bits&b1 == 0 {
		if isR {
			inc.dirtyR1 = append(inc.dirtyR1, ci)
		} else {
			inc.dirtyC1 = append(inc.dirtyC1, ci)
		}
	}
	if bits&b3 == 0 {
		if isR {
			inc.dirtyR3 = append(inc.dirtyR3, ci)
		} else {
			inc.dirtyC3 = append(inc.dirtyC3, ci)
		}
	}
	inc.dirtyBits[ci] = bits | b1 | b3
	inc.stage1Clean, inc.stage3Clean = false, false
}

// Revert undoes every edit applied since the last Commit (or since
// construction), restoring the engine to its baseline values. Reverted
// regions re-clean lazily on the next query, and re-cleaning reproduces
// the baseline bits exactly: the kernels are deterministic in the
// values, which are bit-restored.
func (inc *Incremental) Revert() {
	for k := len(inc.undo) - 1; k >= 0; k-- {
		e := inc.undo[k]
		arr := inc.c
		if e.isR {
			arr = inc.r
		}
		arr[e.node] = e.old
		inc.dirty(e.node, e.isR)
	}
	inc.undo = inc.undo[:0]
	inc.stats.Reverts++
	telemetry.C("incremental.reverts").Inc()
}

// Commit accepts the current values as the new revert baseline: it
// clears the revert log and nothing else, so it is O(1) and does not
// force a flush or touch the bound tree (see SyncTree).
func (inc *Incremental) Commit() {
	inc.undo = inc.undo[:0]
	inc.stats.Commits++
	telemetry.C("incremental.commits").Inc()
}

// SyncTree writes the engine's current element values back into the
// bound tree as one bulk mutation (a single generation bump /
// fingerprint change). It is the hand-off at the end of an
// optimization: after it, a fresh Compile/Analyze of the tree describes
// exactly the engine's state.
func (inc *Incremental) SyncTree() error {
	r := make([]float64, inc.n)
	c := make([]float64, inc.n)
	for ci := 0; ci < inc.n; ci++ {
		u := inc.cp.ToUser[ci]
		r[u] = inc.r[ci]
		c[u] = inc.c[ci]
	}
	return inc.tree.SetValues(r, c)
}

// --- Queries (tree-indexed, bit-identical to Set / PRHTerms) ---

// Elmore returns the Elmore delay T_D(i) = -m1(i), flushing order-1
// state only.
func (inc *Incremental) Elmore(i int) float64 {
	inc.flush1()
	return -inc.m1[inc.cp.FromUser[i]]
}

// DownstreamC returns the total capacitance of the subtree rooted at i.
func (inc *Incremental) DownstreamC(i int) float64 {
	inc.flush1()
	return inc.w1[inc.cp.FromUser[i]]
}

// PathResistance returns R_ii, the source-to-i path resistance.
func (inc *Incremental) PathResistance(i int) float64 {
	inc.flush1()
	return inc.rkk[inc.cp.FromUser[i]]
}

// R and C return the engine's current (possibly uncommitted) element
// values at node i.
func (inc *Incremental) R(i int) float64 { return inc.r[inc.cp.FromUser[i]] }
func (inc *Incremental) C(i int) float64 { return inc.c[inc.cp.FromUser[i]] }

// TotalC returns the sum of the engine's capacitances — the area-side
// quantity sizing loops budget against. (Summed over root subtrees;
// the grouping differs from rctree.Tree.TotalC, so the two can differ
// in the last ulp.)
func (inc *Incremental) TotalC() float64 {
	inc.flush1()
	var sum float64
	for ci := int32(0); ci < inc.cp.LevelStart[1]; ci++ {
		sum += inc.w1[ci]
	}
	return sum
}

// M returns the moment m_q(i) for q in [0,3].
func (inc *Incremental) M(q, i int) float64 {
	if q < 0 || q > 3 {
		panic(fmt.Sprintf("moments: incremental order %d out of range [0,3]", q))
	}
	if i < 0 || i >= inc.n {
		panic(fmt.Sprintf("moments: node index %d out of range [0,%d)", i, inc.n))
	}
	ci := inc.cp.FromUser[i]
	switch q {
	case 0:
		return 1
	case 1:
		inc.flush1()
		return inc.m1[ci]
	case 2:
		inc.flush3()
		return inc.m2[ci]
	default:
		inc.flush3()
		return inc.m3[ci]
	}
}

// Mu2 returns the impulse-response variance 2 m2 - m1^2 at node i.
func (inc *Incremental) Mu2(i int) float64 {
	inc.flush3()
	ci := inc.cp.FromUser[i]
	m1 := inc.m1[ci]
	m2 := inc.m2[ci]
	return 2*m2 - m1*m1
}

// Mu3 returns the third central moment at node i.
func (inc *Incremental) Mu3(i int) float64 {
	inc.flush3()
	ci := inc.cp.FromUser[i]
	m1 := inc.m1[ci]
	m2 := inc.m2[ci]
	m3 := inc.m3[ci]
	return -6*m3 + 6*m1*m2 - 2*m1*m1*m1
}

// Sigma returns sqrt(mu2) with the Set.Sigma degenerate contract:
// mu2 <= 0 clamps to exactly +0 (with a health note when a monitor is
// installed).
func (inc *Incremental) Sigma(i int) float64 {
	mu2 := inc.Mu2(i)
	if mu2 <= 0 {
		if health.Enabled() {
			t := inc.tree
			health.Note(health.Event{
				Check:  "moments.sigma_degenerate",
				Tree:   health.TreeLabel(t.N(), t.Fingerprint()),
				Node:   t.Name(i),
				Detail: "mu2 <= 0 clamped to sigma = +0",
				Values: map[string]health.F{"mu2": health.F(mu2)},
			})
		}
		return 0
	}
	return math.Sqrt(mu2)
}

// Skewness returns mu3 / mu2^(3/2), zero at zero-variance nodes.
func (inc *Incremental) Skewness(i int) float64 {
	mu2 := inc.Mu2(i)
	if mu2 <= 0 {
		return 0
	}
	return inc.Mu3(i) / math.Pow(mu2, 1.5)
}

// TP returns the Penfield-Rubinstein T_P = sum_k R_kk C_k.
func (inc *Incremental) TP() float64 {
	inc.flush3()
	return inc.tp
}

// TR returns T_R(i) = sum_k R_ki^2 C_k / R_ii — the same walk as
// PRHTerms.TR over the engine's arrays, so the bits match.
func (inc *Incremental) TR(i int) float64 {
	inc.flush1()
	t := inc.tree
	from := inc.cp.FromUser
	var sum float64
	prevDown := 0.0
	for j := i; j != rctree.Source; j = t.Parent(j) {
		cj := from[j]
		attachedC := inc.w1[cj] - prevDown
		sum += inc.rkk[cj] * inc.rkk[cj] * attachedC
		prevDown = inc.w1[cj]
	}
	return sum / inc.rkk[from[i]]
}

// DrainMoved appends to dst the tree indices of every node whose
// moments may have moved since the last drain (conservatively: the
// per-level hull of the flushed dirty regions), flushing pending
// perturbations first, and resets the moved set. It backs
// core.Analysis.Reanalyze's "re-bound what moved" mode.
func (inc *Incremental) DrainMoved(dst []int) []int {
	inc.flush3()
	for l := 0; l < len(inc.movedLo); l++ {
		for ci := inc.movedLo[l]; ci < inc.movedHi[l]; ci++ {
			dst = append(dst, int(inc.cp.ToUser[ci]))
		}
	}
	inc.clearMoved()
	return dst
}

func (inc *Incremental) clearMoved() {
	for l := range inc.movedLo {
		inc.movedLo[l] = int32(inc.n)
		inc.movedHi[l] = 0
	}
}

// --- Flush machinery ---

// flush1 re-cleans the order-1 state (w1, m1, rkk): the genuinely
// local kernels. ΔC dirt re-sums w1 along the dirty nodes' root paths
// (ancestor closure, children gathered exactly like the full upward
// sweep); m1 then re-sweeps the subtrees hanging from the topmost
// moved nodes — for ΔR-only dirt that is just the perturbed subtrees,
// for ΔC dirt it is the affected root components (m1 at the component
// root depends on the total subtree capacitance, so the whole
// component moves). ΔR dirt re-sweeps rkk over the perturbed subtrees
// only.
func (inc *Incremental) flush1() {
	if inc.stage1Clean {
		return
	}
	cp := inc.cp
	n := inc.n
	inc.stats.Flushes++
	telemetry.C("incremental.flushes").Inc()

	// Plan the regions. Ancestor closure of C-dirty nodes:
	anc := inc.ancBuf[:0]
	for _, k := range inc.dirtyC1 {
		for j := k; j != rctree.Source; j = int32(cp.Parent[j]) {
			if inc.dirtyBits[j]&16 != 0 {
				break // already collected by an earlier walk
			}
			inc.dirtyBits[j] |= 16
			anc = append(anc, j)
		}
	}
	// m1 frontier: component roots for C dirt (topmost moved w1 is the
	// root), the nodes themselves for R dirt.
	inc.resetSpans(inc.spanLo, inc.spanHi)
	for _, j := range anc {
		if cp.Parent[j] == rctree.Source {
			inc.extendSpan(inc.spanLo, inc.spanHi, j)
		}
	}
	for _, k := range inc.dirtyR1 {
		inc.extendSpan(inc.spanLo, inc.spanHi, k)
	}
	m1Touched := inc.propagateSpansDown(inc.spanLo, inc.spanHi)

	// rkk region: subtrees of R-dirty nodes only.
	rkkTouched := 0
	if len(inc.dirtyR1) > 0 {
		inc.resetSpans(inc.wspanLo, inc.wspanHi)
		for _, k := range inc.dirtyR1 {
			inc.extendSpan(inc.wspanLo, inc.wspanHi, k)
		}
		rkkTouched = inc.propagateSpansDown(inc.wspanLo, inc.wspanHi)
	}

	planned := len(anc) + m1Touched + rkkTouched
	full := 2 * n
	if len(inc.dirtyR1) > 0 {
		full = 3 * n
	}
	if float64(planned) > inc.CrossoverFraction*float64(full) {
		inc.stats.FullFallbacks++
		telemetry.C("incremental.full_fallbacks").Inc()
		inc.fullSweeps(true, false)
		inc.stats.NodesTouched += int64(full)
		telemetry.C("incremental.nodes_touched").Add(int64(full))
	} else {
		// w1 fix-up: ancestors of C dirt, children before parents.
		// Walk order already has children before their own ancestors,
		// but separate walks interleave, so sort descending (compiled
		// numbering puts parents strictly before children).
		sort.Slice(anc, func(a, b int) bool { return anc[a] > anc[b] })
		cs, par := cp.ChildStart, cp.Parent
		for _, j := range anc {
			d := inc.c[j]
			for ch := cs[j]; ch < cs[j+1]; ch++ {
				d += inc.w1[ch]
			}
			inc.w1[j] = d
		}
		// m1 over the frontier subtrees, parents before children.
		inc.sweepDown(inc.spanLo, inc.spanHi, func(i int32) {
			v := -(inc.r[i] * inc.w1[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m1[p]
			}
			inc.m1[i] = v
		})
		// rkk over the R-dirty subtrees.
		if rkkTouched > 0 {
			inc.sweepDown(inc.wspanLo, inc.wspanHi, func(i int32) {
				a := inc.r[i]
				if p := par[i]; p != rctree.Source {
					a += inc.rkk[p]
				}
				inc.rkk[i] = a
			})
		}
		inc.stats.NodesTouched += int64(planned)
		telemetry.C("incremental.nodes_touched").Add(int64(planned))
	}

	for _, j := range anc {
		inc.dirtyBits[j] &^= 16
	}
	for _, k := range inc.dirtyC1 {
		inc.dirtyBits[k] &^= 1
	}
	for _, k := range inc.dirtyR1 {
		inc.dirtyBits[k] &^= 2
	}
	inc.ancBuf = anc[:0]
	inc.dirtyC1 = inc.dirtyC1[:0]
	inc.dirtyR1 = inc.dirtyR1[:0]
	inc.stage1Clean = true
}

// flush3 re-cleans orders 2-3 and T_P, after ensuring order 1 is
// clean. The dependency cone forces the m2/m3 sweeps over the full
// affected root components (see the type comment); the w2 sweep is the
// one pass that stays small under ΔR-only dirt (perturbed subtrees
// plus their root paths).
func (inc *Incremental) flush3() {
	inc.flush1()
	if inc.stage3Clean {
		return
	}
	cp := inc.cp
	n := inc.n
	cs, par := cp.ChildStart, cp.Parent
	inc.stats.Flushes++
	telemetry.C("incremental.flushes").Inc()

	// m1-moved region since the last stage-3 flush: subtrees of R-dirty
	// nodes, full components of C-dirty nodes. Its ancestor closure
	// (the w2 region) adds the frontier nodes' root paths.
	inc.resetSpans(inc.spanLo, inc.spanHi)
	anc := inc.ancBuf[:0]
	frontier := anc // reuse backing for the frontier list
	nf := 0
	mark := func(j int32) {
		if inc.dirtyBits[j]&16 == 0 {
			inc.dirtyBits[j] |= 16
			frontier = append(frontier, j)
			nf++
		}
	}
	for _, k := range inc.dirtyC3 {
		// Component root of k.
		j := k
		for par[j] != rctree.Source {
			j = int32(par[j])
		}
		mark(j)
	}
	for _, k := range inc.dirtyR3 {
		mark(k)
	}
	for _, f := range frontier {
		inc.extendSpan(inc.spanLo, inc.spanHi, f)
	}
	m1Moved := inc.propagateSpansDown(inc.spanLo, inc.spanHi)

	// w2 region = m1-moved spans ∪ root paths of the frontier.
	copy(inc.wspanLo, inc.spanLo)
	copy(inc.wspanHi, inc.spanHi)
	pathNodes := 0
	for _, f := range frontier {
		for j := int32(par[f]); j != rctree.Source; j = int32(par[j]) {
			inc.extendSpan(inc.wspanLo, inc.wspanHi, j)
			pathNodes++
		}
	}
	w2Touched := inc.spanSize(inc.wspanLo, inc.wspanHi)

	// m2/m3 (and w3) regions: full components of everything dirty —
	// the w2 dirt reaches the component roots, and every descendant of
	// a dirty root moves.
	inc.resetSpans(inc.spanLo, inc.spanHi)
	for _, f := range frontier {
		j := f
		for par[j] != rctree.Source {
			j = int32(par[j])
		}
		inc.extendSpan(inc.spanLo, inc.spanHi, j)
	}
	compTouched := inc.propagateSpansDown(inc.spanLo, inc.spanHi)

	planned := w2Touched + 3*compTouched
	if float64(planned) > inc.CrossoverFraction*float64(4*n) {
		inc.stats.FullFallbacks++
		telemetry.C("incremental.full_fallbacks").Inc()
		inc.fullSweeps(false, true)
		inc.stats.NodesTouched += int64(4 * n)
		telemetry.C("incremental.nodes_touched").Add(int64(4 * n))
		// The moved hull is everything.
		for l := 0; l < cp.Levels(); l++ {
			inc.movedLo[l] = cp.LevelStart[l]
			inc.movedHi[l] = cp.LevelStart[l+1]
		}
	} else {
		inc.sweepUp(inc.wspanLo, inc.wspanHi, func(i int32) {
			d := inc.c[i] * inc.m1[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += inc.w2[ch]
			}
			inc.w2[i] = d
		})
		inc.sweepDown(inc.spanLo, inc.spanHi, func(i int32) {
			v := -(inc.r[i] * inc.w2[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m2[p]
			}
			inc.m2[i] = v
		})
		inc.sweepUp(inc.spanLo, inc.spanHi, func(i int32) {
			d := inc.c[i] * inc.m2[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += inc.w3[ch]
			}
			inc.w3[i] = d
		})
		inc.sweepDown(inc.spanLo, inc.spanHi, func(i int32) {
			v := -(inc.r[i] * inc.w3[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m3[p]
			}
			inc.m3[i] = v
		})
		inc.stats.NodesTouched += int64(planned)
		telemetry.C("incremental.nodes_touched").Add(int64(planned))
		for l := range inc.spanLo {
			if inc.spanLo[l] < inc.spanHi[l] {
				if inc.spanLo[l] < inc.movedLo[l] {
					inc.movedLo[l] = inc.spanLo[l]
				}
				if inc.spanHi[l] > inc.movedHi[l] {
					inc.movedHi[l] = inc.spanHi[l]
				}
			}
		}
	}
	_ = m1Moved
	_ = pathNodes

	// T_P: same reduction order as ComputePRH (tree pre-order over the
	// current values), re-run whenever anything moved.
	inc.recomputeTP()

	for _, f := range frontier {
		inc.dirtyBits[f] &^= 16
	}
	for _, k := range inc.dirtyC3 {
		inc.dirtyBits[k] &^= 4
	}
	for _, k := range inc.dirtyR3 {
		inc.dirtyBits[k] &^= 8
	}
	inc.ancBuf = frontier[:0]
	inc.dirtyC3 = inc.dirtyC3[:0]
	inc.dirtyR3 = inc.dirtyR3[:0]
	inc.stage3Clean = true
}

func (inc *Incremental) recomputeTP() {
	from := inc.cp.FromUser
	var tp float64
	for _, u := range inc.tree.PreOrder() {
		ci := from[u]
		tp += inc.rkk[ci] * inc.c[ci]
	}
	inc.tp = tp
}

// fullSweeps runs the plain serial kernels over the whole tree into
// the engine's arrays: the order-1 group (w1 up, m1 down, rkk down)
// and/or the order-2/3 group (w2 up, m2 down, w3 up, m3 down, T_P).
// These are the exact expressions of computeSerial/prhInto, so the
// results are bit-identical to a fresh Compute/ComputePRH.
func (inc *Incremental) fullSweeps(stage1, stage3 bool) {
	cp := inc.cp
	n := inc.n
	cs, par := cp.ChildStart, cp.Parent
	if stage1 {
		for i := n - 1; i >= 0; i-- {
			d := inc.c[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += inc.w1[ch]
			}
			inc.w1[i] = d
		}
		for i := 0; i < n; i++ {
			v := -(inc.r[i] * inc.w1[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m1[p]
			}
			inc.m1[i] = v
		}
		for i := 0; i < n; i++ {
			a := inc.r[i]
			if p := par[i]; p != rctree.Source {
				a += inc.rkk[p]
			}
			inc.rkk[i] = a
		}
	}
	if stage3 {
		for i := n - 1; i >= 0; i-- {
			d := inc.c[i] * inc.m1[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += inc.w2[ch]
			}
			inc.w2[i] = d
		}
		for i := 0; i < n; i++ {
			v := -(inc.r[i] * inc.w2[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m2[p]
			}
			inc.m2[i] = v
		}
		for i := n - 1; i >= 0; i-- {
			d := inc.c[i] * inc.m2[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += inc.w3[ch]
			}
			inc.w3[i] = d
		}
		for i := 0; i < n; i++ {
			v := -(inc.r[i] * inc.w3[i])
			if p := par[i]; p != rctree.Source {
				v += inc.m3[p]
			}
			inc.m3[i] = v
		}
		inc.recomputeTP()
	}
}

// --- Span bookkeeping ---
//
// A dirty region is held as one conservative [lo, hi) hull per depth
// level of the compiled index space. BFS numbering makes every subtree
// contiguous per level, so descendant regions propagate level to level
// through ChildStart: children(span [lo,hi)) = [ChildStart[lo],
// ChildStart[hi]). Hulls over several subtrees may cover clean nodes
// in between; re-evaluating a clean node with the standard kernel
// rewrites the bits it already has, so hull slack costs time, never
// correctness.

func (inc *Incremental) resetSpans(lo, hi []int32) {
	for l := range lo {
		lo[l] = int32(inc.n)
		hi[l] = 0
	}
}

func (inc *Incremental) extendSpan(lo, hi []int32, node int32) {
	l := inc.level[node]
	if node < lo[l] {
		lo[l] = node
	}
	if node+1 > hi[l] {
		hi[l] = node + 1
	}
}

// propagateSpansDown closes the spans downward (each level's hull
// extends to cover its nodes' children) and returns the total node
// count covered.
func (inc *Incremental) propagateSpansDown(lo, hi []int32) int {
	cs := inc.cp.ChildStart
	total := 0
	for l := 0; l < len(lo); l++ {
		if lo[l] >= hi[l] {
			continue
		}
		total += int(hi[l] - lo[l])
		if l+1 < len(lo) {
			clo, chi := cs[lo[l]], cs[hi[l]]
			if clo < chi {
				if clo < lo[l+1] {
					lo[l+1] = clo
				}
				if chi > hi[l+1] {
					hi[l+1] = chi
				}
			}
		}
	}
	return total
}

func (inc *Incremental) spanSize(lo, hi []int32) int {
	total := 0
	for l := range lo {
		if lo[l] < hi[l] {
			total += int(hi[l] - lo[l])
		}
	}
	return total
}

// sweepDown applies fn over the spans parents-first (ascending levels,
// ascending index within a level).
func (inc *Incremental) sweepDown(lo, hi []int32, fn func(i int32)) {
	for l := 0; l < len(lo); l++ {
		for i := lo[l]; i < hi[l]; i++ {
			fn(i)
		}
	}
}

// sweepUp applies fn over the spans children-first (descending levels,
// descending index within a level).
func (inc *Incremental) sweepUp(lo, hi []int32, fn func(i int32)) {
	for l := len(lo) - 1; l >= 0; l-- {
		for i := hi[l] - 1; i >= lo[l]; i-- {
			fn(i)
		}
	}
}
