package moments

import (
	"elmore/internal/rctree"
)

// PRHTerms carries the three per-tree / per-node quantities that enter
// the Penfield-Rubinstein-Horowitz step-response bounds (paper eq. 16):
//
//	T_P     = sum_k R_kk C_k          (one per tree)
//	T_D(i)  = sum_k R_ki C_k          (the Elmore delay)
//	T_R(i)  = sum_k R_ki^2 C_k / R_ii
//
// All are computed exactly. T_P and T_D come from O(N) traversals;
// T_R(i) costs O(depth(i)) per node after O(N) preprocessing, so
// computing it for all nodes is O(N * depth) — effectively linear for
// the bushy trees used in timing analysis.
type PRHTerms struct {
	tree *rctree.Tree
	TP   float64   // sum_k R_kk C_k
	TD   []float64 // Elmore delays, indexed by node
	rkk  []float64 // path resistance R_kk per node
	down []float64 // downstream capacitance per node
}

// ComputePRH computes the PRH bound terms for a tree. The path-
// resistance accumulation runs on the compiled plan like the other
// O(N) traversals; the T_P reduction keeps the historical pre-order
// summation order so results are reproducible across releases.
func ComputePRH(t *rctree.Tree) *PRHTerms {
	n := t.N()
	p := &PRHTerms{
		tree: t,
		TD:   ElmoreDelays(t),
		rkk:  make([]float64, n),
		down: t.DownstreamC(),
	}
	cp := rctree.Compile(t)
	rkkC := make([]float64, n) // compiled-order workspace
	if !cp.ParallelOK() {
		// Plain loop: the closure form below escapes to the heap, and
		// small nets should not pay that allocation.
		for i := 0; i < n; i++ {
			a := cp.R[i]
			if pa := cp.Parent[i]; pa != rctree.Source {
				a += rkkC[pa]
			}
			rkkC[i] = a
			p.rkk[cp.ToUser[i]] = a
		}
	} else {
		cp.EachLevelDown(true, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a := cp.R[i]
				if pa := cp.Parent[i]; pa != rctree.Source {
					a += rkkC[pa]
				}
				rkkC[i] = a
				p.rkk[cp.ToUser[i]] = a
			}
		})
	}
	for _, i := range t.PreOrder() {
		p.TP += p.rkk[i] * t.C(i)
	}
	return p
}

// PathResistance returns R_ii for node i (cached).
func (p *PRHTerms) PathResistance(i int) float64 { return p.rkk[i] }

// TR returns T_R(i) = sum_k R_ki^2 C_k / R_ii.
//
// For each node j on the source-to-i path, every capacitor k whose
// deepest common ancestor with i is j contributes R_ki = R_jj. Those
// capacitors are exactly subtree(j) minus subtree(next path node), plus
// — for j the path's root — everything outside the root's subtree
// contributes zero (their shared path resistance with i is zero, since
// sibling root subtrees share no resistors).
func (p *PRHTerms) TR(i int) float64 {
	t := p.tree
	var sum float64
	prevDown := 0.0 // downstream cap of the previous (deeper) path node
	for j := i; j != rctree.Source; j = t.Parent(j) {
		attachedC := p.down[j] - prevDown
		sum += p.rkk[j] * p.rkk[j] * attachedC
		prevDown = p.down[j]
	}
	return sum / p.rkk[i]
}

// TRDirect computes T_R(i) by the O(N) definition as an independent
// oracle for tests.
func TRDirect(t *rctree.Tree, i int) float64 {
	var sum float64
	for k := 0; k < t.N(); k++ {
		rki := t.SharedPathResistance(i, k)
		sum += rki * rki * t.C(k)
	}
	return sum / t.PathResistance(i)
}

// TPDirect computes T_P by the O(N * depth) definition as an
// independent oracle for tests.
func TPDirect(t *rctree.Tree) float64 {
	var sum float64
	for k := 0; k < t.N(); k++ {
		sum += t.PathResistance(k) * t.C(k)
	}
	return sum
}
