package moments

import (
	"elmore/internal/rctree"
)

// PRHTerms carries the three per-tree / per-node quantities that enter
// the Penfield-Rubinstein-Horowitz step-response bounds (paper eq. 16):
//
//	T_P     = sum_k R_kk C_k          (one per tree)
//	T_D(i)  = sum_k R_ki C_k          (the Elmore delay)
//	T_R(i)  = sum_k R_ki^2 C_k / R_ii
//
// All are computed exactly. T_P and T_D come from O(N) traversals;
// T_R(i) costs O(depth(i)) per node after O(N) preprocessing, so
// computing it for all nodes is O(N * depth) — effectively linear for
// the bushy trees used in timing analysis.
type PRHTerms struct {
	tree *rctree.Tree
	TP   float64   // sum_k R_kk C_k
	TD   []float64 // Elmore delays, indexed by node
	rkk  []float64 // path resistance R_kk per node
	down []float64 // downstream capacitance per node
}

// ComputePRH computes the PRH bound terms for a tree. The path-
// resistance accumulation runs on the compiled plan like the other
// O(N) traversals; the T_P reduction keeps the historical pre-order
// summation order so results are reproducible across releases.
//
// Allocation shape: the three retained per-node arrays (TD, rkk, down)
// share one user-indexed backing, and the two compiled-order sweep
// buffers share another that dies with this call — three allocations
// total instead of the seven the per-array form cost. The kernels are
// the same gather-form sweeps ElmoreDelays and Tree.DownstreamC run,
// in the same order, so the results are bit-identical to computing
// each term independently.
func ComputePRH(t *rctree.Tree) *PRHTerms {
	return ComputePRHWith(t, nil)
}

// ComputePRHWith is ComputePRH drawing its two compiled-order sweep
// buffers from the caller's arena instead of allocating them — the
// per-worker fast path of the batch engine. The retained per-node
// arrays (TD, rkk, down) always get their own backing, so the returned
// PRHTerms may outlive the arena. A nil arena makes this identical to
// ComputePRH, and results are bit-identical either way (the kernels
// write every scratch slot before reading it).
func ComputePRHWith(t *rctree.Tree, ar *Arena) *PRHTerms {
	n := t.N()
	cp := rctree.Compile(t)
	user := make([]float64, 3*n)
	p := &PRHTerms{
		tree: t,
		TD:   user[0:n:n],
		rkk:  user[n : 2*n : 2*n],
		down: user[2*n : 3*n : 3*n],
	}
	scratch := ar.scratch(2 * n)
	prhInto(cp, p.TD, p.rkk, p.down, scratch[:n], scratch[n:], cp.ParallelOK())
	for _, i := range t.PreOrder() {
		p.TP += p.rkk[i] * t.C(i)
	}
	return p
}

// prhInto runs the three PRH sweeps on the compiled plan:
//
//  1. upward: downC[i] = subtree capacitance (scattered to the
//     user-indexed down array) — the Tree.DownstreamC kernel;
//  2. downward: Elmore accumulation reusing downC in place as the
//     accumulator (the elmoreInto kernel), scattered to td;
//  3. downward: path resistance R_ii into rkkC, scattered to rkk.
//
// Neither scratch needs to be zeroed: every slot is written before it
// is read. Pass 2 destroys downC, which is safe because pass 1 already
// scattered the downstream capacitances to the user array. The serial
// path runs plain loops so small nets pay no closure allocations; the
// parallel kernels are gather-form, hence bit-identical to serial.
func prhInto(cp *rctree.Compiled, td, rkk, down, downC, rkkC []float64, parallel bool) {
	n := cp.N()
	r, c, cs, par, toUser := cp.R, cp.C, cp.ChildStart, cp.Parent, cp.ToUser
	acc := downC // pass 2 overwrites downC[i] only after it is consumed
	if !parallel {
		for i := n - 1; i >= 0; i-- {
			d := c[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += downC[ch]
			}
			downC[i] = d
			down[toUser[i]] = d
		}
		for i := 0; i < n; i++ {
			a := r[i] * downC[i]
			if p := par[i]; p != rctree.Source {
				a += acc[p]
			}
			acc[i] = a
			td[toUser[i]] = a
		}
		for i := 0; i < n; i++ {
			a := r[i]
			if p := par[i]; p != rctree.Source {
				a += rkkC[p]
			}
			rkkC[i] = a
			rkk[toUser[i]] = a
		}
		return
	}
	cp.EachLevelUp(true, func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			d := c[i]
			for ch := cs[i]; ch < cs[i+1]; ch++ {
				d += downC[ch]
			}
			downC[i] = d
			down[toUser[i]] = d
		}
	})
	cp.EachLevelDown(true, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := r[i] * downC[i]
			if p := par[i]; p != rctree.Source {
				a += acc[p]
			}
			acc[i] = a
			td[toUser[i]] = a
		}
	})
	cp.EachLevelDown(true, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := r[i]
			if p := par[i]; p != rctree.Source {
				a += rkkC[p]
			}
			rkkC[i] = a
			rkk[toUser[i]] = a
		}
	})
}

// PathResistance returns R_ii for node i (cached).
func (p *PRHTerms) PathResistance(i int) float64 { return p.rkk[i] }

// TR returns T_R(i) = sum_k R_ki^2 C_k / R_ii.
//
// For each node j on the source-to-i path, every capacitor k whose
// deepest common ancestor with i is j contributes R_ki = R_jj. Those
// capacitors are exactly subtree(j) minus subtree(next path node), plus
// — for j the path's root — everything outside the root's subtree
// contributes zero (their shared path resistance with i is zero, since
// sibling root subtrees share no resistors).
func (p *PRHTerms) TR(i int) float64 {
	t := p.tree
	var sum float64
	prevDown := 0.0 // downstream cap of the previous (deeper) path node
	for j := i; j != rctree.Source; j = t.Parent(j) {
		attachedC := p.down[j] - prevDown
		sum += p.rkk[j] * p.rkk[j] * attachedC
		prevDown = p.down[j]
	}
	return sum / p.rkk[i]
}

// TRDirect computes T_R(i) by the O(N) definition as an independent
// oracle for tests.
func TRDirect(t *rctree.Tree, i int) float64 {
	var sum float64
	for k := 0; k < t.N(); k++ {
		rki := t.SharedPathResistance(i, k)
		sum += rki * rki * t.C(k)
	}
	return sum / t.PathResistance(i)
}

// TPDirect computes T_P by the O(N * depth) definition as an
// independent oracle for tests.
func TPDirect(t *rctree.Tree) float64 {
	var sum float64
	for k := 0; k < t.N(); k++ {
		sum += t.PathResistance(k) * t.C(k)
	}
	return sum
}
