package moments

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func TestCapThroughSeriesR(t *testing.T) {
	// Y of C through series R: y1 = C, y2 = -R C^2, y3 = R^2 C^3.
	const r, c = 250.0, 3e-12
	y := CapAdmittance(c).SeriesR(r)
	if !approx(y.Y1, c, 1e-12) {
		t.Errorf("y1 = %v, want %v", y.Y1, c)
	}
	if !approx(y.Y2, -r*c*c, 1e-12) {
		t.Errorf("y2 = %v, want %v", y.Y2, -r*c*c)
	}
	if !approx(y.Y3, r*r*c*c*c, 1e-12) {
		t.Errorf("y3 = %v, want %v", y.Y3, r*r*c*c*c)
	}
}

func TestParallel(t *testing.T) {
	a := Admittance{1, 2, 3}
	b := Admittance{10, 20, 30}
	got := a.Parallel(b)
	if got != (Admittance{11, 22, 33}) {
		t.Errorf("Parallel = %+v", got)
	}
}

// Input admittance moments must agree with the transfer-function route:
// for a single-root tree, Y_in(s) = (1 - H_root(s)) / R_root, so
// y_q = -m_q(root)/R_root for q >= 1.
func TestInputAdmittanceVersusMoments(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 40)
		roots := tree.Roots()
		if len(roots) != 1 {
			return true // generator builds single-root trees; skip others
		}
		root := roots[0]
		s, err := Compute(tree, 3)
		if err != nil {
			return false
		}
		y := InputAdmittance(tree)
		r := tree.R(root)
		return approx(y.Y1, -s.M(1, root)/r, 1e-9) &&
			approx(y.Y2, -s.M(2, root)/r, 1e-9) &&
			approx(y.Y3, -s.M(3, root)/r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// y1 of any downstream admittance equals the downstream capacitance.
func TestY1IsDownstreamCap(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 50)
		down := tree.DownstreamC()
		ys := DownstreamAdmittances(tree)
		for i := 0; i < tree.N(); i++ {
			if !approx(ys[i].Y1, down[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestInputAdmittanceMultiRoot(t *testing.T) {
	b := rctree.NewBuilder()
	b.MustRoot("a", 100, 1e-12)
	b.MustRoot("b", 200, 2e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	y := InputAdmittance(tree)
	want := CapAdmittance(1e-12).SeriesR(100).Parallel(CapAdmittance(2e-12).SeriesR(200))
	if !approx(y.Y1, want.Y1, 1e-12) || !approx(y.Y2, want.Y2, 1e-12) || !approx(y.Y3, want.Y3, 1e-12) {
		t.Errorf("multi-root admittance = %+v, want %+v", y, want)
	}
}

// Admittance moment signs for any RC tree: y1 > 0, y2 < 0, y3 > 0
// (alternating, from the interlacing negative poles/zeros of RC
// driving-point admittances).
func TestAdmittanceSignPattern(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 50)
		y := InputAdmittance(tree)
		return y.Y1 > 0 && y.Y2 < 0 && y.Y3 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPRHTermsOracles(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 40)
		p := ComputePRH(tree)
		if !approx(p.TP, TPDirect(tree), 1e-10) {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if !approx(p.TR(i), TRDirect(tree, i), 1e-10) {
				return false
			}
			if !approx(p.PathResistance(i), tree.PathResistance(i), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// PRH invariants used by the bound formulas: T_R(i) <= T_D(i) <= T_P,
// and at any node T_R > 0.
func TestPRHOrdering(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 50)
		p := ComputePRH(tree)
		for i := 0; i < tree.N(); i++ {
			tr := p.TR(i)
			if tr <= 0 {
				return false
			}
			if tr > p.TD[i]*(1+1e-12) {
				return false
			}
			if p.TD[i] > p.TP*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPRHFig1Values(t *testing.T) {
	// For the calibrated Fig. 1 circuit, T_R at the driving point equals
	// T_D there (every R_k1 is the root resistance), which is what makes
	// PRH t_max collapse to T_D at the driving point (paper Table I).
	tree := topo.Fig1Tree()
	p := ComputePRH(tree)
	c1 := tree.MustIndex("C1")
	if !approx(p.TR(c1), p.TD[c1], 1e-12) {
		t.Errorf("T_R(C1) = %v, want T_D(C1) = %v", p.TR(c1), p.TD[c1])
	}
	if p.TP <= p.TD[c1] {
		t.Errorf("T_P = %v should exceed T_D(C1) = %v", p.TP, p.TD[c1])
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120}
	for n, w := range want {
		if got := factorial(n); got != w {
			t.Errorf("factorial(%d) = %v, want %v", n, got, w)
		}
	}
	_ = math.Pi // keep math import if cases change
}
