package moments

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

// singleRC returns the one-node tree: source -R- node(C).
func singleRC(t *testing.T, r, c float64) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// twoNodeChain returns source -R1- n1(C1) -R2- n2(C2).
func twoNodeChain(t *testing.T, r1, c1, r2, c2 float64) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", r1, c1)
	b.MustAttach(n1, "n2", r2, c2)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSingleRCMoments(t *testing.T) {
	// H(s) = 1/(1 + sRC) => m_q = (-RC)^q.
	const r, c = 1000.0, 1e-12
	tree := singleRC(t, r, c)
	s, err := Compute(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := r * c
	for q := 0; q <= 4; q++ {
		want := math.Pow(-rc, float64(q))
		if got := s.M(q, 0); !approx(got, want, 1e-12) {
			t.Errorf("m_%d = %v, want %v", q, got, want)
		}
	}
	if got := s.Elmore(0); !approx(got, rc, 1e-12) {
		t.Errorf("Elmore = %v, want %v", got, rc)
	}
	// Exponential density: mu2 = (RC)^2, mu3 = 2 (RC)^3, skew = 2.
	if got := s.Mu2(0); !approx(got, rc*rc, 1e-12) {
		t.Errorf("mu2 = %v, want %v", got, rc*rc)
	}
	if got := s.Mu3(0); !approx(got, 2*rc*rc*rc, 1e-12) {
		t.Errorf("mu3 = %v, want %v", got, 2*rc*rc*rc)
	}
	if got := s.Skewness(0); !approx(got, 2, 1e-12) {
		t.Errorf("skew = %v, want 2", got)
	}
	if got := s.Sigma(0); !approx(got, rc, 1e-12) {
		t.Errorf("sigma = %v, want %v", got, rc)
	}
}

func TestComputeRejectsBadOrder(t *testing.T) {
	tree := singleRC(t, 1, 1e-12)
	if _, err := Compute(tree, 0); err == nil {
		t.Errorf("order 0 should be rejected")
	}
}

func TestAppendixBFormulas(t *testing.T) {
	// Paper eq. B3: m1(1) = -R1(C1+C2), m1(2) = -R1(C1+C2) - R2 C2,
	// and eq. 28/29 for the central moments at node 1.
	const r1, c1, r2, c2 = 120.0, 2e-12, 340.0, 0.7e-12
	tree := twoNodeChain(t, r1, c1, r2, c2)
	s, err := Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.M(1, 0), -r1*(c1+c2); !approx(got, want, 1e-12) {
		t.Errorf("m1(1) = %v, want %v", got, want)
	}
	if got, want := s.M(1, 1), -r1*(c1+c2)-r2*c2; !approx(got, want, 1e-12) {
		t.Errorf("m1(2) = %v, want %v", got, want)
	}
	wantMu2 := r1*r1*(c1*c1+c2*c2) + 2*r1*r1*c1*c2 + 2*r1*r2*c2*c2
	if got := s.Mu2(0); !approx(got, wantMu2, 1e-12) {
		t.Errorf("mu2(1) = %v, want %v", got, wantMu2)
	}
	wantMu3 := 6*r1*r2*c2*c2*(r1*(c1+c2)+r2*c2) + 2*math.Pow(r1*(c1+c2), 3)
	if got := s.Mu3(0); !approx(got, wantMu3, 1e-12) {
		t.Errorf("mu3(1) = %v, want %v", got, wantMu3)
	}
}

func TestDistMoment(t *testing.T) {
	const r, c = 500.0, 2e-12
	tree := singleRC(t, r, c)
	s, err := Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	rc := r * c
	// Exponential density h(t) = (1/RC) e^{-t/RC}: integral t^q h dt = q! (RC)^q.
	for q := 0; q <= 3; q++ {
		want := factorial(q) * math.Pow(rc, float64(q))
		if got := s.DistMoment(q, 0); !approx(got, want, 1e-12) {
			t.Errorf("M_%d = %v, want %v", q, got, want)
		}
	}
}

func TestElmoreFig1Calibration(t *testing.T) {
	tree := topo.Fig1Tree()
	td := ElmoreDelays(tree)
	cases := map[string]float64{
		"C1": 0.55e-9,
		"C5": 1.20e-9,
		"C7": 0.75e-9,
	}
	for name, want := range cases {
		if got := td[tree.MustIndex(name)]; !approx(got, want, 1e-9) {
			t.Errorf("T_D(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestElmoreLine25Calibration(t *testing.T) {
	tree := topo.Line25Tree()
	td := ElmoreDelays(tree)
	if got := td[tree.MustIndex(topo.Line25NodeA)]; !approx(got, 0.02e-9, 1e-9) {
		t.Errorf("T_D(A) = %v, want 0.02ns", got)
	}
	if got := td[tree.MustIndex(topo.Line25NodeC)]; !approx(got, 1.56e-9, 1e-9) {
		t.Errorf("T_D(C) = %v, want 1.56ns", got)
	}
}

func TestElmoreMatchesDirectOracle(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 40)
		td := ElmoreDelays(tree)
		s, err := Compute(tree, 1)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			direct := ElmoreDelayDirect(tree, i)
			if !approx(td[i], direct, 1e-10) || !approx(s.Elmore(i), direct, 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Lemma 2 (paper): mu2 >= 0 and mu3 >= 0 at every node of any RC tree,
// hence skewness gamma >= 0.
func TestLemma2NonnegativeSkew(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 60)
		s, err := Compute(tree, 3)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if s.Mu2(i) < -1e-30 || s.Mu3(i) < -1e-40 {
				return false
			}
			if s.Skewness(i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Section IV-B: along any root-to-leaf path, mu2 and mu3 are
// nondecreasing (central moments add under convolution with each
// further segment, and each increment is nonnegative).
func TestCentralMomentsGrowDownstream(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 60)
		s, err := Compute(tree, 3)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			p := tree.Parent(i)
			if p == rctree.Source {
				continue
			}
			if s.Mu2(i) < s.Mu2(p)*(1-1e-12) {
				return false
			}
			if s.Mu3(i) < s.Mu3(p)*(1-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMomentsMonotoneDownstream(t *testing.T) {
	// The Elmore delay itself must strictly increase downstream.
	tree := topo.Line25Tree()
	td := ElmoreDelays(tree)
	for i := 1; i < tree.N(); i++ {
		if td[i] <= td[i-1] {
			t.Fatalf("T_D not increasing along line: td[%d]=%v td[%d]=%v", i-1, td[i-1], i, td[i])
		}
	}
}

func TestSigmaZeroClamp(t *testing.T) {
	// Sigma clamps tiny negative mu2 (roundoff) to zero rather than NaN.
	s := &Set{order: 2, m: [][]float64{{1}, {0}, {-1e-40}}}
	if got := s.Sigma(0); got != 0 {
		t.Errorf("Sigma = %v, want 0", got)
	}
	if got := s.Skewness(0); got != 0 {
		t.Errorf("Skewness on zero-variance = %v, want 0", got)
	}
}

func TestMPanicsOutOfRange(t *testing.T) {
	tree := singleRC(t, 1, 1e-12)
	s, err := Compute(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("M(5, 0) should panic")
		}
	}()
	s.M(5, 0)
}

func TestOrderAndTreeAccessors(t *testing.T) {
	tree := singleRC(t, 1, 1e-12)
	s, err := Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Order() != 3 || s.Tree() != tree {
		t.Errorf("accessors wrong")
	}
}

func TestMRejectsBadNodeIndex(t *testing.T) {
	tree := twoNodeChain(t, 100, 1e-12, 50, 1e-12)
	ms, err := Compute(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "node index") || !strings.Contains(msg, "out of range") {
				t.Errorf("%s: unhelpful panic message %q", name, msg)
			}
		}()
		f()
	}
	mustPanic("negative index", func() { ms.M(1, -1) })
	mustPanic("index == N", func() { ms.M(1, tree.N()) })
	mustPanic("index past N", func() { ms.M(0, tree.N()+7) })
	// In-range lookups still work after the check.
	if got := ms.M(0, tree.N()-1); got != 1 {
		t.Errorf("M(0, last) = %v, want 1", got)
	}
}
