package moments

import (
	"fmt"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// The level-parallel schedule must reproduce the serial sweep
// bit-for-bit: tree elimination order is deterministic and the kernels
// are gather-form, so there is no legitimate source of divergence.
func TestComputeParallelBitIdentical(t *testing.T) {
	trees := map[string]*rctree.Tree{
		"fig1":     topo.Fig1Tree(),
		"line25":   topo.Line25Tree(),
		"random1k": topo.Random(9, topo.RandomOptions{N: 1000}),
		"star":     topo.Star(300, 3, 50, 2e-14),
		"balanced": topo.Balanced(8, 3, 75, 1e-14),
	}
	for name, tree := range trees {
		t.Run(name, func(t *testing.T) {
			cp := rctree.Compile(tree)
			const order = 5
			mk := func(parallel bool) *Set {
				s := &Set{tree: tree, order: order, m: make([][]float64, order+1)}
				for q := range s.m {
					s.m[q] = make([]float64, tree.N())
				}
				computeCompiled(cp, s, parallel)
				return s
			}
			serial, par := mk(false), mk(true)
			for q := 1; q <= order; q++ {
				for i := 0; i < tree.N(); i++ {
					if serial.m[q][i] != par.m[q][i] {
						t.Fatalf("m[%d][%d]: serial %v != parallel %v",
							q, i, serial.m[q][i], par.m[q][i])
					}
				}
			}
			// ElmoreDelays kernel too.
			tdS := make([]float64, tree.N())
			tdP := make([]float64, tree.N())
			elmoreCompiled(cp, tdS, false)
			elmoreCompiled(cp, tdP, true)
			for i := range tdS {
				if tdS[i] != tdP[i] {
					t.Fatalf("td[%d]: serial %v != parallel %v", i, tdS[i], tdP[i])
				}
			}
		})
	}
}

// The compiled recurrence must agree with the O(N^2) definitional
// oracle regardless of topology.
func TestCompiledMatchesDirectOracle(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		tree := topo.RandomSmall(seed, 40)
		s, err := Compute(tree, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tree.N(); i++ {
			want := ElmoreDelayDirect(tree, i)
			got := s.Elmore(i)
			if diff := got - want; diff > 1e-18+1e-12*want || diff < -(1e-18+1e-12*want) {
				t.Fatalf("seed %d node %d: Elmore %v, direct %v", seed, i, got, want)
			}
		}
	}
}

// Moment sets computed before and after a SetR round-trip must agree:
// the compiled-plan cache has to rebuild on mutation, not serve stale
// element values.
func TestComputeSeesMutations(t *testing.T) {
	tree := topo.Random(4, topo.RandomOptions{N: 200})
	before, err := Compute(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := tree.R(17)
	if err := tree.SetR(17, orig*3); err != nil {
		t.Fatal(err)
	}
	during, err := Compute(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if during.Elmore(17) == before.Elmore(17) {
		t.Fatal("moments did not observe SetR (stale compiled plan?)")
	}
	if err := tree.SetR(17, orig); err != nil {
		t.Fatal(err)
	}
	after, err := Compute(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if after.Elmore(i) != before.Elmore(i) {
			t.Fatalf("node %d: Elmore not restored after SetR round-trip", i)
		}
	}
}

func ExampleElmoreDelays() {
	td := ElmoreDelays(topo.Fig1Tree())
	tree := topo.Fig1Tree()
	i, _ := tree.Index("C5")
	fmt.Printf("T_D(C5) = %.2fns\n", td[i]*1e9)
	// Output: T_D(C5) = 1.20ns
}
