package moments

import (
	"testing"

	"elmore/internal/topo"
)

// Allocation budgets for the serial (small-net) path. These are exact
// counts, not estimates — a new make, a closure capture of a reassigned
// variable, or an interface conversion on the hot path shows up here as
// a +1 before it shows up as a benchmark regression.
//
//	Compute:     Set header, row slice header array, row backing,
//	             sweep scratch                                   = 4
//	ComputePRH:  PRHTerms, fused user backing, compiled scratch  = 3
//	ElmoreDelays: td, compiled scratch                           = 2
const (
	computeAllocBudget = 4
	prhAllocBudget     = 3
	elmoreAllocBudget  = 2
)

func TestComputeAllocBudget(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 300})
	if _, err := Compute(tree, 3); err != nil { // warm the compiled-plan cache
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := Compute(tree, 3); err != nil {
			t.Fatal(err)
		}
	})
	if got > computeAllocBudget {
		t.Errorf("Compute(order=3) = %.1f allocs/op, budget %d", got, computeAllocBudget)
	}
}

func TestComputePRHAllocBudget(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 300})
	ComputePRH(tree)
	got := testing.AllocsPerRun(200, func() { ComputePRH(tree) })
	if got > prhAllocBudget {
		t.Errorf("ComputePRH = %.1f allocs/op, budget %d", got, prhAllocBudget)
	}
}

func TestElmoreDelaysAllocBudget(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 300})
	ElmoreDelays(tree)
	got := testing.AllocsPerRun(200, func() { ElmoreDelays(tree) })
	if got > elmoreAllocBudget {
		t.Errorf("ElmoreDelays = %.1f allocs/op, budget %d", got, elmoreAllocBudget)
	}
}

// The fused ComputePRH must produce bit-identical terms to computing
// each ingredient with its standalone public API: the sweeps are the
// same gather-form kernels in the same order, so there is no legitimate
// source of divergence — not even in the last ulp.
func TestComputePRHBitIdenticalToStandalone(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tree := topo.Random(seed, topo.RandomOptions{N: 500})
		p := ComputePRH(tree)
		td := ElmoreDelays(tree)
		down := tree.DownstreamC()
		for i := 0; i < tree.N(); i++ {
			if p.TD[i] != td[i] {
				t.Fatalf("seed %d node %d: fused TD %v != ElmoreDelays %v", seed, i, p.TD[i], td[i])
			}
			if p.down[i] != down[i] {
				t.Fatalf("seed %d node %d: fused down %v != DownstreamC %v", seed, i, p.down[i], down[i])
			}
		}
	}
}

func BenchmarkComputeOrder3(b *testing.B) {
	tree := topo.Random(11, topo.RandomOptions{N: 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(tree, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputePRH(b *testing.B) {
	tree := topo.Random(11, topo.RandomOptions{N: 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ComputePRH(tree)
	}
}
