package moments

import (
	"context"
	"math"
	"testing"

	"elmore/internal/topo"
)

// Arena budgets: the arena absorbs exactly the sweep-scratch
// allocation, so each *With variant costs one alloc less than its
// allocating twin (see alloc_test.go for the base budgets).
const (
	computeArenaAllocBudget = computeAllocBudget - 1 // scratch from arena
	prhArenaAllocBudget     = prhAllocBudget - 1
)

// dirtyArena returns an arena whose buffer is pre-poisoned with NaN at
// a capacity larger than any test tree needs: if a kernel ever reads a
// scratch slot before writing it, the NaN propagates into the result
// and the bit-identity checks below catch it.
func dirtyArena(n int) *Arena {
	ar := new(Arena)
	buf := ar.scratch(n)
	for i := range buf {
		buf[i] = math.NaN()
	}
	return ar
}

// TestComputeWithArenaBitIdentical is the arena contract: drawing the
// sweep scratch from a reused (and deliberately dirty) arena must give
// bit-identical moments to the allocating path, across trees of
// different sizes sharing one arena — growth and shrink both covered.
func TestComputeWithArenaBitIdentical(t *testing.T) {
	ar := dirtyArena(4096)
	// Descending then ascending sizes: the second pass reuses a buffer
	// larger than needed, the growth path reallocates mid-sequence.
	for _, n := range []int{900, 300, 37, 1, 500, 1200} {
		tree := topo.Random(int64(n), topo.RandomOptions{N: n})
		want, err := Compute(tree, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeWith(tree, 3, ar)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q <= 3; q++ {
			for i := 0; i < tree.N(); i++ {
				if got.M(q, i) != want.M(q, i) {
					t.Fatalf("N=%d m_%d(%d): arena %v != alloc %v", n, q, i, got.M(q, i), want.M(q, i))
				}
			}
		}
	}
}

// TestComputePRHWithArenaBitIdentical is the same contract for the
// fused PRH computation.
func TestComputePRHWithArenaBitIdentical(t *testing.T) {
	ar := dirtyArena(4096)
	for _, n := range []int{700, 50, 1500} {
		tree := topo.Random(int64(n), topo.RandomOptions{N: n})
		want := ComputePRH(tree)
		got := ComputePRHWith(tree, ar)
		for i := 0; i < tree.N(); i++ {
			if got.TD[i] != want.TD[i] || got.rkk[i] != want.rkk[i] || got.down[i] != want.down[i] {
				t.Fatalf("N=%d node %d: arena (TD=%v rkk=%v down=%v) != alloc (TD=%v rkk=%v down=%v)",
					n, i, got.TD[i], got.rkk[i], got.down[i], want.TD[i], want.rkk[i], want.down[i])
			}
		}
	}
}

// TestArenaResultsOutliveArena pins the ownership rule: only transient
// scratch comes from the arena, so a Set computed with it must stay
// intact after the arena's buffer is reused and scribbled over — cached
// Sets are shared across workers while arenas keep cycling.
func TestArenaResultsOutliveArena(t *testing.T) {
	ar := new(Arena)
	tree := topo.Random(3, topo.RandomOptions{N: 200})
	ms, err := ComputeWith(tree, 3, ar)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]float64, tree.N())
	for i := range snap {
		snap[i] = ms.M(1, i)
	}
	for i := range ar.buf {
		ar.buf[i] = math.NaN()
	}
	if _, err := ComputeWith(topo.Random(4, topo.RandomOptions{N: 150}), 3, ar); err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if ms.M(1, i) != snap[i] {
			t.Fatalf("node %d: cached moment changed after arena reuse: %v != %v", i, ms.M(1, i), snap[i])
		}
	}
}

func TestArenaScratchGrowsAndReuses(t *testing.T) {
	ar := new(Arena)
	a := ar.scratch(64)
	if len(a) != 64 {
		t.Fatalf("scratch(64) len = %d", len(a))
	}
	b := ar.scratch(32)
	if &b[0] != &a[0] {
		t.Errorf("shrinking request reallocated instead of reslicing")
	}
	c := ar.scratch(128)
	if len(c) != 128 {
		t.Fatalf("scratch(128) len = %d", len(c))
	}
	var nilAr *Arena
	d := nilAr.scratch(16)
	if len(d) != 16 {
		t.Errorf("nil arena scratch(16) len = %d, want a plain allocation", len(d))
	}
}

func TestWithArenaRoundTrip(t *testing.T) {
	if ArenaFrom(context.Background()) != nil {
		t.Errorf("ArenaFrom on a bare context returned a non-nil arena")
	}
	ar := new(Arena)
	ctx := WithArena(context.Background(), ar)
	if got := ArenaFrom(ctx); got != ar {
		t.Errorf("ArenaFrom = %p, want %p", got, ar)
	}
}

// Arena-fed alloc budgets: one below the allocating path, exactly the
// sweep scratch the arena absorbs.
func TestComputeWithArenaAllocBudget(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 300})
	ar := new(Arena)
	if _, err := ComputeWith(tree, 3, ar); err != nil { // warm plan cache and arena
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := ComputeWith(tree, 3, ar); err != nil {
			t.Fatal(err)
		}
	})
	if got > computeArenaAllocBudget {
		t.Errorf("ComputeWith(arena) = %.1f allocs/op, budget %d", got, computeArenaAllocBudget)
	}
}

func TestComputePRHWithArenaAllocBudget(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 300})
	ar := new(Arena)
	ComputePRHWith(tree, ar)
	got := testing.AllocsPerRun(200, func() { ComputePRHWith(tree, ar) })
	if got > prhArenaAllocBudget {
		t.Errorf("ComputePRHWith(arena) = %.1f allocs/op, budget %d", got, prhArenaAllocBudget)
	}
}
