package moments

import (
	"elmore/internal/rctree"
)

// Admittance holds the first three moments of a driving-point
// admittance expanded about s = 0:
//
//	Y(s) = Y1*s + Y2*s^2 + Y3*s^3 + ...
//
// (Y0 = 0 for any RC tree: no DC path to ground through capacitors.)
// These three moments are exactly what the O'Brien-Savarino pi-model
// (paper eq. 26) consumes.
type Admittance struct {
	Y1, Y2, Y3 float64
}

// Parallel returns the admittance of a and b in parallel: moments add.
func (a Admittance) Parallel(b Admittance) Admittance {
	return Admittance{a.Y1 + b.Y1, a.Y2 + b.Y2, a.Y3 + b.Y3}
}

// SeriesR returns the admittance seen through a series resistance r:
// Y' = Y / (1 + r*Y), expanded to third order about s = 0.
func (a Admittance) SeriesR(r float64) Admittance {
	return Admittance{
		Y1: a.Y1,
		Y2: a.Y2 - r*a.Y1*a.Y1,
		Y3: a.Y3 - 2*r*a.Y1*a.Y2 + r*r*a.Y1*a.Y1*a.Y1,
	}
}

// CapAdmittance returns the admittance moments of a grounded capacitor:
// Y(s) = c*s.
func CapAdmittance(c float64) Admittance {
	return Admittance{Y1: c}
}

// DownstreamAdmittances returns, for every node i, the admittance
// moments looking downstream into node i: the local capacitor C(i) in
// parallel with every child subtree seen through its series resistance.
// Computed with a single upward traversal on the compiled plan.
func DownstreamAdmittances(t *rctree.Tree) []Admittance {
	cp := rctree.Compile(t)
	n := cp.N()
	acc := make([]Admittance, n) // compiled-order
	out := make([]Admittance, n) // user-order
	if !cp.ParallelOK() {
		// Plain loop: the closure form below escapes to the heap, and
		// small nets should not pay that allocation.
		for i := n - 1; i >= 0; i-- {
			y := CapAdmittance(cp.C[i])
			for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
				y = y.Parallel(acc[ch].SeriesR(cp.R[ch]))
			}
			acc[i] = y
			out[cp.ToUser[i]] = y
		}
		return out
	}
	cp.EachLevelUp(true, func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			y := CapAdmittance(cp.C[i])
			for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
				y = y.Parallel(acc[ch].SeriesR(cp.R[ch]))
			}
			acc[i] = y
			out[cp.ToUser[i]] = y
		}
	})
	return out
}

// InputAdmittance returns the admittance moments of the whole tree as
// seen by the voltage source (every root subtree through its root
// resistance, in parallel).
func InputAdmittance(t *rctree.Tree) Admittance {
	down := DownstreamAdmittances(t)
	var y Admittance
	for _, r := range t.Roots() {
		y = y.Parallel(down[r].SeriesR(t.R(r)))
	}
	return y
}
