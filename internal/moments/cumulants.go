package moments

import "fmt"

// CentralMoment returns the q-th central moment mu_q of the impulse
// response at node i, for any q up to the computed order, via the
// binomial expansion of the raw distribution moments:
//
//	mu_q = sum_{k=0..q} C(q,k) (-mean)^{q-k} M_k.
//
// mu_0 = 1 and mu_1 = 0 by construction; mu_2 and mu_3 agree with the
// specialized Mu2/Mu3 accessors.
func (s *Set) CentralMoment(q, i int) float64 {
	if q < 0 || q > s.order {
		panic(fmt.Sprintf("moments: central moment order %d out of range [0,%d]", q, s.order))
	}
	mean := s.DistMoment(1, i)
	var mu float64
	binom := 1.0 // C(q, k), built incrementally
	for k := 0; k <= q; k++ {
		mu += binom * pow(-mean, q-k) * s.DistMoment(k, i)
		binom = binom * float64(q-k) / float64(k+1)
	}
	return mu
}

// Cumulant returns the q-th cumulant kappa_q of the impulse response at
// node i, for q in [1, min(order, 4)]:
//
//	kappa_1 = mean (the Elmore delay)
//	kappa_2 = mu_2
//	kappa_3 = mu_3
//	kappa_4 = mu_4 - 3 mu_2^2
//
// Cumulants of independent distributions add under convolution — the
// general fact behind the paper's Appendix B (which proves it for
// orders 2 and 3, where cumulants and central moments coincide). For
// RC trees this means every kappa_q accumulates along the signal path.
func (s *Set) Cumulant(q, i int) float64 {
	switch q {
	case 1:
		return s.DistMoment(1, i)
	case 2:
		return s.CentralMoment(2, i)
	case 3:
		return s.CentralMoment(3, i)
	case 4:
		mu2 := s.CentralMoment(2, i)
		return s.CentralMoment(4, i) - 3*mu2*mu2
	default:
		panic(fmt.Sprintf("moments: cumulant order %d unsupported (1..4)", q))
	}
}

func pow(x float64, n int) float64 {
	p := 1.0
	for k := 0; k < n; k++ {
		p *= x
	}
	return p
}
