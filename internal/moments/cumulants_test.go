package moments

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func TestCentralMomentsSingleRC(t *testing.T) {
	// Exponential density with scale rc: mu_q = q! rc^q sum_{k} (-1)^k/k!
	// (the "subfactorial" form); concretely mu2 = rc^2, mu3 = 2 rc^3,
	// mu4 = 9 rc^4.
	const r, c = 700.0, 3e-12
	rc := r * c
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compute(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]float64{
		0: 1,
		1: 0,
		2: rc * rc,
		3: 2 * rc * rc * rc,
		4: 9 * rc * rc * rc * rc,
	}
	for q, want := range cases {
		if got := s.CentralMoment(q, 0); !approx(got, want, 1e-10) {
			t.Errorf("mu_%d = %v, want %v", q, got, want)
		}
	}
	// Cumulants of the exponential density: kappa_q = (q-1)! rc^q.
	wantK := map[int]float64{1: rc, 2: rc * rc, 3: 2 * rc * rc * rc, 4: 6 * rc * rc * rc * rc}
	for q, want := range wantK {
		if got := s.Cumulant(q, 0); !approx(got, want, 1e-9) {
			t.Errorf("kappa_%d = %v, want %v", q, got, want)
		}
	}
}

func TestCentralMomentMatchesSpecialized(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 30)
		s, err := Compute(tree, 3)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if !approx(s.CentralMoment(2, i), s.Mu2(i), 1e-9) {
				return false
			}
			if !approx(s.CentralMoment(3, i), s.Mu3(i), 1e-9) {
				return false
			}
			if s.CentralMoment(0, i) != 1 {
				return false
			}
			if math.Abs(s.CentralMoment(1, i)) > 1e-12*math.Abs(s.Elmore(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Cumulant additivity along a path: extending a chain by one segment
// adds the segment-seen-alone contribution... more precisely, for any
// node k+1 the transfer function factorizes as H_k * H_{k,k+1}
// (paper eq. 25), so kappa_q(k+1) = kappa_q(k) + kappa_q(local). We
// verify the factorization consequence numerically: cumulants are
// nondecreasing downstream for q = 1..4.
func TestCumulantsGrowDownstream(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 30)
		s, err := Compute(tree, 4)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			p := tree.Parent(i)
			if p == rctree.Source {
				continue
			}
			for q := 1; q <= 4; q++ {
				if s.Cumulant(q, i) < s.Cumulant(q, p)*(1-1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Exact cumulant additivity over a cascade: a chain cut at node k has
// kappa_q(leaf) = kappa_q(k) + kappa_q(downstream-tree driven at k),
// because the leaf transfer function is the product of the two stages.
func TestCumulantAdditivityCascade(t *testing.T) {
	f := func(seed int64) bool {
		// Build chain A (upstream) and chain B (downstream) and the
		// concatenation; B alone must supply the cumulant difference.
		// Only valid when the cut carries the whole load: insert a
		// large decoupling-free structure — here a pure chain, where
		// eq. 25's factorization is exact only if stage A is unloaded
		// by stage B. That holds when B's input impedance is infinite
		// at DC... in general it does NOT hold for finite RC loading,
		// so instead we verify the paper's actual statement: the
		// difference of cumulants between k+1 and k equals the
		// cumulants of h_{k,k+1}, the response at k+1 to an impulse AT
		// k of the tree hanging at k (paper's h_{k,k+1}).
		tree := topo.RandomSmall(seed, 20)
		s, err := Compute(tree, 3)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			p := tree.Parent(i)
			if p == rctree.Source {
				continue
			}
			// Subtree rooted at i's parent-side resistor, driven at p.
			sub, err := tree.Subtree(i)
			if err != nil {
				return false
			}
			subMs, err := Compute(sub, 3)
			if err != nil {
				return false
			}
			j, ok := sub.Index(tree.Name(i))
			if !ok {
				return false
			}
			for q := 1; q <= 3; q++ {
				want := s.Cumulant(q, i) - s.Cumulant(q, p)
				got := subMs.Cumulant(q, j)
				// Tolerance scales with the minuends: when the local
				// contribution is tiny, the subtraction above loses
				// precision even though the identity is exact.
				scale := math.Abs(s.Cumulant(q, i)) + math.Abs(s.Cumulant(q, p)) + 1e-300
				if math.Abs(got-want) > 1e-9*scale {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCumulantPanics(t *testing.T) {
	tree := topo.Fig1Tree()
	s, err := Compute(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Cumulant(%d) should panic", bad)
				}
			}()
			s.Cumulant(bad, 0)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("CentralMoment(5) should panic at order 4")
			}
		}()
		s.CentralMoment(5, 0)
	}()
}
