package moments

import (
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// The compiled moment kernels must handle the degenerate extremes — a
// million-level chain and a hundred-thousand-wide star — and the
// forced level-parallel schedule must reproduce the serial sweep
// bit-for-bit on both.
func TestComputeDegenerateExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-topology stress test")
	}
	for _, tc := range []struct {
		name  string
		tree  *rctree.Tree
		order int
	}{
		{"chain1M", topo.Chain(1_000_000, 1, 1e-15), 2},
		{"star100k", topo.Star(100_000, 1, 50, 2e-14), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cp := rctree.Compile(tc.tree)
			mk := func(parallel bool) *Set {
				s := &Set{tree: tc.tree, order: tc.order, m: make([][]float64, tc.order+1)}
				for q := range s.m {
					s.m[q] = make([]float64, tc.tree.N())
				}
				computeCompiled(cp, s, parallel)
				return s
			}
			serial, par := mk(false), mk(true)
			for q := 1; q <= tc.order; q++ {
				for i := 0; i < tc.tree.N(); i++ {
					if serial.m[q][i] != par.m[q][i] {
						t.Fatalf("m[%d][%d]: serial %v != parallel %v",
							q, i, serial.m[q][i], par.m[q][i])
					}
				}
			}
			tdS := make([]float64, tc.tree.N())
			tdP := make([]float64, tc.tree.N())
			elmoreCompiled(cp, tdS, false)
			elmoreCompiled(cp, tdP, true)
			for i := range tdS {
				if tdS[i] != tdP[i] {
					t.Fatalf("td[%d]: serial %v != parallel %v", i, tdS[i], tdP[i])
				}
			}
			// Anchor the Elmore delays against closed forms (the O(N^2)
			// definitional oracle is too slow at this scale). For the
			// uniform chain, R_ki = min(i,k)+1 gives
			// T_D(i) = c*(i(i+1)/2 + (N-i)(i+1)); for the star every
			// leaf sees T_D = r_hub*C_total + r_leaf*c_leaf.
			n := tc.tree.N()
			anchor := func(i int, want float64) {
				t.Helper()
				got := tdS[i]
				if diff := got - want; diff > 1e-9*want || diff < -1e-9*want {
					t.Fatalf("node %d: Elmore %v, want %v", i, got, want)
				}
			}
			if tc.name == "chain1M" {
				for _, i := range []int{0, n / 2, n - 1} {
					fi, fn := float64(i), float64(n)
					anchor(i, 1e-15*(fi*(fi+1)/2+(fn-fi)*(fi+1)))
				}
			} else {
				ctotal := float64(n) * 2e-14
				anchor(0, 50*ctotal)            // hub
				anchor(n-1, 50*ctotal+50*2e-14) // any leaf
			}
		})
	}
}
