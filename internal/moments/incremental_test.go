package moments

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// bitsEq reports exact bit equality, the standard the incremental
// engine promises against the full sweeps.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkAgainstFull compares every quantity the engine serves, at every
// node, against a fresh full recompute on a shadow tree carrying the
// same element values. All comparisons are bit-exact.
func checkAgainstFull(t *testing.T, label string, inc *Incremental, shadow *rctree.Tree) {
	t.Helper()
	ms, err := Compute(shadow, 3)
	if err != nil {
		t.Fatalf("%s: full Compute: %v", label, err)
	}
	prh := ComputePRH(shadow)
	downC := shadow.DownstreamC()
	n := shadow.N()
	for i := 0; i < n; i++ {
		for q := 1; q <= 3; q++ {
			if got, want := inc.M(q, i), ms.M(q, i); !bitsEq(got, want) {
				t.Fatalf("%s: m%d(%d) = %x, full recompute has %x",
					label, q, i, math.Float64bits(got), math.Float64bits(want))
			}
		}
		if got, want := inc.Elmore(i), ms.Elmore(i); !bitsEq(got, want) {
			t.Fatalf("%s: Elmore(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.Mu2(i), ms.Mu2(i); !bitsEq(got, want) {
			t.Fatalf("%s: Mu2(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.Mu3(i), ms.Mu3(i); !bitsEq(got, want) {
			t.Fatalf("%s: Mu3(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.Sigma(i), ms.Sigma(i); !bitsEq(got, want) {
			t.Fatalf("%s: Sigma(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.Skewness(i), ms.Skewness(i); !bitsEq(got, want) {
			t.Fatalf("%s: Skewness(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.PathResistance(i), prh.PathResistance(i); !bitsEq(got, want) {
			t.Fatalf("%s: Rkk(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.TR(i), prh.TR(i); !bitsEq(got, want) {
			t.Fatalf("%s: TR(%d) = %v, want %v", label, i, got, want)
		}
		if got, want := inc.DownstreamC(i), downC[i]; !bitsEq(got, want) {
			t.Fatalf("%s: DownstreamC(%d) = %v, want %v", label, i, got, want)
		}
	}
	if got, want := inc.TP(), prh.TP; !bitsEq(got, want) {
		t.Fatalf("%s: TP = %v, want %v", label, got, want)
	}
}

func testTopologies() map[string]*rctree.Tree {
	return map[string]*rctree.Tree{
		"chain":    topo.Chain(60, 75, 3e-14),
		"star":     topo.Star(8, 7, 120, 2e-14),
		"deep-fan": topo.Balanced(5, 3, 50, 1e-14),
		"fig1":     topo.Fig1Tree(),
		"random":   topo.Random(1234, topo.RandomOptions{N: 90}),
	}
}

func TestIncrementalFreshMatchesFull(t *testing.T) {
	for name, tree := range testTopologies() {
		inc, err := NewIncremental(tree)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstFull(t, name+"/fresh", inc, tree)
	}
}

func TestIncrementalSingleEdits(t *testing.T) {
	for name, tree := range testTopologies() {
		inc, err := NewIncremental(tree)
		if err != nil {
			t.Fatal(err)
		}
		shadow := tree.Clone()
		// A C edit at a leaf-ish node, an R edit near the root, then both
		// at the same node.
		edits := []struct {
			node int
			isR  bool
			v    float64
		}{
			{tree.N() - 1, false, 5.5e-13},
			{0, true, 321.5},
			{tree.N() / 2, false, 1.25e-13},
			{tree.N() / 2, true, 77.0},
		}
		for k, e := range edits {
			var err error
			if e.isR {
				err = inc.SetR(e.node, e.v)
				if err == nil {
					err = shadow.SetR(e.node, e.v)
				}
			} else {
				err = inc.SetC(e.node, e.v)
				if err == nil {
					err = shadow.SetC(e.node, e.v)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstFull(t, fmt.Sprintf("%s/edit%d", name, k), inc, shadow)
		}
	}
}

func TestIncrementalRevertRestoresBaseline(t *testing.T) {
	tree := topo.Star(6, 10, 100, 1e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot baseline values.
	base := make([]float64, tree.N())
	for i := range base {
		base[i] = inc.Elmore(i)
	}
	baseTP := inc.TP()
	for i := 0; i < tree.N(); i += 3 {
		if err := inc.SetC(i, 9e-13); err != nil {
			t.Fatal(err)
		}
		if err := inc.SetR(i, 999); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Elmore(tree.N()-1) == base[tree.N()-1] {
		t.Fatalf("perturbation did not move the delay")
	}
	inc.Revert()
	for i := range base {
		if !bitsEq(inc.Elmore(i), base[i]) {
			t.Fatalf("Revert did not restore Elmore(%d): %v != %v", i, inc.Elmore(i), base[i])
		}
		if !bitsEq(inc.R(i), tree.R(i)) || !bitsEq(inc.C(i), tree.C(i)) {
			t.Fatalf("Revert did not restore values at %d", i)
		}
	}
	if !bitsEq(inc.TP(), baseTP) {
		t.Fatalf("Revert did not restore TP")
	}
	// Full cross-check after the revert.
	checkAgainstFull(t, "revert", inc, tree)
}

func TestIncrementalCommitMovesBaseline(t *testing.T) {
	tree := topo.Chain(40, 100, 1e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetR(20, 500); err != nil {
		t.Fatal(err)
	}
	committed := inc.Elmore(39)
	inc.Commit()
	if err := inc.SetC(10, 8e-13); err != nil {
		t.Fatal(err)
	}
	inc.Revert() // must return to the committed state, not construction
	if !bitsEq(inc.Elmore(39), committed) {
		t.Fatalf("Revert after Commit went past the committed baseline")
	}
	if !bitsEq(inc.R(20), 500) {
		t.Fatalf("committed edit was lost: R(20) = %v", inc.R(20))
	}
}

func TestIncrementalSyncTree(t *testing.T) {
	tree := topo.Balanced(4, 3, 80, 2e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetR(5, 444); err != nil {
		t.Fatal(err)
	}
	if err := inc.SetC(7, 3e-13); err != nil {
		t.Fatal(err)
	}
	gen0 := tree.Generation()
	if err := inc.SyncTree(); err != nil {
		t.Fatal(err)
	}
	if tree.Generation() != gen0+1 {
		t.Fatalf("SyncTree must bump the tree generation exactly once")
	}
	if tree.R(5) != 444 || tree.C(7) != 3e-13 {
		t.Fatalf("SyncTree did not write the engine values back")
	}
	// After the sync the tree and engine agree entirely.
	checkAgainstFull(t, "synced", inc, tree)
}

func TestIncrementalValidationAndErrors(t *testing.T) {
	tree := topo.Chain(5, 100, 1e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetR(2, -1); err == nil {
		t.Errorf("negative resistance must be rejected")
	}
	if err := inc.SetC(2, math.NaN()); err == nil {
		t.Errorf("NaN capacitance must be rejected")
	}
	if err := inc.SetR(99, 1); err == nil {
		t.Errorf("out-of-range index must be rejected")
	}
	if err := inc.SetC(-1, 1e-15); err == nil {
		t.Errorf("negative index must be rejected")
	}
	// Rejected edits leave no dirt behind.
	if st := inc.Stats(); st.Sets != 0 {
		t.Errorf("rejected edits counted as sets: %+v", st)
	}
	if _, err := NewIncremental(nil); err == nil {
		t.Errorf("nil tree must be rejected")
	}
}

func TestIncrementalNoopEditIsFree(t *testing.T) {
	tree := topo.Chain(10, 100, 1e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetR(3, tree.R(3)); err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.Sets != 0 {
		t.Errorf("value-identical edit must be a no-op, got %+v", st)
	}
}

// TestIncrementalCrossoverFallback forces both the region path and the
// full-fallback path over the same edit sequence and requires identical
// results from each (both bit-identical to the full recompute).
func TestIncrementalCrossoverFallback(t *testing.T) {
	tree := topo.Random(77, topo.RandomOptions{N: 120})
	shadow := tree.Clone()

	region, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	region.CrossoverFraction = 1e9 // never fall back

	full, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	full.CrossoverFraction = 0 // always fall back

	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 40; step++ {
		node := rng.Intn(tree.N())
		if rng.Intn(2) == 0 {
			v := 10 + 990*rng.Float64()
			if err := region.SetR(node, v); err != nil {
				t.Fatal(err)
			}
			if err := full.SetR(node, v); err != nil {
				t.Fatal(err)
			}
			if err := shadow.SetR(node, v); err != nil {
				t.Fatal(err)
			}
		} else {
			v := 1e-15 * (1 + 999*rng.Float64())
			if err := region.SetC(node, v); err != nil {
				t.Fatal(err)
			}
			if err := full.SetC(node, v); err != nil {
				t.Fatal(err)
			}
			if err := shadow.SetC(node, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkAgainstFull(t, "region-mode", region, shadow)
	checkAgainstFull(t, "fallback-mode", full, shadow)
	if st := full.Stats(); st.FullFallbacks == 0 {
		t.Errorf("CrossoverFraction = 0 engine never fell back: %+v", st)
	}
	if st := region.Stats(); st.FullFallbacks != 0 {
		t.Errorf("CrossoverFraction = +huge engine fell back: %+v", st)
	}
}

// TestIncrementalPropertyRandomSequences is the satellite-required
// property test: random SetR/SetC/Revert sequences over chains, stars
// and deep fans, asserting bit-identical moments, sigma and Elmore
// against a fresh full Compute after every step. Run under -race in the
// standard lanes.
func TestIncrementalPropertyRandomSequences(t *testing.T) {
	topos := []struct {
		name string
		mk   func(seed int64) *rctree.Tree
	}{
		{"chain", func(seed int64) *rctree.Tree { return topo.Chain(30+int(seed%40), 50, 2e-14) }},
		{"star", func(seed int64) *rctree.Tree { return topo.Star(3+int(seed%5), 4+int(seed%6), 80, 1e-14) }},
		{"deepfan", func(seed int64) *rctree.Tree { return topo.Balanced(3+int(seed%3), 2+int(seed%3), 60, 3e-14) }},
		{"random", func(seed int64) *rctree.Tree { return topo.RandomSmall(seed, 150) }},
	}
	seeds := 6
	steps := 25
	if testing.Short() {
		seeds, steps = 2, 10
	}
	for _, tp := range topos {
		tp := tp
		t.Run(tp.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(seeds); seed++ {
				tree := tp.mk(seed)
				rng := rand.New(rand.NewSource(seed * 7919))
				inc, err := NewIncremental(tree)
				if err != nil {
					t.Fatal(err)
				}
				// Exercise the crossover randomly so both paths see the
				// same assertions.
				if seed%2 == 1 {
					inc.CrossoverFraction = 0.05
				}
				shadow := tree.Clone()
				// committedShadow tracks the revert baseline.
				committed := tree.Clone()
				for step := 0; step < steps; step++ {
					switch op := rng.Intn(10); {
					case op < 4: // SetC
						node := rng.Intn(tree.N())
						v := 1e-15 * (1 + 1e3*rng.Float64())
						if err := inc.SetC(node, v); err != nil {
							t.Fatal(err)
						}
						if err := shadow.SetC(node, v); err != nil {
							t.Fatal(err)
						}
					case op < 8: // SetR
						node := rng.Intn(tree.N())
						v := 10 + 1e3*rng.Float64()
						if err := inc.SetR(node, v); err != nil {
							t.Fatal(err)
						}
						if err := shadow.SetR(node, v); err != nil {
							t.Fatal(err)
						}
					case op < 9: // Revert
						inc.Revert()
						shadow = committed.Clone()
					default: // Commit
						inc.Commit()
						committed = shadow.Clone()
					}
					checkAgainstFull(t, fmt.Sprintf("%s/seed%d/step%d", tp.name, seed, step), inc, shadow)
				}
			}
		})
	}
}

// TestIncrementalDrainMoved checks the moved-set contract: it contains
// every node whose moments changed, and drains to empty.
func TestIncrementalDrainMoved(t *testing.T) {
	tree := topo.Star(5, 8, 100, 1e-14)
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	shadow := tree.Clone()
	node := tree.MustIndex("b3_n4")
	if err := inc.SetR(node, 777); err != nil {
		t.Fatal(err)
	}
	if err := shadow.SetR(node, 777); err != nil {
		t.Fatal(err)
	}
	after, err := Compute(shadow, 3)
	if err != nil {
		t.Fatal(err)
	}
	moved := inc.DrainMoved(nil)
	inSet := make(map[int]bool, len(moved))
	for _, i := range moved {
		inSet[i] = true
	}
	for i := 0; i < tree.N(); i++ {
		changed := false
		for q := 1; q <= 3; q++ {
			if !bitsEq(before.M(q, i), after.M(q, i)) {
				changed = true
			}
		}
		if changed && !inSet[i] {
			t.Fatalf("node %d moved but is not in the drained set", i)
		}
	}
	if again := inc.DrainMoved(nil); len(again) != 0 {
		t.Fatalf("second drain should be empty, got %d nodes", len(again))
	}
}

// TestIncrementalStatsAndLocality pins the headline property: a single
// leaf perturbation on a long chain flushes far fewer nodes for the
// order-1 state than the full tree, and the counters record it.
func TestIncrementalStatsAndLocality(t *testing.T) {
	const n = 4000
	tree := topo.Star(4, n/4, 10, 1e-15) // 4 branches, depth n/4
	inc, err := NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb R at a leaf: order-1 dirt is the leaf's subtree (1 node)
	// plus nothing else; the order-1 flush must touch O(1) nodes, not
	// O(n).
	leaf := tree.N() - 1
	if err := inc.SetR(leaf, 55); err != nil {
		t.Fatal(err)
	}
	st0 := inc.Stats()
	_ = inc.Elmore(leaf) // stage-1 flush only
	st1 := inc.Stats()
	touched := st1.NodesTouched - st0.NodesTouched
	if touched == 0 || touched > int64(tree.N())/10 {
		t.Fatalf("order-1 flush after a leaf ΔR touched %d of %d nodes; want a local region", touched, tree.N())
	}
	if st1.Flushes != st0.Flushes+1 {
		t.Fatalf("expected exactly one flush, got %+v", st1)
	}
}
