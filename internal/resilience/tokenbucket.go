package resilience

// Token-bucket admission control for serve mode. Where the breaker in
// this package protects the *backend* (a tree that keeps failing stops
// burning attempts), the limiter protects the *process*: a tenant that
// sends faster than its sustained rate — or a fleet of tenants that
// together exceed the process's concurrency budget — is shed
// immediately with a computed retry hint instead of queuing without
// bound. Shedding is the paper-faithful choice: the service's answers
// are guaranteed bounds, so a rejected request loses nothing but time,
// while an unbounded queue would eventually take every tenant's
// latency (and the process) down with it.

import (
	"fmt"
	"math"
	"sync"
	"time"

	"elmore/internal/telemetry"
)

// TokenBucket is a classic leaky-bucket rate limiter: Rate tokens
// accrue per second up to Burst, and each admission takes one. The
// zero value admits nothing; NewTokenBucket fills the bucket so a
// fresh tenant gets its full burst immediately. Safe for concurrent
// use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/second
// with capacity burst. rate <= 0 admits nothing; burst < 1 is raised
// to 1 so a positive rate can ever admit.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take removes one token if available. When the bucket is empty it
// reports ok=false and how long, at the configured refill rate, until
// the next token exists — the Retry-After hint. now is injected so
// admission decisions are testable without sleeping.
func (b *TokenBucket) Take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, math.MaxInt64 // never: rate zero means a closed bucket
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// Tokens reports the current token count after refilling to now. For
// tests and introspection.
func (b *TokenBucket) Tokens(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return b.tokens
}

// refill accrues tokens for the elapsed time; callers hold b.mu. A
// clock that jumps backwards (NTP) accrues nothing rather than
// debiting the bucket.
func (b *TokenBucket) refill(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	b.last = now
	if dt <= 0 || b.rate <= 0 {
		return
	}
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Reject reasons, spelled the way the serve layer maps them to HTTP:
// a rate rejection is the tenant's own doing (429), a capacity or
// breaker rejection is the process protecting itself (503).
const (
	RejectRate     = "rate"     // tenant exceeded its sustained rate
	RejectCapacity = "capacity" // process-wide in-flight cap reached
	RejectBreaker  = "breaker"  // tenant circuit open (repeated failures)
)

// RejectError is a shed admission: the request was turned away before
// any work was queued. RetryAfter is the earliest time a retry could
// be admitted — the Retry-After header value.
type RejectError struct {
	Tenant     string
	Reason     string // RejectRate, RejectCapacity or RejectBreaker
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("resilience: admission rejected (%s) for tenant %q, retry after %v",
		e.Reason, e.Tenant, e.RetryAfter)
}

// Transient marks shed requests as retry-worthy for the classifier:
// the same request is admissible once tokens refill or load drains.
func (e *RejectError) Transient() bool { return true }

// Limiter is per-tenant token-bucket admission control composed with
// the package's circuit breaker and a process-wide concurrency cap.
// Admit either returns a release function (the request is in flight)
// or a *RejectError naming why the request was shed and when to retry.
// The tenant table is bounded: past MaxTenants the longest-idle bucket
// is evicted, so a tenant-ID cardinality attack cannot grow the
// process.
//
// The zero value admits everything (no rate, no cap, no breaker) —
// each field opts one control in. Safe for concurrent use.
type Limiter struct {
	// Rate is each tenant's sustained admissions per second; <= 0
	// disables per-tenant rate limiting.
	Rate float64
	// Burst is each tenant's bucket capacity; <= 0 means max(Rate, 1).
	Burst float64
	// MaxInFlight caps concurrently admitted requests across all
	// tenants; <= 0 disables the cap.
	MaxInFlight int
	// CapacityRetry is the Retry-After hint for capacity rejections;
	// <= 0 means 1s. (Rate rejections compute their own hint from the
	// bucket; capacity has no schedule, so this is a fixed backoff.)
	CapacityRetry time.Duration
	// Breaker, when non-nil, is consulted per tenant (keyed by a hash
	// of the tenant name): a tenant whose admitted requests keep
	// failing is cut off for the breaker's cooldown. Release(failed)
	// feeds it.
	Breaker *Breaker
	// MaxTenants bounds the tracked bucket table; <= 0 means 1024.
	MaxTenants int

	now func() time.Time // test hook; nil means time.Now

	mu       sync.Mutex
	tenants  map[string]*tenantEntry
	inflight int
}

// tenantEntry is one tenant's bucket plus its idle clock.
type tenantEntry struct {
	bucket   *TokenBucket
	lastSeen time.Time
}

// Admission is one admitted request. Release must be called exactly
// once when the request finishes; failed feeds the tenant's breaker
// (server-side failures only — a client's own bad input should pass
// failed=false, it is not the tenant's circuit that is broken).
type Admission struct {
	l      *Limiter
	tenant string
	fp     uint64
	once   sync.Once
}

// Release returns the admission's in-flight slot and records the
// outcome on the tenant's breaker. Idempotent.
func (a *Admission) Release(failed bool) {
	if a == nil {
		return
	}
	a.once.Do(func() {
		a.l.mu.Lock()
		a.l.inflight--
		a.l.mu.Unlock()
		if a.l.Breaker != nil {
			if failed {
				a.l.Breaker.Failure(a.fp)
			} else {
				a.l.Breaker.Success(a.fp)
			}
		}
	})
}

func (l *Limiter) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

func (l *Limiter) maxTenants() int {
	if l.MaxTenants > 0 {
		return l.MaxTenants
	}
	return 1024
}

func (l *Limiter) capacityRetry() time.Duration {
	if l.CapacityRetry > 0 {
		return l.CapacityRetry
	}
	return time.Second
}

// tenantFP hashes a tenant name into the breaker's uint64 key space.
func tenantFP(tenant string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(tenant); i++ {
		h = splitmix64(h ^ uint64(tenant[i]))
	}
	return h
}

// Admit decides whether one request from tenant may proceed. The
// checks run cheapest-first: the concurrency cap, then the tenant's
// bucket, then the breaker — a shed request must cost close to
// nothing, that is the point of shedding. On success the returned
// Admission holds one in-flight slot until Release.
func (l *Limiter) Admit(tenant string) (*Admission, error) {
	now := l.clock()
	l.mu.Lock()
	if l.MaxInFlight > 0 && l.inflight >= l.MaxInFlight {
		l.mu.Unlock()
		telemetry.C("resilience.shed_capacity").Inc()
		return nil, &RejectError{Tenant: tenant, Reason: RejectCapacity, RetryAfter: l.capacityRetry()}
	}
	var bucket *TokenBucket
	if l.Rate > 0 {
		e := l.tenants[tenant]
		if e == nil {
			e = &tenantEntry{bucket: NewTokenBucket(l.Rate, l.burst())}
			if l.tenants == nil {
				l.tenants = make(map[string]*tenantEntry)
			}
			l.evictIdleLocked()
			l.tenants[tenant] = e
		}
		e.lastSeen = now
		bucket = e.bucket
	}
	// Reserve the slot before dropping the lock; the bucket and breaker
	// checks below release it on rejection.
	l.inflight++
	l.mu.Unlock()

	if bucket != nil {
		if ok, retry := bucket.Take(now); !ok {
			l.mu.Lock()
			l.inflight--
			l.mu.Unlock()
			telemetry.C("resilience.shed_rate").Inc()
			return nil, &RejectError{Tenant: tenant, Reason: RejectRate, RetryAfter: retry}
		}
	}
	fp := tenantFP(tenant)
	if l.Breaker != nil {
		if err := l.Breaker.Allow(fp); err != nil {
			l.mu.Lock()
			l.inflight--
			l.mu.Unlock()
			telemetry.C("resilience.shed_breaker").Inc()
			return nil, &RejectError{Tenant: tenant, Reason: RejectBreaker, RetryAfter: l.Breaker.cooldown()}
		}
	}
	telemetry.C("resilience.admitted").Inc()
	return &Admission{l: l, tenant: tenant, fp: fp}, nil
}

// burst returns the effective per-tenant bucket capacity.
func (l *Limiter) burst() float64 {
	if l.Burst > 0 {
		return l.Burst
	}
	return math.Max(l.Rate, 1)
}

// evictIdleLocked makes room for one more tenant by dropping the
// longest-idle entry once the table is full; callers hold l.mu. Linear
// scan: the table is bounded at MaxTenants (default 1024) and eviction
// only runs on new-tenant admission, so the cost stays off the steady
// state.
func (l *Limiter) evictIdleLocked() {
	if len(l.tenants) < l.maxTenants() {
		return
	}
	var (
		oldest     string
		oldestSeen time.Time
		found      bool
	)
	for name, e := range l.tenants {
		if !found || e.lastSeen.Before(oldestSeen) {
			oldest, oldestSeen, found = name, e.lastSeen, true
		}
	}
	if found {
		delete(l.tenants, oldest)
		telemetry.C("resilience.tenant_evictions").Inc()
	}
}

// InFlight reports the number of currently admitted requests.
func (l *Limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Tenants reports the number of tracked tenant buckets.
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tenants)
}
