package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"elmore/internal/faultinject"
	"elmore/internal/telemetry"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Permanent},
		{fmt.Errorf("no node named %q", "x"), Permanent},
		{context.Canceled, Canceled},
		{fmt.Errorf("job: %w", context.Canceled), Canceled},
		{context.DeadlineExceeded, Transient},
		{fmt.Errorf("attempt: %w", context.DeadlineExceeded), Transient},
		{&faultinject.Error{Point: "sim.step", Visit: 3}, Transient},
		{fmt.Errorf("wrap: %w", &faultinject.Error{Point: "p"}), Transient},
		{&PanicError{Value: "kaboom"}, Panicked},
		{fmt.Errorf("job 4: %w", &PanicError{Value: 9}), Panicked},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDegradable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&faultinject.Error{Point: "sim.step"}, true},
		{context.DeadlineExceeded, true},
		{&PanicError{Value: "x"}, true},
		{&OpenError{Fingerprint: 7, Failures: 8}, true},
		{fmt.Errorf("open: %w", &OpenError{}), true},
		{context.Canceled, false},
		{fmt.Errorf("bad spec"), false},
	}
	for _, c := range cases {
		if got := Degradable(c.err); got != c.want {
			t.Errorf("Degradable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestPolicyAttempts(t *testing.T) {
	var nilPolicy *Policy
	if nilPolicy.Attempts() != 1 {
		t.Errorf("nil policy attempts = %d", nilPolicy.Attempts())
	}
	if (&Policy{}).Attempts() != 1 {
		t.Errorf("zero policy attempts = %d", (&Policy{}).Attempts())
	}
	if (&Policy{MaxAttempts: 4}).Attempts() != 4 {
		t.Errorf("explicit attempts lost")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterStaysInRange(t *testing.T) {
	p := &Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5}
	varied := false
	for i := 0; i < 200; i++ {
		d := p.Backoff(1)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 100ms]", d)
		}
		if d != 100*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Errorf("jitter never varied the delay")
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	p := &Policy{BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Sleep(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("Sleep did not return promptly on cancel")
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Hour}
	const fp = uint64(0xabc)
	for i := 0; i < 2; i++ {
		if err := b.Allow(fp); err != nil {
			t.Fatalf("closed circuit rejected attempt %d: %v", i, err)
		}
		b.Failure(fp)
	}
	if b.Open(fp) {
		t.Fatalf("opened below threshold")
	}
	b.Failure(fp)
	if !b.Open(fp) {
		t.Fatalf("did not open at threshold")
	}
	err := b.Allow(fp)
	var oe *OpenError
	if !errors.As(err, &oe) || oe.Fingerprint != fp || oe.Failures != 3 {
		t.Fatalf("open circuit returned %v", err)
	}
	// A different fingerprint is unaffected.
	if err := b.Allow(fp + 1); err != nil {
		t.Fatalf("unrelated circuit rejected: %v", err)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := &Breaker{Threshold: 2}
	const fp = uint64(1)
	b.Failure(fp)
	b.Success(fp)
	b.Failure(fp)
	if b.Open(fp) {
		t.Fatalf("non-consecutive failures opened the circuit")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 1, Cooldown: 10 * time.Second}
	b.now = func() time.Time { return now }
	const fp = uint64(2)
	b.Failure(fp)
	if err := b.Allow(fp); err == nil {
		t.Fatalf("open circuit allowed an attempt before cooldown")
	}
	now = now.Add(11 * time.Second)
	if err := b.Allow(fp); err != nil {
		t.Fatalf("cooldown elapsed but probe rejected: %v", err)
	}
	// While the probe is in flight other callers stay rejected.
	if err := b.Allow(fp); err == nil {
		t.Fatalf("second caller admitted during half-open probe")
	}
	// Failed probe re-opens immediately; successful probe closes.
	b.Failure(fp)
	if !b.Open(fp) {
		t.Fatalf("failed probe did not re-open")
	}
	now = now.Add(11 * time.Second)
	if err := b.Allow(fp); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Success(fp)
	if b.Open(fp) {
		t.Fatalf("successful probe did not close the circuit")
	}
	if err := b.Allow(fp); err != nil {
		t.Fatalf("closed circuit rejected: %v", err)
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := &Breaker{Threshold: 4, Cooldown: time.Millisecond}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fp := uint64(w % 3)
			for i := 0; i < 500; i++ {
				if b.Allow(fp) == nil {
					if i%2 == 0 {
						b.Failure(fp)
					} else {
						b.Success(fp)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestWatchdogFlagsStuckJobsOnce(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	var mu sync.Mutex
	var stuck []string
	w := &Watchdog{
		Threshold: 20 * time.Millisecond,
		Interval:  5 * time.Millisecond,
		OnStuck: func(label string, running time.Duration) {
			mu.Lock()
			stuck = append(stuck, label)
			mu.Unlock()
		},
	}
	stop := w.Watch()
	defer stop()

	doneFast := w.Register("fast", nil)
	doneFast()
	doneSlow := w.Register("slow", nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(stuck)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // more sweeps: must not re-report
	doneSlow()

	mu.Lock()
	defer mu.Unlock()
	if len(stuck) != 1 || stuck[0] != "slow" {
		t.Fatalf("stuck = %v, want exactly [slow]", stuck)
	}
	if got := reg.Counter("resilience.stuck_jobs").Value(); got != 1 {
		t.Errorf("resilience.stuck_jobs = %d, want 1", got)
	}
}

func TestWatchdogCancelStuck(t *testing.T) {
	w := &Watchdog{Threshold: 10 * time.Millisecond, Interval: 5 * time.Millisecond, CancelStuck: true}
	stop := w.Watch()
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	done := w.Register("hang", cancel)
	defer done()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatalf("watchdog never canceled the stuck job")
	}
}

func TestWatchdogRefCounting(t *testing.T) {
	w := &Watchdog{Threshold: time.Hour}
	stop1 := w.Watch()
	stop2 := w.Watch()
	stop1()
	stop1() // double-stop is safe
	w.mu.Lock()
	running := w.stop != nil
	w.mu.Unlock()
	if !running {
		t.Fatalf("scanner stopped while a run still holds it")
	}
	stop2()
	w.mu.Lock()
	running = w.stop != nil
	w.mu.Unlock()
	if running {
		t.Fatalf("scanner still running after last release")
	}
	// Nil watchdog: everything is a no-op.
	var nilW *Watchdog
	nilW.Watch()()
	nilW.Register("x", nil)()
}
