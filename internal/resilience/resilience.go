// Package resilience carries the failure-handling machinery the batch
// engine wires around every job: error classification, retry with
// exponential backoff and jitter, a per-circuit circuit breaker, and a
// stuck-job watchdog. Its design premise comes straight from the
// paper: because the Elmore delay T_D = m1 is a *guaranteed* upper
// bound on the 50% delay (Theorem 1) and max(mu-sigma, 0) a guaranteed
// lower bound (Corollary 1), an expensive transient simulation that
// keeps failing never has to take the answer down with it — the engine
// can always degrade to the closed-form bound interval, which costs
// one O(N) moment pass. This package decides *when* to give up on the
// expensive path; the batch engine performs the degradation.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"elmore/internal/health"
	"elmore/internal/telemetry"
)

// Class is the retry-relevant classification of a job failure.
type Class int

const (
	// Permanent marks data and spec errors (bad netlist, unknown node,
	// invalid rise time): re-running cannot help.
	Permanent Class = iota
	// Transient marks failures worth retrying: injected faults,
	// per-attempt deadline expiry, and anything exposing a
	// Transient() bool method that returns true.
	Transient
	// Panicked marks a recovered worker panic (wrapped in
	// *PanicError). Retried only when the policy opts in.
	Panicked
	// Canceled marks parent-context cancellation: the batch is being
	// torn down, so the job is neither retried nor degraded — a
	// crash-safe journal re-queues it on the next run.
	Canceled
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case Permanent:
		return "permanent"
	case Transient:
		return "transient"
	case Panicked:
		return "panicked"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// transienter is the marker interface errors use to self-declare as
// retry-worthy (e.g. faultinject.Error).
type transienter interface{ Transient() bool }

// Classify maps an error to its Class. nil classifies as Permanent —
// callers should not classify successes.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Permanent
	case errors.Is(err, context.Canceled):
		return Canceled
	case errors.Is(err, context.DeadlineExceeded):
		return Transient
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return Panicked
	}
	var tr transienter
	if errors.As(err, &tr) && tr.Transient() {
		return Transient
	}
	return Permanent
}

// Degradable reports whether a final failure should be degraded to the
// moment-based Elmore bounds rather than surfaced as an error: any
// transient or panicked failure, plus a circuit-breaker rejection.
// Permanent data errors and parent cancellation are not degradable —
// the former because the moments would fail identically, the latter
// because the batch is being torn down and the job will be re-queued.
func Degradable(err error) bool {
	switch Classify(err) {
	case Transient, Panicked:
		return true
	}
	var oe *OpenError
	return errors.As(err, &oe)
}

// PanicError wraps a recovered panic value so it survives as an error
// through the retry loop with its own class.
type PanicError struct {
	Value any // the recovered value
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panicked: %v", e.Value)
}

// Policy configures retry behavior. The zero value retries nothing;
// DefaultPolicy gives sensible production defaults.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the
	// first; values <= 1 disable retry.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it (Multiplier overrides), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means 100 * BaseDelay.
	MaxDelay time.Duration
	// Multiplier is the per-attempt backoff growth factor; <= 1 means 2.
	Multiplier float64
	// Jitter is the fraction of each backoff randomized away in
	// [0, Jitter); negative disables, 0 means the default 0.5. Jitter
	// decorrelates retry storms when many workers fail together.
	Jitter float64
	// RetryPanics also retries Panicked failures. Off by default: a
	// panic is more likely a logic bug than a transient condition, but
	// chaos runs inject panics deliberately and want them survived.
	RetryPanics bool

	// seq drives deterministic-per-process jitter without any global
	// rand dependency.
	seq atomic.Uint64
}

// DefaultPolicy returns the production defaults: 3 attempts, 50ms base
// backoff doubling to a 5s cap, half-width jitter.
func DefaultPolicy() *Policy {
	return &Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// Attempts returns the attempt budget (at least 1; 1 on a nil policy).
func (p *Policy) Attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// splitmix64 is the SplitMix64 finalizer, used for cheap jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Backoff returns the delay before attempt+1, for attempt >= 1:
// BaseDelay * Multiplier^(attempt-1), capped at MaxDelay, minus a
// jitter fraction drawn deterministically from an internal sequence.
func (p *Policy) Backoff(attempt int) time.Duration {
	if p == nil || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 100 * p.BaseDelay
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(attempt-1))
	if d > float64(maxd) {
		d = float64(maxd)
	}
	jit := p.Jitter
	switch {
	case jit < 0:
		jit = 0
	case jit == 0:
		jit = 0.5
	case jit > 1:
		jit = 1
	}
	if jit > 0 {
		u := float64(splitmix64(p.seq.Add(1))>>11) / (1 << 53)
		d *= 1 - jit*u
	}
	return time.Duration(d)
}

// Sleep blocks for Backoff(attempt) or until ctx is done, returning
// ctx's error in the latter case so retry loops stop promptly on
// cancellation.
func (p *Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// OpenError is the rejection a tripped circuit breaker returns: the
// circuit identified by Fingerprint has failed Failures consecutive
// times and further attempts are being skipped until the cooldown.
type OpenError struct {
	Fingerprint uint64
	Failures    int
}

// Error implements error.
func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open for tree %016x after %d consecutive failures", e.Fingerprint, e.Failures)
}

// breakerState is one circuit's state machine position.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breakerEntry tracks one fingerprint.
type breakerEntry struct {
	state       breakerState
	consecutive int       // consecutive failures while closed/half-open
	openedAt    time.Time // when the circuit last opened
	probing     bool      // a half-open probe is in flight
}

// Breaker is a per-fingerprint circuit breaker: a tree whose jobs keep
// failing is cut off after Threshold consecutive failures, so a batch
// with thousands of repeats of one poisoned net stops burning retries
// on it (the engine degrades such jobs to the closed-form bounds
// instead). After Cooldown one probe attempt is allowed through; its
// success closes the circuit, its failure re-opens it.
//
// A Breaker is safe for concurrent use and may be shared by engines.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens a circuit;
	// <= 0 means 8.
	Threshold int
	// Cooldown is the open -> half-open delay; <= 0 means 30s.
	Cooldown time.Duration

	mu  sync.Mutex
	m   map[uint64]*breakerEntry
	now func() time.Time // test hook; nil means time.Now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 8
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 30 * time.Second
}

func (b *Breaker) entry(fp uint64) *breakerEntry {
	if b.m == nil {
		b.m = make(map[uint64]*breakerEntry)
	}
	e := b.m[fp]
	if e == nil {
		e = &breakerEntry{}
		b.m[fp] = e
	}
	return e
}

// Allow reports whether an attempt on the circuit may proceed,
// returning an *OpenError when it may not. On a nil breaker every
// attempt is allowed. After the cooldown exactly one caller is
// admitted as the half-open probe; concurrent callers keep getting
// rejected until the probe reports Success or Failure.
func (b *Breaker) Allow(fp uint64) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(fp)
	switch e.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.clock().Sub(e.openedAt) >= b.cooldown() {
			e.state = stateHalfOpen
			e.probing = true
			telemetry.C("resilience.breaker_probes").Inc()
			return nil
		}
	case stateHalfOpen:
		if !e.probing {
			e.probing = true
			telemetry.C("resilience.breaker_probes").Inc()
			return nil
		}
	}
	telemetry.C("resilience.breaker_rejects").Inc()
	return &OpenError{Fingerprint: fp, Failures: e.consecutive}
}

// Success reports a finished attempt that succeeded: it closes the
// circuit and resets its failure count. No-op on nil.
func (b *Breaker) Success(fp uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(fp)
	e.state = stateClosed
	e.consecutive = 0
	e.probing = false
}

// Failure reports a finished attempt that failed. Threshold
// consecutive failures open the circuit; a failed half-open probe
// re-opens it immediately. No-op on nil.
func (b *Breaker) Failure(fp uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(fp)
	e.consecutive++
	e.probing = false
	opened := false
	switch e.state {
	case stateClosed:
		if e.consecutive >= b.threshold() {
			opened = true
		}
	case stateHalfOpen:
		opened = true
	}
	if opened {
		e.state = stateOpen
		e.openedAt = b.clock()
		telemetry.C("resilience.breaker_opens").Inc()
		health.Note(health.Event{
			Check:  "resilience.breaker_open",
			Tree:   fmt.Sprintf("%016x", fp),
			Detail: fmt.Sprintf("circuit opened after %d consecutive failures", e.consecutive),
		})
		if telemetry.FlightEnabled() {
			// A breaker opening means a tree is failing repeatedly — dump
			// the ring so the attempts that tripped it are on disk.
			telemetry.FlightRecord(telemetry.FlightEvent{
				Kind:  telemetry.FlightBreakerOpen,
				Index: -1,
				Code:  int64(e.consecutive),
				Label: fmt.Sprintf("%016x", fp),
			})
			telemetry.FlightDump("breaker-open")
		}
	}
}

// Open reports whether the circuit is currently open (rejecting
// without a cooldown check). For tests and introspection.
func (b *Breaker) Open(fp uint64) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.m[fp]
	return ok && e.state == stateOpen
}

// Watchdog notices jobs that run far past their expected time — a hung
// loader, an un-cancellable spin — and reports them as health events
// and telemetry counts while the run is still in flight, instead of
// leaving the operator staring at a stalled progress line. It observes
// and optionally cancels; it never kills goroutines.
//
// The scanner goroutine is reference-counted: the first watch() starts
// it, the last stop stops it, so any number of concurrent batch runs
// share one.
type Watchdog struct {
	// Threshold marks a job as stuck once its attempt has been running
	// this long; <= 0 means 1 minute.
	Threshold time.Duration
	// Interval is the scan period; <= 0 means Threshold / 4.
	Interval time.Duration
	// CancelStuck also cancels the stuck attempt's context, turning a
	// hang into a retryable context error.
	CancelStuck bool
	// OnStuck, when non-nil, receives each newly stuck job's label and
	// running time (called from the scanner goroutine).
	OnStuck func(label string, running time.Duration)

	mu      sync.Mutex
	active  map[uint64]*watchedJob
	nextTok uint64
	refs    int
	stop    chan struct{}
	done    chan struct{}
	now     func() time.Time // test hook; nil means time.Now
}

// watchedJob is one registered attempt.
type watchedJob struct {
	label    string
	started  time.Time
	cancel   context.CancelFunc
	reported bool
}

func (w *Watchdog) clock() time.Time {
	if w.now != nil {
		return w.now()
	}
	return time.Now()
}

func (w *Watchdog) threshold() time.Duration {
	if w.Threshold > 0 {
		return w.Threshold
	}
	return time.Minute
}

func (w *Watchdog) interval() time.Duration {
	if w.Interval > 0 {
		return w.Interval
	}
	return w.threshold() / 4
}

// Watch acquires the scanner for the duration of one batch run; the
// returned stop function releases it. The scanner runs only while at
// least one run holds it. No-op stop on a nil watchdog.
func (w *Watchdog) Watch() (stop func()) {
	if w == nil {
		return func() {}
	}
	w.mu.Lock()
	w.refs++
	if w.refs == 1 {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.scan(w.stop, w.done)
	}
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			w.refs--
			var stopCh, doneCh chan struct{}
			if w.refs == 0 {
				stopCh, doneCh = w.stop, w.done
				w.stop, w.done = nil, nil
			}
			w.mu.Unlock()
			if stopCh != nil {
				close(stopCh)
				<-doneCh
			}
		})
	}
}

// Register enrolls one job attempt; the returned func deregisters it
// and must be called when the attempt finishes. cancel may be nil.
// No-op on a nil watchdog.
func (w *Watchdog) Register(label string, cancel context.CancelFunc) (done func()) {
	if w == nil {
		return func() {}
	}
	w.mu.Lock()
	w.nextTok++
	tok := w.nextTok
	if w.active == nil {
		w.active = make(map[uint64]*watchedJob)
	}
	w.active[tok] = &watchedJob{label: label, started: w.clock(), cancel: cancel}
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		delete(w.active, tok)
		w.mu.Unlock()
	}
}

// scan is the watchdog goroutine body.
func (w *Watchdog) scan(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.interval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.sweep()
		}
	}
}

// sweep flags every job running past the threshold (once per job).
func (w *Watchdog) sweep() {
	type stuck struct {
		label   string
		running time.Duration
		cancel  context.CancelFunc
	}
	var found []stuck
	now := w.clock()
	thr := w.threshold()
	w.mu.Lock()
	for _, j := range w.active {
		if j.reported {
			continue
		}
		if running := now.Sub(j.started); running >= thr {
			j.reported = true
			found = append(found, stuck{j.label, running, j.cancel})
		}
	}
	w.mu.Unlock()
	for _, s := range found {
		telemetry.C("resilience.stuck_jobs").Inc()
		health.Note(health.Event{
			Check:  "resilience.stuck_job",
			Node:   s.label,
			Detail: fmt.Sprintf("job running for %v (threshold %v)", s.running.Round(time.Millisecond), thr),
		})
		if telemetry.FlightEnabled() {
			telemetry.FlightRecord(telemetry.FlightEvent{
				Kind:  telemetry.FlightStuck,
				Index: -1,
				DurNS: s.running.Nanoseconds(),
				Label: s.label,
			})
		}
		if w.OnStuck != nil {
			w.OnStuck(s.label, s.running)
		}
		if w.CancelStuck && s.cancel != nil {
			telemetry.C("resilience.stuck_cancels").Inc()
			s.cancel()
		}
	}
}
