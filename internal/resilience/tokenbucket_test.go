package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketTakeAndRefill(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(10, 2) // 10/s, burst 2, starts full
	if ok, _ := b.Take(t0); !ok {
		t.Fatal("first take from a full bucket rejected")
	}
	if ok, _ := b.Take(t0); !ok {
		t.Fatal("second take within burst rejected")
	}
	ok, retry := b.Take(t0)
	if ok {
		t.Fatal("take from an empty bucket admitted")
	}
	// One token refills in 1/rate = 100ms.
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms]", retry)
	}
	if ok, _ := b.Take(t0.Add(retry)); !ok {
		t.Fatal("take after the advertised retry interval rejected")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(1000, 3)
	// A long idle period must not accrue past the burst.
	if got := b.Tokens(t0.Add(time.Hour)); got != 3 {
		t.Fatalf("tokens after idle hour = %v, want 3 (burst cap)", got)
	}
}

func TestTokenBucketBackwardsClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(10, 1)
	if ok, _ := b.Take(t0); !ok {
		t.Fatal("initial take rejected")
	}
	// A clock step backwards must not mint or burn tokens.
	if got := b.Tokens(t0.Add(-time.Minute)); got != 0 {
		t.Fatalf("tokens after backwards clock = %v, want 0", got)
	}
}

func TestTokenBucketZeroRateClosed(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewTokenBucket(0, 1)
	if ok, _ := b.Take(t0); !ok {
		t.Fatal("burst token should admit once even at rate 0")
	}
	if ok, _ := b.Take(t0.Add(time.Hour)); ok {
		t.Fatal("rate-0 bucket refilled")
	}
}

// fakeClock drives a Limiter deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLimiterRateShedsWithRetryAfter(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{Rate: 10, Burst: 2, now: clk.now}
	for i := 0; i < 2; i++ {
		a, err := l.Admit("acme")
		if err != nil {
			t.Fatalf("admission %d rejected: %v", i, err)
		}
		a.Release(false)
	}
	_, err := l.Admit("acme")
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("over-rate admission = %v, want *RejectError", err)
	}
	if rej.Reason != RejectRate || rej.Tenant != "acme" {
		t.Fatalf("reject = %+v, want rate/acme", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", rej.RetryAfter)
	}
	if !rej.Transient() {
		t.Fatal("shed requests must classify as transient")
	}
	// A different tenant has its own bucket.
	if _, err := l.Admit("globex"); err != nil {
		t.Fatalf("fresh tenant rejected: %v", err)
	}
	// After the advertised interval the original tenant is admissible.
	clk.advance(rej.RetryAfter)
	if _, err := l.Admit("acme"); err != nil {
		t.Fatalf("post-retry admission rejected: %v", err)
	}
}

func TestLimiterCapacityCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{MaxInFlight: 2, CapacityRetry: 250 * time.Millisecond, now: clk.now}
	a1, err := l.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := l.Admit("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	_, err = l.Admit("c")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != RejectCapacity {
		t.Fatalf("over-capacity admission = %v, want capacity reject", err)
	}
	if rej.RetryAfter != 250*time.Millisecond {
		t.Fatalf("capacity RetryAfter = %v, want 250ms", rej.RetryAfter)
	}
	// Release frees the slot; double-release must not double-free.
	a1.Release(false)
	a1.Release(false)
	if got := l.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	if _, err := l.Admit("c"); err != nil {
		t.Fatalf("post-release admission rejected: %v", err)
	}
	a2.Release(false)
}

func TestLimiterBreakerCutsFailingTenant(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{Breaker: &Breaker{Threshold: 3}, now: clk.now}
	for i := 0; i < 3; i++ {
		a, err := l.Admit("cursed")
		if err != nil {
			t.Fatalf("admission %d rejected: %v", i, err)
		}
		a.Release(true) // server-side failure feeds the breaker
	}
	_, err := l.Admit("cursed")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != RejectBreaker {
		t.Fatalf("post-failures admission = %v, want breaker reject", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("breaker RetryAfter = %v, want > 0 (the cooldown)", rej.RetryAfter)
	}
	// The breaker is per tenant: a healthy tenant is unaffected.
	a, err := l.Admit("healthy")
	if err != nil {
		t.Fatalf("healthy tenant rejected: %v", err)
	}
	a.Release(false)
	// A breaker rejection must not leak the in-flight slot.
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after breaker reject = %d, want 0", got)
	}
}

func TestLimiterTenantTableBounded(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := &Limiter{Rate: 100, MaxTenants: 4, now: clk.now}
	for i := 0; i < 16; i++ {
		clk.advance(time.Millisecond) // distinct lastSeen per tenant
		a, err := l.Admit(fmt.Sprintf("tenant-%d", i))
		if err != nil {
			t.Fatalf("tenant %d rejected: %v", i, err)
		}
		a.Release(false)
	}
	if got := l.Tenants(); got > 4 {
		t.Fatalf("tenant table grew to %d, cap is 4", got)
	}
	// The most recent tenant survived the evictions.
	l.mu.Lock()
	_, ok := l.tenants["tenant-15"]
	l.mu.Unlock()
	if !ok {
		t.Fatal("most recently seen tenant was evicted")
	}
}

func TestLimiterZeroValueAdmitsEverything(t *testing.T) {
	var l Limiter
	for i := 0; i < 100; i++ {
		a, err := l.Admit("anyone")
		if err != nil {
			t.Fatalf("zero-value limiter rejected: %v", err)
		}
		a.Release(false)
	}
}

func TestLimiterConcurrentAdmitRace(t *testing.T) {
	l := &Limiter{Rate: 1e9, MaxInFlight: 8}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, err := l.Admit(fmt.Sprintf("t%d", w%3))
				if err == nil {
					a.Release(i%7 == 0)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}
