// Package cliutil carries the flags and lifecycle shared by every
// cmd/* tool: observability switches (-trace, -metrics, -debug-addr,
// -strict-numerics, -health-log), the -version flag, and the session
// object that opens/flushes the trace file, installs the process-wide
// metrics registry and numerical-health monitor, and serves
// net/http/pprof + expvar + Prometheus /metrics for live inspection.
//
// The intended wiring inside a tool's run function:
//
//	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
//	cf := cliutil.Add(fs)
//	if err := fs.Parse(args); err != nil { return err }
//	if cf.Version {
//	    fmt.Fprintln(stdout, cliutil.Version("tool"))
//	    return nil
//	}
//	sess, err := cf.Start(stderr)
//	if err != nil { return err }
//	defer func() { err = errors.Join(err, sess.Close()) }()
//	ctx := sess.Context()
//	// ... pass ctx to the engines; telemetry.Start for tool phases.
package cliutil

import (
	"bufio"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"context"

	"elmore/internal/batch"
	"elmore/internal/gate"
	"elmore/internal/health"
	"elmore/internal/resilience"
	"elmore/internal/telemetry"
)

// Flags holds the shared observability/version flags. Create with Add.
type Flags struct {
	Trace          string // -trace: JSON-lines span log path
	Metrics        bool   // -metrics: snapshot to stderr on exit
	DebugAddr      string // -debug-addr: pprof/expvar/metrics listen address
	Version        bool   // -version: print build info and exit
	StrictNumerics bool   // -strict-numerics: numerical-health violations fail the run
	HealthLog      string // -health-log: NDJSON health-event log path

	// Contention observability: opt-in runtime profiling and sampling.
	MutexProfile  int           // -mutex-profile: SetMutexProfileFraction rate; 0 off
	BlockProfile  int           // -block-profile: SetBlockProfileRate ns; 0 off
	ProfileDir    string        // -profile-dir: write pprof profiles here on exit
	RuntimeSample time.Duration // -runtime-sample: runtime/metrics sampling period; 0 off

	// FlightDump enables the flight recorder and names the NDJSON file
	// its ring dumps into (on SIGQUIT, panic isolation, breaker-open,
	// slow-job breach, or an injected fault). Recording itself is
	// lock-free and zero-allocation; only dumps touch the file.
	FlightDump string
	// FlightEvents sizes each per-worker ring (0 = 512 events).
	FlightEvents int
}

// Add registers the shared flags on fs and returns the value holder.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSON-lines span trace to `file`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot to stderr on exit")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar and Prometheus /metrics on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&f.Version, "version", false, "print version information and exit")
	fs.BoolVar(&f.StrictNumerics, "strict-numerics", false, "fail the run on any numerical-health violation")
	fs.StringVar(&f.HealthLog, "health-log", "", "write NDJSON numerical-health events to `file` (default stderr when -strict-numerics)")
	fs.IntVar(&f.MutexProfile, "mutex-profile", 0, "sample 1/`n` of mutex contention events (runtime.SetMutexProfileFraction; 0 = off)")
	fs.IntVar(&f.BlockProfile, "block-profile", 0, "sample blocking events lasting >= `ns` nanoseconds (runtime.SetBlockProfileRate; 0 = off)")
	fs.StringVar(&f.ProfileDir, "profile-dir", "", "write pprof profiles (heap, plus mutex/block when enabled) into `dir` on exit")
	fs.DurationVar(&f.RuntimeSample, "runtime-sample", 0, "sample runtime/metrics (GC pauses, sched latency, goroutines) every `period` into the metrics registry and trace (0 = off)")
	fs.StringVar(&f.FlightDump, "flight-dump", "", "keep an in-memory flight recorder of recent spans/events and dump it as NDJSON to `file` on SIGQUIT, panics, breaker trips, slow jobs and injected faults")
	fs.IntVar(&f.FlightEvents, "flight-events", 0, "flight-recorder ring size per worker shard, rounded up to a power of two (0 = 512)")
	return f
}

// BatchFlags holds the batch-mode flags shared by boundstat and sta:
// -jobs switches the tool from its single-shot mode to streaming
// NDJSON batch evaluation on the internal/batch engine.
type BatchFlags struct {
	Jobs     string        // -jobs: NDJSON job stream file; "" means no batch mode
	Workers  int           // -workers: max concurrent jobs; 0 means GOMAXPROCS
	Timeout  time.Duration // -timeout: per-attempt limit; 0 means none
	Progress time.Duration // -progress: progress-line period; 0 disables
	SlowJobs time.Duration // -slow-jobs: slow-job log threshold; 0 disables
	Summary  bool          // -summary: final NDJSON run summary

	Resume       string        // -resume: crash-safe journal file; "" disables
	JournalSync  int           // -journal-sync: done records per journal fsync batch; 0 = default (32)
	Retries      int           // -retries: extra attempts for transient failures
	RetryBackoff time.Duration // -retry-backoff: base backoff before a retry
	Degrade      bool          // -degrade: elmore-bound fallback for exhausted sim jobs
	Breaker      int           // -breaker: per-net consecutive-failure threshold; 0 disables

	// SLO declares latency objectives like "p99=50ms,p50=5ms". Each
	// objective gets good/bad counts and a burn-rate gauge in the
	// summary record and metrics registry.
	SLO string

	slos []telemetry.SLO // parsed by Validate
}

// AddBatch registers the batch-mode flags on fs and returns the value
// holder.
func AddBatch(fs *flag.FlagSet) *BatchFlags {
	b := &BatchFlags{}
	fs.StringVar(&b.Jobs, "jobs", "", "evaluate the NDJSON job stream in `file` and emit NDJSON results")
	fs.IntVar(&b.Workers, "workers", 0, "max concurrent batch jobs (0 = GOMAXPROCS)")
	fs.DurationVar(&b.Timeout, "timeout", 0, "per-attempt time limit, e.g. 30s (0 = none)")
	fs.DurationVar(&b.Progress, "progress", 2*time.Second, "batch progress-line period on stderr (0 = off)")
	fs.DurationVar(&b.SlowJobs, "slow-jobs", 0, "log batch jobs slower than `duration` as NDJSON to stderr (0 = off)")
	fs.BoolVar(&b.Summary, "summary", false, "write a final NDJSON batch run summary to stderr")
	fs.StringVar(&b.Resume, "resume", "", "crash-safe journal `file`: skip jobs it marks done, re-queue in-flight ones, record this run's completions")
	fs.IntVar(&b.JournalSync, "journal-sync", 0, "fsync the -resume journal every `n` done records; bounds the crash duplicate window (0 = default 32)")
	fs.IntVar(&b.Retries, "retries", 0, "retry transiently failing jobs up to `n` extra times with backoff")
	fs.DurationVar(&b.RetryBackoff, "retry-backoff", 50*time.Millisecond, "base backoff before the first retry (doubles per attempt, jittered)")
	fs.BoolVar(&b.Degrade, "degrade", true, "answer sim jobs that exhaust their attempts with the closed-form elmore-bound interval instead of an error")
	fs.IntVar(&b.Breaker, "breaker", 0, "cut off a net after `n` consecutive transient failures (0 = off)")
	fs.StringVar(&b.SLO, "slo", "", "latency objectives like `p99=50ms,p50=5ms`; tracked per run with burn-rate gauges and summary counts")
	return b
}

// Validate rejects flag values the engine would otherwise silently
// coerce, so a typo'd -workers -1 fails loudly instead of running with
// GOMAXPROCS workers.
func (b *BatchFlags) Validate() error {
	if b.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", b.Workers)
	}
	if b.Timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", b.Timeout)
	}
	if b.Retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", b.Retries)
	}
	if b.RetryBackoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0, got %v", b.RetryBackoff)
	}
	if b.Breaker < 0 {
		return fmt.Errorf("-breaker must be >= 0, got %d", b.Breaker)
	}
	if b.JournalSync < 0 {
		return fmt.Errorf("-journal-sync must be >= 0, got %d", b.JournalSync)
	}
	slos, err := telemetry.ParseSLOs(b.SLO)
	if err != nil {
		return fmt.Errorf("-slo: %w", err)
	}
	b.slos = slos
	return nil
}

// Engine builds the batch engine the flags describe: worker pool,
// per-attempt timeout, shared cache, reporting, and the resilience
// layer (retry policy, circuit breaker, degradation switch). Injected
// panics count as retryable here — the chaos walkthrough drives
// unmodified binaries through ELMORE_FAULTS.
func (b *BatchFlags) Engine(stderr io.Writer) *batch.Engine {
	eng := &batch.Engine{
		Workers:   b.Workers,
		Timeout:   b.Timeout,
		Cache:     batch.NewCache(),
		Report:    b.Reporter(stderr),
		NoDegrade: !b.Degrade,
	}
	if b.Retries > 0 {
		eng.Retry = &resilience.Policy{
			MaxAttempts: b.Retries + 1,
			BaseDelay:   b.RetryBackoff,
			MaxDelay:    5 * time.Second,
			RetryPanics: true,
		}
	}
	if b.Breaker > 0 {
		eng.Breaker = &resilience.Breaker{Threshold: b.Breaker}
	}
	return eng
}

// RunBatch executes the -jobs batch mode shared by boundstat and sta:
// it validates the flags, opens the job stream, replays and appends the
// -resume journal, installs SIGINT/SIGTERM cancellation (a Ctrl-C or a
// supervisor's TERM drains in-flight jobs, keeps the journal
// consistent, and leaves the rest for the next -resume run), and
// streams NDJSON results to stdout. A termination signal also dumps
// the flight recorder (when -flight-dump armed it) before cancelling,
// so a killed batch leaves a postmortem next to its journal — SIGTERM
// behaves like SIGQUIT plus a clean exit. A nonzero number of failed
// jobs fails the run after every result has been emitted.
func (b *BatchFlags) RunBatch(ctx context.Context, lib *gate.Library, defaultSlew float64, stdout, stderr io.Writer) (err error) {
	if err := b.Validate(); err != nil {
		return err
	}
	f, err := os.Open(b.Jobs)
	if err != nil {
		return fmt.Errorf("-jobs: %w", err)
	}
	defer f.Close()
	var (
		jr *batch.Journal
		rp *batch.Replay
	)
	if b.Resume != "" {
		jr, rp, err = batch.OpenJournal(b.Resume)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		jr.SyncEvery = b.JournalSync
		defer func() { err = errors.Join(err, jr.Close()) }()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case sig := <-sigs:
			// Dump before cancelling: the recorder still holds the
			// interrupted jobs' events, which is exactly the postmortem a
			// killed batch should leave behind.
			reason := "sigint"
			if sig == syscall.SIGTERM {
				reason = "sigterm"
			}
			telemetry.FlightForceDump(reason)
			cancel()
		case <-ctx.Done():
		}
	}()
	eng := b.Engine(stderr)
	st, err := batch.RunSpecsJournal(ctx, eng, f, lib, defaultSlew, stdout, jr, rp)
	if rp != nil && (st.Skipped > 0 || st.Requeued > 0) {
		fmt.Fprintf(stderr, "resume: %d done jobs skipped, %d in-flight jobs re-queued\n", st.Skipped, st.Requeued)
	}
	if st.Degraded > 0 {
		fmt.Fprintf(stderr, "degraded: %d jobs answered with the elmore-bound interval\n", st.Degraded)
	}
	if err != nil {
		return err
	}
	if st.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", st.Failed, st.Total)
	}
	return nil
}

// Reporter builds the batch.Reporter described by the flags, with all
// outputs multiplexed onto stderr. Returns nil when every report
// output is disabled, so it can be assigned to Engine.Report directly.
func (b *BatchFlags) Reporter(stderr io.Writer) *batch.Reporter {
	if b.slos == nil && b.SLO != "" {
		// Engine() without a prior Validate(): parse here, fail-soft;
		// Validate reports malformed specs loudly on the RunBatch path.
		b.slos, _ = telemetry.ParseSLOs(b.SLO)
	}
	if b.Progress <= 0 && b.SlowJobs <= 0 && !b.Summary && len(b.slos) == 0 {
		return nil
	}
	rep := &batch.Reporter{SLOs: b.slos}
	if b.Progress > 0 {
		rep.Progress = stderr
		rep.Interval = b.Progress
	}
	if b.SlowJobs > 0 {
		rep.SlowThreshold = b.SlowJobs
		rep.Slow = stderr
	}
	if b.Summary {
		rep.Summary = stderr
	}
	return rep
}

// Version returns a one-line version string for the named tool from
// the binary's embedded build info: module version, VCS revision and
// the Go toolchain.
func Version(tool string) string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return tool + " version unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	parts := []string{tool, ver}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, rev+dirty)
	}
	parts = append(parts, bi.GoVersion)
	return strings.Join(parts, " ")
}

// Session is the live observability state of one tool invocation.
// Always Close it — Close flushes the trace, prints the -metrics
// snapshot, stops the debug server and restores the previous default
// registry.
type Session struct {
	ctx     context.Context
	stderr  io.Writer
	metrics bool

	reg  *telemetry.Registry
	prev *telemetry.Registry

	tracer    *telemetry.Tracer
	traceBuf  *bufio.Writer
	traceFile *os.File

	mon        *health.Monitor
	prevMon    *health.Monitor
	monStrict  bool
	healthBuf  *bufio.Writer
	healthFile *os.File

	sampler       *telemetry.RuntimeSampler
	profileDir    string
	mutexProfile  bool
	blockProfile  bool
	prevMutexFrac int

	flight     *telemetry.FlightRecorder
	prevFlight *telemetry.FlightRecorder
	sigquit    chan os.Signal

	ln net.Listener
}

// tracerSink adapts a Tracer into a telemetry.Sink so the runtime
// sampler's NDJSON records interleave with spans in the -trace file
// under the tracer's lock.
type tracerSink struct{ t *telemetry.Tracer }

func (s tracerSink) Emit(rec []byte) error {
	s.t.EmitRaw(rec)
	return nil
}

// publishOnce guards the process-wide expvar name (expvar.Publish
// panics on duplicates). The published Var reads the *current* default
// registry, so one publication serves every later session.
var publishOnce sync.Once

// metricsOnce guards the process-wide /metrics route on the default mux
// (http.Handle panics on duplicates). PromHandler reads the *current*
// default registry, so one registration serves every later session.
var metricsOnce sync.Once

// Start opens the session described by the flags. stderr receives the
// debug-server address line and, at Close, the -metrics snapshot.
func (f *Flags) Start(stderr io.Writer) (*Session, error) {
	s := &Session{ctx: context.Background(), stderr: stderr, metrics: f.Metrics}
	if f.Trace != "" || f.Metrics || f.DebugAddr != "" || f.RuntimeSample > 0 || f.FlightDump != "" {
		s.reg = telemetry.NewRegistry()
		telemetry.InstallStandardHelp(s.reg)
		s.prev = telemetry.SetDefault(s.reg)
	}
	if f.FlightDump != "" {
		s.flight = telemetry.NewFlightRecorder(runtime.GOMAXPROCS(0), f.FlightEvents)
		s.flight.SetDumpPath(f.FlightDump)
		s.prevFlight = telemetry.SetFlightRecorder(s.flight)
		// While the recorder is live, SIGQUIT means "dump the ring and
		// keep running" — the kill -QUIT postmortem hook. The runtime's
		// default stack-dump-and-exit behaviour returns at Close.
		s.sigquit = make(chan os.Signal, 1)
		signal.Notify(s.sigquit, syscall.SIGQUIT)
		go func(ch chan os.Signal) {
			for range ch {
				telemetry.FlightDump("sigquit")
			}
		}(s.sigquit)
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			s.rollback()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		s.traceFile = file
		s.traceBuf = bufio.NewWriter(file)
		s.tracer = telemetry.NewTracer(telemetry.WriterSink{W: s.traceBuf})
		s.ctx = telemetry.WithTracer(s.ctx, s.tracer)
	}
	if f.StrictNumerics || f.HealthLog != "" {
		w := io.Writer(stderr)
		if f.HealthLog != "" {
			file, err := os.Create(f.HealthLog)
			if err != nil {
				s.rollback()
				return nil, fmt.Errorf("-health-log: %w", err)
			}
			s.healthFile = file
			s.healthBuf = bufio.NewWriter(file)
			w = s.healthBuf
		}
		s.mon = health.New(w, f.StrictNumerics)
		s.monStrict = f.StrictNumerics
		s.prevMon = health.SetDefault(s.mon)
	}
	if f.ProfileDir != "" {
		if err := os.MkdirAll(f.ProfileDir, 0o755); err != nil {
			s.rollback()
			return nil, fmt.Errorf("-profile-dir: %w", err)
		}
		s.profileDir = f.ProfileDir
	}
	// Profiling rates are process-wide; the session restores them in
	// Close so an embedded caller's settings survive.
	if f.MutexProfile > 0 {
		s.prevMutexFrac = runtime.SetMutexProfileFraction(f.MutexProfile)
		s.mutexProfile = true
	}
	if f.BlockProfile > 0 {
		runtime.SetBlockProfileRate(f.BlockProfile)
		s.blockProfile = true
	}
	if f.RuntimeSample > 0 {
		var sink telemetry.Sink
		if s.tracer != nil {
			sink = tracerSink{s.tracer}
		}
		s.sampler = telemetry.StartRuntimeSampler(f.RuntimeSample, sink)
	}
	if f.DebugAddr != "" {
		publishOnce.Do(func() { expvar.Publish("elmore.metrics", telemetry.ExpvarVar{}) })
		metricsOnce.Do(func() { http.Handle("/metrics", telemetry.PromHandler{}) })
		ln, err := net.Listen("tcp", f.DebugAddr)
		if err != nil {
			s.rollback()
			return nil, fmt.Errorf("-debug-addr: %w", err)
		}
		s.ln = ln
		// The default mux carries /debug/pprof/* and /debug/vars from
		// the net/http/pprof and expvar imports, plus the Prometheus
		// exposition registered above.
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(stderr, "debug server listening on http://%s/debug/pprof/ (expvar at /debug/vars, Prometheus at /metrics)\n", ln.Addr())
	}
	return s, nil
}

// rollback undoes partial Start work on error.
func (s *Session) rollback() {
	if s.sampler != nil {
		s.sampler.Stop()
	}
	s.stopFlight()
	s.restoreProfiling()
	if s.reg != nil {
		telemetry.SetDefault(s.prev)
	}
	if s.traceFile != nil {
		s.traceFile.Close()
	}
	if s.mon != nil {
		health.SetDefault(s.prevMon)
	}
	if s.healthFile != nil {
		s.healthFile.Close()
	}
}

// stopFlight detaches the SIGQUIT handler and restores the previous
// process flight recorder (usually nil, re-disabling the hot-path
// hooks). Idempotent.
func (s *Session) stopFlight() {
	if s.flight == nil {
		return
	}
	signal.Stop(s.sigquit)
	close(s.sigquit)
	telemetry.SetFlightRecorder(s.prevFlight)
	s.flight = nil
}

// restoreProfiling puts the process-wide profiling rates back the way
// Start found them.
func (s *Session) restoreProfiling() {
	if s.mutexProfile {
		runtime.SetMutexProfileFraction(s.prevMutexFrac)
		s.mutexProfile = false
	}
	if s.blockProfile {
		runtime.SetBlockProfileRate(0)
		s.blockProfile = false
	}
}

// captureProfiles writes the session's pprof profiles into -profile-dir:
// always heap, plus mutex/block when the corresponding rate was on. The
// files are plain pprof protos, ready for `go tool pprof`.
func (s *Session) captureProfiles() error {
	if s.profileDir == "" {
		return nil
	}
	names := []string{"heap"}
	if s.mutexProfile {
		names = append(names, "mutex")
	}
	if s.blockProfile {
		names = append(names, "block")
	}
	var errs []error
	for _, name := range names {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		path := filepath.Join(s.profileDir, name+".pprof")
		f, err := os.Create(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("-profile-dir: %w", err))
			continue
		}
		if err := p.WriteTo(f, 0); err != nil {
			errs = append(errs, fmt.Errorf("-profile-dir: %s: %w", name, err))
		}
		errs = append(errs, f.Close())
	}
	return errors.Join(errs...)
}

// Context returns the context engines should run under; it carries the
// session's tracer when -trace was given.
func (s *Session) Context() context.Context { return s.ctx }

// Registry returns the session's metrics registry (nil when no
// observability flag was set).
func (s *Session) Registry() *telemetry.Registry { return s.reg }

// Close flushes and closes the trace file, emits the -metrics snapshot
// to stderr, stops the debug listener, and restores the previously
// installed default registry. It returns the first error from the
// trace pipeline so silently truncated traces fail the run.
func (s *Session) Close() error {
	var errs []error
	if s.ln != nil {
		errs = append(errs, s.ln.Close())
	}
	// Stop the sampler before the trace flushes (its final record lands
	// in the trace) and capture profiles before the rates reset.
	if s.sampler != nil {
		s.sampler.Stop()
	}
	s.stopFlight()
	errs = append(errs, s.captureProfiles())
	s.restoreProfiling()
	if s.tracer != nil {
		errs = append(errs, s.tracer.Err())
	}
	if s.traceBuf != nil {
		errs = append(errs, s.traceBuf.Flush())
	}
	if s.traceFile != nil {
		errs = append(errs, s.traceFile.Close())
	}
	if s.mon != nil {
		health.SetDefault(s.prevMon)
		errs = append(errs, s.mon.Err())
		if s.healthBuf != nil {
			errs = append(errs, s.healthBuf.Flush())
		}
		if s.healthFile != nil {
			errs = append(errs, s.healthFile.Close())
		}
		// Backstop for code paths that report a violation fail-soft
		// without threading the error out: under -strict-numerics a
		// dirty monitor fails the run even if every engine returned nil.
		if s.monStrict && s.mon.Violations() > 0 {
			errs = append(errs, fmt.Errorf("strict numerics: %d numerical-health violation(s); see health log", s.mon.Violations()))
		}
	}
	if s.metrics {
		fmt.Fprintln(s.stderr, "--- metrics ---")
		errs = append(errs, s.reg.WriteText(s.stderr))
	}
	if s.reg != nil {
		telemetry.SetDefault(s.prev)
	}
	return errors.Join(errs...)
}
