// Package cliutil carries the flags and lifecycle shared by every
// cmd/* tool: observability switches (-trace, -metrics, -debug-addr,
// -strict-numerics, -health-log), the -version flag, and the session
// object that opens/flushes the trace file, installs the process-wide
// metrics registry and numerical-health monitor, and serves
// net/http/pprof + expvar + Prometheus /metrics for live inspection.
//
// The intended wiring inside a tool's run function:
//
//	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
//	cf := cliutil.Add(fs)
//	if err := fs.Parse(args); err != nil { return err }
//	if cf.Version {
//	    fmt.Fprintln(stdout, cliutil.Version("tool"))
//	    return nil
//	}
//	sess, err := cf.Start(stderr)
//	if err != nil { return err }
//	defer func() { err = errors.Join(err, sess.Close()) }()
//	ctx := sess.Context()
//	// ... pass ctx to the engines; telemetry.Start for tool phases.
package cliutil

import (
	"bufio"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"context"

	"elmore/internal/batch"
	"elmore/internal/health"
	"elmore/internal/telemetry"
)

// Flags holds the shared observability/version flags. Create with Add.
type Flags struct {
	Trace          string // -trace: JSON-lines span log path
	Metrics        bool   // -metrics: snapshot to stderr on exit
	DebugAddr      string // -debug-addr: pprof/expvar/metrics listen address
	Version        bool   // -version: print build info and exit
	StrictNumerics bool   // -strict-numerics: numerical-health violations fail the run
	HealthLog      string // -health-log: NDJSON health-event log path
}

// Add registers the shared flags on fs and returns the value holder.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSON-lines span trace to `file`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metrics snapshot to stderr on exit")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar and Prometheus /metrics on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&f.Version, "version", false, "print version information and exit")
	fs.BoolVar(&f.StrictNumerics, "strict-numerics", false, "fail the run on any numerical-health violation")
	fs.StringVar(&f.HealthLog, "health-log", "", "write NDJSON numerical-health events to `file` (default stderr when -strict-numerics)")
	return f
}

// BatchFlags holds the batch-mode flags shared by boundstat and sta:
// -jobs switches the tool from its single-shot mode to streaming
// NDJSON batch evaluation on the internal/batch engine.
type BatchFlags struct {
	Jobs     string        // -jobs: NDJSON job stream file; "" means no batch mode
	Workers  int           // -workers: max concurrent jobs; 0 means GOMAXPROCS
	Timeout  time.Duration // -timeout: per-job limit; 0 means none
	Progress time.Duration // -progress: progress-line period; 0 disables
	SlowJobs time.Duration // -slow-jobs: slow-job log threshold; 0 disables
	Summary  bool          // -summary: final NDJSON run summary
}

// AddBatch registers the batch-mode flags on fs and returns the value
// holder.
func AddBatch(fs *flag.FlagSet) *BatchFlags {
	b := &BatchFlags{}
	fs.StringVar(&b.Jobs, "jobs", "", "evaluate the NDJSON job stream in `file` and emit NDJSON results")
	fs.IntVar(&b.Workers, "workers", 0, "max concurrent batch jobs (0 = GOMAXPROCS)")
	fs.DurationVar(&b.Timeout, "timeout", 0, "per-job time limit, e.g. 30s (0 = none)")
	fs.DurationVar(&b.Progress, "progress", 2*time.Second, "batch progress-line period on stderr (0 = off)")
	fs.DurationVar(&b.SlowJobs, "slow-jobs", 0, "log batch jobs slower than `duration` as NDJSON to stderr (0 = off)")
	fs.BoolVar(&b.Summary, "summary", false, "write a final NDJSON batch run summary to stderr")
	return b
}

// Reporter builds the batch.Reporter described by the flags, with all
// outputs multiplexed onto stderr. Returns nil when every report
// output is disabled, so it can be assigned to Engine.Report directly.
func (b *BatchFlags) Reporter(stderr io.Writer) *batch.Reporter {
	if b.Progress <= 0 && b.SlowJobs <= 0 && !b.Summary {
		return nil
	}
	rep := &batch.Reporter{}
	if b.Progress > 0 {
		rep.Progress = stderr
		rep.Interval = b.Progress
	}
	if b.SlowJobs > 0 {
		rep.SlowThreshold = b.SlowJobs
		rep.Slow = stderr
	}
	if b.Summary {
		rep.Summary = stderr
	}
	return rep
}

// Version returns a one-line version string for the named tool from
// the binary's embedded build info: module version, VCS revision and
// the Go toolchain.
func Version(tool string) string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return tool + " version unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	parts := []string{tool, ver}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		parts = append(parts, rev+dirty)
	}
	parts = append(parts, bi.GoVersion)
	return strings.Join(parts, " ")
}

// Session is the live observability state of one tool invocation.
// Always Close it — Close flushes the trace, prints the -metrics
// snapshot, stops the debug server and restores the previous default
// registry.
type Session struct {
	ctx     context.Context
	stderr  io.Writer
	metrics bool

	reg  *telemetry.Registry
	prev *telemetry.Registry

	tracer    *telemetry.Tracer
	traceBuf  *bufio.Writer
	traceFile *os.File

	mon        *health.Monitor
	prevMon    *health.Monitor
	monStrict  bool
	healthBuf  *bufio.Writer
	healthFile *os.File

	ln net.Listener
}

// publishOnce guards the process-wide expvar name (expvar.Publish
// panics on duplicates). The published Var reads the *current* default
// registry, so one publication serves every later session.
var publishOnce sync.Once

// metricsOnce guards the process-wide /metrics route on the default mux
// (http.Handle panics on duplicates). PromHandler reads the *current*
// default registry, so one registration serves every later session.
var metricsOnce sync.Once

// Start opens the session described by the flags. stderr receives the
// debug-server address line and, at Close, the -metrics snapshot.
func (f *Flags) Start(stderr io.Writer) (*Session, error) {
	s := &Session{ctx: context.Background(), stderr: stderr, metrics: f.Metrics}
	if f.Trace != "" || f.Metrics || f.DebugAddr != "" {
		s.reg = telemetry.NewRegistry()
		s.prev = telemetry.SetDefault(s.reg)
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			s.rollback()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		s.traceFile = file
		s.traceBuf = bufio.NewWriter(file)
		s.tracer = telemetry.NewTracer(telemetry.WriterSink{W: s.traceBuf})
		s.ctx = telemetry.WithTracer(s.ctx, s.tracer)
	}
	if f.StrictNumerics || f.HealthLog != "" {
		w := io.Writer(stderr)
		if f.HealthLog != "" {
			file, err := os.Create(f.HealthLog)
			if err != nil {
				s.rollback()
				return nil, fmt.Errorf("-health-log: %w", err)
			}
			s.healthFile = file
			s.healthBuf = bufio.NewWriter(file)
			w = s.healthBuf
		}
		s.mon = health.New(w, f.StrictNumerics)
		s.monStrict = f.StrictNumerics
		s.prevMon = health.SetDefault(s.mon)
	}
	if f.DebugAddr != "" {
		publishOnce.Do(func() { expvar.Publish("elmore.metrics", telemetry.ExpvarVar{}) })
		metricsOnce.Do(func() { http.Handle("/metrics", telemetry.PromHandler{}) })
		ln, err := net.Listen("tcp", f.DebugAddr)
		if err != nil {
			s.rollback()
			return nil, fmt.Errorf("-debug-addr: %w", err)
		}
		s.ln = ln
		// The default mux carries /debug/pprof/* and /debug/vars from
		// the net/http/pprof and expvar imports, plus the Prometheus
		// exposition registered above.
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(stderr, "debug server listening on http://%s/debug/pprof/ (expvar at /debug/vars, Prometheus at /metrics)\n", ln.Addr())
	}
	return s, nil
}

// rollback undoes partial Start work on error.
func (s *Session) rollback() {
	if s.reg != nil {
		telemetry.SetDefault(s.prev)
	}
	if s.traceFile != nil {
		s.traceFile.Close()
	}
	if s.mon != nil {
		health.SetDefault(s.prevMon)
	}
	if s.healthFile != nil {
		s.healthFile.Close()
	}
}

// Context returns the context engines should run under; it carries the
// session's tracer when -trace was given.
func (s *Session) Context() context.Context { return s.ctx }

// Registry returns the session's metrics registry (nil when no
// observability flag was set).
func (s *Session) Registry() *telemetry.Registry { return s.reg }

// Close flushes and closes the trace file, emits the -metrics snapshot
// to stderr, stops the debug listener, and restores the previously
// installed default registry. It returns the first error from the
// trace pipeline so silently truncated traces fail the run.
func (s *Session) Close() error {
	var errs []error
	if s.ln != nil {
		errs = append(errs, s.ln.Close())
	}
	if s.tracer != nil {
		errs = append(errs, s.tracer.Err())
	}
	if s.traceBuf != nil {
		errs = append(errs, s.traceBuf.Flush())
	}
	if s.traceFile != nil {
		errs = append(errs, s.traceFile.Close())
	}
	if s.mon != nil {
		health.SetDefault(s.prevMon)
		errs = append(errs, s.mon.Err())
		if s.healthBuf != nil {
			errs = append(errs, s.healthBuf.Flush())
		}
		if s.healthFile != nil {
			errs = append(errs, s.healthFile.Close())
		}
		// Backstop for code paths that report a violation fail-soft
		// without threading the error out: under -strict-numerics a
		// dirty monitor fails the run even if every engine returned nil.
		if s.monStrict && s.mon.Violations() > 0 {
			errs = append(errs, fmt.Errorf("strict numerics: %d numerical-health violation(s); see health log", s.mon.Violations()))
		}
	}
	if s.metrics {
		fmt.Fprintln(s.stderr, "--- metrics ---")
		errs = append(errs, s.reg.WriteText(s.stderr))
	}
	if s.reg != nil {
		telemetry.SetDefault(s.prev)
	}
	return errors.Join(errs...)
}
