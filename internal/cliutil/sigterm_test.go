package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"elmore/internal/faultinject"
	"elmore/internal/telemetry"
)

// syncBuffer lets the test poll emitted output while RunBatch is still
// writing from its emitter goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestRunBatchSIGTERMDumpsAndResumes is the satellite contract for the
// one-shot CLIs: a supervisor's SIGTERM mid-batch behaves like SIGQUIT
// plus a clean exit — the flight recorder dumps, the journal stays
// consistent — and a second -resume run completes the batch with every
// job emitted exactly once across the two outputs.
func TestRunBatchSIGTERMDumpsAndResumes(t *testing.T) {
	dir := t.TempDir()
	const njobs = 40
	var specs strings.Builder
	for i := 0; i < njobs; i++ {
		fmt.Fprintf(&specs, `{"id":"j%d","netlist":"Vin in 0 1\nR1 in z %d\nC1 z 0 20f\n"}`+"\n", i, 100+i)
	}
	jobsPath := filepath.Join(dir, "jobs.ndjson")
	if err := os.WriteFile(jobsPath, []byte(specs.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "flight.ndjson")
	// Default MinGap stays: the sigterm dump goes through FlightForceDump,
	// which must land even right after a throttled fault dump.
	fr := telemetry.NewFlightRecorder(2, 64)
	fr.SetDumpPath(dumpPath)
	prevFR := telemetry.SetFlightRecorder(fr)
	defer telemetry.SetFlightRecorder(prevFR)

	// Slow every attempt down so the TERM lands mid-batch.
	prevInj := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "batch.dispatch", Kind: faultinject.KindDelay, Every: 1, Delay: 5 * time.Millisecond,
	}))
	defer faultinject.SetDefault(prevInj)

	flags := func() *BatchFlags {
		return &BatchFlags{
			Jobs:    jobsPath,
			Workers: 2,
			Resume:  filepath.Join(dir, "journal.ndjson"),
		}
	}

	var out1 syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- flags().RunBatch(context.Background(), nil, 0, &out1, os.Stderr)
	}()
	// Wait for results to start flowing, then TERM ourselves: RunBatch's
	// handler intercepts it, so the test process survives.
	deadline := time.Now().Add(5 * time.Second)
	for len(out1.Lines()) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("no results emitted before the kill window")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("interrupted run reported success; want the context error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunBatch did not return after SIGTERM")
	}
	got1 := out1.Lines()
	if len(got1) >= njobs {
		t.Fatalf("first run emitted all %d jobs; the kill landed too late to test resume", len(got1))
	}
	dump, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("no flight dump after SIGTERM: %v", err)
	}
	if !strings.Contains(string(dump), `"sigterm"`) {
		t.Errorf("flight dump lacks a sigterm-reason block:\n%s", dump)
	}

	// Resume: the second run must finish cleanly and fill in exactly the
	// missing jobs.
	var out2 syncBuffer
	if err := flags().RunBatch(context.Background(), nil, 0, &out2, os.Stderr); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	seen := map[string]int{}
	for _, line := range append(got1, out2.Lines()...) {
		var rec struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad result line %q: %v", line, err)
		}
		if rec.Error != "" {
			t.Errorf("job %s failed: %s", rec.ID, rec.Error)
		}
		seen[rec.ID]++
	}
	for i := 0; i < njobs; i++ {
		id := fmt.Sprintf("j%d", i)
		if seen[id] != 1 {
			t.Errorf("job %s emitted %d times across the kill-and-restart cycle, want exactly once", id, seen[id])
		}
	}
}
