package cliutil

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProfileFlagsRegistered(t *testing.T) {
	cf := parse(t,
		"-mutex-profile", "5",
		"-block-profile", "1000",
		"-profile-dir", "/tmp/p",
		"-runtime-sample", "250ms",
	)
	if cf.MutexProfile != 5 || cf.BlockProfile != 1000 ||
		cf.ProfileDir != "/tmp/p" || cf.RuntimeSample != 250*time.Millisecond {
		t.Fatalf("profile flags parsed wrong: %+v", cf)
	}
}

// TestSessionProfilingLifecycle drives the full contention-observability
// path: profiling rates set and restored, pprof profiles captured to
// -profile-dir, and runtime_sample records interleaved into the -trace
// stream.
func TestSessionProfilingLifecycle(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.ndjson")
	prof := filepath.Join(dir, "profiles")

	prevFrac := runtime.SetMutexProfileFraction(-1) // read without changing
	cf := parse(t,
		"-trace", trace,
		"-profile-dir", prof,
		"-mutex-profile", "1",
		"-block-profile", "1",
		"-runtime-sample", "20ms",
	)
	sess, err := cf.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.SetMutexProfileFraction(-1); got != 1 {
		t.Errorf("mutex profile fraction = %d during session, want 1", got)
	}

	// Generate some contention so the profiles are non-trivial, and let
	// the sampler tick at least once beyond its immediate sample.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				time.Sleep(50 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	time.Sleep(30 * time.Millisecond)

	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := runtime.SetMutexProfileFraction(prevFrac); got != prevFrac {
		t.Errorf("mutex profile fraction = %d after Close, want restored %d", got, prevFrac)
	}

	for _, name := range []string{"heap.pprof", "mutex.pprof", "block.pprof"} {
		fi, err := os.Stat(filepath.Join(prof, name))
		if err != nil {
			t.Errorf("profile %s not captured: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if ln == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("trace line not NDJSON: %q: %v", ln, err)
		}
		if rec["record"] == "runtime_sample" {
			samples++
			if g, ok := rec["goroutines"].(float64); !ok || g < 1 {
				t.Errorf("runtime_sample goroutines = %v, want >= 1", rec["goroutines"])
			}
		}
	}
	if samples < 2 {
		t.Errorf("trace has %d runtime_sample records, want >= 2 (immediate + final)", samples)
	}
}

// TestSessionRuntimeSampleWithoutTrace exercises the sampler with no
// trace sink: gauges still land in the session registry.
func TestSessionRuntimeSampleWithoutTrace(t *testing.T) {
	cf := parse(t, "-runtime-sample", "15ms")
	sess, err := cf.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	reg := sess.Registry()
	if reg == nil {
		t.Fatal("-runtime-sample alone must install a registry")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("runtime.goroutines").Value(); got < 1 {
		t.Errorf("runtime.goroutines gauge = %v, want >= 1", got)
	}
}
