package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBatchFlagsValidate(t *testing.T) {
	cases := []struct {
		name string
		b    BatchFlags
		want string // "" means valid
	}{
		{"zero value", BatchFlags{}, ""},
		{"all positive", BatchFlags{Workers: 4, Timeout: time.Second, Retries: 2,
			RetryBackoff: time.Millisecond, Breaker: 8}, ""},
		{"negative workers", BatchFlags{Workers: -1}, "-workers"},
		{"negative timeout", BatchFlags{Timeout: -time.Second}, "-timeout"},
		{"negative retries", BatchFlags{Retries: -3}, "-retries"},
		{"negative backoff", BatchFlags{RetryBackoff: -time.Millisecond}, "-retry-backoff"},
		{"negative breaker", BatchFlags{Breaker: -1}, "-breaker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.b.Validate()
			if tc.want == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want an error naming %s", err, tc.want)
			}
		})
	}
}

func TestBatchFlagParseRejectsGarbage(t *testing.T) {
	cases := [][]string{
		{"-timeout", "banana"},
		{"-timeout", "30"}, // a bare number is not a duration
		{"-workers", "many"},
		{"-retries", "1.5"},
		{"-retry-backoff", "x"},
		{"-breaker", ""},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, "="), func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			AddBatch(fs)
			if err := fs.Parse(args); err == nil {
				t.Errorf("Parse(%v) accepted garbage", args)
			}
		})
	}
}

func TestRunBatchUnreadableJobs(t *testing.T) {
	b := &BatchFlags{Jobs: filepath.Join(t.TempDir(), "missing.ndjson")}
	var out, errOut strings.Builder
	err := b.RunBatch(context.Background(), nil, 0, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-jobs") {
		t.Errorf("RunBatch = %v, want an error naming -jobs", err)
	}
	if out.Len() != 0 {
		t.Errorf("unreadable job stream still produced output: %q", out.String())
	}
}

func TestRunBatchValidatesBeforeOpening(t *testing.T) {
	// The jobs path does not exist either — the error must still be the
	// validation one, proving no I/O happens on invalid flags.
	b := &BatchFlags{Jobs: filepath.Join(t.TempDir(), "missing.ndjson"), Workers: -2}
	err := b.RunBatch(context.Background(), nil, 0, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("RunBatch = %v, want the -workers validation error", err)
	}
}

func TestRunBatchCorruptResumeJournal(t *testing.T) {
	dir := t.TempDir()
	jobs := filepath.Join(dir, "jobs.ndjson")
	if err := os.WriteFile(jobs, []byte(`{"id":"a","net":"x.sp"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(dir, "resume.journal")
	if err := os.WriteFile(journal, []byte("{broken\n{\"op\":\"done\",\"key\":\"0:a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b := &BatchFlags{Jobs: jobs, Resume: journal}
	err := b.RunBatch(context.Background(), nil, 0, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Errorf("RunBatch = %v, want an error naming -resume", err)
	}
}

func TestRunBatchEndToEndWithResume(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.sp")
	deck := "Vin in 0 1\nR1 in a 100\nC1 a 0 20f\n"
	if err := os.WriteFile(netPath, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	jobsPath := filepath.Join(dir, "jobs.ndjson")
	stream := fmt.Sprintf("{\"id\":\"n1\",\"net\":%q}\n{\"id\":\"n2\",\"net\":%q,\"sinks\":[\"a\"]}\n",
		netPath, netPath)
	if err := os.WriteFile(jobsPath, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(dir, "resume.journal")

	b := &BatchFlags{Jobs: jobsPath, Resume: journal, Retries: 2, RetryBackoff: time.Millisecond}
	var out, errOut strings.Builder
	if err := b.RunBatch(context.Background(), nil, 0, &out, &errOut); err != nil {
		t.Fatalf("RunBatch: %v (stderr: %s)", err, errOut.String())
	}
	if got := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; got != 2 {
		t.Fatalf("first run emitted %d result lines, want 2:\n%s", got, out.String())
	}

	// Second run resumes against the same journal: everything is done,
	// nothing is re-emitted, and stderr says so.
	var out2, errOut2 strings.Builder
	if err := b.RunBatch(context.Background(), nil, 0, &out2, &errOut2); err != nil {
		t.Fatalf("resumed RunBatch: %v", err)
	}
	if out2.Len() != 0 {
		t.Errorf("resumed run re-emitted results: %q", out2.String())
	}
	if !strings.Contains(errOut2.String(), "2 done jobs skipped") {
		t.Errorf("resume summary missing from stderr: %q", errOut2.String())
	}
}

func TestRunBatchReportsFailedJobs(t *testing.T) {
	dir := t.TempDir()
	jobsPath := filepath.Join(dir, "jobs.ndjson")
	stream := fmt.Sprintf("{\"id\":\"bad\",\"net\":%q}\n", filepath.Join(dir, "missing.sp"))
	if err := os.WriteFile(jobsPath, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	b := &BatchFlags{Jobs: jobsPath}
	var out strings.Builder
	err := b.RunBatch(context.Background(), nil, 0, &out, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 jobs failed") {
		t.Errorf("RunBatch = %v, want the failed-jobs summary error", err)
	}
	// Fail-soft: the error record itself was still emitted.
	if !strings.Contains(out.String(), `"error"`) {
		t.Errorf("failed job produced no error record: %q", out.String())
	}
}

func TestEngineBuildsResilienceLayer(t *testing.T) {
	// Flag defaults (not the struct zero value) drive the default engine.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	def := AddBatch(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	eng := def.Engine(io.Discard)
	if eng.Retry != nil || eng.Breaker != nil {
		t.Errorf("default flags must not configure retry/breaker: %+v", eng)
	}
	if eng.NoDegrade {
		t.Errorf("degradation must default on")
	}
	b := &BatchFlags{Retries: 3, RetryBackoff: 10 * time.Millisecond, Breaker: 5, Degrade: false}
	eng = b.Engine(io.Discard)
	if eng.Retry == nil || eng.Retry.MaxAttempts != 4 || eng.Retry.BaseDelay != 10*time.Millisecond {
		t.Errorf("retry policy not built from flags: %+v", eng.Retry)
	}
	if !eng.Retry.RetryPanics {
		t.Errorf("CLI retry policy must retry injected panics")
	}
	if eng.Breaker == nil || eng.Breaker.Threshold != 5 {
		t.Errorf("breaker not built from flags: %+v", eng.Breaker)
	}
	if !eng.NoDegrade {
		t.Errorf("-degrade=false must disable degradation")
	}
}
