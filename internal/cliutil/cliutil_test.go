package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"elmore/internal/health"
	"elmore/internal/telemetry"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cf := Add(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cf
}

func TestVersionString(t *testing.T) {
	v := Version("mytool")
	if !strings.HasPrefix(v, "mytool ") {
		t.Errorf("version %q must start with the tool name", v)
	}
	if !strings.Contains(v, "go1") {
		t.Errorf("version %q must carry the Go toolchain", v)
	}
}

func TestFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Add(fs)
	for _, name := range []string{"trace", "metrics", "debug-addr", "version", "strict-numerics", "health-log"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestBatchFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	AddBatch(fs)
	for _, name := range []string{"jobs", "workers", "timeout", "progress", "slow-jobs", "summary",
		"resume", "retries", "retry-backoff", "degrade", "breaker"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestBatchReporterHelper(t *testing.T) {
	if rep := (&BatchFlags{}).Reporter(io.Discard); rep != nil {
		t.Error("all-off BatchFlags must yield a nil Reporter")
	}
	b := &BatchFlags{Progress: time.Second, SlowJobs: time.Millisecond, Summary: true}
	rep := b.Reporter(io.Discard)
	if rep == nil || rep.Progress == nil || rep.Slow == nil || rep.Summary == nil {
		t.Fatalf("reporter missing outputs: %+v", rep)
	}
	if rep.Interval != time.Second || rep.SlowThreshold != time.Millisecond {
		t.Errorf("reporter thresholds: %+v", rep)
	}
}

func TestNoFlagsSessionIsInert(t *testing.T) {
	cf := parse(t)
	var errOut strings.Builder
	sess, err := cf.Start(&errOut)
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.TracerFrom(sess.Context()) != nil {
		t.Error("inert session must not carry a tracer")
	}
	if sess.Registry() != nil {
		t.Error("inert session must not install a registry")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if errOut.Len() != 0 {
		t.Errorf("inert session wrote to stderr: %q", errOut.String())
	}
}

func TestTraceAndMetricsLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	cf := parse(t, "-trace", path, "-metrics")
	var errOut strings.Builder
	sess, err := cf.Start(&errOut)
	if err != nil {
		t.Fatal(err)
	}

	ctx, sp := telemetry.Start(sess.Context(), "phase")
	_, inner := telemetry.Start(ctx, "phase.inner")
	inner.End()
	sp.End()
	telemetry.C("test.count").Add(5)

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if telemetry.Default() != nil {
		t.Error("Close must restore the previous (nil) default registry")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trace lines, got %d:\n%s", len(lines), data)
	}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		for _, field := range []string{"span", "parent", "name", "start_ns", "dur_ns"} {
			if _, ok := rec[field]; !ok {
				t.Errorf("trace line missing %q: %s", field, ln)
			}
		}
	}
	if !strings.Contains(errOut.String(), "counter test.count 5") {
		t.Errorf("metrics snapshot missing counter:\n%s", errOut.String())
	}
}

func TestDebugServerServesPprofAndExpvar(t *testing.T) {
	cf := parse(t, "-debug-addr", "127.0.0.1:0", "-metrics")
	var errOut strings.Builder
	sess, err := cf.Start(&errOut)
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	defer sess.Close()
	telemetry.C("dbg.count").Inc()

	// The listen address is reported on stderr.
	line := errOut.String()
	start := strings.Index(line, "http://")
	end := strings.Index(line, "/debug/pprof/")
	if start < 0 || end < 0 {
		t.Fatalf("no debug address line: %q", line)
	}
	base := line[start:end]

	for path, want := range map[string]string{
		"/debug/vars":               `"dbg.count":1`,
		"/debug/pprof/":             "goroutine",
		"/debug/pprof/heap?debug=1": "heap profile",
		"/metrics":                  "dbg_count 1",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}

func TestTraceErrorSurfacesOnClose(t *testing.T) {
	cf := parse(t, "-trace", filepath.Join(t.TempDir(), "missing", "dir", "t.jsonl"))
	if _, err := cf.Start(io.Discard); err == nil {
		t.Fatal("unwritable -trace path must error at Start")
	}
	if telemetry.Default() != nil {
		t.Error("failed Start must not leave a default registry installed")
	}
}

func TestHealthLogLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "health.ndjson")
	cf := parse(t, "-health-log", path)
	sess, err := cf.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if health.Default() == nil {
		t.Fatal("-health-log must install a monitor")
	}
	if health.Default().Strict() {
		t.Error("monitor must be fail-soft without -strict-numerics")
	}
	if err := health.Violate(health.Event{Check: "test.check", Node: "n1"}); err != nil {
		t.Fatalf("fail-soft Violate returned %v", err)
	}
	// Fail-soft: violations recorded but Close succeeds.
	if err := sess.Close(); err != nil {
		t.Fatalf("non-strict Close: %v", err)
	}
	if health.Default() != nil {
		t.Error("Close must restore the previous (nil) default monitor")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(data))), &rec); err != nil {
		t.Fatalf("health log %q: %v", data, err)
	}
	if rec["check"] != "test.check" {
		t.Errorf("health log record = %v", rec)
	}
}

func TestStrictNumericsFailsCloseOnViolation(t *testing.T) {
	cf := parse(t, "-strict-numerics")
	var errOut strings.Builder
	sess, err := cf.Start(&errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !health.Default().Strict() {
		t.Fatal("-strict-numerics must install a strict monitor")
	}
	// A strict Violate returns the error to the caller; even when a
	// caller drops it, Close's backstop must fail the run.
	if err := health.Violate(health.Event{Check: "test.check"}); err == nil {
		t.Fatal("strict Violate must return an error")
	}
	err = sess.Close()
	if err == nil || !strings.Contains(err.Error(), "numerical-health violation") {
		t.Fatalf("strict Close = %v, want violation backstop", err)
	}
	// The event itself landed on stderr (no -health-log).
	if !strings.Contains(errOut.String(), `"check":"test.check"`) {
		t.Errorf("stderr missing health event: %q", errOut.String())
	}
}

func TestStrictNumericsCleanClose(t *testing.T) {
	cf := parse(t, "-strict-numerics")
	sess, err := cf.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("clean strict session must close without error: %v", err)
	}
}

func ExampleVersion() {
	fmt.Println(strings.Fields(Version("demo"))[0])
	// Output: demo
}
