package core

import (
	"testing"

	"elmore/internal/faultinject"
	"elmore/internal/health"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

// analyzeAllocBudget is the serial-path allocation count for a full
// Analyze: 2 here (Analysis, Bounds slice) + 4 in moments.Compute +
// 3 in moments.ComputePRH. The regression this pins: PR 3's compiled
// layout crept from 15 to 19 allocs/op because the sweep buffers were
// captured by parallel-path closures (heap-boxing them even on the
// serial path) and ComputePRH allocated its seven arrays one by one.
const analyzeAllocBudget = 9

func TestAnalyzeAllocBudget(t *testing.T) {
	if health.Enabled() {
		t.Skip("health monitor installed; the instrumented path allocates by design")
	}
	tree := topo.Random(42, topo.RandomOptions{N: 300})
	if _, err := Analyze(tree); err != nil { // warm compiled-plan + counter caches
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := Analyze(tree); err != nil {
			t.Fatal(err)
		}
	})
	if got > analyzeAllocBudget {
		t.Errorf("Analyze = %.1f allocs/op, budget %d", got, analyzeAllocBudget)
	}
}

// TestDisabledObservabilityZeroAlloc asserts that the hooks Analyze
// leaves permanently in its hot path — fault-injection points, health
// gates, telemetry counters — are allocation-free when no injector,
// monitor, or registry is installed. The time bound is checked by
// BenchmarkDisabledObservabilityPath (a few ns/op: three atomic loads
// and nil checks).
func TestDisabledObservabilityZeroAlloc(t *testing.T) {
	if health.Enabled() || faultinject.Enabled() {
		t.Skip("injector or monitor installed; disabled-path contract does not apply")
	}
	got := testing.AllocsPerRun(1000, func() {
		if err := faultinject.Fire("core.analyze.bench"); err != nil {
			t.Fatal(err)
		}
		if health.Enabled() {
			t.Fatal("health flipped on mid-test")
		}
		telemetry.C("core.analyses").Inc()
		telemetry.C("core.nodes_analyzed").Add(300)
	})
	if got != 0 {
		t.Errorf("disabled observability path = %.1f allocs/op, want 0", got)
	}
}

// BenchmarkDisabledObservabilityPath measures the fixed overhead the
// observability hooks add to every Analyze when everything is turned
// off. The contract is a handful of nanoseconds and zero allocations
// per composite op (one Fire, one Enabled, two counter updates).
func BenchmarkDisabledObservabilityPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := faultinject.Fire("core.analyze.bench"); err != nil {
			b.Fatal(err)
		}
		if health.Enabled() {
			b.Fatal("health must be disabled for this benchmark")
		}
		telemetry.C("core.analyses").Inc()
		telemetry.C("core.nodes_analyzed").Add(300)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	tree := topo.Random(42, topo.RandomOptions{N: 1000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tree); err != nil {
			b.Fatal(err)
		}
	}
}
