package core

import (
	"context"
	"testing"

	"elmore/internal/health"
	"elmore/internal/moments"
	"elmore/internal/topo"
)

// analyzeArenaAllocBudget is the batch-worker path: when the context
// carries a scratch arena, both moment computations draw their sweep
// buffers from it, shaving one allocation off each —
// analyzeAllocBudget - 2.
const analyzeArenaAllocBudget = analyzeAllocBudget - 2

func TestAnalyzeWithArenaAllocBudget(t *testing.T) {
	if health.Enabled() {
		t.Skip("health monitor installed; the instrumented path allocates by design")
	}
	tree := topo.Random(42, topo.RandomOptions{N: 300})
	ctx := moments.WithArena(context.Background(), new(moments.Arena))
	if _, err := AnalyzeContext(ctx, tree); err != nil { // warm plan cache and arena
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := AnalyzeContext(ctx, tree); err != nil {
			t.Fatal(err)
		}
	})
	if got > analyzeArenaAllocBudget {
		t.Errorf("AnalyzeContext(arena) = %.1f allocs/op, budget %d", got, analyzeArenaAllocBudget)
	}
}

// TestAnalyzeWithArenaBitIdentical pins that the arena is invisible in
// the results: every bound Analyze produces through a reused, dirty
// arena matches the allocating path to the last bit.
func TestAnalyzeWithArenaBitIdentical(t *testing.T) {
	ar := new(moments.Arena)
	ctx := moments.WithArena(context.Background(), ar)
	for seed := int64(1); seed <= 4; seed++ {
		tree := topo.Random(seed, topo.RandomOptions{N: 200 + 150*int(seed)})
		want, err := Analyze(tree)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeContext(ctx, tree) // arena dirty from the previous seed
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Bounds {
			if got.Bounds[i] != want.Bounds[i] {
				t.Fatalf("seed %d node %d: arena bounds %+v != alloc bounds %+v",
					seed, i, got.Bounds[i], want.Bounds[i])
			}
		}
	}
}
