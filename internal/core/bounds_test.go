package core

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/exact"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func TestSingleRCBounds(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	bd := a.Bounds[0]
	if !approx(bd.Elmore, rc, 1e-12) {
		t.Errorf("Elmore = %v", bd.Elmore)
	}
	if !approx(bd.Sigma, rc, 1e-12) {
		t.Errorf("Sigma = %v", bd.Sigma)
	}
	if bd.Lower != 0 { // mu - sigma = 0 exactly for single pole
		t.Errorf("Lower = %v, want 0", bd.Lower)
	}
	if !approx(bd.SinglePole, rc*math.Ln2, 1e-12) {
		t.Errorf("SinglePole = %v", bd.SinglePole)
	}
	if !approx(bd.Skewness, 2, 1e-9) {
		t.Errorf("Skewness = %v, want 2 (exponential)", bd.Skewness)
	}
	if !approx(bd.RiseTime, rc*math.Log(9), 1e-9) {
		t.Errorf("RiseTime = %v, want RC*ln9", bd.RiseTime)
	}
	// For a single RC: T_P = T_D = T_R = RC, so the PRH bounds collapse
	// to the exact value RC*ln2 at 50%.
	if !approx(bd.PRHTmin, rc*math.Ln2, 1e-9) || !approx(bd.PRHTmax, rc*math.Ln2, 1e-9) {
		t.Errorf("PRH bounds (%v, %v), want both %v", bd.PRHTmin, bd.PRHTmax, rc*math.Ln2)
	}
}

func TestAtLookup(t *testing.T) {
	a, err := Analyze(topo.Fig1Tree())
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.At("C5")
	if err != nil || b.Node != "C5" {
		t.Errorf("At(C5) = %+v, %v", b, err)
	}
	if _, err := a.At("nope"); err == nil {
		t.Errorf("unknown node should error")
	}
	if a.Moments() == nil || a.PRH() == nil {
		t.Errorf("accessors returned nil")
	}
}

// The full bound ordering on random trees, against the exact engine:
// PRHTmin, Lower <= actual <= Elmore, PRHTmax ; SinglePole within PRH.
func TestBoundOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 20)
		a, err := Analyze(tree)
		if err != nil {
			return false
		}
		sys, err := exact.NewSystem(tree)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			actual, err := sys.Delay50Step(i)
			if err != nil {
				return false
			}
			b := a.Bounds[i]
			tol := 1 + 1e-9
			if b.Lower > actual*tol {
				return false
			}
			if actual > b.Elmore*tol {
				return false
			}
			if b.PRHTmin > actual*tol {
				return false
			}
			if actual > b.PRHTmax*tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Paper Table I structure at the Fig. 1 circuit: t_max = T_D at the
// driving point, t_max > T_D at the leaves; lower bound clipped at 0
// where sigma > mu.
func TestFig1TableIStructure(t *testing.T) {
	a, err := Analyze(topo.Fig1Tree())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := a.At("C1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c1.PRHTmax, c1.Elmore, 1e-9) {
		t.Errorf("driving point: t_max = %v, want T_D = %v", c1.PRHTmax, c1.Elmore)
	}
	for _, leaf := range []string{"C5", "C7"} {
		b, err := a.At(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if b.PRHTmax <= b.Elmore {
			t.Errorf("%s: t_max = %v should exceed T_D = %v", leaf, b.PRHTmax, b.Elmore)
		}
	}
	if c1.Lower != 0 {
		t.Errorf("C1 lower bound = %v, want 0 (sigma > mu near driving point)", c1.Lower)
	}
	c5, err := a.At("C5")
	if err != nil {
		t.Fatal(err)
	}
	if c5.Lower <= 0 {
		t.Errorf("C5 lower bound = %v, want > 0", c5.Lower)
	}
}

func TestPRHBoundFunctions(t *testing.T) {
	// Monotone in v; tmin <= tmax; NaN outside range.
	tp, td, tr := 1.58e-9, 0.55e-9, 0.55e-9
	prevMin, prevMax := -1.0, -1.0
	for _, v := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		lo := PRHTmin(tp, td, tr, v)
		hi := PRHTmax(tp, td, tr, v)
		if lo > hi {
			t.Errorf("v=%v: tmin %v > tmax %v", v, lo, hi)
		}
		if lo < prevMin || hi < prevMax {
			t.Errorf("v=%v: bounds not monotone", v)
		}
		prevMin, prevMax = lo, hi
	}
	if !math.IsNaN(PRHTmin(tp, td, tr, 1)) || !math.IsNaN(PRHTmax(tp, td, tr, -0.1)) {
		t.Errorf("out-of-range v should produce NaN")
	}
}

// The PRH waveform bounds bracket the exact step response at every
// percentage point (not just 50%).
func TestPRHWaveformBracketsExact(t *testing.T) {
	tree := topo.Fig1Tree()
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		td := a.Bounds[i].Elmore
		tr := a.PRH().TR(i)
		for _, v := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			actual, err := sys.CrossStep(i, v)
			if err != nil {
				t.Fatal(err)
			}
			lo := PRHTmin(a.TP, td, tr, v)
			hi := PRHTmax(a.TP, td, tr, v)
			if actual < lo*(1-1e-9) || actual > hi*(1+1e-9) {
				t.Errorf("%s v=%v: actual %v outside [%v, %v]", name, v, actual, lo, hi)
			}
		}
	}
}

func TestForInputSymmetricUpperIsElmore(t *testing.T) {
	a, err := Analyze(topo.Fig1Tree())
	if err != nil {
		t.Fatal(err)
	}
	i := a.Tree.MustIndex("C5")
	for _, sig := range []signal.Signal{
		signal.SaturatedRamp{Tr: 1e-9},
		signal.RaisedCosine{Tr: 2e-9},
		signal.Step{},
	} {
		ib, err := a.ForInput(i, sig)
		if err != nil {
			t.Fatalf("%v: %v", sig, err)
		}
		if !approx(ib.Upper, a.Bounds[i].Elmore, 1e-9) {
			t.Errorf("%v: Upper = %v, want T_D = %v", sig, ib.Upper, a.Bounds[i].Elmore)
		}
		if ib.Lower > ib.Upper {
			t.Errorf("%v: Lower %v > Upper %v", sig, ib.Lower, ib.Upper)
		}
	}
}

func TestForInputExponentialShiftsUpper(t *testing.T) {
	a, err := Analyze(topo.Fig1Tree())
	if err != nil {
		t.Fatal(err)
	}
	i := a.Tree.MustIndex("C5")
	tau := 1e-9
	ib, err := a.ForInput(i, signal.Exponential{Tau: tau})
	if err != nil {
		t.Fatal(err)
	}
	want := a.Bounds[i].Elmore + tau - tau*math.Ln2
	if !approx(ib.Upper, want, 1e-9) {
		t.Errorf("Upper = %v, want %v", ib.Upper, want)
	}
}

func TestForInputRejectsBimodal(t *testing.T) {
	a, err := Analyze(topo.Fig1Tree())
	if err != nil {
		t.Fatal(err)
	}
	bim, err := signal.NewPWL([]signal.Point{{T: 0, V: 0}, {T: 1e-9, V: 0.45}, {T: 2e-9, V: 0.55}, {T: 3e-9, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ForInput(0, bim); err == nil {
		t.Errorf("bimodal-derivative input should be rejected")
	}
	if _, err := a.ForInput(0, signal.SaturatedRamp{Tr: -1}); err == nil {
		t.Errorf("invalid signal should be rejected")
	}
}

// Corollary 2/3 against the exact engine: measured ramp delays respect
// the generalized bounds, and the output-skew prediction decays with
// rise time.
func TestForInputBoundsHoldExact(t *testing.T) {
	tree := topo.Fig1Tree()
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex("C7")
	var prevSkew = math.Inf(1)
	for _, trr := range []float64{0.3e-9, 1e-9, 3e-9, 10e-9} {
		sig := signal.SaturatedRamp{Tr: trr}
		ib, err := a.ForInput(i, sig)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sys.Delay(i, sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d > ib.Upper*(1+1e-9) {
			t.Errorf("tr=%v: delay %v exceeds upper %v", trr, d, ib.Upper)
		}
		if d < ib.Lower-1e-15 {
			t.Errorf("tr=%v: delay %v below lower %v", trr, d, ib.Lower)
		}
		if ib.OutputSkew > prevSkew {
			t.Errorf("tr=%v: output skew %v not decreasing", trr, ib.OutputSkew)
		}
		prevSkew = ib.OutputSkew
	}
}

// Skewness is nonnegative everywhere, and the sigma-based transition
// estimate (Section III-B) essentially never *under*states the exact
// 10-90% rise time: sigma is inflated by the response's long right
// tail, so near driving points it overestimates (sometimes hugely),
// but it stays a safe edge-rate proxy. Empirically the ratio
// estimate/actual ranges from ~0.93 upward on random trees.
func TestRiseTimeEstimateProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 15)
		a, err := Analyze(tree)
		if err != nil {
			return false
		}
		sys, err := exact.NewSystem(tree)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if a.Bounds[i].Skewness < 0 {
				return false
			}
			rt, err := sys.RiseTimeStep(i, 0.1, 0.9)
			if err != nil {
				return false
			}
			if a.Bounds[i].RiseTime < 0.5*rt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// At far-from-the-driver nodes, where the response is dominated by a
// single pole, the sigma-based rise-time estimate is tight.
func TestRiseTimeEstimateTightAtLeaves(t *testing.T) {
	tree := topo.Line25Tree()
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	i := tree.MustIndex(topo.Line25NodeC)
	rt, err := sys.RiseTimeStep(i, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	est := a.Bounds[i].RiseTime
	if est < 0.6*rt || est > 2*rt {
		t.Errorf("leaf rise-time estimate %v vs exact %v (ratio %v)", est, rt, est/rt)
	}
}

// WindowAt brackets the exact crossing at every threshold and is at
// least as tight as the raw PRH bracket at 50%.
func TestWindowAt(t *testing.T) {
	tree := topo.Fig1Tree()
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		for _, v := range []float64{0.1, 0.5, 0.9} {
			lo, hi, err := a.WindowAt(i, v)
			if err != nil {
				t.Fatal(err)
			}
			actual, err := sys.CrossStep(i, v)
			if err != nil {
				t.Fatal(err)
			}
			if actual < lo*(1-1e-9) || actual > hi*(1+1e-9) {
				t.Errorf("%s v=%v: %v outside [%v, %v]", name, v, actual, lo, hi)
			}
		}
		// 50% window no looser than the PRH bracket alone.
		lo, hi, err := a.WindowAt(i, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		b := a.Bounds[i]
		if lo < b.PRHTmin-1e-18 || hi > b.PRHTmax+1e-18 {
			t.Errorf("%s: 50%% window [%v,%v] looser than PRH [%v,%v]", name, lo, hi, b.PRHTmin, b.PRHTmax)
		}
		if hi > b.Elmore*(1+1e-12) {
			t.Errorf("%s: 50%% upper %v above Elmore %v", name, hi, b.Elmore)
		}
	}
	if _, _, err := a.WindowAt(0, 0); err == nil {
		t.Errorf("v=0 should error")
	}
	if _, _, err := a.WindowAt(0, 1); err == nil {
		t.Errorf("v=1 should error")
	}
}

// TestDegenerateZeroVarianceTree drives core.Analyze with a tree whose
// capacitances have all been zeroed after construction (mu2 == 0 and
// T_P == 0 at every node). Every bound must stay finite and obey the
// zero-variance contract: skewness 0, sigma/rise time 0, lower bound
// clamped to mu, PRH bounds collapsed to the instantaneous response.
func TestDegenerateZeroVarianceTree(t *testing.T) {
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12)
	b.MustAttach(n1, "n2", 50, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if err := tree.SetC(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range a.Bounds {
		for name, v := range map[string]float64{
			"Elmore": bd.Elmore, "Sigma": bd.Sigma, "Skewness": bd.Skewness,
			"Lower": bd.Lower, "SinglePole": bd.SinglePole,
			"PRHTmin": bd.PRHTmin, "PRHTmax": bd.PRHTmax, "RiseTime": bd.RiseTime,
		} {
			if math.IsNaN(v) {
				t.Errorf("node %s: %s is NaN", bd.Node, name)
			}
		}
		if bd.Skewness != 0 {
			t.Errorf("node %s: zero-variance skewness = %v, want 0", bd.Node, bd.Skewness)
		}
		if bd.Sigma != 0 || math.Signbit(bd.Sigma) {
			t.Errorf("node %s: zero-variance sigma = %v, want +0", bd.Node, bd.Sigma)
		}
		if bd.Lower != bd.Elmore {
			t.Errorf("node %s: lower bound %v, want mu = %v", bd.Node, bd.Lower, bd.Elmore)
		}
	}
	lo, hi, err := a.WindowAt(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Errorf("WindowAt on degenerate tree: [%v, %v]", lo, hi)
	}
}
