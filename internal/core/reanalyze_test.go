package core

import (
	"math"
	"math/rand"
	"testing"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func boundsBitsEqual(a, b Bounds) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Node == b.Node &&
		eq(a.Elmore, b.Elmore) && eq(a.Sigma, b.Sigma) &&
		eq(a.Mu2, b.Mu2) && eq(a.Mu3, b.Mu3) && eq(a.Skewness, b.Skewness) &&
		eq(a.Lower, b.Lower) && eq(a.SinglePole, b.SinglePole) &&
		eq(a.PRHTmin, b.PRHTmin) && eq(a.PRHTmax, b.PRHTmax) &&
		eq(a.RiseTime, b.RiseTime)
}

// Reanalyzing every sink after a perturbation sequence must reproduce,
// bit for bit, the Bounds a fresh Analyze computes on a tree carrying
// the same values — the acceptance contract of the incremental path.
func TestReanalyzeAllSinksBitIdentical(t *testing.T) {
	for name, tree := range map[string]*rctree.Tree{
		"chain":  topo.Chain(50, 80, 2e-14),
		"star":   topo.Star(6, 8, 120, 1e-14),
		"random": topo.Random(5, topo.RandomOptions{N: 120}),
	} {
		an, err := Analyze(tree)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := moments.NewIncremental(tree)
		if err != nil {
			t.Fatal(err)
		}
		shadow := tree.Clone()
		rng := rand.New(rand.NewSource(42))
		for step := 0; step < 12; step++ {
			node := rng.Intn(tree.N())
			if rng.Intn(2) == 0 {
				v := 10 + 500*rng.Float64()
				if err := inc.SetR(node, v); err != nil {
					t.Fatal(err)
				}
				if err := shadow.SetR(node, v); err != nil {
					t.Fatal(err)
				}
			} else {
				v := 1e-15 * (1 + 500*rng.Float64())
				if err := inc.SetC(node, v); err != nil {
					t.Fatal(err)
				}
				if err := shadow.SetC(node, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		sinks := make([]int, tree.N())
		for i := range sinks {
			sinks[i] = i
		}
		if err := an.Reanalyze(inc, sinks); err != nil {
			t.Fatal(err)
		}
		fresh, err := Analyze(shadow)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(an.TP) != math.Float64bits(fresh.TP) {
			t.Fatalf("%s: TP %v != fresh %v", name, an.TP, fresh.TP)
		}
		for i := range sinks {
			if !boundsBitsEqual(an.Bounds[i], fresh.Bounds[i]) {
				t.Fatalf("%s: Bounds[%d] diverged:\nreanalyzed %+v\nfresh      %+v", name, i, an.Bounds[i], fresh.Bounds[i])
			}
		}
	}
}

// Reanalyze(nil) uses the engine's drained moved set; every moved
// node's bounds must match a fresh analysis afterwards.
func TestReanalyzeMovedSinks(t *testing.T) {
	tree := topo.Star(5, 10, 100, 1e-14)
	an, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := moments.NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	shadow := tree.Clone()
	node := tree.MustIndex("b2_n5")
	if err := inc.SetR(node, 777); err != nil {
		t.Fatal(err)
	}
	if err := shadow.SetR(node, 777); err != nil {
		t.Fatal(err)
	}
	if err := an.Reanalyze(inc, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(shadow)
	if err != nil {
		t.Fatal(err)
	}
	// Every node whose fresh bounds differ from the original analysis
	// must have been refreshed (the moved hull may cover extra nodes —
	// refreshing those is harmless and also lands on the fresh bits).
	for i := 0; i < tree.N(); i++ {
		if !boundsBitsEqual(an.Bounds[i], fresh.Bounds[i]) {
			// Permitted only if the entry did not move at all AND differs
			// solely through the tree-level TP entering PRH fields — but a
			// ΔR moves TP, so here everything PRH-dependent moved; require
			// full agreement.
			t.Fatalf("Bounds[%d] stale after Reanalyze(nil):\ngot   %+v\nfresh %+v", i, an.Bounds[i], fresh.Bounds[i])
		}
	}
}

// In a two-root forest, an edit in one component changes the
// tree-level TP and therefore the PRH fields of the OTHER component's
// nodes; Reanalyze(nil) must not leave those stale.
func TestReanalyzeForestTPPropagation(t *testing.T) {
	b := rctree.NewBuilder()
	a1 := b.MustRoot("a1", 100, 1e-14)
	b.MustAttach(a1, "a2", 50, 2e-14)
	b1 := b.MustRoot("b1", 200, 3e-14)
	b.MustAttach(b1, "b2", 80, 1e-14)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := moments.NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	shadow := tree.Clone()
	node := tree.MustIndex("a2")
	if err := inc.SetC(node, 9e-13); err != nil {
		t.Fatal(err)
	}
	if err := shadow.SetC(node, 9e-13); err != nil {
		t.Fatal(err)
	}
	if err := an.Reanalyze(inc, nil); err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(shadow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if !boundsBitsEqual(an.Bounds[i], fresh.Bounds[i]) {
			t.Fatalf("Bounds[%s] stale after cross-component TP change:\ngot   %+v\nfresh %+v",
				tree.Name(i), an.Bounds[i], fresh.Bounds[i])
		}
	}
}

func TestReanalyzeErrors(t *testing.T) {
	tree := topo.Chain(10, 100, 1e-14)
	an, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Reanalyze(nil, nil); err == nil {
		t.Errorf("nil engine must be rejected")
	}
	inc, err := moments.NewIncremental(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Reanalyze(inc, []int{99}); err == nil {
		t.Errorf("out-of-range sink must be rejected")
	}
	other, err := moments.NewIncremental(topo.Chain(3, 1, 1e-15))
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Reanalyze(other, nil); err == nil {
		t.Errorf("node-count mismatch must be rejected")
	}
}
