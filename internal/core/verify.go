package core

import (
	"context"
	"fmt"

	"elmore/internal/health"
	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/telemetry"
)

// SimCheck is the outcome of verifying one node's closed-form delay
// window against a transient simulation.
type SimCheck struct {
	Node     string
	Lower    float64 // guaranteed lower bound on the 50% delay
	Upper    float64 // guaranteed upper bound (the Elmore delay for steps)
	Measured float64 // simulated 50% crossing
	Slack    float64 // min(Measured-Lower, Upper-Measured); negative = violation
	Within   bool    // Measured ∈ [Lower-tol, Upper+tol]
}

// VerifyOptions configures VerifySim.
type VerifyOptions struct {
	// Nodes lists the node indices to check; empty checks every node.
	Nodes []int
	// Input is the excitation (default: ideal step). Non-step inputs
	// check the Corollary 2 window measured from the input's own 50%
	// crossing.
	Input signal.Signal
	// DT is the simulation step; <= 0 picks Horizon/4096 like sim.Run.
	DT float64
	// Tol is the accepted numerical slack in seconds; <= 0 uses one
	// simulation step (crossings are interpolated between samples, so
	// the discretization error is below one step).
	Tol float64
}

// VerifySim checks the paper's guaranteed delay window against the MNA
// transient simulator: for every requested node the simulated 50%
// crossing must fall inside [Lower, Upper] up to the discretization
// tolerance. The tree is compiled, stamped, and factored once into a
// sim.Plan; one run with all requested probes serves every check. A
// node whose response never reaches 50% within the horizon is reported
// as an error (the horizon policy is the same 10×max-Elmore one
// sim.Run uses, which settles any RC tree well past 50%).
func (a *Analysis) VerifySim(ctx context.Context, opts VerifyOptions) ([]SimCheck, error) {
	_, sp := telemetry.Start(ctx, "core.verify_sim")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in := opts.Input
	if in == nil {
		in = signal.Step{}
	}
	nodes := opts.Nodes
	if len(nodes) == 0 {
		nodes = make([]int, a.Tree.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	dt := opts.DT
	if dt <= 0 {
		// Mirror sim.Run's default resolution without compiling twice:
		// the plan below reuses the cached compiled layout.
		dt = defaultVerifyDT(a, in)
	}
	plan, err := sim.NewPlan(a.Tree, sim.PlanOptions{DT: dt})
	if err != nil {
		return nil, err
	}
	res, err := plan.Run(in, sim.RunOptions{Probes: nodes})
	if err != nil {
		return nil, err
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = dt
	}
	_, isStep := in.(signal.Step)
	in50 := 0.0
	if !isStep {
		in50 = in.Cross(0.5)
	}
	var treeLabel string
	if health.Enabled() {
		treeLabel = health.TreeLabel(a.Tree.N(), a.Tree.Fingerprint())
	}
	sp.AttrInt("nodes", int64(len(nodes)))
	checks := make([]SimCheck, 0, len(nodes))
	for _, i := range nodes {
		x, err := res.Cross(i, 0.5)
		if err != nil {
			return nil, fmt.Errorf("core: verify: %w", err)
		}
		c := SimCheck{Node: a.Tree.Name(i)}
		if isStep {
			c.Lower, c.Upper = a.Bounds[i].Lower, a.Bounds[i].Elmore
			c.Measured = x
		} else {
			ib, err := a.ForInput(i, in)
			if err != nil {
				return nil, err
			}
			c.Lower, c.Upper = ib.Lower, ib.Upper
			c.Measured = x - in50
		}
		lo, hi := c.Measured-c.Lower, c.Upper-c.Measured
		c.Slack = lo
		if hi < lo {
			c.Slack = hi
		}
		c.Within = c.Slack >= -tol
		// Sim-vs-bound residual: how much of the guaranteed window the
		// Elmore bound leaves on the table, as a fraction of the bound.
		// Violations land in the (-inf, 0] bucket, so the histogram
		// doubles as a cheap violation-rate signal.
		if c.Upper > 0 {
			telemetry.Default().Histogram("health.residual_rel", residualBuckets).
				Observe((c.Upper - c.Measured) / c.Upper)
		}
		if !c.Within {
			if err := health.Violate(health.Event{
				Check:  "bounds.sim_window",
				Tree:   treeLabel,
				Node:   c.Node,
				Detail: "simulated 50% crossing escapes the guaranteed [lower, upper] window",
				Values: map[string]health.F{
					"lower": health.F(c.Lower), "measured": health.F(c.Measured),
					"upper": health.F(c.Upper), "slack": health.F(c.Slack),
				},
			}); err != nil {
				return nil, err
			}
		}
		checks = append(checks, c)
	}
	telemetry.C("core.sim_verifications").Inc()
	return checks, nil
}

// residualBuckets bound the relative sim-vs-bound residual
// (upper - measured) / upper in [0, 1]; the underflow bucket collects
// violations.
var residualBuckets = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1}

// defaultVerifyDT mirrors sim.Run's default step: the estimated
// settling horizon divided by 4096.
func defaultVerifyDT(a *Analysis, in signal.Signal) float64 {
	maxTD := 0.0
	for i := range a.Bounds {
		if td := a.Bounds[i].Elmore; td > maxTD {
			maxTD = td
		}
	}
	return (10*maxTD + 2*in.RiseTime()) / 4096
}
