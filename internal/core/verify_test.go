package core

import (
	"context"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

// The paper's guarantee, checked end to end: on every tree the
// simulated 50% delay must fall inside [max(mu-sigma,0), T_D] at every
// node, for the step and for a monotone saturated-ramp input.
func TestVerifySimWindows(t *testing.T) {
	trees := map[string]*rctree.Tree{
		"fig1":   topo.Fig1Tree(),
		"line25": topo.Line25Tree(),
		"rand":   topo.Random(3, topo.RandomOptions{N: 150}),
	}
	inputs := []signal.Signal{nil, signal.SaturatedRamp{Tr: 1e-9}}
	for name, tree := range trees {
		for _, in := range inputs {
			a, err := Analyze(tree)
			if err != nil {
				t.Fatal(err)
			}
			checks, err := a.VerifySim(context.Background(), VerifyOptions{Input: in})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(checks) != tree.N() {
				t.Fatalf("%s: %d checks, want %d", name, len(checks), tree.N())
			}
			for _, c := range checks {
				if !c.Within {
					t.Errorf("%s input %v node %s: measured %v outside [%v, %v] (slack %v)",
						name, in, c.Node, c.Measured, c.Lower, c.Upper, c.Slack)
				}
			}
		}
	}
}

// A sparse probe set verifies only the requested nodes.
func TestVerifySimSubset(t *testing.T) {
	tree := topo.Fig1Tree()
	a, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	i, _ := tree.Index("C5")
	checks, err := a.VerifySim(context.Background(), VerifyOptions{Nodes: []int{i}})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || checks[0].Node != "C5" {
		t.Fatalf("checks = %+v, want one entry for C5", checks)
	}
	if !checks[0].Within {
		t.Fatalf("C5 outside window: %+v", checks[0])
	}
}
