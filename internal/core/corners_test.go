package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/topo"
)

func TestCornerOptionsValidation(t *testing.T) {
	tree := topo.Fig1Tree()
	for _, o := range []CornerOptions{{RRel: -0.1}, {RRel: 1}, {CRel: -0.1}, {CRel: 1.5}} {
		if _, err := CornerIntervals(tree, o); err == nil {
			t.Errorf("options %+v should fail", o)
		}
	}
	if _, err := CornerIntervals(tree, CornerOptions{}); err != nil {
		t.Errorf("zero-variation box should be fine: %v", err)
	}
}

func TestCornerZeroVariationMatchesNominal(t *testing.T) {
	tree := topo.Fig1Tree()
	iv, err := CornerIntervals(tree, CornerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range iv {
		if !approx(iv[i].Upper, an.Bounds[i].Elmore, 1e-12) {
			t.Errorf("%s: upper %v != nominal Elmore %v", iv[i].Node, iv[i].Upper, an.Bounds[i].Elmore)
		}
		if !approx(iv[i].Lower, an.Bounds[i].Lower, 1e-12) {
			t.Errorf("%s: lower %v != nominal lower %v", iv[i].Node, iv[i].Lower, an.Bounds[i].Lower)
		}
	}
}

// Monte-Carlo validation: the guaranteed interval contains the exact
// delay at random parameter points inside the variation box (including
// the extreme corners).
func TestCornerIntervalsContainRandomPoints(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 12)
		opts := CornerOptions{RRel: 0.15, CRel: 0.2}
		iv, err := CornerIntervals(tree, opts)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for trial := 0; trial < 4; trial++ {
			perturbed := tree.Clone()
			for i := 0; i < perturbed.N(); i++ {
				var fr, fc float64
				if trial == 0 {
					fr, fc = 1+opts.RRel, 1+opts.CRel // slow corner
				} else if trial == 1 {
					fr, fc = 1-opts.RRel, 1-opts.CRel // fast corner
				} else {
					fr = 1 + opts.RRel*(2*rng.Float64()-1)
					fc = 1 + opts.CRel*(2*rng.Float64()-1)
				}
				if err := perturbed.SetR(i, tree.R(i)*fr); err != nil {
					return false
				}
				if err := perturbed.SetC(i, tree.C(i)*fc); err != nil {
					return false
				}
			}
			sys, err := exact.NewSystem(perturbed)
			if err != nil {
				return false
			}
			for i := 0; i < perturbed.N(); i++ {
				d, err := sys.Delay50Step(i)
				if err != nil {
					return false
				}
				if d > iv[i].Upper*(1+1e-9) || d < iv[i].Lower*(1-1e-9)-1e-18 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The mu2 monotonicity the Lower derivation relies on: increasing any
// single resistance or capacitance never decreases mu2 at any node.
func TestMu2ElementwiseMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 15)
		ms, err := moments.Compute(tree, 2)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0xabcd))
		elem := rng.Intn(tree.N())
		bumped := tree.Clone()
		if rng.Intn(2) == 0 {
			if err := bumped.SetR(elem, tree.R(elem)*1.25); err != nil {
				return false
			}
		} else {
			if err := bumped.SetC(elem, tree.C(elem)*1.25+1e-18); err != nil {
				return false
			}
		}
		ms2, err := moments.Compute(bumped, 2)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			if ms2.Mu2(i) < ms.Mu2(i)*(1-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCornerIntervalWidensWithVariation(t *testing.T) {
	tree := topo.Line25Tree()
	narrow, err := CornerIntervals(tree, CornerOptions{RRel: 0.05, CRel: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := CornerIntervals(tree, CornerOptions{RRel: 0.25, CRel: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := range narrow {
		if wide[i].Upper < narrow[i].Upper || wide[i].Lower > narrow[i].Lower {
			t.Fatalf("%s: wider box should widen the interval", narrow[i].Node)
		}
	}
}
