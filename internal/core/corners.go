package core

import (
	"fmt"
	"math"

	"elmore/internal/moments"
	"elmore/internal/rctree"
)

// CornerOptions describes a process-variation box: every resistance may
// vary within [1-RRel, 1+RRel] of nominal, every capacitance within
// [1-CRel, 1+CRel], independently per element.
type CornerOptions struct {
	RRel, CRel float64 // relative half-widths, in [0, 1)
}

func (o CornerOptions) validate() error {
	if o.RRel < 0 || o.RRel >= 1 || math.IsNaN(o.RRel) {
		return fmt.Errorf("core: RRel must be in [0, 1), got %v", o.RRel)
	}
	if o.CRel < 0 || o.CRel >= 1 || math.IsNaN(o.CRel) {
		return fmt.Errorf("core: CRel must be in [0, 1), got %v", o.CRel)
	}
	return nil
}

// CornerInterval is a guaranteed 50% step-delay interval at one node
// across the entire variation box.
type CornerInterval struct {
	Node  string
	Lower float64 // >= this at every corner of the box
	Upper float64 // <= this at every corner of the box
}

// CornerIntervals computes guaranteed delay intervals under elementwise
// R/C variation:
//
//   - Upper = T_D evaluated at the slow corner (all R and C maximal).
//     Rigorous: the Elmore sum T_D = sum R_ki C_k is monotone in every
//     element, and at any parameter point the actual delay <= T_D there
//     (the paper's Theorem), hence <= T_D(slow corner).
//   - Lower = max(mu(fast corner) - sigma(slow corner), 0). Rigorous
//     given Corollary 1 at the actual parameter point θ:
//     delay(θ) >= mu(θ) - sigma(θ) >= mu(fast) - sigma(slow), using the
//     monotonicity of mu = T_D (exact) and of mu2 (sum of positive
//     monomials in the R's and C's, see the Appendix-B expansion — a
//     property also enforced by the package tests).
func CornerIntervals(t *rctree.Tree, opts CornerOptions) ([]CornerInterval, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	slow, err := t.Scaled(1+opts.RRel, 1+opts.CRel)
	if err != nil {
		return nil, err
	}
	fast, err := t.Scaled(1-opts.RRel, 1-opts.CRel)
	if err != nil {
		return nil, err
	}
	msSlow, err := moments.Compute(slow, 2)
	if err != nil {
		return nil, err
	}
	tdFast := moments.ElmoreDelays(fast)
	out := make([]CornerInterval, t.N())
	for i := 0; i < t.N(); i++ {
		lower := tdFast[i] - msSlow.Sigma(i)
		if lower < 0 {
			lower = 0
		}
		out[i] = CornerInterval{
			Node:  t.Name(i),
			Lower: lower,
			Upper: msSlow.Elmore(i),
		}
	}
	return out, nil
}
