package core

import (
	"fmt"
	"math"

	"elmore/internal/health"
	"elmore/internal/moments"
	"elmore/internal/telemetry"
)

// Reanalyze refreshes the per-node bounds of this analysis from an
// incremental moment engine after what-if perturbations, recomputing
// only the requested sinks instead of re-running the full Analyze
// pipeline. It is the read side of the optimizer inner loop: perturb
// the engine, Reanalyze the sinks the objective reads, decide, Revert
// or Commit.
//
// sinks lists the tree node indices to refresh; nil means "every node
// whose bounds moved since the last Reanalyze": the engine's drained
// moved set (conservative, never missing a moved node), widened to all
// nodes when the tree-level T_P changed — T_P enters the PRH fields of
// every entry, including components whose moments are untouched. The
// tree-level T_P is always refreshed. Each refreshed Bounds entry is built with
// exactly the Analyze formulas from the engine's state, and the engine
// serves values bit-identical to a full recompute, so a refreshed entry
// is bit-identical to the entry a fresh Analyze of a tree carrying the
// engine's values would produce.
//
// What Reanalyze does NOT do: entries outside the sink set keep their
// old bounds (in particular, if a perturbation changed T_P, the
// PRHTmin/PRHTmax fields of un-refreshed entries still reflect the old
// T_P — pass the sinks you read, or nil to get the moved hull), and the
// Moments()/PRH() accessors keep describing the original full analysis.
// Refreshed entries pass through the same health checks as Analyze.
//
// The engine must be bound to this analysis' tree (same node set); the
// association is sanity-checked by node count.
func (a *Analysis) Reanalyze(inc *moments.Incremental, sinks []int) error {
	if inc == nil {
		return fmt.Errorf("core: Reanalyze needs a non-nil incremental engine")
	}
	if it := inc.Tree(); it.N() != a.Tree.N() {
		return fmt.Errorf("core: engine tree has %d nodes, analysis tree has %d", it.N(), a.Tree.N())
	}
	nilSinks := sinks == nil
	if nilSinks {
		sinks = inc.DrainMoved(nil)
	}
	oldTP := a.TP
	a.TP = inc.TP()
	if nilSinks && math.Float64bits(oldTP) != math.Float64bits(a.TP) && len(sinks) < len(a.Bounds) {
		// T_P is tree-level: when it moves, the PRH fields of every
		// node move with it, even in components whose moments are
		// untouched (multi-root forests). Widen the nil-sink mode to
		// every node so no entry is left stale.
		sinks = sinks[:0]
		for i := range a.Bounds {
			sinks = append(sinks, i)
		}
	}
	var treeLabel string
	if health.Enabled() {
		treeLabel = health.TreeLabel(a.Tree.N(), a.Tree.Fingerprint())
	}
	for _, i := range sinks {
		if i < 0 || i >= len(a.Bounds) {
			return fmt.Errorf("core: Reanalyze sink index %d out of range [0,%d)", i, len(a.Bounds))
		}
		td := inc.Elmore(i)
		sigma := inc.Sigma(i)
		b := Bounds{
			Node:       a.Tree.Name(i),
			Elmore:     td,
			Sigma:      sigma,
			Mu2:        inc.Mu2(i),
			Mu3:        inc.Mu3(i),
			Skewness:   inc.Skewness(i),
			Lower:      math.Max(td-sigma, 0),
			SinglePole: math.Ln2 * td,
			RiseTime:   RiseTimeScale * sigma,
		}
		b.PRHTmin = PRHTmin(a.TP, td, inc.TR(i), 0.5)
		b.PRHTmax = PRHTmax(a.TP, td, inc.TR(i), 0.5)
		a.Bounds[i] = b
		if err := checkBounds(treeLabel, &b); err != nil {
			return err
		}
	}
	telemetry.C("core.reanalyses").Inc()
	telemetry.C("core.nodes_reanalyzed").Add(int64(len(sinks)))
	return nil
}
