package core

import (
	"errors"
	"strings"
	"testing"

	"elmore/internal/health"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

func installHealth(t *testing.T, strict bool) (*health.Monitor, *strings.Builder, *telemetry.Registry) {
	t.Helper()
	var sb strings.Builder
	m := health.New(&sb, strict)
	prevM := health.SetDefault(m)
	reg := telemetry.NewRegistry()
	prevR := telemetry.SetDefault(reg)
	t.Cleanup(func() {
		health.SetDefault(prevM)
		telemetry.SetDefault(prevR)
	})
	return m, &sb, reg
}

// overflowTree passes the rctree element validation (values are finite)
// but overflows the moment recurrences: m1 = -(sum RC) saturates to
// -Inf, and everything derived from it goes NaN. This is the ISSUE's
// "seeded invariant violation" — the realistic way poison enters.
func overflowTree(t *testing.T) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 1e308, 1e308)
	b.MustAttach(n1, "n2", 1e308, 1e308)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestAnalyzeSeededNaNFailSoft(t *testing.T) {
	m, sb, reg := installHealth(t, false)
	a, err := Analyze(overflowTree(t))
	if err != nil {
		t.Fatalf("non-strict monitor must not fail Analyze: %v", err)
	}
	if a == nil {
		t.Fatal("fail-soft Analyze must still return the analysis")
	}
	if m.Violations() == 0 {
		t.Fatal("seeded NaN produced no health violations")
	}
	// The poison is caught at the first layer that sees it: the moment
	// recurrence. Whatever the layer, the aggregate counters and the
	// NDJSON stream must both see it.
	if got := reg.Counter("health.violations").Value(); got != m.Violations() {
		t.Errorf("health.violations counter = %d, monitor = %d", got, m.Violations())
	}
	if !strings.Contains(sb.String(), `"severity":"violation"`) {
		t.Errorf("no violation event emitted: %s", sb.String())
	}
	if !strings.Contains(sb.String(), `"tree":"n2-`) {
		t.Errorf("event lacks tree label: %s", sb.String())
	}
}

func TestAnalyzeSeededNaNStrictFails(t *testing.T) {
	installHealth(t, true)
	_, err := Analyze(overflowTree(t))
	var v *health.Violation
	if !errors.As(err, &v) {
		t.Fatalf("strict monitor must fail Analyze with *health.Violation, got %v", err)
	}
}

func TestAnalyzeHealthyTreeCleanUnderStrict(t *testing.T) {
	m, _, _ := installHealth(t, true)
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12)
	n2 := b.MustAttach(n1, "n2", 200, 2e-12)
	b.MustAttach(n2, "n3", 150, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(tree); err != nil {
		t.Fatalf("healthy tree failed under strict monitor: %v", err)
	}
	if m.Violations() != 0 {
		t.Errorf("healthy tree logged %d violations", m.Violations())
	}
}

// checkBounds is the per-node invariant gate; exercise its branches
// directly so each check name is pinned.
func TestCheckBoundsBranches(t *testing.T) {
	cases := []struct {
		name  string
		b     Bounds
		check string
	}{
		{"nan elmore", Bounds{Elmore: nan(), Mu2: 1, Skewness: 1}, "core.nonfinite"},
		{"negative mu2", Bounds{Elmore: 1, Mu2: -1, Skewness: 1}, "moments.mu2_negative"},
		{"negative skew", Bounds{Elmore: 1, Mu2: 1, Skewness: -1}, "moments.skew_negative"},
		{"lower above elmore", Bounds{Elmore: 1, Mu2: 0.1, Skewness: 1, Lower: 2}, "bounds.order"},
		{"prh inverted", Bounds{Elmore: 1, Mu2: 0.1, Skewness: 1, Lower: 0.5, PRHTmin: 2, PRHTmax: 1}, "bounds.prh_order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			installHealth(t, true)
			err := checkBounds("test-tree", &tc.b)
			var v *health.Violation
			if !errors.As(err, &v) {
				t.Fatalf("want *health.Violation, got %v", err)
			}
			if v.Check != tc.check {
				t.Errorf("check = %q, want %q", v.Check, tc.check)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
