// Package core implements the paper's primary contribution: delay
// bounds for RC trees built from the first three impulse-response
// moments.
//
//   - Theorem: the Elmore delay T_D = m1 is an absolute upper bound on
//     the 50% step-response delay (mode <= median <= mean).
//   - Corollary 1: max(mu - sigma, 0) is a lower bound.
//   - Corollary 2: the upper bound extends to any monotone input with a
//     unimodal derivative; the bound on the *mean* shifts by the mean
//     of the input derivative.
//   - Corollary 3: for symmetric-derivative inputs the actual delay
//     approaches T_D as the rise time grows.
//
// The package also provides the classical comparison metrics: the
// single-pole ln(2)·T_D estimate (paper eq. 14) and the full
// Penfield-Rubinstein-Horowitz step-response waveform bounds
// (paper eq. 15-16), plus the sigma-based output transition-time
// estimate of Section III-B.
package core

import (
	"context"
	"fmt"
	"math"

	"elmore/internal/health"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
)

// Bounds collects every closed-form delay metric the paper derives or
// compares against, for one node, under step excitation. All times in
// seconds.
//
// Zero-variance contract: at a node with mu2 == 0 (degenerate trees,
// e.g. every capacitance zeroed after construction) no field is NaN —
// Skewness is 0, Sigma and RiseTime are 0, Lower clamps to
// max(mu-sigma, 0) = mu, and the PRH bounds collapse to the
// instantaneous response.
type Bounds struct {
	Node string // node name

	// Moment statistics of the impulse response.
	Elmore   float64 // T_D = mean of h(t): the upper bound
	Sigma    float64 // sqrt(mu2)
	Mu2      float64
	Mu3      float64
	Skewness float64 // gamma = mu3 / mu2^(3/2) >= 0 (Lemma 2)

	// Delay bounds and estimates.
	Lower      float64 // max(mu - sigma, 0): Corollary 1 lower bound
	SinglePole float64 // ln(2) * T_D: dominant-pole estimate (eq. 14)
	PRHTmin    float64 // Penfield-Rubinstein lower bound at 50%
	PRHTmax    float64 // Penfield-Rubinstein upper bound at 50%

	// RiseTime is the paper's Section III-B transition-time estimate:
	// Elmore's "radius of gyration" sigma, scaled per RiseTimeScale.
	RiseTime float64
}

// RiseTimeScale converts sigma into a 10-90% rise-time estimate. For
// the single-pole response the exact factor is ln(9) ≈ 2.2; the paper
// states T_R ∝ sigma and leaves the constant open, so we use ln(9).
const RiseTimeScale = 2.1972245773362196 // ln 9

// Analysis carries per-node bounds plus the tree-level PRH terms.
type Analysis struct {
	Tree   *rctree.Tree
	TP     float64 // sum_k R_kk C_k (PRH)
	Bounds []Bounds
	prh    *moments.PRHTerms
	ms     *moments.Set
}

// Analyze computes all step-input bounds for every node of the tree.
func Analyze(t *rctree.Tree) (*Analysis, error) {
	return AnalyzeContext(context.Background(), t)
}

// AnalyzeContext is Analyze under a context: when the context carries a
// telemetry tracer the analysis is recorded as a span, and the node
// count flows into the metrics registry. A canceled or expired context
// aborts before any computation.
func AnalyzeContext(ctx context.Context, t *rctree.Tree) (*Analysis, error) {
	return analyze(ctx, t, nil)
}

// AnalyzeWithMoments is AnalyzeContext with a precomputed moment set of
// order >= 3 — the seam through which batch engines share one
// moments.Set across repeated identical nets. ms may have been computed
// for a different *Tree value as long as it describes the same circuit
// (equal rctree fingerprints); only node indices are read from it.
func AnalyzeWithMoments(ctx context.Context, t *rctree.Tree, ms *moments.Set) (*Analysis, error) {
	if ms == nil {
		return nil, fmt.Errorf("core: AnalyzeWithMoments needs a non-nil moment set")
	}
	if ms.Order() < 3 {
		return nil, fmt.Errorf("core: bounds need moments of order >= 3, got %d", ms.Order())
	}
	if ms.Tree().N() != t.N() {
		return nil, fmt.Errorf("core: moment set covers %d nodes, tree has %d", ms.Tree().N(), t.N())
	}
	return analyze(ctx, t, ms)
}

func analyze(ctx context.Context, t *rctree.Tree, ms *moments.Set) (*Analysis, error) {
	_, sp := telemetry.Start(ctx, "core.analyze")
	sp.AttrInt("nodes", int64(t.N()))
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A batch worker's context carries its grow-only scratch arena: the
	// transient sweep buffers of the moment kernels come from it, so a
	// worker evaluating thousands of nets reuses one buffer instead of
	// allocating 2n floats twice per job.
	ar := moments.ArenaFrom(ctx)
	if ms == nil {
		var err error
		ms, err = moments.ComputeWith(t, 3, ar)
		if err != nil {
			return nil, err
		}
	}
	prh := moments.ComputePRHWith(t, ar)
	a := &Analysis{
		Tree:   t,
		TP:     prh.TP,
		Bounds: make([]Bounds, t.N()),
		prh:    prh,
		ms:     ms,
	}
	var treeLabel string
	if health.Enabled() {
		treeLabel = health.TreeLabel(t.N(), t.Fingerprint())
	}
	for i := 0; i < t.N(); i++ {
		td := ms.Elmore(i)
		sigma := ms.Sigma(i)
		b := Bounds{
			Node:       t.Name(i),
			Elmore:     td,
			Sigma:      sigma,
			Mu2:        ms.Mu2(i),
			Mu3:        ms.Mu3(i),
			Skewness:   ms.Skewness(i),
			Lower:      math.Max(td-sigma, 0),
			SinglePole: math.Ln2 * td,
			RiseTime:   RiseTimeScale * sigma,
		}
		b.PRHTmin = PRHTmin(prh.TP, td, prh.TR(i), 0.5)
		b.PRHTmax = PRHTmax(prh.TP, td, prh.TR(i), 0.5)
		a.Bounds[i] = b
		if err := checkBounds(treeLabel, &b); err != nil {
			return nil, err
		}
	}
	telemetry.C("core.analyses").Inc()
	telemetry.C("core.nodes_analyzed").Add(int64(t.N()))
	return a, nil
}

// checkBounds runs the paper's invariants on one node's freshly
// computed bounds, reporting health violations fail-soft (hard only
// under a strict monitor). The passing path is a handful of float
// comparisons and no allocation, so the checks stay in the hot loop
// permanently. Lemma 2 guarantees mu2 >= 0 and gamma >= 0 exactly;
// floating-point evaluation leaves roundoff-sized negatives, so the
// checks carry small tolerances (relative td^2 scale for mu2, absolute
// for the dimensionless skewness).
func checkBounds(tree string, b *Bounds) error {
	if err := health.CheckFinite("core.nonfinite", tree, b.Node, "elmore", b.Elmore); err != nil {
		return err
	}
	if err := health.CheckFinite("core.nonfinite", tree, b.Node, "mu2", b.Mu2); err != nil {
		return err
	}
	if !(b.Mu2 >= -1e-9*b.Elmore*b.Elmore) { // negated form catches NaN
		if err := health.Violate(health.Event{
			Check:  "moments.mu2_negative",
			Tree:   tree,
			Node:   b.Node,
			Detail: "variance negative beyond roundoff (Lemma 2 requires mu2 >= 0)",
			Values: map[string]health.F{"mu2": health.F(b.Mu2), "elmore": health.F(b.Elmore)},
		}); err != nil {
			return err
		}
	}
	if !(b.Skewness >= -1e-6) {
		if err := health.Violate(health.Event{
			Check:  "moments.skew_negative",
			Tree:   tree,
			Node:   b.Node,
			Detail: "skewness negative beyond roundoff (Lemma 2 requires gamma >= 0)",
			Values: map[string]health.F{"skewness": health.F(b.Skewness)},
		}); err != nil {
			return err
		}
	}
	tol := 1e-12 * math.Abs(b.Elmore)
	if !(b.Lower <= b.Elmore+tol) {
		if err := health.Violate(health.Event{
			Check:  "bounds.order",
			Tree:   tree,
			Node:   b.Node,
			Detail: "lower bound exceeds the Elmore upper bound",
			Values: map[string]health.F{"lower": health.F(b.Lower), "elmore": health.F(b.Elmore)},
		}); err != nil {
			return err
		}
	}
	if !(b.PRHTmin <= b.PRHTmax+tol) {
		if err := health.Violate(health.Event{
			Check:  "bounds.prh_order",
			Tree:   tree,
			Node:   b.Node,
			Detail: "PRH lower waveform bound exceeds the upper bound at v=0.5",
			Values: map[string]health.F{"prh_tmin": health.F(b.PRHTmin), "prh_tmax": health.F(b.PRHTmax)},
		}); err != nil {
			return err
		}
	}
	return nil
}

// At returns the bounds for a named node.
func (a *Analysis) At(name string) (Bounds, error) {
	i, ok := a.Tree.Index(name)
	if !ok {
		return Bounds{}, fmt.Errorf("core: no node named %q", name)
	}
	return a.Bounds[i], nil
}

// Moments exposes the underlying moment set (order 3).
func (a *Analysis) Moments() *moments.Set { return a.ms }

// PRH exposes the underlying Penfield-Rubinstein terms.
func (a *Analysis) PRH() *moments.PRHTerms { return a.prh }

// PRHTmin evaluates the Penfield-Rubinstein-Horowitz lower waveform
// bound t_min(v) (paper eq. 15) for threshold v in [0, 1), given
// T_P, T_D(i) and T_R(i). A degenerate tree with T_P = 0 (no
// capacitance anywhere, hence a zero-variance impulse response) has an
// instantaneous step response, so every threshold is crossed at t = 0
// rather than the 0/0 = NaN the raw formula would produce.
func PRHTmin(tp, td, tr, v float64) float64 {
	switch {
	case v < 0 || v >= 1:
		return math.NaN()
	case tp <= 0:
		return 0
	case v <= 1-td/tp:
		return 0
	case v <= 1-tr/tp:
		return td - tp*(1-v)
	default:
		return td - tr + tr*math.Log(tr/(tp*(1-v)))
	}
}

// PRHTmax evaluates the Penfield-Rubinstein-Horowitz upper waveform
// bound t_max(v) (paper eq. 15; Rubinstein-Penfield-Horowitz 1983).
//
// Note: the second branch is T_P - T_R + T_P ln[...]. (Some reprints
// typeset it as "T_D - T_R + ...", which is discontinuous at the branch
// point v = 1 - T_D/T_P and falls below the exact response; the form
// here is continuous there and reduces to the exact RC ln(1/(1-v)) for
// a single-pole circuit, where T_P = T_D = T_R.)
// Like PRHTmin it defines the capacitance-free T_P = 0 case as an
// instantaneous response: every threshold is crossed at t = 0.
func PRHTmax(tp, td, tr, v float64) float64 {
	switch {
	case v < 0 || v >= 1:
		return math.NaN()
	case tp <= 0:
		return 0
	case v <= 1-td/tp:
		return td/(1-v) - tr
	default:
		return tp - tr + tp*math.Log(td/(tp*(1-v)))
	}
}

// InputBounds are the Corollary 2/3 bounds on the 50% delay for a
// general (non-step) input, measured from the input's own 50% crossing.
type InputBounds struct {
	// Upper is the Corollary 2 bound: mean(v_out') - t_in50 =
	// T_D + mean(v_in') - t_in50. For any symmetric-derivative input
	// this equals T_D exactly.
	Upper float64
	// Lower is the Corollary 1 bound applied to the output derivative:
	// max(mean_out - sigma_out, 0) - t_in50, clamped at -t_in50 (the
	// output crossing itself cannot be negative).
	Lower float64
	// OutputSigma is the standard deviation of the output derivative:
	// sqrt(mu2_h + mu2_in) — also the Section III-B transition-time
	// scale of the output edge.
	OutputSigma float64
	// OutputSkew is the skewness of the output derivative; it drives
	// Corollary 3 (delay -> T_D as skew -> 0).
	OutputSkew float64
}

// ForInput computes the generalized-input delay bounds at node i for a
// monotone input signal. It returns an error if the input's derivative
// is not unimodal — the hypothesis of Corollary 2 — since the Elmore
// upper bound is only proven under that condition.
func (a *Analysis) ForInput(i int, sig signal.Signal) (InputBounds, error) {
	if err := signal.Validate(sig); err != nil {
		return InputBounds{}, err
	}
	if !sig.UnimodalDerivative() {
		return InputBounds{}, fmt.Errorf("core: input %v has a non-unimodal derivative; Corollary 2 does not apply", sig)
	}
	b := a.Bounds[i]
	inMean := sig.DerivMean()
	in50 := sig.Cross(0.5)
	outMean := b.Elmore + inMean
	outMu2 := b.Mu2 + sig.DerivMu2()
	outMu3 := b.Mu3 + sig.DerivMu3()
	outSigma := 0.0
	if outMu2 > 0 {
		outSigma = math.Sqrt(outMu2)
	}
	skew := 0.0
	if outMu2 > 0 {
		skew = outMu3 / math.Pow(outMu2, 1.5)
	}
	lower := outMean - outSigma
	if lower < 0 {
		lower = 0
	}
	return InputBounds{
		Upper:       outMean - in50,
		Lower:       lower - in50,
		OutputSigma: outSigma,
		OutputSkew:  skew,
	}, nil
}

// WindowAt returns a guaranteed [lo, hi] window for the time the step
// response at node i reaches threshold v in (0, 1): the
// Penfield-Rubinstein waveform bracket, tightened at v = 0.5 by the
// paper's moment bounds (the mu-sigma lower bound and the Elmore upper
// bound), which often beat the PRH bracket on one side each.
func (a *Analysis) WindowAt(i int, v float64) (lo, hi float64, err error) {
	if v <= 0 || v >= 1 {
		return 0, 0, fmt.Errorf("core: threshold must be in (0,1), got %v", v)
	}
	b := a.Bounds[i]
	tr := a.prh.TR(i)
	lo = PRHTmin(a.TP, b.Elmore, tr, v)
	hi = PRHTmax(a.TP, b.Elmore, tr, v)
	if v == 0.5 {
		lo = math.Max(lo, b.Lower)
		hi = math.Min(hi, b.Elmore)
	}
	return lo, hi, nil
}
