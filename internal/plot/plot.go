// Package plot renders (x, y) series as plain-text charts, so the
// reproduced paper figures are viewable directly in a terminal without
// any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls the canvas.
type Options struct {
	Width  int    // columns of the plot area (default 72)
	Height int    // rows of the plot area (default 20)
	Title  string // printed above the canvas
	XLabel string
	YLabel string
	LogX   bool // logarithmic x axis
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series onto a character canvas with axes, ranges
// and a legend. Series beyond the marker set reuse markers cyclically.
func Render(series []Series, opts Options) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w := opts.Width
	if w <= 0 {
		w = 72
	}
	h := opts.Height
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q length mismatch", s.Name)
		}
		for k := range s.X {
			x, y := s.X[k], s.Y[k]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if opts.LogX && x <= 0 {
				continue
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if !(xmax > xmin) && !(xmax == xmin) {
		return "", fmt.Errorf("plot: no finite data")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	xpos := func(x float64) int {
		var f float64
		if opts.LogX {
			f = (math.Log(x) - math.Log(xmin)) / (math.Log(xmax) - math.Log(xmin))
		} else {
			f = (x - xmin) / (xmax - xmin)
		}
		col := int(math.Round(f * float64(w-1)))
		if col < 0 {
			col = 0
		}
		if col >= w {
			col = w - 1
		}
		return col
	}
	ypos := func(y float64) int {
		f := (y - ymin) / (ymax - ymin)
		row := int(math.Round(f * float64(h-1)))
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		return h - 1 - row // row 0 is the top of the canvas
	}

	canvas := make([][]byte, h)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for k := range s.X {
			x, y := s.X[k], s.Y[k]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if opts.LogX && x <= 0 {
				continue
			}
			canvas[ypos(y)][xpos(x)] = mark
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&sb, "%s\n", opts.YLabel)
	}
	for r, row := range canvas {
		edge := "|"
		if r == 0 {
			edge = fmt.Sprintf("%.3g |", ymax)
		} else if r == h-1 {
			edge = fmt.Sprintf("%.3g |", ymin)
		}
		fmt.Fprintf(&sb, "%12s%s\n", edge, string(row))
	}
	fmt.Fprintf(&sb, "%12s%s\n", "+", strings.Repeat("-", w))
	axis := fmt.Sprintf("%.3g", xmin)
	pad := w - len(axis) - len(fmt.Sprintf("%.3g", xmax))
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&sb, "%12s%s%s%.3g", "", axis, strings.Repeat(" ", pad), xmax)
	if opts.XLabel != "" {
		fmt.Fprintf(&sb, "  (%s)", opts.XLabel)
	}
	sb.WriteByte('\n')
	for si, s := range series {
		fmt.Fprintf(&sb, "%12s%c = %s\n", "", markers[si%len(markers)], s.Name)
	}
	return sb.String(), nil
}
