package plot

import (
	"math"
	"strings"
	"testing"
)

func line(n int, f func(float64) float64) Series {
	s := Series{Name: "f"}
	for k := 0; k <= n; k++ {
		x := float64(k) / float64(n)
		s.X = append(s.X, x)
		s.Y = append(s.Y, f(x))
	}
	return s
}

func TestRenderBasic(t *testing.T) {
	s := line(100, func(x float64) float64 { return x * x })
	out, err := Render([]Series{s}, Options{Title: "parabola", Width: 40, Height: 10, XLabel: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parabola") || !strings.Contains(out, "* = f") {
		t.Errorf("missing title or legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 10 canvas rows + axis + ticks + legend
	if len(lines) < 14 {
		t.Errorf("too few lines: %d", len(lines))
	}
	if !strings.Contains(out, "(x)") {
		t.Errorf("missing x label")
	}
	// A parabola's marks appear in both the bottom-left and top-right.
	if !strings.Contains(lines[1], "*") && !strings.Contains(lines[2], "*") {
		t.Errorf("top rows empty:\n%s", out)
	}
}

func TestRenderMultiSeriesMarkers(t *testing.T) {
	a := line(50, func(x float64) float64 { return x })
	a.Name = "up"
	b := line(50, func(x float64) float64 { return 1 - x })
	b.Name = "down"
	out, err := Render([]Series{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* = up") || !strings.Contains(out, "+ = down") {
		t.Errorf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("second marker missing")
	}
}

func TestRenderLogX(t *testing.T) {
	s := Series{Name: "decade"}
	for _, x := range []float64{1, 10, 100, 1000} {
		s.X = append(s.X, x)
		s.Y = append(s.Y, math.Log10(x))
	}
	out, err := Render([]Series{s}, Options{LogX: true, Width: 31, Height: 7})
	if err != nil {
		t.Fatal(err)
	}
	// In log-x the four points are evenly spaced: marks at columns 0,
	// 10, 20, 30 of some rows. Count total marks = 4.
	if got := strings.Count(out, "*"); got != 4+1 { // 4 points + legend
		t.Errorf("marks = %d:\n%s", got, out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(nil, Options{}); err == nil {
		t.Errorf("no series should fail")
	}
	bad := Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}
	if _, err := Render([]Series{bad}, Options{}); err == nil {
		t.Errorf("length mismatch should fail")
	}
	nan := Series{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}
	if _, err := Render([]Series{nan}, Options{}); err == nil {
		t.Errorf("all-NaN should fail")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}
	out, err := Render([]Series{s}, Options{Width: 20, Height: 5})
	if err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("no marks:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	s := Series{Name: "dot", X: []float64{3}, Y: []float64{7}}
	if _, err := Render([]Series{s}, Options{}); err != nil {
		t.Fatalf("single point should render: %v", err)
	}
}

func TestLogXSkipsNonPositive(t *testing.T) {
	s := Series{Name: "mixed", X: []float64{-1, 0, 1, 10}, Y: []float64{1, 2, 3, 4}}
	out, err := Render([]Series{s}, Options{LogX: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "*"); got != 2+1 { // two positive-x points + legend
		t.Errorf("marks = %d, want 3:\n%s", got, out)
	}
}
