package waveform

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func mustNew(t *testing.T, ts, vs []float64) *Waveform {
	t.Helper()
	w, err := New(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		t, v []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{0}},
		{"too short", []float64{0}, []float64{0}},
		{"non-increasing", []float64{0, 0}, []float64{0, 1}},
		{"NaN time", []float64{0, math.NaN()}, []float64{0, 1}},
		{"Inf value", []float64{0, 1}, []float64{0, math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.t, tc.v); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestAtInterpolation(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 3}, []float64{0, 10, 30})
	cases := map[float64]float64{-1: 0, 0: 0, 0.5: 5, 1: 10, 2: 20, 3: 30, 4: 30}
	for x, want := range cases {
		if got := w.At(x); !approx(got, want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCross(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 2}, []float64{0, 0.4, 1})
	x, ok := w.Cross(0.2)
	if !ok || !approx(x, 0.5, 1e-12) {
		t.Errorf("Cross(0.2) = %v, %v", x, ok)
	}
	x, ok = w.Cross(0.7)
	if !ok || !approx(x, 1.5, 1e-12) {
		t.Errorf("Cross(0.7) = %v, %v", x, ok)
	}
	if _, ok := w.Cross(2); ok {
		t.Errorf("Cross(2) should not exist")
	}
	// Level below the first sample: crossing reported at start.
	x, ok = w.Cross(-1)
	if !ok || x != 0 {
		t.Errorf("Cross(-1) = %v, %v", x, ok)
	}
}

func TestRiseTime(t *testing.T) {
	// Linear ramp 0..1 over [0, 10]: 10%-90% takes 8.
	w, err := FromFunc(func(x float64) float64 { return x / 10 }, 0, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	rt, ok := w.RiseTime(0.1, 0.9)
	if !ok || !approx(rt, 8, 1e-9) {
		t.Errorf("RiseTime = %v, %v", rt, ok)
	}
}

func TestIntegralAndMoments(t *testing.T) {
	// Uniform density 1 on [0, 2]: area 2, mean 1, raw2 8/3.
	w, err := FromFunc(func(x float64) float64 { return 1 }, 0, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Integral(); !approx(got, 2, 1e-9) {
		t.Errorf("Integral = %v", got)
	}
	if got := w.RawMoment(1); !approx(got, 2, 1e-6) {
		t.Errorf("RawMoment(1) = %v, want 2", got)
	}
	if got := w.RawMoment(2); !approx(got, 8.0/3, 1e-6) {
		t.Errorf("RawMoment(2) = %v, want 8/3", got)
	}
}

func TestStatsUniformDensity(t *testing.T) {
	w, err := FromFunc(func(x float64) float64 { return 0.5 }, 0, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(st.Area, 1, 1e-9) || !approx(st.Mean, 1, 1e-6) || !approx(st.Median, 1, 1e-6) {
		t.Errorf("uniform stats: %+v", st)
	}
	if !approx(st.Mu2, 1.0/3, 1e-5) {
		t.Errorf("mu2 = %v, want 1/3", st.Mu2)
	}
	if math.Abs(st.Skew) > 1e-4 {
		t.Errorf("skew = %v, want ~0", st.Skew)
	}
}

func TestStatsExponentialDensity(t *testing.T) {
	// h(t) = e^{-t}: mean 1, median ln 2, mode 0, sigma 1, skew 2.
	w, err := FromFunc(func(x float64) float64 { return math.Exp(-x) }, 0, 40, 400000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(st.Mean, 1, 1e-4) {
		t.Errorf("mean = %v, want 1", st.Mean)
	}
	if !approx(st.Median, math.Ln2, 1e-4) {
		t.Errorf("median = %v, want ln2", st.Median)
	}
	if st.Mode != 0 {
		t.Errorf("mode = %v, want 0", st.Mode)
	}
	if !approx(st.Sigma, 1, 1e-3) {
		t.Errorf("sigma = %v, want 1", st.Sigma)
	}
	if !approx(st.Skew, 2, 1e-2) {
		t.Errorf("skew = %v, want 2", st.Skew)
	}
	// The paper's ordering for a positively skewed unimodal density.
	if !(st.Mode <= st.Median && st.Median <= st.Mean) {
		t.Errorf("mode <= median <= mean violated: %+v", st)
	}
}

func TestStatsRejectsZeroArea(t *testing.T) {
	w := mustNew(t, []float64{0, 1}, []float64{0, 0})
	if _, err := w.Stats(); err == nil {
		t.Errorf("zero-area density should error")
	}
}

func TestUnimodality(t *testing.T) {
	up := mustNew(t, []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	if !up.IsUnimodal(1e-12) {
		t.Errorf("monotone rise should be unimodal")
	}
	peak := mustNew(t, []float64{0, 1, 2, 3}, []float64{0, 2, 1, 0.5})
	if !peak.IsUnimodal(1e-12) {
		t.Errorf("single peak should be unimodal")
	}
	twoPeaks := mustNew(t, []float64{0, 1, 2, 3, 4}, []float64{0, 2, 1, 2, 0})
	if twoPeaks.IsUnimodal(1e-12) {
		t.Errorf("two peaks should not be unimodal")
	}
	// Tolerance forgives tiny numerical wiggle.
	wiggle := mustNew(t, []float64{0, 1, 2, 3}, []float64{0, 1, 0.999999, 0.5})
	if !wiggle.IsUnimodal(1e-3) {
		t.Errorf("tiny wiggle should pass with tolerance")
	}
}

func TestNonNegativeAndMonotone(t *testing.T) {
	w := mustNew(t, []float64{0, 1, 2}, []float64{0, 0.5, 1})
	if !w.IsNonNegative(0) || !w.IsMonotoneNonDecreasing(0) {
		t.Errorf("ramp should be nonnegative and monotone")
	}
	neg := mustNew(t, []float64{0, 1}, []float64{0, -1})
	if neg.IsNonNegative(1e-12) {
		t.Errorf("negative waveform reported nonnegative")
	}
	dip := mustNew(t, []float64{0, 1, 2}, []float64{0, 1, 0.2})
	if dip.IsMonotoneNonDecreasing(1e-3) {
		t.Errorf("dip should fail monotone check")
	}
}

func TestDerivative(t *testing.T) {
	// d/dt of t^2 on [0,1] is 2t; check at interior points.
	w, err := FromFunc(func(x float64) float64 { return x * x }, 0, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	d := w.Derivative()
	for _, x := range []float64{0.2, 0.5, 0.8} {
		if got := d.At(x); !approx(got, 2*x, 1e-4) {
			t.Errorf("derivative at %v = %v, want %v", x, got, 2*x)
		}
	}
}

func TestResample(t *testing.T) {
	w := mustNew(t, []float64{0, 2}, []float64{0, 2})
	r, err := w.Resample(0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 || !approx(r.V[2], 1, 1e-12) {
		t.Errorf("Resample wrong: %+v", r)
	}
}

// Convolution of two unit-area densities: area 1, means add, central
// moments add (the paper's Appendix B property, checked numerically).
func TestConvolveMomentAdditivity(t *testing.T) {
	a, err := FromFunc(func(x float64) float64 { return math.Exp(-x) }, 0, 30, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromFunc(func(x float64) float64 { return 2 * math.Exp(-2*x) }, 0, 15, 3000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Convolve(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.Stats()
	sb, _ := b.Stats()
	sc, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sc.Area, 1, 1e-2) {
		t.Errorf("area = %v, want 1", sc.Area)
	}
	if !approx(sc.Mean, sa.Mean+sb.Mean, 1e-2) {
		t.Errorf("mean = %v, want %v", sc.Mean, sa.Mean+sb.Mean)
	}
	if !approx(sc.Mu2, sa.Mu2+sb.Mu2, 2e-2) {
		t.Errorf("mu2 = %v, want %v", sc.Mu2, sa.Mu2+sb.Mu2)
	}
	if !approx(sc.Mu3, sa.Mu3+sb.Mu3, 5e-2) {
		t.Errorf("mu3 = %v, want %v", sc.Mu3, sa.Mu3+sb.Mu3)
	}
}

func TestConvolveErrors(t *testing.T) {
	w := mustNew(t, []float64{0, 1}, []float64{1, 1})
	if _, err := Convolve(w, w, 0); err == nil {
		t.Errorf("dt=0 should fail")
	}
	neg := mustNew(t, []float64{-1, 1}, []float64{1, 1})
	if _, err := Convolve(neg, w, 0.1); err == nil {
		t.Errorf("non-causal input should fail")
	}
}

func TestFromFuncErrors(t *testing.T) {
	if _, err := FromFunc(math.Sin, 1, 1, 10); err == nil {
		t.Errorf("empty range should fail")
	}
	if _, err := FromFunc(math.Sin, 0, 1, 0); err == nil {
		t.Errorf("zero intervals should fail")
	}
}

// Property: for randomized triangular densities, the median lies between
// mode-side mass boundaries and stats are finite; mean of symmetric
// triangle equals its center.
func TestStatsTriangleProperty(t *testing.T) {
	f := func(centerRaw, widthRaw uint8) bool {
		center := 1 + float64(centerRaw)/32  // 1..9
		width := 0.5 + float64(widthRaw)/128 // 0.5..2.5
		lo, hi := center-width, center+width // may start below 0; shift
		if lo < 0 {
			shift := -lo
			lo += shift
			hi += shift
			center += shift
		}
		tri := func(x float64) float64 {
			d := 1 - math.Abs(x-center)/width
			if d < 0 {
				return 0
			}
			return d
		}
		w, err := FromFunc(tri, lo, hi, 4000)
		if err != nil {
			return false
		}
		st, err := w.Stats()
		if err != nil {
			return false
		}
		return approx(st.Mean, center, 1e-3) &&
			approx(st.Median, center, 1e-3) &&
			approx(st.Mode, center, 2e-3) &&
			math.Abs(st.Skew) < 1e-2 &&
			w.IsUnimodal(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
