// Package waveform provides sampled-waveform utilities: interpolation,
// threshold crossings, numeric integration and differentiation,
// convolution, and distribution statistics (mean/median/mode,
// unimodality) of a waveform treated as a density.
//
// It backs the numerical cross-checks between the exact pole/residue
// engine, the transient simulator, and the moment computations, and it
// carries the series data for the reproduced paper figures.
package waveform

import (
	"fmt"
	"math"
)

// Waveform is a sampled real function of time with strictly increasing
// sample times. Values between samples are linearly interpolated.
type Waveform struct {
	T []float64
	V []float64
}

// New validates the sample vectors and returns a waveform.
func New(t, v []float64) (*Waveform, error) {
	if len(t) != len(v) {
		return nil, fmt.Errorf("waveform: time/value length mismatch %d != %d", len(t), len(v))
	}
	if len(t) < 2 {
		return nil, fmt.Errorf("waveform: need at least 2 samples, got %d", len(t))
	}
	for i := range t {
		if math.IsNaN(t[i]) || math.IsInf(t[i], 0) || math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			return nil, fmt.Errorf("waveform: sample %d is not finite", i)
		}
		if i > 0 && t[i] <= t[i-1] {
			return nil, fmt.Errorf("waveform: times must strictly increase (samples %d, %d)", i-1, i)
		}
	}
	return &Waveform{T: t, V: v}, nil
}

// FromFunc samples f at n+1 uniform points across [t0, t1].
func FromFunc(f func(float64) float64, t0, t1 float64, n int) (*Waveform, error) {
	if !(t1 > t0) {
		return nil, fmt.Errorf("waveform: need t1 > t0, got [%v, %v]", t0, t1)
	}
	if n < 1 {
		return nil, fmt.Errorf("waveform: need at least 1 interval, got %d", n)
	}
	t := make([]float64, n+1)
	v := make([]float64, n+1)
	dt := (t1 - t0) / float64(n)
	for i := 0; i <= n; i++ {
		t[i] = t0 + float64(i)*dt
		v[i] = f(t[i])
	}
	return New(t, v)
}

// Len returns the number of samples.
func (w *Waveform) Len() int { return len(w.T) }

// At returns the linearly interpolated value at time x; outside the
// sampled range the first/last value is held.
func (w *Waveform) At(x float64) float64 {
	n := len(w.T)
	if x <= w.T[0] {
		return w.V[0]
	}
	if x >= w.T[n-1] {
		return w.V[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w.T[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - w.T[lo]) / (w.T[hi] - w.T[lo])
	return w.V[lo] + f*(w.V[hi]-w.V[lo])
}

// Cross returns the first time the waveform crosses the given level in
// the upward direction, linearly interpolated, and whether any crossing
// exists in the sampled range.
func (w *Waveform) Cross(level float64) (float64, bool) {
	if w.V[0] >= level {
		return w.T[0], true
	}
	for i := 1; i < len(w.T); i++ {
		if w.V[i] >= level {
			a, b := i-1, i
			if w.V[b] == w.V[a] {
				return w.T[b], true
			}
			f := (level - w.V[a]) / (w.V[b] - w.V[a])
			return w.T[a] + f*(w.T[b]-w.T[a]), true
		}
	}
	return 0, false
}

// RiseTime returns the time for the waveform to go from lo*final to
// hi*final (e.g. 0.1, 0.9 of the final sampled value). The second return
// is false if either crossing is missing.
func (w *Waveform) RiseTime(lo, hi float64) (float64, bool) {
	final := w.V[len(w.V)-1]
	tLo, ok1 := w.Cross(lo * final)
	tHi, ok2 := w.Cross(hi * final)
	if !ok1 || !ok2 {
		return 0, false
	}
	return tHi - tLo, true
}

// Integral returns the trapezoidal integral over the whole sample range.
func (w *Waveform) Integral() float64 {
	var sum float64
	for i := 1; i < len(w.T); i++ {
		sum += 0.5 * (w.V[i] + w.V[i-1]) * (w.T[i] - w.T[i-1])
	}
	return sum
}

// RawMoment returns the trapezoidal estimate of integral t^q w(t) dt over
// the sampled range.
func (w *Waveform) RawMoment(q int) float64 {
	var sum float64
	for i := 1; i < len(w.T); i++ {
		fa := math.Pow(w.T[i-1], float64(q)) * w.V[i-1]
		fb := math.Pow(w.T[i], float64(q)) * w.V[i]
		sum += 0.5 * (fa + fb) * (w.T[i] - w.T[i-1])
	}
	return sum
}

// DensityStats summarizes a waveform treated as a (not necessarily
// normalized) distribution density.
type DensityStats struct {
	Area   float64 // integral of the density
	Mean   float64 // first moment / area
	Sigma  float64 // sqrt of central second moment
	Mu2    float64
	Mu3    float64
	Skew   float64 // mu3 / mu2^(3/2)
	Median float64 // half-area point
	Mode   float64 // argmax of the sampled density
}

// Stats computes distribution statistics of the waveform-as-density.
// It returns an error if the total area is not positive.
func (w *Waveform) Stats() (DensityStats, error) {
	area := w.Integral()
	if area <= 0 {
		return DensityStats{}, fmt.Errorf("waveform: density area %g is not positive", area)
	}
	m1 := w.RawMoment(1) / area
	m2 := w.RawMoment(2) / area
	m3 := w.RawMoment(3) / area
	mu2 := m2 - m1*m1
	mu3 := m3 - 3*m1*m2 + 2*m1*m1*m1
	st := DensityStats{Area: area, Mean: m1, Mu2: mu2, Mu3: mu3}
	if mu2 > 0 {
		st.Sigma = math.Sqrt(mu2)
		st.Skew = mu3 / math.Pow(mu2, 1.5)
	}
	// Median: accumulate trapezoids to half the area.
	half := area / 2
	var acc float64
	st.Median = w.T[len(w.T)-1]
	for i := 1; i < len(w.T); i++ {
		seg := 0.5 * (w.V[i] + w.V[i-1]) * (w.T[i] - w.T[i-1])
		if acc+seg >= half {
			// Solve for the fraction of this segment. The integrand is
			// linear, so the cumulative is quadratic in the fraction f:
			// acc + dt*f*(va + f*(vb-va)/2) = half.
			va, vb := w.V[i-1], w.V[i]
			dt := w.T[i] - w.T[i-1]
			need := half - acc
			f := solveSegmentFraction(va, vb, dt, need)
			st.Median = w.T[i-1] + f*dt
			break
		}
		acc += seg
	}
	// Mode: maximum sample.
	best := 0
	for i := range w.V {
		if w.V[i] > w.V[best] {
			best = i
		}
	}
	st.Mode = w.T[best]
	return st, nil
}

// solveSegmentFraction finds f in [0,1] such that the integral of the
// linear interpolant from va to vb over fraction f of width dt equals
// need: dt*(va*f + (vb-va)*f^2/2) = need.
func solveSegmentFraction(va, vb, dt, need float64) float64 {
	a := (vb - va) / 2
	b := va
	c := -need / dt
	if a == 0 {
		if b == 0 {
			return 1
		}
		return clamp01(-c / b)
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 1
	}
	sq := math.Sqrt(disc)
	f1 := (-b + sq) / (2 * a)
	f2 := (-b - sq) / (2 * a)
	// Pick the root in [0, 1].
	if f1 >= 0 && f1 <= 1 {
		return f1
	}
	return clamp01(f2)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// IsNonNegative reports whether all samples are >= -tol*max|V|.
func (w *Waveform) IsNonNegative(tol float64) bool {
	maxAbs := 0.0
	for _, v := range w.V {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for _, v := range w.V {
		if v < -tol*maxAbs {
			return false
		}
	}
	return true
}

// IsUnimodal reports whether the sample sequence rises to a single peak
// and then falls, allowing wiggle up to tol*max|V|.
func (w *Waveform) IsUnimodal(tol float64) bool {
	maxAbs := 0.0
	for _, v := range w.V {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	eps := tol * maxAbs
	i := 0
	for i+1 < len(w.V) && w.V[i+1] >= w.V[i]-eps {
		i++
	}
	for i+1 < len(w.V) {
		if w.V[i+1] > w.V[i]+eps {
			return false
		}
		i++
	}
	return true
}

// IsMonotoneNonDecreasing reports whether samples never decrease by more
// than tol*range.
func (w *Waveform) IsMonotoneNonDecreasing(tol float64) bool {
	lo, hi := w.V[0], w.V[0]
	for _, v := range w.V {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	eps := tol * (hi - lo)
	for i := 1; i < len(w.V); i++ {
		if w.V[i] < w.V[i-1]-eps {
			return false
		}
	}
	return true
}

// Derivative returns the centered finite-difference derivative sampled
// at the original times (one-sided at the ends).
func (w *Waveform) Derivative() *Waveform {
	n := len(w.T)
	dv := make([]float64, n)
	dv[0] = (w.V[1] - w.V[0]) / (w.T[1] - w.T[0])
	dv[n-1] = (w.V[n-1] - w.V[n-2]) / (w.T[n-1] - w.T[n-2])
	for i := 1; i < n-1; i++ {
		dv[i] = (w.V[i+1] - w.V[i-1]) / (w.T[i+1] - w.T[i-1])
	}
	out, err := New(append([]float64(nil), w.T...), dv)
	if err != nil {
		panic(err) // cannot happen: times validated at construction
	}
	return out
}

// Resample returns the waveform sampled at n+1 uniform points across
// [t0, t1], holding end values outside the original range.
func (w *Waveform) Resample(t0, t1 float64, n int) (*Waveform, error) {
	return FromFunc(w.At, t0, t1, n)
}

// Convolve numerically convolves two densities on a shared uniform grid
// of step dt, returning samples covering the sum of both supports. Both
// waveforms are treated as zero outside their sampled ranges; the inputs
// must start at t >= 0 (causal densities).
func Convolve(a, b *Waveform, dt float64) (*Waveform, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("waveform: Convolve needs dt > 0")
	}
	if a.T[0] < 0 || b.T[0] < 0 {
		return nil, fmt.Errorf("waveform: Convolve requires causal (t >= 0) densities")
	}
	na := int(math.Ceil(a.T[len(a.T)-1]/dt)) + 1
	nb := int(math.Ceil(b.T[len(b.T)-1]/dt)) + 1
	if na < 2 || nb < 2 {
		return nil, fmt.Errorf("waveform: Convolve grid too coarse")
	}
	av := make([]float64, na)
	bv := make([]float64, nb)
	for i := range av {
		av[i] = a.atOrZero(float64(i) * dt)
	}
	for i := range bv {
		bv[i] = b.atOrZero(float64(i) * dt)
	}
	n := na + nb - 1
	t := make([]float64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		t[i] = float64(i) * dt
		var s float64
		jLo := i - (nb - 1)
		if jLo < 0 {
			jLo = 0
		}
		jHi := i
		if jHi > na-1 {
			jHi = na - 1
		}
		for j := jLo; j <= jHi; j++ {
			s += av[j] * bv[i-j]
		}
		v[i] = s * dt
	}
	return New(t, v)
}

// atOrZero is like At but returns 0 outside the sampled range instead of
// holding end values — the right behaviour for densities.
func (w *Waveform) atOrZero(x float64) float64 {
	if x < w.T[0] || x > w.T[len(w.T)-1] {
		return 0
	}
	return w.At(x)
}
