package waveform

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes named waveforms sharing a time axis as CSV with a
// "time,<name>,..." header — the format cmd/rcsim emits. All waveforms
// must share identical sample times.
func WriteCSV(w io.Writer, names []string, waves []*Waveform) error {
	if len(names) != len(waves) || len(waves) == 0 {
		return fmt.Errorf("waveform: WriteCSV needs matching, nonempty names and waveforms")
	}
	base := waves[0]
	for k, wv := range waves[1:] {
		if len(wv.T) != len(base.T) {
			return fmt.Errorf("waveform: %q has %d samples, want %d", names[k+1], len(wv.T), len(base.T))
		}
		for i := range wv.T {
			if wv.T[i] != base.T[i] {
				return fmt.Errorf("waveform: %q has a different time axis", names[k+1])
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "time")
	for _, n := range names {
		fmt.Fprintf(bw, ",%s", n)
	}
	fmt.Fprintln(bw)
	for i := range base.T {
		fmt.Fprintf(bw, "%.9g", base.T[i])
		for _, wv := range waves {
			fmt.Fprintf(bw, ",%.9g", wv.V[i])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadCSV parses CSV in the WriteCSV / cmd/rcsim layout: a header
// beginning with "time" followed by column names, then numeric rows.
// It returns the column names and one waveform per column.
func ReadCSV(r io.Reader) ([]string, []*Waveform, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("waveform: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(header) < 2 || header[0] != "time" {
		return nil, nil, fmt.Errorf("waveform: CSV header must start with \"time\", got %q", sc.Text())
	}
	names := header[1:]
	var times []float64
	cols := make([][]float64, len(names))
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != len(header) {
			return nil, nil, fmt.Errorf("waveform: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("waveform: line %d: %w", line, err)
		}
		times = append(times, t)
		for k := range names {
			v, err := strconv.ParseFloat(fields[k+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("waveform: line %d: %w", line, err)
			}
			cols[k] = append(cols[k], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("waveform: read: %w", err)
	}
	waves := make([]*Waveform, len(names))
	for k := range names {
		wv, err := New(times, cols[k])
		if err != nil {
			return nil, nil, fmt.Errorf("waveform: column %q: %w", names[k], err)
		}
		waves[k] = wv
	}
	return names, waves, nil
}
