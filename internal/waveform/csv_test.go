package waveform

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	a := mustNew(t, []float64{0, 1e-9, 2e-9}, []float64{0, 0.5, 1})
	b := mustNew(t, []float64{0, 1e-9, 2e-9}, []float64{0, 0.25, 0.75})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"n1", "n2"}, []*Waveform{a, b}); err != nil {
		t.Fatal(err)
	}
	names, waves, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "n1" || names[1] != "n2" {
		t.Fatalf("names = %v", names)
	}
	for i := range a.T {
		if waves[0].T[i] != a.T[i] || waves[0].V[i] != a.V[i] {
			t.Fatalf("column n1 changed at sample %d", i)
		}
		if waves[1].V[i] != b.V[i] {
			t.Fatalf("column n2 changed at sample %d", i)
		}
	}
}

func TestWriteCSVErrors(t *testing.T) {
	a := mustNew(t, []float64{0, 1}, []float64{0, 1})
	short := mustNew(t, []float64{0, 1, 2}, []float64{0, 1, 2})
	shifted := mustNew(t, []float64{0, 2}, []float64{0, 1})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a"}, nil); err == nil {
		t.Errorf("mismatched args should fail")
	}
	if err := WriteCSV(&buf, []string{"a", "b"}, []*Waveform{a, short}); err == nil {
		t.Errorf("length mismatch should fail")
	}
	if err := WriteCSV(&buf, []string{"a", "b"}, []*Waveform{a, shifted}); err == nil {
		t.Errorf("time-axis mismatch should fail")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad header", "t,n1\n0,0\n1,1\n"},
		{"no columns", "time\n0\n1\n"},
		{"ragged row", "time,n1\n0,0\n1\n"},
		{"bad number", "time,n1\n0,zz\n1,1\n"},
		{"bad time", "time,n1\nzz,0\n1,1\n"},
		{"single sample", "time,n1\n0,0\n"},
		{"non-increasing", "time,n1\n0,0\n0,1\n"},
	}
	for _, tc := range cases {
		if _, _, err := ReadCSV(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	src := "time,n1\n0,0\n\n1e-9,1\n"
	_, waves, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if waves[0].Len() != 2 {
		t.Errorf("samples = %d, want 2", waves[0].Len())
	}
}
