package sta

import (
	"fmt"
	"math"
	"sort"
)

// Graph is a combinational timing graph: named timing points connected
// by gate+net arcs. Multiple arcs may converge on a point (gate fanin);
// the timer propagates the *latest* arrival window and the worst slew,
// the standard pessimistic merge of static timing analysis.
type Graph struct {
	arcs   []arc
	points map[string]bool
}

type arc struct {
	from, to string
	stage    Stage
}

// NewGraph returns an empty timing graph.
func NewGraph() *Graph {
	return &Graph{points: make(map[string]bool)}
}

// AddArc connects timing point `from` to `to` through a gate driving a
// net; the stage's Sink names the net node that reaches `to`.
func (g *Graph) AddArc(from, to string, stage Stage) error {
	if from == "" || to == "" {
		return fmt.Errorf("sta: arc endpoints need names")
	}
	if from == to {
		return fmt.Errorf("sta: self-arc at %q", from)
	}
	if stage.Cell == nil || stage.Net == nil {
		return fmt.Errorf("sta: arc %s->%s: incomplete stage", from, to)
	}
	if _, ok := stage.Net.Index(stage.Sink); !ok {
		return fmt.Errorf("sta: arc %s->%s: net has no node %q", from, to, stage.Sink)
	}
	g.arcs = append(g.arcs, arc{from, to, stage})
	g.points[from] = true
	g.points[to] = true
	return nil
}

// PointTiming is the merged timing at a graph point.
type PointTiming struct {
	Point     string
	ArrivalUB float64
	ArrivalLB float64
	Slew      float64 // worst (largest) incoming slew
}

// GraphResult maps every timing point to its merged arrival window.
type GraphResult struct {
	Points map[string]PointTiming
}

// At returns the timing at a named point.
func (r *GraphResult) At(name string) (PointTiming, error) {
	pt, ok := r.Points[name]
	if !ok {
		return PointTiming{}, fmt.Errorf("sta: no timing point %q", name)
	}
	return pt, nil
}

// AnalyzeGraph propagates arrival windows from the given primary
// inputs (each with its own arrival time and slew) through the graph in
// topological order. It returns an error for cyclic graphs or points
// with no driven arrival.
func AnalyzeGraph(g *Graph, primary map[string]PointTiming) (*GraphResult, error) {
	if len(g.arcs) == 0 {
		return nil, fmt.Errorf("sta: empty graph")
	}
	if len(primary) == 0 {
		return nil, fmt.Errorf("sta: no primary inputs")
	}
	for name := range primary {
		if !g.points[name] {
			return nil, fmt.Errorf("sta: primary input %q is not in the graph", name)
		}
	}

	// Kahn topological order over the points.
	indeg := make(map[string]int)
	out := make(map[string][]arc)
	for p := range g.points {
		indeg[p] = 0
	}
	for _, a := range g.arcs {
		indeg[a.to]++
		out[a.from] = append(out[a.from], a)
	}
	var queue []string
	for p, d := range indeg {
		if d == 0 {
			if _, isPI := primary[p]; !isPI {
				return nil, fmt.Errorf("sta: point %q has no fanin and is not a primary input", p)
			}
			queue = append(queue, p)
		}
	}
	sort.Strings(queue) // deterministic order

	res := &GraphResult{Points: make(map[string]PointTiming)}
	for name, pt := range primary {
		pt.Point = name
		res.Points[name] = pt
	}
	processed := 0
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		processed++
		from, ok := res.Points[p]
		if !ok {
			return nil, fmt.Errorf("sta: point %q reached without an arrival (disconnected from primary inputs?)", p)
		}
		for _, a := range out[p] {
			one, err := AnalyzePath(Path{InputSlew: from.Slew, Stages: []Stage{a.stage}})
			if err != nil {
				return nil, fmt.Errorf("sta: arc %s->%s: %w", a.from, a.to, err)
			}
			st := one.Stages[0]
			cand := PointTiming{
				Point:     a.to,
				ArrivalUB: from.ArrivalUB + st.ArrivalUB,
				ArrivalLB: from.ArrivalLB + st.ArrivalLB,
				Slew:      st.SinkSlew,
			}
			cur, seen := res.Points[a.to]
			if !seen {
				res.Points[a.to] = cand
			} else {
				// Latest-arrival merge; worst (largest) slew.
				merged := cur
				merged.ArrivalUB = math.Max(cur.ArrivalUB, cand.ArrivalUB)
				merged.ArrivalLB = math.Max(cur.ArrivalLB, cand.ArrivalLB)
				merged.Slew = math.Max(cur.Slew, cand.Slew)
				res.Points[a.to] = merged
			}
			indeg[a.to]--
			if indeg[a.to] == 0 {
				queue = append(queue, a.to)
			}
		}
	}
	if processed != len(g.points) {
		return nil, fmt.Errorf("sta: graph has a cycle (%d of %d points processed)", processed, len(g.points))
	}
	return res, nil
}
