package sta

import (
	"math"
	"strings"
	"testing"
)

func TestGraphLinearMatchesPath(t *testing.T) {
	cell := testCell(t, "inv", 300)
	net1 := smallNet(t)
	net2 := smallNet(t)
	// A two-arc chain through the graph must equal the two-stage path.
	g := NewGraph()
	if err := g.AddArc("in", "mid", Stage{Cell: cell, Net: net1, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc("mid", "out", Stage{Cell: cell, Net: net2, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeGraph(g, map[string]PointTiming{
		"in": {ArrivalUB: 0, ArrivalLB: 0, Slew: 25e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.At("out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzePath(Path{
		InputSlew: 25e-12,
		Stages: []Stage{
			{Cell: cell, Net: net1, Sink: "pin"},
			{Cell: cell, Net: net2, Sink: "pin"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.ArrivalUB, want.ArrivalUB, 1e-12) || !approx(got.ArrivalLB, want.ArrivalLB, 1e-12) {
		t.Errorf("graph [%v,%v] vs path [%v,%v]", got.ArrivalLB, got.ArrivalUB, want.ArrivalLB, want.ArrivalUB)
	}
}

func TestGraphReconvergentFaninTakesWorst(t *testing.T) {
	fast := testCell(t, "fast", 120)
	slow := testCell(t, "slow", 900)
	netA := smallNet(t)
	netB := smallNet(t)
	g := NewGraph()
	if err := g.AddArc("in", "join", Stage{Cell: fast, Net: netA, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc("in2", "join", Stage{Cell: slow, Net: netB, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeGraph(g, map[string]PointTiming{
		"in":  {Slew: 20e-12},
		"in2": {Slew: 20e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	join, err := res.At("join")
	if err != nil {
		t.Fatal(err)
	}
	// The slow branch dominates: its single-arc analysis gives the
	// merged value.
	slowOnly, err := AnalyzePath(Path{InputSlew: 20e-12, Stages: []Stage{{Cell: slow, Net: netB, Sink: "pin"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(join.ArrivalUB, slowOnly.ArrivalUB, 1e-12) {
		t.Errorf("merged UB %v, want slow branch %v", join.ArrivalUB, slowOnly.ArrivalUB)
	}
	fastOnly, err := AnalyzePath(Path{InputSlew: 20e-12, Stages: []Stage{{Cell: fast, Net: netA, Sink: "pin"}}})
	if err != nil {
		t.Fatal(err)
	}
	if join.ArrivalUB <= fastOnly.ArrivalUB {
		t.Errorf("merge failed to dominate the fast branch")
	}
	if join.Slew < math.Max(slowOnly.Stages[0].SinkSlew, fastOnly.Stages[0].SinkSlew)-1e-18 {
		t.Errorf("merged slew should be the worst incoming")
	}
}

func TestGraphErrors(t *testing.T) {
	cell := testCell(t, "inv", 300)
	net := smallNet(t)
	g := NewGraph()
	if err := g.AddArc("", "b", Stage{Cell: cell, Net: net, Sink: "pin"}); err == nil {
		t.Errorf("empty endpoint should fail")
	}
	if err := g.AddArc("a", "a", Stage{Cell: cell, Net: net, Sink: "pin"}); err == nil {
		t.Errorf("self arc should fail")
	}
	if err := g.AddArc("a", "b", Stage{Net: net, Sink: "pin"}); err == nil {
		t.Errorf("missing cell should fail")
	}
	if err := g.AddArc("a", "b", Stage{Cell: cell, Net: net, Sink: "zz"}); err == nil {
		t.Errorf("bad sink should fail")
	}

	if _, err := AnalyzeGraph(NewGraph(), map[string]PointTiming{"a": {}}); err == nil {
		t.Errorf("empty graph should fail")
	}
	if err := g.AddArc("a", "b", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeGraph(g, nil); err == nil {
		t.Errorf("no primary inputs should fail")
	}
	if _, err := AnalyzeGraph(g, map[string]PointTiming{"zz": {}}); err == nil {
		t.Errorf("unknown primary input should fail")
	}

	// Cycle detection.
	gc := NewGraph()
	if err := gc.AddArc("x", "y", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if err := gc.AddArc("y", "x", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if err := gc.AddArc("in", "x", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeGraph(gc, map[string]PointTiming{"in": {Slew: 1e-12}}); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle should be detected, got %v", err)
	}

	// A fanin-free point that is not a primary input.
	gf := NewGraph()
	if err := gf.AddArc("orphan", "z", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if err := gf.AddArc("in", "z", Stage{Cell: cell, Net: net, Sink: "pin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeGraph(gf, map[string]PointTiming{"in": {Slew: 1e-12}}); err == nil {
		t.Errorf("orphan source should be rejected")
	}
	if _, err := (&GraphResult{Points: map[string]PointTiming{}}).At("zz"); err == nil {
		t.Errorf("missing point should error")
	}
}
