package sta

import (
	"math"
	"testing"

	"elmore/internal/exact"
	"elmore/internal/gate"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func testCell(t *testing.T, name string, rdrv float64) *gate.Cell {
	t.Helper()
	cell, err := gate.LinearCell(name, rdrv, 2e-12, 0.05, 4e-12,
		[]float64{1e-12, 50e-12, 500e-12, 5e-9},
		[]float64{1e-15, 50e-15, 500e-15, 5e-12})
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

func smallNet(t *testing.T) *rctree.Tree {
	t.Helper()
	b := rctree.NewBuilder()
	n1 := b.MustRoot("w1", 120, 20e-15)
	b.MustAttach(n1, "pin", 200, 60e-15)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSingleStageManual(t *testing.T) {
	cell := testCell(t, "inv", 300)
	net := smallNet(t)
	res, err := AnalyzePath(Path{
		InputSlew: 20e-12,
		Stages:    []Stage{{Cell: cell, Net: net, Sink: "pin"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 1 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	st := res.Stages[0]
	// Net Elmore at the pin: 120*(80f) + 200*60f = 9.6p + 12p = 21.6ps.
	if !approx(st.NetElmore, 21.6e-12, 1e-9) {
		t.Errorf("net Elmore = %v, want 21.6ps", st.NetElmore)
	}
	// Gate delay from the table at the converged Ceff.
	wantDelay := cell.Delay.Lookup(20e-12, st.Ceff)
	if !approx(st.GateDelay, wantDelay, 1e-9) {
		t.Errorf("gate delay = %v, want %v", st.GateDelay, wantDelay)
	}
	if !(res.ArrivalLB <= res.ArrivalUB) {
		t.Errorf("LB %v > UB %v", res.ArrivalLB, res.ArrivalUB)
	}
	if st.SinkSlew <= st.OutputSlew {
		t.Errorf("sink slew %v should exceed launched slew %v (net dispersion adds)", st.SinkSlew, st.OutputSlew)
	}
}

// The certified net portion: simulate the cell's actual output ramp
// through the exact engine and check the per-stage net delay lands in
// [NetLower, NetElmore].
func TestNetBoundsCertified(t *testing.T) {
	cell := testCell(t, "inv", 250)
	for seed := int64(0); seed < 20; seed++ {
		net := topo.Random(seed, topo.RandomOptions{N: 8, CMin: 5e-15, CMax: 80e-15, RMin: 50, RMax: 400})
		sink := net.Leaves()[0]
		res, err := AnalyzePath(Path{
			InputSlew: 30e-12,
			Stages:    []Stage{{Cell: cell, Net: net, Sink: net.Name(sink)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stages[0]
		sys, err := exact.NewSystem(net)
		if err != nil {
			t.Fatal(err)
		}
		actual, err := sys.Delay(sink, signal.SaturatedRamp{Tr: st.OutputSlew}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if actual > st.NetElmore*(1+1e-9) {
			t.Errorf("seed %d: net delay %v above Elmore bound %v", seed, actual, st.NetElmore)
		}
		if actual < st.NetLower*(1-1e-9)-1e-18 {
			t.Errorf("seed %d: net delay %v below lower bound %v", seed, actual, st.NetLower)
		}
	}
}

func TestMultiStagePath(t *testing.T) {
	cellA := testCell(t, "buf_small", 400)
	cellB := testCell(t, "buf_big", 150)
	net1 := smallNet(t)
	net2 := topo.Chain(6, 80, 15e-15)
	res, err := AnalyzePath(Path{
		InputSlew: 25e-12,
		Stages: []Stage{
			{Cell: cellA, Net: net1, Sink: "pin"},
			{Cell: cellB, Net: net2, Sink: "n6"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// Arrivals accumulate monotonically.
	if !(res.Stages[0].ArrivalUB < res.Stages[1].ArrivalUB) {
		t.Errorf("UB should grow along the path")
	}
	if !(res.Stages[0].ArrivalLB <= res.Stages[1].ArrivalLB) {
		t.Errorf("LB should grow along the path")
	}
	if res.ArrivalUB != res.Stages[1].ArrivalUB || res.ArrivalLB != res.Stages[1].ArrivalLB {
		t.Errorf("totals should match the last stage")
	}
	// The second stage sees the first's sink slew.
	if res.Stages[1].OutputSlew <= 0 {
		t.Errorf("slew did not propagate")
	}
}

func TestHeavierNetSlowsAndSlews(t *testing.T) {
	cell := testCell(t, "inv", 300)
	light := topo.Chain(3, 50, 10e-15)
	heavy := topo.Chain(12, 150, 40e-15)
	rl, err := AnalyzePath(Path{InputSlew: 20e-12, Stages: []Stage{{Cell: cell, Net: light, Sink: "n3"}}})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := AnalyzePath(Path{InputSlew: 20e-12, Stages: []Stage{{Cell: cell, Net: heavy, Sink: "n12"}}})
	if err != nil {
		t.Fatal(err)
	}
	if rh.ArrivalUB <= rl.ArrivalUB {
		t.Errorf("heavier net should be slower: %v vs %v", rh.ArrivalUB, rl.ArrivalUB)
	}
	if rh.Stages[0].SinkSlew <= rl.Stages[0].SinkSlew {
		t.Errorf("heavier net should degrade the edge: %v vs %v", rh.Stages[0].SinkSlew, rl.Stages[0].SinkSlew)
	}
}

func TestAnalyzePathErrors(t *testing.T) {
	cell := testCell(t, "inv", 300)
	net := smallNet(t)
	cases := []Path{
		{},
		{InputSlew: math.NaN(), Stages: []Stage{{Cell: cell, Net: net, Sink: "pin"}}},
		{InputSlew: 1e-12, Stages: []Stage{{Cell: cell, Net: net, Sink: "nope"}}},
		{InputSlew: 1e-12, Stages: []Stage{{Net: net, Sink: "pin"}}},
		{InputSlew: 1e-12, Stages: []Stage{{Cell: cell, Sink: "pin"}}},
	}
	for i, p := range cases {
		if _, err := AnalyzePath(p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
