// Package sta is a miniature static timing analyzer for gate + RC-net
// paths, built entirely on the paper's guarantees:
//
//   - each cell's delay/output-slew comes from its characterization
//     tables via effective-capacitance reduction (package gate);
//   - each net's sink delay is bracketed by the generalized-input
//     Elmore bounds (Corollary 2: the cell's output ramp has a
//     unimodal, symmetric derivative, so T_D is a hard upper bound and
//     mu-sigma a hard lower bound);
//   - sink transition times propagate by Appendix-B variance addition:
//     the output edge's derivative variance is the input's plus the
//     net's mu2, re-expressed as an equivalent saturated ramp.
//
// The result is a path arrival window [LB, UB] that is *certified* on
// the net segments — the part of timing that the Elmore theory covers —
// with table-accurate gate contributions.
package sta

import (
	"context"
	"fmt"
	"math"

	"elmore/internal/gate"
	"elmore/internal/moments"
	"elmore/internal/pimodel"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// Stage is one gate driving one net; Sink names the net node that
// feeds the next stage (or the path endpoint).
type Stage struct {
	Cell *gate.Cell
	Net  *rctree.Tree
	Sink string
}

// Path is a chain of stages excited by an initial edge.
type Path struct {
	InputSlew float64 // transition time of the edge entering stage 0
	Stages    []Stage
}

// StageResult carries one stage's timing contributions.
type StageResult struct {
	Cell string
	Sink string

	Ceff       float64 // effective capacitance the cell saw
	GateDelay  float64 // table delay at (input slew, Ceff)
	OutputSlew float64 // ramp the cell launches into the net

	NetElmore float64 // T_D at the sink: the net-delay upper bound
	NetLower  float64 // mu-sigma net-delay lower bound
	SinkSlew  float64 // equivalent ramp duration at the sink
	ArrivalUB float64 // cumulative upper bound after this stage
	ArrivalLB float64 // cumulative lower bound after this stage
}

// PathResult is the full path analysis.
type PathResult struct {
	Stages    []StageResult
	ArrivalUB float64
	ArrivalLB float64
}

// AnalyzePath walks the path, propagating arrival bounds and slew.
func AnalyzePath(p Path) (*PathResult, error) {
	return AnalyzePathContext(context.Background(), p)
}

// MomentSource supplies the moment set (of at least the given order)
// for one net. It is the seam through which a batch engine injects a
// shared, fingerprint-keyed cache; when nil, moments.Compute runs per
// stage as before.
type MomentSource func(ctx context.Context, t *rctree.Tree, order int) (*moments.Set, error)

// AnalyzePathContext is AnalyzePath under a context: when the context
// carries a telemetry tracer the path walk is recorded as a span with
// one child span per stage, and path/stage counts flow into the metrics
// registry. Cancellation/expiry of the context is observed at stage
// boundaries.
func AnalyzePathContext(ctx context.Context, p Path) (*PathResult, error) {
	return AnalyzePathMoments(ctx, p, nil)
}

// AnalyzePathMoments is AnalyzePathContext with an optional moment
// source for the per-net moment sets (nil means compute them fresh).
func AnalyzePathMoments(ctx context.Context, p Path, src MomentSource) (*PathResult, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("sta: path needs at least one stage")
	}
	if p.InputSlew < 0 || math.IsNaN(p.InputSlew) {
		return nil, fmt.Errorf("sta: invalid input slew %v", p.InputSlew)
	}
	ctx, sp := telemetry.Start(ctx, "sta.analyze_path")
	sp.AttrInt("stages", int64(len(p.Stages)))
	defer sp.End()
	res := &PathResult{}
	slew := p.InputSlew
	var ub, lb float64
	for si, st := range p.Stages {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sta: stage %d: %w", si, err)
		}
		if st.Net == nil || st.Cell == nil {
			return nil, fmt.Errorf("sta: stage %d incomplete", si)
		}
		sctx, ssp := telemetry.Start(ctx, "sta.stage")
		ssp.AttrInt("index", int64(si))
		ssp.AttrString("sink", st.Sink)
		stageRes, err := analyzeStage(sctx, si, st, slew, src)
		if stageRes != nil {
			ssp.AttrString("cell", stageRes.Cell)
		}
		ssp.End()
		if err != nil {
			return nil, err
		}
		stageRes.ArrivalUB = ub + stageRes.GateDelay + stageRes.NetElmore
		stageRes.ArrivalLB = lb + stageRes.GateDelay + stageRes.NetLower
		ub = stageRes.ArrivalUB
		lb = stageRes.ArrivalLB
		res.Stages = append(res.Stages, *stageRes)
		slew = stageRes.SinkSlew
	}
	res.ArrivalUB = ub
	res.ArrivalLB = lb
	telemetry.C("sta.paths").Inc()
	telemetry.C("sta.stages").Add(int64(len(p.Stages)))
	return res, nil
}

// analyzeStage computes one stage's timing contributions; arrival
// bounds are accumulated by the caller.
func analyzeStage(ctx context.Context, si int, st Stage, slew float64, src MomentSource) (*StageResult, error) {
	sink, ok := st.Net.Index(st.Sink)
	if !ok {
		return nil, fmt.Errorf("sta: stage %d: net has no node %q", si, st.Sink)
	}
	load, err := pimodel.ForInput(st.Net)
	if err != nil {
		return nil, fmt.Errorf("sta: stage %d: %w", si, err)
	}
	drv, err := st.Cell.DriveLoad(slew, load)
	if err != nil {
		return nil, fmt.Errorf("sta: stage %d: %w", si, err)
	}

	var ms *moments.Set
	if src != nil {
		ms, err = src(ctx, st.Net, 2)
	} else {
		ms, err = moments.Compute(st.Net, 2)
	}
	if err != nil {
		return nil, fmt.Errorf("sta: stage %d: %w", si, err)
	}
	if ms == nil || ms.Order() < 2 || ms.Tree().N() != st.Net.N() {
		return nil, fmt.Errorf("sta: stage %d: moment source returned an unusable set", si)
	}
	td := ms.Elmore(sink)
	mu2 := ms.Mu2(sink)
	tr := drv.OutputSlew

	// Net delay bounds for a saturated-ramp input of duration tr
	// (Corollary 2 upper; Corollary 1 generalized lower). The
	// input's 50% point is tr/2.
	inMu2 := tr * tr / 12
	outSigma := math.Sqrt(mu2 + inMu2)
	netLower := math.Max(td+tr/2-outSigma, 0) - tr/2
	if netLower < 0 {
		netLower = 0
	}

	// Sink transition: variance addition re-expressed as a ramp.
	sinkSlew := math.Sqrt(tr*tr + 12*mu2)

	return &StageResult{
		Cell:       st.Cell.Name,
		Sink:       st.Sink,
		Ceff:       drv.Ceff,
		GateDelay:  drv.Delay,
		OutputSlew: tr,
		NetElmore:  td,
		NetLower:   netLower,
		SinkSlew:   sinkSlew,
	}, nil
}
