// Package route turns net geometry into RC trees — the use case the
// paper's introduction cites for the Elmore metric: "it is used during
// logic synthesis to estimate wiring delays for approximate Steiner or
// spanning tree routes [and] during performance driven placement and
// routing because it is the only delay metric which is easily measured
// in terms of net widths and lengths".
//
// A Net is a driver pin plus sink pins in a Manhattan routing plane.
// Two classic estimation topologies are provided: the rectilinear
// minimum spanning tree (Prim under L1 distance, edges realized as
// L-shapes) and the single-trunk comb. Either topology converts to an
// RC tree by pi-lumping each wire segment with per-unit-length
// parasitics, after which every analysis in this repository applies.
package route

import (
	"fmt"
	"math"
	"sort"

	"elmore/internal/rctree"
)

// Pin is a named connection point. X and Y are in layout units
// (typically microns); C is the pin's load capacitance (farads), used
// for sinks.
type Pin struct {
	Name string
	X, Y float64
	C    float64
}

// Net is a driver and its sinks. DriverR is the driving cell's
// effective output resistance (ohms); it becomes the root resistance of
// the RC tree.
type Net struct {
	Driver  Pin
	DriverR float64
	Sinks   []Pin
}

// Validate checks the net is well-formed: positive driver resistance,
// at least one sink, unique names, finite coordinates, nonnegative pin
// capacitance.
func (n Net) Validate() error {
	if n.DriverR <= 0 || math.IsNaN(n.DriverR) || math.IsInf(n.DriverR, 0) {
		return fmt.Errorf("route: driver resistance must be positive and finite, got %v", n.DriverR)
	}
	if len(n.Sinks) == 0 {
		return fmt.Errorf("route: net needs at least one sink")
	}
	seen := map[string]bool{}
	for _, p := range append([]Pin{n.Driver}, n.Sinks...) {
		if p.Name == "" {
			return fmt.Errorf("route: every pin needs a name")
		}
		if seen[p.Name] {
			return fmt.Errorf("route: duplicate pin name %q", p.Name)
		}
		seen[p.Name] = true
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("route: pin %q has non-finite coordinates", p.Name)
		}
		if p.C < 0 || math.IsNaN(p.C) {
			return fmt.Errorf("route: pin %q has invalid capacitance %v", p.Name, p.C)
		}
	}
	return nil
}

// HPWL returns the half-perimeter wirelength of the net's bounding box
// — the classic lower bound on rectilinear Steiner wirelength.
func (n Net) HPWL() float64 {
	minX, maxX := n.Driver.X, n.Driver.X
	minY, maxY := n.Driver.Y, n.Driver.Y
	for _, p := range n.Sinks {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// point is a routed tree vertex.
type point struct {
	name string
	x, y float64
	c    float64 // pin load (0 for Steiner/corner points)
}

// edge connects point child to point parent (toward the driver).
type edge struct {
	parent, child int
	length        float64
}

// Topology is a routed net: a geometric tree of wire segments rooted at
// the driver.
type Topology struct {
	points []point
	edges  []edge // child-sorted topological order: parent appears as point before child edge processed
}

// Wirelength returns total routed wire length.
func (t *Topology) Wirelength() float64 {
	var sum float64
	for _, e := range t.edges {
		sum += e.length
	}
	return sum
}

// Points returns the number of routed vertices (pins + corners).
func (t *Topology) Points() int { return len(t.points) }

func manhattan(a, b point) float64 {
	return math.Abs(a.x-b.x) + math.Abs(a.y-b.y)
}

// MST routes the net as a rectilinear minimum spanning tree (Prim's
// algorithm under Manhattan distance, rooted at the driver). Each tree
// edge is realized as an L-shape (horizontal then vertical) with a
// corner vertex, so the resulting RC tree has physical wire lengths.
func MST(n Net) (*Topology, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	pts := []point{{n.Driver.Name, n.Driver.X, n.Driver.Y, 0}}
	for _, s := range n.Sinks {
		pts = append(pts, point{s.Name, s.X, s.Y, s.C})
	}
	inTree := make([]bool, len(pts))
	parent := make([]int, len(pts))
	dist := make([]float64, len(pts))
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = 0
	}
	inTree[0] = true
	for i := 1; i < len(pts); i++ {
		dist[i] = manhattan(pts[i], pts[0])
	}
	topo := &Topology{points: pts}
	for count := 1; count < len(pts); count++ {
		best := -1
		for i := range pts {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		topo.addL(parent[best], best)
		for i := range pts {
			if !inTree[i] {
				if d := manhattan(pts[i], pts[best]); d < dist[i] {
					dist[i] = d
					parent[i] = best
				}
			}
		}
	}
	return topo, nil
}

// addL connects child to parent with an L-shaped route, inserting a
// corner vertex when both coordinates differ.
func (t *Topology) addL(parent, child int) {
	p, c := t.points[parent], t.points[child]
	dx := math.Abs(p.x - c.x)
	dy := math.Abs(p.y - c.y)
	switch {
	case dx == 0 && dy == 0:
		// Coincident points: a zero-length edge would break the RC
		// conversion; connect through a minimal stub handled at
		// conversion time.
		t.edges = append(t.edges, edge{parent, child, 0})
	case dx == 0 || dy == 0:
		t.edges = append(t.edges, edge{parent, child, dx + dy})
	default:
		corner := point{fmt.Sprintf("%s_corner", c.name), c.x, p.y, 0}
		t.points = append(t.points, corner)
		ci := len(t.points) - 1
		t.edges = append(t.edges, edge{parent, ci, dx})
		t.edges = append(t.edges, edge{ci, child, dy})
	}
}

// Trunk routes the net as a single-trunk comb: a vertical trunk at the
// driver's x spanning the sinks' y range, with horizontal branches to
// each sink — the other classic pre-route estimation topology.
func Trunk(n Net) (*Topology, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	pts := []point{{n.Driver.Name, n.Driver.X, n.Driver.Y, 0}}
	topo := &Topology{points: pts}

	// Tap points on the trunk, one per distinct sink y (plus the driver
	// y), sorted so the trunk is a chain outward from the driver.
	ys := map[float64]bool{}
	for _, s := range n.Sinks {
		ys[s.Y] = true
	}
	var above, below []float64
	for y := range ys {
		if y >= n.Driver.Y {
			above = append(above, y)
		} else {
			below = append(below, y)
		}
	}
	sort.Float64s(above)
	sort.Sort(sort.Reverse(sort.Float64Slice(below)))
	tapAt := map[float64]int{n.Driver.Y: 0}
	build := func(ylist []float64) {
		prev := 0
		prevY := n.Driver.Y
		for _, y := range ylist {
			if y == n.Driver.Y {
				tapAt[y] = 0
				continue
			}
			topo.points = append(topo.points, point{fmt.Sprintf("trunk_y%g", y), n.Driver.X, y, 0})
			idx := len(topo.points) - 1
			topo.edges = append(topo.edges, edge{prev, idx, math.Abs(y - prevY)})
			tapAt[y] = idx
			prev = idx
			prevY = y
		}
	}
	build(above)
	build(below)

	for _, s := range n.Sinks {
		topo.points = append(topo.points, point{s.Name, s.X, s.Y, s.C})
		si := len(topo.points) - 1
		topo.edges = append(topo.edges, edge{tapAt[s.Y], si, math.Abs(s.X - n.Driver.X)})
	}
	return topo, nil
}

// Parasitics converts geometry to electrical values.
type Parasitics struct {
	// ROhmPerUnit and CFaradPerUnit are wire resistance/capacitance per
	// layout unit of length.
	ROhmPerUnit   float64
	CFaradPerUnit float64
	// MaxSegment is the longest wire run lumped into a single pi
	// section; longer edges are subdivided. <= 0 means one section per
	// edge.
	MaxSegment float64
}

func (p Parasitics) validate() error {
	if p.ROhmPerUnit <= 0 || p.CFaradPerUnit <= 0 {
		return fmt.Errorf("route: per-unit parasitics must be positive (r=%v, c=%v)", p.ROhmPerUnit, p.CFaradPerUnit)
	}
	return nil
}

// RCTree lumps the routed topology into an RC tree: each wire edge
// becomes ceil(len/MaxSegment) pi sections (half the section's wire
// capacitance at each end), pin loads are added at sink vertices, and
// the driver's output resistance drives the root. Vertex names are
// preserved.
func (t *Topology) RCTree(driverR float64, p Parasitics) (*rctree.Tree, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if driverR <= 0 {
		return nil, fmt.Errorf("route: driver resistance must be positive, got %v", driverR)
	}
	// minStub realizes zero-length connections (coincident pins) with a
	// negligible resistance instead of an illegal zero.
	const minStub = 1e-6

	b := rctree.NewBuilder()
	id := make([]int, len(t.points))
	for i := range id {
		id[i] = -1
	}
	// The driver vertex itself becomes the tree root node, connected to
	// the source through driverR, carrying its accumulated half-caps.
	id[0] = b.MustRoot(t.points[0].name, driverR, 0)

	// Edges were appended parent-first (MST adds each vertex after its
	// parent; Trunk builds trunk then branches), so a single pass works.
	for _, e := range t.edges {
		if id[e.parent] < 0 {
			return nil, fmt.Errorf("route: internal error: edge parent %d not yet built", e.parent)
		}
		length := e.length
		if length == 0 {
			child := t.points[e.child]
			nid, err := b.Attach(id[e.parent], child.name, minStub, child.c)
			if err != nil {
				return nil, err
			}
			id[e.child] = nid
			continue
		}
		sections := 1
		if p.MaxSegment > 0 {
			sections = int(math.Ceil(length / p.MaxSegment))
		}
		segLen := length / float64(sections)
		segR := p.ROhmPerUnit * segLen
		segC := p.CFaradPerUnit * segLen
		prev := id[e.parent]
		// Pi lumping: the half-capacitance of the first section belongs
		// to the (already built) parent vertex.
		if err := b.AddCap(prev, segC/2); err != nil {
			return nil, err
		}
		for s := 1; s <= sections; s++ {
			isLast := s == sections
			var name string
			nodeC := segC // pi: half from this section's far end + half from next section's near end
			if isLast {
				child := t.points[e.child]
				name = child.name
				nodeC = segC/2 + child.c
			} else {
				name = fmt.Sprintf("%s_w%d", t.points[e.child].name, s)
			}
			nid, err := b.Attach(prev, name, segR, nodeC)
			if err != nil {
				return nil, err
			}
			prev = nid
			if isLast {
				id[e.child] = nid
			}
		}
	}
	return b.Build()
}
