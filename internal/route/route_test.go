package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"elmore/internal/moments"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func twoPinNet(length float64, loadC float64) Net {
	return Net{
		Driver:  Pin{Name: "drv", X: 0, Y: 0},
		DriverR: 100,
		Sinks:   []Pin{{Name: "sink", X: length, Y: 0, C: loadC}},
	}
}

func TestValidate(t *testing.T) {
	good := twoPinNet(10, 1e-15)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Net{
		{Driver: Pin{Name: "d"}, DriverR: 0, Sinks: []Pin{{Name: "s", X: 1}}},
		{Driver: Pin{Name: "d"}, DriverR: 10},
		{Driver: Pin{Name: "d"}, DriverR: 10, Sinks: []Pin{{Name: "d", X: 1}}},
		{Driver: Pin{Name: ""}, DriverR: 10, Sinks: []Pin{{Name: "s", X: 1}}},
		{Driver: Pin{Name: "d"}, DriverR: 10, Sinks: []Pin{{Name: "s", X: math.NaN()}}},
		{Driver: Pin{Name: "d"}, DriverR: 10, Sinks: []Pin{{Name: "s", X: 1, C: -1}}},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestHPWL(t *testing.T) {
	n := Net{
		Driver:  Pin{Name: "d", X: 0, Y: 0},
		DriverR: 10,
		Sinks:   []Pin{{Name: "a", X: 3, Y: 4}, {Name: "b", X: -1, Y: 2}},
	}
	if got := n.HPWL(); got != 8 { // x span 4 + y span 4
		t.Errorf("HPWL = %v, want 8", got)
	}
}

func TestMSTTwoPin(t *testing.T) {
	topo, err := MST(twoPinNet(100, 2e-15))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Wirelength() != 100 {
		t.Errorf("wirelength = %v", topo.Wirelength())
	}
	if topo.Points() != 2 {
		t.Errorf("points = %d", topo.Points())
	}
}

func TestMSTLShape(t *testing.T) {
	n := Net{
		Driver:  Pin{Name: "d", X: 0, Y: 0},
		DriverR: 50,
		Sinks:   []Pin{{Name: "s", X: 30, Y: 40, C: 1e-15}},
	}
	topo, err := MST(n)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Wirelength() != 70 {
		t.Errorf("wirelength = %v, want 70 (L-shape)", topo.Wirelength())
	}
	if topo.Points() != 3 { // driver, corner, sink
		t.Errorf("points = %d, want 3", topo.Points())
	}
}

// The two-pin pi-lumped line reproduces the closed-form Elmore delay
// T_D = Rd*(Cw + CL) + Rw*(Cw/2 + CL) *independent of the lump count*
// — the well-known property of pi segmentation.
func TestTwoPinElmoreClosedForm(t *testing.T) {
	const (
		length = 200.0
		rUnit  = 0.5     // ohm/um
		cUnit  = 0.2e-15 // F/um
		loadC  = 10e-15
		rd     = 120.0
	)
	rw := rUnit * length
	cw := cUnit * length
	want := rd*(cw+loadC) + rw*(cw/2+loadC)
	for _, maxSeg := range []float64{0, 200, 50, 7, 1} {
		topo, err := MST(twoPinNet(length, loadC))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := topo.RCTree(rd, Parasitics{ROhmPerUnit: rUnit, CFaradPerUnit: cUnit, MaxSegment: maxSeg})
		if err != nil {
			t.Fatal(err)
		}
		td := moments.ElmoreDelays(tree)
		sink := tree.MustIndex("sink")
		if !approx(td[sink], want, 1e-12) {
			t.Errorf("maxSeg=%v: T_D = %v, want %v", maxSeg, td[sink], want)
		}
		if !approx(tree.TotalC(), cw+loadC, 1e-12) {
			t.Errorf("maxSeg=%v: total C = %v, want %v", maxSeg, tree.TotalC(), cw+loadC)
		}
	}
}

func TestTrunkComb(t *testing.T) {
	n := Net{
		Driver:  Pin{Name: "d", X: 10, Y: 0},
		DriverR: 80,
		Sinks: []Pin{
			{Name: "s1", X: 0, Y: 20, C: 1e-15},
			{Name: "s2", X: 25, Y: 20, C: 1e-15}, // same y: shares the tap
			{Name: "s3", X: 10, Y: -15, C: 1e-15},
		},
	}
	topo, err := Trunk(n)
	if err != nil {
		t.Fatal(err)
	}
	// Trunk: 20 (up) + 15 (down); branches: 10 + 15 + 0.
	if got := topo.Wirelength(); got != 60 {
		t.Errorf("wirelength = %v, want 60", got)
	}
	tree, err := topo.RCTree(n.DriverR, Parasitics{ROhmPerUnit: 1, CFaradPerUnit: 1e-16, MaxSegment: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range n.Sinks {
		if _, ok := tree.Index(s.Name); !ok {
			t.Errorf("sink %s missing from RC tree", s.Name)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoincidentPins(t *testing.T) {
	n := Net{
		Driver:  Pin{Name: "d", X: 0, Y: 0},
		DriverR: 10,
		Sinks:   []Pin{{Name: "s", X: 0, Y: 0, C: 1e-15}},
	}
	topo, err := MST(n)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := topo.RCTree(10, Parasitics{ROhmPerUnit: 1, CFaradPerUnit: 1e-16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.Index("s"); !ok {
		t.Errorf("coincident sink missing")
	}
}

func TestRCTreeErrors(t *testing.T) {
	topo, err := MST(twoPinNet(10, 1e-15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RCTree(0, Parasitics{ROhmPerUnit: 1, CFaradPerUnit: 1e-16}); err == nil {
		t.Errorf("zero driver R should fail")
	}
	if _, err := topo.RCTree(10, Parasitics{}); err == nil {
		t.Errorf("zero parasitics should fail")
	}
}

func randomNet(rng *rand.Rand, sinks int) Net {
	n := Net{
		Driver:  Pin{Name: "drv", X: rng.Float64() * 100, Y: rng.Float64() * 100},
		DriverR: 50 + rng.Float64()*200,
	}
	for i := 0; i < sinks; i++ {
		n.Sinks = append(n.Sinks, Pin{
			Name: "s" + string(rune('a'+i)),
			X:    rng.Float64() * 100,
			Y:    rng.Float64() * 100,
			C:    1e-15 * (1 + rng.Float64()*9),
		})
	}
	return n
}

// Properties on random nets: both routers connect every sink; MST and
// trunk wirelength are >= HPWL (both contain a path across the
// bounding box); the RC conversion preserves total capacitance
// (wire + pins) for both.
func TestRoutersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNet(rng, 1+rng.Intn(8))
		par := Parasitics{ROhmPerUnit: 0.4, CFaradPerUnit: 2e-16, MaxSegment: 10}
		for _, router := range []func(Net) (*Topology, error){MST, Trunk} {
			topo, err := router(n)
			if err != nil {
				return false
			}
			tree, err := topo.RCTree(n.DriverR, par)
			if err != nil {
				return false
			}
			if err := tree.Validate(); err != nil {
				return false
			}
			pinC := 0.0
			for _, s := range n.Sinks {
				if _, ok := tree.Index(s.Name); !ok {
					return false
				}
				pinC += s.C
			}
			wantC := pinC + topo.Wirelength()*par.CFaradPerUnit
			if !approx(tree.TotalC(), wantC, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// MST wirelength never exceeds trunk wirelength by more than the known
// worst-case factor, and both are at least the largest driver-to-sink
// Manhattan distance.
func TestWirelengthSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNet(rng, 2+rng.Intn(6))
		mst, err := MST(n)
		if err != nil {
			return false
		}
		trunk, err := Trunk(n)
		if err != nil {
			return false
		}
		maxDist := 0.0
		for _, s := range n.Sinks {
			d := math.Abs(s.X-n.Driver.X) + math.Abs(s.Y-n.Driver.Y)
			maxDist = math.Max(maxDist, d)
		}
		return mst.Wirelength() >= maxDist-1e-9 && trunk.Wirelength() >= maxDist-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Sharing matters: for sinks stacked on one column, the trunk reuses
// the vertical run while the MST (with L-shapes, no sharing analysis)
// is no shorter.
func TestTrunkSharesColumn(t *testing.T) {
	n := Net{
		Driver:  Pin{Name: "d", X: 0, Y: 0},
		DriverR: 10,
		Sinks: []Pin{
			{Name: "s1", X: 5, Y: 10, C: 1e-15},
			{Name: "s2", X: 5, Y: 20, C: 1e-15},
			{Name: "s3", X: 5, Y: 30, C: 1e-15},
		},
	}
	trunk, err := Trunk(n)
	if err != nil {
		t.Fatal(err)
	}
	// Trunk: 30 vertical + 3x5 horizontal = 45.
	if got := trunk.Wirelength(); got != 45 {
		t.Errorf("trunk wirelength = %v, want 45", got)
	}
}
