package awe

import (
	"fmt"
	"math"

	"elmore/internal/signal"
)

// StepIntegral returns integral_0^t VStep(τ) dτ in closed form — the
// unit-slope ramp response of the reduced model, mirroring the exact
// engine's API so reduced models can drive the same measurements.
func (a *Approx) StepIntegral(t float64) float64 {
	if t <= 0 {
		return 0
	}
	sum := a.DCGain() * t
	for j := range a.Poles {
		kOverP := a.Residues[j] / a.Poles[j]
		sum -= kOverP / a.Poles[j] * (1 - math.Exp(-a.Poles[j]*t))
	}
	return sum
}

// VPWL evaluates the model's response to a monotone piecewise-linear
// input as a superposition of shifted ramp responses.
func (a *Approx) VPWL(p *signal.PWL, t float64) float64 {
	pts := p.Points
	var out float64
	for k := 0; k+1 < len(pts); k++ {
		slope := (pts[k+1].V - pts[k].V) / (pts[k+1].T - pts[k].T)
		if slope == 0 {
			continue
		}
		out += slope * (a.StepIntegral(t-pts[k].T) - a.StepIntegral(t-pts[k+1].T))
	}
	return out
}

// Delay measures the model's 50% delay for a signal: output crossing
// minus input crossing. Steps use the closed-form step response; other
// signals are converted to PWL with pwlSegments segments (256 if <= 0).
func (a *Approx) Delay(sig signal.Signal, pwlSegments int) (float64, error) {
	if _, isStep := sig.(signal.Step); isStep {
		return a.Delay50()
	}
	if pwlSegments <= 0 {
		pwlSegments = 256
	}
	p, err := signal.ToPWL(sig, pwlSegments)
	if err != nil {
		return 0, fmt.Errorf("awe: %w", err)
	}
	level := 0.5 * a.DCGain()
	f := func(t float64) float64 { return a.VPWL(p, t) - level }
	start := p.Points[0].T
	hi := p.Points[len(p.Points)-1].T + 1/a.Poles[0]
	found := false
	for k := 0; k < 200; k++ {
		if f(hi) > 0 {
			found = true
			break
		}
		hi = start + 2*(hi-start)
	}
	if !found {
		return 0, fmt.Errorf("awe: PWL response never reaches 50%%")
	}
	lo := start
	for k := 0; k < 200; k++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5*(lo+hi) - p.Cross(0.5), nil
}
