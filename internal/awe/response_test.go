package awe

import (
	"math"
	"testing"

	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/signal"
	"elmore/internal/topo"
)

func TestStepIntegralSinglePole(t *testing.T) {
	td := 1e-9
	a, err := SinglePole(td)
	if err != nil {
		t.Fatal(err)
	}
	// integral (1 - e^{-t/td}) = t - td (1 - e^{-t/td}).
	for _, tt := range []float64{0.3e-9, 1e-9, 5e-9} {
		want := tt - td*(1-math.Exp(-tt/td))
		if got := a.StepIntegral(tt); !approx(got, want, 1e-12) {
			t.Errorf("StepIntegral(%v) = %v, want %v", tt, got, want)
		}
	}
	if a.StepIntegral(-1) != 0 {
		t.Errorf("negative time should give 0")
	}
}

// A full-order AWE fit of the Fig. 1 circuit reproduces the exact
// engine's ramp responses and delays almost perfectly — they are both
// pole/residue forms of (nearly) the same system.
func TestRampResponsesMatchExact(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := moments.Compute(tree, 8)
	if err != nil {
		t.Fatal(err)
	}
	node := tree.MustIndex("C5")
	a, err := FitStable(ms, node, 4)
	if err != nil {
		t.Fatal(err)
	}
	ramp := signal.SaturatedRamp{Tr: 1e-9}
	p, err := signal.ToPWL(ramp, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.3e-9, 1e-9, 2e-9, 4e-9} {
		if got, want := a.VPWL(p, tt), sys.VPWL(node, p, tt); !approx(got, want, 1e-3) {
			t.Errorf("VPWL(%v) = %v, want %v", tt, got, want)
		}
	}
	dA, err := a.Delay(ramp, 0)
	if err != nil {
		t.Fatal(err)
	}
	dE, err := sys.Delay(node, ramp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(dA, dE, 1e-3) {
		t.Errorf("ramp delay: awe %v vs exact %v", dA, dE)
	}
}

func TestDelayDispatch(t *testing.T) {
	a, err := SinglePole(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	dStep, err := a.Delay(signal.Step{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(dStep, 1e-9*math.Ln2, 1e-9) {
		t.Errorf("step delay = %v", dStep)
	}
	// Ramp delay exceeds step delay and stays below T_D (the single-pole
	// model inherits the bound behaviour).
	dRamp, err := a.Delay(signal.SaturatedRamp{Tr: 2e-9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dRamp <= dStep || dRamp > 1e-9 {
		t.Errorf("ramp delay %v out of (step %v, T_D 1n]", dRamp, dStep)
	}
	// Smooth inputs go through PWL conversion.
	if _, err := a.Delay(signal.RaisedCosine{Tr: 1e-9}, 64); err != nil {
		t.Errorf("raised cosine: %v", err)
	}
}
