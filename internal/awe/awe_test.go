package awe

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/topo"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

func singleRCSet(t *testing.T, r, c float64, order int) *moments.Set {
	t.Helper()
	b := rctree.NewBuilder()
	b.MustRoot("n1", r, c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := moments.Compute(tree, order)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestOnePoleRecoversSingleRC(t *testing.T) {
	const r, c = 1000.0, 1e-12
	rc := r * c
	ms := singleRCSet(t, r, c, 2)
	a, err := FitNode(ms, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Order() != 1 || !approx(a.Poles[0], 1/rc, 1e-9) {
		t.Fatalf("poles = %v, want [%v]", a.Poles, 1/rc)
	}
	if !approx(a.DCGain(), 1, 1e-9) {
		t.Errorf("DC gain = %v", a.DCGain())
	}
	d, err := a.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, rc*math.Ln2, 1e-9) {
		t.Errorf("delay = %v, want %v", d, rc*math.Ln2)
	}
}

func TestFitErrors(t *testing.T) {
	ms := singleRCSet(t, 1000, 1e-12, 2)
	if _, err := FitNode(ms, 0, 0); err == nil {
		t.Errorf("order 0 should error")
	}
	if _, err := FitNode(ms, 0, 3); err == nil {
		t.Errorf("too few moments should error")
	}
	if _, err := SinglePole(0); err == nil {
		t.Errorf("SinglePole(0) should error")
	}
	if _, err := FitStable(ms, 0, 0); err == nil {
		t.Errorf("FitStable order 0 should error")
	}
}

func TestSinglePoleModel(t *testing.T) {
	td := 1.2e-9
	a, err := SinglePole(td)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d, td*math.Ln2, 1e-9) {
		t.Errorf("single-pole delay = %v, want ln2*T_D = %v", d, td*math.Ln2)
	}
	if !approx(a.Moment(1), -td, 1e-9) {
		t.Errorf("m1 = %v, want %v", a.Moment(1), -td)
	}
}

// A q-pole fit must reproduce the first 2q moments it was fitted to.
func TestMomentMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := topo.RandomSmall(seed, 20)
		ms, err := moments.Compute(tree, 6)
		if err != nil {
			return false
		}
		for i := 0; i < tree.N(); i++ {
			for _, q := range []int{1, 2, 3} {
				a, err := FitNode(ms, i, q)
				if err != nil {
					continue // occasional unstable high-order fits are expected
				}
				for k := 0; k < 2*q; k++ {
					if !approx(a.Moment(k), ms.M(k, i), 1e-5) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Exact poles of a 2-node tree are recovered by a 2-pole fit.
func TestTwoPoleRecoversExactPoles(t *testing.T) {
	b := rctree.NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12)
	b.MustAttach(n1, "n2", 300, 2e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := moments.Compute(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a, err := FitNode(ms, i, 2)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		for j := 0; j < 2; j++ {
			if !approx(a.Poles[j], sys.Poles()[j], 1e-6) {
				t.Errorf("node %d pole %d = %v, want %v", i, j, a.Poles[j], sys.Poles()[j])
			}
		}
		// The 2-pole model of a 2-pole system is exact everywhere.
		for _, tt := range []float64{1e-10, 5e-10, 2e-9} {
			if !approx(a.VStep(tt), sys.VStep(i, tt), 1e-6) {
				t.Errorf("node %d VStep(%v) = %v, want %v", i, tt, a.VStep(tt), sys.VStep(i, tt))
			}
		}
	}
}

// Higher-order AWE delays beat the Elmore estimate against the exact
// 50% delay on the Fig. 1 circuit (the paper's motivation for moment
// matching when more moments are available).
func TestHigherOrderBeatsElmoreFig1(t *testing.T) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := moments.Compute(tree, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C1", "C5", "C7"} {
		i := tree.MustIndex(name)
		actual, err := sys.Delay50Step(i)
		if err != nil {
			t.Fatal(err)
		}
		a, err := FitStable(ms, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		d, err := a.Delay50()
		if err != nil {
			t.Fatal(err)
		}
		elmoreErr := math.Abs(ms.Elmore(i) - actual)
		aweErr := math.Abs(d - actual)
		if aweErr > elmoreErr {
			t.Errorf("%s: order-%d AWE error %v worse than Elmore error %v",
				name, a.Order(), aweErr, elmoreErr)
		}
		if aweErr > 0.05*actual {
			t.Errorf("%s: AWE delay %v vs actual %v (>5%% off)", name, d, actual)
		}
	}
}

func TestFitStableFallsBack(t *testing.T) {
	// A single-RC node has exactly one pole; order-3 must fall back.
	ms := singleRCSet(t, 1000, 1e-12, 6)
	a, err := FitStable(ms, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Order() != 1 {
		t.Errorf("order = %d, want fallback to 1", a.Order())
	}
}

func TestCrossStepErrors(t *testing.T) {
	a, err := SinglePole(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CrossStep(0); err == nil {
		t.Errorf("level 0 should error")
	}
	if _, err := a.CrossStep(2); err == nil {
		t.Errorf("level above DC gain should error")
	}
}

func TestImpulseNonNegativeSingle(t *testing.T) {
	a, err := SinglePole(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Impulse(-1) != 0 {
		t.Errorf("Impulse before t=0 should be 0")
	}
	if a.Impulse(0) <= 0 || a.Impulse(1e-9) <= 0 {
		t.Errorf("Impulse should be positive")
	}
}
