// Package awe implements asymptotic waveform evaluation (Pillage &
// Rohrer 1990): fitting a q-pole reduced-order model to the first 2q
// transfer-function moments of an RC tree node. The paper positions AWE
// as the higher-accuracy alternative once more moments are available
// ("moment matching techniques ... are preferable when higher order
// moments are available"); this package provides that comparison point
// for the benchmark harness, including the classical two-pole model.
package awe

import (
	"fmt"
	"math"

	"elmore/internal/linalg"
	"elmore/internal/moments"
	"elmore/internal/poly"
	"elmore/internal/telemetry"
)

// Approx is a stable q-pole approximation of a node transfer function:
//
//	H(s) ≈ sum_j Residues[j] / (s + Poles[j]),  Poles[j] > 0,
//
// normalized so the DC gain sum_j Residues[j]/Poles[j] equals the
// matched m0 (1 for RC tree nodes).
type Approx struct {
	Poles    []float64 // > 0, ascending
	Residues []float64
}

// Order returns the number of poles.
func (a *Approx) Order() int { return len(a.Poles) }

// FitNode fits a q-pole model at node i from a moment set with order >=
// 2q. It returns an error if the Pade denominator produces unstable
// (non-positive or complex) poles — the classical AWE instability; use
// FitStable to fall back to lower orders automatically.
func FitNode(ms *moments.Set, i, q int) (*Approx, error) {
	if q < 1 {
		return nil, fmt.Errorf("awe: order must be >= 1, got %d", q)
	}
	if ms.Order() < 2*q {
		return nil, fmt.Errorf("awe: need %d moments for a %d-pole fit, have %d", 2*q, q, ms.Order())
	}
	// c_k = (-1)^k m_k = sum_j (k_j / p_j) (1/p_j)^k: a power-moment
	// sequence in x_j = 1/p_j with weights w_j = k_j x_j.
	c := make([]float64, 2*q)
	for k := 0; k < 2*q; k++ {
		v := ms.M(k, i)
		if k%2 == 1 {
			v = -v
		}
		c[k] = v
	}
	a, err := fit(c, q)
	if err != nil {
		telemetry.C("awe.unstable_fits").Inc()
		return nil, err
	}
	telemetry.C("awe.fits").Inc()
	return a, nil
}

// fit solves the Pade problem for the shifted moment sequence c.
func fit(c []float64, q int) (*Approx, error) {
	// Characteristic polynomial x^q + a_{q-1} x^{q-1} + ... + a_0 of the
	// x_j: solve the Hankel system sum_l a_l c_{n+l} = -c_{n+q}.
	h := linalg.NewMatrix(q, q)
	rhs := make([]float64, q)
	for n := 0; n < q; n++ {
		for l := 0; l < q; l++ {
			h.Set(n, l, c[n+l])
		}
		rhs[n] = -c[n+q]
	}
	a, err := linalg.SolveLU(h, rhs)
	if err != nil {
		return nil, fmt.Errorf("awe: singular Hankel system (moments too degenerate for order %d): %w", q, err)
	}
	coeffs := append(append([]float64(nil), a...), 1)
	roots, err := poly.New(coeffs...).RealRoots()
	if err != nil {
		return nil, fmt.Errorf("awe: unstable order-%d fit: %w", q, err)
	}
	polesRev := make([]float64, 0, q)
	for _, x := range roots {
		if x <= 0 {
			return nil, fmt.Errorf("awe: unstable order-%d fit: nonpositive time constant %g", q, x)
		}
		polesRev = append(polesRev, 1/x)
	}
	// roots ascending in x => poles descending; reverse to ascending.
	poles := make([]float64, q)
	for j := range polesRev {
		poles[q-1-j] = polesRev[j]
	}
	// Residues from the Vandermonde system sum_j w_j x_j^n = c_n,
	// n = 0..q-1, with w_j = k_j / p_j.
	vm := linalg.NewMatrix(q, q)
	for n := 0; n < q; n++ {
		for j := 0; j < q; j++ {
			vm.Set(n, j, math.Pow(1/poles[j], float64(n)))
		}
	}
	w, err := linalg.SolveLU(vm, c[:q])
	if err != nil {
		return nil, fmt.Errorf("awe: degenerate pole set at order %d: %w", q, err)
	}
	res := make([]float64, q)
	for j := range w {
		res[j] = w[j] * poles[j]
	}
	ap := &Approx{Poles: poles, Residues: res}
	// Self-check: an ill-conditioned Hankel/Vandermonde pair (nearly
	// coincident poles) can pass root-finding yet reproduce the matched
	// moments poorly. Reject such fits so FitStable falls back.
	for k := 0; k < 2*q; k++ {
		got := ap.Moment(k)
		want := c[k]
		if k%2 == 1 {
			want = -want
		}
		if math.Abs(got-want) > 1e-7*(math.Abs(got)+math.Abs(want)+1e-300) {
			return nil, fmt.Errorf("awe: order-%d fit is ill-conditioned (moment %d off by %g)",
				q, k, got-want)
		}
	}
	return ap, nil
}

// FitStable fits the highest stable order <= q, trying q, q-1, ..., 1.
// Order 1 (the dominant-pole / Elmore model) always succeeds for an RC
// tree node, so FitStable only fails on invalid inputs.
func FitStable(ms *moments.Set, i, q int) (*Approx, error) {
	if q < 1 {
		return nil, fmt.Errorf("awe: order must be >= 1, got %d", q)
	}
	var lastErr error
	for o := q; o >= 1; o-- {
		if ms.Order() < 2*o {
			continue
		}
		a, err := FitNode(ms, i, o)
		if err == nil {
			return a, nil
		}
		lastErr = err
		telemetry.C("awe.fallbacks").Inc()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("awe: moment set order %d too low for any fit", ms.Order())
	}
	return nil, lastErr
}

// SinglePole returns the paper's dominant-time-constant model (eq. 14):
// one pole at 1/T_D, unit DC gain. Its 50% delay is ln(2)*T_D.
func SinglePole(elmoreDelay float64) (*Approx, error) {
	if elmoreDelay <= 0 {
		return nil, fmt.Errorf("awe: Elmore delay must be positive, got %g", elmoreDelay)
	}
	p := 1 / elmoreDelay
	return &Approx{Poles: []float64{p}, Residues: []float64{p}}, nil
}

// DCGain returns sum_j k_j / p_j — should be 1 for RC tree fits.
func (a *Approx) DCGain() float64 {
	var g float64
	for j := range a.Poles {
		g += a.Residues[j] / a.Poles[j]
	}
	return g
}

// Moment returns the coefficient moment m_k reproduced by the model:
// m_k = (-1)^k sum_j k_j / p_j^{k+1}.
func (a *Approx) Moment(k int) float64 {
	var s float64
	for j := range a.Poles {
		s += a.Residues[j] / math.Pow(a.Poles[j], float64(k+1))
	}
	if k%2 == 1 {
		s = -s
	}
	return s
}

// VStep evaluates the model's unit step response at time t.
func (a *Approx) VStep(t float64) float64 {
	if t <= 0 {
		return 0
	}
	v := a.DCGain()
	for j := range a.Poles {
		v -= a.Residues[j] / a.Poles[j] * math.Exp(-a.Poles[j]*t)
	}
	return v
}

// Impulse evaluates the model's impulse response at time t.
func (a *Approx) Impulse(t float64) float64 {
	if t < 0 {
		return 0
	}
	var h float64
	for j := range a.Poles {
		h += a.Residues[j] * math.Exp(-a.Poles[j]*t)
	}
	return h
}

// CrossStep returns the time the model's step response first reaches
// the level (level in (0, DCGain)).
func (a *Approx) CrossStep(level float64) (float64, error) {
	gain := a.DCGain()
	if level <= 0 || level >= gain {
		return 0, fmt.Errorf("awe: level %v outside (0, %v)", level, gain)
	}
	f := func(t float64) float64 { return a.VStep(t) - level }
	hi := 1 / a.Poles[0]
	found := false
	for k := 0; k < 200; k++ {
		if f(hi) > 0 {
			found = true
			break
		}
		hi *= 2
	}
	if !found {
		return 0, fmt.Errorf("awe: response never reaches %v", level)
	}
	lo := 0.0
	for k := 0; k < 200; k++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// Delay50 returns the model's 50% step delay.
func (a *Approx) Delay50() (float64, error) { return a.CrossStep(0.5 * a.DCGain()) }
