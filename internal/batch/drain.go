package batch

// Graceful-drain support for long-running hosts of the batch engine
// (cmd/elmored). A Gate tracks in-flight batch runs: while open it
// admits them, after Shutdown it rejects new ones with ErrDraining,
// and Drain blocks until every admitted run has left — the
// stop-admitting / finish-in-flight half of a SIGTERM sequence. What
// happens to the in-flight runs themselves (finish naturally, or get
// their contexts cancelled so the journal re-queues them) is the
// host's choice; the Gate only answers "is anyone still inside?".

import (
	"context"
	"errors"
	"sync"
)

// ErrDraining is returned by Gate.Enter once Shutdown has been called:
// the host is stopping and admits no new work.
var ErrDraining = errors.New("batch: draining, not admitting new work")

// Gate is a drain barrier. The zero value is open and ready. Safe for
// concurrent use.
type Gate struct {
	mu       sync.Mutex
	draining bool
	inflight int
	settled  chan struct{} // created by Shutdown, closed at inflight==0
}

// Enter admits one unit of work while the gate is open, returning a
// leave function that must be called (once; extra calls are no-ops)
// when the work finishes. After Shutdown, Enter returns ErrDraining.
func (g *Gate) Enter() (leave func(), err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return nil, ErrDraining
	}
	g.inflight++
	var once sync.Once
	return func() { once.Do(g.leave) }, nil
}

// leave retires one admitted unit, settling the drain when it was the
// last one out.
func (g *Gate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 && g.settled != nil {
		close(g.settled)
		g.settled = nil
	}
}

// Shutdown closes the gate: subsequent Enter calls fail with
// ErrDraining. In-flight work is unaffected. Idempotent.
func (g *Gate) Shutdown() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return
	}
	g.draining = true
	g.settled = make(chan struct{})
	if g.inflight == 0 {
		close(g.settled)
		g.settled = nil
	}
}

// Drain closes the gate and blocks until every admitted unit has left
// or ctx expires (returning ctx's error, with work still in flight).
// Multiple callers may Drain concurrently; all unblock together.
func (g *Gate) Drain(ctx context.Context) error {
	g.Shutdown()
	g.mu.Lock()
	ch := g.settled
	g.mu.Unlock()
	if ch == nil {
		return nil // already settled
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has been called.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// InFlight reports the number of admitted units that have not left.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}
