package batch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"elmore/internal/telemetry"
)

// TestEngineMintsAndContinuesTrace: every job leaves the engine with a
// valid lineage — a fresh mint by default, or the exact trace a
// coordinator stamped on the Job (the multi-process hand-off path).
func TestEngineMintsAndContinuesTrace(t *testing.T) {
	good := chainNet(t, 5)
	preset := telemetry.MintTrace()
	jobs := []Job{
		netJob("fresh-a", good),
		netJob("fresh-b", good),
		{ID: "handed-off", Net: &NetJob{Tree: good}, Trace: preset},
	}
	e := &Engine{Workers: 2}
	results := e.Run(context.Background(), jobs)

	seen := make(map[string]bool)
	for _, r := range results {
		if !r.Trace.Valid() {
			t.Fatalf("job %q finished without a trace", r.ID)
		}
		id := r.Trace.TraceID()
		if seen[id] {
			t.Errorf("trace %s reused across jobs", id)
		}
		seen[id] = true
		if r.ID == "handed-off" && r.Trace != preset {
			t.Errorf("preset trace not continued: got %s, want %s",
				id, preset.TraceID())
		}
	}
}

// TestSpecLineageEndToEnd runs the full NDJSON pipeline with a journal
// and asserts the lineage contract of PR 9: every result line carries a
// well-formed trace_id, a spec's trace_id is continued rather than
// re-minted, journal start records carry the same trace their result
// line does, and done records stay trace-free.
func TestSpecLineageEndToEnd(t *testing.T) {
	netPath, lib := writeSpecFiles(t)
	const handoff = "00000000deadbeef00000000cafef00d"
	stream := strings.Join([]string{
		fmt.Sprintf(`{"id":"n1","net":%q,"sinks":["z"]}`, netPath),
		fmt.Sprintf(`{"id":"n2","net":%q,"trace_id":%q}`, netPath, handoff),
		`{"id":"bad","net":"does-not-exist.sp"}`,
	}, "\n")

	jpath := filepath.Join(t.TempDir(), "run.journal")
	jr, rp, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	eng := &Engine{Workers: 2, Cache: NewCache()}
	if _, err := RunSpecsJournal(context.Background(), eng,
		strings.NewReader(stream), lib, 25e-12, &out, jr, rp); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	traceByID := make(map[string]string) // job id -> trace id
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec ResultRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("result line: %v: %s", err, sc.Text())
		}
		if _, ok := telemetry.ParseTraceID(rec.TraceID); !ok {
			t.Fatalf("job %q has malformed trace_id %q", rec.ID, rec.TraceID)
		}
		traceByID[rec.ID] = rec.TraceID
	}
	if len(traceByID) != 3 {
		t.Fatalf("got %d result lines, want 3", len(traceByID))
	}
	if traceByID["n2"] != handoff {
		t.Errorf("spec trace_id not continued: result carries %q, want %q",
			traceByID["n2"], handoff)
	}
	if traceByID["n1"] == traceByID["bad"] || traceByID["n1"] == handoff {
		t.Errorf("fresh traces not distinct: %v", traceByID)
	}

	// The journal is the crash-recovery view of the same lineage: each
	// start record names the trace its result line carries, so a
	// post-mortem can tie an in-flight job back to its spans and flight
	// events even when the result never landed.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	startTraces := make(map[string]string) // job id -> journal trace
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var jrec struct {
			Op    string `json:"op"`
			Key   string `json:"key"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(line), &jrec); err != nil {
			t.Fatalf("journal line: %v: %s", err, line)
		}
		_, id, ok := strings.Cut(jrec.Key, ":")
		if !ok {
			t.Fatalf("journal key %q has no index:id form", jrec.Key)
		}
		switch jrec.Op {
		case "start":
			startTraces[id] = jrec.Trace
		case "done":
			if jrec.Trace != "" {
				t.Errorf("done record for %q carries a trace: %q", id, jrec.Trace)
			}
		}
	}
	for id, want := range traceByID {
		if got := startTraces[id]; got != want {
			t.Errorf("journal start trace for %q = %q, result line says %q",
				id, got, want)
		}
	}
}

// TestReporterBoundedLatencyMemory is the O(jobs) fix: past the
// exact-sample threshold the reporter keeps no per-job latency state —
// only the fixed-footprint sketch — and the summary says so.
func TestReporterBoundedLatencyMemory(t *testing.T) {
	var summary bytes.Buffer
	rep := &Reporter{Summary: &summary}

	total := exactLatencyThreshold + 1
	var pending atomic.Int64
	rr := rep.begin(total, &pending)
	if rr.latExact != nil {
		t.Fatalf("large run (%d jobs) allocated the exact-sample slice", total)
	}
	sketchBytes := rr.sketch.MemoryBytes()
	for i := 0; i < total; i++ {
		rr.observe(Result{Index: i, ID: "j",
			Elapsed: time.Duration(i+1) * time.Microsecond})
	}
	if rr.latExact != nil {
		t.Error("exact samples appeared mid-run")
	}
	if got := rr.sketch.MemoryBytes(); got != sketchBytes {
		t.Errorf("sketch grew %d -> %d bytes over %d jobs", sketchBytes, got, total)
	}
	rr.finish()

	var rec summaryRecord
	if err := json.Unmarshal(summary.Bytes(), &rec); err != nil {
		t.Fatalf("summary: %v\n%s", err, summary.String())
	}
	if rec.LatencySource != "sketch" {
		t.Errorf("latency_source = %q, want sketch", rec.LatencySource)
	}
	if rec.Jobs != total {
		t.Errorf("jobs = %d, want %d", rec.Jobs, total)
	}
	// The sketch path still reports ordered, non-trivial quantiles with
	// an exact max (the slowest job was total microseconds).
	if !(0 < rec.LatencyMS.P50 && rec.LatencyMS.P50 <= rec.LatencyMS.P95 &&
		rec.LatencyMS.P95 <= rec.LatencyMS.P99 && rec.LatencyMS.P99 <= rec.LatencyMS.Max) {
		t.Errorf("sketch percentiles unordered: %+v", rec.LatencyMS)
	}
	if want := float64(total) / 1000; rec.LatencyMS.Max != want {
		t.Errorf("max = %v ms, want exact %v", rec.LatencyMS.Max, want)
	}

	// Below the threshold the exact path is still taken.
	summary.Reset()
	rr = rep.begin(16, &pending)
	if rr.latExact == nil {
		t.Fatal("small run dropped exact samples")
	}
	for i := 0; i < 16; i++ {
		rr.observe(Result{Index: i, Elapsed: time.Millisecond})
	}
	rr.finish()
	rec = summaryRecord{}
	if err := json.Unmarshal(summary.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.LatencySource != "exact" {
		t.Errorf("small-run latency_source = %q, want exact", rec.LatencySource)
	}
}

// TestSummarySLORecords: objectives flow from Reporter.SLOs through a
// real engine run into the summary's slo rows with sane accounting.
func TestSummarySLORecords(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	slos, err := telemetry.ParseSLOs("p99=10s,p50=1ns")
	if err != nil {
		t.Fatal(err)
	}
	var summary bytes.Buffer
	e := &Engine{
		Workers: 2,
		Report:  &Reporter{Summary: &summary, SLOs: slos},
	}
	good := chainNet(t, 5)
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("j%d", i), good)
	}
	e.Run(context.Background(), jobs)

	var rec summaryRecord
	if err := json.Unmarshal(summary.Bytes(), &rec); err != nil {
		t.Fatalf("summary: %v\n%s", err, summary.String())
	}
	if len(rec.SLO) != 2 {
		t.Fatalf("slo rows = %+v, want 2", rec.SLO)
	}
	// ParseSLOs sorts ascending: p50 first.
	p50, p99 := rec.SLO[0], rec.SLO[1]
	if p50.Name != "p50" || p99.Name != "p99" {
		t.Fatalf("slo order = %q, %q", p50.Name, p99.Name)
	}
	// Every real job takes longer than 1ns and less than 10s.
	if p50.Good != 0 || p50.Bad != 20 || p50.BurnRate != 2 {
		t.Errorf("p50 row = %+v, want all 20 bad, burn 2.0", p50)
	}
	if p99.Good != 20 || p99.Bad != 0 || p99.BurnRate != 0 {
		t.Errorf("p99 row = %+v, want all 20 good", p99)
	}
	// finish() published the gauges on the default registry.
	if g := reg.Gauge("batch.slo.p50.bad").Value(); g != 20 {
		t.Errorf("batch.slo.p50.bad gauge = %v, want 20", g)
	}
}
