package batch

import (
	"context"
	"testing"

	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/topo"
)

// A transient sweep job must agree with direct sim.Run crossings, and
// identical nets must share one compiled plan through the cache.
func TestTranJobSharedPlan(t *testing.T) {
	const dt = 5e-12
	jobs := make([]Job, 6)
	for k := range jobs {
		jobs[k] = Job{ID: "net", Tran: &TranJob{
			Tree:   topo.Fig1Tree(),
			DT:     dt,
			Inputs: []signal.Signal{nil, signal.SaturatedRamp{Tr: 0.5e-9}},
			Probes: []string{"C5"},
			Levels: []float64{0.1, 0.5, 0.9},
		}}
	}
	cache := NewCache()
	e := &Engine{Workers: 3, Cache: cache}
	results := e.Run(context.Background(), jobs)

	// Oracle: one direct run per input.
	tree := topo.Fig1Tree()
	probe, _ := tree.Index("C5")
	hits := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
		if r.CacheHit {
			hits++
		}
		if len(r.Tran.Runs) != 2 {
			t.Fatalf("runs = %d, want 2", len(r.Tran.Runs))
		}
		for k, in := range []signal.Signal{nil, signal.SaturatedRamp{Tr: 0.5e-9}} {
			want, err := sim.Run(tree, sim.Options{Input: in, DT: dt, Probes: []int{probe}})
			if err != nil {
				t.Fatal(err)
			}
			run := r.Tran.Runs[k]
			if len(run.Crossings) != 3 {
				t.Fatalf("crossings = %d, want 3", len(run.Crossings))
			}
			for _, tc := range run.Crossings {
				if !tc.Reached {
					t.Fatalf("input %d level %v not reached", k, tc.Level)
				}
				wantT, err := want.Cross(probe, tc.Level)
				if err != nil {
					t.Fatal(err)
				}
				if tc.T != wantT {
					t.Fatalf("input %d level %v: batch %v != direct %v", k, tc.Level, tc.T, wantT)
				}
			}
		}
	}
	if cache.PlanLen() != 1 {
		t.Fatalf("PlanLen = %d, want 1 (identical nets share one plan)", cache.PlanLen())
	}
	if hits != len(jobs)-1 {
		t.Fatalf("cache hits = %d, want %d", hits, len(jobs)-1)
	}
}

// An unreachable level is a per-measurement outcome, not a job error;
// an unknown probe name is a job error; a job with two payloads is
// rejected.
func TestTranJobEdgeCases(t *testing.T) {
	e := &Engine{}
	res := e.Run(context.Background(), []Job{
		{ID: "unreachable", Tran: &TranJob{
			Tree: topo.Fig1Tree(), DT: 5e-12, TEnd: 20e-12,
			Probes: []string{"C5"}, Levels: []float64{0.99},
		}},
		{ID: "badprobe", Tran: &TranJob{
			Tree: topo.Fig1Tree(), DT: 5e-12, Probes: []string{"nope"},
		}},
		{ID: "twopayloads", Net: &NetJob{Tree: topo.Fig1Tree()}, Tran: &TranJob{Tree: topo.Fig1Tree(), DT: 1e-12}},
		{ID: "baddt", Tran: &TranJob{Tree: topo.Fig1Tree(), DT: 0}},
	})
	if res[0].Err != nil {
		t.Fatalf("unreachable level must not fail the job: %v", res[0].Err)
	}
	tc := res[0].Tran.Runs[0].Crossings[0]
	if tc.Reached || tc.T != 0 {
		t.Fatalf("unreachable crossing = %+v, want Reached=false T=0", tc)
	}
	for _, i := range []int{1, 2, 3} {
		if res[i].Err == nil {
			t.Fatalf("job %s: expected error", res[i].ID)
		}
	}
}
