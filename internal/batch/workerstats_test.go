package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func TestOnStatsAccountsWorkerTime(t *testing.T) {
	var jobs []Job
	for i := 0; i < 64; i++ {
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i),
			topo.Random(int64(i%8)+1, topo.RandomOptions{N: 20 + i%8})))
	}
	var got *PoolStats
	e := &Engine{
		Workers: 4,
		Cache:   NewCache(),
		OnStats: func(rs PoolStats) { got = &rs },
	}
	e.Run(context.Background(), jobs)

	if got == nil {
		t.Fatal("OnStats never called")
	}
	if got.Jobs != len(jobs) || got.Workers != 4 {
		t.Fatalf("PoolStats jobs/workers = %d/%d, want %d/4", got.Jobs, got.Workers, len(jobs))
	}
	if len(got.Worker) != 4 {
		t.Fatalf("got %d worker entries, want 4", len(got.Worker))
	}
	var jobsSum, hits, misses int64
	for i, ws := range got.Worker {
		if ws.Worker != i {
			t.Errorf("worker %d has index %d", i, ws.Worker)
		}
		jobsSum += ws.Jobs
		hits += ws.CacheHits
		misses += ws.CacheMisses
		if ws.WallNS <= 0 {
			t.Errorf("worker %d: WallNS = %d, want > 0", i, ws.WallNS)
		}
		for name, v := range map[string]int64{
			"BusyNS": ws.BusyNS, "IdleNS": ws.IdleNS,
			"StallNS": ws.StallNS, "LockWaitNS": ws.LockWaitNS,
		} {
			if v < 0 {
				t.Errorf("worker %d: %s = %d, want >= 0", i, name, v)
			}
		}
		// The acceptance bar: busy+idle+stall explains >= 95% of each
		// worker's wall time (the gap is loop overhead).
		if acc := ws.Accounted(); acc < 0.95 || acc > 1.01 {
			t.Errorf("worker %d: accounted fraction %.3f outside [0.95, 1.01] (busy=%d idle=%d stall=%d wall=%d)",
				i, acc, ws.BusyNS, ws.IdleNS, ws.StallNS, ws.WallNS)
		}
		if ws.LockWaitNS > ws.BusyNS {
			t.Errorf("worker %d: lock wait %d exceeds busy %d (must be a sub-bucket)", i, ws.LockWaitNS, ws.BusyNS)
		}
	}
	if jobsSum != int64(len(jobs)) {
		t.Errorf("per-worker jobs sum to %d, want %d", jobsSum, len(jobs))
	}
	// 8 distinct trees across 64 jobs: exactly 8 misses, rest hits.
	if misses != 8 || hits != int64(len(jobs))-8 {
		t.Errorf("per-worker cache hits/misses = %d/%d, want %d/8", hits, misses, len(jobs)-8)
	}
	if eff := got.Efficiency(); eff <= 0 || eff > 1.01 {
		t.Errorf("efficiency = %.3f, want in (0, 1]", eff)
	}
	if got.ReorderPeak < 1 {
		t.Errorf("reorder peak = %d, want >= 1 (every result parks at least momentarily)", got.ReorderPeak)
	}
}

func TestSummaryHasWorkerTable(t *testing.T) {
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i),
			topo.Random(int64(i)+1, topo.RandomOptions{N: 12})))
	}
	var sum strings.Builder
	e := &Engine{
		Workers: 2,
		Cache:   NewCache(),
		Report:  &Reporter{Summary: &sum},
	}
	e.Run(context.Background(), jobs)

	var rec struct {
		Record     string  `json:"record"`
		Efficiency float64 `json:"parallel_efficiency"`
		Workers    []struct {
			Worker      int     `json:"worker"`
			Jobs        int64   `json:"jobs"`
			BusyMS      float64 `json:"busy_ms"`
			Utilization float64 `json:"utilization"`
			Accounted   float64 `json:"accounted"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(sum.String())), &rec); err != nil {
		t.Fatalf("summary not parseable: %v\n%s", err, sum.String())
	}
	if rec.Record != "batch_summary" {
		t.Fatalf("record = %q, want batch_summary", rec.Record)
	}
	if len(rec.Workers) != 2 {
		t.Fatalf("summary worker table has %d rows, want 2:\n%s", len(rec.Workers), sum.String())
	}
	if rec.Efficiency <= 0 {
		t.Errorf("parallel_efficiency = %v, want > 0", rec.Efficiency)
	}
	var jobsSum int64
	for _, w := range rec.Workers {
		jobsSum += w.Jobs
		if w.Accounted < 0.95 {
			t.Errorf("worker %d accounted %.3f < 0.95 in summary", w.Worker, w.Accounted)
		}
	}
	if jobsSum != int64(len(jobs)) {
		t.Errorf("summary worker jobs sum to %d, want %d", jobsSum, len(jobs))
	}
}

func TestPoolStatsPublishGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	rs := PoolStats{
		Jobs:    10,
		Workers: 2,
		WallNS:  1e9,
		Worker: []WorkerStats{
			{Worker: 0, Jobs: 6, BusyNS: 9e8, IdleNS: 1e8, WallNS: 1e9},
			{Worker: 1, Jobs: 4, BusyNS: 5e8, IdleNS: 5e8, WallNS: 1e9},
		},
		ReorderPeak: 3,
	}
	rs.publish(reg)
	if got := reg.Gauge("batch.parallel_efficiency").Value(); got != 0.7 {
		t.Errorf("batch.parallel_efficiency = %v, want 0.7", got)
	}
	if got := reg.Gauge("batch.worker0.busy_seconds").Value(); got != 0.9 {
		t.Errorf("batch.worker0.busy_seconds = %v, want 0.9", got)
	}
	if got := reg.Gauge("batch.worker1.utilization").Value(); got != 0.5 {
		t.Errorf("batch.worker1.utilization = %v, want 0.5", got)
	}
	if got := reg.Gauge("batch.reorder_peak").Value(); got != 3 {
		t.Errorf("batch.reorder_peak = %v, want 3", got)
	}
	// A second run's publish overwrites, never accumulates.
	rs.Worker[0].BusyNS = 3e8
	rs.publish(reg)
	if got := reg.Gauge("batch.worker0.busy_seconds").Value(); got != 0.3 {
		t.Errorf("after republish batch.worker0.busy_seconds = %v, want 0.3 (Set semantics)", got)
	}
	rs.publish(nil) // nil registry must not panic
}

func TestCacheAttributesLockWaitViaContext(t *testing.T) {
	c := NewCache()
	tree := topo.Chain(16, 100, 1e-13)
	ws := &WorkerStats{}
	ctx := withWorkerStats(context.Background(), ws)

	if _, hit, err := c.MomentsCtx(ctx, tree, 3); err != nil || hit {
		t.Fatalf("first MomentsCtx: hit=%v err=%v, want miss", hit, err)
	}
	if ws.CacheMisses != 1 || ws.CacheHits != 0 {
		t.Fatalf("after miss: hits/misses = %d/%d, want 0/1", ws.CacheHits, ws.CacheMisses)
	}
	if _, hit, err := c.MomentsCtx(ctx, tree, 3); err != nil || !hit {
		t.Fatalf("second MomentsCtx: hit=%v err=%v, want hit", hit, err)
	}
	if ws.CacheHits != 1 {
		t.Fatalf("after hit: hits = %d, want 1", ws.CacheHits)
	}
	if ws.LockWaitNS < 0 {
		t.Fatalf("LockWaitNS = %d, want >= 0", ws.LockWaitNS)
	}
	// Without worker stats in the context, attribution is silently off.
	if _, hit, err := c.MomentsCtx(context.Background(), tree, 3); err != nil || !hit {
		t.Fatalf("plain-context MomentsCtx: hit=%v err=%v, want hit", hit, err)
	}
	if ws.CacheHits != 1 {
		t.Fatalf("plain-context lookup leaked into worker stats: hits = %d", ws.CacheHits)
	}
}

// The per-worker gauge names are scrape-config surface: their
// Prometheus spellings must stay fixed, and the exposition must parse
// as well-formed gauge families.
func TestWorkerGaugesPromExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	rs := PoolStats{
		Jobs:    8,
		Workers: 2,
		WallNS:  1e9,
		Worker: []WorkerStats{
			{Worker: 0, Jobs: 5, BusyNS: 8e8, IdleNS: 2e8, LockWaitNS: 1e8, WallNS: 1e9},
			{Worker: 1, Jobs: 3, BusyNS: 4e8, IdleNS: 6e8, StallNS: 1e7, WallNS: 1e9},
		},
		ReorderPeak: 2,
	}
	rs.publish(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for dotted, want := range map[string]string{
		"batch.workers":                   "batch_workers",
		"batch.parallel_efficiency":       "batch_parallel_efficiency",
		"batch.reorder_peak":              "batch_reorder_peak",
		"batch.worker0.jobs":              "batch_worker0_jobs",
		"batch.worker0.busy_seconds":      "batch_worker0_busy_seconds",
		"batch.worker0.idle_seconds":      "batch_worker0_idle_seconds",
		"batch.worker1.stall_seconds":     "batch_worker1_stall_seconds",
		"batch.worker0.lock_wait_seconds": "batch_worker0_lock_wait_seconds",
		"batch.worker1.utilization":       "batch_worker1_utilization",
	} {
		if got := telemetry.PromName(dotted); got != want {
			t.Errorf("PromName(%q) = %q, want %q", dotted, got, want)
		}
		if !strings.Contains(out, "# TYPE "+want+" gauge\n") {
			t.Errorf("exposition missing TYPE line for %s:\n%s", want, out)
		}
	}
	for _, wantLine := range []string{
		"batch_workers 2\n",
		"batch_worker0_busy_seconds 0.8\n",
		"batch_worker1_jobs 3\n",
		"batch_worker0_lock_wait_seconds 0.1\n",
		"batch_reorder_peak 2\n",
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("exposition missing sample %q:\n%s", strings.TrimSpace(wantLine), out)
		}
	}
}

// A narrower run after a wider one must zero the stale workers'
// gauges: a 2-worker run following a 4-worker run must not leave
// worker 2/3 time on the scrape page.
func TestWorkerGaugesResetBetweenRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	wide := PoolStats{Jobs: 8, Workers: 4, WallNS: 1e9}
	for w := 0; w < 4; w++ {
		wide.Worker = append(wide.Worker, WorkerStats{
			Worker: w, Jobs: 2, BusyNS: 5e8, IdleNS: 5e8, WallNS: 1e9,
		})
	}
	wide.publish(reg)
	if got := reg.Gauge("batch.worker3.busy_seconds").Value(); got != 0.5 {
		t.Fatalf("wide run: worker3 busy = %v, want 0.5", got)
	}

	narrow := PoolStats{
		Jobs: 8, Workers: 2, WallNS: 1e9,
		Worker: []WorkerStats{
			{Worker: 0, Jobs: 4, BusyNS: 9e8, WallNS: 1e9},
			{Worker: 1, Jobs: 4, BusyNS: 9e8, WallNS: 1e9},
		},
	}
	narrow.publish(reg)
	if got := reg.Gauge("batch.workers").Value(); got != 2 {
		t.Errorf("batch.workers = %v, want 2", got)
	}
	for w := 2; w < 4; w++ {
		for _, leaf := range workerGaugeNames {
			name := fmt.Sprintf("batch.worker%d.%s", w, leaf)
			if got := reg.Gauge(name).Value(); got != 0 {
				t.Errorf("stale gauge %s = %v after narrower run, want 0", name, got)
			}
		}
	}
	if got := reg.Gauge("batch.worker0.busy_seconds").Value(); got != 0.9 {
		t.Errorf("worker0 busy = %v, want 0.9", got)
	}
}
