package batch

// Tests for the per-worker buffered journal writers that replaced
// per-record locking on the shared journal: buffering and flush
// thresholds, nil-safety, fsync accounting, and replay correctness
// when buffered writers interleave with each other and with direct
// appends.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalWriterBuffersUntilBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, _ := openJournal(t, path)
	defer jr.Close()
	jr.SyncEvery = 3
	w := jr.Writer()
	if err := w.Start(0, "a", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(1, "b", ""); err != nil {
		t.Fatal(err)
	}
	// Two records are below the batch size: nothing reaches the file,
	// and nothing even reaches the journal's own buffer.
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Errorf("writer leaked records to the file before the batch filled: %q", b)
	}
	if err := w.Done(0, "a"); err != nil {
		t.Fatal(err)
	}
	// Third record fills the batch: the writer flushes through the
	// journal, and the one buffered done triggers nothing on its own
	// (pending 1 < SyncEvery 3) — but the bufio layer was handed the
	// bytes, so a Sync makes them durable.
	if err := jr.Sync(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "\n"); got != 3 {
		t.Errorf("after a full batch + sync the file holds %d lines, want 3", got)
	}
}

func TestJournalWriterFlushCountsDonesTowardFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, _ := openJournal(t, path)
	defer jr.Close()
	jr.SyncEvery = 2
	w := jr.Writer()
	// Two dones buffered below the flush threshold... then an explicit
	// Flush: the journal's pending counter must absorb both at once and
	// fsync immediately — a writer must not launder done records past
	// the durability batching.
	if err := w.Done(0, "a"); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Errorf("done records reached the file before flush: %q", b)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Done(1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// pending hit SyncEvery on the second flush: the records are on
	// disk without any explicit Sync call.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "\n"); got != 2 {
		t.Errorf("after pending reached SyncEvery the file holds %d lines, want 2", got)
	}
}

func TestJournalWriterNilSafe(t *testing.T) {
	var jr *Journal
	w := jr.Writer()
	if w != nil {
		t.Fatalf("nil journal produced a non-nil writer")
	}
	if err := w.Start(0, "a", ""); err != nil {
		t.Errorf("nil writer Start: %v", err)
	}
	if err := w.Done(0, "a"); err != nil {
		t.Errorf("nil writer Done: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Errorf("nil writer Flush: %v", err)
	}
	// The context helpers must round-trip the nil writer unharmed.
	if got := journalWriterFrom(context.Background()); got != nil {
		t.Errorf("bare context yielded writer %v", got)
	}
	if got := journalWriterFrom(withJournalWriter(context.Background(), w)); got != nil {
		t.Errorf("nil writer came back non-nil from the context: %v", got)
	}
}

func TestJournalWriterEmptyFlushIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, _ := openJournal(t, path)
	defer jr.Close()
	w := jr.Writer()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Errorf("empty flushes wrote %q", b)
	}
}

// TestJournalWriterReplayInterleaved is the correctness case behind
// per-worker buffering: worker writers flush their start records in
// arbitrary order relative to each other and to the emitter's done
// records — a done may even reach the file before its start (the
// worker's buffer flushed late). Replay must still classify every job
// correctly: done keys in Done only, started-but-not-done keys
// re-queued.
func TestJournalWriterReplayInterleaved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, _ := openJournal(t, path)
	jr.SyncEvery = 100 // no auto-flush; the test controls the order
	w1, w2 := jr.Writer(), jr.Writer()
	emit := jr.Writer()

	// Worker 1 starts jobs 0,1; worker 2 starts jobs 2,3. The emitter
	// records dones for 0 and 2 and flushes FIRST; worker 2 flushes
	// next; worker 1's buffer is lost with the crash (never flushed).
	for _, s := range []struct {
		w   *JournalWriter
		idx int
		id  string
	}{{w1, 0, "a"}, {w1, 1, "b"}, {w2, 2, "c"}, {w2, 3, "d"}} {
		if err := s.w.Start(s.idx, s.id, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := emit.Done(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := emit.Done(2, "c"); err != nil {
		t.Fatal(err)
	}
	if err := emit.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	// w1 never flushes: its starts vanish, as a crash would make them.
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	jr2, rp := openJournal(t, path)
	defer jr2.Close()
	// Job 0: done (its start is lost — harmless, done wins). Job 2:
	// done recorded before its start line; replay must not resurrect it
	// into Started. Job 3: started, not done — re-queued. Job 1: both
	// records lost — replays as never started, also re-queued by the
	// spec scan.
	if !rp.Done[JobKey(0, "a")] || !rp.Done[JobKey(2, "c")] || len(rp.Done) != 2 {
		t.Errorf("Done = %v, want exactly {0:a, 2:c}", rp.Done)
	}
	if !rp.Started[JobKey(3, "d")] || len(rp.Started) != 1 {
		t.Errorf("Started = %v, want exactly {3:d}", rp.Started)
	}
}
