package batch

import (
	"context"
	"strings"
	"testing"
	"time"

	"elmore/internal/rctree"
)

// Inline netlists: serve-mode clients ship the deck text in the spec
// instead of naming a file on a shared filesystem.

func TestJobSpecInlineNetlist(t *testing.T) {
	j := JobSpec{ID: "inline", Netlist: specNet, Sinks: []string{"z"}}.Job(nil, 0)
	if j.Err != nil {
		t.Fatalf("inline spec pre-failed: %v", j.Err)
	}
	res := (&Engine{Workers: 1}).Run(context.Background(), []Job{j})
	if res[0].Err != nil {
		t.Fatalf("inline net job failed: %v", res[0].Err)
	}
	if len(res[0].Net.Sinks) != 1 || res[0].Net.Sinks[0].Node != "z" {
		t.Fatalf("inline net sinks = %+v, want one record for z", res[0].Net.Sinks)
	}
}

func TestJobSpecInlineNetlistMalformed(t *testing.T) {
	j := JobSpec{ID: "bad", Netlist: "R1 in\n"}.Job(nil, 0)
	res := (&Engine{Workers: 1}).Run(context.Background(), []Job{j})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "inline netlist") {
		t.Fatalf("malformed inline deck should fail soft with context, got %v", res[0].Err)
	}
}

func TestJobSpecRejectsNetAndNetlist(t *testing.T) {
	j := JobSpec{ID: "both", Net: "a.sp", Netlist: specNet}.Job(nil, 0)
	if j.Err == nil || !strings.Contains(j.Err.Error(), "both net and netlist") {
		t.Fatalf("net+netlist should pre-fail, got %v", j.Err)
	}
	p := JobSpec{ID: "stage", Slew: "30p", Stages: []StageSpec{
		{Cell: "inv", Net: "a.sp", Netlist: specNet, Sink: "z"},
	}}
	_, lib := writeSpecFiles(t)
	if j := p.Job(lib, 25e-12); j.Err == nil || !strings.Contains(j.Err.Error(), "both net and netlist") {
		t.Fatalf("stage net+netlist should pre-fail, got %v", j.Err)
	}
}

func TestJobSpecInlinePathStage(t *testing.T) {
	_, lib := writeSpecFiles(t)
	j := JobSpec{ID: "p", Slew: "30p", Stages: []StageSpec{
		{Cell: "inv", Netlist: specNet, Sink: "z"},
	}}.Job(lib, 25e-12)
	if j.Err != nil {
		t.Fatalf("inline path spec pre-failed: %v", j.Err)
	}
	res := (&Engine{Workers: 1}).Run(context.Background(), []Job{j})
	if res[0].Err != nil || res[0].Path == nil || res[0].Path.ArrivalUB <= 0 {
		t.Fatalf("inline path job: %+v err=%v", res[0].Path, res[0].Err)
	}
}

func TestJobLoaderInjectsTreeLoader(t *testing.T) {
	tree := chainNet(t, 4)
	calls := 0
	loader := func(net, netlist string) (*rctree.Tree, error) {
		calls++
		if net != "virtual://n1" || netlist != "" {
			t.Errorf("loader saw net=%q netlist=%q", net, netlist)
		}
		return tree, nil
	}
	j := JobSpec{ID: "v", Net: "virtual://n1"}.JobLoader(nil, 0, loader)
	res := (&Engine{Workers: 1}).Run(context.Background(), []Job{j})
	if res[0].Err != nil {
		t.Fatalf("injected-loader job failed: %v", res[0].Err)
	}
	if calls != 1 {
		t.Fatalf("loader called %d times, want 1", calls)
	}
}

// Per-job timeout boundary semantics (Engine.Timeout doc): a zero or
// negative Timeout means no per-attempt limit — a slow job must run to
// completion, never hit a zero-length deadline.

func TestTimeoutZeroMeansNone(t *testing.T) {
	for _, timeout := range []time.Duration{0, -time.Second} {
		tree := chainNet(t, 4)
		slow := Job{ID: "slow", Net: &NetJob{Load: func() (*rctree.Tree, error) {
			time.Sleep(20 * time.Millisecond)
			return tree, nil
		}}}
		res := (&Engine{Workers: 1, Timeout: timeout}).Run(context.Background(), []Job{slow})
		if res[0].Err != nil {
			t.Errorf("Timeout=%v must mean no per-job limit, got %v", timeout, res[0].Err)
		}
	}
}
