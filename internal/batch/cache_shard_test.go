package batch

// Tests for the sharded cache introduced to fix the flat 1→8 worker
// scaling curve: zero-value usability on both keyed paths, post-Do
// hit/miss classification, and transient-error eviction that never
// removes a newer replacement entry. The concurrency cases are
// meaningful under `go test -race` but assert their invariants
// without it too.

import (
	"sync"
	"testing"

	"elmore/internal/faultinject"
	"elmore/internal/sim"
	"elmore/internal/telemetry"
)

// forceShards pre-empts the lazy GOMAXPROCS-sized stripe init with a
// fixed stripe count, so sharding behavior is exercised even on the
// single-CPU boxes where defaultShards() == 1.
func forceShards(t *testing.T, c *Cache, n int) {
	t.Helper()
	if n&(n-1) != 0 {
		t.Fatalf("forceShards(%d): stripe count must be a power of two", n)
	}
	c.init.Do(func() {
		c.shards = make([]cacheShard, n)
		c.mask = uint64(n - 1)
	})
	if len(c.shards) != n {
		t.Fatalf("stripe init raced: got %d shards, want %d", len(c.shards), n)
	}
}

// TestCacheZeroValueUsable is the regression test for the zero-value
// asymmetry: the moments path used to panic on the nil shard map while
// the plans path lazily initialized its own. Both paths must now work
// on a plain Cache{} without NewCache.
func TestCacheZeroValueUsable(t *testing.T) {
	var c Cache
	tree := chainNet(t, 8)
	ms, hit, err := c.Moments(tree, 3)
	if err != nil {
		t.Fatalf("zero-value Moments: %v", err)
	}
	if ms == nil || hit {
		t.Errorf("zero-value Moments: set=%v hit=%v, want a computed miss", ms, hit)
	}
	plan, hit, err := c.Plan(tree, 1e-12, sim.BackwardEuler)
	if err != nil {
		t.Fatalf("zero-value Plan: %v", err)
	}
	if plan == nil || hit {
		t.Errorf("zero-value Plan: plan=%v hit=%v, want a compiled miss", plan, hit)
	}
	if c.Len() != 1 || c.PlanLen() != 1 {
		t.Errorf("Len=%d PlanLen=%d, want 1 and 1", c.Len(), c.PlanLen())
	}
	if n := c.Shards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("Shards() = %d, want a power of two >= 1", n)
	}
}

// TestCacheSpreadsAcrossShards drives distinct circuits through a
// multi-stripe cache and checks the aggregate accessors count across
// every stripe, not just the first.
func TestCacheSpreadsAcrossShards(t *testing.T) {
	c := NewCache()
	forceShards(t, c, 8)
	const nets = 32
	for i := 0; i < nets; i++ {
		tree := chainNet(t, 3+i)
		if _, _, err := c.Moments(tree, 3); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Plan(tree, 1e-12, sim.BackwardEuler); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != nets || c.PlanLen() != nets {
		t.Fatalf("Len=%d PlanLen=%d, want %d each", c.Len(), c.PlanLen(), nets)
	}
	// The Fibonacci remix must actually spread the keys: with 32 keys
	// over 8 stripes, everything landing on one stripe means the hash
	// is degenerate.
	populated := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.m) > 0 {
			populated++
		}
		sh.mu.Unlock()
	}
	if populated < 2 {
		t.Errorf("%d circuits collapsed onto %d of %d stripes", nets, populated, len(c.shards))
	}
}

// TestCacheMissClassifiedByCompute is the regression test for the
// hit/miss misattribution: a goroutine that *finds* the entry in the
// map but then wins the once.Do pays for the computation and must be
// counted as the miss, not a hit. Pre-inserting an unresolved entry
// makes that path deterministic.
func TestCacheMissClassifiedByCompute(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	c := NewCache()
	tree := chainNet(t, 8)
	key := tree.Fingerprint()
	sh := c.shard(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]*cacheEntry)
	}
	sh.m[key] = &cacheEntry{} // inserted, never computed
	sh.mu.Unlock()

	ws := &WorkerStats{}
	if _, hit, err := c.moments(ws, nil, tree, 3); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Errorf("finder that ran the compute classified as hit")
	}
	if ws.CacheMisses != 1 || ws.CacheHits != 0 {
		t.Errorf("worker stats misses=%d hits=%d, want 1 and 0", ws.CacheMisses, ws.CacheHits)
	}
	if got := telemetry.C("batch.cache_misses").Value(); got != 1 {
		t.Errorf("telemetry misses = %d, want 1", got)
	}

	// Same asymmetry on the plans path.
	pkey := planKey{fp: key, dtBits: 0x3fe0000000000000, method: sim.BackwardEuler}
	psh := c.shard(pkey.fp)
	psh.mu.Lock()
	if psh.plans == nil {
		psh.plans = make(map[planKey]*planEntry)
	}
	psh.plans[pkey] = &planEntry{}
	psh.mu.Unlock()
	if _, hit, err := c.plan(ws, tree, 0.5, sim.BackwardEuler); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Errorf("plan finder that ran the build classified as hit")
	}
	if ws.CacheMisses != 2 {
		t.Errorf("worker stats misses=%d after plan build, want 2", ws.CacheMisses)
	}
}

// TestCacheExactlyOneMissUnderRace races many workers on one circuit:
// whatever interleaving the scheduler picks, exactly one of them ran
// the compute, so the per-worker counters must sum to exactly one miss
// — the invariant the post-Do classification guarantees and the old
// found-in-map classification violated.
func TestCacheExactlyOneMissUnderRace(t *testing.T) {
	c := NewCache()
	forceShards(t, c, 8)
	base := chainNet(t, 12)
	const workers = 32
	stats := make([]WorkerStats, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.moments(&stats[g], nil, base.Clone(), 3); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var hits, misses int64
	for g := range stats {
		hits += stats[g].CacheHits
		misses += stats[g].CacheMisses
	}
	if misses != 1 || hits != workers-1 {
		t.Errorf("misses=%d hits=%d across %d workers, want exactly 1 and %d",
			misses, hits, workers, workers-1)
	}
}

// TestCacheTransientEvictionUnderRace races two workers into a
// transiently failing entry: both must surface the error, the cache
// must be clean afterwards (no pinned error entry), and once the fault
// injector is gone the next caller recomputes successfully.
func TestCacheTransientEvictionUnderRace(t *testing.T) {
	installFaults(t, 7,
		faultinject.Rule{Point: "moments.compute", Kind: faultinject.KindError, Prob: 1},
	)
	c := NewCache()
	forceShards(t, c, 8)
	base := chainNet(t, 10)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[g] = c.Moments(base.Clone(), 3)
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Errorf("worker %d did not see the injected transient error", g)
		}
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after a transient failure, want 0 (error pinned)", c.Len())
	}
	faultinject.SetDefault(nil)
	if _, _, err := c.Moments(base.Clone(), 3); err != nil {
		t.Errorf("post-fault recompute failed: %v", err)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries after recovery, want 1", c.Len())
	}
}

// TestEvictNeverRemovesNewerEntry pins the guard inside the evictors: a
// stale eviction (the caller's failed entry was already evicted and a
// fresh one re-inserted under the same key) must leave the replacement
// alone. Without the identity check, a slow worker returning from a
// failed compute could silently discard another worker's good result.
func TestEvictNeverRemovesNewerEntry(t *testing.T) {
	c := NewCache()
	forceShards(t, c, 4)
	tree := chainNet(t, 8)
	key := tree.Fingerprint()

	stale := &cacheEntry{}
	sh := c.shard(key)
	sh.mu.Lock()
	sh.m = map[uint64]*cacheEntry{key: stale}
	sh.mu.Unlock()
	c.evictMoments(key, stale)
	if c.Len() != 0 {
		t.Fatalf("evicting the current entry left Len=%d, want 0", c.Len())
	}
	// A newer entry replaces the evicted one; the stale evictor fires
	// again (as a slow goroutine would) and must be a no-op.
	if _, _, err := c.Moments(tree, 3); err != nil {
		t.Fatal(err)
	}
	c.evictMoments(key, stale)
	if c.Len() != 1 {
		t.Errorf("stale eviction removed the replacement moment entry")
	}
	ms, hit, err := c.Moments(tree, 3)
	if err != nil || !hit || ms == nil {
		t.Errorf("replacement entry unusable after stale eviction: hit=%v err=%v", hit, err)
	}

	// Same guard on the plans side.
	pkey := planKey{fp: key, dtBits: 1, method: sim.BackwardEuler}
	staleP := &planEntry{}
	sh.mu.Lock()
	sh.plans = map[planKey]*planEntry{pkey: staleP}
	sh.mu.Unlock()
	c.evictPlan(pkey, staleP)
	if c.PlanLen() != 0 {
		t.Fatalf("evicting the current plan entry left PlanLen=%d, want 0", c.PlanLen())
	}
	sh.mu.Lock()
	sh.plans[pkey] = &planEntry{}
	sh.mu.Unlock()
	c.evictPlan(pkey, staleP)
	if c.PlanLen() != 1 {
		t.Errorf("stale eviction removed the replacement plan entry")
	}
}
