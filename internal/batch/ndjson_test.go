package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunSpecsStreamsNDJSON(t *testing.T) {
	netPath, lib := writeSpecFiles(t)
	stream := strings.Join([]string{
		fmt.Sprintf(`{"id":"n1","net":%q,"sinks":["z"],"rise":"1n"}`, netPath),
		fmt.Sprintf(`{"id":"p1","stages":[{"cell":"inv","net":%q,"sink":"z"}]}`, netPath),
		`{"id":"bad","net":"does-not-exist.sp"}`,
	}, "\n")
	var out bytes.Buffer
	eng := &Engine{Workers: 4, Cache: NewCache()}
	failed, total, err := RunSpecs(context.Background(), eng, strings.NewReader(stream), lib, 25e-12, &out)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || failed != 1 {
		t.Fatalf("failed=%d total=%d, want 1/3", failed, total)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 3:\n%s", len(lines), out.String())
	}
	var recs []ResultRecord
	for i, line := range lines {
		var rec ResultRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if rec.Index != i {
			t.Errorf("line %d has index %d: output must stream in job order", i, rec.Index)
		}
		recs = append(recs, rec)
	}
	n1 := recs[0]
	if n1.ID != "n1" || n1.Error != "" || len(n1.Sinks) != 1 {
		t.Fatalf("n1 record: %+v", n1)
	}
	s := n1.Sinks[0]
	if s.Node != "z" || s.Elmore <= 0 || s.Lower < 0 || s.Input == nil || s.Input.Upper < s.Elmore {
		t.Errorf("n1 sink record: %+v", s)
	}
	p1 := recs[1]
	if p1.ID != "p1" || p1.Path == nil || len(p1.Path.Stages) != 1 || p1.Path.ArrivalUB <= 0 {
		t.Errorf("p1 record: %+v", p1)
	}
	if st := p1.Path.Stages[0]; st.Cell != "inv" || st.Sink != "z" || st.NetElmore <= 0 {
		t.Errorf("p1 stage record: %+v", p1.Path.Stages[0])
	}
	bad := recs[2]
	if bad.ID != "bad" || bad.Error == "" || bad.Sinks != nil || bad.Path != nil {
		t.Errorf("bad record should carry only an error: %+v", bad)
	}
}

func TestRunSpecsRejectsBadStream(t *testing.T) {
	eng := &Engine{}
	var out bytes.Buffer
	_, _, err := RunSpecs(context.Background(), eng, strings.NewReader("{oops\n"), nil, 0, &out)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("want a line-numbered error, got %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("no results should be emitted for an unreadable stream")
	}
}

func TestWriteResultDegradesOnUnencodableValues(t *testing.T) {
	// NaN must not escape the bound engines, but if it ever does the
	// stream degrades to an error record instead of dying.
	var out bytes.Buffer
	r := Result{Index: 4, ID: "nan", Elapsed: time.Millisecond,
		Net: &NetResult{Sinks: []SinkBounds{{Node: "z"}}}}
	r.Net.Sinks[0].Bounds.Elmore = math.NaN()
	if err := WriteResult(&out, r); err != nil {
		t.Fatal(err)
	}
	var rec ResultRecord
	if err := json.Unmarshal(bytes.TrimSpace(out.Bytes()), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Index != 4 || rec.ID != "nan" || !strings.Contains(rec.Error, "encode") {
		t.Errorf("degraded record: %+v", rec)
	}
}
