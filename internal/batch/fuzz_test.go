package batch

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadSpecs asserts the NDJSON job-spec parser never panics, that
// every accepted spec materializes into a well-formed Job (one kind or
// a pre-failed error, never both, never neither), and that accepted
// specs survive a marshal/re-parse round trip. Run the seeds as part
// of the normal suite; `go test -fuzz=FuzzReadSpecs` explores further.
func FuzzReadSpecs(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n\n",
		`{"id":"n1","net":"nets/a.sp","sinks":["z"],"rise":"1n"}`,
		`{"id":"p1","slew":"30p","stages":[{"cell":"inv","net":"a.sp","sink":"z"}]}`,
		`{"id":"t1","net":"a.sp","dt":"1p","t_end":"5n","method":"be","levels":[0.1,0.5,0.9]}`,
		`{"id":"t2","net":"a.sp","dt":"0"}`,
		`{"id":"bad","net":"a.sp","dt":"-1p"}`,
		`{"id":"both","net":"a.sp","stages":[{"cell":"x","net":"y","sink":"z"}]}`,
		`{"id":"mix","net":"a.sp","dt":"1p","rise":"-3n"}`,
		`{"id":"orphan","levels":[0.5]}`,
		`{"id":"nokind"}`,
		`{"id":"dup"}` + "\n" + `{"id":"dup"}`,
		`{broken`,
		`{"unknown_field":1}`,
		`[1,2,3]`,
		`null`,
		"{\"id\":\"\x00\",\"net\":\"\\n\"}",
		`{"id":"m","net":"a.sp","method":"simpson","dt":"1p"}`,
		strings.Repeat("#", 70000) + "\n" + `{"id":"after-long-comment","net":"a.sp"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, stream string) {
		specs, err := ReadSpecs(strings.NewReader(stream))
		if err != nil {
			return // rejected streams just need a graceful error
		}
		for i, s := range specs {
			j := s.Job(nil, 25e-12)
			kinds := 0
			if j.Net != nil {
				kinds++
			}
			if j.Path != nil {
				kinds++
			}
			if j.Tran != nil {
				kinds++
			}
			if j.Err != nil {
				if kinds != 0 {
					t.Fatalf("spec %d: pre-failed job carries %d payloads", i, kinds)
				}
			} else if kinds != 1 {
				t.Fatalf("spec %d: job has %d kinds, want exactly 1: %+v", i, kinds, s)
			}
			// Accepted specs must round-trip through their own encoding.
			b, err := json.Marshal(s)
			if err != nil {
				t.Fatalf("spec %d does not re-marshal: %v", i, err)
			}
			again, err := ReadSpecs(strings.NewReader(string(b)))
			if err != nil {
				t.Fatalf("spec %d does not re-parse: %v\n%s", i, err, b)
			}
			if len(again) != 1 {
				t.Fatalf("spec %d re-parsed into %d specs", i, len(again))
			}
		}
	})
}
