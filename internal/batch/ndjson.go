package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"elmore/internal/faultinject"
	"elmore/internal/gate"
	"elmore/internal/health"
	"elmore/internal/resilience"
	"elmore/internal/sta"
	"elmore/internal/telemetry"
)

// ResultRecord is the NDJSON form of one Result, as streamed by the
// -jobs mode of boundstat and sta: one JSON object per line, in job
// order. Exactly one of Sinks, Path or Tran is present on success;
// Error is set on failure (and all payloads are absent). A degraded
// record is a success whose Sinks carry the paper's bound interval in
// place of the failed simulation — degraded names the substitution
// ("elmore-bound") and degraded_from the suppressed failure. All times
// are seconds.
type ResultRecord struct {
	Index        int          `json:"index"`
	ID           string       `json:"id,omitempty"`
	Error        string       `json:"error,omitempty"`
	CacheHit     bool         `json:"cache_hit,omitempty"`
	ElapsedNS    int64        `json:"elapsed_ns"`
	Attempts     int          `json:"attempts,omitempty"`
	Degraded     string       `json:"degraded,omitempty"`
	DegradedFrom string       `json:"degraded_from,omitempty"`
	TraceID      string       `json:"trace_id,omitempty"` // request lineage (PR 9)
	Sinks        []SinkRecord `json:"sinks,omitempty"`
	Path         *PathRecord  `json:"path,omitempty"`
	Tran         *TranRecord  `json:"tran,omitempty"`
}

// SinkRecord reports the paper's step-input bounds at one node, plus
// the generalized-input window when the job asked for a ramp.
type SinkRecord struct {
	Node     string       `json:"node"`
	Elmore   float64      `json:"elmore"`
	Lower    float64      `json:"lower"`
	PRHTmin  float64      `json:"prh_tmin"`
	PRHTmax  float64      `json:"prh_tmax"`
	Sigma    float64      `json:"sigma"`
	Skewness float64      `json:"skewness"`
	RiseTime float64      `json:"rise_time"`
	Input    *InputRecord `json:"input,omitempty"`
}

// InputRecord is the generalized-input delay window (Theorem 2 /
// Corollary 2 terms) for a non-step excitation.
type InputRecord struct {
	Upper       float64 `json:"upper"`
	Lower       float64 `json:"lower"`
	OutputSigma float64 `json:"output_sigma"`
	OutputSkew  float64 `json:"output_skew"`
}

// PathRecord reports an STA path walk.
type PathRecord struct {
	ArrivalUB float64       `json:"arrival_ub"`
	ArrivalLB float64       `json:"arrival_lb"`
	Stages    []StageRecord `json:"stages"`
}

// TranRecord reports a transient characterization sweep: one run per
// input, each carrying the measured threshold crossings.
type TranRecord struct {
	Runs []TranRunRecord `json:"runs"`
}

// TranRunRecord is one input of a TranRecord.
type TranRunRecord struct {
	Input     int               `json:"input"`
	Crossings []TranCrossRecord `json:"crossings"`
}

// TranCrossRecord is one measured threshold crossing.
type TranCrossRecord struct {
	Node    string  `json:"node"`
	Level   float64 `json:"level"`
	T       float64 `json:"t,omitempty"`
	Reached bool    `json:"reached"`
}

// StageRecord is one stage of a PathRecord.
type StageRecord struct {
	Cell       string  `json:"cell"`
	Sink       string  `json:"sink"`
	Ceff       float64 `json:"ceff"`
	GateDelay  float64 `json:"gate_delay"`
	OutputSlew float64 `json:"output_slew"`
	NetElmore  float64 `json:"net_elmore"`
	NetLower   float64 `json:"net_lower"`
	SinkSlew   float64 `json:"sink_slew"`
	ArrivalUB  float64 `json:"arrival_ub"`
	ArrivalLB  float64 `json:"arrival_lb"`
}

// Record converts an engine Result into its NDJSON form.
func Record(r Result) ResultRecord {
	rec := ResultRecord{
		Index:        r.Index,
		ID:           r.ID,
		CacheHit:     r.CacheHit,
		ElapsedNS:    r.Elapsed.Nanoseconds(),
		Attempts:     r.Attempts,
		Degraded:     r.Degraded,
		DegradedFrom: r.DegradedFrom,
		TraceID:      r.Trace.TraceID(),
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	if r.Net != nil {
		for _, s := range r.Net.Sinks {
			rec.Sinks = append(rec.Sinks, sinkRecord(s))
		}
	}
	if r.Path != nil {
		p := &PathRecord{ArrivalUB: r.Path.ArrivalUB, ArrivalLB: r.Path.ArrivalLB}
		for _, st := range r.Path.Stages {
			p.Stages = append(p.Stages, stageRecord(st))
		}
		rec.Path = p
	}
	if r.Tran != nil {
		tr := &TranRecord{Runs: make([]TranRunRecord, 0, len(r.Tran.Runs))}
		for _, run := range r.Tran.Runs {
			rr := TranRunRecord{Input: run.Input, Crossings: make([]TranCrossRecord, 0, len(run.Crossings))}
			for _, c := range run.Crossings {
				rr.Crossings = append(rr.Crossings, TranCrossRecord{Node: c.Node, Level: c.Level, T: c.T, Reached: c.Reached})
			}
			tr.Runs = append(tr.Runs, rr)
		}
		rec.Tran = tr
	}
	return rec
}

func sinkRecord(s SinkBounds) SinkRecord {
	out := SinkRecord{
		Node:     s.Node,
		Elmore:   s.Bounds.Elmore,
		Lower:    s.Bounds.Lower,
		PRHTmin:  s.Bounds.PRHTmin,
		PRHTmax:  s.Bounds.PRHTmax,
		Sigma:    s.Bounds.Sigma,
		Skewness: s.Bounds.Skewness,
		RiseTime: s.Bounds.RiseTime,
	}
	if s.Input != nil {
		out.Input = &InputRecord{
			Upper:       s.Input.Upper,
			Lower:       s.Input.Lower,
			OutputSigma: s.Input.OutputSigma,
			OutputSkew:  s.Input.OutputSkew,
		}
	}
	return out
}

func stageRecord(st sta.StageResult) StageRecord {
	return StageRecord{
		Cell:       st.Cell,
		Sink:       st.Sink,
		Ceff:       st.Ceff,
		GateDelay:  st.GateDelay,
		OutputSlew: st.OutputSlew,
		NetElmore:  st.NetElmore,
		NetLower:   st.NetLower,
		SinkSlew:   st.SinkSlew,
		ArrivalUB:  st.ArrivalUB,
		ArrivalLB:  st.ArrivalLB,
	}
}

// WriteResult writes one Result as an NDJSON line. A value the JSON
// encoder rejects (NaN/Inf should not escape the bound engines, but a
// batch must not die on one) degrades to an error record for that job.
func WriteResult(w io.Writer, r Result) error {
	if err := faultinject.Fire("batch.write"); err != nil {
		return fmt.Errorf("batch: write result %d: %w", r.Index, err)
	}
	rec := Record(r)
	b, err := json.Marshal(rec)
	if err != nil {
		b, err = json.Marshal(ResultRecord{Index: rec.Index, ID: rec.ID, ElapsedNS: rec.ElapsedNS,
			Error: fmt.Sprintf("batch: encode result: %v", err)})
		if err != nil {
			return err
		}
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunSpecs is the -jobs entry point shared by the CLIs: it decodes the
// NDJSON job stream from r, materializes the jobs (lib and defaultSlew
// as in JobSpec.Job), evaluates them on the engine, and streams one
// NDJSON result line per job to w, in job order. failed counts per-job
// error records (the batch itself still completes: fail-soft); err is
// reserved for an unreadable spec stream, a failing writer, or an
// interrupted run (the batch context's error).
func RunSpecs(ctx context.Context, e *Engine, r io.Reader, lib *gate.Library, defaultSlew float64, w io.Writer) (failed, total int, err error) {
	st, err := RunSpecsJournal(ctx, e, r, lib, defaultSlew, w, nil, nil)
	return st.Failed, st.Total, err
}

// RunStats summarizes one RunSpecsJournal invocation.
type RunStats struct {
	Total    int // spec lines decoded
	Emitted  int // result lines written this run
	Failed   int // emitted error records
	Degraded int // emitted degraded (elmore-bound) records
	Skipped  int // jobs skipped as already done in the journal
	Requeued int // jobs re-queued after being in flight at the crash
}

// SpecRunOptions parameterizes RunSpecsOpts beyond the positional
// arguments of RunSpecsJournal. The zero value matches RunSpecsJournal's
// behavior exactly.
type SpecRunOptions struct {
	// Lib resolves path-job cells; nil is fine when no path jobs occur.
	Lib *gate.Library
	// DefaultSlew is the path-job input slew when a spec leaves "slew"
	// empty.
	DefaultSlew float64
	// Loader resolves net references (file path or inline text); nil
	// means DefaultTreeLoader. elmored injects its hot-tree LRU here.
	Loader TreeLoader
	// Journal and Replay are the crash-safe checkpoint pair; each may be
	// nil (no journaling / fresh start).
	Journal *Journal
	Replay  *Replay
	// Specs, when non-nil, bypasses the reader entirely — the caller
	// already decoded (and perhaps bounds-checked) the job stream.
	Specs []JobSpec
}

// RunSpecsJournal is RunSpecs with crash-safe checkpointing: jobs the
// replayed journal rp marks done are skipped (their results were
// already emitted by the previous run), jobs it marks started are
// re-queued, and every job this run completes is journaled to jr —
// "start" when a worker picks it up, "done" only after its result line
// reached w — so a kill-and-restart cycle emits every result exactly
// once across the concatenated outputs. jr and rp may each be nil (no
// journaling / fresh start). Jobs that ended with the batch context's
// cancellation are neither emitted nor journaled: the next resume
// re-queues them. The returned error reports an unreadable spec
// stream, a failing writer or journal, or an interrupted run.
func RunSpecsJournal(ctx context.Context, e *Engine, r io.Reader, lib *gate.Library, defaultSlew float64, w io.Writer, jr *Journal, rp *Replay) (RunStats, error) {
	return RunSpecsOpts(ctx, e, r, w, SpecRunOptions{
		Lib: lib, DefaultSlew: defaultSlew, Journal: jr, Replay: rp,
	})
}

// RunSpecsOpts is the options form of RunSpecsJournal; see
// SpecRunOptions for the extra knobs (injected tree loader, pre-decoded
// specs). r is ignored when opts.Specs is non-nil.
func RunSpecsOpts(ctx context.Context, e *Engine, r io.Reader, w io.Writer, opts SpecRunOptions) (RunStats, error) {
	specs := opts.Specs
	if specs == nil {
		var err error
		if specs, err = ReadSpecs(r); err != nil {
			return RunStats{}, err
		}
	}
	jr, rp := opts.Journal, opts.Replay
	st := RunStats{Total: len(specs)}
	jobs := make([]Job, 0, len(specs))
	orig := make([]int, 0, len(specs)) // submitted index -> spec index
	for i, s := range specs {
		if rp != nil {
			key := JobKey(i, s.ID)
			if rp.Done[key] {
				st.Skipped++
				continue
			}
			if rp.Started[key] {
				st.Requeued++
			}
		}
		jobs = append(jobs, s.JobLoader(opts.Lib, opts.DefaultSlew, opts.Loader))
		orig = append(orig, i)
	}
	if st.Requeued > 0 {
		telemetry.C("batch.resumed_jobs").Add(int64(st.Requeued))
	}

	// Shallow-copy the engine to chain the journal onto the worker
	// hooks without mutating the caller's value. Start records flow
	// through a per-worker buffered JournalWriter (attached to the
	// worker context by OnWorker, flushed when the worker exits), so
	// workers never convoy on the journal lock per job; done records
	// flow through one buffered writer on the emit goroutine below.
	eng := *e
	if jr != nil {
		prevWorker := eng.OnWorker
		eng.OnWorker = func(ctx context.Context, w int) (context.Context, func()) {
			var cleanup func()
			if prevWorker != nil {
				ctx2, prevCleanup := prevWorker(ctx, w)
				if ctx2 != nil {
					ctx = ctx2
				}
				cleanup = prevCleanup
			}
			jw := jr.Writer()
			return withJournalWriter(ctx, jw), func() {
				if jerr := jw.Flush(); jerr != nil {
					health.Note(health.Event{Check: "batch.journal_error", Detail: jerr.Error()})
				}
				if cleanup != nil {
					cleanup()
				}
			}
		}
		prev := eng.OnStart
		eng.OnStart = func(ctx context.Context, idx int, id string, trace telemetry.TraceContext) {
			if prev != nil {
				prev(ctx, idx, id, trace)
			}
			if jerr := journalWriterFrom(ctx).Start(orig[idx], id, trace.TraceID()); jerr != nil {
				health.Note(health.Event{Check: "batch.journal_error", Detail: jerr.Error()})
			}
		}
	}

	dw := jr.Writer() // buffered done records; emit goroutine only
	var werr error
	eng.RunFunc(ctx, jobs, func(res Result) {
		if res.Err != nil && resilience.Classify(res.Err) == resilience.Canceled {
			// Torn down, not failed: suppress the record so a resume
			// re-runs the job instead of trusting a cancellation error.
			return
		}
		res.Index = orig[res.Index]
		if werr != nil {
			return
		}
		if werr = WriteResult(w, res); werr != nil {
			return
		}
		st.Emitted++
		if res.Err != nil {
			st.Failed++
		}
		if res.Degraded != "" {
			st.Degraded++
		}
		if jr != nil {
			if jerr := dw.Done(res.Index, res.ID); jerr != nil {
				werr = jerr
			}
		}
	})
	if jr != nil {
		// Flush the emitter's buffered dones even when the run was cut
		// short: every result line already written must have its done
		// record on disk before Sync, or a resume would duplicate it.
		if ferr := dw.Flush(); ferr != nil && werr == nil {
			werr = ferr
		}
	}
	if werr != nil {
		return st, werr
	}
	if jr != nil {
		if err := jr.Sync(); err != nil {
			return st, err
		}
	}
	return st, ctx.Err()
}
