package batch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"elmore/internal/gate"
	"elmore/internal/sta"
)

// ResultRecord is the NDJSON form of one Result, as streamed by the
// -jobs mode of boundstat and sta: one JSON object per line, in job
// order. Exactly one of Sinks or Path is present on success; Error is
// set on failure (and both payloads are absent). All times are seconds.
type ResultRecord struct {
	Index     int          `json:"index"`
	ID        string       `json:"id,omitempty"`
	Error     string       `json:"error,omitempty"`
	CacheHit  bool         `json:"cache_hit,omitempty"`
	ElapsedNS int64        `json:"elapsed_ns"`
	Sinks     []SinkRecord `json:"sinks,omitempty"`
	Path      *PathRecord  `json:"path,omitempty"`
}

// SinkRecord reports the paper's step-input bounds at one node, plus
// the generalized-input window when the job asked for a ramp.
type SinkRecord struct {
	Node     string       `json:"node"`
	Elmore   float64      `json:"elmore"`
	Lower    float64      `json:"lower"`
	PRHTmin  float64      `json:"prh_tmin"`
	PRHTmax  float64      `json:"prh_tmax"`
	Sigma    float64      `json:"sigma"`
	Skewness float64      `json:"skewness"`
	RiseTime float64      `json:"rise_time"`
	Input    *InputRecord `json:"input,omitempty"`
}

// InputRecord is the generalized-input delay window (Theorem 2 /
// Corollary 2 terms) for a non-step excitation.
type InputRecord struct {
	Upper       float64 `json:"upper"`
	Lower       float64 `json:"lower"`
	OutputSigma float64 `json:"output_sigma"`
	OutputSkew  float64 `json:"output_skew"`
}

// PathRecord reports an STA path walk.
type PathRecord struct {
	ArrivalUB float64       `json:"arrival_ub"`
	ArrivalLB float64       `json:"arrival_lb"`
	Stages    []StageRecord `json:"stages"`
}

// StageRecord is one stage of a PathRecord.
type StageRecord struct {
	Cell       string  `json:"cell"`
	Sink       string  `json:"sink"`
	Ceff       float64 `json:"ceff"`
	GateDelay  float64 `json:"gate_delay"`
	OutputSlew float64 `json:"output_slew"`
	NetElmore  float64 `json:"net_elmore"`
	NetLower   float64 `json:"net_lower"`
	SinkSlew   float64 `json:"sink_slew"`
	ArrivalUB  float64 `json:"arrival_ub"`
	ArrivalLB  float64 `json:"arrival_lb"`
}

// Record converts an engine Result into its NDJSON form.
func Record(r Result) ResultRecord {
	rec := ResultRecord{
		Index:     r.Index,
		ID:        r.ID,
		CacheHit:  r.CacheHit,
		ElapsedNS: r.Elapsed.Nanoseconds(),
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		return rec
	}
	if r.Net != nil {
		for _, s := range r.Net.Sinks {
			rec.Sinks = append(rec.Sinks, sinkRecord(s))
		}
	}
	if r.Path != nil {
		p := &PathRecord{ArrivalUB: r.Path.ArrivalUB, ArrivalLB: r.Path.ArrivalLB}
		for _, st := range r.Path.Stages {
			p.Stages = append(p.Stages, stageRecord(st))
		}
		rec.Path = p
	}
	return rec
}

func sinkRecord(s SinkBounds) SinkRecord {
	out := SinkRecord{
		Node:     s.Node,
		Elmore:   s.Bounds.Elmore,
		Lower:    s.Bounds.Lower,
		PRHTmin:  s.Bounds.PRHTmin,
		PRHTmax:  s.Bounds.PRHTmax,
		Sigma:    s.Bounds.Sigma,
		Skewness: s.Bounds.Skewness,
		RiseTime: s.Bounds.RiseTime,
	}
	if s.Input != nil {
		out.Input = &InputRecord{
			Upper:       s.Input.Upper,
			Lower:       s.Input.Lower,
			OutputSigma: s.Input.OutputSigma,
			OutputSkew:  s.Input.OutputSkew,
		}
	}
	return out
}

func stageRecord(st sta.StageResult) StageRecord {
	return StageRecord{
		Cell:       st.Cell,
		Sink:       st.Sink,
		Ceff:       st.Ceff,
		GateDelay:  st.GateDelay,
		OutputSlew: st.OutputSlew,
		NetElmore:  st.NetElmore,
		NetLower:   st.NetLower,
		SinkSlew:   st.SinkSlew,
		ArrivalUB:  st.ArrivalUB,
		ArrivalLB:  st.ArrivalLB,
	}
}

// WriteResult writes one Result as an NDJSON line. A value the JSON
// encoder rejects (NaN/Inf should not escape the bound engines, but a
// batch must not die on one) degrades to an error record for that job.
func WriteResult(w io.Writer, r Result) error {
	rec := Record(r)
	b, err := json.Marshal(rec)
	if err != nil {
		b, err = json.Marshal(ResultRecord{Index: rec.Index, ID: rec.ID, ElapsedNS: rec.ElapsedNS,
			Error: fmt.Sprintf("batch: encode result: %v", err)})
		if err != nil {
			return err
		}
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunSpecs is the -jobs entry point shared by the CLIs: it decodes the
// NDJSON job stream from r, materializes the jobs (lib and defaultSlew
// as in JobSpec.Job), evaluates them on the engine, and streams one
// NDJSON result line per job to w, in job order. failed counts per-job
// error records (the batch itself still completes: fail-soft); err is
// reserved for an unreadable spec stream or a failing writer.
func RunSpecs(ctx context.Context, e *Engine, r io.Reader, lib *gate.Library, defaultSlew float64, w io.Writer) (failed, total int, err error) {
	specs, err := ReadSpecs(r)
	if err != nil {
		return 0, 0, err
	}
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = s.Job(lib, defaultSlew)
	}
	var werr error
	e.RunFunc(ctx, jobs, func(res Result) {
		if res.Err != nil {
			failed++
		}
		if werr == nil {
			werr = WriteResult(w, res)
		}
	})
	return failed, len(jobs), werr
}
