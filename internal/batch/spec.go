package batch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"elmore/internal/gate"
	netlistpkg "elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/sta"
	"elmore/internal/telemetry"
)

// JobSpec is one NDJSON job line, as read by the -jobs flag of
// boundstat and sta. A spec is a net job,
//
//	{"id":"n1","net":"nets/n1.sp","sinks":["out"],"rise":"1n"}
//
// a path job,
//
//	{"id":"p1","slew":"30p","stages":[{"cell":"inv_x1","net":"nets/n1.sp","sink":"out"}]}
//
// or — when "dt" is present alongside "net" — a transient sweep,
//
//	{"id":"t1","net":"nets/n1.sp","dt":"1p","sinks":["out"],"levels":[0.5]}
//
// Sinks defaults to every node of the net (for transient jobs it names
// the probes); rise defaults to "step" (a duration such as "0.5n"
// selects a saturated ramp, "0" degenerates to the step); slew defaults
// to the CLI's -slew value.
type JobSpec struct {
	ID string `json:"id,omitempty"`

	// TraceID, when set to a 32-hex-character lineage ID, continues an
	// existing trace instead of minting a fresh one — the hook a
	// sharding coordinator uses to keep one net's lineage intact across
	// worker processes. Malformed values are ignored (fresh mint).
	TraceID string `json:"trace_id,omitempty"`

	// Net jobs. Net names a netlist file; Netlist carries the deck text
	// inline (serve mode, where clients have no shared filesystem).
	// Setting both is an error.
	Net     string   `json:"net,omitempty"`     // netlist file
	Netlist string   `json:"netlist,omitempty"` // inline netlist text
	Sinks   []string `json:"sinks,omitempty"`
	Rise    string   `json:"rise,omitempty"`

	// Path jobs.
	Slew   string      `json:"slew,omitempty"` // input transition time
	Stages []StageSpec `json:"stages,omitempty"`

	// Transient-sweep jobs (net + dt): run the compiled simulation and
	// report threshold crossings instead of the closed-form bounds.
	DT     string    `json:"dt,omitempty"`     // fixed step, e.g. "1p"
	TEnd   string    `json:"t_end,omitempty"`  // horizon; empty estimates one
	Method string    `json:"method,omitempty"` // "trap" (default) or "be"
	Levels []float64 `json:"levels,omitempty"` // thresholds; empty means {0.5}
}

// StageSpec is one stage of a path job: the driving cell, the driven
// net (file path or inline text, as in JobSpec), and the sink node
// feeding the next stage.
type StageSpec struct {
	Cell    string `json:"cell"`
	Net     string `json:"net,omitempty"`
	Netlist string `json:"netlist,omitempty"`
	Sink    string `json:"sink"`
}

// ReadSpecs decodes an NDJSON job stream: one JSON object per line,
// blank lines and #-comment lines skipped. Decode errors carry the line
// number.
func ReadSpecs(r io.Reader) ([]JobSpec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var specs []JobSpec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var s JobSpec
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("batch: jobs line %d: %w", lineNo, err)
		}
		specs = append(specs, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: jobs: %w", err)
	}
	return specs, nil
}

// ParseRise converts a -rise style token into a signal: "" or "step"
// yields the ideal step, a duration yields a saturated ramp (a zero
// duration degenerates to the step; negative durations are rejected).
func ParseRise(tok string) (signal.Signal, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" || tok == "step" {
		return signal.Step{}, nil
	}
	tr, err := rctree.ParseValue(tok)
	if err != nil {
		return nil, fmt.Errorf("rise %q: %w", tok, err)
	}
	s := signal.SaturatedRamp{Tr: tr}
	if err := signal.Validate(s); err != nil {
		return nil, err
	}
	return s, nil
}

// TreeLoader resolves one spec net reference — a file path in net, or
// deck text in netlist (exactly one is non-empty) — into its RC tree.
// The hook lets a host intercept loads: elmored's hot-tree LRU serves
// repeated nets without re-parsing, and tests substitute synthetic
// trees without touching the filesystem.
type TreeLoader func(net, netlist string) (*rctree.Tree, error)

// DefaultTreeLoader opens net as a netlist file, or parses netlist as
// inline deck text. It is what Job uses when no loader is injected.
func DefaultTreeLoader(net, netlist string) (*rctree.Tree, error) {
	if netlist != "" {
		deck, err := netlistpkg.ParseString(netlist)
		if err != nil {
			return nil, fmt.Errorf("inline netlist: %w", err)
		}
		return deck.Tree, nil
	}
	return loadNet(net)
}

// Job materializes a spec with the default filesystem loader. See
// JobLoader.
func (s JobSpec) Job(lib *gate.Library, defaultSlew float64) Job {
	return s.JobLoader(lib, defaultSlew, nil)
}

// JobLoader materializes a spec. Spec-level problems (no kind, bad rise
// or slew, unknown cell, missing library) come back as a pre-failed Job
// — never a hard error — so one bad line costs one error record in the
// batch output, in keeping with the engine's fail-soft policy. Netlists
// are resolved lazily inside the worker for the same reason, through
// load (nil means DefaultTreeLoader). defaultSlew is the path-job input
// slew used when the spec leaves "slew" empty; lib may be nil when no
// path jobs occur.
func (s JobSpec) JobLoader(lib *gate.Library, defaultSlew float64, load TreeLoader) Job {
	if load == nil {
		load = DefaultTreeLoader
	}
	j := Job{ID: s.ID}
	if s.TraceID != "" {
		j.Trace, _ = telemetry.ParseTraceID(s.TraceID)
	}
	if s.Net != "" && s.Netlist != "" {
		j.Err = fmt.Errorf("batch: spec sets both net and netlist")
		return j
	}
	isNet := s.Net != "" || s.Netlist != ""
	isPath := len(s.Stages) > 0
	isTran := s.DT != ""
	switch {
	case isNet && isPath:
		j.Err = fmt.Errorf("batch: spec sets both net and stages")
	case !isNet && !isPath:
		j.Err = fmt.Errorf("batch: spec sets neither net nor stages")
	case !isTran && (s.TEnd != "" || s.Method != "" || len(s.Levels) > 0):
		j.Err = fmt.Errorf("batch: spec sets transient fields without dt")
	case isTran && isPath:
		j.Err = fmt.Errorf("batch: spec sets both dt and stages")
	case isTran:
		input, err := ParseRise(s.Rise)
		if err != nil {
			j.Err = fmt.Errorf("batch: spec: %w", err)
			return j
		}
		dt, err := rctree.ParseValue(s.DT)
		if err != nil {
			j.Err = fmt.Errorf("batch: spec dt: %w", err)
			return j
		}
		var tEnd float64
		if s.TEnd != "" {
			if tEnd, err = rctree.ParseValue(s.TEnd); err != nil {
				j.Err = fmt.Errorf("batch: spec t_end: %w", err)
				return j
			}
		}
		method, err := parseMethod(s.Method)
		if err != nil {
			j.Err = fmt.Errorf("batch: spec method: %w", err)
			return j
		}
		file, inline := s.Net, s.Netlist
		j.Tran = &TranJob{
			Load:   func() (*rctree.Tree, error) { return load(file, inline) },
			DT:     dt,
			TEnd:   tEnd,
			Method: method,
			Inputs: []signal.Signal{input},
			Probes: s.Sinks,
			Levels: s.Levels,
		}
	case isNet:
		input, err := ParseRise(s.Rise)
		if err != nil {
			j.Err = fmt.Errorf("batch: spec: %w", err)
			return j
		}
		file, inline := s.Net, s.Netlist
		j.Net = &NetJob{
			Load:  func() (*rctree.Tree, error) { return load(file, inline) },
			Sinks: s.Sinks,
			Input: input,
		}
	default: // path job
		slew := defaultSlew
		if s.Slew != "" {
			v, err := rctree.ParseValue(s.Slew)
			if err != nil {
				j.Err = fmt.Errorf("batch: spec slew: %w", err)
				return j
			}
			slew = v
		}
		if lib == nil {
			j.Err = fmt.Errorf("batch: path job needs a cell library")
			return j
		}
		cells := make([]*gate.Cell, len(s.Stages))
		for i, st := range s.Stages {
			if st.Net != "" && st.Netlist != "" {
				j.Err = fmt.Errorf("batch: spec stage %d sets both net and netlist", i)
				return j
			}
			cell, err := lib.Get(st.Cell)
			if err != nil {
				j.Err = fmt.Errorf("batch: spec stage %d: %w", i, err)
				return j
			}
			cells[i] = cell
		}
		stages := s.Stages
		j.Path = &PathJob{
			Load: func() (*sta.Path, error) {
				p := sta.Path{InputSlew: slew}
				for i, st := range stages {
					tree, err := load(st.Net, st.Netlist)
					if err != nil {
						return nil, fmt.Errorf("stage %d: %w", i, err)
					}
					p.Stages = append(p.Stages, sta.Stage{Cell: cells[i], Net: tree, Sink: st.Sink})
				}
				return &p, nil
			},
		}
	}
	return j
}

// parseMethod maps a spec "method" token to the integrator.
func parseMethod(tok string) (sim.Method, error) {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "", "trap", "trapezoidal":
		return sim.Trapezoidal, nil
	case "be", "euler", "backward-euler":
		return sim.BackwardEuler, nil
	}
	return sim.Trapezoidal, fmt.Errorf("unknown method %q (want trap or be)", tok)
}

// loadNet parses one netlist file into its RC tree.
func loadNet(path string) (*rctree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	deck, err := netlistpkg.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return deck.Tree, nil
}
