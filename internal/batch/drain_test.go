package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsThenDrains(t *testing.T) {
	var g Gate
	leave1, err := g.Enter()
	if err != nil {
		t.Fatal(err)
	}
	leave2, err := g.Enter()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	g.Shutdown()
	if !g.Draining() {
		t.Fatal("Draining() false after Shutdown")
	}
	if _, err := g.Enter(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Enter after Shutdown = %v, want ErrDraining", err)
	}
	// Drain blocks until both leave.
	done := make(chan error, 1)
	go func() { done <- g.Drain(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Drain returned %v with work in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	leave1()
	leave1() // double-leave must not corrupt the count
	leave2()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Drain did not settle after the last leave")
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestGateDrainTimeout(t *testing.T) {
	var g Gate
	leave, err := g.Enter()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck work = %v, want deadline exceeded", err)
	}
	leave()
	// After the straggler leaves, a second Drain settles immediately.
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
}

func TestGateDrainIdleSettlesImmediately(t *testing.T) {
	var g Gate
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on an idle gate = %v", err)
	}
}

func TestGateShutdownIdempotent(t *testing.T) {
	var g Gate
	g.Shutdown()
	g.Shutdown()
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after double Shutdown = %v", err)
	}
}

func TestGateConcurrent(t *testing.T) {
	var g Gate
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				leave, err := g.Enter()
				if err != nil {
					return // draining started
				}
				leave()
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("Drain under concurrent traffic = %v", err)
	}
	wg.Wait()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
}
