package batch

import (
	"context"
	"fmt"

	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sim"
)

// TranJob asks for a transient characterization sweep on one net: the
// tree is compiled, stamped, and factored once into a sim.Plan (shared
// through the engine Cache when one is configured), then executed for
// every input with one reusable Runner/Result pair — the zero-
// allocation steady-state path. The recorded outcome is the threshold
// crossing time of every probe at every level, which is what slew/
// corner sweeps consume; full waveforms are deliberately not retained
// across inputs.
type TranJob struct {
	Tree *rctree.Tree                 // pre-built net; takes precedence over Load
	Load func() (*rctree.Tree, error) // lazy loader, called in-worker

	DT     float64    // fixed step; must be positive
	Method sim.Method // integrator (default Trapezoidal)
	TEnd   float64    // horizon; <= 0 estimates one per input from the plan

	// Inputs lists the excitations to sweep; a nil entry is the ideal
	// step. An empty slice runs the ideal step once.
	Inputs []signal.Signal
	// Probes lists node names to measure; empty measures every node.
	Probes []string
	// Levels lists the thresholds to report; empty means {0.5}.
	Levels []float64
}

// TranCross is one measured threshold crossing. Reached is false when
// the waveform never reaches the level within the horizon (T is 0
// then) — a per-measurement outcome, not a job error.
type TranCross struct {
	Node    string
	Level   float64
	T       float64
	Reached bool
}

// TranRun carries the crossings for one input of the sweep, in
// Probes-major, Levels-minor order.
type TranRun struct {
	Input     int // index into TranJob.Inputs
	Crossings []TranCross
}

// TranResult is the outcome of one transient job.
type TranResult struct {
	Runs []TranRun
}

func (e *Engine) runTran(ctx context.Context, tj *TranJob, tree *rctree.Tree) (*TranResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	var (
		plan *sim.Plan
		hit  bool
		err  error
	)
	if e.Cache != nil {
		plan, hit, err = e.Cache.PlanCtx(ctx, tree, tj.DT, tj.Method)
	} else {
		plan, err = sim.NewPlan(tree, sim.PlanOptions{DT: tj.DT, Method: tj.Method})
	}
	if err != nil {
		return nil, false, err
	}

	names := tj.Probes
	if len(names) == 0 {
		names = tree.Names()
	}
	probes := make([]int, len(names))
	for k, name := range names {
		i, ok := tree.Index(name)
		if !ok {
			return nil, hit, fmt.Errorf("batch: net has no node %q", name)
		}
		probes[k] = i
	}
	levels := tj.Levels
	if len(levels) == 0 {
		levels = []float64{0.5}
	}
	inputs := tj.Inputs
	if len(inputs) == 0 {
		inputs = []signal.Signal{nil}
	}

	runner := plan.Runner()
	res := &sim.Result{}
	out := &TranResult{Runs: make([]TranRun, 0, len(inputs))}
	for k, in := range inputs {
		if err := ctx.Err(); err != nil {
			return nil, hit, err
		}
		if err := runner.RunInto(in, sim.RunOptions{TEnd: tj.TEnd, Probes: probes}, res); err != nil {
			return nil, hit, fmt.Errorf("batch: tran input %d: %w", k, err)
		}
		run := TranRun{Input: k, Crossings: make([]TranCross, 0, len(probes)*len(levels))}
		for pi, node := range probes {
			// One lazily built waveform per probe serves every level.
			w, err := res.Waveform(node)
			if err != nil {
				return nil, hit, err
			}
			for _, level := range levels {
				tc := TranCross{Node: names[pi], Level: level}
				if x, ok := w.Cross(level); ok {
					tc.T, tc.Reached = x, true
				}
				run.Crossings = append(run.Crossings, tc)
			}
		}
		out.Runs = append(out.Runs, run)
	}
	return out, hit, nil
}
