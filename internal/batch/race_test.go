package batch

// Concurrency-stress tests. They are meaningful under `go test -race`
// (the CI lane) but also assert behavioral invariants without it:
// single computation per circuit, stable ordering under many workers,
// and panic/cancellation isolation while the pool is saturated.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func TestConcurrentCacheAccess(t *testing.T) {
	cache := NewCache()
	base := chainNet(t, 16)
	var wg sync.WaitGroup
	sets := make([]any, 64)
	for g := 0; g < 64; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine looks up a clone, so pointer identity
			// cannot accidentally serialize them.
			ms, _, err := cache.Moments(base.Clone(), 3)
			if err != nil {
				t.Error(err)
				return
			}
			sets[g] = ms
		}()
	}
	wg.Wait()
	for g := 1; g < len(sets); g++ {
		if sets[g] != sets[0] {
			t.Fatalf("goroutine %d received a different moment set", g)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1 (single computation)", cache.Len())
	}
}

func TestConcurrentBatchWithTelemetry(t *testing.T) {
	// Full instrumentation on: metrics registry installed and a tracer
	// in the context, so the race detector sweeps the telemetry paths
	// the engine exercises (gauge updates, per-job spans).
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)
	var buf bytes.Buffer
	tracer := telemetry.NewTracer(telemetry.WriterSink{W: &syncWriter{w: &buf}})
	ctx := telemetry.WithTracer(context.Background(), tracer)

	tree := chainNet(t, 10)
	var jobs []Job
	for i := 0; i < 200; i++ {
		if i%17 == 0 {
			jobs = append(jobs, Job{ID: fmt.Sprintf("bad%d", i), Net: &NetJob{Load: func() (*rctree.Tree, error) {
				return nil, fmt.Errorf("bad deck")
			}}})
			continue
		}
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i), tree))
	}
	res := (&Engine{Workers: 8, Cache: NewCache()}).Run(ctx, jobs)
	var errs int
	for _, r := range res {
		if r.Err != nil {
			errs++
		}
	}
	if want := reg.Counter("batch.jobs").Value(); want != int64(len(jobs)) {
		t.Errorf("batch.jobs = %d, want %d", want, len(jobs))
	}
	if got := reg.Counter("batch.job_errors").Value(); got != int64(errs) {
		t.Errorf("batch.job_errors = %d, errors seen = %d", got, errs)
	}
	if reg.Counter("batch.cache_hits").Value() == 0 {
		t.Errorf("expected cache hits on a repeated net")
	}
	if depth := reg.Gauge("batch.queue_depth").Value(); depth != 0 {
		t.Errorf("queue depth after the batch = %v, want 0", depth)
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `"batch.job"`); n != len(jobs) {
		t.Errorf("trace has %d batch.job spans, want %d", n, len(jobs))
	}
}

// syncWriter serializes writes; the Tracer already locks around Emit,
// but the final buffer read races with nothing once Run returns.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestCancellationWhilePoolSaturated(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1024)
	release := make(chan struct{})
	tree := chainNet(t, 8)
	var jobs []Job
	for i := 0; i < 100; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Net: &NetJob{Load: func() (*rctree.Tree, error) {
			started <- struct{}{}
			<-release
			return tree, nil
		}}})
	}
	var canceled atomic.Bool
	go func() {
		// Wait for the pool to saturate, then cancel and release.
		for i := 0; i < 4; i++ {
			<-started
		}
		cancel()
		canceled.Store(true)
		close(release)
	}()
	res := (&Engine{Workers: 4}).Run(ctx, jobs)
	if !canceled.Load() {
		t.Fatalf("test harness never canceled")
	}
	errs := 0
	for _, r := range res {
		if r.Err != nil {
			errs++
		}
	}
	// Everything queued behind the cancellation must fail soft with the
	// context error; nothing may be silently dropped.
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	if errs < len(jobs)-8 {
		t.Errorf("only %d canceled-job errors out of %d", errs, len(jobs))
	}
}

func TestPanicIsolationUnderLoad(t *testing.T) {
	var jobs []Job
	for i := 0; i < 300; i++ {
		if i%7 == 3 {
			jobs = append(jobs, Job{ID: fmt.Sprintf("boom%d", i), Net: &NetJob{Load: func() (*rctree.Tree, error) {
				panic("worker bomb")
			}}})
			continue
		}
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i), topo.Random(int64(i), topo.RandomOptions{N: 1 + i%13})))
	}
	res := (&Engine{Workers: 8, Cache: NewCache()}).Run(context.Background(), jobs)
	for i, r := range res {
		wantBoom := strings.HasPrefix(jobs[i].ID, "boom")
		if wantBoom && (r.Err == nil || !strings.Contains(r.Err.Error(), "panicked")) {
			t.Fatalf("job %s: panic not isolated: %v", r.ID, r.Err)
		}
		if !wantBoom && r.Err != nil {
			t.Fatalf("job %s poisoned by a sibling panic: %v", r.ID, r.Err)
		}
	}
}
