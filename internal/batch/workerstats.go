package batch

import (
	"context"
	"fmt"
	"time"

	"elmore/internal/telemetry"
)

// Per-worker accounting. Each worker goroutine owns one WorkerStats for
// the duration of a Run and is its only writer; RunFunc reads the slice
// only after the worker WaitGroup settles, so the fields are plain
// (non-atomic) and cost two time.Now calls per channel operation —
// noise next to a job's moment pass.
//
// The time buckets tile a worker's wall time:
//
//	WallNS ≈ IdleNS + BusyNS + StallNS
//
//	IdleNS  — blocked receiving on the dispatch channel (no work ready),
//	          including the final blocked receive that observes close.
//	BusyNS  — inside runJob (compute, retries, degradation).
//	StallNS — blocked sending a finished Result (reorder-buffer
//	          backpressure: the consumer is behind).
//
// LockWaitNS is a sub-bucket of BusyNS, not a fourth tile: it counts
// time blocked on the shared Cache (mutex acquisition plus waiting for
// another worker's in-flight compute of the same entry), attributed via
// the context the engine threads into each job.
type WorkerStats struct {
	Worker      int   // worker index, 0-based
	Jobs        int64 // jobs this worker completed
	BusyNS      int64 // time inside runJob
	IdleNS      int64 // time blocked waiting for work
	StallNS     int64 // time blocked handing results to the reorder buffer
	LockWaitNS  int64 // of BusyNS: time blocked on shared-cache locks
	CacheHits   int64 // cache hits observed by this worker
	CacheMisses int64 // cache misses (this worker computed the entry)
	WallNS      int64 // total time the worker goroutine was alive
}

// Accounted returns the fraction of wall time explained by the three
// top-level buckets. Values near 1.0 mean the attribution is trustworthy;
// the gap is loop overhead (gauge updates, OnStart hooks).
func (ws WorkerStats) Accounted() float64 {
	if ws.WallNS <= 0 {
		return 0
	}
	return float64(ws.BusyNS+ws.IdleNS+ws.StallNS) / float64(ws.WallNS)
}

// Utilization returns BusyNS/WallNS — the fraction of the worker's life
// spent doing jobs rather than waiting.
func (ws WorkerStats) Utilization() float64 {
	if ws.WallNS <= 0 {
		return 0
	}
	return float64(ws.BusyNS) / float64(ws.WallNS)
}

// PoolStats is the whole-run accounting RunFunc assembles after the
// workers exit: one WorkerStats per worker plus reorder-buffer pressure
// figures. Delivered through Engine.OnStats and folded into the
// Reporter summary.
type PoolStats struct {
	Jobs          int
	Workers       int
	WallNS        int64         // RunFunc wall time (dispatch to last result)
	Worker        []WorkerStats // one entry per worker, indexed by Worker
	ReorderPeak   int           // peak reorder-buffer occupancy (buffered results)
	ReorderStalls int64         // results that arrived ahead of the emit cursor
}

// Efficiency returns the parallel efficiency of the run: total busy
// time divided by workers × wall time. 1.0 means every worker computed
// for the whole run; the shortfall is idle + stall + overhead —
// exactly what a flat scaling curve is made of.
func (rs PoolStats) Efficiency() float64 {
	if rs.WallNS <= 0 || rs.Workers <= 0 {
		return 0
	}
	var busy int64
	for _, ws := range rs.Worker {
		busy += ws.BusyNS
	}
	return float64(busy) / (float64(rs.Workers) * float64(rs.WallNS))
}

// workerGaugeNames are the per-worker gauge leaves publish maintains
// under the batch.worker{N}. prefix. One list, so publishing and
// resetting stale workers cannot drift apart.
var workerGaugeNames = [...]string{
	"jobs", "busy_seconds", "idle_seconds", "stall_seconds",
	"lock_wait_seconds", "utilization",
}

// publish mirrors the run's accounting into reg as gauges so the
// Prometheus exposition shows the last run's shape: one efficiency
// gauge plus a small fixed set per worker (worker counts are bounded by
// GOMAXPROCS, so the name-space stays small). Gauges are Set, not
// Add — each run overwrites the last, and workers beyond this run's
// count left over from a wider previous run are zeroed (batch.workers
// records the high-water mark within this registry). Nil-safe.
func (rs PoolStats) publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	prev := int(reg.Gauge("batch.workers").Value())
	reg.Gauge("batch.workers").Set(float64(rs.Workers))
	reg.Gauge("batch.parallel_efficiency").Set(rs.Efficiency())
	reg.Gauge("batch.reorder_peak").Set(float64(rs.ReorderPeak))
	for _, ws := range rs.Worker {
		p := fmt.Sprintf("batch.worker%d.", ws.Worker)
		reg.Gauge(p + "jobs").Set(float64(ws.Jobs))
		reg.Gauge(p + "busy_seconds").Set(float64(ws.BusyNS) / 1e9)
		reg.Gauge(p + "idle_seconds").Set(float64(ws.IdleNS) / 1e9)
		reg.Gauge(p + "stall_seconds").Set(float64(ws.StallNS) / 1e9)
		reg.Gauge(p + "lock_wait_seconds").Set(float64(ws.LockWaitNS) / 1e9)
		reg.Gauge(p + "utilization").Set(ws.Utilization())
	}
	for w := rs.Workers; w < prev; w++ {
		p := fmt.Sprintf("batch.worker%d.", w)
		for _, leaf := range workerGaugeNames {
			reg.Gauge(p + leaf).Set(0)
		}
	}
}

// workerStatsKey carries a *WorkerStats through the context the engine
// hands each job, so lower layers (the shared Cache) can attribute
// their lock wait to the worker that paid it.
type workerStatsKey struct{}

func withWorkerStats(ctx context.Context, ws *WorkerStats) context.Context {
	return context.WithValue(ctx, workerStatsKey{}, ws)
}

// workerStatsFrom returns the WorkerStats carried by ctx, or nil when
// the caller is not a batch worker (direct Cache use, tests).
func workerStatsFrom(ctx context.Context) *WorkerStats {
	ws, _ := ctx.Value(workerStatsKey{}).(*WorkerStats)
	return ws
}

// lockTimer measures one blocking region (mutex acquire, once-wait) and
// charges it to the worker, if any. Usage:
//
//	t0 := lockStart(ws)
//	mu.Lock()
//	lockEnd(ws, t0)
func lockStart(ws *WorkerStats) time.Time {
	if ws == nil {
		return time.Time{}
	}
	return time.Now()
}

func lockEnd(ws *WorkerStats, t0 time.Time) {
	if ws == nil {
		return
	}
	ws.LockWaitNS += time.Since(t0).Nanoseconds()
}
