package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"elmore/internal/telemetry"
)

func openJournal(t *testing.T, path string) (*Journal, *Replay) {
	t.Helper()
	jr, rp, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return jr, rp
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, rp := openJournal(t, path)
	if len(rp.Done) != 0 || len(rp.Started) != 0 {
		t.Fatalf("fresh journal replayed state: %+v", rp)
	}
	if err := jr.Start(0, "a", ""); err != nil {
		t.Fatal(err)
	}
	if err := jr.Start(1, "b", ""); err != nil {
		t.Fatal(err)
	}
	if err := jr.Done(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	jr2, rp2 := openJournal(t, path)
	if !rp2.Done[JobKey(0, "a")] || len(rp2.Done) != 1 {
		t.Errorf("Done = %v, want exactly {0:a}", rp2.Done)
	}
	if !rp2.Started[JobKey(1, "b")] || len(rp2.Started) != 1 {
		t.Errorf("Started = %v, want exactly {1:b} (done keys must leave Started)", rp2.Started)
	}
	// The reopened journal appends, never truncates.
	if err := jr2.Done(1, "b"); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	jr3, rp3 := openJournal(t, path)
	defer jr3.Close()
	if len(rp3.Done) != 2 || len(rp3.Started) != 0 {
		t.Errorf("after second run: Done=%v Started=%v", rp3.Done, rp3.Started)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	cases := []struct {
		name string
		tail string
	}{
		{"mid-append", `{"op":"start","key":"1:`},
		{"undecodable-last-line", "{garbage\n"},
		{"unknown-op-last-line", `{"op":"wip","key":"1:b"}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.ndjson")
			content := `{"op":"start","key":"0:a"}` + "\n" +
				`{"op":"done","key":"0:a"}` + "\n" + tc.tail
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			jr, rp := openJournal(t, path)
			defer jr.Close()
			if !rp.Done[JobKey(0, "a")] || len(rp.Done) != 1 || len(rp.Started) != 0 {
				t.Errorf("replay = %+v, want the intact prefix only", rp)
			}
		})
	}
}

func TestJournalInteriorCorruptionRejected(t *testing.T) {
	cases := []struct {
		name    string
		content string
		want    string
	}{
		{
			"undecodable interior line",
			`{"op":"start","key":"0:a"}` + "\n{garbage\n" + `{"op":"done","key":"0:a"}` + "\n",
			"line 2",
		},
		{
			"unknown interior op",
			`{"op":"frobnicate","key":"0:a"}` + "\n" + `{"op":"done","key":"0:a"}` + "\n",
			"unknown op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.ndjson")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := OpenJournal(path)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("OpenJournal = %v, want an error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestJournalSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jr, _ := openJournal(t, path)
	jr.SyncEvery = 2
	if err := jr.Done(0, "a"); err != nil {
		t.Fatal(err)
	}
	// One done record is below the batch size: still buffered.
	if b, err := os.ReadFile(path); err != nil || len(b) != 0 {
		t.Errorf("journal flushed before the batch filled: %q err=%v", b, err)
	}
	if err := jr.Done(1, "b"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "\n"); got != 2 {
		t.Errorf("after SyncEvery dones the file holds %d lines, want 2", got)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var jr *Journal
	if err := jr.Start(0, "a", ""); err != nil {
		t.Errorf("nil Start: %v", err)
	}
	if err := jr.Done(0, "a"); err != nil {
		t.Errorf("nil Done: %v", err)
	}
	if err := jr.Sync(); err != nil {
		t.Errorf("nil Sync: %v", err)
	}
	if err := jr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// decodeRecords parses an NDJSON result stream.
func decodeRecords(t *testing.T, b []byte) []ResultRecord {
	t.Helper()
	var recs []ResultRecord
	for ln, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		var rec ResultRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("output line %d: %v", ln+1, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestRunSpecsJournalResumeExactlyOnce is the kill-and-restart
// integration test: run one, interrupted mid-batch, emits a prefix and
// journals it; run two resumes from the journal, skips the done jobs,
// re-queues the in-flight ones, and finishes the rest; across the
// concatenated outputs every job appears exactly once. A third run
// finds nothing left to do.
func TestRunSpecsJournalResumeExactlyOnce(t *testing.T) {
	netPath, lib := writeSpecFiles(t)
	const n = 40
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf(`{"id":"n%d","net":%q,"sinks":["z"]}`, i, netPath))
	}
	stream := strings.Join(lines, "\n")
	journalPath := filepath.Join(t.TempDir(), "resume.journal")

	// Run 1: the batch context is cancelled after a dozen jobs start —
	// the graceful-shutdown path a SIGTERM takes in the CLIs.
	jr1, rp1 := openJournal(t, journalPath)
	if len(rp1.Done) != 0 || len(rp1.Started) != 0 {
		t.Fatalf("fresh journal replayed state: %+v", rp1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	eng := &Engine{Workers: 4, OnStart: func(context.Context, int, string, telemetry.TraceContext) {
		if started.Add(1) == 12 {
			cancel()
		}
	}}
	var out1 bytes.Buffer
	st1, err := RunSpecsJournal(ctx, eng, strings.NewReader(stream), lib, 25e-12, &out1, jr1, rp1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if err := jr1.Close(); err != nil {
		t.Fatal(err)
	}
	if st1.Emitted >= n {
		t.Fatalf("interrupted run emitted all %d jobs; cancellation had no effect", n)
	}
	recs1 := decodeRecords(t, out1.Bytes())
	if len(recs1) != st1.Emitted {
		t.Fatalf("run 1 wrote %d lines but reported Emitted=%d", len(recs1), st1.Emitted)
	}

	// Run 2: resume. Done jobs are skipped, in-flight ones re-queued.
	jr2, rp2 := openJournal(t, journalPath)
	if len(rp2.Done) != st1.Emitted {
		t.Errorf("journal replayed %d done jobs, want %d (one per emitted line)", len(rp2.Done), st1.Emitted)
	}
	var out2 bytes.Buffer
	st2, err := RunSpecsJournal(context.Background(), &Engine{Workers: 4},
		strings.NewReader(stream), lib, 25e-12, &out2, jr2, rp2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	if st2.Skipped != st1.Emitted {
		t.Errorf("resume skipped %d jobs, want %d", st2.Skipped, st1.Emitted)
	}
	if st2.Requeued != len(rp2.Started) {
		t.Errorf("resume re-queued %d jobs, want %d in-flight journal entries", st2.Requeued, len(rp2.Started))
	}
	if st2.Emitted != n-st1.Emitted {
		t.Errorf("resume emitted %d jobs, want the remaining %d", st2.Emitted, n-st1.Emitted)
	}

	// Exactly-once: the concatenated outputs cover every job once.
	seen := make(map[int]int)
	for _, rec := range append(recs1, decodeRecords(t, out2.Bytes())...) {
		seen[rec.Index]++
		if want := fmt.Sprintf("n%d", rec.Index); rec.ID != want {
			t.Errorf("record index %d has id %q, want %q (index remap broken)", rec.Index, rec.ID, want)
		}
		if rec.Error != "" {
			t.Errorf("job %d failed: %s", rec.Index, rec.Error)
		}
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("job %d emitted %d times, want exactly once", i, seen[i])
		}
	}

	// Run 3: everything is done; nothing runs, nothing is emitted.
	jr3, rp3 := openJournal(t, journalPath)
	var out3 bytes.Buffer
	st3, err := RunSpecsJournal(context.Background(), &Engine{Workers: 4},
		strings.NewReader(stream), lib, 25e-12, &out3, jr3, rp3)
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	if err := jr3.Close(); err != nil {
		t.Fatal(err)
	}
	if st3.Skipped != n || st3.Emitted != 0 || out3.Len() != 0 {
		t.Errorf("third run: skipped=%d emitted=%d out=%q, want all %d skipped",
			st3.Skipped, st3.Emitted, out3.String(), n)
	}
}
