package batch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elmore/internal/health"
	"elmore/internal/telemetry"
)

// Reporter turns a batch run into operator-facing output: periodic
// progress lines, an NDJSON log of slow jobs (with their captured span
// trees), and one final NDJSON run summary. Every field is optional —
// a nil writer disables that output — so the zero value is inert and
// the engine pays nothing when no Reporter is installed.
//
// A Reporter may be shared by concurrent Runs of the same Engine: the
// writers are serialized internally, while per-run aggregation state
// lives in the run, not the Reporter.
type Reporter struct {
	// Progress receives human-readable progress lines (done/total,
	// error count, rate, ETA, queue depth) every Interval, plus one
	// final line when the run completes. Typically os.Stderr.
	Progress io.Writer
	// Interval is the progress period; <= 0 means 2s.
	Interval time.Duration
	// SlowThreshold marks jobs whose wall time meets or exceeds it as
	// slow; <= 0 disables the slow log.
	SlowThreshold time.Duration
	// Slow receives one NDJSON record per slow job, including the
	// job's span tree when no ambient tracer already claims the spans.
	Slow io.Writer
	// Summary receives the final NDJSON batch_summary record.
	Summary io.Writer
	// SLOs are the run's declarative latency objectives (parsed from
	// -slo). Each finished job is scored good or bad against every
	// objective; the summary reports the counts and burn rates, and
	// they are published as batch.slo.* gauges at run end.
	SLOs []telemetry.SLO

	mu  sync.Mutex       // serializes Slow/Summary/Progress writes
	now func() time.Time // test hook; nil means time.Now
}

func (rep *Reporter) clock() time.Time {
	if rep.now != nil {
		return rep.now()
	}
	return time.Now()
}

func (rep *Reporter) interval() time.Duration {
	if rep.Interval > 0 {
		return rep.Interval
	}
	return 2 * time.Second
}

// captureSpans reports whether runJob should install a per-job memory
// tracer so a slow job's spans can be dumped. An ambient tracer wins:
// its trace already has the spans, and re-rooting them under a second
// tracer would double-emit.
func (rep *Reporter) captureSpans(ctx context.Context) bool {
	return rep != nil && rep.Slow != nil && rep.SlowThreshold > 0 &&
		telemetry.TracerFrom(ctx) == nil
}

// slowRecord is the NDJSON schema of one slow-job line.
type slowRecord struct {
	Record    string            `json:"record"` // "slow_job"
	Index     int               `json:"index"`
	ID        string            `json:"id,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Error     string            `json:"error,omitempty"`
	Spans     []json.RawMessage `json:"spans,omitempty"`
}

// noteJob is called from runJob's defer for every job; it writes a
// slow_job record when the job crossed the threshold and flags the
// breach to the flight recorder.
func (rep *Reporter) noteJob(idx int, id string, trace telemetry.TraceContext, jobErr error, elapsed time.Duration, spans *memSink) {
	if rep == nil || rep.SlowThreshold <= 0 || elapsed < rep.SlowThreshold {
		return
	}
	if telemetry.FlightEnabled() {
		telemetry.FlightRecord(telemetry.FlightEvent{
			Kind: telemetry.FlightSlowJob, Trace: trace, Index: int64(idx),
			DurNS: elapsed.Nanoseconds(), Label: id,
		})
		telemetry.FlightDump("slow-job")
	}
	if rep.Slow == nil {
		return
	}
	rec := slowRecord{
		Record:    "slow_job",
		Index:     idx,
		ID:        id,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if jobErr != nil {
		rec.Error = jobErr.Error()
	}
	if spans != nil {
		rec.Spans = spans.take()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.Slow.Write(append(line, '\n'))
}

// memSink buffers span records in memory so they can be attached to a
// slow_job record — or dropped for free when the job was fast. The
// Tracer serializes Emit calls, so no locking is needed here.
type memSink struct {
	lines []json.RawMessage
}

func (s *memSink) Emit(record []byte) error {
	s.lines = append(s.lines, json.RawMessage(record))
	return nil
}

func (s *memSink) take() []json.RawMessage { return s.lines }

// runReport is the per-Run aggregation state behind a Reporter.
type runReport struct {
	rep     *Reporter
	total   int
	start   time.Time
	pending *atomic.Int64 // jobs not yet picked up by a worker
	done    atomic.Int64
	errs    atomic.Int64
	stop    chan struct{}
	ticker  sync.WaitGroup

	// Consumer-loop state: observe() runs only on RunFunc's calling
	// goroutine, so these need no locking.
	//
	// Latency aggregation is bounded-memory: every sample lands in the
	// fixed-size sketch, and only small runs (total <=
	// exactLatencyThreshold) additionally keep the exact samples for
	// exact percentiles. Before PR 9 the exact slice was unconditional —
	// O(jobs) memory, untenable on 1M-net runs.
	sketch        *telemetry.DurationSketch
	latExact      []time.Duration // nil on large runs
	slo           *telemetry.SLOTracker
	cacheHits     int64
	slowJobs      int64
	errsByKind    map[string]int64
	healthEvents0 int64
	healthViol0   int64

	// stats is set by RunFunc after the workers exit and before the
	// deferred finish runs; nil when the engine predates accounting
	// (zero-job runs).
	stats *PoolStats
}

// exactLatencyThreshold is the run size up to which the summary keeps
// exact per-job latencies alongside the sketch: small runs get exact
// percentiles, large runs stay bounded-memory (the sketch alone).
const exactLatencyThreshold = 4096

// begin starts per-run reporting: snapshots the health counters and,
// when Progress is set, launches the ticker goroutine.
func (rep *Reporter) begin(total int, pending *atomic.Int64) *runReport {
	rr := &runReport{
		rep:        rep,
		total:      total,
		start:      rep.clock(),
		pending:    pending,
		stop:       make(chan struct{}),
		sketch:     telemetry.NewDurationSketch(),
		slo:        telemetry.NewSLOTracker(rep.SLOs),
		errsByKind: make(map[string]int64),
	}
	if total <= exactLatencyThreshold {
		rr.latExact = make([]time.Duration, 0, total)
	}
	if m := health.Default(); m != nil {
		rr.healthEvents0 = m.Events()
		rr.healthViol0 = m.Violations()
	}
	if rep.Progress != nil {
		rr.ticker.Add(1)
		go func() {
			defer rr.ticker.Done()
			t := time.NewTicker(rep.interval())
			defer t.Stop()
			for {
				select {
				case <-rr.stop:
					return
				case <-t.C:
					rr.progressLine()
				}
			}
		}()
	}
	return rr
}

// observe folds one finished job into the run statistics. Called on
// the RunFunc goroutine only.
func (rr *runReport) observe(r Result) {
	rr.done.Add(1)
	rr.sketch.Observe(r.Elapsed)
	if rr.latExact != nil {
		rr.latExact = append(rr.latExact, r.Elapsed)
	}
	rr.slo.Observe(r.Elapsed, r.Err != nil)
	if r.CacheHit {
		rr.cacheHits++
	}
	if rr.rep.SlowThreshold > 0 && r.Elapsed >= rr.rep.SlowThreshold {
		rr.slowJobs++
	}
	if r.Err != nil {
		rr.errs.Add(1)
		switch {
		case errors.Is(r.Err, context.DeadlineExceeded):
			rr.errsByKind["timeout"]++
		case errors.Is(r.Err, context.Canceled):
			rr.errsByKind["canceled"]++
		default:
			rr.errsByKind["failed"]++
		}
	}
}

// progressLine writes one progress line; safe to call from the ticker
// goroutine (it touches only atomics and the serialized writer).
func (rr *runReport) progressLine() {
	rep := rr.rep
	if rep.Progress == nil {
		return
	}
	done := rr.done.Load()
	elapsed := rep.clock().Sub(rr.start).Seconds()
	rate, eta := 0.0, "?"
	if done > 0 && elapsed > 0 {
		rate = float64(done) / elapsed
		eta = fmt.Sprintf("%.1fs", float64(rr.total-int(done))/rate)
	}
	line := fmt.Sprintf("batch: %d/%d done, %d errors, %.1f jobs/s, eta %s, queue %d\n",
		done, rr.total, rr.errs.Load(), rate, eta, rr.pending.Load())
	rep.mu.Lock()
	defer rep.mu.Unlock()
	io.WriteString(rep.Progress, line)
}

// summaryRecord is the NDJSON schema of the final run summary. The
// workers array is the per-worker utilization table; efficiency is
// Σbusy / (workers × wall), the number a scaling sweep plots.
type summaryRecord struct {
	Record       string           `json:"record"` // "batch_summary"
	Jobs         int              `json:"jobs"`
	Errors       int64            `json:"errors"`
	ErrorsByKind map[string]int64 `json:"errors_by_kind,omitempty"`
	CacheHits    int64            `json:"cache_hits"`
	CacheHitRate float64          `json:"cache_hit_rate"`
	SlowJobs     int64            `json:"slow_jobs"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	LatencyMS    latencyStats     `json:"latency_ms"`
	// LatencySource is "exact" (small runs keep every sample) or
	// "sketch" (large runs: bounded-memory quantile estimates, ~1%
	// relative error, max exact).
	LatencySource string      `json:"latency_source,omitempty"`
	SLO           []sloRecord `json:"slo,omitempty"`
	HealthEvents  int64       `json:"health_events"`
	HealthViol    int64       `json:"health_violations"`

	Workers       []workerRecord `json:"workers,omitempty"`
	Efficiency    float64        `json:"parallel_efficiency,omitempty"`
	ReorderPeak   int            `json:"reorder_peak,omitempty"`
	ReorderStalls int64          `json:"reorder_stalls,omitempty"`
}

// workerRecord is one row of the per-worker utilization table.
type workerRecord struct {
	Worker      int     `json:"worker"`
	Jobs        int64   `json:"jobs"`
	BusyMS      float64 `json:"busy_ms"`
	IdleMS      float64 `json:"idle_ms"`
	StallMS     float64 `json:"stall_ms"`
	LockWaitMS  float64 `json:"lock_wait_ms"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Utilization float64 `json:"utilization"`
	Accounted   float64 `json:"accounted"`
}

type latencyStats struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// sloRecord is one objective's row in the summary.
type sloRecord struct {
	Name     string  `json:"name"` // "p99"
	TargetMS float64 `json:"target_ms"`
	Good     int64   `json:"good"`
	Bad      int64   `json:"bad"`
	BurnRate float64 `json:"burn_rate"`
}

// finish stops the ticker, writes the final progress line, and emits
// the batch_summary record.
func (rr *runReport) finish() {
	close(rr.stop)
	rr.ticker.Wait()
	rr.progressLine()
	rr.slo.Publish()
	rep := rr.rep
	if rep.Summary == nil {
		return
	}
	rec := summaryRecord{
		Record:    "batch_summary",
		Jobs:      rr.total,
		Errors:    rr.errs.Load(),
		CacheHits: rr.cacheHits,
		SlowJobs:  rr.slowJobs,
		ElapsedMS: float64(rep.clock().Sub(rr.start)) / float64(time.Millisecond),
	}
	if rr.latExact != nil {
		rec.LatencyMS = percentiles(rr.latExact)
		rec.LatencySource = "exact"
	} else {
		rec.LatencyMS = sketchStats(rr.sketch)
		rec.LatencySource = "sketch"
	}
	for i, s := range rep.SLOs {
		rec.SLO = append(rec.SLO, sloRecord{
			Name:     s.Name,
			TargetMS: float64(s.Target) / float64(time.Millisecond),
			Good:     rr.slo.Good(i),
			Bad:      rr.slo.Bad(i),
			BurnRate: rr.slo.BurnRate(i),
		})
	}
	if len(rr.errsByKind) > 0 {
		rec.ErrorsByKind = rr.errsByKind
	}
	if rr.total > 0 {
		rec.CacheHitRate = float64(rr.cacheHits) / float64(rr.total)
	}
	if m := health.Default(); m != nil {
		rec.HealthEvents = m.Events() - rr.healthEvents0
		rec.HealthViol = m.Violations() - rr.healthViol0
	}
	if rs := rr.stats; rs != nil {
		rec.Efficiency = rs.Efficiency()
		rec.ReorderPeak = rs.ReorderPeak
		rec.ReorderStalls = rs.ReorderStalls
		const ms = float64(time.Millisecond)
		for _, ws := range rs.Worker {
			rec.Workers = append(rec.Workers, workerRecord{
				Worker:      ws.Worker,
				Jobs:        ws.Jobs,
				BusyMS:      float64(ws.BusyNS) / ms,
				IdleMS:      float64(ws.IdleNS) / ms,
				StallMS:     float64(ws.StallNS) / ms,
				LockWaitMS:  float64(ws.LockWaitNS) / ms,
				CacheHits:   ws.CacheHits,
				CacheMisses: ws.CacheMisses,
				Utilization: ws.Utilization(),
				Accounted:   ws.Accounted(),
			})
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.Summary.Write(append(line, '\n'))
}

// percentiles computes exact nearest-rank p50/p95/p99/max in
// milliseconds; the small-run path.
func percentiles(lat []time.Duration) latencyStats {
	if len(lat) == 0 {
		return latencyStats{}
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return latencyStats{
		P50: rank(0.50),
		P95: rank(0.95),
		P99: rank(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// sketchStats reads the same quantiles from the bounded-memory sketch;
// the large-run path (max is exact, the rest ~1% relative error).
func sketchStats(s *telemetry.DurationSketch) latencyStats {
	if s == nil || s.Count() == 0 {
		return latencyStats{}
	}
	const ms = float64(time.Millisecond)
	return latencyStats{
		P50: float64(s.Quantile(0.50)) / ms,
		P95: float64(s.Quantile(0.95)) / ms,
		P99: float64(s.Quantile(0.99)) / ms,
		Max: float64(s.Max()) / ms,
	}
}
