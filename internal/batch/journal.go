package batch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"elmore/internal/faultinject"
	"elmore/internal/telemetry"
)

// Journal is the crash-safe checkpoint log of a batch run: an
// append-only NDJSON file with one record per state transition,
//
//	{"op":"start","key":"17:n17"}
//	{"op":"done","key":"17:n17"}
//
// where the key is the job's position in the spec stream plus its ID
// (JobKey). "start" is appended the moment a worker picks the job up;
// "done" only after the job's result line has reached the output
// writer, so on replay a done job is provably emitted exactly once and
// a started-but-not-done job was in flight when the process died and
// must be re-queued.
//
// Durability is batched: the file is fsynced every SyncEvery done
// records (and on Close), bounding both the data-loss window after a
// crash — at most SyncEvery duplicated result lines, never a lost one —
// and the per-job fsync cost. A torn final line (the crash happened
// mid-append) is tolerated on replay; torn interior lines are not, as
// they indicate corruption rather than an interrupted append.
//
// A Journal is safe for concurrent use by the engine's workers.
type Journal struct {
	// SyncEvery is the number of done records between fsyncs; <= 0
	// means 32.
	SyncEvery int

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	pending int // done records since the last fsync
}

// journalRecord is one NDJSON journal line. Start records carry the
// job's trace ID (PR 9) so a crashed run's in-flight jobs keep their
// lineage across resume; done records don't repeat it. Pre-PR-9
// journals without the field replay unchanged.
type journalRecord struct {
	Op    string `json:"op"` // "start" or "done"
	Key   string `json:"key"`
	Trace string `json:"trace,omitempty"`
}

// JobKey names one job for the journal: its position in the spec
// stream plus its caller-chosen ID. The index keeps distinct jobs with
// duplicate (or empty) IDs distinct; the ID catches a resume against a
// reordered spec file.
func JobKey(index int, id string) string {
	return fmt.Sprintf("%d:%s", index, id)
}

// Replay is the state recovered from an existing journal.
type Replay struct {
	// Done holds the keys of jobs whose results were fully emitted.
	Done map[string]bool
	// Started holds the keys of jobs that were picked up but never
	// finished — in flight when the previous run died. (Keys in Done
	// are removed from Started.)
	Started map[string]bool
}

// OpenJournal opens (creating if needed) the journal at path, replays
// any existing records, and returns the journal positioned for
// appending plus the recovered state.
func OpenJournal(path string) (*Journal, *Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("batch: journal: %w", err)
	}
	rp, err := readReplay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Position for appending after the replay scan.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("batch: journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, rp, nil
}

// readReplay scans the journal records from r. A torn final line is
// tolerated (the previous process died mid-append); any other
// malformed line fails the replay.
func readReplay(r io.Reader) (*Replay, error) {
	rp := &Replay{Done: make(map[string]bool), Started: make(map[string]bool)}
	br := bufio.NewReader(r)
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// A non-empty remainder without a trailing newline is the
			// torn tail of an interrupted append: ignore it.
			return rp, nil
		}
		if err != nil {
			return nil, fmt.Errorf("batch: journal: %w", err)
		}
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var rec journalRecord
		if derr := json.Unmarshal([]byte(line), &rec); derr != nil {
			// Is this the final line? Peek: EOF right after means the
			// newline made it but the payload did not decode — still
			// treat an undecodable *last* line as torn.
			if _, perr := br.Peek(1); perr == io.EOF {
				return rp, nil
			}
			return nil, fmt.Errorf("batch: journal line %d: %w", lineNo, derr)
		}
		switch rec.Op {
		case "start":
			if !rp.Done[rec.Key] {
				rp.Started[rec.Key] = true
			}
		case "done":
			rp.Done[rec.Key] = true
			delete(rp.Started, rec.Key)
		default:
			if _, perr := br.Peek(1); perr == io.EOF {
				return rp, nil
			}
			return nil, fmt.Errorf("batch: journal line %d: unknown op %q", lineNo, rec.Op)
		}
	}
}

// append writes one record; sync forces the fsync batching to count it.
func (j *Journal) append(op, key, trace string, countSync bool) error {
	if j == nil {
		return nil
	}
	if err := faultinject.Fire("batch.journal"); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	b, err := json.Marshal(journalRecord{Op: op, Key: key, Trace: trace})
	if err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(b); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	if countSync {
		j.pending++
		if j.pending >= j.syncEvery() {
			return j.syncLocked()
		}
	}
	return nil
}

// Start records that the job was picked up by a worker; trace is the
// job's lineage ID ("" when observability is off).
func (j *Journal) Start(index int, id, trace string) error {
	return j.append("start", JobKey(index, id), trace, false)
}

// Done records that the job's result was emitted. Every SyncEvery done
// records the journal is flushed and fsynced.
func (j *Journal) Done(index int, id string) error {
	return j.append("done", JobKey(index, id), "", true)
}

// Writer returns a private buffered appender onto the journal. Each
// batch worker holds its own Writer: records accumulate in a local
// buffer with no locking at all, and the shared file lock is taken
// once per flush — a batch boundary — instead of once per record, so
// journal durability stops serializing the workers and the result
// emitter. A nil journal returns a nil writer, whose methods are all
// no-ops, mirroring the nil-*Journal contract.
//
// Durability window: start records are advisory (a lost start replays
// exactly like a never-started job — re-queued), so buffering them
// costs nothing on crash. Done records buffer at most SyncEvery deep
// before the writer flushes, and only the single emit goroutine writes
// dones, so the crash window stays the documented "at most SyncEvery
// duplicated result lines, never a lost one".
func (j *Journal) Writer() *JournalWriter {
	if j == nil {
		return nil
	}
	return &JournalWriter{j: j}
}

// JournalWriter is one goroutine's buffered view of a Journal. Not
// safe for concurrent use — that is the point: each worker owns one.
type JournalWriter struct {
	j       *Journal
	buf     []byte
	records int // buffered records of any kind (flush trigger)
	dones   int // buffered done records (fsync accounting at flush)
}

// append buffers one record, flushing when a batch has accumulated.
func (w *JournalWriter) append(op, key, trace string, done bool) error {
	if w == nil {
		return nil
	}
	if err := faultinject.Fire("batch.journal"); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	b, err := json.Marshal(journalRecord{Op: op, Key: key, Trace: trace})
	if err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	w.buf = append(w.buf, b...)
	w.buf = append(w.buf, '\n')
	w.records++
	if done {
		w.dones++
	}
	if w.records >= w.j.syncEvery() {
		return w.Flush()
	}
	return nil
}

// Start buffers a record that the job was picked up by a worker;
// trace is the job's lineage ID ("" when observability is off).
func (w *JournalWriter) Start(index int, id, trace string) error {
	return w.append("start", JobKey(index, id), trace, false)
}

// Done buffers a record that the job's result was emitted. The caller
// must already have written the result line: the journal's done-after-
// write ordering only deepens under buffering (the done record reaches
// the file later, never earlier).
func (w *JournalWriter) Done(index int, id string) error {
	return w.append("done", JobKey(index, id), "", true)
}

// Flush hands the buffered records to the journal under one lock
// acquisition, counting the buffered dones toward the journal's fsync
// batching. Call it at batch boundaries (worker exit, end of run);
// full buffers flush themselves.
func (w *JournalWriter) Flush() error {
	if w == nil || len(w.buf) == 0 {
		return nil
	}
	w.j.mu.Lock()
	defer w.j.mu.Unlock()
	if _, err := w.j.w.Write(w.buf); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	w.buf = w.buf[:0]
	w.records = 0
	w.j.pending += w.dones
	w.dones = 0
	if w.j.pending >= w.j.syncEvery() {
		return w.j.syncLocked()
	}
	return nil
}

// journalWriterKey carries a worker's *JournalWriter through the
// worker context, the same pattern WorkerStats rides.
type journalWriterKey struct{}

func withJournalWriter(ctx context.Context, w *JournalWriter) context.Context {
	return context.WithValue(ctx, journalWriterKey{}, w)
}

// journalWriterFrom returns the writer carried by ctx, or nil (whose
// methods are no-ops) when the context has none.
func journalWriterFrom(ctx context.Context) *JournalWriter {
	w, _ := ctx.Value(journalWriterKey{}).(*JournalWriter)
	return w
}

// syncEvery returns the effective fsync batch size.
func (j *Journal) syncEvery() int {
	if j.SyncEvery > 0 {
		return j.SyncEvery
	}
	return 32
}

// syncLocked flushes the buffer and fsyncs; callers hold j.mu.
func (j *Journal) syncLocked() error {
	j.pending = 0
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("batch: journal: %w", err)
	}
	telemetry.C("batch.journal_syncs").Inc()
	return nil
}

// Sync flushes the buffer and fsyncs the journal file.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	serr := j.syncLocked()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
