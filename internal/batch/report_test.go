package batch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"elmore/internal/telemetry"
)

func TestReporterSummaryRecord(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	var summary, slow bytes.Buffer
	good := chainNet(t, 10)
	e := &Engine{
		Workers: 4,
		Cache:   NewCache(),
		Report: &Reporter{
			Summary:       &summary,
			Slow:          &slow,
			SlowThreshold: time.Nanosecond, // everything is slow
		},
	}
	jobs := []Job{
		netJob("a", good),
		netJob("b", good), // cache hit: same fingerprint as a
		{ID: "dead", Err: fmt.Errorf("spec rejected")},
	}
	results := e.Run(context.Background(), jobs)

	var rec summaryRecord
	if err := json.Unmarshal(summary.Bytes(), &rec); err != nil {
		t.Fatalf("summary is not one JSON record: %v\n%s", err, summary.String())
	}
	if rec.Record != "batch_summary" || rec.Jobs != 3 || rec.Errors != 1 {
		t.Errorf("summary = %+v", rec)
	}
	if rec.ErrorsByKind["failed"] != 1 {
		t.Errorf("errors_by_kind = %v", rec.ErrorsByKind)
	}
	if rec.CacheHits != 1 || rec.CacheHitRate == 0 {
		t.Errorf("cache stats = %d / %v (results: %+v)", rec.CacheHits, rec.CacheHitRate, results)
	}
	if rec.SlowJobs != 3 {
		t.Errorf("slow_jobs = %d, want 3", rec.SlowJobs)
	}
	if !(rec.LatencyMS.P50 <= rec.LatencyMS.P95 && rec.LatencyMS.P95 <= rec.LatencyMS.Max) {
		t.Errorf("latency percentiles unordered: %+v", rec.LatencyMS)
	}

	// Every slow line is valid NDJSON with captured spans (no ambient
	// tracer, so the per-job memory tracer recorded batch.job itself).
	sc := bufio.NewScanner(&slow)
	n := 0
	for sc.Scan() {
		var sr slowRecord
		if err := json.Unmarshal(sc.Bytes(), &sr); err != nil {
			t.Fatalf("bad slow line: %v: %s", err, sc.Text())
		}
		if sr.Record != "slow_job" {
			t.Errorf("record = %q", sr.Record)
		}
		if len(sr.Spans) == 0 {
			t.Errorf("slow job %d has no captured spans", sr.Index)
		}
		n++
	}
	if n != 3 {
		t.Errorf("slow lines = %d, want 3", n)
	}
}

func TestReporterProgressLines(t *testing.T) {
	var progress syncBuffer
	e := &Engine{
		Workers: 2,
		Report: &Reporter{
			Progress: &progress,
			Interval: time.Millisecond,
		},
	}
	good := chainNet(t, 50)
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("j%d", i), good)
	}
	e.Run(context.Background(), jobs)
	out := progress.String()
	// At minimum the final line from finish() is present and complete.
	if !strings.Contains(out, "40/40 done, 0 errors") {
		t.Errorf("missing final progress line:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, l := range lines {
		if !strings.HasPrefix(l, "batch: ") || !strings.Contains(l, "queue ") {
			t.Errorf("malformed progress line %q", l)
		}
	}
}

func TestReporterAmbientTracerSkipsSpanCapture(t *testing.T) {
	var slow, trace bytes.Buffer
	e := &Engine{
		Workers: 1,
		Report:  &Reporter{Slow: &slow, SlowThreshold: time.Nanosecond},
	}
	ctx := telemetry.WithTracer(context.Background(),
		telemetry.NewTracer(telemetry.WriterSink{W: &trace}))
	e.Run(ctx, []Job{netJob("a", chainNet(t, 5))})
	sc := bufio.NewScanner(&slow)
	for sc.Scan() {
		var sr slowRecord
		if err := json.Unmarshal(sc.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Spans) != 0 {
			t.Errorf("spans double-captured alongside ambient tracer: %d", len(sr.Spans))
		}
	}
	if trace.Len() == 0 {
		t.Error("ambient tracer recorded nothing")
	}
}

// Regression for the queue-depth race: the gauge used to be published
// with Set(pending.Add(-1)), letting two workers interleave and write
// an older depth over a newer one (or drive the gauge negative across
// overlapping runs). Add-based updates make it monotone non-increasing
// within a run and exactly zero after all runs finish. Run under
// -race, and with concurrent Runs to exercise composition.
func TestQueueDepthGaugeConsistent(t *testing.T) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	good := chainNet(t, 5)
	const runs = 4
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]Job, 30)
			for i := range jobs {
				jobs[i] = netJob(fmt.Sprintf("j%d", i), good)
			}
			e := &Engine{Workers: 4}
			e.RunFunc(context.Background(), jobs, func(r Result) {
				if d := reg.Gauge("batch.queue_depth").Value(); d < 0 {
					t.Errorf("queue depth went negative: %v", d)
				}
			})
		}()
	}
	wg.Wait()
	if d := reg.Gauge("batch.queue_depth").Value(); d != 0 {
		t.Errorf("queue depth after all runs = %v, want 0", d)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the progress ticker
// goroutine writes while the test goroutine reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
