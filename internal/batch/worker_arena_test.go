package batch

// Tests for the per-worker plumbing the scaling fix added to the
// worker loop: the context-carried scratch arena, the OnWorker
// decorate/cleanup hook, and the steady-state allocation budget of a
// cache-warm net job.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"elmore/internal/moments"
	"elmore/internal/telemetry"
)

// TestWorkerOwnsDistinctArena asserts each worker goroutine gets its
// own scratch arena in its context — sharing one across workers would
// race the sweep buffers — and that OnWorker observes the context
// after the arena is attached, so journal-style decorators can rely on
// it being there.
func TestWorkerOwnsDistinctArena(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	arenas := make(map[*moments.Arena]int)
	e := &Engine{
		Workers: workers,
		OnWorker: func(ctx context.Context, worker int) (context.Context, func()) {
			ar := moments.ArenaFrom(ctx)
			if ar == nil {
				t.Errorf("worker %d: context carries no arena", worker)
				return nil, nil
			}
			mu.Lock()
			arenas[ar]++
			mu.Unlock()
			return nil, nil
		},
	}
	tree := chainNet(t, 8)
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("j%d", i), tree)
	}
	for _, r := range e.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
	}
	if len(arenas) != workers {
		t.Errorf("%d workers share %d arenas, want one each", workers, len(arenas))
	}
	for ar, n := range arenas {
		if n != 1 {
			t.Errorf("arena %p handed to %d workers", ar, n)
		}
	}
}

// TestOnWorkerDecoratesAndCleansUp pins the hook contract: the
// returned context replaces the worker's context for OnStart and every
// job, and the returned cleanup runs exactly once per worker at exit.
func TestOnWorkerDecoratesAndCleansUp(t *testing.T) {
	type markKey struct{}
	const workers = 3
	var mu sync.Mutex
	cleanups := make(map[int]int)
	marked := 0
	e := &Engine{
		Workers: workers,
		OnWorker: func(ctx context.Context, worker int) (context.Context, func()) {
			return context.WithValue(ctx, markKey{}, worker), func() {
				mu.Lock()
				cleanups[worker]++
				mu.Unlock()
			}
		},
		OnStart: func(ctx context.Context, index int, id string, _ telemetry.TraceContext) {
			if w, ok := ctx.Value(markKey{}).(int); ok && w >= 0 {
				mu.Lock()
				marked++
				mu.Unlock()
			}
		},
	}
	tree := chainNet(t, 6)
	jobs := make([]Job, 30)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("j%d", i), tree)
	}
	e.Run(context.Background(), jobs)
	if marked != len(jobs) {
		t.Errorf("OnStart saw the decorated context for %d of %d jobs", marked, len(jobs))
	}
	if len(cleanups) != workers {
		t.Errorf("cleanup ran for %d workers, want %d", len(cleanups), workers)
	}
	for w, n := range cleanups {
		if n != 1 {
			t.Errorf("worker %d cleanup ran %d times, want once", w, n)
		}
	}
}

// workerJobAllocBudget is the steady-state marginal allocation count
// of one cache-warm net job in the worker loop: the moment set is a
// cache hit and the PRH scratch comes from the worker's arena, so what
// remains is the result plumbing (PRHTerms + fused backing, Analysis +
// bounds, NetResult + sinks, reorder parking) — ~7 measured; 8 leaves
// one alloc of headroom before the regression trips.
const workerJobAllocBudget = 8

// TestWorkerLoopAllocBudget pins the arena + sharded-cache fast path
// by marginal cost: the difference between a 40-job and an 8-job run
// divided out per job, which cancels the engine's fixed setup
// (channels, goroutines, stats). Before the arena the scratch alone
// added two allocations per job on top of this budget.
func TestWorkerLoopAllocBudget(t *testing.T) {
	tree := chainNet(t, 300)
	e := &Engine{Workers: 1, Cache: NewCache()}
	mk := func(k int) []Job {
		jobs := make([]Job, k)
		for i := range jobs {
			jobs[i] = netJob(fmt.Sprintf("j%d", i), tree, "n299")
		}
		return jobs
	}
	for _, r := range e.Run(context.Background(), mk(4)) { // warm cache + compiled plan
		if r.Err != nil {
			t.Fatalf("warm-up job %s: %v", r.ID, r.Err)
		}
	}
	run := func(k int) float64 {
		jobs := mk(k)
		return testing.AllocsPerRun(20, func() { e.Run(context.Background(), jobs) })
	}
	small, large := run(8), run(40)
	perJob := (large - small) / 32
	if perJob > workerJobAllocBudget {
		t.Errorf("worker loop = %.2f allocs/job (runs: 8 jobs %.0f, 40 jobs %.0f), budget %d",
			perJob, small, large, workerJobAllocBudget)
	}
}
