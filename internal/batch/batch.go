// Package batch evaluates many independent bound-analysis jobs
// concurrently on a bounded worker pool. The paper's closed-form bounds
// are embarrassingly parallel across nets and sinks, and library
// characterization flows sweep thousands of net/slew/corner
// combinations per run; this package is the layer that exploits that.
//
// A Job is either a net analysis (core.AnalyzeContext plus per-sink
// Bounds/InputBounds) or an STA path walk (sta.AnalyzePathMoments). The
// Engine guarantees:
//
//   - Bounded concurrency: at most Workers jobs run at once (default
//     GOMAXPROCS).
//   - Per-job timeout and cancellation: each job runs under a derived
//     context; expiry or batch-context cancellation is observed at
//     sink/stage boundaries inside the engines.
//   - Fail-soft error policy: one bad netlist (or a panicking job)
//     yields a per-job error Result, never a dead batch. Worker panics
//     are recovered and isolated to the offending job.
//   - Deterministic ordering: Run returns results in job order, and
//     RunFunc emits them in job order as soon as each prefix completes,
//     regardless of which worker finished first.
//   - Shared moment reuse: an optional immutable Cache keyed by tree
//     fingerprint lets repeated nets reuse one moments.Set.
//
// The engine is instrumented with the telemetry package: a
// batch.queue_depth gauge, batch.jobs / batch.job_errors /
// batch.cache_hits / batch.cache_misses counters, and one batch.job
// span per job nested under the batch.run span.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"elmore/internal/core"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sta"
	"elmore/internal/telemetry"
)

// NetJob asks for the paper's delay bounds on one net. The tree comes
// either pre-built (Tree) or from a loader that runs inside the worker
// (Load) so that parse failures stay per-job.
type NetJob struct {
	Tree  *rctree.Tree                 // pre-built net; takes precedence over Load
	Load  func() (*rctree.Tree, error) // lazy loader, called in-worker
	Sinks []string                     // node names to report; empty means every node
	Input signal.Signal                // excitation; nil means the ideal step
}

// PathJob asks for an STA path walk. Like NetJob, the path comes
// pre-built or from an in-worker loader.
type PathJob struct {
	Path *sta.Path
	Load func() (*sta.Path, error)
}

// Job is one unit of batch work: exactly one of Net, Path or Tran must
// be set. A Job with Err set is dead on arrival — the engine reports it
// as a per-job error record, which is how spec-level failures (bad rise
// time, unknown cell) flow through the fail-soft policy.
type Job struct {
	ID   string // caller-chosen label, echoed in the Result
	Err  error  // pre-failed job (e.g. an invalid spec)
	Net  *NetJob
	Path *PathJob
	Tran *TranJob
}

// SinkBounds carries one reported node of a net job.
type SinkBounds struct {
	Node   string
	Bounds core.Bounds       // step-input bounds at the node
	Input  *core.InputBounds // generalized-input bounds; nil for step inputs
}

// NetResult is the outcome of one net job.
type NetResult struct {
	Analysis *core.Analysis
	Sinks    []SinkBounds
}

// Result is the outcome of one job. Exactly one of Net/Path/Tran is
// non-nil on success; Err is set on failure (and all payloads are nil).
type Result struct {
	Index    int    // position in the submitted job slice
	ID       string // echoed Job.ID
	Err      error
	CacheHit bool // a shared moment set or simulation plan was reused
	Elapsed  time.Duration
	Net      *NetResult
	Path     *sta.PathResult
	Tran     *TranResult
}

// Engine runs batches. The zero value is usable: GOMAXPROCS workers, no
// timeout, no cache. An Engine is stateless across Run calls and safe
// for concurrent use.
type Engine struct {
	Workers int           // max concurrent jobs; <= 0 means runtime.GOMAXPROCS(0)
	Timeout time.Duration // per-job limit; <= 0 means none
	Cache   *Cache        // shared moment-set cache; nil disables reuse
	Report  *Reporter     // run reporting (progress, slow log, summary); nil disables
}

// Run evaluates all jobs and returns one Result per job, in job order.
// It never fails as a whole: cancellation of ctx marks the remaining
// jobs with ctx's error and returns.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	e.RunFunc(ctx, jobs, func(r Result) { results[r.Index] = r })
	return results
}

// RunFunc evaluates all jobs, calling emit exactly once per job in job
// order (emit runs on the calling goroutine, so it needs no locking).
// Results stream: result i is emitted as soon as jobs 0..i have all
// finished, so a slow job delays — but never reorders — the output.
func (e *Engine) RunFunc(ctx context.Context, jobs []Job, emit func(Result)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	bctx, bsp := telemetry.Start(ctx, "batch.run")
	bsp.AttrInt("jobs", int64(len(jobs)))
	bsp.AttrInt("workers", int64(workers))
	defer bsp.End()
	if len(jobs) == 0 {
		return
	}

	// The queue-depth gauge is driven exclusively through Add deltas on
	// its own atomic: publishing pending.Add(-1) via Set would let two
	// workers' loads/stores interleave and write an older depth over a
	// newer one (the gauge could jump backwards or, across overlapping
	// Runs, go negative). Every Run adds len(jobs) up front and each
	// worker subtracts one per job, so concurrent Runs compose and the
	// gauge lands back exactly where it started.
	var pending atomic.Int64
	pending.Store(int64(len(jobs)))
	qd := telemetry.G("batch.queue_depth")
	qd.Add(float64(len(jobs)))

	var rr *runReport
	if e.Report != nil {
		rr = e.Report.begin(len(jobs), &pending)
		defer rr.finish()
	}

	idxCh := make(chan int)
	resCh := make(chan Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				pending.Add(-1)
				qd.Add(-1)
				resCh <- e.runJob(bctx, i, jobs[i])
			}
		}()
	}
	go func() {
		for i := range jobs {
			idxCh <- i
		}
		close(idxCh)
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Reorder buffer: emit in job order as each prefix completes.
	buffered := make([]*Result, len(jobs))
	next := 0
	for r := range resCh {
		r := r
		if rr != nil {
			rr.observe(r)
		}
		buffered[r.Index] = &r
		for next < len(jobs) && buffered[next] != nil {
			emit(*buffered[next])
			buffered[next] = nil
			next++
		}
	}
}

// runJob executes one job under the per-job timeout with panic
// isolation. It always returns a Result, never panics.
func (e *Engine) runJob(ctx context.Context, idx int, j Job) (res Result) {
	res = Result{Index: idx, ID: j.ID}
	start := time.Now()
	jctx := ctx
	if e.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, e.Timeout)
		defer cancel()
	}
	// When the reporter wants slow-job span trees and no ambient tracer
	// is recording this run, give the job a private in-memory tracer:
	// its spans are kept if the job turns out slow and dropped for free
	// otherwise.
	var slowSpans *memSink
	if e.Report.captureSpans(jctx) {
		slowSpans = &memSink{}
		jctx = telemetry.WithTracer(jctx, telemetry.NewTracer(slowSpans))
	}
	jctx, sp := telemetry.Start(jctx, "batch.job")
	sp.AttrInt("index", int64(idx))
	if j.ID != "" {
		sp.AttrString("id", j.ID)
	}
	defer func() {
		if p := recover(); p != nil {
			res.Net, res.Path, res.Tran = nil, nil, nil
			res.Err = fmt.Errorf("batch: job %d (%s) panicked: %v", idx, j.ID, p)
		}
		res.Elapsed = time.Since(start)
		telemetry.C("batch.jobs").Inc()
		if res.Err != nil {
			telemetry.C("batch.job_errors").Inc()
			sp.AttrString("error", res.Err.Error())
		}
		sp.End()
		e.Report.noteJob(idx, j.ID, res.Err, res.Elapsed, slowSpans)
	}()
	switch {
	case j.Err != nil:
		res.Err = j.Err
	case j.Net != nil && j.Path == nil && j.Tran == nil:
		res.Net, res.CacheHit, res.Err = e.runNet(jctx, j.Net)
	case j.Path != nil && j.Net == nil && j.Tran == nil:
		res.Path, res.CacheHit, res.Err = e.runPath(jctx, j.Path)
	case j.Tran != nil && j.Net == nil && j.Path == nil:
		res.Tran, res.CacheHit, res.Err = e.runTran(jctx, j.Tran)
	default:
		res.Err = fmt.Errorf("batch: job %d (%s): exactly one of Net, Path or Tran must be set", idx, j.ID)
	}
	return res
}

func (e *Engine) runNet(ctx context.Context, nj *NetJob) (*NetResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	tree := nj.Tree
	if tree == nil {
		if nj.Load == nil {
			return nil, false, fmt.Errorf("batch: net job has neither Tree nor Load")
		}
		var err error
		tree, err = nj.Load()
		if err != nil {
			return nil, false, err
		}
	}
	var (
		ms  *moments.Set
		hit bool
		err error
	)
	if e.Cache != nil {
		ms, hit, err = e.Cache.Moments(tree, 3)
		if err != nil {
			return nil, false, err
		}
	}
	var a *core.Analysis
	if ms != nil {
		a, err = core.AnalyzeWithMoments(ctx, tree, ms)
	} else {
		a, err = core.AnalyzeContext(ctx, tree)
	}
	if err != nil {
		return nil, hit, err
	}
	sinks := nj.Sinks
	if len(sinks) == 0 {
		sinks = tree.Names()
	}
	out := &NetResult{Analysis: a, Sinks: make([]SinkBounds, 0, len(sinks))}
	for _, name := range sinks {
		if err := ctx.Err(); err != nil {
			return nil, hit, err
		}
		i, ok := tree.Index(name)
		if !ok {
			return nil, hit, fmt.Errorf("batch: net has no node %q", name)
		}
		sb := SinkBounds{Node: name, Bounds: a.Bounds[i]}
		if nj.Input != nil {
			if _, isStep := nj.Input.(signal.Step); !isStep {
				ib, err := a.ForInput(i, nj.Input)
				if err != nil {
					return nil, hit, err
				}
				sb.Input = &ib
			}
		}
		out.Sinks = append(out.Sinks, sb)
	}
	return out, hit, nil
}

func (e *Engine) runPath(ctx context.Context, pj *PathJob) (*sta.PathResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	p := pj.Path
	if p == nil {
		if pj.Load == nil {
			return nil, false, fmt.Errorf("batch: path job has neither Path nor Load")
		}
		loaded, err := pj.Load()
		if err != nil {
			return nil, false, err
		}
		p = loaded
	}
	var src sta.MomentSource
	hit := false
	if e.Cache != nil {
		// The source runs synchronously inside this job, so the hit
		// flag needs no synchronization.
		src = func(ctx context.Context, t *rctree.Tree, order int) (*moments.Set, error) {
			ms, h, err := e.Cache.Moments(t, order)
			if h {
				hit = true
			}
			return ms, err
		}
	}
	res, err := sta.AnalyzePathMoments(ctx, *p, src)
	return res, hit, err
}
