// Package batch evaluates many independent bound-analysis jobs
// concurrently on a bounded worker pool. The paper's closed-form bounds
// are embarrassingly parallel across nets and sinks, and library
// characterization flows sweep thousands of net/slew/corner
// combinations per run; this package is the layer that exploits that.
//
// A Job is either a net analysis (core.AnalyzeContext plus per-sink
// Bounds/InputBounds), an STA path walk (sta.AnalyzePathMoments), or a
// transient characterization sweep (sim.Plan). The Engine guarantees:
//
//   - Bounded concurrency: at most Workers jobs run at once (default
//     GOMAXPROCS).
//   - Per-attempt timeout and cancellation: each attempt runs under a
//     derived context; expiry or batch-context cancellation is observed
//     at sink/stage boundaries inside the engines.
//   - Fail-soft error policy: one bad netlist (or a panicking job)
//     yields a per-job error Result, never a dead batch. Worker panics
//     are recovered and isolated to the offending job.
//   - Deterministic ordering: Run returns results in job order, and
//     RunFunc emits them in job order as soon as each prefix completes,
//     regardless of which worker finished first. Once the batch context
//     is cancelled RunFunc stops emitting; Run reports the unemitted
//     jobs with the context's error.
//   - Shared moment reuse: an optional immutable Cache keyed by tree
//     fingerprint lets repeated nets reuse one moments.Set.
//   - Resilience: an optional retry Policy re-runs transiently failing
//     attempts with backoff, a Breaker cuts off trees that keep
//     failing, a Watchdog flags stuck attempts, and — because the
//     paper guarantees the Elmore delay T_D = m1 bounds the 50% delay
//     from above and max(mu-sigma, 0) from below — a transient sweep
//     whose simulation keeps failing degrades gracefully to those
//     moment bounds instead of erroring (Result.Degraded
//     "elmore-bound").
//
// The engine is instrumented with the telemetry package: a
// batch.queue_depth gauge, batch.jobs / batch.job_errors /
// batch.cache_hits / batch.cache_misses / resilience.retries /
// resilience.degraded counters, and one batch.job span per job nested
// under the batch.run span.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"elmore/internal/core"
	"elmore/internal/faultinject"
	"elmore/internal/health"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/resilience"
	"elmore/internal/signal"
	"elmore/internal/sta"
	"elmore/internal/telemetry"
)

// NetJob asks for the paper's delay bounds on one net. The tree comes
// either pre-built (Tree) or from a loader that runs inside the worker
// (Load) so that parse failures stay per-job.
type NetJob struct {
	Tree  *rctree.Tree                 // pre-built net; takes precedence over Load
	Load  func() (*rctree.Tree, error) // lazy loader, called in-worker
	Sinks []string                     // node names to report; empty means every node
	Input signal.Signal                // excitation; nil means the ideal step
}

// PathJob asks for an STA path walk. Like NetJob, the path comes
// pre-built or from an in-worker loader.
type PathJob struct {
	Path *sta.Path
	Load func() (*sta.Path, error)
}

// Job is one unit of batch work: exactly one of Net, Path or Tran must
// be set. A Job with Err set is dead on arrival — the engine reports it
// as a per-job error record, which is how spec-level failures (bad rise
// time, unknown cell) flow through the fail-soft policy.
type Job struct {
	ID   string // caller-chosen label, echoed in the Result
	Err  error  // pre-failed job (e.g. an invalid spec)
	Net  *NetJob
	Path *PathJob
	Tran *TranJob

	// Trace, when valid, is the request lineage this job continues — a
	// coordinator handing spec ranges to worker processes stamps it via
	// the spec's trace_id field. The zero value (the normal case) makes
	// the engine mint a fresh trace when the job is picked up.
	Trace telemetry.TraceContext
}

// SinkBounds carries one reported node of a net job.
type SinkBounds struct {
	Node   string
	Bounds core.Bounds       // step-input bounds at the node
	Input  *core.InputBounds // generalized-input bounds; nil for step inputs
}

// NetResult is the outcome of one net job.
type NetResult struct {
	Analysis *core.Analysis
	Sinks    []SinkBounds
}

// DegradedElmoreBound is the Result.Degraded marker for a transient
// job whose simulation kept failing and was answered with the paper's
// closed-form interval [max(mu-sigma, 0), T_D] instead.
const DegradedElmoreBound = "elmore-bound"

// Result is the outcome of one job. Exactly one of Net/Path/Tran is
// non-nil on success; Err is set on failure (and all payloads are nil).
// A degraded result is a success with Degraded set: the simulation
// failed, but the paper-guaranteed bound interval in Net stands in for
// it (DegradedFrom preserves the suppressed failure).
type Result struct {
	Index        int    // position in the submitted job slice
	ID           string // echoed Job.ID
	Err          error
	CacheHit     bool // a shared moment set or simulation plan was reused
	Elapsed      time.Duration
	Attempts     int                    // attempts executed (0 only for never-started jobs)
	Degraded     string                 // DegradedElmoreBound when Net stands in for a failed sim
	DegradedFrom string                 // the failure Degraded suppressed
	Trace        telemetry.TraceContext // lineage minted (or inherited) for this job
	Net          *NetResult
	Path         *sta.PathResult
	Tran         *TranResult
}

// Engine runs batches. The zero value is usable: GOMAXPROCS workers, no
// timeout, no cache, single attempts, no degradation suppression. An
// Engine is stateless across Run calls and safe for concurrent use.
type Engine struct {
	Workers int           // max concurrent jobs; <= 0 means runtime.GOMAXPROCS(0)
	Timeout time.Duration // per-attempt limit; <= 0 means none
	Cache   *Cache        // shared moment-set cache; nil disables reuse
	Report  *Reporter     // run reporting (progress, slow log, summary); nil disables

	// Retry re-runs transiently failing attempts; nil means one attempt
	// per job.
	Retry *resilience.Policy
	// Breaker cuts off circuits (keyed by tree fingerprint) that keep
	// failing transiently; nil disables. Jobs rejected by an open
	// breaker degrade like any other transient failure.
	Breaker *resilience.Breaker
	// Watchdog flags attempts running far past expectations; nil
	// disables. With CancelStuck set it also cancels them.
	Watchdog *resilience.Watchdog
	// NoDegrade turns off graceful degradation: transient jobs whose
	// simulation exhausts its attempts report the error instead of the
	// moment-bound interval.
	NoDegrade bool

	// OnStart, when non-nil, observes each job the moment a worker
	// picks it up (before any attempt). It is called concurrently from
	// worker goroutines with the worker's context (which carries the
	// values OnWorker attached) and the job's trace context; the
	// crash-safe journal uses it to record in-flight jobs — with their
	// lineage — through a per-worker buffered writer.
	OnStart func(ctx context.Context, index int, id string, trace telemetry.TraceContext)

	// OnWorker, when non-nil, runs once per worker goroutine before it
	// takes its first job. The returned context (when non-nil) replaces
	// the worker's context for everything it runs, and the returned
	// cleanup (when non-nil) runs as the worker exits. The journal
	// layer uses it to give each worker a private buffered journal
	// writer flushed at worker exit.
	OnWorker func(ctx context.Context, worker int) (context.Context, func())

	// OnStats, when non-nil, receives the run's per-worker accounting
	// (PoolStats) once every worker has exited, on the RunFunc goroutine.
	// cmd/scalestat uses it to build scaling reports.
	OnStats func(PoolStats)
}

// Run evaluates all jobs and returns one Result per job, in job order.
// It never fails as a whole: cancellation of ctx marks the remaining
// jobs with ctx's error and returns.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	seen := make([]bool, len(jobs))
	e.RunFunc(ctx, jobs, func(r Result) {
		results[r.Index] = r
		seen[r.Index] = true
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !seen[i] {
				results[i] = Result{Index: i, ID: jobs[i].ID, Err: err}
			}
		}
	}
	return results
}

// RunFunc evaluates all jobs, calling emit exactly once per job in job
// order (emit runs on the calling goroutine, so it needs no locking).
// Results stream: result i is emitted as soon as jobs 0..i have all
// finished, so a slow job delays — but never reorders — the output.
//
// Cancellation contract: once ctx's cancellation is observed, emit is
// never called again — jobs not yet emitted are simply dropped (Run
// reports them with ctx's error; a journal re-queues them on resume).
// Workers still drain to completion, so RunFunc returns only after
// every in-flight job has finished.
func (e *Engine) RunFunc(ctx context.Context, jobs []Job, emit func(Result)) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	bctx, bsp := telemetry.Start(ctx, "batch.run")
	bsp.AttrInt("jobs", int64(len(jobs)))
	bsp.AttrInt("workers", int64(workers))
	defer bsp.End()
	if len(jobs) == 0 {
		return
	}

	stopWatch := e.Watchdog.Watch()
	defer stopWatch()

	// The queue-depth gauge is driven exclusively through Add deltas on
	// its own atomic: publishing pending.Add(-1) via Set would let two
	// workers' loads/stores interleave and write an older depth over a
	// newer one (the gauge could jump backwards or, across overlapping
	// Runs, go negative). Every Run adds len(jobs) up front and each
	// worker subtracts one per job, so concurrent Runs compose and the
	// gauge lands back exactly where it started.
	var pending atomic.Int64
	pending.Store(int64(len(jobs)))
	qd := telemetry.G("batch.queue_depth")
	qd.Add(float64(len(jobs)))

	var rr *runReport
	if e.Report != nil {
		rr = e.Report.begin(len(jobs), &pending)
		defer rr.finish()
	}

	idxCh := make(chan int)
	resCh := make(chan Result, workers)
	stats := make([]WorkerStats, workers)
	runStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker accounting: this goroutine is the only writer
			// of stats[w]; RunFunc reads it after wg settles. Every
			// channel operation is bracketed by time.Now so the worker's
			// wall time tiles into idle (waiting for work), busy (inside
			// runJob) and stall (reorder backpressure) — the final
			// blocked receive that observes close counts as idle.
			ws := &stats[w]
			ws.Worker = w
			wctx := withWorkerStats(bctx, ws)
			// Each worker owns a grow-only scratch arena: the moment
			// kernels draw their per-job sweep buffers from it instead
			// of allocating 2n floats twice per job, and since a worker
			// runs one job at a time the reuse is race-free.
			wctx = moments.WithArena(wctx, new(moments.Arena))
			if e.OnWorker != nil {
				ctx2, cleanup := e.OnWorker(wctx, w)
				if ctx2 != nil {
					wctx = ctx2
				}
				if cleanup != nil {
					defer cleanup()
				}
			}
			wallStart := time.Now()
			defer func() { ws.WallNS = time.Since(wallStart).Nanoseconds() }()
			// Lineage is minted unconditionally (an atomic increment plus
			// integer mixing — free) but attached to the context only when
			// something can observe it: a tracer, the flight recorder, or
			// the reporter's slow-span capture. The disabled path thus
			// stays inside the per-job allocation budget.
			obsCtx := telemetry.TracerFrom(wctx) != nil ||
				telemetry.FlightEnabled() || e.Report.captureSpans(wctx)
			for {
				t0 := time.Now()
				i, ok := <-idxCh
				ws.IdleNS += time.Since(t0).Nanoseconds()
				if !ok {
					return
				}
				pending.Add(-1)
				qd.Add(-1)
				tr := jobs[i].Trace
				if !tr.Valid() {
					tr = telemetry.MintTrace()
				}
				jctx := wctx
				if obsCtx {
					jctx = telemetry.WithTraceContext(wctx, tr)
				}
				if e.OnStart != nil {
					e.OnStart(jctx, i, jobs[i].ID, tr)
				}
				t1 := time.Now()
				r := e.runJob(jctx, w, i, jobs[i], tr)
				ws.BusyNS += time.Since(t1).Nanoseconds()
				ws.Jobs++
				t2 := time.Now()
				resCh <- r
				ws.StallNS += time.Since(t2).Nanoseconds()
			}
		}(w)
	}
	go func() {
		// The dispatcher stops on cancellation instead of force-feeding
		// the remaining indices: workers drain what is already queued
		// and exit, and the undispatched jobs settle the gauges here.
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-bctx.Done():
				skipped := int64(len(jobs) - i)
				pending.Add(-skipped)
				qd.Add(float64(-skipped))
				telemetry.C("batch.jobs_cancelled").Add(skipped)
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Reorder buffer: emit in job order as each prefix completes. After
	// cancellation the loop keeps draining resCh (the reporter still
	// observes every finished job) but emits nothing more. Occupancy is
	// tracked as a gauge (results parked waiting for their prefix) and
	// every out-of-order arrival counts as a reorder stall — together
	// they say whether ordered emission is what holds the workers back.
	buffered := make([]*Result, len(jobs))
	next := 0
	occ, peak := 0, 0
	var stalls int64
	roGauge := telemetry.G("batch.reorder_occupancy")
	for r := range resCh {
		r := r
		if rr != nil {
			rr.observe(r)
		}
		if bctx.Err() != nil {
			continue
		}
		if r.Index != next {
			stalls++
			telemetry.C("batch.reorder_stalls").Inc()
		}
		buffered[r.Index] = &r
		occ++
		roGauge.Add(1)
		if occ > peak {
			peak = occ
		}
		for next < len(jobs) && buffered[next] != nil {
			if bctx.Err() != nil {
				// emit itself may have cancelled the batch: stop even
				// mid-prefix.
				break
			}
			emit(*buffered[next])
			buffered[next] = nil
			next++
			occ--
			roGauge.Add(-1)
		}
	}
	// Workers have exited (resCh closes after wg.Wait), so the stats
	// slice is quiescent and safe to hand out.
	rs := PoolStats{
		Jobs:          len(jobs),
		Workers:       workers,
		WallNS:        time.Since(runStart).Nanoseconds(),
		Worker:        stats,
		ReorderPeak:   peak,
		ReorderStalls: stalls,
	}
	// Cancellation can leave parked results behind: settle the gauge so
	// overlapping Runs still compose to zero.
	if occ > 0 {
		roGauge.Add(float64(-occ))
	}
	rs.publish(telemetry.Default())
	if rr != nil {
		rr.stats = &rs
	}
	if e.OnStats != nil {
		e.OnStats(rs)
	}
}

// jobLabel names one job for watchdog and health reporting.
func jobLabel(idx int, id string) string {
	if id != "" {
		return id
	}
	return fmt.Sprintf("#%d", idx)
}

// runJob executes one job — attempt loop, breaker, degradation — with
// panic isolation. It always returns a Result, never panics.
func (e *Engine) runJob(ctx context.Context, worker, idx int, j Job, tr telemetry.TraceContext) (res Result) {
	res = Result{Index: idx, ID: j.ID, Trace: tr}
	start := time.Now()
	jctx := ctx
	// When the reporter wants slow-job span trees and no ambient tracer
	// is recording this run, give the job a private in-memory tracer:
	// its spans are kept if the job turns out slow and dropped for free
	// otherwise.
	var slowSpans *memSink
	if e.Report.captureSpans(jctx) {
		slowSpans = &memSink{}
		jctx = telemetry.WithTracer(jctx, telemetry.NewTracer(slowSpans))
	}
	jctx, sp := telemetry.Start(jctx, "batch.job")
	sp.AttrInt("index", int64(idx))
	if j.ID != "" {
		sp.AttrString("id", j.ID)
	}
	defer func() {
		if p := recover(); p != nil {
			// Backstop only: attempts recover their own panics.
			res.Net, res.Path, res.Tran = nil, nil, nil
			res.Err = fmt.Errorf("batch: job %d (%s) panicked: %v", idx, j.ID, p)
		}
		res.Elapsed = time.Since(start)
		telemetry.C("batch.jobs").Inc()
		if res.Err != nil {
			telemetry.C("batch.job_errors").Inc()
			sp.AttrString("error", res.Err.Error())
		}
		if res.Degraded != "" {
			sp.AttrString("degraded", res.Degraded)
		}
		sp.End()
		if telemetry.FlightEnabled() {
			ftr := tr
			ftr.Attempt = int32(res.Attempts)
			var code int64
			if res.Err != nil {
				code = 1
			}
			if res.Degraded != "" {
				telemetry.FlightRecordShard(worker, telemetry.FlightEvent{
					Kind: telemetry.FlightDegraded, Trace: ftr,
					Index: int64(idx), Label: res.DegradedFrom,
				})
			}
			telemetry.FlightRecordShard(worker, telemetry.FlightEvent{
				Kind: telemetry.FlightJobDone, Trace: ftr, Index: int64(idx),
				DurNS: res.Elapsed.Nanoseconds(), Code: code, Label: j.ID,
			})
		}
		e.Report.noteJob(idx, j.ID, tr, res.Err, res.Elapsed, slowSpans)
	}()
	e.runAttempts(jctx, idx, j, &res)
	return res
}

// runAttempts drives the retry loop for one job and fills res with the
// final outcome: a payload, a degraded bound interval, or an error.
func (e *Engine) runAttempts(ctx context.Context, idx int, j Job, res *Result) {
	if j.Err != nil {
		res.Err = j.Err
		return
	}
	kinds := 0
	for _, set := range []bool{j.Net != nil, j.Path != nil, j.Tran != nil} {
		if set {
			kinds++
		}
	}
	if kinds != 1 {
		res.Err = fmt.Errorf("batch: job %d (%s): exactly one of Net, Path or Tran must be set", idx, j.ID)
		return
	}

	// The tree resolves once and is memoized across attempts (no
	// re-parsing per retry); pre-built trees give the breaker its key
	// before the first attempt, loader-built trees after it. Path jobs
	// span multiple nets and skip the breaker.
	var tree *rctree.Tree
	switch {
	case j.Net != nil:
		tree = j.Net.Tree
	case j.Tran != nil:
		tree = j.Tran.Tree
	}
	var fp uint64
	haveFP := false
	if tree != nil {
		fp, haveFP = tree.Fingerprint(), true
	}

	attempts := e.Retry.Attempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		if haveFP {
			if err := e.Breaker.Allow(fp); err != nil {
				lastErr = err
				break
			}
		}
		// Each attempt runs under its own span with the trace context
		// re-stamped, so every child span (moment sweeps, sim runs) is
		// attributable to trace+attempt, not just to the job. Both are
		// free when neither a tracer nor a trace context is installed.
		actx := telemetry.WithTraceAttempt(ctx, attempt)
		actx, asp := telemetry.Start(actx, "batch.attempt")
		asp.AttrInt("attempt", int64(attempt))
		pl, hit, err := e.attemptOnce(actx, idx, j, &tree)
		if err != nil {
			asp.AttrString("error", err.Error())
		}
		asp.End()
		if tree != nil && !haveFP {
			fp, haveFP = tree.Fingerprint(), true
		}
		if err == nil {
			if haveFP {
				e.Breaker.Success(fp)
			}
			res.CacheHit = hit
			res.Net, res.Path, res.Tran = pl.net, pl.path, pl.tran
			return
		}
		lastErr = err
		class := resilience.Classify(err)
		if class == resilience.Transient || class == resilience.Panicked {
			if haveFP {
				e.Breaker.Failure(fp)
			}
		}
		retryable := class == resilience.Transient ||
			(class == resilience.Panicked && e.Retry != nil && e.Retry.RetryPanics)
		if !retryable || attempt >= attempts {
			break
		}
		telemetry.C("resilience.retries").Inc()
		if telemetry.FlightEnabled() {
			tc, _ := telemetry.TraceContextFrom(ctx)
			tc.Attempt = int32(attempt)
			telemetry.FlightRecord(telemetry.FlightEvent{
				Kind: telemetry.FlightRetry, Trace: tc, Index: int64(idx),
				Code: int64(attempt), Label: j.ID,
			})
		}
		if serr := e.Retry.Sleep(ctx, attempt); serr != nil {
			// The batch is being torn down mid-backoff: report the
			// cancellation, not the attempt error, so a journal
			// re-queues the job instead of recording a failure.
			lastErr = serr
			break
		}
	}

	// Graceful degradation: a transient sweep whose simulation keeps
	// failing still has the paper's closed-form answer — one O(N)
	// moment pass gives [max(mu-sigma, 0), T_D] at every probe.
	if !e.NoDegrade && j.Tran != nil && tree != nil && resilience.Degradable(lastErr) {
		if net, _, derr := e.runNet(ctx, &NetJob{Sinks: j.Tran.Probes}, tree); derr == nil {
			res.Net = net
			res.Degraded = DegradedElmoreBound
			res.DegradedFrom = lastErr.Error()
			telemetry.C("resilience.degraded").Inc()
			health.Note(health.Event{
				Check:  "resilience.degraded",
				Tree:   health.TreeLabel(tree.N(), tree.Fingerprint()),
				Node:   jobLabel(idx, j.ID),
				Detail: fmt.Sprintf("sim failed after %d attempts, degraded to elmore-bound: %v", res.Attempts, lastErr),
			})
			return
		}
	}
	res.Err = lastErr
}

// payload carries one attempt's successful outcome.
type payload struct {
	net  *NetResult
	path *sta.PathResult
	tran *TranResult
}

// attemptOnce executes one attempt of a job under the per-attempt
// timeout and watchdog, converting panics into *resilience.PanicError
// so the retry loop can classify them. tree memoizes Net/Tran net
// resolution across attempts.
func (e *Engine) attemptOnce(ctx context.Context, idx int, j Job, tree **rctree.Tree) (pl payload, hit bool, err error) {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if e.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, e.Timeout)
	} else if e.Watchdog != nil && e.Watchdog.CancelStuck {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	unregister := e.Watchdog.Register(jobLabel(idx, j.ID), cancel)
	defer unregister()
	defer func() {
		if p := recover(); p != nil {
			pl = payload{}
			hit = false
			err = fmt.Errorf("batch: job %d (%s): %w", idx, j.ID, &resilience.PanicError{Value: p})
			if telemetry.FlightEnabled() {
				// Panic isolation is a dump trigger: the ring holds the
				// events leading up to it, which is exactly the postmortem
				// an always-on trace file would have cost every run.
				tc, _ := telemetry.TraceContextFrom(ctx)
				telemetry.FlightRecord(telemetry.FlightEvent{
					Kind: telemetry.FlightPanic, Trace: tc,
					Index: int64(idx), Label: j.ID,
				})
				telemetry.FlightDump("panic")
			}
		}
	}()
	if err := faultinject.Fire("batch.dispatch"); err != nil {
		return payload{}, false, err
	}
	switch {
	case j.Net != nil:
		if *tree == nil {
			t, lerr := resolveTree(j.Net.Load, "net")
			if lerr != nil {
				return payload{}, false, lerr
			}
			*tree = t
		}
		pl.net, hit, err = e.runNet(actx, j.Net, *tree)
	case j.Tran != nil:
		if *tree == nil {
			t, lerr := resolveTree(j.Tran.Load, "tran")
			if lerr != nil {
				return payload{}, false, lerr
			}
			*tree = t
		}
		pl.tran, hit, err = e.runTran(actx, j.Tran, *tree)
	default:
		pl.path, hit, err = e.runPath(actx, j.Path)
	}
	if err != nil {
		return payload{}, false, err
	}
	return pl, hit, nil
}

// resolveTree runs a job's lazy loader.
func resolveTree(load func() (*rctree.Tree, error), kind string) (*rctree.Tree, error) {
	if load == nil {
		return nil, fmt.Errorf("batch: %s job has neither Tree nor Load", kind)
	}
	return load()
}

func (e *Engine) runNet(ctx context.Context, nj *NetJob, tree *rctree.Tree) (*NetResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	var (
		ms  *moments.Set
		hit bool
		err error
	)
	if e.Cache != nil {
		ms, hit, err = e.Cache.MomentsCtx(ctx, tree, 3)
		if err != nil {
			return nil, false, err
		}
	}
	var a *core.Analysis
	if ms != nil {
		a, err = core.AnalyzeWithMoments(ctx, tree, ms)
	} else {
		a, err = core.AnalyzeContext(ctx, tree)
	}
	if err != nil {
		return nil, hit, err
	}
	sinks := nj.Sinks
	if len(sinks) == 0 {
		sinks = tree.Names()
	}
	out := &NetResult{Analysis: a, Sinks: make([]SinkBounds, 0, len(sinks))}
	for _, name := range sinks {
		if err := ctx.Err(); err != nil {
			return nil, hit, err
		}
		i, ok := tree.Index(name)
		if !ok {
			return nil, hit, fmt.Errorf("batch: net has no node %q", name)
		}
		sb := SinkBounds{Node: name, Bounds: a.Bounds[i]}
		if nj.Input != nil {
			if _, isStep := nj.Input.(signal.Step); !isStep {
				ib, err := a.ForInput(i, nj.Input)
				if err != nil {
					return nil, hit, err
				}
				sb.Input = &ib
			}
		}
		out.Sinks = append(out.Sinks, sb)
	}
	return out, hit, nil
}

func (e *Engine) runPath(ctx context.Context, pj *PathJob) (*sta.PathResult, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	p := pj.Path
	if p == nil {
		if pj.Load == nil {
			return nil, false, fmt.Errorf("batch: path job has neither Path nor Load")
		}
		loaded, err := pj.Load()
		if err != nil {
			return nil, false, err
		}
		p = loaded
	}
	var src sta.MomentSource
	hit := false
	if e.Cache != nil {
		// The source runs synchronously inside this job, so the hit
		// flag needs no synchronization.
		src = func(ctx context.Context, t *rctree.Tree, order int) (*moments.Set, error) {
			ms, h, err := e.Cache.MomentsCtx(ctx, t, order)
			if h {
				hit = true
			}
			return ms, err
		}
	}
	res, err := sta.AnalyzePathMoments(ctx, *p, src)
	return res, hit, err
}
