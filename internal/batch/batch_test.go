package batch

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"elmore/internal/core"
	"elmore/internal/gate"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sta"
	"elmore/internal/topo"
)

// chainNet builds a small deterministic chain for job payloads.
func chainNet(t testing.TB, n int) *rctree.Tree {
	t.Helper()
	return topo.Chain(n, 100, 1e-13)
}

func netJob(id string, tree *rctree.Tree, sinks ...string) Job {
	return Job{ID: id, Net: &NetJob{Tree: tree, Sinks: sinks}}
}

func TestRunDeterministicOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i), topo.Random(int64(i), topo.RandomOptions{N: 1 + i%9})))
	}
	e := &Engine{Workers: 8}
	var emitted []string
	e.RunFunc(context.Background(), jobs, func(r Result) {
		emitted = append(emitted, r.ID)
	})
	if len(emitted) != len(jobs) {
		t.Fatalf("emitted %d results for %d jobs", len(emitted), len(jobs))
	}
	for i, id := range emitted {
		if id != jobs[i].ID {
			t.Fatalf("result %d is %q, want %q (order not deterministic)", i, id, jobs[i].ID)
		}
	}
	// Run returns the same thing as a slice.
	results := e.Run(context.Background(), jobs)
	for i, r := range results {
		if r.Index != i || r.ID != jobs[i].ID || r.Err != nil || r.Net == nil {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
}

func TestResultsMatchSequentialAnalysis(t *testing.T) {
	tree := chainNet(t, 12)
	last := tree.Name(tree.N() - 1)
	jobs := []Job{
		netJob("all", tree),
		netJob("one", tree, last),
		{ID: "ramp", Net: &NetJob{Tree: tree, Sinks: []string{last}, Input: signal.SaturatedRamp{Tr: 1e-9}}},
	}
	res := (&Engine{Workers: 4, Cache: NewCache()}).Run(context.Background(), jobs)
	want, err := core.Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || len(res[0].Net.Sinks) != tree.N() {
		t.Fatalf("all-sinks job: %+v", res[0])
	}
	if got := res[1].Net.Sinks; len(got) != 1 || got[0].Bounds != want.Bounds[tree.N()-1] {
		t.Errorf("single-sink bounds differ from core.Analyze: %+v", got)
	}
	sink := res[2].Net.Sinks[0]
	if sink.Input == nil {
		t.Fatalf("ramp job missing generalized-input bounds")
	}
	wantIn, err := want.ForInput(tree.N()-1, signal.SaturatedRamp{Tr: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if *sink.Input != wantIn {
		t.Errorf("input bounds = %+v, want %+v", *sink.Input, wantIn)
	}
}

func TestFailSoftErrorPolicy(t *testing.T) {
	good := chainNet(t, 5)
	jobs := []Job{
		netJob("ok1", good),
		{ID: "badload", Net: &NetJob{Load: func() (*rctree.Tree, error) {
			return nil, fmt.Errorf("synthetic parse failure")
		}}},
		{ID: "badsink", Net: &NetJob{Tree: good, Sinks: []string{"nope"}}},
		{ID: "empty"},
		{ID: "prefailed", Err: fmt.Errorf("bad spec line")},
		netJob("ok2", good),
	}
	res := (&Engine{Workers: 3}).Run(context.Background(), jobs)
	if res[0].Err != nil || res[5].Err != nil {
		t.Errorf("good jobs failed: %v %v", res[0].Err, res[5].Err)
	}
	for _, i := range []int{1, 2, 3, 4} {
		if res[i].Err == nil {
			t.Errorf("job %q should have failed", res[i].ID)
		}
		if res[i].Net != nil || res[i].Path != nil {
			t.Errorf("failed job %q carries a payload", res[i].ID)
		}
	}
	if !strings.Contains(res[1].Err.Error(), "synthetic parse failure") {
		t.Errorf("load error lost: %v", res[1].Err)
	}
	if !strings.Contains(res[4].Err.Error(), "bad spec line") {
		t.Errorf("pre-failed error lost: %v", res[4].Err)
	}
}

func TestWorkerPanicIsolation(t *testing.T) {
	good := chainNet(t, 4)
	jobs := []Job{
		netJob("before", good),
		{ID: "boom", Net: &NetJob{Load: func() (*rctree.Tree, error) { panic("kaboom") }}},
		netJob("after", good),
	}
	res := (&Engine{Workers: 2}).Run(context.Background(), jobs)
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "panicked") || !strings.Contains(res[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not converted to a per-job error: %v", res[1].Err)
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("panic leaked into sibling jobs: %v %v", res[0].Err, res[2].Err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	good := chainNet(t, 4)
	slow := Job{ID: "slow", Net: &NetJob{Load: func() (*rctree.Tree, error) {
		time.Sleep(50 * time.Millisecond)
		return chainNet(t, 4), nil
	}}}
	res := (&Engine{Workers: 2, Timeout: 5 * time.Millisecond}).Run(
		context.Background(), []Job{netJob("fast", good), slow})
	if res[0].Err != nil {
		t.Errorf("fast job hit the timeout: %v", res[0].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "deadline") {
		t.Errorf("slow job should report its deadline: %v", res[1].Err)
	}
}

func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tree := chainNet(t, 6)
	release := make(chan struct{})
	var jobs []Job
	jobs = append(jobs, Job{ID: "gate", Net: &NetJob{Load: func() (*rctree.Tree, error) {
		<-release
		return tree, nil
	}}})
	for i := 0; i < 30; i++ {
		jobs = append(jobs, netJob(fmt.Sprintf("j%d", i), tree))
	}
	go func() {
		cancel()
		close(release)
	}()
	res := (&Engine{Workers: 1}).Run(ctx, jobs)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	canceled := 0
	for _, r := range res {
		if r.Err != nil && strings.Contains(r.Err.Error(), "canceled") {
			canceled++
		}
	}
	if canceled == 0 {
		t.Errorf("cancellation produced no canceled job records")
	}
}

func TestCacheReusesMomentSets(t *testing.T) {
	tree := chainNet(t, 10)
	clone := tree.Clone()
	other := chainNet(t, 11)
	cache := NewCache()
	jobs := []Job{netJob("a", tree), netJob("b", clone), netJob("c", other), netJob("d", tree)}
	res := (&Engine{Workers: 1, Cache: cache}).Run(context.Background(), jobs)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d circuits, want 2", cache.Len())
	}
	if res[0].CacheHit {
		t.Errorf("first occurrence must be a miss")
	}
	if !res[1].CacheHit || !res[3].CacheHit {
		t.Errorf("repeats must hit the cache: %+v %+v", res[1].CacheHit, res[3].CacheHit)
	}
	if res[2].CacheHit {
		t.Errorf("distinct circuit must miss")
	}
	// Cached and fresh analyses agree exactly.
	want, err := core.Analyze(other)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Bounds {
		if res[2].Net.Sinks[i].Bounds != want.Bounds[i] {
			t.Errorf("cached-path analysis differs at node %d", i)
		}
	}
}

func TestCacheMomentsDirect(t *testing.T) {
	tree := chainNet(t, 8)
	cache := NewCache()
	ms1, hit1, err := cache.Moments(tree, 2)
	if err != nil || hit1 {
		t.Fatalf("first lookup: hit=%v err=%v", hit1, err)
	}
	ms2, hit2, err := cache.Moments(tree.Clone(), 3)
	if err != nil || !hit2 {
		t.Fatalf("second lookup: hit=%v err=%v", hit2, err)
	}
	if ms1 != ms2 {
		t.Errorf("clone lookups must share one set")
	}
	if ms1.Order() != 3 {
		t.Errorf("cached order = %d, want 3", ms1.Order())
	}
	// Above the cached order: fresh, uncached, correct set.
	ms4, hit4, err := cache.Moments(tree, 4)
	if err != nil || hit4 {
		t.Fatalf("order-4 lookup: hit=%v err=%v", hit4, err)
	}
	if ms4.Order() != 4 || cache.Len() != 1 {
		t.Errorf("order-4 set must bypass the cache (order=%d len=%d)", ms4.Order(), cache.Len())
	}
	want, err := moments.Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if ms1.Elmore(i) != want.Elmore(i) {
			t.Errorf("cached Elmore differs at %d", i)
		}
	}
}

func testCell(t testing.TB) *gate.Cell {
	t.Helper()
	cell, err := gate.LinearCell("inv", 300, 2e-12, 0.05, 4e-12,
		[]float64{1e-12, 50e-12, 500e-12, 5e-9},
		[]float64{1e-15, 50e-15, 500e-15, 5e-12})
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

func TestPathJobsMatchDirectSTA(t *testing.T) {
	cell := testCell(t)
	net := chainNet(t, 6)
	sink := net.Name(net.N() - 1)
	path := sta.Path{
		InputSlew: 20e-12,
		Stages: []sta.Stage{
			{Cell: cell, Net: net, Sink: sink},
			{Cell: cell, Net: net, Sink: sink},
		},
	}
	jobs := []Job{
		{ID: "p1", Path: &PathJob{Path: &path}},
		{ID: "p2", Path: &PathJob{Load: func() (*sta.Path, error) { return &path, nil }}},
		{ID: "pbad", Path: &PathJob{Load: func() (*sta.Path, error) {
			return nil, fmt.Errorf("no such deck")
		}}},
	}
	res := (&Engine{Workers: 2, Cache: NewCache()}).Run(context.Background(), jobs)
	want, err := sta.AnalyzePath(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		r := res[i]
		if r.Err != nil {
			t.Fatalf("path job %s: %v", r.ID, r.Err)
		}
		if r.Path.ArrivalUB != want.ArrivalUB || r.Path.ArrivalLB != want.ArrivalLB {
			t.Errorf("job %s window [%v,%v], want [%v,%v]", r.ID,
				r.Path.ArrivalLB, r.Path.ArrivalUB, want.ArrivalLB, want.ArrivalUB)
		}
	}
	if math.IsNaN(want.ArrivalUB) || want.ArrivalUB <= 0 {
		t.Errorf("suspicious direct result %v", want.ArrivalUB)
	}
	// Both stages drive the same net: the second job must hit the cache.
	if !res[1].CacheHit {
		t.Errorf("repeated net across path jobs should hit the shared cache")
	}
	if res[2].Err == nil {
		t.Errorf("bad path load must fail soft")
	}
}

const specNet = `Vin in 0 1
R1 in a 100
C1 a 0 20f
R2 a z 150
C2 z 0 30f
`

func writeSpecFiles(t *testing.T) (netPath string, lib *gate.Library) {
	t.Helper()
	dir := t.TempDir()
	netPath = filepath.Join(dir, "net.sp")
	if err := os.WriteFile(netPath, []byte(specNet), 0o644); err != nil {
		t.Fatal(err)
	}
	lib = &gate.Library{Cells: map[string]*gate.Cell{"inv": testCell(t)}}
	return netPath, lib
}

func TestReadSpecsAndMaterialize(t *testing.T) {
	netPath, lib := writeSpecFiles(t)
	stream := strings.Join([]string{
		`# a comment`,
		``,
		fmt.Sprintf(`{"id":"n1","net":%q,"sinks":["z"],"rise":"1n"}`, netPath),
		fmt.Sprintf(`{"id":"n2","net":%q}`, netPath),
		fmt.Sprintf(`{"id":"p1","slew":"30p","stages":[{"cell":"inv","net":%q,"sink":"z"}]}`, netPath),
		`{"id":"badrise","net":"x.sp","rise":"-1n"}`,
		`{"id":"badcell","stages":[{"cell":"nope","net":"x.sp","sink":"z"}]}`,
		`{"id":"nokind"}`,
		fmt.Sprintf(`{"id":"badfile","net":%q}`, filepath.Join(t.TempDir(), "missing.sp")),
	}, "\n")
	specs, err := ReadSpecs(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 7 {
		t.Fatalf("read %d specs, want 7", len(specs))
	}
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = s.Job(lib, 25e-12)
	}
	res := (&Engine{Workers: 4, Cache: NewCache()}).Run(context.Background(), jobs)
	byID := map[string]Result{}
	for _, r := range res {
		byID[r.ID] = r
	}
	if r := byID["n1"]; r.Err != nil || len(r.Net.Sinks) != 1 || r.Net.Sinks[0].Node != "z" || r.Net.Sinks[0].Input == nil {
		t.Errorf("n1: %+v err=%v", r.Net, r.Err)
	}
	if r := byID["n2"]; r.Err != nil || len(r.Net.Sinks) != 2 {
		t.Errorf("n2 should report every tree node (a, z): %+v err=%v", r.Net, r.Err)
	}
	if r := byID["p1"]; r.Err != nil || r.Path == nil || r.Path.ArrivalUB <= 0 {
		t.Errorf("p1: %+v err=%v", r.Path, r.Err)
	}
	for _, id := range []string{"badrise", "badcell", "nokind", "badfile"} {
		if byID[id].Err == nil {
			t.Errorf("%s should fail soft", id)
		}
	}
}

func TestReadSpecsRejectsMalformedLines(t *testing.T) {
	if _, err := ReadSpecs(strings.NewReader("{\"id\":\"ok\",\"net\":\"a\"}\n{broken\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("want a line-numbered decode error, got %v", err)
	}
	if _, err := ReadSpecs(strings.NewReader(`{"id":"x","unknown_field":1}`)); err == nil {
		t.Errorf("unknown fields should be rejected")
	}
}

// TestCacheMutationNoStaleEntries is the stale-fingerprint regression
// test: a tree mutated through SetR/SetC (or bulk SetValues) after
// being analyzed must never be served the pre-mutation cached moment
// set. The contract (rctree.Tree.Fingerprint godoc) is that the
// fingerprint is recomputed from current values on every request —
// never cached on the tree — so a mutation re-keys the tree and the
// old entry can only be reached by trees that still carry the old
// values.
func TestCacheMutationNoStaleEntries(t *testing.T) {
	tree := chainNet(t, 12)
	cache := NewCache()
	ms1, hit, err := cache.Moments(tree, 3)
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	fp1 := tree.Fingerprint()

	// Mutate: per-node and bulk paths both must re-key.
	if err := tree.SetR(5, tree.R(5)*3); err != nil {
		t.Fatal(err)
	}
	if fp2 := tree.Fingerprint(); fp2 == fp1 {
		t.Fatalf("SetR did not change the fingerprint")
	}
	ms2, hit, err := cache.Moments(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit || ms2 == ms1 {
		t.Fatalf("mutated tree was served the stale pre-mutation moment set")
	}
	// The served set must describe the mutated values.
	want, err := moments.Compute(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if ms2.Elmore(i) != want.Elmore(i) {
			t.Fatalf("post-mutation cache entry stale at node %d", i)
		}
	}

	// A clone still carrying the ORIGINAL values must hit the original
	// entry, not the mutated one.
	orig := chainNet(t, 12)
	ms3, hit, err := cache.Moments(orig, 3)
	if err != nil || !hit {
		t.Fatalf("original-value tree should hit: hit=%v err=%v", hit, err)
	}
	if ms3 != ms1 {
		t.Fatalf("original-value tree was served the wrong entry")
	}

	// Bulk mutation (ScaleValues) re-keys too.
	if err := tree.ScaleValues(2, 1); err != nil {
		t.Fatal(err)
	}
	_, hit, err = cache.Moments(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("ScaleValues-mutated tree hit a stale entry")
	}
}
