package batch

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"elmore/internal/core"
	"elmore/internal/faultinject"
	"elmore/internal/rctree"
	"elmore/internal/resilience"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

// installFaults swaps in a seeded injector and an isolated telemetry
// registry for the duration of one chaos test.
func installFaults(t *testing.T, seed int64, rules ...faultinject.Rule) {
	t.Helper()
	prevReg := telemetry.SetDefault(telemetry.NewRegistry())
	prevInj := faultinject.SetDefault(faultinject.New(seed, rules...))
	t.Cleanup(func() {
		faultinject.SetDefault(prevInj)
		telemetry.SetDefault(prevReg)
	})
}

// TestChaosBatchUnderFaults drives a large mixed batch — half net jobs,
// half transient sweeps — through randomized-but-deterministic faults
// injected into the simulator step loop, the plan factorization, and
// the job dispatch path, and asserts the engine's invariants: no job is
// lost or duplicated, results stream in order, every Result is a value
// or a typed error (never both, never neither), and every transient
// sweep whose simulation exhausted its retries degrades to the paper's
// closed-form bound interval instead of erroring.
func TestChaosBatchUnderFaults(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 500
	}
	installFaults(t, 7,
		faultinject.Rule{Point: "sim.factor", Kind: faultinject.KindError, Prob: 0.02},
		faultinject.Rule{Point: "sim.step", Kind: faultinject.KindError, Prob: 0.002},
		faultinject.Rule{Point: "sim.state", Kind: faultinject.KindNaN, Every: 2000},
		faultinject.Rule{Point: "batch.dispatch", Kind: faultinject.KindError, Prob: 0.01},
		faultinject.Rule{Point: "batch.dispatch", Kind: faultinject.KindPanic, Every: 601},
	)

	// A small fleet of distinct circuits spreads the breaker keys and
	// shares plans/moments through the cache.
	type circuit struct {
		tree *rctree.Tree
		want *core.Analysis
		dt   float64
		tEnd float64
	}
	var fleet []circuit
	for k := 0; k < 8; k++ {
		tree := topo.Random(int64(100+k), topo.RandomOptions{N: 4 + k})
		want, err := core.Analyze(tree)
		if err != nil {
			t.Fatal(err)
		}
		td := 0.0
		for _, b := range want.Bounds {
			if b.Elmore > td {
				td = b.Elmore
			}
		}
		fleet = append(fleet, circuit{tree: tree, want: want, dt: td / 100, tEnd: 3 * td})
	}

	jobs := make([]Job, n)
	for i := range jobs {
		c := fleet[i%len(fleet)]
		if i%2 == 0 {
			jobs[i] = Job{ID: fmt.Sprintf("net%d", i), Net: &NetJob{Tree: c.tree}}
		} else {
			jobs[i] = Job{ID: fmt.Sprintf("tran%d", i), Tran: &TranJob{Tree: c.tree, DT: c.dt, TEnd: c.tEnd}}
		}
	}

	e := &Engine{
		Workers: 8,
		Cache:   NewCache(),
		Retry: &resilience.Policy{
			MaxAttempts: 4,
			BaseDelay:   50 * time.Microsecond,
			MaxDelay:    time.Millisecond,
			RetryPanics: true,
		},
		Breaker:  &resilience.Breaker{Threshold: 25, Cooldown: time.Millisecond},
		Watchdog: &resilience.Watchdog{Threshold: 30 * time.Second},
	}
	var results []Result
	e.RunFunc(context.Background(), jobs, func(r Result) { results = append(results, r) })

	if len(results) != n {
		t.Fatalf("emitted %d results for %d jobs (lost or duplicated work)", len(results), n)
	}
	degraded, failed, panicky := 0, 0, 0
	for i, r := range results {
		if r.Index != i || r.ID != jobs[i].ID {
			t.Fatalf("result %d is job %d (%s): order broken", i, r.Index, r.ID)
		}
		payloads := 0
		if r.Net != nil {
			payloads++
		}
		if r.Path != nil {
			payloads++
		}
		if r.Tran != nil {
			payloads++
		}
		if r.Err != nil {
			failed++
			if payloads != 0 {
				t.Errorf("job %s failed but carries %d payloads", r.ID, payloads)
			}
		} else if payloads != 1 {
			t.Errorf("job %s succeeded with %d payloads, want exactly 1", r.ID, payloads)
		}
		if r.Attempts < 1 {
			t.Errorf("job %s reports %d attempts", r.ID, r.Attempts)
		}
		isTran := i%2 == 1
		if isTran && r.Err != nil && resilience.Degradable(r.Err) {
			t.Errorf("job %s: retry-exhausted sim failure must degrade, got error %v", r.ID, r.Err)
		}
		if r.Degraded != "" {
			degraded++
			c := fleet[i%len(fleet)]
			if !isTran {
				t.Errorf("net job %s degraded; only transient sweeps may", r.ID)
			}
			if r.Degraded != DegradedElmoreBound || r.DegradedFrom == "" {
				t.Errorf("job %s: degraded=%q from=%q", r.ID, r.Degraded, r.DegradedFrom)
			}
			if r.Net == nil || r.Tran != nil {
				t.Errorf("job %s: degraded result must carry the bound interval in Net", r.ID)
				continue
			}
			if len(r.Net.Sinks) != c.tree.N() {
				t.Errorf("job %s: degraded result has %d sinks for %d nodes", r.ID, len(r.Net.Sinks), c.tree.N())
				continue
			}
			for k, s := range r.Net.Sinks {
				// The paper's interval: 0 <= max(mu-sigma, 0) <= T_D,
				// bit-identical to a direct analysis.
				if s.Bounds != c.want.Bounds[k] {
					t.Errorf("job %s sink %s: degraded bounds %+v differ from direct analysis %+v",
						r.ID, s.Node, s.Bounds, c.want.Bounds[k])
				}
				if s.Bounds.Lower < 0 || s.Bounds.Lower > s.Bounds.Elmore {
					t.Errorf("job %s sink %s: interval [%g, %g] violates 0 <= lower <= T_D",
						r.ID, s.Node, s.Bounds.Lower, s.Bounds.Elmore)
				}
			}
		}
		if r.Attempts > 1 {
			panicky++ // at least one retry happened somewhere
		}
	}

	fired := telemetry.C("faultinject.fired").Value()
	retries := telemetry.C("resilience.retries").Value()
	if got := telemetry.C("batch.jobs").Value(); got != int64(n) {
		t.Errorf("batch.jobs counter = %d, want %d", got, n)
	}
	if got := telemetry.C("resilience.degraded").Value(); got != int64(degraded) {
		t.Errorf("resilience.degraded counter = %d, observed %d degraded results", got, degraded)
	}
	if qd := telemetry.G("batch.queue_depth").Value(); qd != 0 {
		t.Errorf("queue depth gauge ends at %g, want 0", qd)
	}
	if fired == 0 {
		t.Errorf("no faults fired; the chaos run tested nothing")
	}
	if !testing.Short() {
		if retries == 0 {
			t.Errorf("no retries under %d injected faults", fired)
		}
		if degraded == 0 {
			t.Errorf("no degraded results in a %d-job chaos run", n)
		}
	}
	t.Logf("chaos: %d jobs, %d faults fired, %d retries, %d degraded, %d failed, %d multi-attempt",
		n, fired, retries, degraded, failed, panicky)
}

// TestChaosBreakerDegradesCursedTree pins every simulation attempt on
// one tree to failure: the circuit breaker must open after Threshold
// consecutive failures, later jobs must be rejected without burning
// attempts, and every job — pre- and post-open — must still answer with
// the degraded bound interval rather than an error.
func TestChaosBreakerDegradesCursedTree(t *testing.T) {
	installFaults(t, 1,
		faultinject.Rule{Point: "sim.step", Kind: faultinject.KindError, Every: 1},
	)
	tree := topo.Random(3, topo.RandomOptions{N: 6})
	want, err := core.Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	td := want.Bounds[len(want.Bounds)-1].Elmore
	const n = 60
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("t%d", i), Tran: &TranJob{Tree: tree, DT: td / 50, TEnd: 2 * td}}
	}
	e := &Engine{
		Workers: 4,
		Retry:   &resilience.Policy{MaxAttempts: 2, BaseDelay: 10 * time.Microsecond},
		Breaker: &resilience.Breaker{Threshold: 8, Cooldown: time.Hour},
	}
	res := e.Run(context.Background(), jobs)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("job %s errored instead of degrading: %v", r.ID, r.Err)
		}
		if r.Degraded != DegradedElmoreBound || r.Net == nil {
			t.Fatalf("job %s: degraded=%q net=%v", r.ID, r.Degraded, r.Net != nil)
		}
	}
	if opens := telemetry.C("resilience.breaker_opens").Value(); opens == 0 {
		t.Errorf("breaker never opened for an always-failing tree")
	}
	if rejects := telemetry.C("resilience.breaker_rejects").Value(); rejects == 0 {
		t.Errorf("open breaker rejected no attempts")
	}
}

// TestChaosMomentFaultsRecovered injects faults into the moment
// computation under a shared cache: transient failures must be retried
// successfully (which requires the cache to evict transiently failed
// entries instead of pinning the error), and once the injector is gone
// the same cache must serve every job cleanly.
func TestChaosMomentFaultsRecovered(t *testing.T) {
	installFaults(t, 11,
		faultinject.Rule{Point: "moments.compute", Kind: faultinject.KindError, Prob: 0.2},
	)
	tree := chainNet(t, 9)
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("m%d", i), tree)
	}
	cache := NewCache()
	e := &Engine{
		Workers: 4,
		Cache:   cache,
		Retry:   &resilience.Policy{MaxAttempts: 6, BaseDelay: 10 * time.Microsecond},
	}
	res := e.Run(context.Background(), jobs)
	ok := 0
	for _, r := range res {
		switch {
		case r.Err == nil:
			ok++
		case resilience.Classify(r.Err) == resilience.Permanent:
			t.Errorf("job %s: injected fault surfaced as permanent: %v", r.ID, r.Err)
		}
	}
	if ok == 0 {
		t.Fatalf("no job survived a 20%% moment-fault rate with 6 attempts; cache is pinning errors")
	}
	// With the injector gone the cache must be clean: no stale error
	// entry may outlive its transient cause.
	faultinject.SetDefault(nil)
	for _, r := range e.Run(context.Background(), jobs[:20]) {
		if r.Err != nil {
			t.Errorf("post-chaos job %s still fails: %v", r.ID, r.Err)
		}
	}
}

// TestRunFuncStopsEmittingAfterCancel cancels the batch from inside
// emit and asserts the contract both ways: no emission happens after
// the cancellation is observable, and the run leaks no goroutines.
func TestRunFuncStopsEmittingAfterCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	tree := chainNet(t, 5)
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = netJob(fmt.Sprintf("j%d", i), tree)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted []int
	e := &Engine{Workers: 4, Timeout: time.Minute}
	e.RunFunc(ctx, jobs, func(r Result) {
		if ctx.Err() != nil {
			t.Errorf("emit called for job %d after cancellation", r.Index)
		}
		emitted = append(emitted, r.Index)
		if len(emitted) == 5 {
			cancel()
		}
	})
	if len(emitted) != 5 {
		t.Errorf("emitted %d results, want exactly the 5 before cancellation", len(emitted))
	}
	for i, idx := range emitted {
		if idx != i {
			t.Errorf("emission %d carried job %d; order broken", i, idx)
		}
	}
	// Workers, dispatcher, and closer must all wind down; per-attempt
	// timeout contexts must be released.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines grew from %d to %d after RunFunc returned\n%s",
			before, got, buf[:runtime.Stack(buf, true)])
	}
}
