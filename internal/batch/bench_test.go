package batch

import (
	"context"
	"fmt"
	"testing"

	"elmore/internal/rctree"
	"elmore/internal/topo"
)

// benchJobs builds n distinct small nets (distinct topologies and
// seeds, so a moment cache cannot collapse the work) and wraps each in
// a net job. Built outside the timed region.
func benchJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		tree := topo.Random(int64(i)+1, topo.RandomOptions{N: 24 + i%17})
		jobs[i] = Job{ID: fmt.Sprintf("n%d", i), Net: &NetJob{Tree: tree}}
	}
	return jobs
}

// BenchmarkBatch10kNets measures the worker-pool scaling the engine
// exists for: the same 10k-net batch at 1, 2, 4, and 8 workers.
// Near-linear scaling shows up as ns/op dropping ~1/workers; the
// acceptance bar is >= 4x at 8 workers over 1.
func BenchmarkBatch10kNets(b *testing.B) {
	jobs := benchJobs(10000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			eng := &Engine{Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				res := eng.Run(context.Background(), jobs)
				if len(res) != len(jobs) {
					b.Fatalf("got %d results, want %d", len(res), len(jobs))
				}
			}
		})
	}
}

// BenchmarkBatchCached measures the shared-cache fast path: every job
// is the same circuit (fresh clones, so fingerprint lookup — not
// pointer identity — is what deduplicates), and all but one job reuse
// the single computed moment set.
func BenchmarkBatchCached(b *testing.B) {
	base := topo.Chain(64, 100, 1e-13)
	jobs := make([]Job, 2000)
	clones := make([]*rctree.Tree, len(jobs))
	for i := range jobs {
		clones[i] = base.Clone()
		jobs[i] = Job{ID: fmt.Sprintf("c%d", i), Net: &NetJob{Tree: clones[i]}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		eng := &Engine{Workers: 8, Cache: NewCache()}
		res := eng.Run(context.Background(), jobs)
		if len(res) != len(jobs) {
			b.Fatalf("got %d results, want %d", len(res), len(jobs))
		}
	}
}
