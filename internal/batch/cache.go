package batch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/resilience"
	"elmore/internal/sim"
	"elmore/internal/telemetry"
)

// cacheOrder is the moment order cached sets are computed at: order 3
// serves every consumer in this repository (core bounds need 3, sta
// slew propagation needs 2).
const cacheOrder = 3

// Cache is a shared cache of per-circuit derived artifacts, keyed by
// tree fingerprint (rctree.Tree.Fingerprint): moment sets, and
// compiled simulation plans keyed additionally by (dt, method).
// Entries are immutable once computed — a moments.Set or sim.Plan is
// never written after construction — so one entry may be handed to any
// number of concurrent workers. Each circuit is
// computed exactly once: goroutines that race on a missing entry block
// until the first one finishes, instead of duplicating work.
//
// The map guarding each key is striped: the cache holds a power-of-two
// number of shards (rounded up from GOMAXPROCS at first use), each with
// its own mutex and maps, selected by the circuit fingerprint. Workers
// hammering heterogeneous nets therefore contend only when their nets
// land on the same stripe, instead of convoying on one global lock —
// the serialization that kept the 1→8 worker batch curve flat. Lock
// wait is still attributed per worker through the context-carried
// WorkerStats, so a hot stripe shows up in the scalestat report rather
// than hiding.
//
// The zero value is ready to use: shards and their maps initialize
// lazily on first access, for both the moments and the plans path.
//
// The cache trusts fingerprints: callers must not mutate a tree (SetR/
// SetC) between jobs that share it. As a cheap collision guard, a hit
// whose stored set disagrees with the requesting tree's node count is
// reported as an error rather than returned.
type Cache struct {
	init   sync.Once
	shards []cacheShard
	mask   uint64
}

// cacheShard is one stripe: a mutex plus the two keyed maps. Padded to
// a cache line so neighboring stripes' locks do not false-share.
type cacheShard struct {
	mu    sync.Mutex
	m     map[uint64]*cacheEntry
	plans map[planKey]*planEntry
	_     [40]byte
}

type cacheEntry struct {
	once sync.Once
	ms   *moments.Set
	err  error
}

// planKey identifies one compiled simulation plan: the circuit
// fingerprint plus the exact step size (by bit pattern — plans for
// 1e-12 and the nearest representable neighbor are distinct) and the
// integration method.
type planKey struct {
	fp     uint64
	dtBits uint64
	method sim.Method
}

type planEntry struct {
	once sync.Once
	plan *sim.Plan
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{}
}

// defaultShards returns GOMAXPROCS rounded up to a power of two, so a
// full worker complement maps onto at least one stripe each.
func defaultShards() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	return n
}

// shard returns the stripe owning fingerprint fp, initializing the
// stripe array on first use (which is what makes the zero value
// usable). The fingerprint is already a hash, but its low bits are
// remixed through a Fibonacci multiplier so clustered fingerprints
// still spread across stripes.
func (c *Cache) shard(fp uint64) *cacheShard {
	c.init.Do(func() {
		n := defaultShards()
		c.shards = make([]cacheShard, n)
		c.mask = uint64(n - 1)
	})
	return &c.shards[(fp*0x9E3779B97F4A7C15)>>32&c.mask]
}

// Moments returns the moment set for the circuit t describes, computing
// it on first use. hit reports whether this call reused an entry that
// another call computed (or was computing); a call that performed the
// compute itself reports a miss even if it found the entry already
// inserted. Requests above the cached order compute a fresh uncached
// set rather than poisoning shared entries.
func (c *Cache) Moments(t *rctree.Tree, order int) (*moments.Set, bool, error) {
	return c.moments(nil, nil, t, order)
}

// MomentsCtx is Moments with worker attribution: when ctx carries a
// batch worker's stats, time blocked on the stripe mutex and on another
// worker's in-flight compute of the same entry is charged to that
// worker as lock wait, and the hit/miss lands in its per-worker
// counters; when ctx carries a worker's scratch arena, the compute
// draws its sweep buffers from it. Engines call this; direct users can
// keep calling Moments.
func (c *Cache) MomentsCtx(ctx context.Context, t *rctree.Tree, order int) (*moments.Set, bool, error) {
	return c.moments(workerStatsFrom(ctx), moments.ArenaFrom(ctx), t, order)
}

func (c *Cache) moments(ws *WorkerStats, ar *moments.Arena, t *rctree.Tree, order int) (*moments.Set, bool, error) {
	if order > cacheOrder {
		ms, err := moments.ComputeWith(t, order, ar)
		return ms, false, err
	}
	key := t.Fingerprint()
	sh := c.shard(key)
	t0 := lockStart(ws)
	sh.mu.Lock()
	lockEnd(ws, t0)
	if sh.m == nil {
		sh.m = make(map[uint64]*cacheEntry)
	}
	e, found := sh.m[key]
	if !found {
		e = &cacheEntry{}
		sh.m[key] = e
	}
	sh.mu.Unlock()
	// Whoever wins the once computes (a goroutine that found the entry
	// can still win it when the inserting goroutine hasn't reached its
	// Do yet). Time spent here without running the closure is time
	// blocked on another worker's in-flight compute — charged as lock
	// wait.
	ran := false
	t1 := lockStart(ws)
	e.once.Do(func() {
		ran = true
		e.ms, e.err = moments.ComputeWith(t, cacheOrder, ar)
	})
	if !ran {
		lockEnd(ws, t1)
	}
	// Hit/miss is classified by who did the compute, not by who found
	// the entry in the map: the goroutine that ran the closure paid for
	// the computation and is the run's one miss, everyone else — finder
	// or inserter — reused it. Classifying before the Do would count a
	// finder that won the race as a hit it never got.
	hit := !ran
	if hit {
		telemetry.C("batch.cache_hits").Inc()
		if ws != nil {
			ws.CacheHits++
		}
	} else {
		telemetry.C("batch.cache_misses").Inc()
		if ws != nil {
			ws.CacheMisses++
		}
	}
	if e.err != nil {
		// A permanent error (bad element values) is worth memoizing —
		// recomputation fails identically — but a transient one
		// (injected fault, cancellation) must not poison the entry for
		// every later job and retry on this circuit: evict it so the
		// next caller recomputes.
		if resilience.Classify(e.err) != resilience.Permanent {
			c.evictMoments(key, e)
		}
		return nil, hit, e.err
	}
	if e.ms.Tree().N() != t.N() {
		return nil, hit, fmt.Errorf("batch: fingerprint collision: cached set has %d nodes, tree has %d", e.ms.Tree().N(), t.N())
	}
	return e.ms, hit, nil
}

// evictMoments removes the moment entry for key, but only while e is
// still the cached value: a concurrent caller may already have evicted
// e and a later one re-inserted a fresh entry, which must survive.
func (c *Cache) evictMoments(key uint64, e *cacheEntry) {
	sh := c.shard(key)
	sh.mu.Lock()
	if sh.m[key] == e {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// Plan returns a compiled simulation plan for the circuit t describes,
// under the given fixed step and method, building it (compile + stamp +
// factor) on first use. hit reports whether this call reused a plan
// built (or being built) by another call. Plans are immutable and
// shared: each worker must take its own sim.Runner from the returned
// plan. The same fingerprint-trust caveat as Moments applies — a tree
// mutated with SetR/SetC gets a new fingerprint and therefore a new
// plan, but mutating a tree mid-batch while another job holds its plan
// is a caller bug.
func (c *Cache) Plan(t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	return c.plan(nil, t, dt, method)
}

// PlanCtx is Plan with the same contention attribution as MomentsCtx.
func (c *Cache) PlanCtx(ctx context.Context, t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	return c.plan(workerStatsFrom(ctx), t, dt, method)
}

func (c *Cache) plan(ws *WorkerStats, t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	key := planKey{fp: t.Fingerprint(), dtBits: math.Float64bits(dt), method: method}
	sh := c.shard(key.fp)
	t0 := lockStart(ws)
	sh.mu.Lock()
	lockEnd(ws, t0)
	if sh.plans == nil {
		sh.plans = make(map[planKey]*planEntry)
	}
	e, found := sh.plans[key]
	if !found {
		e = &planEntry{}
		sh.plans[key] = e
	}
	sh.mu.Unlock()
	ran := false
	t1 := lockStart(ws)
	e.once.Do(func() {
		ran = true
		e.plan, e.err = sim.NewPlan(t, sim.PlanOptions{DT: dt, Method: method})
	})
	if !ran {
		lockEnd(ws, t1)
	}
	// Same post-Do classification as moments: the builder is the miss.
	hit := !ran
	if hit {
		telemetry.C("batch.plan_cache_hits").Inc()
		if ws != nil {
			ws.CacheHits++
		}
	} else {
		telemetry.C("batch.plan_cache_misses").Inc()
		if ws != nil {
			ws.CacheMisses++
		}
	}
	if e.err != nil {
		// Same eviction policy as Moments: only permanent failures are
		// worth remembering.
		if resilience.Classify(e.err) != resilience.Permanent {
			c.evictPlan(key, e)
		}
		return nil, hit, e.err
	}
	if e.plan.Tree().N() != t.N() {
		return nil, hit, fmt.Errorf("batch: fingerprint collision: cached plan has %d nodes, tree has %d", e.plan.Tree().N(), t.N())
	}
	return e.plan, hit, nil
}

// evictPlan is evictMoments for the plan map: remove key only while e
// is still the cached entry, never a newer replacement.
func (c *Cache) evictPlan(key planKey, e *planEntry) {
	sh := c.shard(key.fp)
	sh.mu.Lock()
	if sh.plans[key] == e {
		delete(sh.plans, key)
	}
	sh.mu.Unlock()
}

// Len returns the number of distinct circuits cached so far (moment
// sets; plans are keyed separately — see PlanLen).
func (c *Cache) Len() int {
	return c.lenOf(func(sh *cacheShard) int { return len(sh.m) })
}

// PlanLen returns the number of distinct (circuit, dt, method) plans
// cached so far.
func (c *Cache) PlanLen() int {
	return c.lenOf(func(sh *cacheShard) int { return len(sh.plans) })
}

func (c *Cache) lenOf(count func(*cacheShard) int) int {
	c.shard(0) // force stripe init so the loop sees the slice
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += count(sh)
		sh.mu.Unlock()
	}
	return total
}

// Shards reports the number of stripes the cache spreads its keys over
// (a power of two, rounded up from GOMAXPROCS at first use).
func (c *Cache) Shards() int {
	c.shard(0)
	return len(c.shards)
}
