package batch

import (
	"context"
	"fmt"
	"math"
	"sync"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/resilience"
	"elmore/internal/sim"
	"elmore/internal/telemetry"
)

// cacheOrder is the moment order cached sets are computed at: order 3
// serves every consumer in this repository (core bounds need 3, sta
// slew propagation needs 2).
const cacheOrder = 3

// Cache is a shared cache of per-circuit derived artifacts, keyed by
// tree fingerprint (rctree.Tree.Fingerprint): moment sets, and
// compiled simulation plans keyed additionally by (dt, method).
// Entries are immutable once computed — a moments.Set or sim.Plan is
// never written after construction — so one entry may be handed to any
// number of concurrent workers. Each circuit is
// computed exactly once: goroutines that race on a missing entry block
// until the first one finishes, instead of duplicating work.
//
// The cache trusts fingerprints: callers must not mutate a tree (SetR/
// SetC) between jobs that share it. As a cheap collision guard, a hit
// whose stored set disagrees with the requesting tree's node count is
// reported as an error rather than returned.
type Cache struct {
	mu    sync.Mutex
	m     map[uint64]*cacheEntry
	plans map[planKey]*planEntry
}

type cacheEntry struct {
	once sync.Once
	ms   *moments.Set
	err  error
}

// planKey identifies one compiled simulation plan: the circuit
// fingerprint plus the exact step size (by bit pattern — plans for
// 1e-12 and the nearest representable neighbor are distinct) and the
// integration method.
type planKey struct {
	fp     uint64
	dtBits uint64
	method sim.Method
}

type planEntry struct {
	once sync.Once
	plan *sim.Plan
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		m:     make(map[uint64]*cacheEntry),
		plans: make(map[planKey]*planEntry),
	}
}

// Moments returns the moment set for the circuit t describes, computing
// it on first use. hit reports whether the set was already present (or
// being computed by another goroutine). Requests above the cached order
// compute a fresh uncached set rather than poisoning shared entries.
func (c *Cache) Moments(t *rctree.Tree, order int) (*moments.Set, bool, error) {
	return c.moments(nil, t, order)
}

// MomentsCtx is Moments with contention attribution: when ctx carries a
// batch worker's stats, time blocked on the cache mutex and on another
// worker's in-flight compute of the same entry is charged to that
// worker as lock wait, and the hit/miss lands in its per-worker
// counters. Engines call this; direct users can keep calling Moments.
func (c *Cache) MomentsCtx(ctx context.Context, t *rctree.Tree, order int) (*moments.Set, bool, error) {
	return c.moments(workerStatsFrom(ctx), t, order)
}

func (c *Cache) moments(ws *WorkerStats, t *rctree.Tree, order int) (*moments.Set, bool, error) {
	if order > cacheOrder {
		ms, err := moments.Compute(t, order)
		return ms, false, err
	}
	key := t.Fingerprint()
	t0 := lockStart(ws)
	c.mu.Lock()
	lockEnd(ws, t0)
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if hit {
		telemetry.C("batch.cache_hits").Inc()
		if ws != nil {
			ws.CacheHits++
		}
	} else {
		telemetry.C("batch.cache_misses").Inc()
		if ws != nil {
			ws.CacheMisses++
		}
	}
	// Whoever wins the once computes (a "hit" can still win it when the
	// inserting goroutine hasn't reached its Do yet). Time spent here
	// without running the closure is time blocked on another worker's
	// in-flight compute — charged as lock wait.
	ran := false
	t1 := lockStart(ws)
	e.once.Do(func() {
		ran = true
		e.ms, e.err = moments.Compute(t, cacheOrder)
	})
	if !ran {
		lockEnd(ws, t1)
	}
	if e.err != nil {
		// A permanent error (bad element values) is worth memoizing —
		// recomputation fails identically — but a transient one
		// (injected fault, cancellation) must not poison the entry for
		// every later job and retry on this circuit: evict it so the
		// next caller recomputes.
		if resilience.Classify(e.err) != resilience.Permanent {
			c.mu.Lock()
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
		}
		return nil, hit, e.err
	}
	if e.ms.Tree().N() != t.N() {
		return nil, hit, fmt.Errorf("batch: fingerprint collision: cached set has %d nodes, tree has %d", e.ms.Tree().N(), t.N())
	}
	return e.ms, hit, nil
}

// Plan returns a compiled simulation plan for the circuit t describes,
// under the given fixed step and method, building it (compile + stamp +
// factor) on first use. hit reports whether the plan was already
// present or being built by another goroutine. Plans are immutable and
// shared: each worker must take its own sim.Runner from the returned
// plan. The same fingerprint-trust caveat as Moments applies — a tree
// mutated with SetR/SetC gets a new fingerprint and therefore a new
// plan, but mutating a tree mid-batch while another job holds its plan
// is a caller bug.
func (c *Cache) Plan(t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	return c.plan(nil, t, dt, method)
}

// PlanCtx is Plan with the same contention attribution as MomentsCtx.
func (c *Cache) PlanCtx(ctx context.Context, t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	return c.plan(workerStatsFrom(ctx), t, dt, method)
}

func (c *Cache) plan(ws *WorkerStats, t *rctree.Tree, dt float64, method sim.Method) (*sim.Plan, bool, error) {
	key := planKey{fp: t.Fingerprint(), dtBits: math.Float64bits(dt), method: method}
	t0 := lockStart(ws)
	c.mu.Lock()
	lockEnd(ws, t0)
	if c.plans == nil {
		c.plans = make(map[planKey]*planEntry)
	}
	e, hit := c.plans[key]
	if !hit {
		e = &planEntry{}
		c.plans[key] = e
	}
	c.mu.Unlock()
	if hit {
		telemetry.C("batch.plan_cache_hits").Inc()
		if ws != nil {
			ws.CacheHits++
		}
	} else {
		telemetry.C("batch.plan_cache_misses").Inc()
		if ws != nil {
			ws.CacheMisses++
		}
	}
	ran := false
	t1 := lockStart(ws)
	e.once.Do(func() {
		ran = true
		e.plan, e.err = sim.NewPlan(t, sim.PlanOptions{DT: dt, Method: method})
	})
	if !ran {
		lockEnd(ws, t1)
	}
	if e.err != nil {
		// Same eviction policy as Moments: only permanent failures are
		// worth remembering.
		if resilience.Classify(e.err) != resilience.Permanent {
			c.mu.Lock()
			if c.plans[key] == e {
				delete(c.plans, key)
			}
			c.mu.Unlock()
		}
		return nil, hit, e.err
	}
	if e.plan.Tree().N() != t.N() {
		return nil, hit, fmt.Errorf("batch: fingerprint collision: cached plan has %d nodes, tree has %d", e.plan.Tree().N(), t.N())
	}
	return e.plan, hit, nil
}

// Len returns the number of distinct circuits cached so far (moment
// sets; plans are keyed separately — see PlanLen).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// PlanLen returns the number of distinct (circuit, dt, method) plans
// cached so far.
func (c *Cache) PlanLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}
