package batch

import (
	"fmt"
	"sync"

	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// cacheOrder is the moment order cached sets are computed at: order 3
// serves every consumer in this repository (core bounds need 3, sta
// slew propagation needs 2).
const cacheOrder = 3

// Cache is a shared moment-set cache keyed by tree fingerprint
// (rctree.Tree.Fingerprint). Entries are immutable once computed — a
// moments.Set is never written after Compute returns — so one set may
// be handed to any number of concurrent workers. Each circuit is
// computed exactly once: goroutines that race on a missing entry block
// until the first one finishes, instead of duplicating work.
//
// The cache trusts fingerprints: callers must not mutate a tree (SetR/
// SetC) between jobs that share it. As a cheap collision guard, a hit
// whose stored set disagrees with the requesting tree's node count is
// reported as an error rather than returned.
type Cache struct {
	mu sync.Mutex
	m  map[uint64]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	ms   *moments.Set
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[uint64]*cacheEntry)} }

// Moments returns the moment set for the circuit t describes, computing
// it on first use. hit reports whether the set was already present (or
// being computed by another goroutine). Requests above the cached order
// compute a fresh uncached set rather than poisoning shared entries.
func (c *Cache) Moments(t *rctree.Tree, order int) (*moments.Set, bool, error) {
	if order > cacheOrder {
		ms, err := moments.Compute(t, order)
		return ms, false, err
	}
	key := t.Fingerprint()
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if hit {
		telemetry.C("batch.cache_hits").Inc()
	} else {
		telemetry.C("batch.cache_misses").Inc()
	}
	e.once.Do(func() {
		e.ms, e.err = moments.Compute(t, cacheOrder)
	})
	if e.err != nil {
		return nil, hit, e.err
	}
	if e.ms.Tree().N() != t.N() {
		return nil, hit, fmt.Errorf("batch: fingerprint collision: cached set has %d nodes, tree has %d", e.ms.Tree().N(), t.N())
	}
	return e.ms, hit, nil
}

// Len returns the number of distinct circuits cached so far.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
