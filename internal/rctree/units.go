package rctree

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Engineering-notation helpers shared by the String method, the netlist
// reader/writer, and report formatting in the CLIs.

type siPrefix struct {
	scale  float64
	symbol string
}

var siPrefixes = []siPrefix{
	{1e12, "T"},
	{1e9, "G"},
	{1e6, "M"},
	{1e3, "k"},
	{1, ""},
	{1e-3, "m"},
	{1e-6, "u"},
	{1e-9, "n"},
	{1e-12, "p"},
	{1e-15, "f"},
	{1e-18, "a"},
}

// FormatSI renders v with an SI prefix and the given unit symbol, for
// example FormatSI(1.2e-9, "s") == "1.2ns".
func FormatSI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%v%s", v, unit)
	}
	av := math.Abs(v)
	for _, p := range siPrefixes {
		if av >= p.scale {
			return trimFloat(v/p.scale) + p.symbol + unit
		}
	}
	p := siPrefixes[len(siPrefixes)-1]
	return trimFloat(v/p.scale) + p.symbol + unit
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// FormatOhms renders a resistance, e.g. "81.25" ohms -> "81.25ohm".
func FormatOhms(r float64) string { return FormatSI(r, "ohm") }

// FormatFarads renders a capacitance, e.g. 1e-12 -> "1pF".
func FormatFarads(c float64) string { return FormatSI(c, "F") }

// FormatSeconds renders a time, e.g. 5.5e-10 -> "550ps".
func FormatSeconds(t float64) string { return FormatSI(t, "s") }

// ParseValue parses a SPICE-style number with an optional engineering
// suffix: f, p, n, u, m, k, meg (or x), g, t — case-insensitive. Any
// trailing unit letters after the suffix are ignored (so "10pF", "10p"
// and "10e-12" all parse to 1e-11), matching common SPICE practice.
func ParseValue(s string) (float64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("rctree: empty numeric value")
	}
	// Longest numeric prefix.
	end := 0
	seenDigit := false
	for end < len(s) {
		ch := s[end]
		switch {
		case ch >= '0' && ch <= '9':
			seenDigit = true
			end++
		case ch == '+' || ch == '-' || ch == '.':
			end++
		case ch == 'e' && seenDigit && end+1 < len(s) && isExpStart(s[end+1:]):
			end++
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, fmt.Errorf("rctree: %q is not a number", orig)
	}
	base, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("rctree: parse %q: %w", orig, err)
	}
	suffix := s[end:]
	scale := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg") || strings.HasPrefix(suffix, "x"):
		scale = 1e6
	case suffix[0] == 't':
		scale = 1e12
	case suffix[0] == 'g':
		scale = 1e9
	case suffix[0] == 'k':
		scale = 1e3
	case suffix[0] == 'm':
		scale = 1e-3
	case suffix[0] == 'u':
		scale = 1e-6
	case suffix[0] == 'n':
		scale = 1e-9
	case suffix[0] == 'p':
		scale = 1e-12
	case suffix[0] == 'f':
		scale = 1e-15
	case suffix[0] == 'a':
		scale = 1e-18
	default:
		// Unknown letters (e.g. a bare unit like "ohm") are ignored,
		// as in SPICE.
	}
	return base * scale, nil
}

// isExpStart reports whether rest begins like the tail of a float
// exponent: a digit or a sign followed by a digit.
func isExpStart(rest string) bool {
	if rest == "" {
		return false
	}
	if rest[0] >= '0' && rest[0] <= '9' {
		return true
	}
	if (rest[0] == '+' || rest[0] == '-') && len(rest) > 1 && rest[1] >= '0' && rest[1] <= '9' {
		return true
	}
	return false
}
